// Client sessions & exactly-once retries (src/core/session.*,
// DESIGN.md §13): the `*S` header codec, floor tokens, deterministic 2PC
// txn-id derivation, floor coverage, the bounded SessionDedup table, the
// commit-log session fields (including pre-session compatibility), and
// dedup survival across a store crash-restart.

#include "core/session.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "core/commit_log.h"
#include "core/tardis_store.h"

namespace tardis {
namespace {

TEST(SessionHeaderTest, FormatParseRoundTrip) {
  SessionHeader h;
  h.session_id = 0xdeadbeefcafe;
  h.seq = 42;
  h.attempt = 3;
  h.flags = kSessionFlagWrite | kSessionFlagStaleOk;
  h.floors.emplace_back(0, 17);
  h.floors.emplace_back(2, 900);
  const std::string token = FormatSessionHeader(h);
  EXPECT_EQ(token.rfind("*S", 0), 0u) << token;

  SessionHeader parsed;
  ASSERT_TRUE(ParseSessionHeader(token, &parsed)) << token;
  EXPECT_EQ(parsed.session_id, h.session_id);
  EXPECT_EQ(parsed.seq, h.seq);
  EXPECT_EQ(parsed.attempt, h.attempt);
  EXPECT_EQ(parsed.flags, h.flags);
  ASSERT_EQ(parsed.floors.size(), 2u);
  EXPECT_EQ(parsed.floors[0], (std::pair<uint32_t, uint64_t>{0, 17}));
  EXPECT_EQ(parsed.floors[1], (std::pair<uint32_t, uint64_t>{2, 900}));
  EXPECT_TRUE(parsed.write());
  EXPECT_TRUE(parsed.stale_ok());
}

TEST(SessionHeaderTest, NoFloorsRoundTrip) {
  SessionHeader h;
  h.session_id = 1;
  const std::string token = FormatSessionHeader(h);
  SessionHeader parsed;
  ASSERT_TRUE(ParseSessionHeader(token, &parsed));
  EXPECT_EQ(parsed.session_id, 1u);
  EXPECT_TRUE(parsed.floors.empty());
}

TEST(SessionHeaderTest, RejectsMalformed) {
  SessionHeader h;
  // Too few fields.
  EXPECT_FALSE(ParseSessionHeader("*S1/2/3", &h));
  // Session id 0 means "no session" and is not a valid header.
  EXPECT_FALSE(ParseSessionHeader("*S0/1/0/1", &h));
  // Non-hex field.
  EXPECT_FALSE(ParseSessionHeader("*Szz/1/0/1", &h));
  // Bad floor syntax.
  EXPECT_FALSE(ParseSessionHeader("*S1/1/0/1/nope", &h));
  EXPECT_FALSE(ParseSessionHeader("*S1/1/0/1/0:", &h));
  // Trailing separator with no floors.
  EXPECT_FALSE(ParseSessionHeader("*S1/1/0/1/", &h));
  // Not an *S token at all.
  EXPECT_FALSE(ParseSessionHeader("put k v", &h));
}

TEST(SessionHeaderTest, RejectsOversized) {
  // A syntactically plausible token pushed past the byte cap.
  std::string token = "*S1/1/0/1";
  std::string floors;
  for (int i = 0; floors.size() < kMaxSessionHeaderBytes; i++) {
    floors += (i ? "," : "/") + std::to_string(i % 4) + ":" +
              std::to_string(1000000 + i);
  }
  token += floors;
  SessionHeader h;
  EXPECT_FALSE(ParseSessionHeader(token, &h));
}

TEST(SessionHeaderTest, RejectsTooManyFloors) {
  std::string token = "*S1/1/0/1";
  for (size_t i = 0; i <= kMaxSessionFloors; i++) {
    token += (i ? "," : "/") + std::to_string(i) + ":1";
  }
  SessionHeader h;
  EXPECT_FALSE(ParseSessionHeader(token, &h));
}

TEST(SessionHeaderTest, StripStatuses) {
  SessionHeader h;
  std::string line = "put k v";
  EXPECT_EQ(StripSessionHeader(&line, &h), SessionHeaderStatus::kAbsent);
  EXPECT_EQ(line, "put k v");

  SessionHeader src;
  src.session_id = 7;
  src.seq = 9;
  src.flags = kSessionFlagWrite;
  line = FormatSessionHeader(src) + " put k v";
  EXPECT_EQ(StripSessionHeader(&line, &h), SessionHeaderStatus::kOk);
  EXPECT_EQ(line, "put k v");
  EXPECT_EQ(h.session_id, 7u);
  EXPECT_EQ(h.seq, 9u);

  // Malformed: the token is consumed but the caller must REJECT, never
  // execute the rest (unlike the trace header's silent strip).
  line = "*Sgarbage put k v";
  EXPECT_EQ(StripSessionHeader(&line, &h), SessionHeaderStatus::kMalformed);
}

TEST(SessionFloorTest, TokenRoundTripAndMerge) {
  std::map<uint32_t, uint64_t> floors{{0, 5}, {3, 70}};
  const std::string token = FormatFloorToken(floors);
  EXPECT_EQ(token.rfind("*F", 0), 0u) << token;

  std::map<uint32_t, uint64_t> merged{{0, 9}, {1, 2}};
  std::string reply = token + " OK STATE 0:5";
  ASSERT_TRUE(StripFloorToken(&reply, &merged));
  EXPECT_EQ(reply, "OK STATE 0:5");
  EXPECT_EQ(merged[0], 9u);  // kept the larger existing floor
  EXPECT_EQ(merged[1], 2u);
  EXPECT_EQ(merged[3], 70u);

  std::map<uint32_t, uint64_t> none;
  reply = "OK";
  EXPECT_FALSE(StripFloorToken(&reply, &none));
  EXPECT_EQ(reply, "OK");
}

TEST(SessionTxnIdTest, DeterministicNonZeroAndAttemptSensitive) {
  const uint64_t a = DeriveSessionTxnId(11, 22, 0);
  EXPECT_EQ(a, DeriveSessionTxnId(11, 22, 0));
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, DeriveSessionTxnId(11, 23, 0));
  EXPECT_NE(a, DeriveSessionTxnId(12, 22, 0));
  // A bumped attempt re-derives a distinct id so a fresh 2PC round is
  // not confused with the aborted one.
  EXPECT_NE(a, DeriveSessionTxnId(11, 22, 1));
}

TEST(SessionFloorsCoveredTest, LocalAndRemoteFloors) {
  SessionHeader h;
  h.session_id = 1;
  h.floors.emplace_back(0, 10);
  h.floors.emplace_back(1, 5);
  std::map<uint32_t, uint64_t> applied{{1, 5}};
  EXPECT_TRUE(SessionFloorsCovered(h, /*local_site=*/0,
                                   /*local_applied_seq=*/10, applied));
  EXPECT_FALSE(SessionFloorsCovered(h, 0, 9, applied));
  applied[1] = 4;
  EXPECT_FALSE(SessionFloorsCovered(h, 0, 10, applied));
  // A floor for an origin the applied map has never heard of counts as 0.
  h.floors.emplace_back(2, 1);
  applied[1] = 5;
  EXPECT_FALSE(SessionFloorsCovered(h, 0, 10, applied));
}

TEST(SessionDedupTest, LookupRecordAndDuplicates) {
  SessionDedup dedup;
  GlobalStateId guid{0, 7};
  GlobalStateId out;
  EXPECT_FALSE(dedup.Lookup(1, 1, &out));
  dedup.Record(1, 1, guid);
  ASSERT_TRUE(dedup.Lookup(1, 1, &out));
  EXPECT_EQ(out, guid);
  // Re-recording the same (sid, seq) with the same guid is idempotent...
  dedup.Record(1, 1, guid);
  EXPECT_EQ(dedup.duplicates(), 0u);
  // ...a different guid means a duplicate commit slipped past dedup.
  dedup.Record(1, 1, GlobalStateId{1, 9});
  EXPECT_EQ(dedup.duplicates(), 1u);
  ASSERT_TRUE(dedup.Lookup(1, 1, &out));
  EXPECT_EQ(out, guid);  // the first commit wins
  // Session id 0 ("no session") is never recorded.
  dedup.Record(0, 1, guid);
  EXPECT_FALSE(dedup.Lookup(0, 1, &out));
}

TEST(SessionDedupTest, PerSessionWindowEvictsLowestSeq) {
  SessionDedup::Options opt;
  opt.per_session = 4;
  SessionDedup dedup(opt);
  for (uint64_t seq = 1; seq <= 6; seq++) {
    dedup.Record(1, seq, GlobalStateId{0, seq});
  }
  GlobalStateId out;
  // The two lowest sequences fell out of the window; a client only ever
  // retries its most recent writes.
  EXPECT_FALSE(dedup.Lookup(1, 1, &out));
  EXPECT_FALSE(dedup.Lookup(1, 2, &out));
  EXPECT_TRUE(dedup.Lookup(1, 3, &out));
  EXPECT_TRUE(dedup.Lookup(1, 6, &out));
  EXPECT_EQ(dedup.entry_count(), 4u);
}

TEST(SessionDedupTest, SessionLruEviction) {
  SessionDedup::Options opt;
  opt.max_sessions = 2;
  SessionDedup dedup(opt);
  dedup.Record(1, 1, GlobalStateId{0, 1});
  dedup.Record(2, 1, GlobalStateId{0, 2});
  GlobalStateId out;
  // Touch session 1 so session 2 is the LRU victim.
  EXPECT_TRUE(dedup.Lookup(1, 1, &out));
  dedup.Record(3, 1, GlobalStateId{0, 3});
  EXPECT_EQ(dedup.session_count(), 2u);
  EXPECT_TRUE(dedup.Lookup(1, 1, &out));
  EXPECT_FALSE(dedup.Lookup(2, 1, &out));
  EXPECT_TRUE(dedup.Lookup(3, 1, &out));
}

TEST(SessionDedupTest, MetricsRegistered) {
  obs::MetricsRegistry registry;
  SessionDedup dedup;
  dedup.RegisterMetrics(&registry, &dedup);
  dedup.Record(1, 1, GlobalStateId{0, 1});
  GlobalStateId out;
  dedup.Lookup(1, 1, &out);
  dedup.IncrementRejected();
  bool saw_hits = false, saw_rejected = false, saw_entries = false;
  for (const obs::Sample& s : registry.Collect()) {
    if (s.name == "tardis_session_dedup_hits") saw_hits = s.counter >= 1;
    if (s.name == "tardis_session_header_rejected") {
      saw_rejected = s.counter >= 1;
    }
    if (s.name == "tardis_session_dedup_entries") saw_entries = s.gauge >= 1;
  }
  EXPECT_TRUE(saw_hits);
  EXPECT_TRUE(saw_rejected);
  EXPECT_TRUE(saw_entries);
  registry.DropCallbacks(&dedup);
}

TEST(SessionCommitLogTest, EntryRoundTripWithSessionTag) {
  CommitLogEntry entry;
  entry.id = 4;
  entry.guid = GlobalStateId{1, 4};
  entry.parent_ids = {3};
  entry.write_keys = {"k"};
  entry.session_id = 0x1234;
  entry.session_seq = 9;
  const std::string blob = CommitLog::Serialize(entry);
  CommitLogEntry out;
  ASSERT_TRUE(CommitLog::Deserialize(Slice(blob), &out));
  EXPECT_EQ(out.id, 4u);
  EXPECT_EQ(out.session_id, 0x1234u);
  EXPECT_EQ(out.session_seq, 9u);
}

TEST(SessionCommitLogTest, PreSessionEntriesDecodeUntagged) {
  // An entry serialized without a session tag (the pre-session format:
  // no trailing varints at all) must decode with session fields 0/0.
  CommitLogEntry entry;
  entry.id = 4;
  entry.guid = GlobalStateId{1, 4};
  entry.parent_ids = {3};
  entry.write_keys = {"k"};
  const std::string blob = CommitLog::Serialize(entry);
  CommitLogEntry out;
  ASSERT_TRUE(CommitLog::Deserialize(Slice(blob), &out));
  EXPECT_EQ(out.session_id, 0u);
  EXPECT_EQ(out.session_seq, 0u);
}

class SessionStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "tardis_session_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<TardisStore> OpenStore() {
    TardisOptions options;
    options.dir = dir_;
    options.flush_mode = Wal::FlushMode::kSync;
    auto store = TardisStore::Open(options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(*store);
  }

  std::string dir_;
};

TEST_F(SessionStoreTest, TaggedCommitFeedsDedup) {
  auto store = OpenStore();
  auto session = store->CreateSession();
  auto txn = store->Begin(session.get());
  ASSERT_TRUE(txn.ok());
  (*txn)->SetSessionTag(77, 1);
  ASSERT_TRUE((*txn)->Put("k", "v").ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  GlobalStateId guid;
  ASSERT_TRUE(store->session_dedup()->Lookup(77, 1, &guid));
  EXPECT_EQ(guid, session->last_commit()->guid());
}

TEST_F(SessionStoreTest, DedupSurvivesCrashRestart) {
  GlobalStateId original;
  {
    auto store = OpenStore();
    auto session = store->CreateSession();
    auto txn = store->Begin(session.get());
    ASSERT_TRUE(txn.ok());
    (*txn)->SetSessionTag(77, 1);
    ASSERT_TRUE((*txn)->Put("k", "v").ok());
    ASSERT_TRUE((*txn)->Commit().ok());
    original = session->last_commit()->guid();
    ASSERT_TRUE(store->Flush().ok());
    // The store drops here without any graceful teardown beyond the
    // flushed commit log — the crash model the dedup table must survive.
  }
  auto store = OpenStore();
  GlobalStateId replayed;
  ASSERT_TRUE(store->session_dedup()->Lookup(77, 1, &replayed))
      << "commit-log replay did not rebuild the dedup table";
  EXPECT_EQ(replayed, original);
}

TEST_F(SessionStoreTest, UntaggedCommitsStayOutOfDedup) {
  auto store = OpenStore();
  auto session = store->CreateSession();
  auto txn = store->Begin(session.get());
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Put("k", "v").ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  EXPECT_EQ(store->session_dedup()->entry_count(), 0u);
}

}  // namespace
}  // namespace tardis
