// Fork-native storage tests (DESIGN.md §12): the CowTrie BranchStore —
// path-copying writes, O(1) fork with structural sharing, tag-based diff,
// and 3-way merge — plus its integration with the TardisStore fast path
// (per-branch reads, trie-diff conflict detection, GC branch release) and
// the existing application merge policies on top of it.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/retwis/retwis.h"
#include "apps/retwis/retwis_merge.h"
#include "baseline/tardis_txkv.h"
#include "core/tardis_store.h"
#include "storage/cowtrie/cow_trie.h"
#include "util/random.h"

namespace tardis {
namespace {

using BranchId = BranchStore::BranchId;
using Version = BranchStore::Version;

std::shared_ptr<const std::string> V(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

Status Put(CowTrie* t, BranchId b, const std::string& key,
           const std::string& value, uint64_t tag) {
  return t->Put(b, key, V(value), tag);
}

std::string Got(const CowTrie& t, BranchId b, const std::string& key) {
  std::string v;
  Status s = t.Get(b, key, &v);
  return s.ok() ? v : "<" + s.ToString() + ">";
}

// ---- single-branch basics ---------------------------------------------------

TEST(CowTrieBasic, PutGetDeleteOverwrite) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  EXPECT_TRUE(t.Get(1, "missing", nullptr).IsNotFound());

  ASSERT_TRUE(Put(&t, 1, "alpha", "1", 10).ok());
  ASSERT_TRUE(Put(&t, 1, "beta", "2", 11).ok());
  EXPECT_EQ(Got(t, 1, "alpha"), "1");
  EXPECT_EQ(Got(t, 1, "beta"), "2");
  EXPECT_EQ(t.BranchSize(1), 2u);

  ASSERT_TRUE(Put(&t, 1, "alpha", "1b", 12).ok());
  EXPECT_EQ(Got(t, 1, "alpha"), "1b");
  EXPECT_EQ(t.BranchSize(1), 2u);

  ASSERT_TRUE(t.Delete(1, "alpha").ok());
  EXPECT_TRUE(t.Get(1, "alpha", nullptr).IsNotFound());
  EXPECT_TRUE(t.Delete(1, "alpha").IsNotFound());
  EXPECT_EQ(t.BranchSize(1), 1u);
  ASSERT_TRUE(t.Delete(1, "beta").ok());
  EXPECT_EQ(t.BranchSize(1), 0u);
}

TEST(CowTrieBasic, PrefixKeysAndEdgeSplits) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  // Keys that are prefixes of each other force values at interior
  // positions; inserting "toast" after "toaster" splits a compressed edge.
  const std::vector<std::string> keys = {"",       "toaster", "toast",
                                         "toasting", "t",     "team"};
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(Put(&t, 1, keys[i], "v" + std::to_string(i), i + 1).ok());
  }
  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(Got(t, 1, keys[i]), "v" + std::to_string(i)) << keys[i];
  }
  EXPECT_EQ(t.BranchSize(1), keys.size());
  // Mid-edge misses.
  EXPECT_TRUE(t.Get(1, "toas", nullptr).IsNotFound());
  EXPECT_TRUE(t.Get(1, "toasters", nullptr).IsNotFound());
  EXPECT_TRUE(t.Get(1, "te", nullptr).IsNotFound());

  // Deleting "toast" leaves a valueless interior node that must compact
  // away without breaking the keys below it.
  ASSERT_TRUE(t.Delete(1, "toast").ok());
  EXPECT_TRUE(t.Get(1, "toast", nullptr).IsNotFound());
  EXPECT_EQ(Got(t, 1, "toaster"), "v1");
  EXPECT_EQ(Got(t, 1, "toasting"), "v3");
}

TEST(CowTrieBasic, BranchLifecycleErrors) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  EXPECT_TRUE(t.CreateBranch(1).IsInvalidArgument());
  EXPECT_TRUE(t.Fork(99, 2).IsNotFound());
  ASSERT_TRUE(t.Fork(1, 2).ok());
  EXPECT_TRUE(t.Fork(1, 2).IsInvalidArgument());
  EXPECT_TRUE(t.HasBranch(2));
  EXPECT_FALSE(t.HasBranch(3));
  EXPECT_TRUE(t.Release(3).IsNotFound());
  ASSERT_TRUE(t.Release(2).ok());
  EXPECT_FALSE(t.HasBranch(2));
  // Operations on unknown branches.
  EXPECT_TRUE(t.Get(2, "k", nullptr).IsNotFound());
  EXPECT_TRUE(Put(&t, 2, "k", "v", 1).IsNotFound());
  EXPECT_TRUE(t.Delete(2, "k").IsNotFound());
  EXPECT_EQ(t.BranchSize(2), 0u);
  EXPECT_EQ(t.branch_count(), 1u);
}

TEST(CowTrieBasic, ForEachOrderAndEarlyStop) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  const std::vector<std::string> keys = {"b", "a", "ab", "aa", "c", ""};
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(Put(&t, 1, keys[i], keys[i] + "!", i + 1).ok());
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(t.ForEach(1, [&](const Slice& k, const std::string& v) {
                 EXPECT_EQ(v, k.ToString() + "!");
                 seen.push_back(k.ToString());
                 return Status::OK();
               }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"", "a", "aa", "ab", "b", "c"}));

  // The first non-OK status stops the walk and is returned.
  int visits = 0;
  Status s = t.ForEach(1, [&](const Slice&, const std::string&) {
    return ++visits == 2 ? Status::Aborted("stop") : Status::OK();
  });
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(visits, 2);
}

// ---- fork + structural sharing ---------------------------------------------

TEST(CowTrieFork, ForkIsSharedUntilWrite) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(Put(&t, 1, "key" + std::to_string(i), "v", 1).ok());
  }
  const uint64_t nodes_before = t.node_count();
  const uint64_t shared_before = t.shared_node_refs();

  ASSERT_TRUE(t.Fork(1, 2).ok());
  // O(1) fork: no new nodes, one extra reference on the shared root.
  EXPECT_EQ(t.node_count(), nodes_before);
  EXPECT_EQ(t.shared_node_refs(), shared_before + 1);

  // Divergence: the child write is invisible to the parent and vice versa.
  ASSERT_TRUE(Put(&t, 2, "key0", "child", 2).ok());
  ASSERT_TRUE(Put(&t, 1, "key1", "parent", 3).ok());
  EXPECT_EQ(Got(t, 1, "key0"), "v");
  EXPECT_EQ(Got(t, 2, "key0"), "child");
  EXPECT_EQ(Got(t, 1, "key1"), "parent");
  EXPECT_EQ(Got(t, 2, "key1"), "v");
  EXPECT_EQ(t.BranchSize(1), 64u);
  EXPECT_EQ(t.BranchSize(2), 64u);
  // Path copying duplicated only a spine, not the store.
  EXPECT_LT(t.node_count(), 2 * nodes_before);
}

TEST(CowTrieFork, ReleaseReclaimsEverything) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(Put(&t, 1, "k" + std::to_string(i), std::string(50, 'x'),
                    i + 1)
                    .ok());
  }
  ASSERT_TRUE(t.Fork(1, 2).ok());
  ASSERT_TRUE(Put(&t, 2, "k0", "y", 1000).ok());
  EXPECT_GT(t.node_count(), 0u);
  ASSERT_TRUE(t.Release(1).ok());
  ASSERT_TRUE(t.Release(2).ok());
  EXPECT_EQ(t.node_count(), 0u);
  EXPECT_EQ(t.shared_node_refs(), 0u);
  EXPECT_EQ(t.branch_count(), 0u);
}

TEST(CowTrieFork, ForkOfEmptyBranch) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  ASSERT_TRUE(t.Fork(1, 2).ok());
  EXPECT_EQ(t.BranchSize(2), 0u);
  ASSERT_TRUE(Put(&t, 2, "k", "v", 1).ok());
  EXPECT_TRUE(t.Get(1, "k", nullptr).IsNotFound());
}

// ---- diff -------------------------------------------------------------------

TEST(CowTrieDiff, TagDifferenceIsTheWriteSet) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  ASSERT_TRUE(Put(&t, 1, "same", "s", 1).ok());
  ASSERT_TRUE(Put(&t, 1, "rewritten", "r", 1).ok());
  ASSERT_TRUE(Put(&t, 1, "deleted", "d", 1).ok());
  ASSERT_TRUE(t.Fork(1, 2).ok());
  // Rewriting identical bytes under a new tag still counts as a write —
  // the DAG's write-set semantics, not value equality.
  ASSERT_TRUE(Put(&t, 2, "rewritten", "r", 2).ok());
  ASSERT_TRUE(t.Delete(2, "deleted").ok());
  ASSERT_TRUE(Put(&t, 2, "added", "a", 2).ok());

  std::map<std::string, std::pair<bool, bool>> seen;  // key -> present b/a
  ASSERT_TRUE(t.Diff(1, 2, [&](const Slice& k, const Version& before,
                               const Version& after) {
                 seen[k.ToString()] = {before.present, after.present};
               }).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen["rewritten"], std::make_pair(true, true));
  EXPECT_EQ(seen["deleted"], std::make_pair(true, false));
  EXPECT_EQ(seen["added"], std::make_pair(false, true));
  EXPECT_EQ(seen.count("same"), 0u);

  // Diff against self is empty (pointer-equal roots prune instantly).
  int n = 0;
  ASSERT_TRUE(
      t.Diff(1, 1, [&](const Slice&, const Version&, const Version&) { n++; })
          .ok());
  EXPECT_EQ(n, 0);
}

TEST(CowTrieDiff, SharedSubtreesAreSkipped) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  for (int i = 0; i < 512; i++) {
    ASSERT_TRUE(Put(&t, 1, "bulk/" + std::to_string(i), "v", 1).ok());
  }
  ASSERT_TRUE(t.Fork(1, 2).ok());
  ASSERT_TRUE(Put(&t, 2, "bulk/7", "w", 2).ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(t.Diff(1, 2, [&](const Slice& k, const Version&,
                               const Version&) {
                 keys.push_back(k.ToString());
               }).ok());
  EXPECT_EQ(keys, std::vector<std::string>{"bulk/7"});
}

// ---- 3-way merge ------------------------------------------------------------

// base branch 1 with three keys; fork into src=2 and dest=3.
class CowTrieMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(t_.CreateBranch(1).ok());
    ASSERT_TRUE(Put(&t_, 1, "left", "base", 1).ok());
    ASSERT_TRUE(Put(&t_, 1, "right", "base", 1).ok());
    ASSERT_TRUE(Put(&t_, 1, "both", "base", 1).ok());
    ASSERT_TRUE(t_.Fork(1, 2).ok());
    ASSERT_TRUE(t_.Fork(1, 3).ok());
  }
  CowTrie t_;
};

TEST_F(CowTrieMergeTest, OneSidedChangesTakeThatSide) {
  ASSERT_TRUE(Put(&t_, 2, "left", "src", 2).ok());
  ASSERT_TRUE(Put(&t_, 3, "right", "dest", 3).ok());
  auto stats = t_.Merge(1, 2, 3, 4, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->conflicts, 0u);
  // One-sided subtrees are adopted wholesale by pointer comparison — no
  // per-key reconciliation happens at all.
  EXPECT_EQ(stats->diff_keys, 0u);
  EXPECT_EQ(Got(t_, 4, "left"), "src");
  EXPECT_EQ(Got(t_, 4, "right"), "dest");
  EXPECT_EQ(Got(t_, 4, "both"), "base");
  EXPECT_EQ(t_.BranchSize(4), 3u);
}

TEST_F(CowTrieMergeTest, SameChangeOnBothSidesIsNotAConflict) {
  ASSERT_TRUE(Put(&t_, 2, "both", "agreed", 7).ok());
  ASSERT_TRUE(Put(&t_, 3, "both", "agreed", 7).ok());
  auto stats = t_.Merge(1, 2, 3, 4, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->conflicts, 0u);
  EXPECT_EQ(Got(t_, 4, "both"), "agreed");
}

TEST_F(CowTrieMergeTest, DefaultResolutionKeepsLargerTag) {
  ASSERT_TRUE(Put(&t_, 2, "both", "older", 5).ok());
  ASSERT_TRUE(Put(&t_, 3, "both", "newer", 9).ok());
  auto stats = t_.Merge(1, 2, 3, 4, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->conflicts, 1u);
  EXPECT_EQ(Got(t_, 4, "both"), "newer");
}

TEST_F(CowTrieMergeTest, ConflictFnSeesAllThreeVersionsAndCanDelete) {
  ASSERT_TRUE(Put(&t_, 2, "both", "A", 5).ok());
  ASSERT_TRUE(Put(&t_, 3, "both", "B", 6).ok());
  ASSERT_TRUE(Put(&t_, 2, "gone", "x", 5).ok());
  ASSERT_TRUE(Put(&t_, 3, "gone", "y", 6).ok());
  auto stats = t_.Merge(
      1, 2, 3, 4,
      [](const Slice& key, const Version& base, const Version& src,
         const Version& dest) {
        if (key == Slice("gone")) return Version{};  // delete the key
        EXPECT_TRUE(base.present);
        EXPECT_EQ(*base.value, "base");
        EXPECT_EQ(*src.value, "A");
        EXPECT_EQ(*dest.value, "B");
        Version out;
        out.present = true;
        out.value = V(*src.value + "+" + *dest.value);
        out.tag = std::max(src.tag, dest.tag);
        return out;
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->conflicts, 2u);
  EXPECT_EQ(Got(t_, 4, "both"), "A+B");
  EXPECT_TRUE(t_.Get(4, "gone", nullptr).IsNotFound());
}

TEST_F(CowTrieMergeTest, DeleteVersusUntouchedPropagates) {
  ASSERT_TRUE(t_.Delete(2, "left").ok());
  auto stats = t_.Merge(1, 2, 3, 4, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->conflicts, 0u);
  EXPECT_TRUE(t_.Get(4, "left", nullptr).IsNotFound());
  EXPECT_EQ(t_.BranchSize(4), 2u);
}

TEST_F(CowTrieMergeTest, DeleteVersusWriteIsAConflict) {
  ASSERT_TRUE(t_.Delete(2, "both").ok());
  ASSERT_TRUE(Put(&t_, 3, "both", "kept", 9).ok());
  auto stats = t_.Merge(1, 2, 3, 4, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->conflicts, 1u);
  // Default tag-max: the write's tag (9) beats the delete's absence.
  EXPECT_EQ(Got(t_, 4, "both"), "kept");
}

TEST_F(CowTrieMergeTest, InPlaceMergeIntoDest) {
  ASSERT_TRUE(Put(&t_, 2, "left", "src", 2).ok());
  ASSERT_TRUE(Put(&t_, 3, "right", "dest", 3).ok());
  auto stats = t_.Merge(1, 2, 3, /*out=*/3, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(Got(t_, 3, "left"), "src");
  EXPECT_EQ(Got(t_, 3, "right"), "dest");
  // src and base are untouched.
  EXPECT_EQ(Got(t_, 2, "right"), "base");
  EXPECT_EQ(Got(t_, 1, "left"), "base");
}

TEST_F(CowTrieMergeTest, MidEdgeDivergence) {
  // Writes that land mid-edge relative to the base's compressed labels
  // exercise the view-detach paths of the merge recursion.
  ASSERT_TRUE(Put(&t_, 2, "le", "src-short", 2).ok());
  ASSERT_TRUE(Put(&t_, 3, "leftmost", "dest-long", 3).ok());
  auto stats = t_.Merge(1, 2, 3, 4, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->conflicts, 0u);
  EXPECT_EQ(Got(t_, 4, "le"), "src-short");
  EXPECT_EQ(Got(t_, 4, "left"), "base");
  EXPECT_EQ(Got(t_, 4, "leftmost"), "dest-long");
}

TEST(CowTrieMerge, CostIsProportionalToDiffNotStoreSize) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(Put(&t, 1, "shared/" + std::to_string(i), "v", 1).ok());
  }
  ASSERT_TRUE(t.Fork(1, 2).ok());
  ASSERT_TRUE(t.Fork(1, 3).ok());
  ASSERT_TRUE(Put(&t, 2, "shared/1", "a", 2).ok());
  ASSERT_TRUE(Put(&t, 3, "shared/999", "b", 3).ok());
  ASSERT_TRUE(Put(&t, 2, "shared/500", "sA", 2).ok());
  ASSERT_TRUE(Put(&t, 3, "shared/500", "sB", 3).ok());
  auto stats = t.Merge(1, 2, 3, 4, nullptr);
  ASSERT_TRUE(stats.ok());
  // Only the doubly-written key needs per-key reconciliation; the
  // one-sided writes and the other 997 shared keys are adopted by
  // pointer comparison without being walked.
  EXPECT_EQ(stats->diff_keys, 1u);
  EXPECT_EQ(stats->conflicts, 1u);
  EXPECT_EQ(Got(t, 4, "shared/1"), "a");
  EXPECT_EQ(Got(t, 4, "shared/999"), "b");
  EXPECT_EQ(Got(t, 4, "shared/500"), "sB");  // larger tag wins
  EXPECT_EQ(t.BranchSize(4), 1000u);
}

TEST(CowTrieMerge, EmptyAndMissingBranches) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  ASSERT_TRUE(t.Fork(1, 2).ok());
  ASSERT_TRUE(t.Fork(1, 3).ok());
  auto stats = t.Merge(1, 2, 3, 4, nullptr);  // all empty
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->diff_keys, 0u);
  EXPECT_EQ(t.BranchSize(4), 0u);
  EXPECT_TRUE(t.HasBranch(4));
  EXPECT_FALSE(t.Merge(1, 99, 3, 5, nullptr).ok());
}

// ---- concurrency: readers over forked branches vs a path-copying writer ----
// Exercised under TSan by the cowtrie ctest label (.github/workflows).

TEST(CowTrieConcurrency, ReadersNeverBlockOrTearDuringPathCopying) {
  CowTrie t;
  ASSERT_TRUE(t.CreateBranch(1).ok());
  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(Put(&t, 1, "k" + std::to_string(i), "stable", 1).ok());
  }
  // Readers work on frozen forks 10..13; the writer churns branch 1 and
  // forks/releases scratch branches — the exact branch-on-conflict access
  // pattern (sibling readers vs a path-copying writer).
  for (BranchId b = 10; b < 14; b++) ASSERT_TRUE(t.Fork(1, b).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; r++) {
    readers.emplace_back([&, r] {
      const BranchId b = 10 + r;
      Random rng(r + 1);
      std::string v;
      while (!stop.load(std::memory_order_acquire)) {
        const int i = static_cast<int>(rng.Uniform(kKeys));
        if (!t.Get(b, "k" + std::to_string(i), &v).ok() || v != "stable") {
          errors.fetch_add(1);
        }
        if (rng.Uniform(64) == 0) {
          uint64_t n = 0;
          Status s = t.ForEach(b, [&](const Slice&, const std::string&) {
            n++;
            return Status::OK();
          });
          if (!s.ok() || n != kKeys) errors.fetch_add(1);
        }
      }
    });
  }

  Random rng(42);
  for (int round = 0; round < 2000; round++) {
    const int i = static_cast<int>(rng.Uniform(kKeys));
    const std::string key = "k" + std::to_string(i);
    if (rng.Uniform(4) == 0) {
      t.Delete(1, key);
    } else {
      ASSERT_TRUE(Put(&t, 1, key, "w" + std::to_string(round), round + 2)
                      .ok());
    }
    if (rng.Uniform(32) == 0) {
      const BranchId scratch = 100 + (round % 8);
      if (t.HasBranch(scratch)) ASSERT_TRUE(t.Release(scratch).ok());
      ASSERT_TRUE(t.Fork(1, scratch).ok());
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(errors.load(), 0);
}

// ---- TardisStore integration: the trie fast path ---------------------------

TEST(TrieStoreIntegration, BackendSelectionAndIntrospection) {
  TardisOptions mem;
  auto mem_store = TardisStore::Open(mem);
  ASSERT_TRUE(mem_store.ok());
  EXPECT_STREQ((*mem_store)->backend_name(), "mem");
  EXPECT_EQ((*mem_store)->branch_store(), nullptr);
  EXPECT_FALSE((*mem_store)->trie_fast_path());

  TardisOptions trie;
  trie.backend = RecordBackend::kTrie;
  auto trie_store = TardisStore::Open(trie);
  ASSERT_TRUE(trie_store.ok());
  EXPECT_STREQ((*trie_store)->backend_name(), "trie");
  ASSERT_NE((*trie_store)->branch_store(), nullptr);
  EXPECT_STREQ((*trie_store)->branch_store()->name(), "trie");
  EXPECT_TRUE((*trie_store)->trie_fast_path());
}

// Runs the same scripted fork/merge workload on a mem-backed and a
// trie-backed store and requires identical reads everywhere: the trie fast
// path must be observationally equivalent to the key-version map.
TEST(TrieStoreIntegration, TrieFastPathMatchesMemBackend) {
  TardisOptions mem_opts;
  TardisOptions trie_opts;
  trie_opts.backend = RecordBackend::kTrie;

  auto run = [](const TardisOptions& opts) {
    auto store = TardisStore::Open(opts);
    EXPECT_TRUE(store.ok());
    Random rng(7);
    constexpr int kSessions = 3;
    std::vector<std::unique_ptr<ClientSession>> sessions;
    for (int i = 0; i < kSessions; i++) {
      sessions.push_back((*store)->CreateSession());
    }
    auto merger = (*store)->CreateSession();
    for (int round = 0; round < 120; round++) {
      if (rng.Bernoulli(0.15)) {
        while ((*store)->dag()->Leaves().size() > 1) {
          auto m = (*store)->BeginMerge(merger.get());
          EXPECT_TRUE(m.ok());
          auto forks = (*m)->FindForkPoints((*m)->parents());
          EXPECT_TRUE(forks.ok());
          auto conflicts = (*m)->FindConflictWrites((*m)->parents());
          EXPECT_TRUE(conflicts.ok());
          for (const std::string& key : *conflicts) {
            // Deterministic resolution: lexicographically-largest branch
            // value wins, so both backends converge identically.
            std::string best;
            for (StateId p : (*m)->parents()) {
              std::string v;
              if ((*m)->GetForId(key, p, &v).ok() && v > best) best = v;
            }
            EXPECT_TRUE((*m)->Put(key, best).ok());
          }
          EXPECT_TRUE((*m)->Commit().ok());
        }
      } else {
        auto& session = sessions[rng.Uniform(kSessions)];
        auto txn = (*store)->Begin(session.get());
        EXPECT_TRUE(txn.ok());
        const std::string key = "k" + std::to_string(rng.Uniform(12));
        std::string v;
        (*txn)->Get(key, &v);  // NotFound is fine
        EXPECT_TRUE(
            (*txn)->Put(key, v + "." + std::to_string(round)).ok());
        EXPECT_TRUE((*txn)->Commit().ok());
      }
    }
    // Final converged read of the whole keyspace.
    while ((*store)->dag()->Leaves().size() > 1) {
      auto m = (*store)->BeginMerge(merger.get());
      EXPECT_TRUE(m.ok());
      EXPECT_TRUE((*m)->Commit().ok());
    }
    std::map<std::string, std::string> out;
    auto txn = (*store)->Begin(merger.get());
    EXPECT_TRUE(txn.ok());
    for (int i = 0; i < 12; i++) {
      const std::string key = "k" + std::to_string(i);
      std::string v;
      if ((*txn)->Get(key, &v).ok()) out[key] = v;
    }
    (*txn)->Abort();
    return out;
  };

  const auto mem_result = run(mem_opts);
  const auto trie_result = run(trie_opts);
  EXPECT_EQ(mem_result, trie_result);
  EXPECT_FALSE(mem_result.empty());
}

// Acceptance scenario: sibling branches write the same key; the conflict
// surfaces through FindConflictWrites (served by the trie's O(diff) Diff on
// this backend) and the application's merge policy resolves it.
TEST(TrieStoreIntegration, ConflictSurfacesToApplicationMergePolicy) {
  TardisOptions options;
  options.backend = RecordBackend::kTrie;
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->trie_fast_path());

  auto seeder = (*store)->CreateSession();
  {
    auto t = (*store)->Begin(seeder.get());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Put("cnt", "10").ok());
    ASSERT_TRUE((*t)->Put("untouched", "u").ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }

  // Two sessions read cnt=10, then both write it: branch-on-conflict forks.
  auto s1 = (*store)->CreateSession();
  auto s2 = (*store)->CreateSession();
  auto t1 = (*store)->Begin(s1.get());
  auto t2 = (*store)->Begin(s2.get());
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("cnt", &v).ok());
  ASSERT_TRUE((*t2)->Get("cnt", &v).ok());
  ASSERT_TRUE((*t1)->Put("cnt", "13").ok());  // +3
  ASSERT_TRUE((*t2)->Put("cnt", "15").ok());  // +5
  ASSERT_TRUE((*t1)->Commit().ok());
  ASSERT_TRUE((*t2)->Commit().ok());
  ASSERT_EQ((*store)->dag()->Leaves().size(), 2u);

  // Application merge policy (the Table 2 pattern): the conflict set must
  // contain exactly the doubly-written key, and a counter-style resolver
  // folds the per-branch deltas over the fork-point value.
  auto merger = (*store)->CreateSession();
  auto m = (*store)->BeginMerge(merger.get());
  ASSERT_TRUE(m.ok());
  auto parents = (*m)->parents();
  ASSERT_EQ(parents.size(), 2u);
  auto forks = (*m)->FindForkPoints(parents);
  ASSERT_TRUE(forks.ok());
  auto conflicts = (*m)->FindConflictWrites(parents);
  ASSERT_TRUE(conflicts.ok());
  EXPECT_EQ(*conflicts, std::vector<std::string>{"cnt"});

  auto value_at = [&](StateId sid) {
    std::string raw;
    EXPECT_TRUE((*m)->GetForId("cnt", sid, &raw).ok());
    return std::stoll(raw);
  };
  int64_t result = value_at((*forks)[0]);
  for (StateId p : parents) result += value_at(p) - value_at((*forks)[0]);
  ASSERT_TRUE((*m)->Put("cnt", std::to_string(result)).ok());
  ASSERT_TRUE((*m)->Commit().ok());

  auto reader = (*store)->CreateSession();
  auto t = (*store)->Begin(reader.get());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->Get("cnt", &v).ok());
  EXPECT_EQ(v, "18");  // 10 + 3 + 5
  ASSERT_TRUE((*t)->Get("untouched", &v).ok());
  EXPECT_EQ(v, "u");
  (*t)->Abort();
  EXPECT_TRUE((*store)->trie_fast_path());
}

// The existing Retwis conflict resolver (an unmodified application merge
// policy) runs on the trie backend and reconciles forked timelines.
TEST(TrieStoreIntegration, RetwisMergerResolvesForkedTimelinesOnTrie) {
  TardisOptions options;
  options.backend = RecordBackend::kTrie;
  auto inner = TardisStore::Open(options);
  ASSERT_TRUE(inner.ok());
  TardisStore* ts = inner->get();
  ASSERT_TRUE(ts->trie_fast_path());
  TardisTxKv store(ts);
  retwis::Retwis app(&store);
  auto seed = app.NewClient();
  ASSERT_TRUE(app.CreateAccount(seed.get(), 1).ok());
  ASSERT_TRUE(app.PostTweet(seed.get(), 1, "base").ok());

  // Fork the timeline key: two raw transactions read the same snapshot
  // and both rewrite it.
  auto sa = ts->CreateSession();
  auto sb = ts->CreateSession();
  auto ta = ts->Begin(sa.get());
  auto tb = ts->Begin(sb.get());
  ASSERT_TRUE(ta.ok() && tb.ok());
  std::string raw;
  ASSERT_TRUE((*ta)->Get(retwis::Retwis::TimelineKey(1), &raw).ok());
  auto la = retwis::Retwis::DecodeTimeline(raw);
  la.insert(la.begin(), retwis::Post{la[0].timestamp_us + 100, 1001, 1});
  ASSERT_TRUE((*ta)->Put(retwis::Retwis::TimelineKey(1),
                         retwis::Retwis::EncodeTimeline(la))
                  .ok());
  ASSERT_TRUE((*tb)->Get(retwis::Retwis::TimelineKey(1), &raw).ok());
  auto lb = retwis::Retwis::DecodeTimeline(raw);
  lb.insert(lb.begin(), retwis::Post{lb[0].timestamp_us + 200, 1002, 1});
  ASSERT_TRUE((*tb)->Put(retwis::Retwis::TimelineKey(1),
                         retwis::Retwis::EncodeTimeline(lb))
                  .ok());
  ASSERT_TRUE((*ta)->Commit().ok());
  ASSERT_TRUE((*tb)->Commit().ok());
  ASSERT_EQ(ts->dag()->Leaves().size(), 2u);

  retwis::RetwisMerger merger(ts);
  ASSERT_TRUE(merger.MergeOnce().ok());
  EXPECT_EQ(ts->dag()->Leaves().size(), 1u);

  auto cc = app.NewClient();
  auto tl = app.ReadOwnTimeline(cc.get(), 1);
  ASSERT_TRUE(tl.ok());
  ASSERT_EQ(tl->size(), 3u);  // base + both branch posts, order preserved
  EXPECT_EQ((*tl)[0].post_id, 1002u);
  EXPECT_EQ((*tl)[1].post_id, 1001u);
  EXPECT_TRUE(ts->trie_fast_path());
}

TEST(TrieStoreIntegration, GcReleasesCompressedBranches) {
  TardisOptions options;
  options.backend = RecordBackend::kTrie;
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  CowTrie* trie = static_cast<CowTrie*>((*store)->branch_store());
  ASSERT_NE(trie, nullptr);

  auto session = (*store)->CreateSession();
  for (int i = 0; i < 20; i++) {
    auto t = (*store)->Begin(session.get());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Put("k" + std::to_string(i % 4), "v" +
                          std::to_string(i)).ok());
    ASSERT_TRUE((*t)->Commit().ok());
  }
  const size_t branches_before = trie->branch_count();
  (*store)->PlaceCeiling(session.get());
  GcStats stats = (*store)->RunGarbageCollection();
  EXPECT_GT(stats.states_deleted, 0u);
  // DAG compression released the spliced-away states' trie branches.
  EXPECT_LT(trie->branch_count(), branches_before);

  // Reads (served by the trie fast path) survive compression.
  auto t = (*store)->Begin(session.get());
  ASSERT_TRUE(t.ok());
  std::string v;
  ASSERT_TRUE((*t)->Get("k3", &v).ok());
  EXPECT_EQ(v, "v19");
  (*t)->Abort();
  EXPECT_TRUE((*store)->trie_fast_path());
}

}  // namespace
}  // namespace tardis
