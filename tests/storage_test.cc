// Tests for the disk substrate: pager, buffer pool, B+Tree, WAL and the
// RecordStore implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/btree_record_store.h"
#include "storage/buffer_pool.h"
#include "storage/memstore.h"
#include "storage/pager.h"
#include "storage/wal.h"
#include "util/random.h"

namespace tardis {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "tardis_storage_" + name + "_" +
         std::to_string(::getpid());
}

class PagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    ::remove(path_.c_str());
  }
  void TearDown() override { ::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PagerTest, AllocateReadWriteRoundTrip) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  auto id = (*pager)->AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_GE(*id, 1u);  // page 0 is meta

  char out[kPageSize];
  memset(out, 0xAB, sizeof(out));
  ASSERT_TRUE((*pager)->WritePage(*id, out).ok());
  char in[kPageSize];
  ASSERT_TRUE((*pager)->ReadPage(*id, in).ok());
  EXPECT_EQ(memcmp(in, out, kPageSize), 0);
}

TEST_F(PagerTest, FreeListReusesPages) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto a = (*pager)->AllocatePage();
  auto b = (*pager)->AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*pager)->FreePage(*a).ok());
  auto c = (*pager)->AllocatePage();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // reused from the free list
}

TEST_F(PagerTest, MetaPersistsAcrossReopen) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*pager)->SetRoot(*id).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->root(), 1u);
  EXPECT_EQ((*pager)->page_count(), 2u);
}

TEST_F(PagerTest, RejectsOutOfRangeAccess) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  char buf[kPageSize];
  EXPECT_TRUE((*pager)->ReadPage(999, buf).IsInvalidArgument());
  EXPECT_TRUE((*pager)->FreePage(0).IsInvalidArgument());  // meta page
}

class BufferPoolTest : public PagerTest {};

TEST_F(BufferPoolTest, FetchCachesPages) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  const PageId id = page->id();
  page->data()[0] = 'Z';
  page->MarkDirty();
  page->Release();

  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 'Z');
  EXPECT_GE(pool.hit_count(), 1u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; i++) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    page->data()[0] = static_cast<char>('a' + i);
    page->MarkDirty();
    ids.push_back(page->id());
  }
  // All six written through a 2-frame pool: re-read and verify.
  for (int i = 0; i < 6; i++) {
    auto page = pool.Fetch(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], static_cast<char>('a' + i));
  }
}

TEST_F(BufferPoolTest, PinnedPagesCannotBeEvicted) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 2);
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  ASSERT_TRUE(a.ok() && b.ok());
  // Both frames pinned; a third allocation must fail with Busy.
  auto c = pool.NewPage();
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsBusy());
  a->Release();
  auto d = pool.NewPage();
  EXPECT_TRUE(d.ok());
}

class BTreeTest : public PagerTest {
 protected:
  void Open(size_t cache_pages = 256) {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(*pager);
    pool_ = std::make_unique<BufferPool>(pager_.get(), cache_pages);
    auto tree = BTree::Open(pool_.get(), pager_.get());
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(*tree);
  }
  void Reopen() {
    tree_.reset();
    pool_->FlushAll();
    pager_->Sync();
    pool_.reset();
    pager_.reset();
    Open();
  }
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, PutGetSingle) {
  Open();
  ASSERT_TRUE(tree_->Put("key", "value").ok());
  std::string v;
  ASSERT_TRUE(tree_->Get("key", &v).ok());
  EXPECT_EQ(v, "value");
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, GetMissingIsNotFound) {
  Open();
  std::string v;
  EXPECT_TRUE(tree_->Get("nope", &v).IsNotFound());
}

TEST_F(BTreeTest, OverwriteReplacesValue) {
  Open();
  ASSERT_TRUE(tree_->Put("k", "v1").ok());
  ASSERT_TRUE(tree_->Put("k", "v2").ok());
  std::string v;
  ASSERT_TRUE(tree_->Get("k", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, RejectsOversizedPayload) {
  Open();
  EXPECT_TRUE(
      tree_->Put("k", std::string(BTree::kMaxPayload + 1, 'x'))
          .IsInvalidArgument());
  EXPECT_TRUE(tree_->Put("", "v").IsInvalidArgument());
}

TEST_F(BTreeTest, ManyKeysSplitAndStaySorted) {
  Open();
  std::map<std::string, std::string> model;
  Random rng(11);
  for (int i = 0; i < 5000; i++) {
    std::string key = "key" + std::to_string(rng.Uniform(100000));
    std::string value = "val" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(tree_->Put(key, value).ok()) << i;
  }
  EXPECT_EQ(tree_->size(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(tree_->Get(k, &got).ok()) << k;
    EXPECT_EQ(got, v);
  }
  // Full scan must be in key order and match the model exactly.
  auto it = tree_->NewIterator();
  auto expect = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(it.key().ToString(), expect->first);
    EXPECT_EQ(it.value().ToString(), expect->second);
  }
  EXPECT_EQ(expect, model.end());
}

TEST_F(BTreeTest, SequentialInsertDescendingAndAscending) {
  Open();
  for (int i = 999; i >= 0; i--) {
    char buf[16];
    snprintf(buf, sizeof(buf), "d%04d", i);
    ASSERT_TRUE(tree_->Put(buf, "x").ok());
  }
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "a%04d", i);
    ASSERT_TRUE(tree_->Put(buf, "y").ok());
  }
  EXPECT_EQ(tree_->size(), 2000u);
  std::string v;
  EXPECT_TRUE(tree_->Get("d0500", &v).ok());
  EXPECT_TRUE(tree_->Get("a0999", &v).ok());
}

TEST_F(BTreeTest, DeleteRemovesKeys) {
  Open();
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(tree_->Put("k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(tree_->Delete("k" + std::to_string(i)).ok());
  }
  EXPECT_EQ(tree_->size(), 500u);
  std::string v;
  EXPECT_TRUE(tree_->Get("k0", &v).IsNotFound());
  EXPECT_TRUE(tree_->Get("k1", &v).ok());
  EXPECT_TRUE(tree_->Delete("k0").IsNotFound());
}

TEST_F(BTreeTest, IteratorSeek) {
  Open();
  for (int i = 0; i < 100; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%03d", i * 2);  // even keys only
    ASSERT_TRUE(tree_->Put(buf, "v").ok());
  }
  auto it = tree_->NewIterator();
  it.Seek("k005");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k006");
  it.Seek("k198");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k198");
  it.Seek("k199");
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(tree_->Put("p" + std::to_string(i), std::to_string(i)).ok());
  }
  Reopen();
  EXPECT_EQ(tree_->size(), 2000u);
  std::string v;
  ASSERT_TRUE(tree_->Get("p1234", &v).ok());
  EXPECT_EQ(v, "1234");
}

TEST_F(BTreeTest, LargeValuesNearLimit) {
  Open();
  const std::string big(BTree::kMaxPayload - 10, 'B');
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(tree_->Put("big" + std::to_string(i), big).ok());
  }
  std::string v;
  ASSERT_TRUE(tree_->Get("big25", &v).ok());
  EXPECT_EQ(v, big);
}

class WalTest : public PagerTest {};

TEST_F(WalTest, AppendAndReplay) {
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("one").ok());
  ASSERT_TRUE((*wal)->Append("two").ok());
  ASSERT_TRUE((*wal)->Append("three").ok());
  std::vector<std::string> seen;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice& s) {
                    seen.push_back(s.ToString());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(WalTest, SurvivesReopen) {
  {
    auto wal = Wal::Open(path_, Wal::FlushMode::kSync);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("durable").ok());
  }
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  int n = 0;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice& s) {
                    EXPECT_EQ(s.ToString(), "durable");
                    n++;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(n, 1);
}

TEST_F(WalTest, StopsAtTornRecord) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("good").ok());
    ASSERT_TRUE((*wal)->Append("alsogood").ok());
  }
  // Corrupt the tail by truncating mid-record.
  {
    FILE* f = fopen(path_.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size - 3), 0);
    fclose(f);
  }
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  std::vector<std::string> seen;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice& s) {
                    seen.push_back(s.ToString());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"good"}));
}

TEST_F(WalTest, StopsAtCorruptCrc) {
  {
    auto wal = Wal::Open(path_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("aaaa").ok());
    ASSERT_TRUE((*wal)->Append("bbbb").ok());
  }
  {
    FILE* f = fopen(path_.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    fseek(f, 10, SEEK_SET);  // flip a payload byte of record 1
    fputc(0xFF, f);
    fclose(f);
  }
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  int n = 0;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice&) {
                    n++;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(n, 0);  // first record corrupt: replay stops immediately
}

TEST_F(WalTest, TruncateClears) {
  auto wal = Wal::Open(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("x").ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  int n = 0;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice&) {
                    n++;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(n, 0);
  EXPECT_EQ((*wal)->appended_bytes(), 0u);
}

TEST(MemStoreTest, BasicOps) {
  MemRecordStore store;
  EXPECT_TRUE(store.Put("a", "1").ok());
  std::string v;
  EXPECT_TRUE(store.Get("a", &v).ok());
  EXPECT_EQ(v, "1");
  EXPECT_TRUE(store.Get("b", &v).IsNotFound());
  EXPECT_TRUE(store.Delete("a").ok());
  EXPECT_TRUE(store.Delete("a").IsNotFound());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Sync().ok());
}

TEST_F(PagerTest, BTreeRecordStoreEndToEnd) {
  auto store = BTreeRecordStore::Open(path_, 64);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        (*store)->Put("rk" + std::to_string(i), "rv" + std::to_string(i)).ok());
  }
  std::string v;
  ASSERT_TRUE((*store)->Get("rk250", &v).ok());
  EXPECT_EQ(v, "rv250");
  ASSERT_TRUE((*store)->Delete("rk250").ok());
  EXPECT_TRUE((*store)->Get("rk250", &v).IsNotFound());
  EXPECT_TRUE((*store)->Sync().ok());
}

}  // namespace
}  // namespace tardis
