// Direct unit tests for the begin/end constraints of Table 1 and their
// combinators, plus the commit-log codec.

#include <gtest/gtest.h>

#include "core/commit_log.h"
#include "core/constraints.h"
#include "core/state_dag.h"

namespace tardis {
namespace {

StatePtr Extend(StateDag* dag, const StatePtr& parent,
                std::vector<std::string> reads = {},
                std::vector<std::string> writes = {}) {
  KeySet rs, ws;
  for (auto& k : reads) rs.Add(k);
  for (auto& k : writes) ws.Add(k);
  std::lock_guard<std::mutex> guard(dag->Lock());
  return dag->CreateStateLocked({parent}, dag->NextLocalGuid(),
                                std::move(rs), std::move(ws), false);
}

class ConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1_ = Extend(&dag_, dag_.root());
    s2_ = Extend(&dag_, s1_, {}, {"x"});
    s3_ = Extend(&dag_, s1_, {}, {"y"});  // fork below s1
  }

  StateDag dag_;
  StatePtr s1_, s2_, s3_;
  TxnContext ctx_;
};

TEST_F(ConstraintTest, AnyBeginAcceptsEverything) {
  auto c = AnyBegin();
  EXPECT_TRUE(c->Satisfies(ctx_, *dag_.root()));
  EXPECT_TRUE(c->Satisfies(ctx_, *s3_));
  EXPECT_FALSE(c->PrefersSessionTip());
}

TEST_F(ConstraintTest, ParentBeginMatchesExactState) {
  auto c = ParentBegin();
  ctx_.session_last_commit = s2_;
  EXPECT_TRUE(c->Satisfies(ctx_, *s2_));
  EXPECT_FALSE(c->Satisfies(ctx_, *s1_));
  EXPECT_FALSE(c->Satisfies(ctx_, *s3_));
}

TEST_F(ConstraintTest, ParentBeginBeforeFirstCommitIsRoot) {
  auto c = ParentBegin();
  ctx_.session_last_commit = nullptr;
  EXPECT_TRUE(c->Satisfies(ctx_, *dag_.root()));
  EXPECT_FALSE(c->Satisfies(ctx_, *s1_));
}

TEST_F(ConstraintTest, AncestorBeginAcceptsDescendants) {
  auto c = AncestorBegin();
  ctx_.session_last_commit = s1_;
  EXPECT_TRUE(c->Satisfies(ctx_, *s1_));   // self
  EXPECT_TRUE(c->Satisfies(ctx_, *s2_));   // child
  EXPECT_TRUE(c->Satisfies(ctx_, *s3_));   // other child
  EXPECT_FALSE(c->Satisfies(ctx_, *dag_.root()));  // ancestor, not desc
  EXPECT_TRUE(c->PrefersSessionTip());

  ctx_.session_last_commit = s2_;
  EXPECT_FALSE(c->Satisfies(ctx_, *s3_));  // sibling branch
}

TEST_F(ConstraintTest, AncestorBeginWithNoHistoryAcceptsAll) {
  auto c = AncestorBegin();
  ctx_.session_last_commit = nullptr;
  EXPECT_TRUE(c->Satisfies(ctx_, *s3_));
}

TEST_F(ConstraintTest, StateIdBeginPinsId) {
  auto c = StateIdBegin(s2_->id());
  EXPECT_TRUE(c->Satisfies(ctx_, *s2_));
  EXPECT_FALSE(c->Satisfies(ctx_, *s3_));
}

TEST_F(ConstraintTest, BeginCombinators) {
  ctx_.session_last_commit = s1_;
  auto both = AndBegin({AncestorBegin(), StateIdBegin(s2_->id())});
  EXPECT_TRUE(both->Satisfies(ctx_, *s2_));
  EXPECT_FALSE(both->Satisfies(ctx_, *s3_));

  auto either = OrBegin({StateIdBegin(s2_->id()), StateIdBegin(s3_->id())});
  EXPECT_TRUE(either->Satisfies(ctx_, *s2_));
  EXPECT_TRUE(either->Satisfies(ctx_, *s3_));
  EXPECT_FALSE(either->Satisfies(ctx_, *s1_));
}

TEST_F(ConstraintTest, SerializabilityStepChecksReadSet) {
  auto c = SerializabilityEnd();
  ctx_.reads.Add("x");
  EXPECT_FALSE(c->StepOk(ctx_, *s2_));  // s2 wrote x which we read
  EXPECT_TRUE(c->StepOk(ctx_, *s3_));   // s3 wrote y only
  EXPECT_TRUE(c->FinalOk(ctx_, *s2_));  // no structural demand
}

TEST_F(ConstraintTest, SnapshotIsolationStepChecksWriteSet) {
  auto c = SnapshotIsolationEnd();
  ctx_.writes.Add("x");
  ctx_.reads.Add("x");                  // reads don't matter for SI
  EXPECT_FALSE(c->StepOk(ctx_, *s2_));  // write-write on x
  EXPECT_TRUE(c->StepOk(ctx_, *s3_));
}

TEST_F(ConstraintTest, ReadCommittedAlwaysPasses) {
  auto c = ReadCommittedEnd();
  ctx_.reads.Add("x");
  ctx_.writes.Add("x");
  EXPECT_TRUE(c->StepOk(ctx_, *s2_));
  EXPECT_TRUE(c->FinalOk(ctx_, *s2_));
}

TEST_F(ConstraintTest, NoBranchingRequiresChildlessParent) {
  auto c = NoBranchingEnd();
  EXPECT_TRUE(c->StepOk(ctx_, *s2_));     // stepping is unrestricted
  EXPECT_FALSE(c->FinalOk(ctx_, *s1_));   // s1 has two children
  EXPECT_TRUE(c->FinalOk(ctx_, *s2_));    // leaf
}

TEST_F(ConstraintTest, KBranchingCountsChildren) {
  // k=3 permits fewer than 2 children at the commit parent.
  auto c = KBranchingEnd(3);
  EXPECT_TRUE(c->FinalOk(ctx_, *s2_));    // 0 children
  StatePtr s4 = Extend(&dag_, s2_);
  EXPECT_FALSE(KBranchingEnd(2)->FinalOk(ctx_, *s2_));  // 1 child, k=2
  EXPECT_TRUE(c->FinalOk(ctx_, *s2_));    // 1 child < 2
  StatePtr s5 = Extend(&dag_, s2_);
  EXPECT_FALSE(c->FinalOk(ctx_, *s2_));   // 2 children
}

TEST_F(ConstraintTest, StateIdEndPinsParent) {
  auto c = StateIdEnd(s2_->id());
  EXPECT_TRUE(c->FinalOk(ctx_, *s2_));
  EXPECT_FALSE(c->FinalOk(ctx_, *s3_));
  EXPECT_TRUE(c->StepOk(ctx_, *s1_));   // may ripple through ancestors
  EXPECT_FALSE(c->StepOk(ctx_, *s3_));  // s3.id > target
}

TEST_F(ConstraintTest, EndCombinators) {
  ctx_.reads.Add("x");
  auto both = AndEnd({SerializabilityEnd(), NoBranchingEnd()});
  EXPECT_FALSE(both->StepOk(ctx_, *s2_));   // ser part fails
  EXPECT_FALSE(both->FinalOk(ctx_, *s1_));  // no-branching part fails
  EXPECT_TRUE(both->FinalOk(ctx_, *s2_));

  auto either = OrEnd({SerializabilityEnd(), ReadCommittedEnd()});
  EXPECT_TRUE(either->StepOk(ctx_, *s2_));  // RC side passes
}

TEST_F(ConstraintTest, NamesAreDescriptive) {
  EXPECT_EQ(AncestorBegin()->name(), "Ancestor");
  EXPECT_EQ(SerializabilityEnd()->name(), "Serializability");
  EXPECT_EQ(KBranchingEnd(4)->name(), "KBranching(4)");
  EXPECT_NE(AndEnd({SerializabilityEnd(), NoBranchingEnd()})->name().find(
                "NoBranching"),
            std::string::npos);
}

// ---- commit log codec ----------------------------------------------------------

TEST(CommitLogCodecTest, RoundTrip) {
  CommitLogEntry entry;
  entry.id = 42;
  entry.guid = {3, 99};
  entry.parent_ids = {7, 12};
  entry.is_merge = true;
  entry.write_keys = {"alpha", "beta", ""};

  CommitLogEntry decoded;
  ASSERT_TRUE(
      CommitLog::Deserialize(Slice(CommitLog::Serialize(entry)), &decoded));
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.guid.site, 3u);
  EXPECT_EQ(decoded.guid.seq, 99u);
  EXPECT_EQ(decoded.parent_ids, (std::vector<StateId>{7, 12}));
  EXPECT_TRUE(decoded.is_merge);
  EXPECT_EQ(decoded.write_keys,
            (std::vector<std::string>{"alpha", "beta", ""}));
}

TEST(CommitLogCodecTest, EmptyEntry) {
  CommitLogEntry entry;
  entry.id = 0;
  CommitLogEntry decoded;
  ASSERT_TRUE(
      CommitLog::Deserialize(Slice(CommitLog::Serialize(entry)), &decoded));
  EXPECT_TRUE(decoded.parent_ids.empty());
  EXPECT_TRUE(decoded.write_keys.empty());
  EXPECT_FALSE(decoded.is_merge);
}

TEST(CommitLogCodecTest, TruncationsRejected) {
  CommitLogEntry entry;
  entry.id = 9;
  entry.parent_ids = {1};
  entry.write_keys = {"key"};
  const std::string full = CommitLog::Serialize(entry);
  for (size_t cut = 0; cut < full.size(); cut++) {
    CommitLogEntry decoded;
    EXPECT_FALSE(
        CommitLog::Deserialize(Slice(full.data(), cut), &decoded))
        << "cut=" << cut;
  }
  // Trailing garbage also rejected.
  CommitLogEntry decoded;
  EXPECT_FALSE(CommitLog::Deserialize(Slice(full + "x"), &decoded));
}

}  // namespace
}  // namespace tardis
