// Tests for automatic checkpointing (§6.5): the commit log is truncated
// once it crosses the configured size, and recovery afterwards sees the
// checkpoint plus the fresh log suffix.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "core/tardis_store.h"

namespace tardis {
namespace {

class AutoCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "tardis_autockpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(AutoCheckpointTest, LogStaysBounded) {
  TardisOptions options;
  options.dir = dir_;
  options.checkpoint_log_bytes = 4096;  // tiny bound: checkpoint often
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto session = (*store)->CreateSession();
  for (int i = 0; i < 500; i++) {
    auto txn = (*store)->Begin(session.get());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("key" + std::to_string(i % 20), "v").ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  // The log was truncated at least once: its size is far below what 500
  // unbounded entries would occupy.
  const auto log_size =
      std::filesystem::file_size(dir_ + "/commit.log");
  EXPECT_LT(log_size, 16'384u);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/checkpoint.log"));
}

TEST_F(AutoCheckpointTest, RecoveryAfterAutoCheckpoint) {
  {
    TardisOptions options;
    options.dir = dir_;
    options.checkpoint_log_bytes = 2048;
    options.flush_mode = Wal::FlushMode::kSync;
    auto store = TardisStore::Open(options);
    ASSERT_TRUE(store.ok());
    auto session = (*store)->CreateSession();
    for (int i = 0; i < 200; i++) {
      auto txn = (*store)->Begin(session.get());
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(
          (*txn)->Put("k" + std::to_string(i % 10), std::to_string(i)).ok());
      ASSERT_TRUE((*txn)->Commit().ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  TardisOptions options;
  options.dir = dir_;
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto session = (*store)->CreateSession();
  auto txn = (*store)->Begin(session.get());
  ASSERT_TRUE(txn.ok());
  for (int k = 0; k < 10; k++) {
    // Last writer of k was round 190+k.
    std::string v;
    ASSERT_TRUE((*txn)->Get("k" + std::to_string(k), &v).ok()) << k;
    EXPECT_EQ(v, std::to_string(190 + k));
  }
  (*txn)->Abort();
  EXPECT_EQ((*store)->dag()->state_count(), 201u);
}

TEST_F(AutoCheckpointTest, DisabledByDefault) {
  TardisOptions options;
  options.dir = dir_;
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto session = (*store)->CreateSession();
  for (int i = 0; i < 100; i++) {
    auto txn = (*store)->Begin(session.get());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("k", "v").ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/checkpoint.log"));
}

}  // namespace
}  // namespace tardis
