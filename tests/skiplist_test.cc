// Unit and stress tests for the concurrent skip list backing the
// key-version map.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "storage/skiplist.h"

namespace tardis {
namespace {

struct IntCmp {
  int operator()(int a, int b) const { return a < b ? -1 : (a > b ? 1 : 0); }
};
using IntList = SkipList<int, IntCmp>;

TEST(SkipListTest, InsertAndContains) {
  IntList list{IntCmp()};
  EXPECT_FALSE(list.Contains(3));
  EXPECT_TRUE(list.Insert(3));
  EXPECT_TRUE(list.Contains(3));
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, DuplicateInsertRejected) {
  IntList list{IntCmp()};
  EXPECT_TRUE(list.Insert(5));
  EXPECT_FALSE(list.Insert(5));
  EXPECT_EQ(list.size(), 1u);
}

TEST(SkipListTest, IterationIsSorted) {
  IntList list{IntCmp()};
  for (int v : {9, 1, 7, 3, 5}) list.Insert(v);
  IntList::Iterator it(&list);
  std::vector<int> seen;
  for (it.SeekToFirst(); it.Valid(); it.Next()) seen.push_back(it.key());
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(SkipListTest, SeekFindsLowerBound) {
  IntList list{IntCmp()};
  for (int v : {10, 20, 30}) list.Insert(v);
  IntList::Iterator it(&list);
  it.Seek(15);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 20);
  it.Seek(30);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30);
  it.Seek(31);
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, RemoveHidesAndIsIdempotent) {
  IntList list{IntCmp()};
  list.Insert(1);
  list.Insert(2);
  EXPECT_TRUE(list.Remove(1));
  EXPECT_FALSE(list.Contains(1));
  EXPECT_FALSE(list.Remove(1));
  EXPECT_EQ(list.size(), 1u);
  IntList::Iterator it(&list);
  it.SeekToFirst();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 2);
}

TEST(SkipListTest, RemoveMissingReturnsFalse) {
  IntList list{IntCmp()};
  EXPECT_FALSE(list.Remove(42));
}

TEST(SkipListTest, ReinsertAfterRemove) {
  IntList list{IntCmp()};
  list.Insert(7);
  EXPECT_TRUE(list.Remove(7));
  EXPECT_TRUE(list.Insert(7));
  EXPECT_TRUE(list.Contains(7));
}

TEST(SkipListTest, LargeSequentialInsert) {
  IntList list{IntCmp()};
  for (int i = 0; i < 10000; i++) ASSERT_TRUE(list.Insert(i));
  EXPECT_EQ(list.size(), 10000u);
  IntList::Iterator it(&list);
  int expected = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key(), expected++);
  }
  EXPECT_EQ(expected, 10000);
}

TEST(SkipListTest, DrainRetiredReclaims) {
  IntList list{IntCmp()};
  for (int i = 0; i < 100; i++) list.Insert(i);
  for (int i = 0; i < 100; i += 2) list.Remove(i);
  list.DrainRetired();  // must not crash; reclaimed nodes are gone
  EXPECT_EQ(list.size(), 50u);
  for (int i = 1; i < 100; i += 2) EXPECT_TRUE(list.Contains(i));
}

TEST(SkipListStressTest, ConcurrentDisjointInserts) {
  IntList list{IntCmp()};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&list, t] {
      for (int i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(list.Insert(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), static_cast<size_t>(kThreads * kPerThread));
  IntList::Iterator it(&list);
  int count = 0, prev = -1;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    ASSERT_GT(it.key(), prev);  // sorted, no duplicates
    prev = it.key();
    count++;
  }
  EXPECT_EQ(count, kThreads * kPerThread);
}

TEST(SkipListStressTest, ConcurrentContendedInserts) {
  // All threads race to insert the same key range; exactly one insert per
  // key may win.
  IntList list{IntCmp()};
  constexpr int kThreads = 4;
  constexpr int kKeys = 1000;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kKeys; i++) {
        if (list.Insert(i)) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(list.size(), static_cast<size_t>(kKeys));
}

TEST(SkipListStressTest, ReadersDuringInserts) {
  IntList list{IntCmp()};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 20000; i++) list.Insert(i);
    stop = true;
  });
  std::thread reader([&] {
    while (!stop.load()) {
      IntList::Iterator it(&list);
      int prev = -1;
      for (it.SeekToFirst(); it.Valid(); it.Next()) {
        ASSERT_GT(it.key(), prev);
        prev = it.key();
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(list.size(), 20000u);
}

}  // namespace
}  // namespace tardis
