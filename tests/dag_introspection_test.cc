// Tests for DAG introspection (DebugString / ToDot) and the structured
// findForkPoints of Table 2.

#include <gtest/gtest.h>

#include "core/tardis_store.h"

namespace tardis {
namespace {

StatePtr Extend(StateDag* dag, const StatePtr& parent) {
  std::lock_guard<std::mutex> guard(dag->Lock());
  return dag->CreateStateLocked({parent}, dag->NextLocalGuid(), KeySet(),
                                KeySet(), false);
}

TEST(DagIntrospectionTest, DebugStringListsStates) {
  StateDag dag;
  StatePtr s1 = Extend(&dag, dag.root());
  StatePtr a = Extend(&dag, s1);
  StatePtr b = Extend(&dag, s1);
  const std::string dump = dag.DebugString();
  EXPECT_NE(dump.find("state 0"), std::string::npos);
  EXPECT_NE(dump.find("state " + std::to_string(a->id())), std::string::npos);
  EXPECT_NE(dump.find("LEAF"), std::string::npos);
  EXPECT_NE(dump.find("promotion table: 0"), std::string::npos);
  // Fork entries appear in the printed paths.
  EXPECT_NE(dump.find("(" + std::to_string(s1->id()) + ",1)"),
            std::string::npos);
}

TEST(DagIntrospectionTest, ToDotHasEdges) {
  StateDag dag;
  StatePtr s1 = Extend(&dag, dag.root());
  StatePtr s2 = Extend(&dag, s1);
  const std::string dot = dag.ToDot();
  EXPECT_NE(dot.find("digraph tardis"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s" + std::to_string(s1->id())),
            std::string::npos);
  EXPECT_NE(dot.find("s" + std::to_string(s1->id()) + " -> s" +
                     std::to_string(s2->id())),
            std::string::npos);
}

TEST(DagIntrospectionTest, StructuredForkPointsTwoBranches) {
  StateDag dag;
  StatePtr s1 = Extend(&dag, dag.root());
  StatePtr a = Extend(&dag, s1);
  StatePtr b = Extend(&dag, s1);
  auto forks = dag.FindForkPoints({a, b});
  ASSERT_EQ(forks.size(), 1u);
  EXPECT_EQ(forks[0]->id(), s1->id());
}

TEST(DagIntrospectionTest, StructuredForkPointsNestedForks) {
  // s1 forks into (a-branch, b-branch); a-branch forks again into a1/a2.
  // The fork structure of {a1, a2, b} is: overall fork s1, plus the
  // nested fork at a.
  StateDag dag;
  StatePtr s1 = Extend(&dag, dag.root());
  StatePtr a = Extend(&dag, s1);
  StatePtr b = Extend(&dag, s1);
  StatePtr a1 = Extend(&dag, a);
  StatePtr a2 = Extend(&dag, a);

  auto forks = dag.FindForkPoints({a1, a2, b});
  ASSERT_EQ(forks.size(), 2u);
  EXPECT_EQ(forks[0]->id(), s1->id());  // overall fork first
  EXPECT_EQ(forks[1]->id(), a->id());   // nested fork
}

TEST(DagIntrospectionTest, TransactionApiExposesStructuredForks) {
  auto store = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(store.ok());
  auto seed = (*store)->CreateSession();
  {
    auto txn = (*store)->Begin(seed.get());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("x", "0").ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  // Three-way fork.
  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<TxnPtr> txns;
  for (int i = 0; i < 3; i++) {
    sessions.push_back((*store)->CreateSession());
    auto t = (*store)->Begin(sessions.back().get());
    ASSERT_TRUE(t.ok());
    std::string v;
    ASSERT_TRUE((*t)->Get("x", &v).ok());
    ASSERT_TRUE((*t)->Put("x", std::to_string(i)).ok());
    txns.push_back(std::move(*t));
  }
  for (auto& t : txns) ASSERT_TRUE(t->Commit().ok());

  auto merger = (*store)->CreateSession();
  auto m = (*store)->BeginMerge(merger.get());
  ASSERT_TRUE(m.ok());
  auto forks = (*m)->FindForkPoints((*m)->parents());
  ASSERT_TRUE(forks.ok());
  // All three branches fork at the same state: one fork point.
  ASSERT_EQ(forks->size(), 1u);
  std::string v;
  ASSERT_TRUE((*m)->GetForId("x", (*forks)[0], &v).ok());
  EXPECT_EQ(v, "0");
  (*m)->Abort();
}

}  // namespace
}  // namespace tardis
