// Tests for the fault-injection subsystem: registry semantics, the Env
// seam through Wal, FaultEnv crash simulation (lost/torn tails), commit
// log torn-tail recovery, short-write repair, and the deterministic
// FaultyTransport decorator.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/commit_log.h"
#include "core/tardis_store.h"
#include "fault/fault_env.h"
#include "fault/fault_points.h"
#include "fault/fault_registry.h"
#include "fault/faulty_transport.h"
#include "replication/network.h"
#include "storage/wal.h"
#include "util/coding.h"

namespace tardis {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "tardis_fault_" + name + "_" +
         std::to_string(::getpid());
}

/// Every test leaves the global registry clean so suites compose.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultRegistry::Global().DisarmAll();
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    std::filesystem::remove_all(path_);
  }
  void TearDown() override {
    fault::FaultRegistry::Global().DisarmAll();
    fault::FaultRegistry::Global().SetCrashHandler(nullptr);
    std::filesystem::remove_all(path_);
  }
  std::string path_;
};

// ---- registry semantics -----------------------------------------------------

TEST_F(FaultTest, NothingArmedIsFree) {
  EXPECT_FALSE(fault::FaultsArmed());
  EXPECT_TRUE(fault::FaultRegistry::Global().OnPoint("no.such.point").ok());
}

TEST_F(FaultTest, ArmDisarmAndFlag) {
  auto& reg = fault::FaultRegistry::Global();
  fault::FaultSpec spec;
  reg.Arm("p", spec);
  EXPECT_TRUE(fault::FaultsArmed());
  EXPECT_TRUE(reg.OnPoint("q").ok());   // other points unaffected
  EXPECT_FALSE(reg.OnPoint("p").ok());  // armed point errors
  reg.Disarm("p");
  EXPECT_FALSE(fault::FaultsArmed());
  EXPECT_TRUE(reg.OnPoint("p").ok());
}

TEST_F(FaultTest, SkipAndMaxTriggers) {
  auto& reg = fault::FaultRegistry::Global();
  fault::FaultSpec spec;
  spec.skip = 2;
  spec.max_triggers = 1;
  reg.Arm("p", spec);
  EXPECT_TRUE(reg.OnPoint("p").ok());
  EXPECT_TRUE(reg.OnPoint("p").ok());
  EXPECT_FALSE(reg.OnPoint("p").ok());
  // max_triggers exhausted: auto-disarmed.
  EXPECT_FALSE(fault::FaultsArmed());
  EXPECT_TRUE(reg.OnPoint("p").ok());
}

TEST_F(FaultTest, InjectedCodePropagates) {
  auto& reg = fault::FaultRegistry::Global();
  fault::FaultSpec spec;
  spec.code = Code::kCorruption;
  spec.message = "bitrot";
  spec.max_triggers = 1;
  reg.Arm("p", spec);
  Status s = reg.OnPoint("p");
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("bitrot"), std::string::npos);
}

TEST_F(FaultTest, CrashRequestIsConsumedOnce) {
  auto& reg = fault::FaultRegistry::Global();
  std::string handler_point;
  reg.SetCrashHandler([&](const std::string& p) { handler_point = p; });
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kCrash;
  reg.Arm("c", spec);
  Status s = reg.OnPoint("c");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(handler_point, "c");
  EXPECT_FALSE(fault::FaultsArmed());  // crash specs fire once
  std::string point;
  EXPECT_TRUE(reg.ConsumeCrashRequest(&point));
  EXPECT_EQ(point, "c");
  EXPECT_FALSE(reg.ConsumeCrashRequest(nullptr));
}

TEST_F(FaultTest, ProbabilityIsSeedDeterministic) {
  auto& reg = fault::FaultRegistry::Global();
  auto run = [&](uint64_t seed) {
    reg.Reseed(seed);
    fault::FaultSpec spec;
    spec.probability = 0.5;
    reg.Arm("p", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; i++) fired.push_back(!reg.OnPoint("p").ok());
    reg.DisarmAll();
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// ---- Wal through the seam ---------------------------------------------------

TEST_F(FaultTest, WalAppendErrorInjectionAndRecovery) {
  auto wal = Wal::Open(path_, Wal::FlushMode::kAsync);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("one").ok());

  fault::FaultSpec spec;
  spec.max_triggers = 1;
  fault::FaultRegistry::Global().Arm("wal.append.before_write", spec);
  EXPECT_TRUE((*wal)->Append("two").IsIOError());
  // Disarmed after one trigger: appends work again and the log is intact.
  ASSERT_TRUE((*wal)->Append("three").ok());
  std::vector<std::string> records;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice& rec) {
                    records.push_back(rec.ToString());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(records, (std::vector<std::string>{"one", "three"}));
  EXPECT_EQ(fault::FaultRegistry::Global().errors_injected(), 1u);
}

TEST_F(FaultTest, WalShortWriteIsTruncateRepaired) {
  fault::FaultEnv env(/*seed=*/1);
  auto wal = Wal::Open(path_, Wal::FlushMode::kAsync, &env);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append("payload-zero").ok());

  // The next append moves only 5 bytes, then fails: a torn frame lands.
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kLimitWrite;
  spec.limit_bytes = 5;
  spec.max_triggers = 1;
  fault::FaultRegistry::Global().Arm("env.append", spec);
  EXPECT_TRUE((*wal)->Append("payload-one").IsIOError());
  EXPECT_EQ(fault::FaultRegistry::Global().short_writes(), 1u);

  // The repair truncated the partial frame, so the log stays appendable
  // and parseable end to end.
  ASSERT_TRUE((*wal)->Append("payload-two").ok());
  std::vector<std::string> records;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice& rec) {
                    records.push_back(rec.ToString());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(records,
            (std::vector<std::string>{"payload-zero", "payload-two"}));
}

TEST_F(FaultTest, FaultEnvCrashLosesUnsyncedTail) {
  fault::FaultEnv env(/*seed=*/2);
  {
    auto wal = Wal::Open(path_, Wal::FlushMode::kAsync, &env);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("durable").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    ASSERT_TRUE((*wal)->Append("volatile").ok());  // never synced
    env.MarkCrashed();
    // Post-crash the frozen env refuses everything (the Wal destructor's
    // fsync fails harmlessly).
    EXPECT_TRUE((*wal)->Append("late").IsIOError());
  }
  ASSERT_TRUE(env.ApplyCrash(fault::CrashMode::kLoseUnsynced).ok());
  EXPECT_EQ(env.files_rewound(), 1u);

  auto wal = Wal::Open(path_, Wal::FlushMode::kAsync, &env);
  ASSERT_TRUE(wal.ok());
  std::vector<std::string> records;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice& rec) {
                    records.push_back(rec.ToString());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(records, (std::vector<std::string>{"durable"}));
}

TEST_F(FaultTest, FaultEnvTornTailSalvagesPrefix) {
  fault::FaultEnv env(/*seed=*/3);
  {
    auto wal = Wal::Open(path_, Wal::FlushMode::kAsync, &env);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("alpha").ok());
    ASSERT_TRUE((*wal)->Append("beta").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    ASSERT_TRUE((*wal)->Append("gamma").ok());  // the tail at risk
    env.MarkCrashed();
  }
  ASSERT_TRUE(env.ApplyCrash(fault::CrashMode::kTornTail).ok());

  auto wal = Wal::Open(path_, Wal::FlushMode::kAsync, &env);
  ASSERT_TRUE(wal.ok());
  std::vector<std::string> records;
  ASSERT_TRUE((*wal)
                  ->ReadAll([&](const Slice& rec) {
                    records.push_back(rec.ToString());
                    return Status::OK();
                  })
                  .ok());
  // The synced prefix always survives; "gamma" may or may not, but a torn
  // copy of it must never decode as a record.
  ASSERT_GE(records.size(), 2u);
  ASSERT_LE(records.size(), 3u);
  EXPECT_EQ(records[0], "alpha");
  EXPECT_EQ(records[1], "beta");
  if (records.size() == 3) EXPECT_EQ(records[2], "gamma");
}

// ---- commit log torn-tail recovery (satellite: WAL torn-tail coverage) ------

CommitLogEntry MakeEntry(StateId id, StateId parent, const std::string& key) {
  CommitLogEntry e;
  e.id = id;
  e.guid = GlobalStateId{0, id};
  e.parent_ids.push_back(parent);
  e.write_keys.push_back(key);
  return e;
}

TEST_F(FaultTest, CommitLogTruncatedMidRecordSalvagesPrefix) {
  {
    auto log = CommitLog::Open(path_, Wal::FlushMode::kSync);
    ASSERT_TRUE(log.ok());
    for (StateId id = 1; id <= 5; id++) {
      ASSERT_TRUE(
          (*log)->Append(MakeEntry(id, id - 1, "k" + std::to_string(id)))
              .ok());
    }
  }
  // Tear the last record mid-byte.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 3);

  auto log = CommitLog::Open(path_, Wal::FlushMode::kSync);
  ASSERT_TRUE(log.ok());
  std::vector<StateId> ids;
  ASSERT_TRUE((*log)
                  ->Replay([&](const CommitLogEntry& e) {
                    ids.push_back(e.id);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(ids, (std::vector<StateId>{1, 2, 3, 4}));
}

TEST_F(FaultTest, CommitLogFlippedByteStopsReplayAtCorruption) {
  {
    auto log = CommitLog::Open(path_, Wal::FlushMode::kSync);
    ASSERT_TRUE(log.ok());
    for (StateId id = 1; id <= 4; id++) {
      ASSERT_TRUE(
          (*log)->Append(MakeEntry(id, id - 1, "k" + std::to_string(id)))
              .ok());
    }
  }
  // Flip one byte in the last record's payload: its CRC must reject it.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-2, std::ios::end);
    char b = 0;
    f.seekg(-2, std::ios::end);
    f.read(&b, 1);
    f.seekp(-2, std::ios::end);
    b = static_cast<char>(b ^ 0x5A);
    f.write(&b, 1);
  }
  auto log = CommitLog::Open(path_, Wal::FlushMode::kSync);
  ASSERT_TRUE(log.ok());
  std::vector<StateId> ids;
  ASSERT_TRUE((*log)
                  ->Replay([&](const CommitLogEntry& e) {
                    ids.push_back(e.id);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(ids, (std::vector<StateId>{1, 2, 3}));
}

TEST_F(FaultTest, StoreRecoversFromTornCommitLog) {
  TardisOptions options;
  options.dir = path_;
  options.flush_mode = Wal::FlushMode::kSync;
  std::vector<std::string> committed;
  {
    auto store = TardisStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    auto session = (*store)->CreateSession();
    for (int i = 0; i < 6; i++) {
      auto t = (*store)->Begin(session.get());
      ASSERT_TRUE(t.ok());
      const std::string key = "key" + std::to_string(i);
      ASSERT_TRUE((*t)->Put(key, "value" + std::to_string(i)).ok());
      ASSERT_TRUE((*t)->Commit().ok());
      committed.push_back(key);
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Tear the commit log's last record mid-byte; recovery must salvage the
  // prefix and serve it.
  const std::string log_path = path_ + "/commit.log";
  const auto full = std::filesystem::file_size(log_path);
  std::filesystem::resize_file(log_path, full - 4);

  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto session = (*store)->CreateSession();
  auto t = (*store)->Begin(session.get());
  ASSERT_TRUE(t.ok());
  std::string v;
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE((*t)->Get("key" + std::to_string(i), &v).ok())
        << "key" << i << " lost from salvageable prefix";
    EXPECT_EQ(v, "value" + std::to_string(i));
  }
  // The torn final commit is gone — exactly the §6.5 contract.
  EXPECT_TRUE((*t)->Get("key5", &v).IsNotFound());
}

TEST_F(FaultTest, DegradedStoreRefusesFlushAndCheckpoint) {
  TardisOptions options;
  options.dir = path_;
  options.flush_mode = Wal::FlushMode::kAsync;
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto session = (*store)->CreateSession();

  fault::FaultSpec spec;
  spec.max_triggers = 1;
  fault::FaultRegistry::Global().Arm("wal.append.before_write", spec);
  {
    auto t = (*store)->Begin(session.get());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->Put("k", "v").ok());
    // The commit itself succeeds (availability over durability)...
    ASSERT_TRUE((*t)->Commit().ok());
  }
  // ...but the store knows its log is now incomplete.
  EXPECT_TRUE((*store)->commit_log_degraded());
  EXPECT_TRUE((*store)->Flush().IsIOError());
  EXPECT_TRUE((*store)->Checkpoint().IsIOError());

  // The committed data is still readable in memory.
  auto t = (*store)->Begin(session.get());
  ASSERT_TRUE(t.ok());
  std::string v;
  EXPECT_TRUE((*t)->Get("k", &v).ok());
  EXPECT_EQ(v, "v");
}

// ---- FaultyTransport --------------------------------------------------------

ReplMessage MakeMsg(uint32_t from, uint64_t seq) {
  ReplMessage m;
  m.from_site = from;
  m.commit.guid = GlobalStateId{from, seq};
  return m;
}

TEST_F(FaultTest, FaultyTransportDropsAndDuplicatesDeterministically) {
  auto run = [&](uint64_t seed) {
    NetworkOptions net_options;
    net_options.latency_us = 0;
    SimNetwork net(2, net_options);
    fault::FaultyTransportOptions options;
    options.seed = seed;
    options.drop_prob = 0.3;
    options.duplicate_prob = 0.2;
    fault::FaultyTransport ft(&net, options);
    std::vector<uint64_t> delivered;
    for (uint64_t i = 0; i < 50; i++) ft.Send(0, 1, MakeMsg(0, i));
    ReplMessage m;
    while (ft.Receive(1, &m)) delivered.push_back(m.commit.guid.seq);
    return delivered;
  };
  auto a = run(42);
  EXPECT_EQ(a, run(42));  // same seed, same delivery schedule
  EXPECT_NE(a, run(43));
  EXPECT_LT(a.size(), 50u);  // some dropped
  EXPECT_GT(fault::FaultRegistry::Global().frames_dropped.load(), 0u);
  EXPECT_GT(fault::FaultRegistry::Global().frames_duplicated.load(), 0u);
}

TEST_F(FaultTest, FaultyTransportReordersAndLosslessDrains) {
  NetworkOptions net_options;
  net_options.latency_us = 0;
  SimNetwork net(2, net_options);
  fault::FaultyTransportOptions options;
  options.seed = 9;
  options.reorder_prob = 1.0;  // hold every frame
  options.max_hold_polls = 4;
  fault::FaultyTransport ft(&net, options);
  for (uint64_t i = 0; i < 8; i++) ft.Send(0, 1, MakeMsg(0, i));
  EXPECT_TRUE(ft.HasInflight());

  // Lossless mode releases everything held on the next poll; no frame is
  // lost, only reordered.
  ft.SetLossless(true);
  std::multiset<uint64_t> seqs;
  ReplMessage m;
  while (ft.Receive(1, &m)) seqs.insert(m.commit.guid.seq);
  EXPECT_EQ(seqs.size(), 8u);
  EXPECT_FALSE(ft.HasInflight());
}

}  // namespace
}  // namespace tardis
