// tardis_chaos: deterministic fault-schedule exploration for the full
// replicated stack. Each schedule runs a seeded interleaving of client
// transactions over three durable TARDiS sites connected by a faulty
// network (drops, duplicates, reorders, partitions) while disk faults and
// crash-restart cycles fire along the way; every schedule contains at
// least one crash-restart. After the schedule a healing phase disarms all
// faults, drains the network, merges the surviving branches and checks
// four invariants:
//
//   1. Convergence: all sites end with identical State DAGs (same guid
//      set, same single leaf) and identical record contents.
//   2. Recovery equivalence: a crash-restarted site recovers exactly a
//      prefix of its pre-crash history — everything flushed before the
//      crash survives, nothing that never existed appears
//      (durable ⊆ recovered ⊆ pre-crash).
//   3. Branch isolation: every read returns a value whose writing state
//      is an ancestor of (or equal to) the reading state — branches never
//      leak across the DAG.
//   4. Error-not-crash: injected disk and network faults surface as
//      Status returns; the process never dies and the store stays usable.
//
// A failing schedule prints its seed and the exact command line that
// replays it deterministically.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "cluster/twopc.h"
#include "core/session.h"
#include "core/state.h"
#include "core/state_dag.h"
#include "core/tardis_store.h"
#include "core/transaction.h"
#include "fault/fault_env.h"
#include "fault/fault_registry.h"
#include "fault/faulty_transport.h"
#include "replication/network.h"
#include "replication/replicator.h"
#include "util/random.h"

namespace {

using namespace tardis;

constexpr uint32_t kSites = 3;
constexpr int kKeys = 8;

std::string KeyName(int k) { return "key" + std::to_string(k); }

/// One replicated site plus its fault plumbing and durability bookkeeping.
struct Site {
  std::string dir;
  std::unique_ptr<fault::FaultEnv> env;
  std::unique_ptr<TardisStore> store;
  std::unique_ptr<Replicator> repl;
  std::unique_ptr<ClientSession> session;
  /// Highest local sequence ever handed out here (across incarnations);
  /// re-established as the seq floor after a crash so a lost-but-escaped
  /// commit's guid is never reissued for different data.
  uint64_t max_seq_issued = 0;
  /// Guid set at the last successful Flush/Checkpoint: the lower bound on
  /// what recovery must bring back.
  std::set<GlobalStateId> durable_guids;
};

struct ScheduleStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t forks = 0;
  uint64_t crashes = 0;
  uint64_t injected_errors = 0;
  uint64_t reads_checked = 0;
};

/// Guids of every non-root state at a site.
std::set<GlobalStateId> GuidSet(TardisStore* store) {
  std::set<GlobalStateId> out;
  std::lock_guard<std::mutex> guard(store->dag()->Lock());
  for (const StatePtr& s : store->dag()->AllStatesLocked()) {
    if (!s->parents().empty()) out.insert(s->guid());
  }
  return out;
}

bool IsSubset(const std::set<GlobalStateId>& a,
              const std::set<GlobalStateId>& b) {
  for (const GlobalStateId& g : a) {
    if (b.count(g) == 0) return false;
  }
  return true;
}

class Schedule {
 public:
  Schedule(uint64_t seed, int steps, bool verbose)
      : seed_(seed), steps_(steps), verbose_(verbose), rng_(seed) {}

  /// Runs the schedule; returns true iff every invariant held.
  bool Run();

  const ScheduleStats& stats() const { return stats_; }

 private:
  bool Fail(const std::string& what) {
    fprintf(stderr,
            "SCHEDULE FAILED (seed=%llu): %s\n"
            "  replay: tardis_chaos --seed=%llu --schedules=1 --steps=%d\n",
            static_cast<unsigned long long>(seed_), what.c_str(),
            static_cast<unsigned long long>(seed_), steps_);
    return false;
  }

  bool OpenSite(uint32_t i);
  bool StepTxn(uint32_t site);
  bool StepForkPair(uint32_t site);
  bool CrashRestart(uint32_t site);
  void ArmRandomDiskFault();
  bool CheckReadIsolation(TardisStore* store, Transaction* txn,
                          const std::string& value);
  void RecordCommit(uint32_t site, const std::string& token);
  /// Pumps every site until the network is quiet. Returns messages moved.
  size_t DrainNetwork();
  bool Heal();
  bool MergeToSingleLeaf();
  bool CheckConvergence();

  const uint64_t seed_;
  const int steps_;
  const bool verbose_;
  Random rng_;
  ScheduleStats stats_;

  std::string base_dir_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<fault::FaultyTransport> fnet_;
  Site sites_[kSites];
  /// Every committed token value -> the guid of the state that wrote it.
  std::map<std::string, GlobalStateId> token_writer_;
  uint64_t next_token_ = 0;
};

bool Schedule::OpenSite(uint32_t i) {
  Site& s = sites_[i];
  TardisOptions o;
  o.dir = s.dir;
  o.use_btree = true;
  o.enable_commit_log = true;
  o.flush_mode = Wal::FlushMode::kAsync;
  o.cache_pages = 128;
  o.site_id = i;
  o.env = s.env.get();
  auto store = TardisStore::Open(o);
  if (!store.ok()) {
    return Fail("site " + std::to_string(i) +
                " failed to (re)open: " + store.status().ToString());
  }
  s.store = std::move(store.value());
  // A restarted incarnation must never reuse a sequence the previous one
  // may already have gossiped.
  s.store->dag()->AdvanceSeqFloor(s.max_seq_issued);
  // Heartbeats on: random Tick steps drive the failure detector and
  // digest anti-entropy under the same fault schedule as the data plane.
  ReplicatorOptions ropt;
  ropt.heartbeat_every_ticks = 4;
  ropt.suspect_after_ticks = 8;
  ropt.dead_after_ticks = 16;
  s.repl = std::make_unique<Replicator>(s.store.get(), fnet_.get(), i, ropt);
  s.repl->StartManual();
  s.session = s.store->CreateSession();
  return true;
}

void Schedule::RecordCommit(uint32_t site, const std::string& token) {
  Site& s = sites_[site];
  stats_.commits++;
  StatePtr c = s.session->last_commit();
  if (c == nullptr) return;
  token_writer_[token] = c->guid();
  if (c->guid().site == site && c->guid().seq > s.max_seq_issued) {
    s.max_seq_issued = c->guid().seq;
  }
}

bool Schedule::CheckReadIsolation(TardisStore* store, Transaction* txn,
                                  const std::string& value) {
  auto it = token_writer_.find(value);
  if (it == token_writer_.end()) return true;  // pre-seed value
  stats_.reads_checked++;
  StatePtr writer = store->dag()->ResolveGuid(it->second);
  if (writer == nullptr) {
    std::string dump = "site " + std::to_string(store->site_id()) + " dag:";
    for (const GlobalStateId& g : GuidSet(store)) dump += " " + g.ToString();
    fprintf(stderr, "%s\n", dump.c_str());
    return Fail("read token '" + value + "' but its writing state " +
                it->second.ToString() + " is unknown at the reading site");
  }
  for (StateId sid : txn->parents()) {
    StatePtr reader = store->dag()->Resolve(sid);
    if (reader == nullptr) continue;
    if (reader->guid() == writer->guid()) return true;
    if (StateDag::DescendantCheck(*writer, *reader)) return true;
  }
  return Fail("branch isolation violated: read token '" + value +
              "' written by " + it->second.ToString() +
              " which is not an ancestor of the reading state");
}

bool Schedule::StepTxn(uint32_t site) {
  Site& s = sites_[site];
  auto txn = s.store->Begin(s.session.get());
  if (!txn.ok()) {
    stats_.injected_errors++;  // must be an error Status, not a crash
    return true;
  }
  Transaction* t = txn.value().get();
  // Read a random key and check the value's provenance.
  std::string v;
  Status rs = t->Get(KeyName(static_cast<int>(rng_.Uniform(kKeys))), &v);
  if (rs.ok()) {
    if (!CheckReadIsolation(s.store.get(), t, v)) return false;
  } else if (!rs.IsNotFound()) {
    stats_.injected_errors++;
  }
  if (rng_.Uniform(10) == 0) {
    t->Abort();
    stats_.aborts++;
    return true;
  }
  const std::string token = "s" + std::to_string(site) + ".c" +
                            std::to_string(next_token_++);
  Status ps =
      t->Put(KeyName(static_cast<int>(rng_.Uniform(kKeys))), token);
  if (!ps.ok()) {
    stats_.injected_errors++;
    t->Abort();
    return true;
  }
  Status cs = t->Commit();
  if (cs.ok()) {
    RecordCommit(site, token);
  } else {
    stats_.aborts++;
  }
  return true;
}

// Two transactions off the same snapshot committing conflicting writes:
// exercises branch-on-conflict locally (a guaranteed fork).
bool Schedule::StepForkPair(uint32_t site) {
  Site& s = sites_[site];
  auto s2 = s.store->CreateSession();
  auto t1 = s.store->Begin(s.session.get());
  auto t2 = s.store->Begin(s2.get());
  if (!t1.ok() || !t2.ok()) {
    stats_.injected_errors++;
    return true;
  }
  const int key = static_cast<int>(rng_.Uniform(kKeys));
  std::string v;
  (void)t1.value()->Get(KeyName(key), &v);
  (void)t2.value()->Get(KeyName(key), &v);
  const std::string tok1 =
      "s" + std::to_string(site) + ".c" + std::to_string(next_token_++);
  const std::string tok2 =
      "s" + std::to_string(site) + ".c" + std::to_string(next_token_++);
  if (!t1.value()->Put(KeyName(key), tok1).ok() ||
      !t2.value()->Put(KeyName(key), tok2).ok()) {
    stats_.injected_errors++;
    t1.value()->Abort();
    t2.value()->Abort();
    return true;
  }
  if (t1.value()->Commit().ok()) RecordCommit(site, tok1);
  if (t2.value()->Commit().ok()) {
    stats_.commits++;
    StatePtr c = s2->last_commit();
    if (c != nullptr) {
      token_writer_[tok2] = c->guid();
      if (c->guid().site == site && c->guid().seq > s.max_seq_issued) {
        s.max_seq_issued = c->guid().seq;
      }
      stats_.forks++;
    }
  }
  return true;
}

void Schedule::ArmRandomDiskFault() {
  static const char* kPoints[] = {
      "wal.append.before_write",
      "wal.sync",
      "pager.write_page",
      "pager.read_page",
  };
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kError;
  spec.message = "chaos transient";
  spec.probability = 1.0;
  spec.max_triggers = 1;
  fault::FaultRegistry::Global().Arm(
      kPoints[rng_.Uniform(sizeof(kPoints) / sizeof(kPoints[0]))], spec);
}

bool Schedule::CrashRestart(uint32_t site) {
  Site& s = sites_[site];
  stats_.crashes++;
  const std::set<GlobalStateId> pre_crash = GuidSet(s.store.get());
  const std::set<GlobalStateId> durable = s.durable_guids;
  if (verbose_) {
    auto render = [](const std::set<GlobalStateId>& s) {
      std::string out;
      for (const GlobalStateId& g : s) out += " " + g.ToString();
      return out;
    };
    fprintf(stderr,
            "  [seed=%llu] crash-restart site %u\n    pre:%s\n    durable:%s\n",
            static_cast<unsigned long long>(seed_), site,
            render(pre_crash).c_str(), render(durable).c_str());
  }

  // The power fails mid-flight: freeze the environment, then tear the
  // process state down. Destructor-time flushes hit the frozen env and
  // fail, exactly as buffered writes die with a real process. Armed point
  // faults die with it too — transient device errors don't survive into
  // the next boot, and recovery itself must be able to run clean.
  fault::FaultRegistry::Global().DisarmAll();
  s.env->MarkCrashed();
  s.repl->Stop();
  s.repl.reset();
  s.session.reset();
  s.store.reset();
  Status cs = s.env->ApplyCrash();
  if (!cs.ok()) {
    return Fail("ApplyCrash on site " + std::to_string(site) +
                ": " + cs.ToString());
  }

  if (!OpenSite(site)) return false;  // recovery itself must succeed

  // Invariant 2: recovery equivalence.
  const std::set<GlobalStateId> recovered = GuidSet(s.store.get());
  if (verbose_) {
    std::string out;
    for (const GlobalStateId& g : recovered) out += " " + g.ToString();
    fprintf(stderr, "    recovered:%s\n", out.c_str());
  }
  if (!IsSubset(durable, recovered)) {
    return Fail("recovery lost flushed commits at site " +
                std::to_string(site) + " (durable " +
                std::to_string(durable.size()) + ", recovered " +
                std::to_string(recovered.size()) + ")");
  }
  if (!IsSubset(recovered, pre_crash)) {
    std::string invented;
    for (const GlobalStateId& g : recovered) {
      if (pre_crash.count(g) == 0) invented += " " + g.ToString();
    }
    return Fail("recovery invented commits at site " + std::to_string(site) +
                ":" + invented);
  }
  // Whatever recovery brought back is on disk now and will survive the
  // next crash; it is the new durable floor.
  s.durable_guids = recovered;

  // Make the recovered history servable to peers again (the in-memory
  // gossip archive died with the old incarnation) and ask the mesh for
  // everything missed while down.
  s.repl->ReArchiveFromStore();
  s.repl->RequestSync();
  return true;
}

size_t Schedule::DrainNetwork() {
  size_t moved = 0;
  while (true) {
    size_t round = 0;
    for (Site& s : sites_) round += s.repl->PumpOnce();
    moved += round;
    if (round == 0 && !fnet_->HasInflight()) return moved;
    if (round == 0) {
      // Held (reordered) frames release on Receive polls; keep polling.
      continue;
    }
  }
}

bool Schedule::Heal() {
  fault::FaultRegistry::Global().DisarmAll();
  fnet_->HealAll();
  fnet_->SetLossless(true);
  // Anti-entropy rounds: tick + drain until every site holds the same
  // history and nothing is parked waiting for a parent. No explicit
  // RequestSync — the heartbeat digests alone must repair everything the
  // faulty network dropped or reordered.
  // Note: pending_count() may legitimately stay nonzero — a commit that
  // escaped to a peer while its parent was lost forever in the origin's
  // crash is orphaned and can never apply anywhere. Convergence is about
  // the applied history, so the check compares DAGs, not queues.
  for (int round = 0; round < 64; round++) {
    for (Site& s : sites_) {
      // heartbeat_every_ticks is 4: four ticks guarantee a digest each.
      for (int t = 0; t < 4; t++) s.repl->Tick();
    }
    DrainNetwork();
    bool settled = true;
    const std::set<GlobalStateId> want = GuidSet(sites_[0].store.get());
    for (uint32_t i = 1; i < kSites; i++) {
      if (GuidSet(sites_[i].store.get()) != want) settled = false;
    }
    if (settled) return true;
  }
  std::string detail;
  for (Site& s : sites_) {
    detail += " " + std::to_string(GuidSet(s.store.get()).size()) + "/" +
              std::to_string(s.repl->pending_count());
  }
  return Fail("sites failed to converge after healing (states/pending:" +
              detail + ")");
}

bool Schedule::MergeToSingleLeaf() {
  // Merge at site 0 until one branch remains, re-syncing after each merge
  // so every site tracks the join. Conflicts resolve deterministically to
  // the lexicographically smallest candidate value.
  for (int iter = 0; iter < 128; iter++) {
    if (sites_[0].store->dag()->Leaves().size() <= 1) break;
    Site& s = sites_[0];
    auto merger = s.store->CreateSession();
    auto m = s.store->BeginMerge(merger.get());
    if (!m.ok()) {
      return Fail("BeginMerge failed during healing: " +
                  m.status().ToString());
    }
    Transaction* t = m.value().get();
    auto conflicts = t->FindConflictWrites(t->parents());
    if (!conflicts.ok()) {
      return Fail("FindConflictWrites failed: " +
                  conflicts.status().ToString());
    }
    for (const std::string& key : conflicts.value()) {
      std::string best;
      bool have = false;
      for (StateId sid : t->parents()) {
        std::string v;
        if (t->GetForId(key, sid, &v).ok() && (!have || v < best)) {
          best = std::move(v);
          have = true;
        }
      }
      if (have && !t->Put(key, best).ok()) {
        return Fail("merge Put failed for '" + key + "'");
      }
    }
    Status cs = t->Commit();
    if (!cs.ok()) {
      return Fail("merge commit failed: " + cs.ToString());
    }
    stats_.commits++;
    for (Site& site : sites_) site.repl->RequestSync();
    DrainNetwork();
  }
  for (uint32_t i = 0; i < kSites; i++) {
    const size_t leaves = sites_[i].store->dag()->Leaves().size();
    if (leaves != 1) {
      return Fail("site " + std::to_string(i) + " has " +
                  std::to_string(leaves) + " leaves after the merge phase");
    }
  }
  return true;
}

bool Schedule::CheckConvergence() {
  // Invariant 1, part 1: identical DAGs.
  const std::set<GlobalStateId> want = GuidSet(sites_[0].store.get());
  for (uint32_t i = 1; i < kSites; i++) {
    if (GuidSet(sites_[i].store.get()) != want) {
      return Fail("guid sets diverge between site 0 and site " +
                  std::to_string(i));
    }
  }
  const GlobalStateId leaf0 = sites_[0].store->dag()->Leaves()[0]->guid();
  for (uint32_t i = 1; i < kSites; i++) {
    if (!(sites_[i].store->dag()->Leaves()[0]->guid() == leaf0)) {
      return Fail("leaf guid diverges at site " + std::to_string(i));
    }
  }
  // Invariant 1, part 2: identical record contents. For every state and
  // every key it wrote, the visible value at that state must agree across
  // sites; and the final value of each key at the single leaf must agree.
  std::vector<std::map<std::string, std::string>> contents(kSites);
  for (uint32_t i = 0; i < kSites; i++) {
    Site& s = sites_[i];
    auto session = s.store->CreateSession();
    auto txn = s.store->Begin(session.get());
    if (!txn.ok()) {
      return Fail("post-heal Begin failed at site " + std::to_string(i) +
                  ": " + txn.status().ToString());
    }
    Transaction* t = txn.value().get();
    for (const GlobalStateId& g : want) {
      StatePtr state = s.store->dag()->ResolveGuid(g);
      if (state == nullptr) {
        return Fail("state " + g.ToString() + " vanished at site " +
                    std::to_string(i));
      }
      for (const std::string& key : state->write_set().keys()) {
        std::string v;
        Status gs = t->GetForId(key, state->id(), &v);
        if (!gs.ok()) {
          return Fail("GetForId(" + key + ", " + g.ToString() +
                      ") failed at site " + std::to_string(i) + ": " +
                      gs.ToString());
        }
        contents[i][g.ToString() + "/" + key] = v;
      }
    }
    for (int k = 0; k < kKeys; k++) {
      std::string v;
      Status gs = t->Get(KeyName(k), &v);
      if (gs.ok()) {
        contents[i]["leaf/" + KeyName(k)] = v;
      } else if (!gs.IsNotFound()) {
        return Fail("post-heal Get failed at site " + std::to_string(i) +
                    ": " + gs.ToString());
      }
    }
    t->Abort();
  }
  for (uint32_t i = 1; i < kSites; i++) {
    if (contents[i] != contents[0]) {
      return Fail("record contents diverge between site 0 and site " +
                  std::to_string(i));
    }
  }
  return true;
}

bool Schedule::Run() {
  fault::FaultRegistry& registry = fault::FaultRegistry::Global();
  registry.DisarmAll();
  registry.Reseed(seed_);

  base_dir_ = (std::filesystem::temp_directory_path() /
               ("tardis_chaos_" + std::to_string(getpid()) + "_" +
                std::to_string(seed_)))
                  .string();
  std::filesystem::remove_all(base_dir_);
  std::filesystem::create_directories(base_dir_);

  NetworkOptions nopt;
  nopt.seed = seed_;
  net_ = std::make_unique<SimNetwork>(kSites, nopt);
  fault::FaultyTransportOptions fopt;
  fopt.seed = seed_ * 0x9E3779B9u + 1;
  fopt.drop_prob = 0.05;
  fopt.duplicate_prob = 0.05;
  fopt.reorder_prob = 0.15;
  fopt.max_hold_polls = 6;
  fnet_ = std::make_unique<fault::FaultyTransport>(net_.get(), fopt);

  bool ok = true;
  for (uint32_t i = 0; i < kSites; i++) {
    sites_[i].dir = base_dir_ + "/site" + std::to_string(i);
    sites_[i].env = std::make_unique<fault::FaultEnv>(seed_ * kSites + i);
    if (!OpenSite(i)) {
      ok = false;
      break;
    }
  }

  // Every schedule performs at least one crash-restart.
  const int forced_crash_step = static_cast<int>(rng_.Uniform(steps_));

  for (int step = 0; ok && step < steps_; step++) {
    const uint32_t site = rng_.Uniform(kSites);
    if (step == forced_crash_step) {
      ok = CrashRestart(site);
      continue;
    }
    const uint32_t roll = rng_.Uniform(100);
    if (roll < 35) {
      ok = StepTxn(site);
    } else if (roll < 45) {
      ok = StepForkPair(site);
    } else if (roll < 60) {
      sites_[site].repl->PumpOnce();
    } else if (roll < 70) {
      // A replication time-step: heartbeats, liveness transitions and
      // deadline sweeps fire under the same seeded interleaving.
      sites_[site].repl->Tick();
      sites_[site].repl->PumpOnce();
    } else if (roll < 75) {
      const uint32_t other = (site + 1 + rng_.Uniform(kSites - 1)) % kSites;
      fnet_->Partition(site, other);
    } else if (roll < 79) {
      fnet_->HealAll();
    } else if (roll < 84) {
      ArmRandomDiskFault();
    } else if (roll < 90) {
      // Invariant 4 relies on this never dying: a Flush over an armed
      // fault point or a degraded commit log returns a Status.
      if (sites_[site].store->Flush().ok()) {
        sites_[site].durable_guids = GuidSet(sites_[site].store.get());
        if (verbose_) {
          fprintf(stderr, "  [step %d] flush site %u -> durable %zu\n", step,
                  site, sites_[site].durable_guids.size());
        }
      } else {
        stats_.injected_errors++;
      }
    } else if (roll < 93) {
      if (sites_[site].store->Checkpoint().ok()) {
        sites_[site].durable_guids = GuidSet(sites_[site].store.get());
        if (verbose_) {
          fprintf(stderr, "  [step %d] checkpoint site %u -> durable %zu\n",
                  step, site, sites_[site].durable_guids.size());
        }
      } else {
        stats_.injected_errors++;
      }
    } else if (roll < 96) {
      sites_[site].repl->RequestSync();
    } else {
      ok = CrashRestart(site);
    }
  }

  if (ok) ok = Heal();
  if (ok) ok = MergeToSingleLeaf();
  if (ok) ok = CheckConvergence();

  // Teardown: replicators before stores (metric callbacks), then wipe the
  // schedule's directories. A failing schedule keeps its files for triage.
  registry.DisarmAll();
  for (Site& s : sites_) {
    if (s.repl) s.repl->Stop();
    s.repl.reset();
    s.session.reset();
    s.store.reset();
  }
  if (ok) {
    std::filesystem::remove_all(base_dir_);
  } else {
    fprintf(stderr, "  site state kept under %s\n", base_dir_.c_str());
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Resilience schedules. Unlike the main schedule these never call
// RequestSync: heartbeat-driven anti-entropy and snapshot bootstrap must do
// every repair on their own.
// ---------------------------------------------------------------------------

/// A lighter-weight site for the resilience schedules: in-memory store, no
/// disk-fault plumbing — the adversary here is site death, not bad sectors.
struct ResilienceSite {
  std::unique_ptr<TardisStore> store;
  std::unique_ptr<Replicator> repl;
  std::unique_ptr<ClientSession> session;

  void Kill() {
    if (repl) repl->Stop();
    repl.reset();
    session.reset();
    store.reset();
  }
};

bool OpenResilienceSite(ResilienceSite* s, uint32_t i, Transport* net,
                        const ReplicatorOptions& ropt) {
  TardisOptions o;
  o.site_id = i;
  auto store = TardisStore::Open(o);
  if (!store.ok()) return false;
  s->store = std::move(store.value());
  s->repl = std::make_unique<Replicator>(s->store.get(), net, i, ropt);
  s->repl->StartManual();
  s->session = s->store->CreateSession();
  return true;
}

bool CommitValue(ResilienceSite* s, const std::string& key,
                 const std::string& value) {
  auto txn = s->store->Begin(s->session.get());
  if (!txn.ok()) return false;
  if (!txn.value()->Put(key, value).ok()) return false;
  return txn.value()->Commit().ok();
}

bool ResilienceFail(const char* family, uint64_t seed,
                    const std::string& what) {
  fprintf(stderr, "%s SCHEDULE FAILED (seed=%llu): %s\n", family,
          static_cast<unsigned long long>(seed), what.c_str());
  return false;
}

/// One site is killed outright (its store destroyed, its links severed), the
/// survivors commit far past the gossip archive horizon under a lossy
/// network, and a blank incarnation of the dead site rejoins. Convergence
/// must come from heartbeats alone: the survivors bootstrap the newcomer
/// with a snapshot (replay cannot cover the trimmed history) and
/// anti-entropy finishes the tail. Finally the rejoined site commits, which
/// only replicates safely if the snapshot restored its own sequence floor.
bool RunResilienceSchedule(uint64_t seed, bool verbose) {
  NetworkOptions nopt;
  nopt.seed = seed;
  SimNetwork net(kSites, nopt);
  fault::FaultyTransportOptions fopt;
  fopt.seed = seed * 0x9E3779B9u + 17;
  fopt.drop_prob = 0.10;
  fopt.duplicate_prob = 0.05;
  fopt.reorder_prob = 0.10;
  fopt.max_hold_polls = 4;
  fault::FaultyTransport fnet(&net, fopt);

  ReplicatorOptions ropt;
  ropt.heartbeat_every_ticks = 2;
  ropt.suspect_after_ticks = 4;
  ropt.dead_after_ticks = 8;
  ropt.archive_horizon = 64;  // small: forces the snapshot path on rejoin
  ropt.repair_batch = 32;
  ropt.snapshot_min_interval_ticks = 4;

  Random rng(seed);
  ResilienceSite sites[kSites];
  for (uint32_t i = 0; i < kSites; i++) {
    if (!OpenResilienceSite(&sites[i], i, &fnet, ropt)) {
      return ResilienceFail("RESILIENCE", seed, "site failed to open");
    }
  }
  auto fail = [&](const std::string& what) {
    return ResilienceFail("RESILIENCE", seed, what);
  };
  auto pump_live = [&]() {
    for (int spin = 0; spin < 200; spin++) {
      size_t moved = 0;
      for (ResilienceSite& s : sites) {
        if (s.repl) moved += s.repl->PumpOnce();
      }
      if (moved == 0) return;
    }
  };
  uint64_t token = 0;
  auto commit_at = [&](uint32_t i) {
    return CommitValue(&sites[i], KeyName(static_cast<int>(rng.Uniform(kKeys))),
                       "r" + std::to_string(i) + "." + std::to_string(token++));
  };

  // Phase A: warm-up traffic with everyone alive.
  for (int step = 0; step < 40; step++) {
    const uint32_t site = rng.Uniform(kSites);
    const uint32_t roll = rng.Uniform(100);
    if (roll < 50) {
      if (!commit_at(site)) return fail("warm-up commit failed");
    } else if (roll < 80) {
      sites[site].repl->Tick();
      sites[site].repl->PumpOnce();
    } else {
      sites[site].repl->PumpOnce();
    }
  }

  // Phase B: one site dies. Severing its links models the dead TCP peer:
  // gossip addressed to it is dropped, not queued for its next life.
  const uint32_t victim = rng.Uniform(kSites);
  const uint32_t live[2] = {(victim + 1) % kSites, (victim + 2) % kSites};
  sites[victim].Kill();
  fnet.Partition(victim, live[0]);
  fnet.Partition(victim, live[1]);

  // Survivors commit far past the archive horizon while ticking freely.
  for (int i = 0; i < 1100; i++) {
    const uint32_t site = live[rng.Uniform(2)];
    if (!commit_at(site)) return fail("survivor commit failed");
    if (rng.Uniform(4) == 0) {
      sites[site].repl->Tick();
      sites[site].repl->PumpOnce();
    }
  }
  pump_live();
  for (uint32_t i : live) {
    for (const Replicator::PeerHealth& p : sites[i].repl->PeerStates()) {
      if (p.site == victim && p.state != PeerLiveness::kDead) {
        return fail("survivor " + std::to_string(i) +
                    " never declared the dead site dead");
      }
    }
  }

  // Phase C: blank rejoin; converge on ticks alone.
  fnet.HealAll();
  if (!OpenResilienceSite(&sites[victim], victim, &fnet, ropt)) {
    return fail("victim failed to reopen");
  }
  bool converged = false;
  for (int round = 0; round < 600 && !converged; round++) {
    for (ResilienceSite& s : sites) s.repl->Tick();
    pump_live();
    const std::set<GlobalStateId> want = GuidSet(sites[0].store.get());
    converged = GuidSet(sites[1].store.get()) == want &&
                GuidSet(sites[2].store.get()) == want;
  }
  if (!converged) {
    std::string detail;
    for (ResilienceSite& s : sites) {
      detail += " " + std::to_string(GuidSet(s.store.get()).size());
    }
    return fail("blank rejoin failed to converge (states:" + detail + ")");
  }

  // The rejoined site must be writable and its commit must replicate.
  if (!CommitValue(&sites[victim], "rejoined", "yes")) {
    return fail("rejoined site could not commit");
  }
  converged = false;
  for (int round = 0; round < 200 && !converged; round++) {
    for (ResilienceSite& s : sites) s.repl->Tick();
    pump_live();
    const std::set<GlobalStateId> want = GuidSet(sites[victim].store.get());
    converged = GuidSet(sites[live[0]].store.get()) == want &&
                GuidSet(sites[live[1]].store.get()) == want;
  }
  if (!converged) return fail("post-rejoin commit did not replicate");

  if (verbose) {
    fprintf(stderr,
            "  resilience seed %llu: victim %u rejoined at %zu states\n",
            static_cast<unsigned long long>(seed), victim,
            GuidSet(sites[victim].store.get()).size());
  }
  for (ResilienceSite& s : sites) s.Kill();
  return true;
}

/// Pessimistic GC with a dead peer: a ceiling placed while one site is down
/// must still gain consent (the failure detector excludes the dead peer) so
/// GC runs on the survivors; when the site returns blank it is repaired,
/// the ceiling commit is redelivered, and GC completes there too.
bool RunGcResilienceSchedule(uint64_t seed, bool verbose) {
  NetworkOptions nopt;
  nopt.seed = seed;
  SimNetwork net(kSites, nopt);  // lossless fabric: consent math stays exact

  ReplicatorOptions ropt;
  ropt.gc_mode = GcCoordination::kPessimistic;
  ropt.heartbeat_every_ticks = 1;
  ropt.suspect_after_ticks = 2;
  ropt.dead_after_ticks = 4;
  ropt.ceiling_deadline_ticks = 4;
  ropt.ceiling_max_retries = 1;
  ropt.deferred_retry_every_ticks = 4;

  Random rng(seed);
  ResilienceSite sites[kSites];
  for (uint32_t i = 0; i < kSites; i++) {
    if (!OpenResilienceSite(&sites[i], i, &net, ropt)) {
      return ResilienceFail("GC-RESILIENCE", seed, "site failed to open");
    }
  }
  auto fail = [&](const std::string& what) {
    return ResilienceFail("GC-RESILIENCE", seed, what);
  };
  auto pump_all = [&]() {
    for (int spin = 0; spin < 200; spin++) {
      size_t moved = 0;
      for (ResilienceSite& s : sites) {
        if (s.repl) moved += s.repl->PumpOnce();
      }
      if (moved == 0) return;
    }
  };

  // A linear chain of commits at site 0, replicated everywhere.
  const int kChain = 8 + static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < kChain; i++) {
    if (!CommitValue(&sites[0], KeyName(i % kKeys),
                     "g" + std::to_string(i))) {
      return fail("chain commit failed");
    }
  }
  pump_all();

  // Kill a non-coordinator site and sever its links, then tick the
  // survivors until the failure detector declares it dead.
  const uint32_t victim = 1 + rng.Uniform(kSites - 1);
  const uint32_t other = (victim == 1) ? 2 : 1;
  sites[victim].Kill();
  net.Partition(victim, 0);
  net.Partition(victim, other);
  for (int t = 0; t < 6; t++) {
    sites[0].repl->Tick();
    sites[other].repl->Tick();
    pump_all();
  }
  bool dead_seen = false;
  for (const Replicator::PeerHealth& p : sites[0].repl->PeerStates()) {
    if (p.site == victim && p.state == PeerLiveness::kDead) dead_seen = true;
  }
  if (!dead_seen) return fail("coordinator never declared the victim dead");

  // Consent must complete within the deadline without the dead peer.
  sites[0].repl->PlaceCeiling(sites[0].session.get());
  pump_all();
  if (sites[0].repl->deferred_consent_count() != 0) {
    return fail("consent round was deferred despite a live quorum");
  }
  if (sites[0].store->RunGarbageCollection().states_deleted == 0) {
    return fail("coordinator GC deleted nothing after consent");
  }
  if (sites[other].store->RunGarbageCollection().states_deleted == 0) {
    return fail("live peer GC deleted nothing after ceiling commit");
  }

  // The victim returns blank: repair + ceiling redelivery must let GC
  // complete there as well, and all DAGs must agree afterwards.
  net.HealAll();
  if (!OpenResilienceSite(&sites[victim], victim, &net, ropt)) {
    return fail("victim failed to reopen");
  }
  uint64_t victim_deleted = 0;
  for (int round = 0; round < 200 && victim_deleted == 0; round++) {
    for (ResilienceSite& s : sites) s.repl->Tick();
    pump_all();
    victim_deleted =
        sites[victim].store->RunGarbageCollection().states_deleted;
  }
  if (victim_deleted == 0) {
    return fail("returned site never completed GC from redelivered ceiling");
  }
  const std::set<GlobalStateId> want = GuidSet(sites[0].store.get());
  for (uint32_t i = 1; i < kSites; i++) {
    if (GuidSet(sites[i].store.get()) != want) {
      return fail("DAGs diverged after GC at site " + std::to_string(i));
    }
  }
  if (verbose) {
    fprintf(stderr,
            "  gc-resilience seed %llu: victim %u, chain %d, gc at victim "
            "deleted %llu\n",
            static_cast<unsigned long long>(seed), victim, kChain,
            static_cast<unsigned long long>(victim_deleted));
  }
  for (ResilienceSite& s : sites) s.Kill();
  return true;
}

// ---------------------------------------------------------------------------
// Cross-partition 2PC schedules (src/cluster/). The adversary is a router
// and/or one participant dying between prepare and decide; the invariants
// are the protocol's: both participants reach the SAME decision via
// cooperative termination, an aborted transaction leaves no write in
// either partition, a committed one is readable in both, and a concurrent
// conflicting commit forks the DAG instead of killing the transaction.
// ---------------------------------------------------------------------------

/// Reads `key` at the store's current leaf; sentinels for miss/error.
std::string ReadKey(TardisStore* store, const std::string& key) {
  auto session = store->CreateSession();
  auto txn = store->Begin(session.get());
  if (!txn.ok()) return "<begin-error>";
  std::string v;
  Status s = txn.value()->Get(key, &v);
  txn.value()->Abort();
  if (s.IsNotFound()) return "<notfound>";
  return s.ok() ? v : "<error>";
}

/// One seeded 2PC crash schedule over two single-site "partitions" wired
/// together in process (query_peer is a direct call, no sockets, grace 0
/// so cooperative termination is immediate and deterministic). Cases:
///
///   0: the router dies after both prepares, before any decide
///      -> all-reachable-unknown, both presume abort;
///   1: decide-commit reaches partition 0 only, then the router dies
///      -> partition 1 learns commit from its peer;
///   2: participant 1 crashes after prepare and recovers from twopc.log,
///      router dies -> in-doubt survives the crash, then aborts;
///   3: both decides land, then participant 1 crashes and recovers
///      -> the logged decide keeps it out of doubt, nothing re-applies.
///
/// An independent coin lands a conflicting local commit on partition 0's
/// 2PC key inside the window; if the decision ends commit, the DAG there
/// must fork (branch-on-conflict), never abort.
bool RunTwoPcSchedule(uint64_t seed, bool verbose) {
  auto fail = [&](const std::string& what) {
    return ResilienceFail("TWOPC", seed, what);
  };
  Random rng(seed);
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("tardis_chaos_twopc_" + std::to_string(seed)))
          .string();
  std::filesystem::remove_all(base);

  std::unique_ptr<TardisStore> stores[2];
  std::unique_ptr<cluster::TwoPhaseParticipant> parts[2];
  auto open_participant = [&](int p) -> bool {
    cluster::TwoPhaseOptions o;
    o.dir = base + "/p" + std::to_string(p);
    std::filesystem::create_directories(o.dir);
    o.self_endpoint = "p" + std::to_string(p);
    o.resolve_grace_ms = 0;  // the schedule drives ResolveInDoubt by hand
    o.query_peer = [&parts](const std::string& endpoint, uint64_t txn_id,
                            cluster::TwoPhaseDecision* decision) {
      const int peer = endpoint == "p0" ? 0 : 1;
      if (!parts[peer]) return Status::Unavailable("peer down");
      ReplMessage req;
      req.type = ReplMessage::Type::kTxnStatus;
      req.txn_id = txn_id;
      ReplMessage resp;
      Status s = parts[peer]->HandleTxnStatus(req, &resp);
      if (!s.ok()) return s;
      *decision = static_cast<cluster::TwoPhaseDecision>(resp.decision);
      return Status::OK();
    };
    parts[p] = std::make_unique<cluster::TwoPhaseParticipant>(
        stores[p].get(), std::move(o));
    return parts[p]->Recover().ok();
  };
  for (int p = 0; p < 2; p++) {
    TardisOptions o;
    o.site_id = static_cast<uint32_t>(p);
    auto store = TardisStore::Open(o);
    if (!store.ok()) return fail("store failed to open");
    stores[p] = std::move(store.value());
    if (!open_participant(p)) return fail("participant failed to open");
  }

  // The "router": prepare both participants.
  const uint64_t txn_id = 0xC0FFEE00000000ull + seed;
  const std::string value = "twopc." + std::to_string(seed);
  for (int p = 0; p < 2; p++) {
    ReplMessage prep;
    prep.type = ReplMessage::Type::kPrepare;
    prep.txn_id = txn_id;
    prep.endpoints = {"p0", "p1"};
    prep.commit.writes.emplace_back(
        "x" + std::to_string(p), std::make_shared<const std::string>(value));
    ReplMessage ack;
    if (!parts[p]->HandlePrepare(prep, &ack).ok() ||
        ack.decision !=
            static_cast<uint8_t>(cluster::TwoPhaseDecision::kCommit)) {
      return fail("participant did not vote commit at prepare");
    }
  }

  // Maybe a conflicting local commit lands on partition 0's 2PC key
  // inside the decision window.
  const bool conflict = rng.Uniform(2) == 0;
  const uint64_t forks_before = stores[0]->stats().branches_created;
  if (conflict) {
    auto session = stores[0]->CreateSession();
    auto txn = stores[0]->Begin(session.get());
    if (!txn.ok() || !txn.value()->Put("x0", "rogue").ok() ||
        !txn.value()->Commit().ok()) {
      return fail("conflicting local commit failed");
    }
  }

  const uint32_t scenario = rng.Uniform(4);
  auto decide = [&](int p) -> bool {
    ReplMessage msg;
    msg.type = ReplMessage::Type::kDecide;
    msg.txn_id = txn_id;
    msg.decision = static_cast<uint8_t>(cluster::TwoPhaseDecision::kCommit);
    ReplMessage ack;
    return parts[p]->HandleDecide(msg, &ack).ok() &&
           ack.decision ==
               static_cast<uint8_t>(cluster::TwoPhaseDecision::kCommit);
  };
  auto crash_participant = [&](int p) -> bool {
    parts[p].reset();  // aborts any staged txn, closes the log
    return open_participant(p);
  };
  switch (scenario) {
    case 0:
      break;  // router dies before any decide
    case 1:
      if (!decide(0)) return fail("decide at partition 0 failed");
      if (!decide(0)) return fail("duplicate decide was not idempotent");
      break;
    case 2:
      if (!crash_participant(1)) return fail("participant 1 crash-restart");
      if (parts[1]->in_doubt_count() != 1) {
        return fail("recovery lost the in-doubt prepare");
      }
      break;
    case 3:
      if (!decide(0) || !decide(1)) return fail("decide failed");
      if (!crash_participant(1)) return fail("participant 1 crash-restart");
      if (parts[1]->in_doubt_count() != 0) {
        return fail("logged decide came back in doubt after recovery");
      }
      break;
  }

  // Cooperative termination: grace 0 means every pending transaction is
  // immediately overdue. Two passes settle any order.
  for (int round = 0;
       round < 4 && (parts[0]->in_doubt_count() + parts[1]->in_doubt_count());
       round++) {
    parts[0]->ResolveInDoubt();
    parts[1]->ResolveInDoubt();
  }
  if (parts[0]->in_doubt_count() != 0 || parts[1]->in_doubt_count() != 0) {
    return fail("in-doubt transactions never resolved");
  }

  // Invariant: one decision, the right one, on both sides.
  const cluster::TwoPhaseDecision d0 = parts[0]->DecisionFor(txn_id);
  const cluster::TwoPhaseDecision d1 = parts[1]->DecisionFor(txn_id);
  if (d0 != d1) return fail("participants disagree on the outcome");
  const bool committed = d0 == cluster::TwoPhaseDecision::kCommit;
  const bool expect_commit = scenario == 1 || scenario == 3;
  if (committed != expect_commit) {
    return fail(std::string("scenario ") + std::to_string(scenario) +
                " ended in " + cluster::TwoPhaseDecisionName(d0));
  }

  // Invariant: atomicity of the write set.
  const std::string x0 = ReadKey(stores[0].get(), "x0");
  const std::string x1 = ReadKey(stores[1].get(), "x1");
  if (committed) {
    if (x1 != value) return fail("committed write missing at partition 1");
    if (!conflict && x0 != value) {
      return fail("committed write missing at partition 0");
    }
    // Under a conflict the decide-commit must FORK partition 0's DAG
    // (branch-on-conflict), never abort; either branch tip may be the
    // one the read lands on.
    if (conflict &&
        stores[0]->stats().branches_created <= forks_before) {
      return fail("conflicting decide-commit did not fork the DAG");
    }
  } else {
    if (x1 != "<notfound>") return fail("aborted write leaked at partition 1");
    const std::string expect0 = conflict ? "rogue" : "<notfound>";
    if (x0 != expect0) return fail("aborted write leaked at partition 0");
  }

  if (verbose) {
    fprintf(stderr,
            "  twopc seed %llu: scenario %u conflict=%d -> %s\n",
            static_cast<unsigned long long>(seed), scenario, conflict ? 1 : 0,
            cluster::TwoPhaseDecisionName(d0));
  }
  parts[0].reset();
  parts[1].reset();
  std::filesystem::remove_all(base);
  return true;
}

// ---------------------------------------------------------------------------
// Client-retry schedules (src/client/, src/core/session.h, DESIGN.md §13).
// The adversary is the network between a retrying client and the fleet:
// requests vanish before the site sees them, replies vanish after the
// commit applied, the serving site dies mid-session, and a router decide
// is lost between 2PC partitions. The invariant is exactly-once: however
// many times the client re-sends a (session, seq) write, it applies at
// most once, across failover and across crash-restart.
// ---------------------------------------------------------------------------

/// Server-side sessioned write path, exactly as tardisd executes it:
/// consult the dedup table first, otherwise commit with the session tag.
/// `*deduped` reports which path answered; `*guid` the commit's identity.
bool SessionedCommit(TardisStore* store, ClientSession* session,
                     uint64_t sid, uint64_t seq, const std::string& key,
                     const std::string& value, GlobalStateId* guid,
                     bool* deduped) {
  if (store->session_dedup()->Lookup(sid, seq, guid)) {
    *deduped = true;
    return true;
  }
  *deduped = false;
  auto txn = store->Begin(session);
  if (!txn.ok()) return false;
  txn.value()->SetSessionTag(sid, seq);
  if (!txn.value()->Put(key, value).ok()) return false;
  if (!txn.value()->Commit().ok()) return false;
  *guid = session->last_commit()->guid();
  return true;
}

/// One seeded client-retry schedule, three sub-adversaries:
///
///   A. A lossy single site (durable, synchronous WAL): every logical
///      write runs a drop-request / drop-reply / deliver lottery until
///      acked. Exactly-once must hold while the store is up, and the
///      dedup table must survive a crash-restart via commit-log replay —
///      replaying every (session, seq) after reopen adds no state.
///   B. Failover under read-your-writes floors: tagged writes land at
///      site 0; before replication has run, site 1 must refuse the
///      session's floors (the ERR BEHIND path) though a stale-ok
///      degraded read is allowed; once anti-entropy catches up the
///      client retries its unacked write at site 1 and must be answered
///      from dedup with the ORIGIN site's guid.
///   C. 2PC under a derived txn id: a decide is lost and the router
///      dies; the client re-runs the whole round under the SAME
///      DeriveSessionTxnId and both partitions settle on one commit,
///      applied once. A second transaction whose first round is presumed
///      abort retries under a bumped attempt (fresh txn id) and commits.
bool RunRetrySchedule(uint64_t seed, bool verbose) {
  auto fail = [&](const std::string& what) {
    return ResilienceFail("RETRY", seed, what);
  };
  Random rng(seed);
  const uint64_t sid = (seed << 8) | 0x51;  // nonzero by construction

  // --- A. Lossy single durable site + crash-restart replay. ---
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("tardis_chaos_retry_" + std::to_string(seed)))
          .string();
  std::filesystem::remove_all(base);
  const int logical = 10 + static_cast<int>(rng.Uniform(8));
  std::map<uint64_t, GlobalStateId> acked;  // seq -> guid the client saw
  uint64_t send_attempts = 0;
  size_t states_after_traffic = 0;
  {
    TardisOptions o;
    o.dir = base;
    o.flush_mode = Wal::FlushMode::kSync;
    auto store_or = TardisStore::Open(o);
    if (!store_or.ok()) return fail("durable store failed to open");
    std::unique_ptr<TardisStore> store = std::move(store_or.value());
    auto session = store->CreateSession();
    for (int i = 1; i <= logical; i++) {
      const std::string key = "rk" + std::to_string(i);
      const std::string value = "rv" + std::to_string(i);
      bool done = false;
      for (int attempt = 0; attempt < 64 && !done; attempt++) {
        const uint32_t roll = rng.Uniform(3);
        send_attempts++;
        if (roll == 0) continue;  // request lost before the site saw it
        GlobalStateId guid;
        bool deduped = false;
        if (!SessionedCommit(store.get(), session.get(), sid,
                             static_cast<uint64_t>(i), key, value, &guid,
                             &deduped)) {
          return fail("sessioned commit failed");
        }
        if (roll == 1) continue;  // reply lost: client retries same seq
        acked[static_cast<uint64_t>(i)] = guid;
        done = true;
      }
      if (!done) return fail("client starved: no ack in 64 attempts");
    }
    // Exactly-once while up: one commit per logical write, no duplicate
    // (session, seq) ever recorded, every key holds its value.
    if (store->stats().commits != static_cast<uint64_t>(logical)) {
      return fail("expected " + std::to_string(logical) + " commits, got " +
                  std::to_string(store->stats().commits) + " from " +
                  std::to_string(send_attempts) + " attempts");
    }
    if (store->session_dedup()->duplicates() != 0) {
      return fail("dedup recorded a duplicate commit on the lossy site");
    }
    for (int i = 1; i <= logical; i++) {
      if (ReadKey(store.get(), "rk" + std::to_string(i)) !=
          "rv" + std::to_string(i)) {
        return fail("rk" + std::to_string(i) + " lost its value");
      }
    }
    states_after_traffic = GuidSet(store.get()).size();
    Status s = store->Flush();
    if (!s.ok()) return fail("flush failed: " + s.ToString());
  }  // SIGKILL: the store is dropped without a clean shutdown path
  {
    TardisOptions o;
    o.dir = base;
    o.flush_mode = Wal::FlushMode::kSync;
    auto store_or = TardisStore::Open(o);
    if (!store_or.ok()) return fail("store failed to reopen after crash");
    std::unique_ptr<TardisStore> store = std::move(store_or.value());
    auto session = store->CreateSession();
    if (GuidSet(store.get()).size() != states_after_traffic) {
      return fail("recovery changed the state count");
    }
    // The dedup table must have been rebuilt from the commit log: every
    // acked (session, seq) answers from dedup with its original guid,
    // and replaying the whole session adds nothing.
    for (const auto& [seq, guid] : acked) {
      GlobalStateId got;
      bool deduped = false;
      if (!SessionedCommit(store.get(), session.get(), sid, seq,
                           "rk" + std::to_string(seq), "replay", &got,
                           &deduped)) {
        return fail("replay commit failed after restart");
      }
      if (!deduped) {
        return fail("seq " + std::to_string(seq) +
                    " re-executed after crash-restart");
      }
      if (!(got == guid)) {
        return fail("seq " + std::to_string(seq) +
                    " answered with the wrong guid after restart");
      }
    }
    if (GuidSet(store.get()).size() != states_after_traffic) {
      return fail("post-restart replay created new states");
    }
  }
  std::filesystem::remove_all(base);

  // --- B. Failover under read-your-writes floors. ---
  {
    NetworkOptions nopt;
    nopt.seed = seed * 31 + 7;
    SimNetwork net(kSites, nopt);
    ReplicatorOptions ropt;
    ropt.heartbeat_every_ticks = 2;
    ropt.suspect_after_ticks = 4;
    ropt.dead_after_ticks = 8;
    ResilienceSite sites[kSites];
    for (uint32_t i = 0; i < kSites; i++) {
      if (!OpenResilienceSite(&sites[i], i, &net, ropt)) {
        return fail("failover site failed to open");
      }
    }
    auto pump = [&]() {
      for (int spin = 0; spin < 200; spin++) {
        size_t moved = 0;
        for (ResilienceSite& s : sites) {
          if (s.repl) moved += s.repl->PumpOnce();
        }
        if (moved == 0) return;
      }
    };
    const uint64_t fsid = sid ^ 0xF417;
    SessionHeader floors_probe;
    floors_probe.session_id = fsid;
    const int writes = 3 + static_cast<int>(rng.Uniform(4));
    GlobalStateId last_guid;
    for (int i = 1; i <= writes; i++) {
      GlobalStateId guid;
      bool deduped = false;
      if (!SessionedCommit(&*sites[0].store, sites[0].session.get(), fsid,
                           static_cast<uint64_t>(i),
                           "fk" + std::to_string(i), "fv" + std::to_string(i),
                           &guid, &deduped) ||
          deduped) {
        return fail("failover seed write failed");
      }
      last_guid = guid;
      // The client merges each acked guid into its floor set.
      bool found = false;
      for (auto& [site, seq] : floors_probe.floors) {
        if (site == guid.site) {
          seq = std::max(seq, guid.seq);
          found = true;
        }
      }
      if (!found) floors_probe.floors.emplace_back(guid.site, guid.seq);
    }
    // Replication has not run: site 1 cannot cover this session's floors
    // (tardisd would answer ERR BEHIND), but a stale-ok degraded read is
    // still allowed — it just sees the pre-session world.
    if (SessionFloorsCovered(floors_probe, 1, sites[1].store->dag()->local_seq(),
                             sites[1].repl->AppliedFloors())) {
      return fail("site 1 claimed to cover floors it never applied");
    }
    if (ReadKey(&*sites[1].store, "fk1") != "<notfound>") {
      return fail("degraded read saw a value that never replicated");
    }
    // Anti-entropy catches site 1 up, then site 0 dies.
    bool covered = false;
    for (int round = 0; round < 400 && !covered; round++) {
      for (ResilienceSite& s : sites) {
        if (s.repl) s.repl->Tick();
      }
      pump();
      covered = SessionFloorsCovered(floors_probe, 1,
                                     sites[1].store->dag()->local_seq(),
                                     sites[1].repl->AppliedFloors());
    }
    if (!covered) return fail("site 1 never covered the session floors");
    sites[0].Kill();
    net.Partition(0, 1);
    net.Partition(0, 2);
    // The reply to the LAST write was lost: the client retries it at
    // site 1, which must answer from dedup with the ORIGIN guid — the
    // replicated CommitRecord carried the session tag.
    GlobalStateId got;
    bool deduped = false;
    if (!SessionedCommit(&*sites[1].store, sites[1].session.get(), fsid,
                         static_cast<uint64_t>(writes),
                         "fk" + std::to_string(writes), "retry-after-failover",
                         &got, &deduped)) {
      return fail("failover retry failed");
    }
    if (!deduped) return fail("failover retry re-executed the write");
    if (!(got == last_guid)) {
      return fail("failover retry answered with the wrong guid");
    }
    if (sites[1].store->session_dedup()->duplicates() != 0) {
      return fail("failover produced a duplicate commit");
    }
    // The session continues on the new site: the next seq executes fresh.
    if (!SessionedCommit(&*sites[1].store, sites[1].session.get(), fsid,
                         static_cast<uint64_t>(writes + 1), "fk_next", "fv",
                         &got, &deduped) ||
        deduped) {
      return fail("post-failover write did not execute at the new site");
    }
    if (got.site != 1) return fail("post-failover commit has the wrong origin");
    for (ResilienceSite& s : sites) s.Kill();
  }

  // --- C. 2PC retry under a derived transaction id. ---
  {
    const std::string tbase =
        (std::filesystem::temp_directory_path() /
         ("tardis_chaos_retry2pc_" + std::to_string(seed)))
            .string();
    std::filesystem::remove_all(tbase);
    std::unique_ptr<TardisStore> stores[2];
    std::unique_ptr<cluster::TwoPhaseParticipant> parts[2];
    auto open_participant = [&](int p) -> bool {
      cluster::TwoPhaseOptions o;
      o.dir = tbase + "/p" + std::to_string(p);
      std::filesystem::create_directories(o.dir);
      o.self_endpoint = "p" + std::to_string(p);
      o.resolve_grace_ms = 0;
      o.query_peer = [&parts](const std::string& endpoint, uint64_t txn_id,
                              cluster::TwoPhaseDecision* decision) {
        const int peer = endpoint == "p0" ? 0 : 1;
        if (!parts[peer]) return Status::Unavailable("peer down");
        ReplMessage req;
        req.type = ReplMessage::Type::kTxnStatus;
        req.txn_id = txn_id;
        ReplMessage resp;
        Status s = parts[peer]->HandleTxnStatus(req, &resp);
        if (!s.ok()) return s;
        *decision = static_cast<cluster::TwoPhaseDecision>(resp.decision);
        return Status::OK();
      };
      parts[p] = std::make_unique<cluster::TwoPhaseParticipant>(
          stores[p].get(), std::move(o));
      return parts[p]->Recover().ok();
    };
    for (int p = 0; p < 2; p++) {
      TardisOptions o;
      o.site_id = static_cast<uint32_t>(p);
      auto store = TardisStore::Open(o);
      if (!store.ok()) return fail("2pc store failed to open");
      stores[p] = std::move(store.value());
      if (!open_participant(p)) return fail("2pc participant failed to open");
    }
    auto round = [&](uint64_t txn_id, const std::string& value, bool decide0,
                     bool decide1) -> bool {
      for (int p = 0; p < 2; p++) {
        ReplMessage prep;
        prep.type = ReplMessage::Type::kPrepare;
        prep.txn_id = txn_id;
        prep.endpoints = {"p0", "p1"};
        prep.commit.writes.emplace_back(
            "y" + std::to_string(p),
            std::make_shared<const std::string>(value));
        ReplMessage ack;
        if (!parts[p]->HandlePrepare(prep, &ack).ok()) return false;
      }
      for (int p = 0; p < 2; p++) {
        if ((p == 0 && !decide0) || (p == 1 && !decide1)) continue;
        ReplMessage msg;
        msg.type = ReplMessage::Type::kDecide;
        msg.txn_id = txn_id;
        msg.decision =
            static_cast<uint8_t>(cluster::TwoPhaseDecision::kCommit);
        ReplMessage ack;
        if (!parts[p]->HandleDecide(msg, &ack).ok()) return false;
      }
      return true;
    };
    // Round 1: the decide to partition 1 is lost, then the router dies.
    // The client retries the WHOLE round under the same derived id; the
    // duplicate prepare re-acks, the duplicate decide is idempotent.
    const uint64_t txn1 = DeriveSessionTxnId(sid, 1, 0);
    const size_t s0_before = GuidSet(stores[0].get()).size();
    const size_t s1_before = GuidSet(stores[1].get()).size();
    if (!round(txn1, "once", true, false)) return fail("2pc round 1 failed");
    if (!round(txn1, "once", true, true)) return fail("2pc retry failed");
    for (int r = 0;
         r < 4 && (parts[0]->in_doubt_count() + parts[1]->in_doubt_count());
         r++) {
      parts[0]->ResolveInDoubt();
      parts[1]->ResolveInDoubt();
    }
    if (parts[0]->DecisionFor(txn1) != cluster::TwoPhaseDecision::kCommit ||
        parts[1]->DecisionFor(txn1) != cluster::TwoPhaseDecision::kCommit) {
      return fail("retried 2pc did not settle on commit at both partitions");
    }
    if (GuidSet(stores[0].get()).size() != s0_before + 1 ||
        GuidSet(stores[1].get()).size() != s1_before + 1) {
      return fail("retried 2pc applied a write twice");
    }
    if (ReadKey(stores[0].get(), "y0") != "once" ||
        ReadKey(stores[1].get(), "y1") != "once") {
      return fail("retried 2pc write missing");
    }
    // Round 2: partition 1 never hears the prepare and the router dies;
    // cooperative termination presumes abort. The client re-derives the
    // txn id under a bumped attempt and the fresh round commits.
    const uint64_t txn2a = DeriveSessionTxnId(sid, 2, 0);
    {
      ReplMessage prep;
      prep.type = ReplMessage::Type::kPrepare;
      prep.txn_id = txn2a;
      prep.endpoints = {"p0", "p1"};
      prep.commit.writes.emplace_back(
          "y0", std::make_shared<const std::string>("lost"));
      ReplMessage ack;
      if (!parts[0]->HandlePrepare(prep, &ack).ok()) {
        return fail("2pc round 2 prepare failed");
      }
    }
    for (int r = 0; r < 4 && parts[0]->in_doubt_count(); r++) {
      parts[0]->ResolveInDoubt();
      parts[1]->ResolveInDoubt();
    }
    if (parts[0]->DecisionFor(txn2a) != cluster::TwoPhaseDecision::kAbort) {
      return fail("half-prepared 2pc round did not presume abort");
    }
    const uint64_t txn2b = DeriveSessionTxnId(sid, 2, 1);
    if (txn2b == txn2a) return fail("attempt bump did not change the txn id");
    if (!round(txn2b, "second", true, true)) return fail("2pc reissue failed");
    if (parts[0]->DecisionFor(txn2b) != cluster::TwoPhaseDecision::kCommit ||
        parts[1]->DecisionFor(txn2b) != cluster::TwoPhaseDecision::kCommit) {
      return fail("reissued 2pc did not commit");
    }
    if (ReadKey(stores[0].get(), "y0") != "second") {
      return fail("reissued 2pc write missing at partition 0");
    }
    parts[0].reset();
    parts[1].reset();
    std::filesystem::remove_all(tbase);
  }

  if (verbose) {
    fprintf(stderr,
            "  retry seed %llu: %d logical writes acked over %llu attempts, "
            "all exactly-once\n",
            static_cast<unsigned long long>(seed), logical,
            static_cast<unsigned long long>(send_attempts));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t base_seed = 1;
  int schedules = 50;
  int steps = 160;
  int resilience = 10;
  bool verbose = false;
  for (int i = 1; i < argc; i++) {
    if (strncmp(argv[i], "--seed=", 7) == 0) {
      base_seed = strtoull(argv[i] + 7, nullptr, 10);
    } else if (strncmp(argv[i], "--schedules=", 12) == 0) {
      schedules = atoi(argv[i] + 12);
    } else if (strncmp(argv[i], "--steps=", 8) == 0) {
      steps = atoi(argv[i] + 8);
    } else if (strncmp(argv[i], "--resilience=", 13) == 0) {
      resilience = atoi(argv[i] + 13);
    } else if (strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      fprintf(stderr,
              "usage: %s [--schedules=N] [--seed=S] [--steps=K] "
              "[--resilience=N] [--verbose]\n",
              argv[0]);
      return 2;
    }
  }

  printf("tardis_chaos: %d schedules x %d steps, seeds %llu..%llu\n",
         schedules, steps, static_cast<unsigned long long>(base_seed),
         static_cast<unsigned long long>(base_seed + schedules - 1));
  ScheduleStats total;
  std::vector<uint64_t> failed;
  for (int i = 0; i < schedules; i++) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    Schedule schedule(seed, steps, verbose);
    if (!schedule.Run()) failed.push_back(seed);
    const ScheduleStats& st = schedule.stats();
    total.commits += st.commits;
    total.aborts += st.aborts;
    total.forks += st.forks;
    total.crashes += st.crashes;
    total.injected_errors += st.injected_errors;
    total.reads_checked += st.reads_checked;
  }

  printf("tardis_chaos: %llu commits, %llu aborts, %llu forks, "
         "%llu crash-restarts, %llu injected errors, %llu reads checked\n",
         static_cast<unsigned long long>(total.commits),
         static_cast<unsigned long long>(total.aborts),
         static_cast<unsigned long long>(total.forks),
         static_cast<unsigned long long>(total.crashes),
         static_cast<unsigned long long>(total.injected_errors),
         static_cast<unsigned long long>(total.reads_checked));
  // Resilience families: blank rejoin past the archive horizon,
  // pessimistic GC with a dead peer, cross-partition 2PC with the router
  // and a participant crashing between prepare and decide, and client
  // retry/failover exactly-once under lost requests, lost replies and
  // crash-restart. Seeds offset so they never overlap with the main
  // schedule's seed range under default flags.
  int resilience_failed = 0;
  if (resilience > 0) {
    printf("tardis_chaos: %d resilience + %d gc-resilience + %d twopc + "
           "%d retry schedules\n",
           resilience, resilience, resilience, resilience);
    for (int i = 0; i < resilience; i++) {
      const uint64_t seed = base_seed + 100000 + static_cast<uint64_t>(i);
      if (!RunResilienceSchedule(seed, verbose)) resilience_failed++;
      if (!RunGcResilienceSchedule(seed, verbose)) resilience_failed++;
    }
    for (int i = 0; i < resilience; i++) {
      const uint64_t seed = base_seed + 200000 + static_cast<uint64_t>(i);
      if (!RunTwoPcSchedule(seed, verbose)) resilience_failed++;
    }
    for (int i = 0; i < resilience; i++) {
      const uint64_t seed = base_seed + 300000 + static_cast<uint64_t>(i);
      if (!RunRetrySchedule(seed, verbose)) resilience_failed++;
    }
  }

  if (!failed.empty() || resilience_failed > 0) {
    if (!failed.empty()) {
      fprintf(stderr, "tardis_chaos: %zu/%d schedules FAILED; seeds:",
              failed.size(), schedules);
      for (uint64_t s : failed) {
        fprintf(stderr, " %llu", static_cast<unsigned long long>(s));
      }
      fprintf(stderr, "\n");
    }
    if (resilience_failed > 0) {
      fprintf(stderr, "tardis_chaos: %d resilience schedules FAILED\n",
              resilience_failed);
    }
    return 1;
  }
  printf("tardis_chaos: all %d schedules passed\n",
         schedules + 4 * resilience);
  return 0;
}
