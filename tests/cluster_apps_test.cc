// Cross-site integration tests: the CRDT library and Retwis running on a
// replicated multi-master cluster, with network faults injected. This is
// the paper's end-to-end story — local branch-on-conflict plus cross-site
// replication plus application-driven merge — exercised as one system.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "apps/crdt/tardis_crdts.h"
#include "apps/retwis/retwis.h"
#include "apps/retwis/retwis_merge.h"
#include "baseline/tardis_txkv.h"
#include "replication/cluster.h"

namespace tardis {
namespace {

class ClusterAppsTest : public ::testing::Test {
 protected:
  void Open(size_t sites, uint64_t latency_us = 0) {
    ClusterOptions options;
    options.num_sites = sites;
    options.network.latency_us = latency_us;
    auto cluster = Cluster::Open(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);
    cluster_->Start();
  }
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterAppsTest, CounterConvergesAcrossTwoSites) {
  Open(2);
  crdt::TardisCounter c0(cluster_->site(0), "cnt");
  crdt::TardisCounter c1(cluster_->site(1), "cnt");
  auto s0 = cluster_->site(0)->CreateSession();
  auto s1 = cluster_->site(1)->CreateSession();

  // Both sites increment concurrently (the operations replicate and fork
  // at the remote site).
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(c0.Increment(s0.get(), 2).ok());
    ASSERT_TRUE(c1.Increment(s1.get(), 3).ok());
  }
  ASSERT_TRUE(cluster_->WaitQuiescent());

  // Merge at site 0 until one branch remains; let it replicate.
  auto merger = cluster_->site(0)->CreateSession();
  while (cluster_->site(0)->dag()->Leaves().size() > 1) {
    ASSERT_TRUE(c0.Merge(merger.get()).ok());
  }
  ASSERT_TRUE(cluster_->WaitQuiescent());

  auto v0 = c0.Value(merger.get());
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(*v0, 50);  // 10*2 + 10*3

  auto reader1 = cluster_->site(1)->CreateSession();
  auto v1 = c1.Value(reader1.get());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 50);
  EXPECT_EQ(cluster_->site(1)->dag()->Leaves().size(), 1u);
}

TEST_F(ClusterAppsTest, CounterSurvivesPartitionAndHeals) {
  Open(2);
  crdt::TardisCounter c0(cluster_->site(0), "cnt");
  crdt::TardisCounter c1(cluster_->site(1), "cnt");
  auto s0 = cluster_->site(0)->CreateSession();
  auto s1 = cluster_->site(1)->CreateSession();

  ASSERT_TRUE(c0.Increment(s0.get(), 1).ok());
  ASSERT_TRUE(cluster_->WaitQuiescent());

  // Partition: both sides keep serving writes (availability).
  cluster_->network()->Partition(0, 1);
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(c0.Increment(s0.get(), 1).ok());
    ASSERT_TRUE(c1.Increment(s1.get(), 10).ok());
  }
  // Each side sees only its own updates.
  auto v0 = c0.Value(s0.get());
  auto v1 = c1.Value(s1.get());
  ASSERT_TRUE(v0.ok() && v1.ok());
  EXPECT_EQ(*v0, 6);
  EXPECT_EQ(*v1, 51);

  // Heal; recover the dropped traffic via sync; merge; converge.
  cluster_->network()->HealAll();
  cluster_->replicator(0)->RequestSync();
  cluster_->replicator(1)->RequestSync();
  ASSERT_TRUE(cluster_->WaitQuiescent());
  auto merger = cluster_->site(1)->CreateSession();
  while (cluster_->site(1)->dag()->Leaves().size() > 1) {
    ASSERT_TRUE(c1.Merge(merger.get()).ok());
  }
  ASSERT_TRUE(cluster_->WaitQuiescent());

  for (auto* site_counter : {&c0, &c1}) {
    auto probe = (site_counter == &c0 ? cluster_->site(0)
                                      : cluster_->site(1))
                     ->CreateSession();
    auto v = site_counter->Value(probe.get());
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 56);  // 1 + 5*1 + 5*10
  }
}

TEST_F(ClusterAppsTest, OrSetConvergesAcrossSites) {
  Open(2);
  crdt::TardisOrSet set0(cluster_->site(0), "set");
  crdt::TardisOrSet set1(cluster_->site(1), "set");
  auto s0 = cluster_->site(0)->CreateSession();
  auto s1 = cluster_->site(1)->CreateSession();

  ASSERT_TRUE(set0.Add(s0.get(), "common").ok());
  ASSERT_TRUE(cluster_->WaitQuiescent());

  // Concurrent: site 0 removes "common", site 1 adds "fresh".
  ASSERT_TRUE(set0.Remove(s0.get(), "common").ok());
  ASSERT_TRUE(set1.Add(s1.get(), "fresh").ok());
  ASSERT_TRUE(cluster_->WaitQuiescent());

  auto merger = cluster_->site(0)->CreateSession();
  while (cluster_->site(0)->dag()->Leaves().size() > 1) {
    ASSERT_TRUE(set0.Merge(merger.get()).ok());
  }
  ASSERT_TRUE(cluster_->WaitQuiescent());

  for (int site = 0; site < 2; site++) {
    crdt::TardisOrSet* s = site == 0 ? &set0 : &set1;
    auto probe = cluster_->site(site)->CreateSession();
    auto has_common = s->Contains(probe.get(), "common");
    auto has_fresh = s->Contains(probe.get(), "fresh");
    ASSERT_TRUE(has_common.ok() && has_fresh.ok());
    EXPECT_FALSE(*has_common) << "site " << site;  // observed-remove
    EXPECT_TRUE(*has_fresh) << "site " << site;    // concurrent add wins
  }
}

TEST_F(ClusterAppsTest, RetwisPostsVisibleAcrossSites) {
  Open(2);
  TardisTxKv kv0(cluster_->site(0));
  TardisTxKv kv1(cluster_->site(1));
  retwis::Retwis app0(&kv0);
  retwis::Retwis app1(&kv1);
  auto c0 = app0.NewClient();
  auto c1 = app1.NewClient();

  ASSERT_TRUE(app0.CreateAccount(c0.get(), 1).ok());
  ASSERT_TRUE(app0.CreateAccount(c0.get(), 2).ok());
  ASSERT_TRUE(app0.FollowUser(c0.get(), 2, 1).ok());
  ASSERT_TRUE(cluster_->WaitQuiescent());

  // User 1 posts at site 0; user 2 reads their timeline at site 1.
  ASSERT_TRUE(app0.PostTweet(c0.get(), 1, "hello from site 0").ok());
  ASSERT_TRUE(cluster_->WaitQuiescent());

  auto tl = app1.ReadOwnTimeline(c1.get(), 2);
  ASSERT_TRUE(tl.ok());
  ASSERT_EQ(tl->size(), 1u);
  EXPECT_EQ((*tl)[0].author, 1u);
}

TEST_F(ClusterAppsTest, RetwisConcurrentCrossSitePostsMerge) {
  Open(2);
  TardisTxKv kv0(cluster_->site(0));
  TardisTxKv kv1(cluster_->site(1));
  retwis::Retwis app0(&kv0);
  retwis::Retwis app1(&kv1);
  auto c0 = app0.NewClient();
  auto c1 = app1.NewClient();

  ASSERT_TRUE(app0.CreateAccount(c0.get(), 1).ok());
  ASSERT_TRUE(cluster_->WaitQuiescent());

  // Both sites post to user 1's timeline concurrently -> remote forks.
  ASSERT_TRUE(app0.PostTweet(c0.get(), 1, "from site 0").ok());
  ASSERT_TRUE(app1.PostTweet(c1.get(), 1, "from site 1").ok());
  ASSERT_TRUE(cluster_->WaitQuiescent());
  EXPECT_EQ(cluster_->site(0)->dag()->Leaves().size(), 2u);

  retwis::RetwisMerger merger(cluster_->site(0));
  while (cluster_->site(0)->dag()->Leaves().size() > 1) {
    ASSERT_TRUE(merger.MergeOnce().ok());
  }
  ASSERT_TRUE(cluster_->WaitQuiescent());

  // Both sites converge on a timeline holding both posts, newest first.
  for (int site = 0; site < 2; site++) {
    retwis::Retwis* app = site == 0 ? &app0 : &app1;
    auto client = app->NewClient();
    auto tl = app->ReadOwnTimeline(client.get(), 1);
    ASSERT_TRUE(tl.ok());
    EXPECT_EQ(tl->size(), 2u) << "site " << site;
  }
  EXPECT_EQ(cluster_->site(1)->dag()->Leaves().size(), 1u);
}

TEST_F(ClusterAppsTest, ThreeSitesWithLatencyConverge) {
  Open(3, /*latency_us=*/5'000);
  crdt::TardisCounter counters[3] = {
      {cluster_->site(0), "cnt"},
      {cluster_->site(1), "cnt"},
      {cluster_->site(2), "cnt"},
  };
  std::vector<std::unique_ptr<ClientSession>> sessions;
  for (int s = 0; s < 3; s++) {
    sessions.push_back(cluster_->site(s)->CreateSession());
  }
  for (int round = 0; round < 5; round++) {
    for (int s = 0; s < 3; s++) {
      ASSERT_TRUE(counters[s].Increment(sessions[s].get(), s + 1).ok());
    }
  }
  ASSERT_TRUE(cluster_->WaitQuiescent(30'000));
  auto merger = cluster_->site(0)->CreateSession();
  while (cluster_->site(0)->dag()->Leaves().size() > 1) {
    ASSERT_TRUE(counters[0].Merge(merger.get()).ok());
  }
  ASSERT_TRUE(cluster_->WaitQuiescent(30'000));
  for (int s = 0; s < 3; s++) {
    auto probe = cluster_->site(s)->CreateSession();
    auto v = counters[s].Value(probe.get());
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 30) << "site " << s;  // 5 * (1+2+3)
  }
}

}  // namespace
}  // namespace tardis
