// Tests for the Retwis application on all three backends, plus the
// TARDiS-specific branch merge resolver.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/retwis/retwis.h"
#include "apps/retwis/retwis_merge.h"
#include "baseline/occ_store.h"
#include "baseline/tardis_txkv.h"
#include "baseline/twopl_store.h"

namespace tardis {
namespace retwis {
namespace {

TEST(RetwisCodecTest, TimelineRoundTrip) {
  std::vector<Post> posts = {{1111, 7, 3}, {999, 5, 2}, {42, 1, 1}};
  auto decoded = Retwis::DecodeTimeline(Retwis::EncodeTimeline(posts));
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].timestamp_us, 1111u);
  EXPECT_EQ(decoded[0].post_id, 7u);
  EXPECT_EQ(decoded[0].author, 3u);
  EXPECT_EQ(decoded[2].post_id, 1u);
}

TEST(RetwisCodecTest, MergeTimelinesDedupsAndSorts) {
  std::vector<Post> a = {{300, 3, 1}, {100, 1, 1}};
  std::vector<Post> b = {{200, 2, 2}, {100, 1, 1}};  // post 1 duplicated
  auto merged = Retwis::MergeTimelines({a, b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].post_id, 3u);
  EXPECT_EQ(merged[1].post_id, 2u);
  EXPECT_EQ(merged[2].post_id, 1u);
}

TEST(RetwisCodecTest, MergeTimelinesCapsAtLimit) {
  std::vector<Post> big;
  for (uint64_t i = 0; i < kTimelineCap + 20; i++) {
    big.push_back({i, i, 0});
  }
  auto merged = Retwis::MergeTimelines({big});
  EXPECT_EQ(merged.size(), kTimelineCap);
  // Newest first: the largest timestamps survive the cap.
  EXPECT_EQ(merged[0].timestamp_us, kTimelineCap + 19);
}

// The same behavioural suite runs against each backend.
class RetwisBackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const std::string which = GetParam();
    if (which == "tardis") {
      auto inner = TardisStore::Open(TardisOptions{});
      ASSERT_TRUE(inner.ok());
      tardis_store_ = std::move(*inner);
      store_ = std::make_unique<TardisTxKv>(tardis_store_.get());
    } else if (which == "2pl") {
      auto s = TwoPLStore::Open(TwoPLOptions{});
      ASSERT_TRUE(s.ok());
      store_ = std::move(*s);
    } else {
      auto s = OccStore::Open(OccOptions{});
      ASSERT_TRUE(s.ok());
      store_ = std::move(*s);
    }
    app_ = std::make_unique<Retwis>(store_.get());
    client_ = app_->NewClient();
  }

  std::unique_ptr<TardisStore> tardis_store_;
  std::unique_ptr<TxKvStore> store_;
  std::unique_ptr<Retwis> app_;
  std::unique_ptr<Retwis::Client> client_;
};

TEST_P(RetwisBackendTest, CreateAccountIsIdempotent) {
  ASSERT_TRUE(app_->CreateAccount(client_.get(), 1).ok());
  ASSERT_TRUE(app_->CreateAccount(client_.get(), 1).ok());
}

TEST_P(RetwisBackendTest, PostAppearsInOwnTimeline) {
  ASSERT_TRUE(app_->CreateAccount(client_.get(), 1).ok());
  ASSERT_TRUE(app_->PostTweet(client_.get(), 1, "hello world").ok());
  auto tl = app_->ReadOwnTimeline(client_.get(), 1);
  ASSERT_TRUE(tl.ok());
  ASSERT_EQ(tl->size(), 1u);
  EXPECT_EQ((*tl)[0].author, 1u);
}

TEST_P(RetwisBackendTest, PostFansOutToFollowers) {
  for (uint32_t u = 1; u <= 3; u++) {
    ASSERT_TRUE(app_->CreateAccount(client_.get(), u).ok());
  }
  ASSERT_TRUE(app_->FollowUser(client_.get(), 2, 1).ok());  // 2 follows 1
  ASSERT_TRUE(app_->FollowUser(client_.get(), 3, 1).ok());
  ASSERT_TRUE(app_->PostTweet(client_.get(), 1, "to my fans").ok());

  for (uint32_t u = 2; u <= 3; u++) {
    auto tl = app_->ReadOwnTimeline(client_.get(), u);
    ASSERT_TRUE(tl.ok());
    ASSERT_EQ(tl->size(), 1u) << "user " << u;
    EXPECT_EQ((*tl)[0].author, 1u);
  }
  // A non-follower sees nothing.
  ASSERT_TRUE(app_->CreateAccount(client_.get(), 9).ok());
  auto tl = app_->ReadOwnTimeline(client_.get(), 9);
  ASSERT_TRUE(tl.ok());
  EXPECT_TRUE(tl->empty());
}

TEST_P(RetwisBackendTest, TimelineNewestFirstAndCapped) {
  ASSERT_TRUE(app_->CreateAccount(client_.get(), 1).ok());
  for (int i = 0; i < static_cast<int>(kTimelineCap) + 10; i++) {
    ASSERT_TRUE(
        app_->PostTweet(client_.get(), 1, "post " + std::to_string(i)).ok());
  }
  auto tl = app_->ReadOwnTimeline(client_.get(), 1);
  ASSERT_TRUE(tl.ok());
  EXPECT_EQ(tl->size(), kTimelineCap);
  for (size_t i = 1; i < tl->size(); i++) {
    EXPECT_GE((*tl)[i - 1].timestamp_us, (*tl)[i].timestamp_us);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, RetwisBackendTest,
                         ::testing::Values("tardis", "2pl", "occ"),
                         [](const auto& info) {
                           return std::string(info.param) == "2pl"
                                      ? "TwoPL"
                                      : std::string(info.param);
                         });

TEST(RetwisMergeTest, ConcurrentPostsMergePreservingOrder) {
  auto inner = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(inner.ok());
  TardisTxKv store(inner->get());
  Retwis app(&store);
  auto ca = app.NewClient();
  auto cb = app.NewClient();

  ASSERT_TRUE(app.CreateAccount(ca.get(), 1).ok());
  ASSERT_TRUE(app.FollowUser(ca.get(), 2, 1).ok());
  ASSERT_TRUE(app.CreateAccount(ca.get(), 2).ok());

  // Two clients post to user 1's audience concurrently enough to fork:
  // both posts update u/1/timeline and u/2/timeline from different
  // branches. Interleave by posting from both clients.
  ASSERT_TRUE(app.PostTweet(ca.get(), 1, "from A").ok());
  ASSERT_TRUE(app.PostTweet(cb.get(), 1, "from B").ok());

  if ((*inner)->dag()->Leaves().size() > 1) {
    RetwisMerger merger(inner->get());
    ASSERT_TRUE(merger.MergeOnce().ok());
    EXPECT_EQ((*inner)->dag()->Leaves().size(), 1u);
  }
  // After merging, a fresh client sees both posts, newest first.
  auto cc = app.NewClient();
  auto tl = app.ReadOwnTimeline(cc.get(), 1);
  ASSERT_TRUE(tl.ok());
  EXPECT_EQ(tl->size(), 2u);
  for (size_t i = 1; i < tl->size(); i++) {
    EXPECT_GE((*tl)[i - 1].timestamp_us, (*tl)[i].timestamp_us);
  }
}

TEST(RetwisMergeTest, ForkedTimelinesConvergeAfterMerge) {
  auto inner = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(inner.ok());
  TardisStore* ts = inner->get();
  TardisTxKv store(ts);
  Retwis app(&store);
  auto seed = app.NewClient();
  ASSERT_TRUE(app.CreateAccount(seed.get(), 1).ok());
  ASSERT_TRUE(app.PostTweet(seed.get(), 1, "base").ok());

  // Force a genuine fork on the timeline key using raw transactions.
  auto sa = ts->CreateSession();
  auto sb = ts->CreateSession();
  auto ta = ts->Begin(sa.get());
  auto tb = ts->Begin(sb.get());
  ASSERT_TRUE(ta.ok() && tb.ok());
  std::string raw;
  ASSERT_TRUE((*ta)->Get(Retwis::TimelineKey(1), &raw).ok());
  auto base = Retwis::DecodeTimeline(raw);
  auto la = base;
  la.insert(la.begin(), Post{la[0].timestamp_us + 100, 1001, 1});
  ASSERT_TRUE(
      (*ta)->Put(Retwis::TimelineKey(1), Retwis::EncodeTimeline(la)).ok());
  ASSERT_TRUE((*tb)->Get(Retwis::TimelineKey(1), &raw).ok());
  auto lb = base;
  lb.insert(lb.begin(), Post{lb[0].timestamp_us + 200, 1002, 1});
  ASSERT_TRUE(
      (*tb)->Put(Retwis::TimelineKey(1), Retwis::EncodeTimeline(lb)).ok());
  ASSERT_TRUE((*ta)->Commit().ok());
  ASSERT_TRUE((*tb)->Commit().ok());
  ASSERT_EQ(ts->dag()->Leaves().size(), 2u);

  RetwisMerger merger(ts);
  ASSERT_TRUE(merger.MergeOnce().ok());
  EXPECT_EQ(merger.merges(), 1u);
  EXPECT_EQ(ts->dag()->Leaves().size(), 1u);

  auto cc = app.NewClient();
  auto tl = app.ReadOwnTimeline(cc.get(), 1);
  ASSERT_TRUE(tl.ok());
  ASSERT_EQ(tl->size(), 3u);  // base + both branch posts
  EXPECT_EQ((*tl)[0].post_id, 1002u);
  EXPECT_EQ((*tl)[1].post_id, 1001u);
}

}  // namespace
}  // namespace retwis
}  // namespace tardis
