// Tests for the baselines: lock manager, strict-2PL store, OCC store, and
// the TxKV adapters (including TARDiS behind the same interface).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "baseline/lock_manager.h"
#include "util/random.h"
#include "baseline/occ_store.h"
#include "baseline/tardis_txkv.h"
#include "baseline/twopl_store.h"

namespace tardis {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.AcquireShared(1, "k").ok());
  EXPECT_TRUE(lm.AcquireShared(2, "k").ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ExclusiveExcludesShared) {
  LockManager lm(/*wait_timeout_us=*/5'000);
  EXPECT_TRUE(lm.AcquireExclusive(1, "k").ok());
  EXPECT_TRUE(lm.AcquireShared(2, "k").IsBusy());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.AcquireShared(2, "k").ok());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ExclusiveExcludesExclusive) {
  LockManager lm(5'000);
  EXPECT_TRUE(lm.AcquireExclusive(1, "k").ok());
  EXPECT_TRUE(lm.AcquireExclusive(2, "k").IsBusy());
  EXPECT_EQ(lm.timeout_count(), 1u);
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, ReentrantAcquire) {
  LockManager lm;
  EXPECT_TRUE(lm.AcquireShared(1, "k").ok());
  EXPECT_TRUE(lm.AcquireShared(1, "k").ok());
  EXPECT_TRUE(lm.AcquireExclusive(1, "k").ok());  // upgrade
  EXPECT_TRUE(lm.AcquireExclusive(1, "k").ok());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.AcquireExclusive(2, "k").ok());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, UpgradeBlockedByOtherSharer) {
  LockManager lm(5'000);
  EXPECT_TRUE(lm.AcquireShared(1, "k").ok());
  EXPECT_TRUE(lm.AcquireShared(2, "k").ok());
  EXPECT_TRUE(lm.AcquireExclusive(1, "k").IsBusy());
  lm.ReleaseAll(2);
  EXPECT_TRUE(lm.AcquireExclusive(1, "k").ok());
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, WaiterWakesOnRelease) {
  LockManager lm(2'000'000);  // generous timeout
  ASSERT_TRUE(lm.AcquireExclusive(1, "k").ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ASSERT_TRUE(lm.AcquireExclusive(2, "k").ok());
    acquired = true;
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

template <typename OpenFn>
void RunBasicTxKvSuite(OpenFn open) {
  auto store = open();
  auto client = store->NewClient();

  // Put/Get round trip.
  {
    auto txn = client->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("a", "1").ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  {
    auto txn = client->Begin();
    ASSERT_TRUE(txn.ok());
    std::string v;
    ASSERT_TRUE((*txn)->Get("a", &v).ok());
    EXPECT_EQ(v, "1");
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  // Read own writes.
  {
    auto txn = client->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("b", "2").ok());
    std::string v;
    ASSERT_TRUE((*txn)->Get("b", &v).ok());
    EXPECT_EQ(v, "2");
    (*txn)->Abort();
  }
  // Abort discards.
  {
    auto txn = client->Begin();
    ASSERT_TRUE(txn.ok());
    std::string v;
    EXPECT_TRUE((*txn)->Get("b", &v).IsNotFound());
    (*txn)->Abort();
  }
}

TEST(TwoPLStoreTest, BasicSuite) {
  RunBasicTxKvSuite([] {
    auto s = TwoPLStore::Open(TwoPLOptions{});
    EXPECT_TRUE(s.ok());
    return std::move(*s);
  });
}

TEST(OccStoreTest, BasicSuite) {
  RunBasicTxKvSuite([] {
    auto s = OccStore::Open(OccOptions{});
    EXPECT_TRUE(s.ok());
    return std::move(*s);
  });
}

TEST(TardisTxKvTest, BasicSuite) {
  TardisOptions options;
  auto inner = TardisStore::Open(options);
  ASSERT_TRUE(inner.ok());
  auto store = std::make_unique<TardisTxKv>(inner->get());
  auto client = store->NewClient();
  auto txn = client->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Put("x", "y").ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  auto txn2 = client->Begin();
  ASSERT_TRUE(txn2.ok());
  std::string v;
  ASSERT_TRUE((*txn2)->Get("x", &v).ok());
  EXPECT_EQ(v, "y");
  ASSERT_TRUE((*txn2)->Commit().ok());
}

TEST(TwoPLStoreTest, ConflictingWritersBlockOrTimeout) {
  auto store = TwoPLStore::Open(TwoPLOptions{.dir = "", .cache_pages = 8192, .lock_timeout_us = 5'000});
  ASSERT_TRUE(store.ok());
  auto c1 = (*store)->NewClient();
  auto c2 = (*store)->NewClient();
  auto t1 = c1->Begin();
  auto t2 = c2->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE((*t1)->Put("hot", "1").ok());
  // t2 cannot lock "hot" while t1 holds it.
  EXPECT_TRUE((*t2)->Put("hot", "2").IsBusy());
  ASSERT_TRUE((*t1)->Commit().ok());
  EXPECT_EQ((*store)->aborts(), 1u);
}

TEST(TwoPLStoreTest, ReadersBlockWriters) {
  auto store = TwoPLStore::Open(TwoPLOptions{.dir = "", .cache_pages = 8192, .lock_timeout_us = 5'000});
  ASSERT_TRUE(store.ok());
  auto c1 = (*store)->NewClient();
  auto c2 = (*store)->NewClient();
  {
    auto seed = c1->Begin();
    ASSERT_TRUE(seed.ok());
    ASSERT_TRUE((*seed)->Put("r", "0").ok());
    ASSERT_TRUE((*seed)->Commit().ok());
  }
  auto t1 = c1->Begin();
  auto t2 = c2->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("r", &v).ok());
  EXPECT_TRUE((*t2)->Put("r", "1").IsBusy());
  (*t1)->Abort();
}

TEST(OccStoreTest, ReadWriteConflictAborts) {
  auto store = OccStore::Open(OccOptions{});
  ASSERT_TRUE(store.ok());
  auto c1 = (*store)->NewClient();
  auto c2 = (*store)->NewClient();
  {
    auto seed = c1->Begin();
    ASSERT_TRUE(seed.ok());
    ASSERT_TRUE((*seed)->Put("x", "0").ok());
    ASSERT_TRUE((*seed)->Commit().ok());
  }
  auto t1 = c1->Begin();
  auto t2 = c2->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("x", &v).ok());  // t1 reads x
  ASSERT_TRUE((*t2)->Put("x", "1").ok());
  ASSERT_TRUE((*t1)->Put("y", "1").ok());
  ASSERT_TRUE((*t2)->Commit().ok());  // t2 commits first
  // t1's read of x is stale -> conflict.
  EXPECT_TRUE((*t1)->Commit().IsConflict());
  EXPECT_EQ((*store)->aborts(), 1u);
}

TEST(OccStoreTest, ReadOnlyIsValidatedButRegistersNothing) {
  auto store = OccStore::Open(OccOptions{});
  ASSERT_TRUE(store.ok());
  auto c1 = (*store)->NewClient();
  auto c2 = (*store)->NewClient();
  {
    auto seed = c1->Begin();
    ASSERT_TRUE(seed.ok());
    ASSERT_TRUE((*seed)->Put("x", "0").ok());
    ASSERT_TRUE((*seed)->Commit().ok());
  }
  const uint64_t before = (*store)->validations();
  auto t1 = c1->Begin();
  ASSERT_TRUE(t1.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("x", &v).ok());
  // A concurrent writer commits: the read-only txn's read is stale and
  // (unlike TARDiS) it pays validation and aborts.
  auto t2 = c2->Begin();
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE((*t2)->Put("x", "1").ok());
  ASSERT_TRUE((*t2)->Commit().ok());
  EXPECT_TRUE((*t1)->Commit().IsConflict());
  EXPECT_EQ((*store)->validations(), before + 2);  // t2 and t1

  // A read-only txn with no concurrent writers commits cleanly and does
  // not register a write set for others to validate against.
  auto t3 = c1->Begin();
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE((*t3)->Get("x", &v).ok());
  EXPECT_TRUE((*t3)->Commit().ok());
}

TEST(OccStoreTest, DisjointWritersBothCommit) {
  auto store = OccStore::Open(OccOptions{});
  ASSERT_TRUE(store.ok());
  auto c1 = (*store)->NewClient();
  auto c2 = (*store)->NewClient();
  auto t1 = c1->Begin();
  auto t2 = c2->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE((*t1)->Put("a", "1").ok());
  ASSERT_TRUE((*t2)->Put("b", "2").ok());
  EXPECT_TRUE((*t1)->Commit().ok());
  EXPECT_TRUE((*t2)->Commit().ok());
  EXPECT_EQ((*store)->aborts(), 0u);
}

TEST(BaselineStressTest, TwoPLParallelDisjointClients) {
  auto store = TwoPLStore::Open(TwoPLOptions{});
  ASSERT_TRUE(store.ok());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&store, t] {
      auto client = (*store)->NewClient();
      for (int i = 0; i < 100; i++) {
        auto txn = client->Begin();
        ASSERT_TRUE(txn.ok());
        ASSERT_TRUE(
            (*txn)
                ->Put("t" + std::to_string(t) + "_" + std::to_string(i), "v")
                .ok());
        ASSERT_TRUE((*txn)->Commit().ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ((*store)->record_store()->size(), 400u);
}


TEST(TwoPLStoreTest, DiskBackedRoundTrip) {
  const std::string dir = ::testing::TempDir() + "tardis_2pl_disk_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  TwoPLOptions options;
  options.dir = dir;
  auto store = TwoPLStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto client = (*store)->NewClient();
  for (int i = 0; i < 200; i++) {
    auto txn = client->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("dk" + std::to_string(i), "v" + std::to_string(i)).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  auto txn = client->Begin();
  ASSERT_TRUE(txn.ok());
  std::string v;
  ASSERT_TRUE((*txn)->Get("dk123", &v).ok());
  EXPECT_EQ(v, "v123");
  ASSERT_TRUE((*txn)->Commit().ok());
  std::filesystem::remove_all(dir);
}

TEST(OccStoreTest, DiskBackedRoundTrip) {
  const std::string dir = ::testing::TempDir() + "tardis_occ_disk_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  OccOptions options;
  options.dir = dir;
  auto store = OccStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto client = (*store)->NewClient();
  for (int i = 0; i < 200; i++) {
    auto txn = client->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("dk" + std::to_string(i), "v" + std::to_string(i)).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  auto txn = client->Begin();
  ASSERT_TRUE(txn.ok());
  std::string v;
  ASSERT_TRUE((*txn)->Get("dk77", &v).ok());
  EXPECT_EQ(v, "v77");
  ASSERT_TRUE((*txn)->Commit().ok());
  std::filesystem::remove_all(dir);
}

TEST(LockManagerStressTest, ManyThreadsManyKeys) {
  LockManager lm(/*wait_timeout_us=*/100'000);
  constexpr int kThreads = 6;
  constexpr int kOps = 400;
  std::atomic<uint64_t> acquired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Random rng(t + 1);
      for (int i = 0; i < kOps; i++) {
        const LockTxnId txn = static_cast<LockTxnId>(t) * kOps + i + 1;
        const int nlocks = 1 + rng.Uniform(3);
        bool ok = true;
        for (int l = 0; l < nlocks && ok; l++) {
          // Sorted key order avoids deadlocks; timeouts then mean bugs.
          const std::string key = "k" + std::to_string(l * 10 + rng.Uniform(5));
          ok = (rng.Bernoulli(0.5) ? lm.AcquireShared(txn, key)
                                   : lm.AcquireExclusive(txn, key))
                   .ok();
        }
        if (ok) acquired.fetch_add(1);
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Upgrades between two sharers can still deadlock and time out, so not
  // all acquisitions must succeed — but most should, and nothing may hang
  // or crash.
  EXPECT_GT(acquired.load(), static_cast<uint64_t>(kThreads * kOps * 0.9));
}

}  // namespace
}  // namespace tardis
