// Integration tests for TardisStore transactions: begin/commit state
// selection (Fig. 6), branch-on-conflict, inter-branch isolation,
// read-my-writes, merge transactions and the three merge helpers.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/tardis_store.h"

namespace tardis {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TardisOptions options;  // in-memory
    auto store = TardisStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
    session_ = store_->CreateSession();
  }

  // Single put-commit helper returning the commit status.
  Status PutCommit(ClientSession* session, const std::string& key,
                   const std::string& value,
                   EndConstraintPtr end = nullptr) {
    auto txn = store_->Begin(session);
    if (!txn.ok()) return txn.status();
    TARDIS_RETURN_IF_ERROR((*txn)->Put(key, value));
    return (*txn)->Commit(end);
  }

  std::string MustGet(ClientSession* session, const std::string& key) {
    auto txn = store_->Begin(session);
    EXPECT_TRUE(txn.ok());
    std::string value;
    Status s = (*txn)->Get(key, &value);
    EXPECT_TRUE(s.ok()) << key << ": " << s.ToString();
    EXPECT_TRUE((*txn)->Commit().ok());
    return value;
  }

  std::unique_ptr<TardisStore> store_;
  std::unique_ptr<ClientSession> session_;
};

TEST_F(TxnTest, PutThenGetRoundTrip) {
  ASSERT_TRUE(PutCommit(session_.get(), "k", "v").ok());
  EXPECT_EQ(MustGet(session_.get(), "k"), "v");
}

TEST_F(TxnTest, GetMissingKeyIsNotFound) {
  auto txn = store_->Begin(session_.get());
  ASSERT_TRUE(txn.ok());
  std::string v;
  EXPECT_TRUE((*txn)->Get("missing", &v).IsNotFound());
  EXPECT_TRUE((*txn)->Commit().ok());
}

TEST_F(TxnTest, ReadsOwnWritesInsideTxn) {
  auto txn = store_->Begin(session_.get());
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Put("a", "1").ok());
  std::string v;
  ASSERT_TRUE((*txn)->Get("a", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE((*txn)->Put("a", "2").ok());
  ASSERT_TRUE((*txn)->Get("a", &v).ok());
  EXPECT_EQ(v, "2");
  EXPECT_TRUE((*txn)->Commit().ok());
  EXPECT_EQ(MustGet(session_.get(), "a"), "2");
}

TEST_F(TxnTest, AbortDiscardsWrites) {
  auto txn = store_->Begin(session_.get());
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Put("gone", "x").ok());
  (*txn)->Abort();
  auto read = store_->Begin(session_.get());
  ASSERT_TRUE(read.ok());
  std::string v;
  EXPECT_TRUE((*read)->Get("gone", &v).IsNotFound());
  (*read)->Abort();
  EXPECT_EQ(store_->stats().aborts, 2u);
}

TEST_F(TxnTest, DestructorAbortsActiveTxn) {
  {
    auto txn = store_->Begin(session_.get());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("tmp", "x").ok());
    // dropped without commit
  }
  EXPECT_EQ(store_->stats().aborts, 1u);
  EXPECT_EQ(store_->dag()->state_count(), 1u);
}

TEST_F(TxnTest, ReadOnlyTxnDoesNotGrowDag) {
  ASSERT_TRUE(PutCommit(session_.get(), "k", "v").ok());
  const size_t before = store_->dag()->state_count();
  for (int i = 0; i < 5; i++) MustGet(session_.get(), "k");
  EXPECT_EQ(store_->dag()->state_count(), before);
  EXPECT_EQ(store_->stats().read_only_commits, 5u);
}

TEST_F(TxnTest, SequentialCommitsExtendOneBranch) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        PutCommit(session_.get(), "k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(store_->dag()->Leaves().size(), 1u);
  EXPECT_EQ(store_->dag()->state_count(), 11u);  // root + 10
  EXPECT_EQ(store_->stats().branches_created, 0u);
}

TEST_F(TxnTest, UsedTransactionRejectsFurtherOps) {
  auto txn = store_->Begin(session_.get());
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Put("k", "v").ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  std::string v;
  EXPECT_TRUE((*txn)->Get("k", &v).IsInvalidArgument());
  EXPECT_TRUE((*txn)->Put("k", "w").IsInvalidArgument());
  EXPECT_TRUE((*txn)->Commit().IsInvalidArgument());
}

// ---- branch-on-conflict ----------------------------------------------------

TEST_F(TxnTest, ConflictingCommitsForkTheDag) {
  ASSERT_TRUE(PutCommit(session_.get(), "counter", "0").ok());

  // Two transactions read the same state and both write `counter`.
  auto s2 = store_->CreateSession();
  auto t1 = store_->Begin(session_.get());
  auto t2 = store_->Begin(s2.get());
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("counter", &v).ok());
  ASSERT_TRUE((*t2)->Get("counter", &v).ok());
  ASSERT_TRUE((*t1)->Put("counter", "1").ok());
  ASSERT_TRUE((*t2)->Put("counter", "2").ok());

  // Under plain Serializability both commit: the second forks.
  EXPECT_TRUE((*t1)->Commit(SerializabilityEnd()).ok());
  EXPECT_TRUE((*t2)->Commit(SerializabilityEnd()).ok());
  EXPECT_EQ(store_->dag()->Leaves().size(), 2u);
  EXPECT_EQ(store_->stats().branches_created, 1u);

  // Each session reads its own branch (inter-branch isolation).
  EXPECT_EQ(MustGet(session_.get(), "counter"), "1");
  EXPECT_EQ(MustGet(s2.get(), "counter"), "2");
}

TEST_F(TxnTest, NoBranchingConstraintAbortsSecondWriter) {
  ASSERT_TRUE(PutCommit(session_.get(), "x", "0").ok());
  auto s2 = store_->CreateSession();
  auto seq = AndEnd({SerializabilityEnd(), NoBranchingEnd()});

  auto t1 = store_->Begin(session_.get());
  auto t2 = store_->Begin(s2.get());
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("x", &v).ok());
  ASSERT_TRUE((*t2)->Get("x", &v).ok());
  ASSERT_TRUE((*t1)->Put("x", "1").ok());
  ASSERT_TRUE((*t2)->Put("x", "2").ok());

  EXPECT_TRUE((*t1)->Commit(seq).ok());
  // t2 read x which t1 wrote: it can't ripple through t1's state, and the
  // commit parent now has a child -> abort, like sequential storage.
  Status s = (*t2)->Commit(seq);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_EQ(store_->dag()->Leaves().size(), 1u);
}

TEST_F(TxnTest, NonConflictingWritersRippleInsteadOfForking) {
  ASSERT_TRUE(PutCommit(session_.get(), "a", "0").ok());
  auto s2 = store_->CreateSession();
  auto seq = AndEnd({SerializabilityEnd(), NoBranchingEnd()});

  // Disjoint key sets: the second commit ripples below the first.
  auto t1 = store_->Begin(session_.get());
  auto t2 = store_->Begin(s2.get());
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE((*t1)->Put("k1", "x").ok());
  ASSERT_TRUE((*t2)->Put("k2", "y").ok());
  EXPECT_TRUE((*t1)->Commit(seq).ok());
  EXPECT_TRUE((*t2)->Commit(seq).ok());
  EXPECT_EQ(store_->dag()->Leaves().size(), 1u);
  EXPECT_EQ(store_->stats().branches_created, 0u);

  // Both writes visible on the single branch.
  EXPECT_EQ(MustGet(session_.get(), "k1"), "x");
  EXPECT_EQ(MustGet(session_.get(), "k2"), "y");
}

TEST_F(TxnTest, KBranchingBoundsForkDegree) {
  ASSERT_TRUE(PutCommit(session_.get(), "hot", "0").ok());
  // K-Branching(k=3) allows fewer than 2 children at the commit parent:
  // the first two conflicting commits succeed, the third aborts.
  auto kb = AndEnd({SerializabilityEnd(), KBranchingEnd(3)});
  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<TxnPtr> txns;
  for (int i = 0; i < 3; i++) {
    sessions.push_back(store_->CreateSession());
    auto t = store_->Begin(sessions.back().get());
    ASSERT_TRUE(t.ok());
    std::string v;
    ASSERT_TRUE((*t)->Get("hot", &v).ok());
    ASSERT_TRUE((*t)->Put("hot", std::to_string(i)).ok());
    txns.push_back(std::move(*t));
  }
  EXPECT_TRUE(txns[0]->Commit(kb).ok());
  EXPECT_TRUE(txns[1]->Commit(kb).ok());
  EXPECT_TRUE(txns[2]->Commit(kb).IsAborted());
  EXPECT_EQ(store_->dag()->Leaves().size(), 2u);
}

TEST_F(TxnTest, SnapshotIsolationAllowsReadSkewButNotWriteWrite) {
  ASSERT_TRUE(PutCommit(session_.get(), "w", "0").ok());
  auto s2 = store_->CreateSession();
  auto si = AndEnd({SnapshotIsolationEnd(), NoBranchingEnd()});

  // Write-write conflict: second aborts under SI + NoBranching.
  auto t1 = store_->Begin(session_.get());
  auto t2 = store_->Begin(s2.get());
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE((*t1)->Put("w", "1").ok());
  ASSERT_TRUE((*t2)->Put("w", "2").ok());
  EXPECT_TRUE((*t1)->Commit(si).ok());
  EXPECT_TRUE((*t2)->Commit(si).IsAborted());

  // Read-write (no write overlap): SI lets it through where Ser wouldn't.
  auto t3 = store_->Begin(session_.get());
  auto t4 = store_->Begin(s2.get());
  ASSERT_TRUE(t3.ok() && t4.ok());
  std::string v;
  ASSERT_TRUE((*t4)->Get("w", &v).ok());   // t4 reads w
  ASSERT_TRUE((*t3)->Put("w", "3").ok());  // t3 writes w
  ASSERT_TRUE((*t4)->Put("other", "x").ok());
  EXPECT_TRUE((*t3)->Commit(si).ok());
  EXPECT_TRUE((*t4)->Commit(si).ok());  // stale read tolerated under SI
}

TEST_F(TxnTest, ParentBeginSeesOnlyOwnCommits) {
  // Session A and B conflict and fork; with Parent begin, A continues
  // from exactly its own last commit.
  auto sB = store_->CreateSession();
  ASSERT_TRUE(PutCommit(session_.get(), "base", "0").ok());

  auto tA = store_->Begin(session_.get());
  auto tB = store_->Begin(sB.get());
  ASSERT_TRUE(tA.ok() && tB.ok());
  std::string v;
  ASSERT_TRUE((*tA)->Get("base", &v).ok());
  ASSERT_TRUE((*tB)->Get("base", &v).ok());
  ASSERT_TRUE((*tA)->Put("base", "A").ok());
  ASSERT_TRUE((*tB)->Put("base", "B").ok());
  ASSERT_TRUE((*tA)->Commit(SerializabilityEnd()).ok());
  ASSERT_TRUE((*tB)->Commit(SerializabilityEnd()).ok());

  auto tA2 = store_->Begin(session_.get(), ParentBegin());
  ASSERT_TRUE(tA2.ok());
  ASSERT_TRUE((*tA2)->Get("base", &v).ok());
  EXPECT_EQ(v, "A");
  EXPECT_EQ((*tA2)->parents()[0], session_->last_commit()->id());
  (*tA2)->Abort();
}

TEST_F(TxnTest, AncestorBeginGuaranteesReadMyWrites) {
  ASSERT_TRUE(PutCommit(session_.get(), "mine", "1").ok());
  // Another session forks elsewhere; this session still sees its write.
  auto s2 = store_->CreateSession();
  ASSERT_TRUE(PutCommit(s2.get(), "theirs", "2").ok());
  auto txn = store_->Begin(session_.get(), AncestorBegin());
  ASSERT_TRUE(txn.ok());
  std::string v;
  EXPECT_TRUE((*txn)->Get("mine", &v).ok());
  EXPECT_EQ(v, "1");
  (*txn)->Abort();
}

TEST_F(TxnTest, StateIdBeginPinsExactState) {
  ASSERT_TRUE(PutCommit(session_.get(), "k", "old").ok());
  const StateId pinned = session_->last_commit()->id();
  ASSERT_TRUE(PutCommit(session_.get(), "k", "new").ok());

  auto txn = store_->Begin(session_.get(), StateIdBegin(pinned));
  ASSERT_TRUE(txn.ok());
  std::string v;
  ASSERT_TRUE((*txn)->Get("k", &v).ok());
  EXPECT_EQ(v, "old");  // time travel to the pinned state
  (*txn)->Abort();
}

// ---- merge transactions -----------------------------------------------------

TEST_F(TxnTest, MergeReconcilesCounterBranches) {
  // The Figure 3 counter: two branches increment independently; the merge
  // computes fork + sum of per-branch deltas.
  ASSERT_TRUE(PutCommit(session_.get(), "cnt", "10").ok());

  auto s2 = store_->CreateSession();
  auto t1 = store_->Begin(session_.get());
  auto t2 = store_->Begin(s2.get());
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("cnt", &v).ok());
  ASSERT_TRUE((*t1)->Put("cnt", std::to_string(std::stoi(v) + 5)).ok());
  ASSERT_TRUE((*t2)->Get("cnt", &v).ok());
  ASSERT_TRUE((*t2)->Put("cnt", std::to_string(std::stoi(v) + 7)).ok());
  ASSERT_TRUE((*t1)->Commit().ok());
  ASSERT_TRUE((*t2)->Commit().ok());
  ASSERT_EQ(store_->dag()->Leaves().size(), 2u);

  auto merger = store_->CreateSession();
  auto m = store_->BeginMerge(merger.get());
  ASSERT_TRUE(m.ok());
  ASSERT_EQ((*m)->mode(), Transaction::Mode::kMerge);
  std::vector<StateId> parents = (*m)->parents();
  ASSERT_EQ(parents.size(), 2u);

  auto forks = (*m)->FindForkPoints(parents);
  ASSERT_TRUE(forks.ok()) << forks.status().ToString();
  ASSERT_EQ(forks->size(), 1u);

  std::string fork_val;
  ASSERT_TRUE((*m)->GetForId("cnt", (*forks)[0], &fork_val).ok());
  EXPECT_EQ(fork_val, "10");

  int result = std::stoi(fork_val);
  for (StateId p : parents) {
    std::string branch_val;
    ASSERT_TRUE((*m)->GetForId("cnt", p, &branch_val).ok());
    result += std::stoi(branch_val) - std::stoi(fork_val);
  }
  EXPECT_EQ(result, 22);  // 10 + 5 + 7
  ASSERT_TRUE((*m)->Put("cnt", std::to_string(result)).ok());
  ASSERT_TRUE((*m)->Commit().ok());

  // The DAG reconverged; everyone now reads the merged value.
  EXPECT_EQ(store_->dag()->Leaves().size(), 1u);
  EXPECT_EQ(MustGet(session_.get(), "cnt"), "22");
  EXPECT_EQ(MustGet(s2.get(), "cnt"), "22");
  EXPECT_EQ(store_->stats().merges_committed, 1u);
}

TEST_F(TxnTest, FindConflictWritesListsOnlyConflicts) {
  ASSERT_TRUE(PutCommit(session_.get(), "both", "0").ok());
  auto s2 = store_->CreateSession();
  auto t1 = store_->Begin(session_.get());
  auto t2 = store_->Begin(s2.get());
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("both", &v).ok());
  ASSERT_TRUE((*t2)->Get("both", &v).ok());
  ASSERT_TRUE((*t1)->Put("both", "L").ok());
  ASSERT_TRUE((*t1)->Put("only_left", "L").ok());
  ASSERT_TRUE((*t2)->Put("both", "R").ok());
  ASSERT_TRUE((*t2)->Put("only_right", "R").ok());
  ASSERT_TRUE((*t1)->Commit().ok());
  ASSERT_TRUE((*t2)->Commit().ok());

  auto merger = store_->CreateSession();
  auto m = store_->BeginMerge(merger.get());
  ASSERT_TRUE(m.ok());
  auto conflicts = (*m)->FindConflictWrites((*m)->parents());
  ASSERT_TRUE(conflicts.ok());
  ASSERT_EQ(conflicts->size(), 1u);
  EXPECT_EQ((*conflicts)[0], "both");
  (*m)->Abort();
}

TEST_F(TxnTest, MergeWithSingleLeafDegenerates) {
  ASSERT_TRUE(PutCommit(session_.get(), "k", "v").ok());
  auto merger = store_->CreateSession();
  auto m = store_->BeginMerge(merger.get());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->parents().size(), 1u);
  ASSERT_TRUE((*m)->Put("k", "merged").ok());
  EXPECT_TRUE((*m)->Commit().ok());
  EXPECT_EQ(MustGet(session_.get(), "k"), "merged");
}

TEST_F(TxnTest, MergeThreeBranches) {
  ASSERT_TRUE(PutCommit(session_.get(), "n", "0").ok());
  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<TxnPtr> txns;
  for (int i = 0; i < 3; i++) {
    sessions.push_back(store_->CreateSession());
    auto t = store_->Begin(sessions.back().get());
    ASSERT_TRUE(t.ok());
    std::string v;
    ASSERT_TRUE((*t)->Get("n", &v).ok());
    ASSERT_TRUE((*t)->Put("n", std::to_string(i + 1)).ok());
    txns.push_back(std::move(*t));
  }
  for (auto& t : txns) ASSERT_TRUE(t->Commit().ok());
  ASSERT_EQ(store_->dag()->Leaves().size(), 3u);

  auto merger = store_->CreateSession();
  auto m = store_->BeginMerge(merger.get());
  ASSERT_TRUE(m.ok());
  ASSERT_EQ((*m)->parents().size(), 3u);
  auto forks = (*m)->FindForkPoints((*m)->parents());
  ASSERT_TRUE(forks.ok());
  std::string fork_val;
  ASSERT_TRUE((*m)->GetForId("n", (*forks)[0], &fork_val).ok());
  int total = 0;
  for (StateId p : (*m)->parents()) {
    std::string bv;
    ASSERT_TRUE((*m)->GetForId("n", p, &bv).ok());
    total += std::stoi(bv) - std::stoi(fork_val);
  }
  ASSERT_TRUE((*m)->Put("n", std::to_string(total)).ok());
  ASSERT_TRUE((*m)->Commit().ok());
  EXPECT_EQ(MustGet(session_.get(), "n"), "6");  // 1+2+3
  EXPECT_EQ(store_->dag()->Leaves().size(), 1u);
}

TEST_F(TxnTest, MaxParentsCapsMergeWidth) {
  ASSERT_TRUE(PutCommit(session_.get(), "z", "0").ok());
  // Begin all three before committing any, so all three read the same
  // state and the commits fork three ways.
  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<TxnPtr> txns;
  for (int i = 0; i < 3; i++) {
    sessions.push_back(store_->CreateSession());
    auto t = store_->Begin(sessions.back().get());
    ASSERT_TRUE(t.ok());
    std::string v;
    ASSERT_TRUE((*t)->Get("z", &v).ok());
    ASSERT_TRUE((*t)->Put("z", std::to_string(i)).ok());
    txns.push_back(std::move(*t));
  }
  for (auto& t : txns) ASSERT_TRUE(t->Commit().ok());
  ASSERT_EQ(store_->dag()->Leaves().size(), 3u);
  auto merger = store_->CreateSession();
  auto m = store_->BeginMerge(merger.get(), nullptr, 2);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->parents().size(), 2u);
  (*m)->Abort();
}

// ---- concurrency smoke -------------------------------------------------------

TEST_F(TxnTest, ConcurrentWritersAllCommitViaBranching) {
  constexpr int kThreads = 4;
  constexpr int kTxns = 50;
  std::vector<std::thread> threads;
  std::atomic<int> commits{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t, &commits] {
      auto session = store_->CreateSession();
      for (int i = 0; i < kTxns; i++) {
        auto txn = store_->Begin(session.get());
        ASSERT_TRUE(txn.ok());
        std::string v;
        (*txn)->Get("shared", &v);
        ASSERT_TRUE(
            (*txn)->Put("shared", std::to_string(t * 1000 + i)).ok());
        Status s = (*txn)->Commit(SerializabilityEnd());
        ASSERT_TRUE(s.ok()) << s.ToString();  // branch, never abort
        commits.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(commits.load(), kThreads * kTxns);
  EXPECT_EQ(store_->stats().commits, static_cast<uint64_t>(kThreads * kTxns));
  EXPECT_EQ(store_->dag()->state_count(),
            static_cast<size_t>(kThreads * kTxns + 1));
}

}  // namespace
}  // namespace tardis
