// Semantic corner cases: empty merges, write skew under SI vs Ser,
// session guarantees across forks, and replication convergence under
// arbitrary delivery orders.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/tardis_store.h"
#include "util/random.h"

namespace tardis {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = TardisStore::Open(TardisOptions{});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    a_ = store_->CreateSession();
    b_ = store_->CreateSession();
  }

  void PutCommit(ClientSession* s, const std::string& k,
                 const std::string& v) {
    auto txn = store_->Begin(s);
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put(k, v).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }

  void Fork(const std::string& key) {
    auto ta = store_->Begin(a_.get());
    auto tb = store_->Begin(b_.get());
    ASSERT_TRUE(ta.ok() && tb.ok());
    std::string v;
    (*ta)->Get(key, &v);
    (*tb)->Get(key, &v);
    ASSERT_TRUE((*ta)->Put(key, "A").ok());
    ASSERT_TRUE((*tb)->Put(key, "B").ok());
    ASSERT_TRUE((*ta)->Commit().ok());
    ASSERT_TRUE((*tb)->Commit().ok());
  }

  std::unique_ptr<TardisStore> store_;
  std::unique_ptr<ClientSession> a_, b_;
};

TEST_F(SemanticsTest, EmptyMergeStillJoinsBranches) {
  PutCommit(a_.get(), "x", "0");
  Fork("x");
  ASSERT_EQ(store_->dag()->Leaves().size(), 2u);

  // A merge transaction that writes nothing must still produce the
  // joined state — that is its entire point.
  auto merger = store_->CreateSession();
  auto m = store_->BeginMerge(merger.get());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->Commit().ok());
  EXPECT_EQ(store_->dag()->Leaves().size(), 1u);
  ASSERT_NE(merger->last_commit(), nullptr);
  EXPECT_TRUE(merger->last_commit()->is_merge());

  // Both branch values remain readable from the merged state via the
  // topological order (most recent on the union branch wins).
  auto txn = store_->Begin(merger.get());
  ASSERT_TRUE(txn.ok());
  std::string v;
  ASSERT_TRUE((*txn)->Get("x", &v).ok());
  EXPECT_TRUE(v == "A" || v == "B");
  (*txn)->Abort();
}

TEST_F(SemanticsTest, EmptyNonMergeCommitStaysOutOfDag) {
  PutCommit(a_.get(), "x", "0");
  const size_t before = store_->dag()->state_count();
  auto txn = store_->Begin(a_.get());
  ASSERT_TRUE(txn.ok());
  std::string v;
  ASSERT_TRUE((*txn)->Get("x", &v).ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  EXPECT_EQ(store_->dag()->state_count(), before);
}

TEST_F(SemanticsTest, WriteSkewAllowedBySiRejectedBySer) {
  // Classic write skew: invariant x + y >= 1; T1 reads both, clears x;
  // T2 reads both, clears y. Under SI∧NoBranching both commit (skew!);
  // under Ser∧NoBranching the second must abort.
  for (const bool serializable : {false, true}) {
    auto store = TardisStore::Open(TardisOptions{});
    ASSERT_TRUE(store.ok());
    auto s1 = (*store)->CreateSession();
    auto s2 = (*store)->CreateSession();
    {
      auto seed = (*store)->Begin(s1.get());
      ASSERT_TRUE(seed.ok());
      ASSERT_TRUE((*seed)->Put("x", "1").ok());
      ASSERT_TRUE((*seed)->Put("y", "1").ok());
      ASSERT_TRUE((*seed)->Commit().ok());
    }
    auto end = serializable
                   ? AndEnd({SerializabilityEnd(), NoBranchingEnd()})
                   : AndEnd({SnapshotIsolationEnd(), NoBranchingEnd()});
    auto t1 = (*store)->Begin(s1.get());
    auto t2 = (*store)->Begin(s2.get());
    ASSERT_TRUE(t1.ok() && t2.ok());
    std::string v;
    ASSERT_TRUE((*t1)->Get("x", &v).ok());
    ASSERT_TRUE((*t1)->Get("y", &v).ok());
    ASSERT_TRUE((*t2)->Get("x", &v).ok());
    ASSERT_TRUE((*t2)->Get("y", &v).ok());
    ASSERT_TRUE((*t1)->Put("x", "0").ok());
    ASSERT_TRUE((*t2)->Put("y", "0").ok());
    ASSERT_TRUE((*t1)->Commit(end).ok());
    Status second = (*t2)->Commit(end);
    if (serializable) {
      EXPECT_TRUE(second.IsAborted()) << "Ser must reject write skew";
    } else {
      EXPECT_TRUE(second.ok()) << "SI tolerates write skew";
    }
  }
}

TEST_F(SemanticsTest, ReadMyWritesHeldAcrossForeignForks) {
  // Session A commits; then B forks elsewhere repeatedly; A must always
  // read its own writes under the Ancestor begin constraint.
  PutCommit(a_.get(), "mine", "v1");
  for (int round = 0; round < 5; round++) {
    PutCommit(b_.get(), "theirs", "r" + std::to_string(round));
    auto txn = store_->Begin(a_.get(), AncestorBegin());
    ASSERT_TRUE(txn.ok());
    std::string v;
    ASSERT_TRUE((*txn)->Get("mine", &v).ok());
    EXPECT_EQ(v, "v1");
    (*txn)->Abort();
  }
}

TEST_F(SemanticsTest, MergeOfMergesConverges) {
  // Fork into 3, merge two, fork again, merge all: the DAG must converge
  // and remain readable at every step.
  PutCommit(a_.get(), "k", "0");
  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<TxnPtr> txns;
  for (int i = 0; i < 3; i++) {
    sessions.push_back(store_->CreateSession());
    auto t = store_->Begin(sessions.back().get());
    ASSERT_TRUE(t.ok());
    std::string v;
    ASSERT_TRUE((*t)->Get("k", &v).ok());
    ASSERT_TRUE((*t)->Put("k", std::to_string(i)).ok());
    txns.push_back(std::move(*t));
  }
  for (auto& t : txns) ASSERT_TRUE(t->Commit().ok());
  ASSERT_EQ(store_->dag()->Leaves().size(), 3u);

  auto merger = store_->CreateSession();
  {
    auto m = store_->BeginMerge(merger.get(), nullptr, 2);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE((*m)->Put("k", "m1").ok());
    ASSERT_TRUE((*m)->Commit().ok());
  }
  EXPECT_EQ(store_->dag()->Leaves().size(), 2u);
  {
    auto m = store_->BeginMerge(merger.get());
    ASSERT_TRUE(m.ok());
    ASSERT_EQ((*m)->parents().size(), 2u);
    ASSERT_TRUE((*m)->Put("k", "m2").ok());
    ASSERT_TRUE((*m)->Commit().ok());
  }
  EXPECT_EQ(store_->dag()->Leaves().size(), 1u);
  auto txn = store_->Begin(merger.get());
  ASSERT_TRUE(txn.ok());
  std::string v;
  ASSERT_TRUE((*txn)->Get("k", &v).ok());
  EXPECT_EQ(v, "m2");
  (*txn)->Abort();
}

// ---- replication delivery-order independence ---------------------------------

class DeliveryOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(DeliveryOrderTest, AnyDeliveryPermutationConverges) {
  // Build a history at a source store, capture its commit records, apply
  // them to a fresh store in a random permutation (retrying Unavailable
  // like the replicator's pending cache), and compare the two DAGs.
  auto source = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(source.ok());
  std::vector<CommitRecord> records;
  (*source)->SetCommitCallback(
      [&](const CommitRecord& r) { records.push_back(r); });

  Random rng(GetParam());
  std::vector<std::unique_ptr<ClientSession>> sessions;
  for (int i = 0; i < 3; i++) sessions.push_back((*source)->CreateSession());
  for (int round = 0; round < 40; round++) {
    const int s = rng.Uniform(3);
    auto txn = (*source)->Begin(sessions[s].get());
    ASSERT_TRUE(txn.ok());
    const std::string key = "k" + std::to_string(rng.Uniform(5));
    std::string v;
    (*txn)->Get(key, &v);
    ASSERT_TRUE((*txn)->Put(key, "r" + std::to_string(round)).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  ASSERT_EQ(records.size(), 40u);

  auto replica = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(replica.ok());
  std::vector<CommitRecord> shuffled = records;
  for (size_t i = shuffled.size(); i > 1; i--) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  std::vector<CommitRecord> pending = std::move(shuffled);
  int safety = 0;
  while (!pending.empty()) {
    ASSERT_LT(safety++, 10'000);
    std::vector<CommitRecord> next;
    for (const CommitRecord& r : pending) {
      Status s = (*replica)->ApplyRemote(r);
      if (s.IsUnavailable()) next.push_back(r);
      else ASSERT_TRUE(s.ok()) << s.ToString();
    }
    ASSERT_LT(next.size(), pending.size()) << "no progress";
    pending = std::move(next);
  }

  // Same number of states, same leaves (by guid), same per-leaf values.
  EXPECT_EQ((*replica)->dag()->state_count(),
            (*source)->dag()->state_count());
  auto leaves_src = (*source)->dag()->Leaves();
  auto leaves_dst = (*replica)->dag()->Leaves();
  ASSERT_EQ(leaves_src.size(), leaves_dst.size());
  for (const StatePtr& leaf : leaves_src) {
    StatePtr twin = (*replica)->dag()->ResolveGuid(leaf->guid());
    ASSERT_NE(twin, nullptr) << leaf->guid().ToString();
    // Compare the view of every key from this leaf on both stores.
    auto s_src = (*source)->CreateSession();
    auto s_dst = (*replica)->CreateSession();
    auto t_src = (*source)->Begin(s_src.get(), StateIdBegin(leaf->id()));
    auto t_dst = (*replica)->Begin(s_dst.get(), StateIdBegin(twin->id()));
    ASSERT_TRUE(t_src.ok() && t_dst.ok());
    for (int k = 0; k < 5; k++) {
      const std::string key = "k" + std::to_string(k);
      std::string v1, v2;
      Status g1 = (*t_src)->Get(key, &v1);
      Status g2 = (*t_dst)->Get(key, &v2);
      EXPECT_EQ(g1.ok(), g2.ok()) << key;
      if (g1.ok() && g2.ok()) {
        EXPECT_EQ(v1, v2) << key;
      }
    }
    (*t_src)->Abort();
    (*t_dst)->Abort();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryOrderTest,
                         ::testing::Values(3, 5, 8, 13));

}  // namespace
}  // namespace tardis
