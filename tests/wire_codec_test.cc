// Wire codec tests: property-based encode→decode round-trips over random
// messages, stream reassembly semantics, and a malformed-input battery —
// truncation, CRC corruption, hostile length prefixes, random fuzz. The
// decoder must return Status for every bad input; it must never throw,
// crash, or over-read.

#include <gtest/gtest.h>

#include <string>

#include "net/wire.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/random.h"

namespace tardis {
namespace {

std::string RandomBytes(Random* rng, size_t max_len) {
  std::string s(rng->Uniform(max_len + 1), '\0');
  for (char& c : s) c = static_cast<char>(rng->Uniform(256));
  return s;
}

GlobalStateId RandomGuid(Random* rng) {
  GlobalStateId g;
  g.site = static_cast<uint32_t>(rng->Next());
  g.seq = rng->Next();
  return g;
}

CommitRecord RandomCommit(Random* rng) {
  CommitRecord commit;
  commit.guid = RandomGuid(rng);
  const size_t nparents = rng->Uniform(4);
  for (size_t i = 0; i < nparents; i++) {
    commit.parent_guids.push_back(RandomGuid(rng));
  }
  commit.is_merge = rng->Bernoulli(0.3);
  const size_t nwrites = rng->Uniform(8);
  for (size_t i = 0; i < nwrites; i++) {
    commit.writes.emplace_back(
        RandomBytes(rng, 32),
        std::make_shared<const std::string>(RandomBytes(rng, 256)));
  }
  return commit;
}

/// Half the traced frame types get a live trace context (trace_id 0, the
/// untraced case, is the other half of the coverage).
void RandomTrace(Random* rng, ReplMessage* msg) {
  if (rng->Bernoulli(0.5)) return;
  msg->trace_id = rng->Next() | 1;  // non-zero
  msg->trace_span = rng->Next();
  msg->trace_sampled = rng->Bernoulli(0.5);
}

ReplMessage RandomMessage(Random* rng) {
  ReplMessage msg;
  msg.type = static_cast<ReplMessage::Type>(rng->Uniform(16));
  msg.from_site = static_cast<uint32_t>(rng->Next());
  switch (msg.type) {
    case ReplMessage::Type::kCommit:
      msg.commit = RandomCommit(rng);
      break;
    case ReplMessage::Type::kSyncRequest:
    case ReplMessage::Type::kHeartbeat: {
      const size_t n = rng->Uniform(6);
      for (size_t i = 0; i < n; i++) msg.seen_seq.push_back(rng->Next());
      break;
    }
    case ReplMessage::Type::kSnapshot: {
      const size_t n = rng->Uniform(6);
      for (size_t i = 0; i < n; i++) msg.seen_seq.push_back(rng->Next());
      const size_t nrecords = rng->Uniform(5);
      for (size_t i = 0; i < nrecords; i++) {
        msg.snapshot.push_back(RandomCommit(rng));
      }
      break;
    }
    case ReplMessage::Type::kCeilingRequest:
    case ReplMessage::Type::kCeilingAck:
    case ReplMessage::Type::kCeilingCommit:
      msg.ceiling = RandomGuid(rng);
      msg.ceiling_epoch = rng->Next();
      break;
    case ReplMessage::Type::kHello:
    case ReplMessage::Type::kHelloAck:
      break;  // identity-only handshake frames: empty body
    case ReplMessage::Type::kRoute:
      msg.txn_id = rng->Next();
      msg.text = RandomBytes(rng, 64);
      msg.commit.writes = RandomCommit(rng).writes;
      RandomTrace(rng, &msg);
      break;
    case ReplMessage::Type::kRouteReply:
      msg.txn_id = rng->Next();
      msg.text = RandomBytes(rng, 128);
      break;
    case ReplMessage::Type::kPrepare: {
      msg.txn_id = rng->Next();
      msg.commit.writes = RandomCommit(rng).writes;
      const size_t neps = rng->Uniform(4);
      for (size_t i = 0; i < neps; i++) {
        msg.endpoints.push_back("127.0.0.1:" +
                                std::to_string(rng->Uniform(65536)));
      }
      RandomTrace(rng, &msg);
      break;
    }
    case ReplMessage::Type::kPrepareAck:
      msg.txn_id = rng->Next();
      msg.decision = static_cast<uint8_t>(rng->Uniform(3));
      break;
    case ReplMessage::Type::kDecide:
      msg.txn_id = rng->Next();
      msg.decision = static_cast<uint8_t>(rng->Uniform(3));
      RandomTrace(rng, &msg);
      break;
    case ReplMessage::Type::kDecideAck:
      msg.txn_id = rng->Next();
      msg.decision = static_cast<uint8_t>(rng->Uniform(3));
      msg.forked = rng->Bernoulli(0.5);
      break;
    case ReplMessage::Type::kTxnStatus:
      msg.txn_id = rng->Next();
      break;
  }
  return msg;
}

void ExpectCommitsEqual(const CommitRecord& a, const CommitRecord& b) {
  EXPECT_EQ(a.guid, b.guid);
  EXPECT_EQ(a.parent_guids, b.parent_guids);
  EXPECT_EQ(a.is_merge, b.is_merge);
  ASSERT_EQ(a.writes.size(), b.writes.size());
  for (size_t i = 0; i < a.writes.size(); i++) {
    EXPECT_EQ(a.writes[i].first, b.writes[i].first);
    ASSERT_NE(a.writes[i].second, nullptr);
    ASSERT_NE(b.writes[i].second, nullptr);
    EXPECT_EQ(*a.writes[i].second, *b.writes[i].second);
  }
}

void ExpectMessagesEqual(const ReplMessage& a, const ReplMessage& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.from_site, b.from_site);
  ExpectCommitsEqual(a.commit, b.commit);
  EXPECT_EQ(a.seen_seq, b.seen_seq);
  ASSERT_EQ(a.snapshot.size(), b.snapshot.size());
  for (size_t i = 0; i < a.snapshot.size(); i++) {
    ExpectCommitsEqual(a.snapshot[i], b.snapshot[i]);
  }
  EXPECT_EQ(a.ceiling, b.ceiling);
  EXPECT_EQ(a.ceiling_epoch, b.ceiling_epoch);
  EXPECT_EQ(a.txn_id, b.txn_id);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.forked, b.forked);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.endpoints, b.endpoints);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.trace_span, b.trace_span);
  EXPECT_EQ(a.trace_sampled, b.trace_sampled);
}

TEST(WireCodecTest, RoundTripProperty) {
  Random rng(20160626);  // SIGMOD'16
  for (int iter = 0; iter < 500; iter++) {
    const ReplMessage msg = RandomMessage(&rng);
    std::string frame;
    EncodeFrame(msg, &frame);
    ReplMessage decoded;
    size_t consumed = 0;
    Status s = DecodeFrame(Slice(frame), &decoded, &consumed);
    ASSERT_TRUE(s.ok()) << iter << ": " << s.ToString();
    ASSERT_EQ(consumed, frame.size());
    ExpectMessagesEqual(msg, decoded);
  }
}

// The cluster coordination frames (ROUTE/PREPARE/DECIDE + acks and the
// recovery status query) round-trip with every field intact — these carry
// 2PC state that is also persisted verbatim in the participant's 2PC log,
// so a lossy codec would corrupt crash recovery, not just the wire.
TEST(WireCodecTest, CoordinationFrameRoundTripProperty) {
  Random rng(0x2BC);
  const ReplMessage::Type kCoordTypes[] = {
      ReplMessage::Type::kRoute,      ReplMessage::Type::kRouteReply,
      ReplMessage::Type::kPrepare,    ReplMessage::Type::kPrepareAck,
      ReplMessage::Type::kDecide,     ReplMessage::Type::kDecideAck,
      ReplMessage::Type::kTxnStatus,
  };
  for (int iter = 0; iter < 700; iter++) {
    ReplMessage msg;
    // Draw random messages until one lands on the coordination type under
    // test, so every field combination the generator produces is covered.
    do {
      msg = RandomMessage(&rng);
    } while (msg.type != kCoordTypes[iter % 7]);
    std::string frame;
    EncodeFrame(msg, &frame);
    ReplMessage decoded;
    size_t consumed = 0;
    Status s = DecodeFrame(Slice(frame), &decoded, &consumed);
    ASSERT_TRUE(s.ok()) << iter << ": " << s.ToString();
    ASSERT_EQ(consumed, frame.size());
    ExpectMessagesEqual(msg, decoded);
  }
}

TEST(WireCodecTest, PayloadRoundTripWithoutFrame) {
  Random rng(99);
  for (int iter = 0; iter < 200; iter++) {
    const ReplMessage msg = RandomMessage(&rng);
    std::string payload;
    EncodeReplMessage(msg, &payload);
    ReplMessage decoded;
    ASSERT_TRUE(DecodeReplMessage(Slice(payload), &decoded).ok());
    ExpectMessagesEqual(msg, decoded);
  }
}

TEST(WireCodecTest, StreamReassemblyByteAtATime) {
  Random rng(42);
  const ReplMessage msg = RandomMessage(&rng);
  std::string frame;
  EncodeFrame(msg, &frame);
  // Every strict prefix must report "need more bytes", not an error.
  for (size_t n = 0; n < frame.size(); n++) {
    ReplMessage decoded;
    size_t consumed = 0;
    Status s = DecodeFrame(Slice(frame.data(), n), &decoded, &consumed);
    ASSERT_TRUE(s.ok()) << "prefix " << n << ": " << s.ToString();
    ASSERT_EQ(consumed, 0u) << "prefix " << n;
  }
}

TEST(WireCodecTest, TwoFramesBackToBack) {
  Random rng(7);
  const ReplMessage m1 = RandomMessage(&rng);
  const ReplMessage m2 = RandomMessage(&rng);
  std::string buf;
  EncodeFrame(m1, &buf);
  const size_t first_len = buf.size();
  EncodeFrame(m2, &buf);

  ReplMessage decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(Slice(buf), &decoded, &consumed).ok());
  EXPECT_EQ(consumed, first_len);
  ExpectMessagesEqual(m1, decoded);
  ASSERT_TRUE(DecodeFrame(Slice(buf.data() + consumed, buf.size() - consumed),
                          &decoded, &consumed)
                  .ok());
  ExpectMessagesEqual(m2, decoded);
}

std::string ValidFrame() {
  ReplMessage msg;
  msg.type = ReplMessage::Type::kCommit;
  msg.from_site = 2;
  msg.commit.guid = {2, 9};
  msg.commit.parent_guids = {{1, 8}};
  msg.commit.writes.emplace_back(
      "key", std::make_shared<const std::string>("value"));
  std::string frame;
  EncodeFrame(msg, &frame);
  return frame;
}

TEST(WireCodecTest, CorruptedCrcIsRejected) {
  std::string frame = ValidFrame();
  frame[4] ^= 0x01;  // flip a CRC bit
  ReplMessage decoded;
  size_t consumed = 0;
  Status s = DecodeFrame(Slice(frame), &decoded, &consumed);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(consumed, 0u);
}

TEST(WireCodecTest, CorruptedPayloadByteIsRejected) {
  std::string frame = ValidFrame();
  frame[kWireHeaderBytes + 5] ^= 0xFF;  // payload damage, CRC unchanged
  ReplMessage decoded;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(Slice(frame), &decoded, &consumed).IsCorruption());
}

TEST(WireCodecTest, OversizedLengthPrefixIsRejected) {
  std::string frame = ValidFrame();
  EncodeFixed32(frame.data(), kMaxWirePayload + 1);
  ReplMessage decoded;
  size_t consumed = 0;
  Status s = DecodeFrame(Slice(frame), &decoded, &consumed);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(WireCodecTest, TruncatedPayloadWithFixedCrcIsRejected) {
  // Shrink the declared length so the payload decodes short; refresh the
  // CRC so the payload decoder (not the checksum) must catch it.
  std::string frame = ValidFrame();
  const uint32_t len = DecodeFixed32(frame.data());
  const uint32_t short_len = len - 3;
  EncodeFixed32(frame.data(), short_len);
  EncodeFixed32(frame.data() + 4,
                MaskCrc(Crc32c(frame.data() + kWireHeaderBytes, short_len)));
  ReplMessage decoded;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(Slice(frame), &decoded, &consumed).IsCorruption());
}

TEST(WireCodecTest, TrailingPayloadBytesAreRejected) {
  std::string frame = ValidFrame();
  frame.push_back('\x7f');
  const uint32_t len = DecodeFixed32(frame.data()) + 1;
  EncodeFixed32(frame.data(), len);
  EncodeFixed32(frame.data() + 4,
                MaskCrc(Crc32c(frame.data() + kWireHeaderBytes, len)));
  ReplMessage decoded;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(Slice(frame), &decoded, &consumed).IsCorruption());
}

TEST(WireCodecTest, BadVersionAndTypeAreRejected) {
  for (size_t victim : {size_t{0}, size_t{1}}) {
    std::string frame = ValidFrame();
    frame[kWireHeaderBytes + victim] = '\x63';
    const uint32_t len = DecodeFixed32(frame.data());
    EncodeFixed32(frame.data() + 4,
                  MaskCrc(Crc32c(frame.data() + kWireHeaderBytes, len)));
    ReplMessage decoded;
    size_t consumed = 0;
    Status s = DecodeFrame(Slice(frame), &decoded, &consumed);
    EXPECT_TRUE(s.IsCorruption()) << "byte " << victim << ": " << s.ToString();
  }
}

TEST(WireCodecTest, EmptyPayloadFrameIsRejected) {
  std::string frame;
  PutFixed32(&frame, 0);
  PutFixed32(&frame, MaskCrc(Crc32c("", 0)));
  ReplMessage decoded;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(Slice(frame), &decoded, &consumed).IsCorruption());
}

TEST(WireCodecTest, FuzzedBuffersNeverCrash) {
  Random rng(0xFADE);
  // Pure garbage.
  for (int iter = 0; iter < 2000; iter++) {
    const std::string junk = RandomBytes(&rng, 96);
    ReplMessage decoded;
    size_t consumed = 0;
    Status s = DecodeFrame(Slice(junk), &decoded, &consumed);
    if (s.ok() && consumed == 0) continue;  // wants more bytes: fine
    // Anything else must be a clean Corruption verdict (a random CRC
    // match is a ~2^-32 event per iteration; treat one as a failure).
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
  // Mutated-but-checksummed frames: the CRC is recomputed after each
  // mutation so the structural decoder itself gets fuzzed.
  for (int iter = 0; iter < 2000; iter++) {
    std::string frame = ValidFrame();
    const size_t mutations = 1 + rng.Uniform(8);
    for (size_t m = 0; m < mutations; m++) {
      frame[kWireHeaderBytes + rng.Uniform(frame.size() - kWireHeaderBytes)] =
          static_cast<char>(rng.Uniform(256));
    }
    const uint32_t len = DecodeFixed32(frame.data());
    EncodeFixed32(frame.data() + 4,
                  MaskCrc(Crc32c(frame.data() + kWireHeaderBytes, len)));
    ReplMessage decoded;
    size_t consumed = 0;
    Status s = DecodeFrame(Slice(frame), &decoded, &consumed);
    EXPECT_TRUE(s.ok() || s.IsCorruption()) << s.ToString();
  }
}

}  // namespace
}  // namespace tardis
