// Durability tests: commit log replay, branch/merge reconstruction,
// partial-persistence discard (§6.5), checkpointing.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/tardis_store.h"
#include "util/coding.h"

namespace tardis {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "tardis_recovery_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<TardisStore> OpenStore(bool use_btree = true) {
    TardisOptions options;
    options.dir = dir_;
    options.use_btree = use_btree;
    options.flush_mode = Wal::FlushMode::kSync;
    auto store = TardisStore::Open(options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(*store);
  }

  static void PutCommit(TardisStore* store, ClientSession* s,
                        const std::string& k, const std::string& v) {
    auto txn = store->Begin(s);
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put(k, v).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }

  static std::string MustGet(TardisStore* store, ClientSession* s,
                             const std::string& k) {
    auto txn = store->Begin(s);
    EXPECT_TRUE(txn.ok());
    std::string v;
    Status st = (*txn)->Get(k, &v);
    EXPECT_TRUE(st.ok()) << k << ": " << st.ToString();
    (*txn)->Abort();
    return v;
  }

  std::string dir_;
};

TEST_F(RecoveryTest, LinearHistoryRecovers) {
  {
    auto store = OpenStore();
    auto session = store->CreateSession();
    for (int i = 0; i < 20; i++) {
      PutCommit(store.get(), session.get(), "k" + std::to_string(i),
                "v" + std::to_string(i));
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore();
  EXPECT_EQ(store->dag()->state_count(), 21u);
  auto session = store->CreateSession();
  for (int i = 0; i < 20; i++) {
    EXPECT_EQ(MustGet(store.get(), session.get(), "k" + std::to_string(i)),
              "v" + std::to_string(i));
  }
}

TEST_F(RecoveryTest, BranchesRecoverWithIsolation) {
  StateId left_tip = 0, right_tip = 0;
  {
    auto store = OpenStore();
    auto sa = store->CreateSession();
    auto sb = store->CreateSession();
    PutCommit(store.get(), sa.get(), "base", "0");
    auto t1 = store->Begin(sa.get());
    auto t2 = store->Begin(sb.get());
    ASSERT_TRUE(t1.ok() && t2.ok());
    std::string v;
    ASSERT_TRUE((*t1)->Get("base", &v).ok());
    ASSERT_TRUE((*t2)->Get("base", &v).ok());
    ASSERT_TRUE((*t1)->Put("base", "L").ok());
    ASSERT_TRUE((*t2)->Put("base", "R").ok());
    ASSERT_TRUE((*t1)->Commit().ok());
    ASSERT_TRUE((*t2)->Commit().ok());
    left_tip = sa->last_commit()->id();
    right_tip = sb->last_commit()->id();
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore();
  EXPECT_EQ(store->dag()->Leaves().size(), 2u);
  auto session = store->CreateSession();
  auto txn = store->Begin(session.get());
  ASSERT_TRUE(txn.ok());
  std::string v;
  ASSERT_TRUE((*txn)->GetForId("base", left_tip, &v).ok());
  EXPECT_EQ(v, "L");
  ASSERT_TRUE((*txn)->GetForId("base", right_tip, &v).ok());
  EXPECT_EQ(v, "R");
  (*txn)->Abort();
}

TEST_F(RecoveryTest, MergeStateRecovers) {
  {
    auto store = OpenStore();
    auto sa = store->CreateSession();
    auto sb = store->CreateSession();
    PutCommit(store.get(), sa.get(), "n", "0");
    auto t1 = store->Begin(sa.get());
    auto t2 = store->Begin(sb.get());
    ASSERT_TRUE(t1.ok() && t2.ok());
    std::string v;
    ASSERT_TRUE((*t1)->Get("n", &v).ok());
    ASSERT_TRUE((*t2)->Get("n", &v).ok());
    ASSERT_TRUE((*t1)->Put("n", "1").ok());
    ASSERT_TRUE((*t2)->Put("n", "2").ok());
    ASSERT_TRUE((*t1)->Commit().ok());
    ASSERT_TRUE((*t2)->Commit().ok());
    auto m = store->BeginMerge(sa.get());
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE((*m)->Put("n", "3").ok());
    ASSERT_TRUE((*m)->Commit().ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore();
  EXPECT_EQ(store->dag()->Leaves().size(), 1u);
  auto session = store->CreateSession();
  EXPECT_EQ(MustGet(store.get(), session.get(), "n"), "3");
}

TEST_F(RecoveryTest, TornLogTailIsDiscarded) {
  {
    auto store = OpenStore();
    auto session = store->CreateSession();
    for (int i = 0; i < 5; i++) {
      PutCommit(store.get(), session.get(), "k" + std::to_string(i), "v");
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  // Truncate the commit log mid-record.
  const std::string log_path = dir_ + "/commit.log";
  const auto size = std::filesystem::file_size(log_path);
  std::filesystem::resize_file(log_path, size - 4);

  auto store = OpenStore();
  // At least the first four commits survive; the fifth (torn) is gone.
  EXPECT_EQ(store->dag()->state_count(), 5u);
  auto session = store->CreateSession();
  EXPECT_EQ(MustGet(store.get(), session.get(), "k3"), "v");
}

TEST_F(RecoveryTest, PartiallyPersistedTxnDiscarded) {
  {
    auto store = OpenStore();
    auto session = store->CreateSession();
    PutCommit(store.get(), session.get(), "good", "1");
    PutCommit(store.get(), session.get(), "half", "2");
    ASSERT_TRUE(store->Flush().ok());
  }
  // Simulate a write-set record that never reached stable storage by
  // deleting it from the record store out-of-band.
  {
    TardisOptions options;
    options.dir = dir_;
    options.recover_on_open = false;
    options.enable_commit_log = false;
    auto store = TardisStore::Open(options);
    ASSERT_TRUE(store.ok());
    // Find and delete the persisted record for key "half".
    bool deleted = false;
    for (StateId sid = 1; sid <= 4 && !deleted; sid++) {
      std::string probe;
      std::string rk;
      {
        std::string out;
        PutLengthPrefixed(&out, Slice("half"));
        PutFixed64(&out, sid);
        rk = out;
      }
      if ((*store)->record_store()->Get(rk, &probe).ok()) {
        ASSERT_TRUE((*store)->record_store()->Delete(rk).ok());
        ASSERT_TRUE((*store)->record_store()->Sync().ok());
        deleted = true;
      }
    }
    ASSERT_TRUE(deleted);
  }
  auto store = OpenStore();
  // The second transaction (and everything after) is discarded; the
  // first survives.
  EXPECT_EQ(store->dag()->state_count(), 2u);
  auto session = store->CreateSession();
  EXPECT_EQ(MustGet(store.get(), session.get(), "good"), "1");
  auto txn = store->Begin(session.get());
  ASSERT_TRUE(txn.ok());
  std::string v;
  EXPECT_TRUE((*txn)->Get("half", &v).IsNotFound());
  (*txn)->Abort();
}

TEST_F(RecoveryTest, CheckpointTruncatesLogAndRecovers) {
  {
    auto store = OpenStore();
    auto session = store->CreateSession();
    for (int i = 0; i < 10; i++) {
      PutCommit(store.get(), session.get(), "a" + std::to_string(i), "x");
    }
    ASSERT_TRUE(store->Checkpoint().ok());
    // More commits after the checkpoint land in the fresh log.
    for (int i = 0; i < 5; i++) {
      PutCommit(store.get(), session.get(), "b" + std::to_string(i), "y");
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  auto store = OpenStore();
  EXPECT_EQ(store->dag()->state_count(), 16u);
  auto session = store->CreateSession();
  EXPECT_EQ(MustGet(store.get(), session.get(), "a5"), "x");
  EXPECT_EQ(MustGet(store.get(), session.get(), "b4"), "y");
}

TEST_F(RecoveryTest, CheckpointAfterGcKeepsCompressedDag) {
  {
    auto store = OpenStore();
    auto session = store->CreateSession();
    for (int i = 0; i < 30; i++) {
      PutCommit(store.get(), session.get(), "k", std::to_string(i));
    }
    store->PlaceCeiling(session.get());
    store->RunGarbageCollection();
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  auto store = OpenStore();
  EXPECT_LE(store->dag()->state_count(), 3u);
  auto session = store->CreateSession();
  EXPECT_EQ(MustGet(store.get(), session.get(), "k"), "29");
}

TEST_F(RecoveryTest, MemBackendRecoversViaLogOnly) {
  // use_btree=false persists nothing for records in-memory... the commit
  // log alone cannot restore values, so this configuration persists
  // records in the in-memory store only for the process lifetime. What
  // must still work: the DAG structure replays and missing records make
  // recovery discard the suffix cleanly.
  {
    auto store = OpenStore(/*use_btree=*/false);
    auto session = store->CreateSession();
    PutCommit(store.get(), session.get(), "k", "v");
  }
  auto store = OpenStore(/*use_btree=*/false);
  // Records were never durable: the persistence check discards the txn.
  EXPECT_EQ(store->dag()->state_count(), 1u);
}

}  // namespace
}  // namespace tardis
