// Unit tests for src/util: Status, Slice, coding, CRC-32C, histogram,
// PRNG and Zipfian generators.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/backoff.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/zipf.h"

namespace tardis {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndPredicates) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Conflict().IsConflict());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, MessagePropagates) {
  Status s = Status::IOError("disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
  EXPECT_EQ(s.message(), "disk on fire");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::Busy("nope"); };
  auto wrapper = [&]() -> Status {
    TARDIS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsBusy());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_TRUE(Slice().empty());
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix orders first
  EXPECT_TRUE(Slice("a") < Slice("b"));
}

TEST(SliceTest, EqualityAndPrefix) {
  EXPECT_EQ(Slice("xyz"), Slice(std::string("xyz")));
  EXPECT_NE(Slice("xyz"), Slice("xy"));
  EXPECT_TRUE(Slice("xyz").starts_with("xy"));
  EXPECT_FALSE(Slice("xyz").starts_with("yz"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0xDEADBEEFu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x0123456789ABCDEFull);
}

TEST(CodingTest, VarintRoundTripSweep) {
  // Boundary values around every 7-bit threshold.
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (1ull << 32) - 1, 1ull << 32,
                                  ~0ull, ~0ull - 1};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&in, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  Slice in(buf.data(), buf.size() - 1);
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(&in, &decoded));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("payload"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice(std::string(1000, 'x')));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "payload");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedFails) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("payload"));
  Slice in(buf.data(), buf.size() - 2);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (iSCSI test vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32Test, SensitiveToCorruption) {
  std::string data = "the quick brown fox";
  const uint32_t crc = Crc32c(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(Crc32c(data.data(), data.size()), crc);
}

TEST(Crc32Test, MaskRoundTrip) {
  const uint32_t crc = Crc32c("abc", 3);
  EXPECT_NE(MaskCrc(crc), crc);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(99), b(99);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(1);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(r.Uniform(10), 10u);
    const uint64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(2);
  for (int i = 0; i < 1000; i++) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random r(3);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(ZipfTest, StaysInRange) {
  ZipfianGenerator z(1000, 0.99, 5);
  for (int i = 0; i < 10000; i++) EXPECT_LT(z.Next(), 1000u);
}

TEST(ZipfTest, SkewsTowardHotItems) {
  ZipfianGenerator z(1000, 0.99, 5);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; i++) counts[z.Next()]++;
  // Item 0 should dominate: with theta=0.99 over 1000 items it draws
  // roughly 13% of the mass.
  EXPECT_GT(counts[0], n / 20);
  // And the top-10 items together well over a third.
  int top10 = 0;
  for (uint64_t i = 0; i < 10; i++) top10 += counts[i];
  EXPECT_GT(top10, n / 3);
}

TEST(ZipfTest, ScrambledSpreadsHotKeys) {
  ScrambledZipfianGenerator z(1000, 0.99, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; i++) counts[z.Next()]++;
  // The hottest item should no longer be item 0 specifically, but some
  // hash-scattered position; distribution mass is preserved.
  auto hottest = std::max_element(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_GT(hottest->second, 50000 / 20);
}

TEST(HistogramTest, EmptySafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.99), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; v++) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(0.5), 50, 10);
  EXPECT_NEAR(h.Percentile(0.99), 99, 10);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 50; i++) a.Add(10);
  for (int i = 0; i < 50; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_NEAR(a.mean(), 505.0, 0.01);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Add(8'500'000'000ull);  // beyond the last finite bucket boundary
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 8'500'000'000ull);
}

TEST(BackoffTest, DeterministicDoublingWithoutJitter) {
  Backoff b(20, 2000);
  uint64_t now = 1000;
  const uint64_t expect[] = {20, 40, 80, 160, 320, 640, 1280, 2000, 2000};
  for (uint64_t e : expect) {
    b.Fail(now);
    EXPECT_EQ(b.delay_ms(), e);
    EXPECT_FALSE(b.Due(now));
    EXPECT_EQ(b.RemainingMs(now), e);
    EXPECT_TRUE(b.Due(now + e));
    now += e;
  }
  b.Reset();
  b.Fail(now);
  EXPECT_EQ(b.delay_ms(), 20u);
}

TEST(BackoffTest, JitterStaysWithinBounds) {
  // Decorrelated jitter: every delay in [initial, max], and the window
  // for step n+1 is [initial, min(max, 3 * delay_n)].
  Backoff b(20, 2000);
  b.EnableJitter(/*seed=*/42);
  uint64_t now = 0;
  uint64_t prev = 0;
  for (int i = 0; i < 200; i++) {
    b.Fail(now);
    const uint64_t d = b.delay_ms();
    EXPECT_GE(d, 20u);
    EXPECT_LE(d, 2000u);
    if (i == 0) {
      EXPECT_EQ(d, 20u);  // first failure always starts at initial
    } else {
      EXPECT_LE(d, std::min<uint64_t>(2000, prev * 3));
    }
    EXPECT_EQ(b.RemainingMs(now), d);
    prev = d;
    now += d;
  }
}

TEST(BackoffTest, JitterIsSeededAndDeterministic) {
  Backoff a(10, 5000), b(10, 5000), c(10, 5000);
  a.EnableJitter(7);
  b.EnableJitter(7);
  c.EnableJitter(8);
  std::vector<uint64_t> da, db, dc;
  for (int i = 0; i < 50; i++) {
    a.Fail(0);
    b.Fail(0);
    c.Fail(0);
    da.push_back(a.delay_ms());
    db.push_back(b.delay_ms());
    dc.push_back(c.delay_ms());
  }
  EXPECT_EQ(da, db);  // same seed, same schedule
  EXPECT_NE(da, dc);  // different seed decorrelates the schedule
}

TEST(BackoffTest, JitterDegenerateRanges) {
  // initial == max pins every delay; a tiny max still bounds the draw.
  Backoff pinned(100, 100);
  pinned.EnableJitter(3);
  for (int i = 0; i < 10; i++) {
    pinned.Fail(0);
    EXPECT_EQ(pinned.delay_ms(), 100u);
  }
  Backoff zero(0, 5);
  zero.EnableJitter(3);
  for (int i = 0; i < 10; i++) {
    zero.Fail(0);
    EXPECT_LE(zero.delay_ms(), 5u);
  }
}

}  // namespace
}  // namespace tardis
