// Tests for the consistency layer's data structures: fork points, fork
// paths, the descendant check of Figure 7, retroactive fork annotation,
// merge-state paths, and the promotion machinery used by DAG compression.
//
// Several tests rebuild the exact DAG of the paper's Figure 5 and check
// the stated visibility outcomes.

#include <gtest/gtest.h>

#include <vector>

#include "core/state_dag.h"
#include "core/types.h"

namespace tardis {
namespace {

// Convenience: append a state with one parent and the given write keys.
StatePtr Commit(StateDag* dag, const StatePtr& parent,
                std::vector<std::string> writes = {}) {
  KeySet ws;
  for (auto& k : writes) ws.Add(k);
  std::lock_guard<std::mutex> guard(dag->Lock());
  return dag->CreateStateLocked({parent}, dag->NextLocalGuid(), KeySet(),
                                std::move(ws), false);
}

StatePtr Merge(StateDag* dag, const std::vector<StatePtr>& parents,
               std::vector<std::string> writes = {}) {
  KeySet ws;
  for (auto& k : writes) ws.Add(k);
  std::lock_guard<std::mutex> guard(dag->Lock());
  return dag->CreateStateLocked(parents, dag->NextLocalGuid(), KeySet(),
                                std::move(ws), true);
}

TEST(ForkPathTest, AddKeepsSortedUnique) {
  ForkPath p;
  p.Add({3, 1});
  p.Add({1, 2});
  p.Add({3, 1});  // duplicate
  p.Add({1, 1});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.points()[0], (ForkPoint{1, 1}));
  EXPECT_EQ(p.points()[1], (ForkPoint{1, 2}));
  EXPECT_EQ(p.points()[2], (ForkPoint{3, 1}));
}

TEST(ForkPathTest, SubsetSemantics) {
  ForkPath a, b;
  a.Add({1, 1});
  b.Add({1, 1});
  b.Add({3, 2});
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(a.SubsetOf(a));
  EXPECT_TRUE(ForkPath().SubsetOf(a));  // empty path is ancestor of all
}

TEST(ForkPathTest, UnionMerges) {
  ForkPath a, b;
  a.Add({1, 2});
  a.Add({4, 1});
  b.Add({1, 2});
  b.Add({4, 2});
  a.Union(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(b.SubsetOf(a));
}

TEST(KeySetTest, IntersectsAndUnion) {
  KeySet a, b;
  a.Add("x");
  a.Add("y");
  b.Add("z");
  EXPECT_FALSE(a.Intersects(b));
  b.Add("y");
  EXPECT_TRUE(a.Intersects(b));
  a.Union(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.Contains("z"));
}

TEST(StateDagTest, RootExists) {
  StateDag dag;
  ASSERT_NE(dag.root(), nullptr);
  EXPECT_EQ(dag.root()->id(), 0u);
  EXPECT_TRUE(dag.root()->fork_path()->empty());
  EXPECT_EQ(dag.state_count(), 1u);
  auto leaves = dag.Leaves();
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0]->id(), 0u);
}

TEST(StateDagTest, LinearChainHasEmptyForkPaths) {
  StateDag dag;
  StatePtr s = dag.root();
  for (int i = 0; i < 5; i++) s = Commit(&dag, s);
  EXPECT_TRUE(s->fork_path()->empty());
  EXPECT_EQ(dag.Leaves().size(), 1u);
  EXPECT_TRUE(StateDag::DescendantCheck(*dag.root(), *s));
  EXPECT_FALSE(StateDag::DescendantCheck(*s, *dag.root()));
}

TEST(StateDagTest, ForkCreatesEntriesRetroactively) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr s2 = Commit(&dag, s1);  // first child of s1: path empty so far
  EXPECT_TRUE(s2->fork_path()->empty());

  StatePtr s3 = Commit(&dag, s1);  // second child: s1 becomes a fork point
  // The new child carries (s1, 2); the existing child's subtree was
  // retroactively annotated with (s1, 1).
  ForkPath expect2, expect3;
  expect2.Add({s1->id(), 1});
  expect3.Add({s1->id(), 2});
  EXPECT_EQ(*s2->fork_path(), expect2);
  EXPECT_EQ(*s3->fork_path(), expect3);

  // Sibling branches must not see each other.
  EXPECT_FALSE(StateDag::DescendantCheck(*s2, *s3));
  EXPECT_FALSE(StateDag::DescendantCheck(*s3, *s2));
  // Both still see their common ancestor.
  EXPECT_TRUE(StateDag::DescendantCheck(*s1, *s2));
  EXPECT_TRUE(StateDag::DescendantCheck(*s1, *s3));
}

TEST(StateDagTest, RetroactiveAnnotationCoversSubtree) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr s2 = Commit(&dag, s1);
  StatePtr s2a = Commit(&dag, s2);
  StatePtr s2b = Commit(&dag, s2a);  // a little chain below the 1st child
  StatePtr s3 = Commit(&dag, s1);   // now fork s1

  ForkPoint first{s1->id(), 1};
  for (const StatePtr& s : {s2, s2a, s2b}) {
    EXPECT_TRUE(std::find(s->fork_path()->points().begin(),
                          s->fork_path()->points().end(),
                          first) != s->fork_path()->points().end());
  }
  // A state created on the annotated branch *after* the fork inherits it.
  StatePtr s2c = Commit(&dag, s2b);
  EXPECT_FALSE(StateDag::DescendantCheck(*s2c, *s3));
  EXPECT_FALSE(StateDag::DescendantCheck(*s3, *s2c));
  EXPECT_TRUE(StateDag::DescendantCheck(*s2, *s2c));
}

TEST(StateDagTest, ThirdChildGetsSlotThree) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr a = Commit(&dag, s1);
  StatePtr b = Commit(&dag, s1);
  StatePtr c = Commit(&dag, s1);
  ForkPath pc;
  pc.Add({s1->id(), 3});
  EXPECT_EQ(*c->fork_path(), pc);
  EXPECT_FALSE(StateDag::DescendantCheck(*a, *c));
  EXPECT_FALSE(StateDag::DescendantCheck(*b, *c));
}

TEST(StateDagTest, MergeStateSeesBothBranches) {
  // Figure 5's s9 merges s5 and s6 (children of s4): its path is the
  // union {(1,2),(4,1),(4,2)} and both branches are visible from it.
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr s2 = Commit(&dag, s1);          // branch (1,1)
  StatePtr s4 = Commit(&dag, s1);          // branch (1,2)
  StatePtr s5 = Commit(&dag, s4);          // (1,2)(4,1) after fork below
  StatePtr s6 = Commit(&dag, s4);          // (1,2)(4,2)
  StatePtr s9 = Merge(&dag, {s5, s6});

  ForkPath expect9;
  expect9.Add({s1->id(), 2});
  expect9.Add({s4->id(), 1});
  expect9.Add({s4->id(), 2});
  EXPECT_EQ(*s9->fork_path(), expect9);
  EXPECT_TRUE(s9->is_merge());

  EXPECT_TRUE(StateDag::DescendantCheck(*s5, *s9));
  EXPECT_TRUE(StateDag::DescendantCheck(*s6, *s9));
  EXPECT_TRUE(StateDag::DescendantCheck(*s4, *s9));
  EXPECT_TRUE(StateDag::DescendantCheck(*s1, *s9));
  // The other top-level branch stays invisible.
  EXPECT_FALSE(StateDag::DescendantCheck(*s2, *s9));
  // The merge is not visible from its parents.
  EXPECT_FALSE(StateDag::DescendantCheck(*s9, *s5));
}

TEST(StateDagTest, LeavesTrackTips) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr a = Commit(&dag, s1);
  StatePtr b = Commit(&dag, s1);
  auto leaves = dag.Leaves();
  ASSERT_EQ(leaves.size(), 2u);
  // Most recent first.
  EXPECT_EQ(leaves[0]->id(), b->id());
  EXPECT_EQ(leaves[1]->id(), a->id());

  StatePtr m = Merge(&dag, {a, b});
  leaves = dag.Leaves();
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0]->id(), m->id());
}

TEST(StateDagTest, BfsFromLeavesVisitsMostRecentFirst) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr a = Commit(&dag, s1);
  StatePtr b = Commit(&dag, s1);
  std::vector<StateId> order;
  dag.BfsFromLeaves([&](const StatePtr& s) {
    order.push_back(s->id());
    return false;  // visit everything
  });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], b->id());
  EXPECT_EQ(order[1], a->id());
  EXPECT_EQ(order[2], s1->id());
  EXPECT_EQ(order[3], 0u);
}

TEST(StateDagTest, FindForkPointOfSiblings) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr a = Commit(&dag, s1);
  StatePtr a2 = Commit(&dag, a);
  StatePtr b = Commit(&dag, s1);
  StatePtr fork = dag.FindForkPoint({a2, b});
  ASSERT_NE(fork, nullptr);
  EXPECT_EQ(fork->id(), s1->id());
}

TEST(StateDagTest, FindForkPointSameBranchReturnsAncestor) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr s2 = Commit(&dag, s1);
  StatePtr fork = dag.FindForkPoint({s1, s2});
  ASSERT_NE(fork, nullptr);
  EXPECT_EQ(fork->id(), s1->id());
}

TEST(StateDagTest, FindForkPointThreeBranches) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr a = Commit(&dag, s1);
  StatePtr b = Commit(&dag, s1);
  StatePtr c = Commit(&dag, s1);
  StatePtr fork = dag.FindForkPoint({a, b, c});
  ASSERT_NE(fork, nullptr);
  EXPECT_EQ(fork->id(), s1->id());
}

TEST(StateDagTest, FindConflictWritesDetectsOverlap) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root(), {"base"});
  StatePtr a = Commit(&dag, s1, {"x", "shared"});
  StatePtr a2 = Commit(&dag, a, {"y"});
  StatePtr b = Commit(&dag, s1, {"shared", "z"});
  KeySet conflicts = dag.FindConflictWrites(s1, {a2, b});
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_TRUE(conflicts.Contains("shared"));
  // Writes at or above the fork don't count.
  EXPECT_FALSE(conflicts.Contains("base"));
}

TEST(StateDagTest, FindConflictWritesEmptyWhenDisjoint) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr a = Commit(&dag, s1, {"x"});
  StatePtr b = Commit(&dag, s1, {"y"});
  KeySet conflicts = dag.FindConflictWrites(s1, {a, b});
  EXPECT_TRUE(conflicts.empty());
}

TEST(StateDagTest, DeleteStatePromotesIdentity) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root(), {"k"});
  StatePtr s2 = Commit(&dag, s1, {"m"});
  StatePtr s3 = Commit(&dag, s2);

  {
    std::lock_guard<std::mutex> guard(dag.Lock());
    dag.DeleteStateLocked(s2, s3);
  }
  EXPECT_TRUE(s2->deleted.load());
  EXPECT_EQ(dag.state_count(), 3u);  // root, s1, s3
  // Resolve follows the promotion table.
  StatePtr r = dag.Resolve(s2->id());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id(), s3->id());
  // Write-set inheritance is the garbage collector's (batched) job, not
  // DeleteStateLocked's; the victim's own set is untouched.
  EXPECT_TRUE(s2->write_set().Contains("m"));
  EXPECT_FALSE(s3->write_set().Contains("m"));
  // The DAG stays connected: s1 -> s3.
  ASSERT_EQ(s1->children().size(), 1u);
  EXPECT_EQ(s1->children()[0]->id(), s3->id());
  ASSERT_EQ(s3->parents().size(), 1u);
  EXPECT_EQ(s3->parents()[0]->id(), s1->id());
}

TEST(StateDagTest, PromotionChainsResolve) {
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr s2 = Commit(&dag, s1);
  StatePtr s3 = Commit(&dag, s2);
  StatePtr s4 = Commit(&dag, s3);
  {
    std::lock_guard<std::mutex> guard(dag.Lock());
    dag.DeleteStateLocked(s2, s3);
    dag.DeleteStateLocked(s3, s4);
  }
  StatePtr r = dag.Resolve(s2->id());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id(), s4->id());
  EXPECT_EQ(dag.promotion_table_size(), 2u);
}

TEST(StateDagTest, GuidResolution) {
  StateDag dag(7);
  GlobalStateId guid = dag.NextLocalGuid();
  EXPECT_EQ(guid.site, 7u);
  EXPECT_EQ(guid.seq, 1u);
  StatePtr s;
  {
    std::lock_guard<std::mutex> guard(dag.Lock());
    s = dag.CreateStateLocked({dag.root()}, guid, KeySet(), KeySet(), false);
  }
  StatePtr r = dag.ResolveGuid(guid);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->id(), s->id());
  EXPECT_EQ(dag.ResolveGuid({7, 999}), nullptr);
}

TEST(StateDagTest, RecoveryIdsAdvanceCounter) {
  StateDag dag;
  StatePtr s;
  {
    std::lock_guard<std::mutex> guard(dag.Lock());
    s = dag.CreateStateWithIdLocked(41, {dag.root()}, {0, 41}, KeySet(),
                                    KeySet(), false);
  }
  EXPECT_EQ(s->id(), 41u);
  // The next ordinary commit must get a larger id.
  StatePtr next = Commit(&dag, s);
  EXPECT_GT(next->id(), 41u);
}

TEST(StateDagDescendantCheckTest, Figure5Visibility) {
  // Rebuild the structure implied by Figure 5's fork-path table and check
  // each listed path plus the visibility claims in §6.1.3.
  StateDag dag;
  StatePtr s1 = Commit(&dag, dag.root());
  StatePtr s2 = Commit(&dag, s1);   // (1,1)
  StatePtr s4 = Commit(&dag, s1);   // (1,2)
  StatePtr s3 = Commit(&dag, s2);   // (1,1) — single child, no new entry
  StatePtr s5 = Commit(&dag, s4);   // (1,2)(4,1) once s6 exists
  StatePtr s6 = Commit(&dag, s4);   // (1,2)(4,2)
  StatePtr s8 = Commit(&dag, s3);   // (1,1)(3,1) once s7 exists
  StatePtr s7 = Commit(&dag, s3);   // (1,1)(3,2)
  StatePtr s9 = Merge(&dag, {s5, s6});  // (1,2)(4,1)(4,2)

  auto has = [](const StatePtr& s, StateId i, uint32_t b) {
    const auto& pts = s->fork_path()->points();
    return std::find(pts.begin(), pts.end(), ForkPoint{i, b}) != pts.end();
  };
  EXPECT_TRUE(has(s2, s1->id(), 1));
  EXPECT_TRUE(has(s4, s1->id(), 2));
  EXPECT_TRUE(has(s3, s1->id(), 1));
  EXPECT_EQ(s3->fork_path()->size(), 1u);
  EXPECT_TRUE(has(s5, s4->id(), 1));
  EXPECT_TRUE(has(s6, s4->id(), 2));
  EXPECT_TRUE(has(s8, s3->id(), 1));
  EXPECT_TRUE(has(s7, s3->id(), 2));
  EXPECT_EQ(s9->fork_path()->size(), 3u);

  // "one can quickly determine that s7 is on the same branch as s3, as
  // the fork path of s3 is a subset of that of s7":
  EXPECT_TRUE(StateDag::DescendantCheck(*s3, *s7));
  // "Similarly, s9 is on the same branch as both s5 and s6":
  EXPECT_TRUE(StateDag::DescendantCheck(*s5, *s9));
  EXPECT_TRUE(StateDag::DescendantCheck(*s6, *s9));
  // Cross-branch visibility is rejected.
  EXPECT_FALSE(StateDag::DescendantCheck(*s7, *s9));
  EXPECT_FALSE(StateDag::DescendantCheck(*s9, *s7));
  EXPECT_FALSE(StateDag::DescendantCheck(*s5, *s6));
  EXPECT_FALSE(StateDag::DescendantCheck(*s8, *s7));
}

}  // namespace
}  // namespace tardis
