// Tests for both CRDT families: the TARDiS branch-and-merge datatypes and
// the flat vector-clock datatypes on sequential storage. Includes
// cross-checks that both families converge to the same abstract value.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/crdt/flat_crdts.h"
#include "apps/crdt/tardis_crdts.h"
#include "baseline/twopl_store.h"
#include "core/tardis_store.h"

namespace tardis {
namespace crdt {
namespace {

class TardisCrdtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = TardisStore::Open(TardisOptions{});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    a_ = store_->CreateSession();
    b_ = store_->CreateSession();
    merger_ = store_->CreateSession();
  }

  std::unique_ptr<TardisStore> store_;
  std::unique_ptr<ClientSession> a_, b_, merger_;
};

TEST_F(TardisCrdtTest, CounterSequential) {
  TardisCounter c(store_.get(), "cnt");
  ASSERT_TRUE(c.Increment(a_.get()).ok());
  ASSERT_TRUE(c.Increment(a_.get(), 4).ok());
  ASSERT_TRUE(c.Decrement(a_.get(), 2).ok());
  auto v = c.Value(a_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3);
}

TEST_F(TardisCrdtTest, CounterConcurrentBranchesMerge) {
  TardisCounter c(store_.get(), "cnt");
  ASSERT_TRUE(c.Increment(a_.get(), 10).ok());  // shared prefix

  // Concurrent increments from two sessions reading the same state fork
  // the DAG; each branch sees only its own delta.
  {
    auto ta = store_->Begin(a_.get());
    auto tb = store_->Begin(b_.get());
    ASSERT_TRUE(ta.ok() && tb.ok());
    std::string raw;
    ASSERT_TRUE((*ta)->Get("cnt", &raw).ok());
    ASSERT_TRUE((*ta)->Put("cnt", std::to_string(std::stoll(raw) + 5)).ok());
    ASSERT_TRUE((*tb)->Get("cnt", &raw).ok());
    ASSERT_TRUE((*tb)->Put("cnt", std::to_string(std::stoll(raw) + 7)).ok());
    ASSERT_TRUE((*ta)->Commit().ok());
    ASSERT_TRUE((*tb)->Commit().ok());
  }
  ASSERT_EQ(store_->dag()->Leaves().size(), 2u);
  ASSERT_TRUE(c.Merge(merger_.get()).ok());
  EXPECT_EQ(store_->dag()->Leaves().size(), 1u);
  auto v = c.Value(merger_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 22);  // 10 + 5 + 7
}

TEST_F(TardisCrdtTest, CounterMergeNoBranchesIsNoop) {
  TardisCounter c(store_.get(), "cnt");
  ASSERT_TRUE(c.Increment(a_.get()).ok());
  ASSERT_TRUE(c.Merge(merger_.get()).ok());
  auto v = c.Value(a_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1);
}

TEST_F(TardisCrdtTest, LwwRegisterLastTimestampWins) {
  TardisLwwRegister r(store_.get(), "reg");
  ASSERT_TRUE(r.Set(a_.get(), "first").ok());
  ASSERT_TRUE(r.Set(a_.get(), "second").ok());
  auto v = r.Get(a_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "second");
}

TEST_F(TardisCrdtTest, LwwRegisterMergePicksNewest) {
  TardisLwwRegister r(store_.get(), "reg");
  ASSERT_TRUE(r.Set(a_.get(), "base").ok());
  // Fork: A writes then B writes (B's timestamp is later).
  {
    auto ta = store_->Begin(a_.get());
    auto tb = store_->Begin(b_.get());
    ASSERT_TRUE(ta.ok() && tb.ok());
    std::string raw;
    (*ta)->Get("reg", &raw);
    (*tb)->Get("reg", &raw);
    ASSERT_TRUE((*ta)->Put("reg", "1000|valA").ok());
    ASSERT_TRUE((*tb)->Put("reg", "2000|valB").ok());
    ASSERT_TRUE((*ta)->Commit().ok());
    ASSERT_TRUE((*tb)->Commit().ok());
  }
  ASSERT_TRUE(r.Merge(merger_.get()).ok());
  auto v = r.Get(merger_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "valB");
}

TEST_F(TardisCrdtTest, MvRegisterKeepsConcurrentValues) {
  TardisMvRegister r(store_.get(), "mv");
  ASSERT_TRUE(r.Set(a_.get(), "base").ok());
  {
    auto ta = store_->Begin(a_.get());
    auto tb = store_->Begin(b_.get());
    ASSERT_TRUE(ta.ok() && tb.ok());
    std::string raw;
    (*ta)->Get("mv", &raw);
    (*tb)->Get("mv", &raw);
    ASSERT_TRUE((*ta)->Put("mv", "left").ok());
    ASSERT_TRUE((*tb)->Put("mv", "right").ok());
    ASSERT_TRUE((*ta)->Commit().ok());
    ASSERT_TRUE((*tb)->Commit().ok());
  }
  ASSERT_TRUE(r.Merge(merger_.get()).ok());
  auto v = r.Get(merger_.get());
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 2u);
  EXPECT_NE(std::find(v->begin(), v->end(), "left"), v->end());
  EXPECT_NE(std::find(v->begin(), v->end(), "right"), v->end());
  // A subsequent Set collapses the multi-value.
  ASSERT_TRUE(r.Set(merger_.get(), "resolved").ok());
  v = r.Get(merger_.get());
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ((*v)[0], "resolved");
}

TEST_F(TardisCrdtTest, OrSetAddRemoveContains) {
  TardisOrSet s(store_.get(), "set");
  ASSERT_TRUE(s.Add(a_.get(), "x").ok());
  ASSERT_TRUE(s.Add(a_.get(), "y").ok());
  auto has = s.Contains(a_.get(), "x");
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
  ASSERT_TRUE(s.Remove(a_.get(), "x").ok());
  has = s.Contains(a_.get(), "x");
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  auto elems = s.Elements(a_.get());
  ASSERT_TRUE(elems.ok());
  EXPECT_EQ(*elems, std::vector<std::string>{"y"});
}

TEST_F(TardisCrdtTest, OrSetAddWinsOverConcurrentRemove) {
  TardisOrSet s(store_.get(), "set");
  ASSERT_TRUE(s.Add(a_.get(), "item").ok());
  const std::string ekey = s.ElementKey("item");
  // Fork: A removes "item"; B re-adds it (a concurrent add with a fresh
  // tag). OR-set semantics: the re-add wins.
  {
    auto ta = store_->Begin(a_.get());
    auto tb = store_->Begin(b_.get());
    ASSERT_TRUE(ta.ok() && tb.ok());
    std::string raw;
    ASSERT_TRUE((*ta)->Get(ekey, &raw).ok());
    ASSERT_TRUE((*ta)->Put(ekey, "").ok());  // remove all observed tags
    ASSERT_TRUE((*tb)->Get(ekey, &raw).ok());
    auto tags = TardisOrSet::DeserializeTags(raw);
    tags.insert(999999);  // fresh tag unseen at the fork
    ASSERT_TRUE((*tb)->Put(ekey, TardisOrSet::SerializeTags(tags)).ok());
    ASSERT_TRUE((*ta)->Commit().ok());
    ASSERT_TRUE((*tb)->Commit().ok());
  }
  ASSERT_TRUE(s.Merge(merger_.get()).ok());
  auto has = s.Contains(merger_.get(), "item");
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);  // add-wins
  // But the original (observed) tag is gone: only the fresh tag remains.
  auto txn = store_->Begin(merger_.get());
  ASSERT_TRUE(txn.ok());
  std::string raw;
  ASSERT_TRUE((*txn)->Get(ekey, &raw).ok());
  (*txn)->Abort();
  auto tags = TardisOrSet::DeserializeTags(raw);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_TRUE(tags.count(999999));
}

TEST_F(TardisCrdtTest, OrSetConcurrentRemovesBothApply) {
  TardisOrSet s(store_.get(), "set");
  ASSERT_TRUE(s.Add(a_.get(), "p").ok());
  ASSERT_TRUE(s.Add(a_.get(), "q").ok());
  {
    // Fork: A removes p, B removes q — both removals must survive the
    // merge (each branch keeps the other element's tags intact).
    auto ta = store_->Begin(a_.get());
    auto tb = store_->Begin(b_.get());
    ASSERT_TRUE(ta.ok() && tb.ok());
    std::string raw;
    ASSERT_TRUE((*ta)->Get(s.ElementKey("p"), &raw).ok());
    ASSERT_TRUE((*ta)->Put(s.ElementKey("p"), "").ok());
    ASSERT_TRUE((*tb)->Get(s.ElementKey("q"), &raw).ok());
    ASSERT_TRUE((*tb)->Put(s.ElementKey("q"), "").ok());
    ASSERT_TRUE((*ta)->Commit().ok());
    ASSERT_TRUE((*tb)->Commit().ok());
  }
  ASSERT_TRUE(s.Merge(merger_.get()).ok());
  auto ep = s.Contains(merger_.get(), "p");
  auto eq = s.Contains(merger_.get(), "q");
  ASSERT_TRUE(ep.ok() && eq.ok());
  EXPECT_FALSE(*ep);
  EXPECT_FALSE(*eq);
  auto elems = s.Elements(merger_.get());
  ASSERT_TRUE(elems.ok());
  EXPECT_TRUE(elems->empty());
}

TEST_F(TardisCrdtTest, OrSetTagSerializationRoundTrip) {
  TardisOrSet::TagSet tags = {1, 42, 99999999};
  auto round =
      TardisOrSet::DeserializeTags(TardisOrSet::SerializeTags(tags));
  EXPECT_EQ(round, tags);
  EXPECT_TRUE(TardisOrSet::DeserializeTags("").empty());
  EXPECT_EQ(TardisOrSet::SerializeTags({}), "");
}

// ---- flat CRDTs ------------------------------------------------------------

class FlatCrdtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto store = TwoPLStore::Open(TwoPLOptions{});
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    client_ = store_->NewClient();
  }
  std::unique_ptr<TwoPLStore> store_;
  std::unique_ptr<TxKvClient> client_;
};

TEST_F(FlatCrdtTest, PnCounterLocalOps) {
  FlatPnCounter c(store_.get(), "cnt", 0, 3);
  ASSERT_TRUE(c.Increment(client_.get(), 5).ok());
  ASSERT_TRUE(c.Decrement(client_.get(), 2).ok());
  auto v = c.Value(client_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 3);
}

TEST_F(FlatCrdtTest, PnCounterMergeRemoteTakesMax) {
  FlatPnCounter c(store_.get(), "cnt", 0, 3);
  ASSERT_TRUE(c.Increment(client_.get(), 5).ok());
  // Remote replica 1 reports inc=[0,7,0], dec=[0,1,0].
  ASSERT_TRUE(c.MergeRemote(client_.get(), {0, 7, 0}, {0, 1, 0}).ok());
  auto v = c.Value(client_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 11);  // 5 + 7 - 1
  // Re-merging the same state is idempotent.
  ASSERT_TRUE(c.MergeRemote(client_.get(), {0, 7, 0}, {0, 1, 0}).ok());
  v = c.Value(client_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 11);
}

TEST_F(FlatCrdtTest, OpCounterAccumulatesPerReplica) {
  FlatOpCounter c(store_.get(), "opc", 0, 2);
  ASSERT_TRUE(c.Apply(client_.get(), 3).ok());
  ASSERT_TRUE(c.ApplyRemote(client_.get(), 1, 4).ok());
  auto v = c.Value(client_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
}

TEST_F(FlatCrdtTest, LwwRegisterMergeRemote) {
  FlatLwwRegister r(store_.get(), "reg", 0);
  ASSERT_TRUE(r.Set(client_.get(), "local").ok());
  // A remote write with a far-future timestamp wins.
  ASSERT_TRUE(
      r.MergeRemote(client_.get(), ~0ull - 5, 1, "remote").ok());
  auto v = r.Get(client_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "remote");
  // A stale remote write does not.
  ASSERT_TRUE(r.MergeRemote(client_.get(), 1, 1, "ancient").ok());
  v = r.Get(client_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "remote");
}

TEST_F(FlatCrdtTest, MvRegisterReturnsNonDominated) {
  FlatMvRegister r0(store_.get(), "mv", 0, 2);
  FlatMvRegister r1(store_.get(), "mv", 1, 2);
  ASSERT_TRUE(r0.Set(client_.get(), "v0").ok());
  auto v = r0.Get(client_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, std::vector<std::string>{"v0"});

  // Replica 1 writes having seen replica 0's write: dominates it.
  ASSERT_TRUE(r1.Set(client_.get(), "v1").ok());
  v = r0.Get(client_.get());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, std::vector<std::string>{"v1"});
}

TEST_F(FlatCrdtTest, OrSetBasics) {
  FlatOrSet s(store_.get(), "set", 0);
  ASSERT_TRUE(s.Add(client_.get(), "x").ok());
  auto has = s.Contains(client_.get(), "x");
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
  ASSERT_TRUE(s.Remove(client_.get(), "x").ok());
  has = s.Contains(client_.get(), "x");
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
  // Re-add after remove works (fresh tag).
  ASSERT_TRUE(s.Add(client_.get(), "x").ok());
  has = s.Contains(client_.get(), "x");
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
}

}  // namespace
}  // namespace crdt
}  // namespace tardis
