// Stress and parameterized sweeps for the storage substrate: B+Tree
// payload-size sweeps, random op fuzzing against a model (with reopens),
// WAL truncation sweeps, buffer-pool pressure, and a disk-backed TARDiS
// store running with a tiny cache.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <tuple>

#include "core/tardis_store.h"
#include "storage/btree_record_store.h"
#include "storage/wal.h"
#include "util/random.h"

namespace tardis {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "tardis_ss_" + tag + "_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---- B+Tree payload sweep -----------------------------------------------------

class BTreePayloadSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BTreePayloadSweep, InsertLookupDelete) {
  const int key_len = std::get<0>(GetParam());
  const int value_len = std::get<1>(GetParam());
  const std::string dir = FreshDir("payload");
  auto store = BTreeRecordStore::Open(dir + "/t.db", 128);
  ASSERT_TRUE(store.ok());

  const int n = 600;
  auto key_of = [&](int i) {
    std::string k = "k" + std::to_string(i);
    k.resize(static_cast<size_t>(key_len), 'p');
    return k;
  };
  const std::string value(value_len, 'v');
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE((*store)->Put(key_of(i), value).ok()) << i;
  }
  EXPECT_EQ((*store)->size(), static_cast<uint64_t>(n));
  for (int i = 0; i < n; i += 7) {
    std::string got;
    ASSERT_TRUE((*store)->Get(key_of(i), &got).ok()) << i;
    EXPECT_EQ(got.size(), value.size());
  }
  for (int i = 0; i < n; i += 2) {
    ASSERT_TRUE((*store)->Delete(key_of(i)).ok()) << i;
  }
  EXPECT_EQ((*store)->size(), static_cast<uint64_t>(n / 2));
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreePayloadSweep,
    ::testing::Combine(::testing::Values(8, 64, 200),
                       ::testing::Values(0, 16, 256, 700)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "v" +
             std::to_string(std::get<1>(info.param));
    });

// ---- B+Tree fuzz vs model with reopens ------------------------------------------

class BTreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BTreeFuzz, RandomOpsMatchModel) {
  const std::string dir = FreshDir("fuzz" + std::to_string(GetParam()));
  Random rng(GetParam());
  std::map<std::string, std::string> model;

  for (int epoch = 0; epoch < 3; epoch++) {
    auto store = BTreeRecordStore::Open(dir + "/t.db", 64);
    ASSERT_TRUE(store.ok());
    // After reopen, the tree must already match the model.
    EXPECT_EQ((*store)->size(), model.size());
    for (int op = 0; op < 1500; op++) {
      const std::string key = "key" + std::to_string(rng.Uniform(300));
      const int dice = static_cast<int>(rng.Uniform(10));
      if (dice < 5) {  // put
        const std::string value =
            std::string(1 + rng.Uniform(100), 'a' + rng.Uniform(26) % 26);
        ASSERT_TRUE((*store)->Put(key, value).ok());
        model[key] = value;
      } else if (dice < 7) {  // delete
        Status s = (*store)->Delete(key);
        EXPECT_EQ(s.ok(), model.erase(key) > 0) << key;
      } else {  // get
        std::string got;
        Status s = (*store)->Get(key, &got);
        auto it = model.find(key);
        if (it != model.end()) {
          ASSERT_TRUE(s.ok()) << key;
          EXPECT_EQ(got, it->second);
        } else {
          EXPECT_TRUE(s.IsNotFound()) << key;
        }
      }
    }
    ASSERT_TRUE((*store)->Sync().ok());
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz, ::testing::Values(21, 42, 63));

// ---- WAL truncation sweep ---------------------------------------------------------

TEST(WalTruncationSweep, EveryCutPointRecoversPrefix) {
  const std::string dir = FreshDir("walcut");
  const std::string path = dir + "/cut.wal";
  std::vector<std::string> payloads;
  for (int i = 0; i < 6; i++) {
    payloads.push_back("record-" + std::to_string(i) +
                       std::string(10 + i * 7, 'x'));
  }
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    for (const std::string& p : payloads) ASSERT_TRUE((*wal)->Append(p).ok());
  }
  const auto full_size = std::filesystem::file_size(path);

  // For every possible truncation point, replay must return a clean
  // prefix of the appended records — never garbage, never a crash.
  for (uintmax_t cut = 0; cut <= full_size; cut += 5) {
    std::filesystem::copy_file(
        path, path + ".cut",
        std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(path + ".cut", cut);
    auto wal = Wal::Open(path + ".cut");
    ASSERT_TRUE(wal.ok());
    size_t i = 0;
    ASSERT_TRUE((*wal)
                    ->ReadAll([&](const Slice& s) {
                      EXPECT_LT(i, payloads.size());
                      EXPECT_EQ(s.ToString(), payloads[i]);
                      i++;
                      return Status::OK();
                    })
                    .ok())
        << "cut=" << cut;
  }
  std::filesystem::remove_all(dir);
}

// ---- buffer pool pressure -----------------------------------------------------------

TEST(BufferPoolPressure, TinyCacheStillCorrect) {
  const std::string dir = FreshDir("pressure");
  // 8 frames for a tree that will span hundreds of pages.
  auto store = BTreeRecordStore::Open(dir + "/t.db", 8);
  ASSERT_TRUE(store.ok());
  const std::string value(500, 'z');
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i), value).ok()) << i;
  }
  Random rng(5);
  for (int probe = 0; probe < 500; probe++) {
    std::string got;
    const int i = static_cast<int>(rng.Uniform(2000));
    ASSERT_TRUE((*store)->Get("key" + std::to_string(i), &got).ok()) << i;
    EXPECT_EQ(got, value);
  }
  std::filesystem::remove_all(dir);
}

// ---- disk-backed TARDiS with a tiny cache ---------------------------------------------

TEST(TardisDiskBacked, SmallCacheEndToEnd) {
  const std::string dir = FreshDir("tardisdisk");
  TardisOptions options;
  options.dir = dir;
  options.use_btree = true;
  options.cache_pages = 16;
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto session = (*store)->CreateSession();
  for (int i = 0; i < 300; i++) {
    auto txn = (*store)->Begin(session.get());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)
                    ->Put("key" + std::to_string(i % 40),
                          "value" + std::to_string(i))
                    .ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  (*store)->PlaceCeiling(session.get());
  (*store)->RunGarbageCollection();
  auto txn = (*store)->Begin(session.get());
  ASSERT_TRUE(txn.ok());
  std::string v;
  ASSERT_TRUE((*txn)->Get("key39", &v).ok());
  EXPECT_EQ(v, "value279");  // last i with i % 40 == 39
  ASSERT_TRUE((*txn)->Get("key19", &v).ok());
  EXPECT_EQ(v, "value299");
  (*txn)->Abort();
  ASSERT_TRUE((*store)->Flush().ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tardis
