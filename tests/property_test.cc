// Property-based tests: randomized workloads checked against independent
// models.
//
//  * sequential equivalence: one session on TARDiS behaves exactly like a
//    std::map, under every isolation configuration;
//  * branch isolation: concurrent forking sessions each see exactly their
//    own branch's writes (a per-session model map);
//  * fork-path soundness: DescendantCheck agrees with explicit graph
//    reachability on randomly grown DAGs with merges;
//  * counter convergence: random increments across branches + merges add
//    up exactly;
//  * GC transparency: visible state is unchanged by compression/pruning;
//  * recovery equivalence: committed state survives close/reopen.

#include <gtest/gtest.h>

#include <deque>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/tardis_store.h"
#include "util/random.h"

namespace tardis {
namespace {

// ---- sequential equivalence -------------------------------------------------

class SequentialEquivalence
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(SequentialEquivalence, MatchesMapModel) {
  const uint64_t seed = std::get<0>(GetParam());
  const std::string which_end = std::get<1>(GetParam());
  EndConstraintPtr end =
      which_end == "ser" ? SerializabilityEnd()
      : which_end == "si"
          ? SnapshotIsolationEnd()
          : AndEnd({SerializabilityEnd(), NoBranchingEnd()});

  auto store = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(store.ok());
  auto session = (*store)->CreateSession();
  std::map<std::string, std::string> model;
  Random rng(seed);

  for (int round = 0; round < 120; round++) {
    auto txn = (*store)->Begin(session.get());
    ASSERT_TRUE(txn.ok());
    std::map<std::string, std::string> txn_writes;
    const int ops = 1 + rng.Uniform(6);
    bool aborted = false;
    for (int i = 0; i < ops; i++) {
      const std::string key = "k" + std::to_string(rng.Uniform(12));
      if (rng.Bernoulli(0.5)) {
        const std::string value = "v" + std::to_string(rng.Next() % 1000);
        ASSERT_TRUE((*txn)->Put(key, value).ok());
        txn_writes[key] = value;
      } else {
        std::string got;
        Status s = (*txn)->Get(key, &got);
        auto w = txn_writes.find(key);
        auto m = model.find(key);
        if (w != txn_writes.end()) {
          ASSERT_TRUE(s.ok());
          EXPECT_EQ(got, w->second);
        } else if (m != model.end()) {
          ASSERT_TRUE(s.ok()) << key;
          EXPECT_EQ(got, m->second);
        } else {
          EXPECT_TRUE(s.IsNotFound()) << key;
        }
      }
    }
    if (rng.Bernoulli(0.15)) {
      (*txn)->Abort();
      aborted = true;
    } else {
      // Single session: constraints never make a solo client abort.
      ASSERT_TRUE((*txn)->Commit(end).ok());
    }
    if (!aborted) {
      for (auto& [k, v] : txn_writes) model[k] = v;
    }
  }
  // Final check of every key.
  auto txn = (*store)->Begin(session.get());
  ASSERT_TRUE(txn.ok());
  for (int k = 0; k < 12; k++) {
    const std::string key = "k" + std::to_string(k);
    std::string got;
    Status s = (*txn)->Get(key, &got);
    auto m = model.find(key);
    if (m != model.end()) {
      ASSERT_TRUE(s.ok()) << key;
      EXPECT_EQ(got, m->second);
    } else {
      EXPECT_TRUE(s.IsNotFound());
    }
  }
  (*txn)->Abort();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SequentialEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values("ser", "si", "ser-nb")),
    [](const auto& info) {
      return std::string(std::get<1>(info.param)) == "ser-nb"
                 ? "SerNB_" + std::to_string(std::get<0>(info.param))
                 : std::string(std::get<1>(info.param)) + "_" +
                       std::to_string(std::get<0>(info.param));
    });

// ---- branch isolation ----------------------------------------------------------

class BranchIsolation : public ::testing::TestWithParam<int> {};

TEST_P(BranchIsolation, EachSessionSeesExactlyItsBranch) {
  auto store = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(store.ok());
  Random rng(GetParam());

  constexpr int kSessions = 4;
  std::vector<std::unique_ptr<ClientSession>> sessions;
  // Per-session model: the values its branch should see.
  std::vector<std::map<std::string, std::string>> models(kSessions);
  // Seed a common prefix.
  {
    auto boot = (*store)->CreateSession();
    auto txn = (*store)->Begin(boot.get());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put("shared", "base").ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  for (int s = 0; s < kSessions; s++) {
    sessions.push_back((*store)->CreateSession());
    models[s]["shared"] = "base";
  }

  // Force a 4-way fork: all sessions read the same tip, all write the
  // same key, all commit.
  {
    std::vector<TxnPtr> txns;
    for (int s = 0; s < kSessions; s++) {
      auto txn = (*store)->Begin(sessions[s].get());
      ASSERT_TRUE(txn.ok());
      std::string v;
      ASSERT_TRUE((*txn)->Get("shared", &v).ok());
      const std::string mine = "branch" + std::to_string(s);
      ASSERT_TRUE((*txn)->Put("shared", mine).ok());
      models[s]["shared"] = mine;
      txns.push_back(std::move(*txn));
    }
    for (auto& t : txns) ASSERT_TRUE(t->Commit().ok());
  }

  // Random per-branch activity; each session must keep seeing exactly its
  // model (inter-branch isolation + read-my-writes).
  for (int round = 0; round < 200; round++) {
    const int s = rng.Uniform(kSessions);
    auto txn = (*store)->Begin(sessions[s].get());
    ASSERT_TRUE(txn.ok());
    const std::string key = "k" + std::to_string(rng.Uniform(6));
    if (rng.Bernoulli(0.5)) {
      const std::string value =
          "s" + std::to_string(s) + "_" + std::to_string(round);
      ASSERT_TRUE((*txn)->Put(key, value).ok());
      ASSERT_TRUE((*txn)->Commit().ok());
      models[s][key] = value;
    } else {
      std::string got;
      Status st = (*txn)->Get(key, &got);
      auto m = models[s].find(key);
      if (m != models[s].end()) {
        ASSERT_TRUE(st.ok()) << "session " << s << " key " << key;
        EXPECT_EQ(got, m->second) << "session " << s << " key " << key;
      } else {
        EXPECT_TRUE(st.IsNotFound()) << "session " << s << " key " << key;
      }
      (*txn)->Abort();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchIsolation, ::testing::Values(7, 8, 9));

// ---- fork-path soundness ----------------------------------------------------------

bool Reachable(const State* from, const State* to) {
  // Is `from` an ancestor-or-self of `to`? Explicit upward BFS.
  std::deque<const State*> work{to};
  std::set<const State*> seen;
  while (!work.empty()) {
    const State* s = work.front();
    work.pop_front();
    if (s == from) return true;
    if (!seen.insert(s).second) continue;
    for (const StatePtr& p : s->parents()) work.push_back(p.get());
  }
  return false;
}

class ForkPathSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ForkPathSoundness, DescendantCheckMatchesReachability) {
  StateDag dag;
  Random rng(GetParam());
  std::vector<StatePtr> states{dag.root()};

  for (int i = 0; i < 150; i++) {
    std::lock_guard<std::mutex> guard(dag.Lock());
    if (states.size() >= 2 && rng.Bernoulli(0.15)) {
      // Merge two random distinct states.
      StatePtr a = states[rng.Uniform(states.size())];
      StatePtr b = states[rng.Uniform(states.size())];
      if (a == b) continue;
      states.push_back(dag.CreateStateLocked({a, b}, dag.NextLocalGuid(),
                                             KeySet(), KeySet(), true));
    } else {
      StatePtr parent = states[rng.Uniform(states.size())];
      states.push_back(dag.CreateStateLocked({parent}, dag.NextLocalGuid(),
                                             KeySet(), KeySet(), false));
    }
  }

  int positives = 0;
  for (int trial = 0; trial < 2000; trial++) {
    const State* a = states[rng.Uniform(states.size())].get();
    const State* b = states[rng.Uniform(states.size())].get();
    const bool expected = Reachable(a, b);
    positives += expected;
    EXPECT_EQ(StateDag::DescendantCheck(*a, *b), expected)
        << "a=" << a->id() << " path=" << a->fork_path()->ToString()
        << " b=" << b->id() << " path=" << b->fork_path()->ToString();
  }
  // Sanity: the test exercised both outcomes.
  EXPECT_GT(positives, 50);
  EXPECT_LT(positives, 1950);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkPathSoundness,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---- counter convergence ------------------------------------------------------------

class CounterConvergence : public ::testing::TestWithParam<int> {};

TEST_P(CounterConvergence, MergesPreserveTotalDelta) {
  auto store = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(store.ok());
  Random rng(GetParam());

  constexpr int kSessions = 3;
  std::vector<std::unique_ptr<ClientSession>> sessions;
  for (int s = 0; s < kSessions; s++) {
    sessions.push_back((*store)->CreateSession());
  }
  auto merger = (*store)->CreateSession();

  int64_t expected = 0;
  auto increment = [&](ClientSession* session, int64_t delta) {
    auto txn = (*store)->Begin(session);
    ASSERT_TRUE(txn.ok());
    std::string raw;
    int64_t value = 0;
    Status s = (*txn)->Get("cnt", &raw);
    if (s.ok()) value = std::stoll(raw);
    ASSERT_TRUE((*txn)->Put("cnt", std::to_string(value + delta)).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  };
  auto merge_all = [&] {
    while ((*store)->dag()->Leaves().size() > 1) {
      auto m = (*store)->BeginMerge(merger.get());
      ASSERT_TRUE(m.ok());
      auto parents = (*m)->parents();
      auto forks = (*m)->FindForkPoints(parents);
      ASSERT_TRUE(forks.ok());
      auto value_at = [&](StateId sid) {
        std::string raw;
        return (*m)->GetForId("cnt", sid, &raw).ok() ? std::stoll(raw)
                                                     : int64_t{0};
      };
      int64_t fork_value = value_at((*forks)[0]);
      int64_t result = fork_value;
      for (StateId p : parents) result += value_at(p) - fork_value;
      ASSERT_TRUE((*m)->Put("cnt", std::to_string(result)).ok());
      ASSERT_TRUE((*m)->Commit().ok());
    }
  };

  for (int round = 0; round < 150; round++) {
    if (rng.Bernoulli(0.1)) {
      merge_all();
    } else {
      const int s = rng.Uniform(kSessions);
      const int64_t delta =
          static_cast<int64_t>(rng.Uniform(9)) - 4;  // [-4, 4]
      increment(sessions[s].get(), delta);
      expected += delta;
    }
  }
  merge_all();

  auto txn = (*store)->Begin(merger.get());
  ASSERT_TRUE(txn.ok());
  std::string raw;
  Status s = (*txn)->Get("cnt", &raw);
  const int64_t final_value = s.ok() ? std::stoll(raw) : 0;
  (*txn)->Abort();
  EXPECT_EQ(final_value, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterConvergence,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707));

// ---- GC transparency ---------------------------------------------------------------

class GcTransparency : public ::testing::TestWithParam<int> {};

TEST_P(GcTransparency, VisibleStateUnchangedByGc) {
  auto store = TardisStore::Open(TardisOptions{});
  ASSERT_TRUE(store.ok());
  Random rng(GetParam());

  constexpr int kSessions = 3;
  std::vector<std::unique_ptr<ClientSession>> sessions;
  for (int s = 0; s < kSessions; s++) {
    sessions.push_back((*store)->CreateSession());
  }
  for (int round = 0; round < 300; round++) {
    const int s = rng.Uniform(kSessions);
    auto txn = (*store)->Begin(sessions[s].get());
    ASSERT_TRUE(txn.ok());
    const std::string key = "k" + std::to_string(rng.Uniform(10));
    std::string v;
    (*txn)->Get(key, &v);
    ASSERT_TRUE(
        (*txn)->Put(key, "r" + std::to_string(round)).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }

  // Snapshot each session's view of all keys.
  auto view = [&](ClientSession* session) {
    std::map<std::string, std::string> out;
    auto txn = (*store)->Begin(session);
    EXPECT_TRUE(txn.ok());
    for (int k = 0; k < 10; k++) {
      const std::string key = "k" + std::to_string(k);
      std::string v;
      if ((*txn)->Get(key, &v).ok()) out[key] = v;
    }
    (*txn)->Abort();
    return out;
  };
  std::vector<std::map<std::string, std::string>> before;
  for (auto& s : sessions) before.push_back(view(s.get()));

  const size_t states_before = (*store)->dag()->state_count();
  for (auto& s : sessions) (*store)->PlaceCeiling(s.get());
  (*store)->RunGarbageCollection();
  EXPECT_LT((*store)->dag()->state_count(), states_before);

  for (int s = 0; s < kSessions; s++) {
    EXPECT_EQ(view(sessions[s].get()), before[s]) << "session " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcTransparency,
                         ::testing::Values(13, 17, 19));

// ---- recovery equivalence -------------------------------------------------------------

class RecoveryEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryEquivalence, CommittedStateSurvivesReopen) {
  const std::string dir =
      ::testing::TempDir() + "tardis_prop_recovery_" +
      std::to_string(GetParam()) + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  Random rng(GetParam());
  std::map<std::string, std::string> model;

  {
    TardisOptions options;
    options.dir = dir;
    options.flush_mode = Wal::FlushMode::kSync;
    auto store = TardisStore::Open(options);
    ASSERT_TRUE(store.ok());
    auto session = (*store)->CreateSession();
    for (int round = 0; round < 100; round++) {
      auto txn = (*store)->Begin(session.get());
      ASSERT_TRUE(txn.ok());
      const int ops = 1 + rng.Uniform(4);
      std::map<std::string, std::string> writes;
      for (int i = 0; i < ops; i++) {
        const std::string key = "k" + std::to_string(rng.Uniform(15));
        const std::string value = "v" + std::to_string(rng.Next() % 10000);
        ASSERT_TRUE((*txn)->Put(key, value).ok());
        writes[key] = value;
      }
      if (rng.Bernoulli(0.2)) {
        (*txn)->Abort();
      } else {
        ASSERT_TRUE((*txn)->Commit().ok());
        for (auto& [k, v] : writes) model[k] = v;
      }
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }

  TardisOptions options;
  options.dir = dir;
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto session = (*store)->CreateSession();
  auto txn = (*store)->Begin(session.get());
  ASSERT_TRUE(txn.ok());
  for (int k = 0; k < 15; k++) {
    const std::string key = "k" + std::to_string(k);
    std::string got;
    Status s = (*txn)->Get(key, &got);
    auto m = model.find(key);
    if (m != model.end()) {
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      EXPECT_EQ(got, m->second) << key;
    } else {
      EXPECT_TRUE(s.IsNotFound()) << key;
    }
  }
  (*txn)->Abort();
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryEquivalence,
                         ::testing::Values(31, 37, 41));

}  // namespace
}  // namespace tardis
