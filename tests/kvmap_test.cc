// Tests for the key-version map: topological ordering, branch-aware
// visibility, version removal.

#include <gtest/gtest.h>

#include "core/key_version_map.h"
#include "core/state_dag.h"

namespace tardis {
namespace {

std::shared_ptr<const std::string> Val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

StatePtr Commit(StateDag* dag, const StatePtr& parent) {
  std::lock_guard<std::mutex> guard(dag->Lock());
  return dag->CreateStateLocked({parent}, dag->NextLocalGuid(), KeySet(),
                                KeySet(), false);
}

class KvMapTest : public ::testing::Test {
 protected:
  StateDag dag_;
  KeyVersionMap map_;
};

TEST_F(KvMapTest, EmptyMapNotFound) {
  auto r = map_.GetVisible("nope", *dag_.root());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(map_.key_count(), 0u);
}

TEST_F(KvMapTest, SingleVersionVisibleToDescendants) {
  StatePtr s1 = Commit(&dag_, dag_.root());
  StatePtr s2 = Commit(&dag_, s1);
  ASSERT_TRUE(map_.AddVersion("k", s1, Val("v1")));

  auto r = map_.GetVisible("k", *s2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->value, "v1");
  // Not visible above the writing state.
  EXPECT_TRUE(map_.GetVisible("k", *dag_.root()).status().IsNotFound());
}

TEST_F(KvMapTest, MostRecentOnBranchWins) {
  StatePtr s1 = Commit(&dag_, dag_.root());
  StatePtr s2 = Commit(&dag_, s1);
  StatePtr s3 = Commit(&dag_, s2);
  map_.AddVersion("k", s1, Val("old"));
  map_.AddVersion("k", s3, Val("new"));

  auto at3 = map_.GetVisible("k", *s3);
  ASSERT_TRUE(at3.ok());
  EXPECT_EQ(*at3->value, "new");
  auto at2 = map_.GetVisible("k", *s2);
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ(*at2->value, "old");
}

TEST_F(KvMapTest, BranchesSeeOnlyTheirVersions) {
  StatePtr s1 = Commit(&dag_, dag_.root());
  map_.AddVersion("k", s1, Val("base"));
  StatePtr left = Commit(&dag_, s1);
  StatePtr right = Commit(&dag_, s1);
  map_.AddVersion("k", left, Val("L"));
  map_.AddVersion("k", right, Val("R"));

  auto l = map_.GetVisible("k", *left);
  auto r = map_.GetVisible("k", *right);
  ASSERT_TRUE(l.ok() && r.ok());
  EXPECT_EQ(*l->value, "L");
  EXPECT_EQ(*r->value, "R");
  // At the fork itself, the pre-fork version is visible.
  auto f = map_.GetVisible("k", *s1);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f->value, "base");
}

TEST_F(KvMapTest, InsertionOrderIrrelevantForTopologicalOrder) {
  // Insert a lower-id version after a higher-id one: the sorted skip list
  // must still return the most recent first.
  StatePtr s1 = Commit(&dag_, dag_.root());
  StatePtr s2 = Commit(&dag_, s1);
  map_.AddVersion("k", s2, Val("newer"));
  map_.AddVersion("k", s1, Val("older"));
  auto r = map_.GetVisible("k", *s2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->value, "newer");
  auto versions = map_.Versions("k");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_GT(versions[0].sid, versions[1].sid);
}

TEST_F(KvMapTest, DuplicateStateVersionRejected) {
  StatePtr s1 = Commit(&dag_, dag_.root());
  EXPECT_TRUE(map_.AddVersion("k", s1, Val("a")));
  EXPECT_FALSE(map_.AddVersion("k", s1, Val("b")));
  EXPECT_EQ(map_.version_count(), 1u);
}

TEST_F(KvMapTest, RemoveVersion) {
  StatePtr s1 = Commit(&dag_, dag_.root());
  StatePtr s2 = Commit(&dag_, s1);
  map_.AddVersion("k", s1, Val("a"));
  map_.AddVersion("k", s2, Val("b"));
  EXPECT_TRUE(map_.RemoveVersion("k", s2->id()));
  EXPECT_FALSE(map_.RemoveVersion("k", s2->id()));
  auto r = map_.GetVisible("k", *s2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->value, "a");
  EXPECT_EQ(map_.version_count(), 1u);
}

TEST_F(KvMapTest, ForEachKeyVisitsAll) {
  StatePtr s1 = Commit(&dag_, dag_.root());
  map_.AddVersion("a", s1, Val("1"));
  map_.AddVersion("b", s1, Val("2"));
  map_.AddVersion("c", s1, Val("3"));
  int n = 0;
  map_.ForEachKey([&](const std::string&) { n++; });
  EXPECT_EQ(n, 3);
  EXPECT_EQ(map_.key_count(), 3u);
}

TEST_F(KvMapTest, ManyVersionsOnHotKey) {
  StatePtr s = dag_.root();
  std::vector<StatePtr> chain;
  for (int i = 0; i < 500; i++) {
    s = Commit(&dag_, s);
    chain.push_back(s);
    map_.AddVersion("hot", s, Val(std::to_string(i)));
  }
  // Every historical state reads its own version.
  for (int i : {0, 100, 250, 499}) {
    auto r = map_.GetVisible("hot", *chain[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r->value, std::to_string(i));
  }
}

}  // namespace
}  // namespace tardis
