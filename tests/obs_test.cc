// Tests for the observability layer: sharded counters under concurrency,
// registry registration semantics, Prometheus/table/delta rendering, and
// the per-thread ring-buffer tracer.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "obs/trace_stitch.h"

namespace tardis {
namespace obs {
namespace {

// ---- Counter ----------------------------------------------------------------

TEST(CounterTest, SingleThreadExact) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

// The sharded counter must not lose increments under concurrency: every
// thread lands on some shard's relaxed atomic, and Value() sums them.
// Run under TSan this also proves the commit-path increment is race-free.
TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; i++) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
}

TEST(HistogramMetricTest, ConcurrentObserveKeepsEverySample) {
  HistogramMetric h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        h.Observe(static_cast<uint64_t>(t) * 100 + i % 100);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().count(), kThreads * kPerThread);
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.RegisterCounter("c", "help", {{"site", "0"}});
  Counter* b = reg.RegisterCounter("c", "help", {{"site", "0"}});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same (name, labels) -> same metric
  // A different label set is a different series.
  Counter* other = reg.RegisterCounter("c", "help", {{"site", "1"}});
  EXPECT_NE(a, other);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.RegisterCounter("m", "h"), nullptr);
  EXPECT_EQ(reg.RegisterGauge("m", "h"), nullptr);
  EXPECT_EQ(reg.RegisterHistogram("m", "h"), nullptr);
}

TEST(MetricsRegistryTest, CollectIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.RegisterCounter("zzz", "h")->Increment(3);
  reg.RegisterGauge("aaa", "h")->Set(7);
  reg.RegisterHistogram("mmm", "h")->Observe(5);
  const std::vector<Sample> samples = reg.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "aaa");
  EXPECT_EQ(samples[0].gauge, 7.0);
  EXPECT_EQ(samples[1].name, "mmm");
  EXPECT_EQ(samples[1].hist.count(), 1u);
  EXPECT_EQ(samples[2].name, "zzz");
  EXPECT_EQ(samples[2].counter, 3u);
}

TEST(MetricsRegistryTest, CallbackMetricsEvaluateAtCollect) {
  MetricsRegistry reg;
  std::atomic<uint64_t> source{5};
  int owner_token = 0;
  reg.RegisterCallbackCounter(
      "cb", "h", [&source] { return source.load(); }, {}, &owner_token);
  EXPECT_EQ(reg.Collect()[0].counter, 5u);
  source = 9;
  EXPECT_EQ(reg.Collect()[0].counter, 9u);

  reg.DropCallbacks(&owner_token);
  EXPECT_TRUE(reg.Collect().empty());
}

// ---- Exposition -------------------------------------------------------------

TEST(ExpositionTest, PrometheusGolden) {
  MetricsRegistry reg;
  reg.RegisterCounter("tardis_txn_commits_total", "Committed transactions",
                      {{"site", "0"}})
      ->Increment(7);
  reg.RegisterGauge("tardis_dag_leaves", "Branch tips", {{"site", "0"}})
      ->Set(2);
  const std::string text = RenderPrometheus(reg.Collect());
  EXPECT_EQ(text,
            "# HELP tardis_dag_leaves Branch tips\n"
            "# TYPE tardis_dag_leaves gauge\n"
            "tardis_dag_leaves{site=\"0\"} 2\n"
            "# HELP tardis_txn_commits_total Committed transactions\n"
            "# TYPE tardis_txn_commits_total counter\n"
            "tardis_txn_commits_total{site=\"0\"} 7\n");
}

TEST(ExpositionTest, HistogramRendersAsSummary) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.RegisterHistogram("lat_us", "Latency");
  for (uint64_t i = 1; i <= 100; i++) h->Observe(i);
  const std::string text = RenderPrometheus(reg.Collect());
  EXPECT_NE(text.find("# TYPE lat_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 5050\n"), std::string::npos);
}

TEST(ExpositionTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.RegisterCounter("m", "h", {{"k", "a\"b\\c"}})->Increment();
  const std::string text = RenderPrometheus(reg.Collect());
  EXPECT_NE(text.find("m{k=\"a\\\"b\\\\c\"} 1\n"), std::string::npos);
}

TEST(ExpositionTest, TableListsEverySeries) {
  MetricsRegistry reg;
  reg.RegisterCounter("c_total", "h", {{"site", "0"}})->Increment(4);
  reg.RegisterHistogram("h_us", "h")->Observe(10);
  const std::string table = RenderTable(reg.Collect());
  EXPECT_NE(table.find("c_total{site=\"0\"}"), std::string::npos);
  EXPECT_NE(table.find(" 4\n"), std::string::npos);
  EXPECT_NE(table.find("count=1"), std::string::npos);
}

TEST(ExpositionTest, DeltaShowsOnlyMovement) {
  MetricsRegistry reg;
  Counter* moving = reg.RegisterCounter("moving_total", "h");
  reg.RegisterCounter("static_total", "h")->Increment(5);
  Gauge* gauge = reg.RegisterGauge("level", "h");
  gauge->Set(3);
  const std::vector<Sample> before = reg.Collect();
  moving->Increment(12);
  gauge->Set(8);
  const std::string delta = RenderDelta(before, reg.Collect());
  EXPECT_NE(delta.find("moving_total +12\n"), std::string::npos);
  EXPECT_NE(delta.find("level 3 -> 8\n"), std::string::npos);
  EXPECT_EQ(delta.find("static_total"), std::string::npos);
}

// ---- Tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  tracer.Disable();
  tracer.Clear();
  { TARDIS_TRACE_SCOPE("cat", "scope"); }
  TARDIS_TRACE_INSTANT("cat", "instant");
  EXPECT_EQ(tracer.EventCount(), 0u);
}

TEST(TracerTest, RingWrapsKeepingTheMostRecentWindow) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(/*events_per_thread=*/64);
  for (int i = 0; i < 100; i++) {
    TARDIS_TRACE_INSTANT("cat", "e");
  }
  EXPECT_EQ(tracer.TotalRecorded(), 100u);  // everything was written...
  EXPECT_EQ(tracer.EventCount(), 64u);      // ...but only the window is kept
  tracer.Disable();
  tracer.Clear();
}

TEST(TracerTest, ScopeEmitsCompleteEventIntoChromeJson) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(64);
  { TARDIS_TRACE_SCOPE("txn", "commit"); }
  TARDIS_TRACE_INSTANT("txn", "fork");
  tracer.Disable();
  const std::string json = tracer.DumpChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fork\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, EventsFromExitedThreadsSurviveToDump) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(64);
  std::thread worker([] { TARDIS_TRACE_INSTANT("worker", "did_work"); });
  worker.join();
  tracer.Disable();
  EXPECT_NE(tracer.DumpChromeTrace().find("did_work"), std::string::npos);
  tracer.Clear();
}

// ---- Distributed trace context ----------------------------------------------

TEST(TraceHeaderTest, FormatParseRoundTrip) {
  TraceContext ctx;
  ctx.trace_id = 0x7a9d15c0deULL;
  ctx.span_id = 0x42;
  ctx.sampled = true;
  TraceContext parsed;
  ASSERT_TRUE(ParseTraceHeader(FormatTraceHeader(ctx), &parsed));
  EXPECT_EQ(parsed.trace_id, ctx.trace_id);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
  EXPECT_TRUE(parsed.sampled);

  ctx.sampled = false;
  ASSERT_TRUE(ParseTraceHeader(FormatTraceHeader(ctx), &parsed));
  EXPECT_FALSE(parsed.sampled);

  // A zero trace id means "no trace" and must not parse as one.
  TraceContext zero;
  EXPECT_FALSE(ParseTraceHeader("*T0/0/1", &zero));
  EXPECT_FALSE(ParseTraceHeader("not-a-header", &zero));
}

TEST(TraceHeaderTest, StripPresentHeaderFillsContext) {
  std::string line = "*T1a2b/3c/1 mput k0 a k1 b";
  TraceContext ctx;
  EXPECT_TRUE(StripTraceHeader(&line, &ctx));
  EXPECT_EQ(line, "mput k0 a k1 b");
  EXPECT_EQ(ctx.trace_id, 0x1a2bu);
  EXPECT_EQ(ctx.span_id, 0x3cu);
  EXPECT_TRUE(ctx.sampled);
}

TEST(TraceHeaderTest, StripAbsentHeaderLeavesLineUntouched) {
  std::string line = "get key";
  TraceContext ctx;
  EXPECT_FALSE(StripTraceHeader(&line, &ctx));
  EXPECT_EQ(line, "get key");
  EXPECT_FALSE(ctx.active());
}

// A corrupt header must not break the command: the token is stripped so
// the request still executes, just untraced.
TEST(TraceHeaderTest, StripCorruptHeaderDiscardsTokenOnly) {
  std::string line = "*Tzzzz/0/1 get key";
  TraceContext ctx;
  EXPECT_FALSE(StripTraceHeader(&line, &ctx));
  EXPECT_EQ(line, "get key");
  EXPECT_FALSE(ctx.active());
}

namespace {
/// args.<key> of the dumped event named `name` ("" when absent) — ids are
/// always rendered as 16 hex digits.
std::string EventArg(const std::string& json, const std::string& name,
                     const std::string& key) {
  const size_t at = json.find("\"name\":\"" + name + "\"");
  if (at == std::string::npos) return "";
  const size_t args = json.find("\"args\"", at);
  if (args == std::string::npos) return "";
  const size_t end = json.find('}', args);
  const size_t k = json.find("\"" + key + "\":\"", args);
  if (k == std::string::npos || k > end) return "";
  return json.substr(k + key.size() + 4, 16);
}
}  // namespace

TEST(TraceSpanTest, NestedSpansShareTraceAndChainParents) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(64);
  TraceContext root;
  root.trace_id = 0xabcdef01u;
  root.span_id = 0;
  root.sampled = true;
  {
    TraceContextScope bind(root);
    TraceSpan outer("test", "outer_span");
    EXPECT_EQ(CurrentTraceContext().trace_id, root.trace_id);
    EXPECT_NE(CurrentTraceContext().span_id, 0u);
    const uint64_t outer_span = CurrentTraceContext().span_id;
    {
      TraceSpan inner("test", "inner_span");
      EXPECT_EQ(CurrentTraceContext().trace_id, root.trace_id);
      EXPECT_NE(CurrentTraceContext().span_id, outer_span);
    }
    // Inner span closed: the outer context is restored.
    EXPECT_EQ(CurrentTraceContext().span_id, outer_span);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
  tracer.Disable();

  const std::string json = tracer.DumpChromeTrace();
  EXPECT_NE(json.find("\"trace\":\"00000000abcdef01\""), std::string::npos);
  // Parenting chain in the dump: inner.parent == outer.span, and outer's
  // own parent is the root (span id 0).
  const std::string outer_span = EventArg(json, "outer_span", "span");
  ASSERT_EQ(outer_span.size(), 16u);
  EXPECT_EQ(EventArg(json, "inner_span", "parent"), outer_span);
  EXPECT_EQ(EventArg(json, "outer_span", "parent"),
            std::string("0000000000000000"));
  tracer.Clear();
}

TEST(TraceSpanTest, EmitRecordsChildOfCurrentContext) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(64);
  TraceContext root;
  root.trace_id = 0x5151u;
  root.sampled = true;
  {
    TraceContextScope bind(root);
    TraceSpan span("test", "parent_span");
    TraceSpan::Emit("stage", "queue_wait", NowMicros(), 7);
  }
  tracer.Disable();
  const std::string json = tracer.DumpChromeTrace();
  EXPECT_EQ(EventArg(json, "queue_wait", "parent"),
            EventArg(json, "parent_span", "span"));
  tracer.Clear();
}

// ---- Stage breakdown --------------------------------------------------------

TEST(StageTest, StageTimerFeedsHistogramBreakdownAndFormat) {
  MetricsRegistry reg;
  HistogramMetric* h = RegisterStageHistogram(&reg, "wal_fsync");
  ASSERT_NE(h, nullptr);
  // Same stage registers idempotently to the same series.
  EXPECT_EQ(RegisterStageHistogram(&reg, "wal_fsync"), h);

  StageBreakdown breakdown;
  {
    StageCollectorScope collect(&breakdown);
    { StageTimer t(h, "wal_fsync"); }
    { StageTimer t(nullptr, "prepare_rtt"); }  // breakdown-only stage
  }
  EXPECT_EQ(h->Snapshot().count(), 1u);
  ASSERT_EQ(breakdown.count(), 2u);
  const std::string formatted = breakdown.Format();
  EXPECT_NE(formatted.find("wal_fsync="), std::string::npos);
  EXPECT_NE(formatted.find("prepare_rtt="), std::string::npos);
  EXPECT_NE(formatted.find("us"), std::string::npos);

  // Outside the scope nothing collects.
  { StageTimer t(h, "wal_fsync"); }
  EXPECT_EQ(breakdown.count(), 2u);
  EXPECT_EQ(h->Snapshot().count(), 2u);
  EXPECT_EQ(CurrentStageBreakdown(), nullptr);
}

// ---- Prometheus buckets and cluster merge -----------------------------------

TEST(ExpositionTest, HistogramEmitsCumulativeBucketSeries) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.RegisterHistogram("lat_us", "h");
  h->Observe(1);
  h->Observe(1);
  h->Observe(1);
  const std::string text = RenderPrometheus(reg.Collect());
  // At least one finite-le bucket plus the mandatory +Inf bucket, both
  // carrying the full cumulative count.
  EXPECT_NE(text.find("lat_us_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 3\n"), std::string::npos);
}

TEST(ExpositionTest, StageHistogramBucketsKeepStageLabel) {
  MetricsRegistry reg;
  RegisterStageHistogram(&reg, "prepare_rtt")->Observe(5);
  const std::string text = RenderPrometheus(reg.Collect());
  EXPECT_NE(text.find(
                "tardis_stage_micros_bucket{stage=\"prepare_rtt\",le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST(ExpositionTest, MergePrometheusSumsSeriesAndDropsQuantiles) {
  MetricsRegistry a, b;
  a.RegisterCounter("c_total", "h", {{"site", "0"}})->Increment(3);
  b.RegisterCounter("c_total", "h", {{"site", "0"}})->Increment(4);
  b.RegisterCounter("only_b_total", "h")->Increment(9);
  a.RegisterHistogram("lat_us", "h")->Observe(5);
  b.RegisterHistogram("lat_us", "h")->Observe(7);
  const std::string merged = MergePrometheus(
      {RenderPrometheus(a.Collect()), RenderPrometheus(b.Collect())});
  // Identical series summed; series unique to one site pass through.
  EXPECT_NE(merged.find("c_total{site=\"0\"} 7\n"), std::string::npos);
  EXPECT_NE(merged.find("only_b_total 9\n"), std::string::npos);
  // Histogram _bucket/_sum/_count are additive across sites...
  EXPECT_NE(merged.find("lat_us_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(merged.find("lat_us_sum 12\n"), std::string::npos);
  EXPECT_NE(merged.find("lat_us_count 2\n"), std::string::npos);
  // ...while per-site quantiles cannot be merged and are dropped.
  EXPECT_EQ(merged.find("quantile"), std::string::npos);
  // HELP/TYPE once per family even though both inputs carried them.
  EXPECT_EQ(merged.find("# TYPE c_total counter"),
            merged.rfind("# TYPE c_total counter"));
}

// ---- Trace stitching --------------------------------------------------------

TEST(TraceStitchTest, StitchedDumpValidatesAndMapsTraceToProcess) {
  Tracer& tracer = Tracer::Get();
  tracer.SetProcessLabel("obs_test");
  tracer.Enable(64);
  TraceContext root;
  root.trace_id = 0x77u;
  root.sampled = true;
  {
    TraceContextScope bind(root);
    TraceSpan span("test", "stitched_span");
  }
  tracer.Disable();
  const std::string doc = tracer.DumpChromeTrace();

  // An empty document and one with no traceEvents are skipped, not fatal.
  const std::string merged =
      StitchChromeTraces({doc, "{}", std::string()});
  TraceValidation v;
  ASSERT_TRUE(ValidateChromeTrace(merged, &v).ok());
  EXPECT_GE(v.event_count, 1u);
  EXPECT_EQ(v.process_count, 1u);
  auto it = v.processes_by_trace.find("0000000000000077");
  ASSERT_NE(it, v.processes_by_trace.end());
  EXPECT_EQ(it->second.size(), 1u);
  EXPECT_NE(merged.find("obs_test"), std::string::npos);
  tracer.Clear();
}

TEST(TraceStitchTest, ValidateRejectsMalformedEvents) {
  TraceValidation v;
  EXPECT_FALSE(ValidateChromeTrace("not json", &v).ok());
  // Event missing pid/tid/ts.
  EXPECT_FALSE(
      ValidateChromeTrace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\"}]}",
                          &v)
          .ok());
}

}  // namespace
}  // namespace obs
}  // namespace tardis
