// Tests for the observability layer: sharded counters under concurrency,
// registry registration semantics, Prometheus/table/delta rendering, and
// the per-thread ring-buffer tracer.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tardis {
namespace obs {
namespace {

// ---- Counter ----------------------------------------------------------------

TEST(CounterTest, SingleThreadExact) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

// The sharded counter must not lose increments under concurrency: every
// thread lands on some shard's relaxed atomic, and Value() sums them.
// Run under TSan this also proves the commit-path increment is race-free.
TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; i++) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
}

TEST(HistogramMetricTest, ConcurrentObserveKeepsEverySample) {
  HistogramMetric h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        h.Observe(static_cast<uint64_t>(t) * 100 + i % 100);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().count(), kThreads * kPerThread);
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.RegisterCounter("c", "help", {{"site", "0"}});
  Counter* b = reg.RegisterCounter("c", "help", {{"site", "0"}});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same (name, labels) -> same metric
  // A different label set is a different series.
  Counter* other = reg.RegisterCounter("c", "help", {{"site", "1"}});
  EXPECT_NE(a, other);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.RegisterCounter("m", "h"), nullptr);
  EXPECT_EQ(reg.RegisterGauge("m", "h"), nullptr);
  EXPECT_EQ(reg.RegisterHistogram("m", "h"), nullptr);
}

TEST(MetricsRegistryTest, CollectIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.RegisterCounter("zzz", "h")->Increment(3);
  reg.RegisterGauge("aaa", "h")->Set(7);
  reg.RegisterHistogram("mmm", "h")->Observe(5);
  const std::vector<Sample> samples = reg.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "aaa");
  EXPECT_EQ(samples[0].gauge, 7.0);
  EXPECT_EQ(samples[1].name, "mmm");
  EXPECT_EQ(samples[1].hist.count(), 1u);
  EXPECT_EQ(samples[2].name, "zzz");
  EXPECT_EQ(samples[2].counter, 3u);
}

TEST(MetricsRegistryTest, CallbackMetricsEvaluateAtCollect) {
  MetricsRegistry reg;
  std::atomic<uint64_t> source{5};
  int owner_token = 0;
  reg.RegisterCallbackCounter(
      "cb", "h", [&source] { return source.load(); }, {}, &owner_token);
  EXPECT_EQ(reg.Collect()[0].counter, 5u);
  source = 9;
  EXPECT_EQ(reg.Collect()[0].counter, 9u);

  reg.DropCallbacks(&owner_token);
  EXPECT_TRUE(reg.Collect().empty());
}

// ---- Exposition -------------------------------------------------------------

TEST(ExpositionTest, PrometheusGolden) {
  MetricsRegistry reg;
  reg.RegisterCounter("tardis_txn_commits_total", "Committed transactions",
                      {{"site", "0"}})
      ->Increment(7);
  reg.RegisterGauge("tardis_dag_leaves", "Branch tips", {{"site", "0"}})
      ->Set(2);
  const std::string text = RenderPrometheus(reg.Collect());
  EXPECT_EQ(text,
            "# HELP tardis_dag_leaves Branch tips\n"
            "# TYPE tardis_dag_leaves gauge\n"
            "tardis_dag_leaves{site=\"0\"} 2\n"
            "# HELP tardis_txn_commits_total Committed transactions\n"
            "# TYPE tardis_txn_commits_total counter\n"
            "tardis_txn_commits_total{site=\"0\"} 7\n");
}

TEST(ExpositionTest, HistogramRendersAsSummary) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.RegisterHistogram("lat_us", "Latency");
  for (uint64_t i = 1; i <= 100; i++) h->Observe(i);
  const std::string text = RenderPrometheus(reg.Collect());
  EXPECT_NE(text.find("# TYPE lat_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 5050\n"), std::string::npos);
}

TEST(ExpositionTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.RegisterCounter("m", "h", {{"k", "a\"b\\c"}})->Increment();
  const std::string text = RenderPrometheus(reg.Collect());
  EXPECT_NE(text.find("m{k=\"a\\\"b\\\\c\"} 1\n"), std::string::npos);
}

TEST(ExpositionTest, TableListsEverySeries) {
  MetricsRegistry reg;
  reg.RegisterCounter("c_total", "h", {{"site", "0"}})->Increment(4);
  reg.RegisterHistogram("h_us", "h")->Observe(10);
  const std::string table = RenderTable(reg.Collect());
  EXPECT_NE(table.find("c_total{site=\"0\"}"), std::string::npos);
  EXPECT_NE(table.find(" 4\n"), std::string::npos);
  EXPECT_NE(table.find("count=1"), std::string::npos);
}

TEST(ExpositionTest, DeltaShowsOnlyMovement) {
  MetricsRegistry reg;
  Counter* moving = reg.RegisterCounter("moving_total", "h");
  reg.RegisterCounter("static_total", "h")->Increment(5);
  Gauge* gauge = reg.RegisterGauge("level", "h");
  gauge->Set(3);
  const std::vector<Sample> before = reg.Collect();
  moving->Increment(12);
  gauge->Set(8);
  const std::string delta = RenderDelta(before, reg.Collect());
  EXPECT_NE(delta.find("moving_total +12\n"), std::string::npos);
  EXPECT_NE(delta.find("level 3 -> 8\n"), std::string::npos);
  EXPECT_EQ(delta.find("static_total"), std::string::npos);
}

// ---- Tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::Get();
  tracer.Disable();
  tracer.Clear();
  { TARDIS_TRACE_SCOPE("cat", "scope"); }
  TARDIS_TRACE_INSTANT("cat", "instant");
  EXPECT_EQ(tracer.EventCount(), 0u);
}

TEST(TracerTest, RingWrapsKeepingTheMostRecentWindow) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(/*events_per_thread=*/64);
  for (int i = 0; i < 100; i++) {
    TARDIS_TRACE_INSTANT("cat", "e");
  }
  EXPECT_EQ(tracer.TotalRecorded(), 100u);  // everything was written...
  EXPECT_EQ(tracer.EventCount(), 64u);      // ...but only the window is kept
  tracer.Disable();
  tracer.Clear();
}

TEST(TracerTest, ScopeEmitsCompleteEventIntoChromeJson) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(64);
  { TARDIS_TRACE_SCOPE("txn", "commit"); }
  TARDIS_TRACE_INSTANT("txn", "fork");
  tracer.Disable();
  const std::string json = tracer.DumpChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fork\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, EventsFromExitedThreadsSurviveToDump) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable(64);
  std::thread worker([] { TARDIS_TRACE_INSTANT("worker", "did_work"); });
  worker.join();
  tracer.Disable();
  EXPECT_NE(tracer.DumpChromeTrace().find("did_work"), std::string::npos);
  tracer.Clear();
}

}  // namespace
}  // namespace obs
}  // namespace tardis
