// Backend conformance suite: every RecordStore implementation — memstore,
// the B-tree, and the trie adapter — must satisfy the same observable
// contract (Put/Get overwrite, Delete's NotFound, size(), Sync, and
// ForEachKey including early-stop on a non-OK status). The TARDiS core
// switches backends via TardisOptions::backend, so any divergence here is
// a behavioural difference the core would inherit silently.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/btree_record_store.h"
#include "storage/cowtrie/trie_record_store.h"
#include "storage/memstore.h"
#include "storage/record_store.h"

namespace tardis {
namespace {

class RecordStoreConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const std::string which = GetParam();
    if (which == "mem") {
      store_ = std::make_unique<MemRecordStore>();
    } else if (which == "trie") {
      store_ = std::make_unique<TrieRecordStore>();
    } else {
      // Parameterized test names contain '/': flatten for the filesystem.
      std::string name =
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
      std::replace(name.begin(), name.end(), '/', '_');
      path_ = ::testing::TempDir() + "tardis_conformance_" + name + ".db";
      ::remove(path_.c_str());
      auto opened = BTreeRecordStore::Open(path_);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      store_ = std::move(*opened);
    }
  }

  void TearDown() override {
    store_.reset();
    if (!path_.empty()) ::remove(path_.c_str());
  }

  std::unique_ptr<RecordStore> store_;
  std::string path_;
};

TEST_P(RecordStoreConformance, PutGetOverwrite) {
  EXPECT_EQ(store_->size(), 0u);
  ASSERT_TRUE(store_->Put("k", "v1").ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE(store_->Put("k", "v2").ok());
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_EQ(store_->size(), 1u);
  EXPECT_TRUE(store_->Get("absent", &v).IsNotFound());
}

TEST_P(RecordStoreConformance, EmptyAndBinaryValues) {
  ASSERT_TRUE(store_->Put("empty", "").ok());
  std::string v = "sentinel";
  ASSERT_TRUE(store_->Get("empty", &v).ok());
  EXPECT_EQ(v, "");
  const std::string binary("\x00\x01\xff\x7f nul\x00 inside", 16);
  ASSERT_TRUE(store_->Put("bin", binary).ok());
  ASSERT_TRUE(store_->Get("bin", &v).ok());
  EXPECT_EQ(v, binary);
}

TEST_P(RecordStoreConformance, DeleteSemantics) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  std::string v;
  EXPECT_TRUE(store_->Get("k", &v).IsNotFound());
  EXPECT_EQ(store_->size(), 0u);
  // Deleting a missing key reports NotFound on every backend.
  EXPECT_TRUE(store_->Delete("k").IsNotFound());
  EXPECT_TRUE(store_->Delete("never-existed").IsNotFound());
}

TEST_P(RecordStoreConformance, SizeTracksLiveKeys) {
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(store_->Put("key" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ(store_->size(), 50u);
  for (int i = 0; i < 50; i += 2) {
    ASSERT_TRUE(store_->Delete("key" + std::to_string(i)).ok());
  }
  EXPECT_EQ(store_->size(), 25u);
  // Overwrites do not change the count.
  ASSERT_TRUE(store_->Put("key1", "v2").ok());
  EXPECT_EQ(store_->size(), 25u);
}

TEST_P(RecordStoreConformance, SyncSucceedsAndPreservesData) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Sync().ok());
  std::string v;
  ASSERT_TRUE(store_->Get("k", &v).ok());
  EXPECT_EQ(v, "v");
}

TEST_P(RecordStoreConformance, ForEachKeySeesEveryKeyOnce) {
  std::set<std::string> expected;
  for (int i = 0; i < 30; i++) {
    const std::string key = "fek/" + std::to_string(i);
    ASSERT_TRUE(store_->Put(key, "v").ok());
    expected.insert(key);
  }
  ASSERT_TRUE(store_->Delete("fek/7").ok());
  expected.erase("fek/7");

  std::vector<std::string> seen;
  ASSERT_TRUE(store_->ForEachKey([&](const Slice& key) {
                seen.push_back(key.ToString());
                return Status::OK();
              }).ok());
  EXPECT_EQ(std::set<std::string>(seen.begin(), seen.end()), expected);
  EXPECT_EQ(seen.size(), expected.size());  // no duplicates
}

TEST_P(RecordStoreConformance, ForEachKeyStopsOnFirstError) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(store_->Put("k" + std::to_string(i), "v").ok());
  }
  int visited = 0;
  Status s = store_->ForEachKey([&](const Slice&) {
    return ++visited == 3 ? Status::Aborted("early stop") : Status::OK();
  });
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_EQ(visited, 3);
}

INSTANTIATE_TEST_SUITE_P(Backends, RecordStoreConformance,
                         ::testing::Values("mem", "btree", "trie"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace tardis
