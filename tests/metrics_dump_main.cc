// CI check for the metric catalog: drives one in-memory store through a
// fork + merge + GC cycle, then diffs the set of metric names the registry
// exposes against the documented catalog (DESIGN.md §7). Exits nonzero and
// prints the difference in both directions when the catalog drifts, so a
// renamed or dropped series fails the build instead of silently breaking
// dashboards.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "client/tardis_client.h"
#include "cluster/partition_map.h"
#include "cluster/router.h"
#include "cluster/twopc.h"
#include "core/tardis_store.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace {

const char* kExpectedNames[] = {
    "tardis_txn_commits_total",
    "tardis_txn_aborts_total",
    "tardis_txn_read_only_commits_total",
    "tardis_txn_remote_applied_total",
    "tardis_txn_forks_total",
    "tardis_txn_merges_total",
    "tardis_commit_latency_us",
    "tardis_merge_latency_us",
    "tardis_dag_states",
    "tardis_dag_leaves",
    "tardis_dag_promotions",
    "tardis_gc_runs_total",
    "tardis_gc_states_marked_total",
    "tardis_gc_states_deleted_total",
    "tardis_gc_versions_promoted_total",
    "tardis_gc_versions_pruned_total",
    "tardis_gc_pass_duration_us",
    "tardis_fault_points_hit_total",
    "tardis_fault_errors_injected_total",
    "tardis_fault_delays_injected_total",
    "tardis_fault_crashes_simulated_total",
    "tardis_fault_short_writes_total",
    "tardis_fault_net_frames_dropped_total",
    "tardis_fault_net_frames_duplicated_total",
    "tardis_fault_net_frames_reordered_total",
    // Partitioning / 2PC (src/cluster/, DESIGN.md §10). The participant
    // registers on the store's registry; the router series are checked
    // here too because both sides share the tardis_2pc_* names
    // (distinguished by the role label).
    "tardis_router_requests",
    "tardis_2pc_prepares",
    "tardis_2pc_forked_commits",
    "tardis_2pc_in_doubt",
    // Per-request latency breakdown (src/obs/stage.h, DESIGN.md §7): one
    // family labeled only by stage so `metrics cluster` can sum it across
    // sites. Store, 2PC, router, and replicator each register their
    // stages into it.
    "tardis_stage_micros",
    // Fork-native storage (src/storage/cowtrie/, DESIGN.md §12). The
    // backend info metric exists on every store; the trie family appears
    // because this check runs on the trie backend.
    // Client sessions & exactly-once retries (src/core/session.h,
    // src/client/, DESIGN.md §13). The dedup table registers on the
    // store's registry; the client series appear because this check
    // constructs a TardisClient sharing the same registry.
    "tardis_session_dedup_hits",
    "tardis_session_dedup_evictions",
    "tardis_session_dedup_duplicates",
    "tardis_session_dedup_entries",
    "tardis_session_dedup_sessions",
    "tardis_session_header_rejected",
    "tardis_client_requests",
    "tardis_client_retries",
    "tardis_client_failovers",
    "tardis_client_stale_reads",
    "tardis_store_backend",
    "tardis_trie_nodes",
    "tardis_trie_shared_nodes",
    "tardis_trie_merge_diff_keys",
    "tardis_trie_merge_conflicts",
    "tardis_trie_fork_us",
    "tardis_trie_merge_us",
};

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    auto _s = (expr);                                                   \
    if (!_s.ok()) {                                                     \
      fprintf(stderr, "FAIL %s:%d: %s -> %s\n", __FILE__, __LINE__,     \
              #expr, _s.ToString().c_str());                            \
      return 1;                                                         \
    }                                                                   \
  } while (0)

}  // namespace

int main() {
  using namespace tardis;

  TardisOptions options;  // in-memory
  // The trie backend exposes every series the other backends do, plus the
  // tardis_trie_* family — running the drift check on it covers the
  // superset.
  options.backend = RecordBackend::kTrie;
  auto store_or = TardisStore::Open(options);
  if (!store_or.ok()) {
    fprintf(stderr, "FAIL: Open: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<TardisStore> store = std::move(*store_or);

  // Seed a key, then fork: two sessions read it and write conflicting
  // values under branch-on-conflict.
  auto seeder = store->CreateSession();
  {
    auto t = store->Begin(seeder.get());
    if (!t.ok()) return 1;
    CHECK_OK((*t)->Put("k", "0"));
    CHECK_OK((*t)->Commit());
  }
  auto s1 = store->CreateSession();
  auto s2 = store->CreateSession();
  auto t1 = store->Begin(s1.get());
  auto t2 = store->Begin(s2.get());
  if (!t1.ok() || !t2.ok()) return 1;
  std::string v;
  CHECK_OK((*t1)->Get("k", &v));
  CHECK_OK((*t2)->Get("k", &v));
  CHECK_OK((*t1)->Put("k", "1"));
  CHECK_OK((*t2)->Put("k", "2"));
  CHECK_OK((*t1)->Commit());
  CHECK_OK((*t2)->Commit());

  // Merge the two branches back together.
  auto merger = store->CreateSession();
  auto m = store->BeginMerge(merger.get());
  if (!m.ok()) return 1;
  auto forks = (*m)->FindForkPoints((*m)->parents());
  if (!forks.ok()) return 1;
  auto conflicts = (*m)->FindConflictWrites((*m)->parents());
  if (!conflicts.ok()) return 1;
  CHECK_OK((*m)->Put("k", "3"));
  CHECK_OK((*m)->Commit());

  // One GC pass so the gc_* counters exist with real traffic behind them.
  store->PlaceCeiling(merger.get());
  store->RunGarbageCollection();

  // The partitioning subsystem's series (DESIGN.md §10): a 2PC
  // participant on this store, and a router sharing the registry so the
  // catalog covers both roles of the shared tardis_2pc_* names. Neither
  // dials anything — construction alone must register every series.
  cluster::TwoPhaseOptions popt;
  popt.self_endpoint = "self";
  cluster::TwoPhaseParticipant participant(store.get(), std::move(popt));
  CHECK_OK(participant.Recover());
  cluster::RouterOptions ropt;
  ropt.coord_endpoints = {"127.0.0.1:1", "127.0.0.1:2"};
  cluster::Router router(cluster::PartitionMap::Uniform(2), std::move(ropt),
                         store->metrics());

  // The client library's series (DESIGN.md §13): a TardisClient sharing
  // the store's registry. Construction alone registers the family — it
  // never dials the (unreachable) endpoint.
  client::TardisClientOptions copt;
  copt.endpoints = {"127.0.0.1:1"};
  copt.registry = store->metrics();
  client::TardisClient client(copt);

  // Diff the exposed name set against the catalog.
  std::set<std::string> expected(std::begin(kExpectedNames),
                                 std::end(kExpectedNames));
  std::set<std::string> actual;
  const std::vector<obs::Sample> samples = store->metrics()->Collect();
  for (const obs::Sample& s : samples) actual.insert(s.name);

  int rc = 0;
  for (const std::string& name : expected) {
    if (actual.count(name) == 0) {
      fprintf(stderr, "MISSING metric (in catalog, not exposed): %s\n",
              name.c_str());
      rc = 1;
    }
  }
  for (const std::string& name : actual) {
    if (expected.count(name) == 0) {
      fprintf(stderr,
              "UNDOCUMENTED metric (exposed, not in catalog): %s\n"
              "  -> add it to kExpectedNames here and to DESIGN.md §7\n",
              name.c_str());
      rc = 1;
    }
  }

  // The lifecycle counters must have seen the fork and the merge.
  const StoreStats stats = store->stats();
  if (stats.branches_created != 1) {
    fprintf(stderr, "FAIL: expected 1 fork, got %llu\n",
            static_cast<unsigned long long>(stats.branches_created));
    rc = 1;
  }
  if (stats.merges_committed != 1) {
    fprintf(stderr, "FAIL: expected 1 merge, got %llu\n",
            static_cast<unsigned long long>(stats.merges_committed));
    rc = 1;
  }

  if (rc == 0) {
    printf("metrics dump OK: %zu series, catalog of %zu names matches\n",
           samples.size(), expected.size());
  } else {
    fprintf(stderr, "--- full exposition ---\n%s",
            obs::RenderPrometheus(samples).c_str());
  }
  return rc;
}
