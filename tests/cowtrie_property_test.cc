// Property test for the CowTrie (DESIGN.md §12): random branch/fork/
// release/put/delete/merge/diff interleavings cross-checked key-by-key
// against a naive per-branch std::map model.
//
// The model treats Merge(base, src, dest) as the pure per-key 3-way rule
// over the union of the three key sets — which is exactly the contract
// BranchStore documents, independent of how the trie shares structure. The
// trie's pointer-equality shortcuts must therefore be invisible here; any
// divergence is a bug in the sharing logic.
//
// Replay a failure with: TARDIS_COWTRIE_SEED=<seed> ./cowtrie_property_test
// (every assertion message carries the seed).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/cowtrie/cow_trie.h"
#include "util/random.h"

namespace tardis {
namespace {

using BranchId = BranchStore::BranchId;
using Version = BranchStore::Version;

// value + tag; presence = membership in the map.
struct ModelValue {
  std::string value;
  uint64_t tag = 0;
  bool operator==(const ModelValue& o) const {
    return value == o.value && tag == o.tag;
  }
};
using ModelBranch = std::map<std::string, ModelValue>;

// Mirrors the trie's SameVersion: present flag, tag, then bytes.
bool SameModelVersion(const ModelBranch& a, const ModelBranch& b,
                      const std::string& key) {
  auto ia = a.find(key);
  auto ib = b.find(key);
  if ((ia == a.end()) != (ib == b.end())) return false;
  if (ia == a.end()) return true;
  return ia->second == ib->second;
}

// A small keyspace dense in shared prefixes so edge splits, mid-edge
// divergence, and compaction all fire constantly.
std::string RandomKey(Random* rng) {
  static const char* kAtoms[] = {"a", "ab", "b", "ba", "cart", "car",
                                 "carton", "x/", "x/y", "x/yz", "", "q"};
  std::string key = kAtoms[rng->Uniform(sizeof(kAtoms) / sizeof(kAtoms[0]))];
  if (rng->Uniform(3) == 0) {
    key += kAtoms[rng->Uniform(sizeof(kAtoms) / sizeof(kAtoms[0]))];
  }
  return key;
}

class Harness {
 public:
  explicit Harness(uint64_t seed) : seed_(seed), rng_(seed) {
    CreateBranch();
  }

  void Step() {
    const uint64_t roll = rng_.Uniform(100);
    if (roll < 35) {
      PutRandom();
    } else if (roll < 50) {
      DeleteRandom();
    } else if (roll < 63) {
      Fork();
    } else if (roll < 70) {
      Release();
    } else if (roll < 85) {
      MergeRandom();
    } else if (roll < 93) {
      DiffRandom();
    } else {
      CreateBranch();
    }
  }

  // Full key-by-key equivalence of every live branch, plus iteration
  // order and the O(1) size counter.
  void CheckAll() {
    for (const auto& [b, model] : model_) {
      ASSERT_EQ(trie_.BranchSize(b), model.size()) << Ctx(b);
      std::vector<std::pair<std::string, std::string>> walked;
      ASSERT_TRUE(trie_.ForEach(b, [&](const Slice& k, const std::string& v) {
                    walked.emplace_back(k.ToString(), v);
                    return Status::OK();
                  }).ok())
          << Ctx(b);
      ASSERT_EQ(walked.size(), model.size()) << Ctx(b);
      auto it = model.begin();
      for (const auto& [k, v] : walked) {
        ASSERT_EQ(k, it->first) << Ctx(b);
        ASSERT_EQ(v, it->second.value) << Ctx(b) << " key=" << k;
        ++it;
      }
      // Point reads, including misses.
      for (const char* probe : {"a", "ab", "carto", "x/", "zz", ""}) {
        std::string v;
        Status s = trie_.Get(b, probe, &v);
        auto m = model.find(probe);
        if (m == model.end()) {
          ASSERT_TRUE(s.IsNotFound()) << Ctx(b) << " key=" << probe;
        } else {
          ASSERT_TRUE(s.ok()) << Ctx(b) << " key=" << probe;
          ASSERT_EQ(v, m->second.value) << Ctx(b) << " key=" << probe;
        }
      }
    }
    // With every branch released the arena must drain to zero; checked in
    // the destructor path of the test body (trie is scoped per seed).
  }

  size_t branch_total() const { return model_.size(); }

  void ReleaseEverything() {
    while (!model_.empty()) {
      ASSERT_TRUE(trie_.Release(model_.begin()->first).ok());
      model_.erase(model_.begin());
    }
    ASSERT_EQ(trie_.node_count(), 0u) << Ctx(0);
    ASSERT_EQ(trie_.shared_node_refs(), 0u) << Ctx(0);
  }

 private:
  std::string Ctx(BranchId b) const {
    return "seed=" + std::to_string(seed_) + " op=" + std::to_string(ops_) +
           " branch=" + std::to_string(b);
  }

  BranchId PickBranch() {
    auto it = model_.begin();
    std::advance(it, rng_.Uniform(model_.size()));
    return it->first;
  }

  void CreateBranch() {
    const BranchId b = next_branch_++;
    ASSERT_TRUE(trie_.CreateBranch(b).ok()) << Ctx(b);
    model_[b] = {};
    ops_++;
  }

  void Fork() {
    const BranchId parent = PickBranch();
    const BranchId child = next_branch_++;
    ASSERT_TRUE(trie_.Fork(parent, child).ok()) << Ctx(parent);
    model_[child] = model_[parent];
    ops_++;
  }

  void Release() {
    if (model_.size() <= 1) return;
    const BranchId b = PickBranch();
    ASSERT_TRUE(trie_.Release(b).ok()) << Ctx(b);
    model_.erase(b);
    ops_++;
  }

  void PutRandom() {
    const BranchId b = PickBranch();
    const std::string key = RandomKey(&rng_);
    const std::string value = "v" + std::to_string(rng_.Uniform(1000));
    const uint64_t tag = ++tag_counter_;
    ASSERT_TRUE(trie_.Put(b, key,
                          std::make_shared<const std::string>(value), tag)
                    .ok())
        << Ctx(b);
    model_[b][key] = {value, tag};
    ops_++;
  }

  void DeleteRandom() {
    const BranchId b = PickBranch();
    const std::string key = RandomKey(&rng_);
    Status s = trie_.Delete(b, key);
    auto& branch = model_[b];
    if (branch.erase(key) > 0) {
      ASSERT_TRUE(s.ok()) << Ctx(b) << " key=" << key;
    } else {
      ASSERT_TRUE(s.IsNotFound()) << Ctx(b) << " key=" << key;
    }
    ops_++;
  }

  static Version ToVersion(const ModelBranch& m, const std::string& key) {
    auto it = m.find(key);
    Version v;
    if (it != m.end()) {
      v.present = true;
      v.value = std::make_shared<const std::string>(it->second.value);
      v.tag = it->second.tag;
    }
    return v;
  }

  // The documented per-key 3-way rule, applied by brute force. base, src
  // and dest are arbitrary branches — Merge's contract does not require
  // base to be a true ancestor, and testing arbitrary triples covers the
  // pointer-shortcut paths far more aggressively.
  void MergeRandom() {
    const BranchId base = PickBranch();
    const BranchId src = PickBranch();
    const BranchId dest = PickBranch();
    // Half the merges go in-place into dest, half into a fresh branch.
    const BranchId out =
        rng_.Uniform(2) == 0 ? dest : next_branch_++;
    const bool custom = rng_.Uniform(2) == 0;

    const ModelBranch mb = model_[base];
    const ModelBranch ms = model_[src];
    const ModelBranch md = model_[dest];
    std::set<std::string> keys;
    for (const auto& [k, v] : mb) keys.insert(k);
    for (const auto& [k, v] : ms) keys.insert(k);
    for (const auto& [k, v] : md) keys.insert(k);

    uint64_t expect_conflicts = 0;
    ModelBranch expected;
    for (const std::string& k : keys) {
      const bool src_changed = !SameModelVersion(ms, mb, k);
      const bool dest_changed = !SameModelVersion(md, mb, k);
      const ModelBranch* take = nullptr;
      if (!src_changed) {
        take = &md;  // dest's version (== base's when neither changed)
      } else if (!dest_changed) {
        take = &ms;
      } else if (SameModelVersion(ms, md, k)) {
        take = &ms;  // both changed to the same version
      } else {
        expect_conflicts++;
        if (custom) {
          // Custom resolver: concatenate side values ("" for absent),
          // tag = sum — easy to compute identically on both sides.
          auto is = ms.find(k);
          auto id = md.find(k);
          ModelValue mv;
          mv.value = (is != ms.end() ? is->second.value : std::string()) +
                     "|" +
                     (id != md.end() ? id->second.value : std::string());
          mv.tag = (is != ms.end() ? is->second.tag : 0) +
                   (id != md.end() ? id->second.tag : 0);
          expected[k] = mv;
          continue;
        }
        // Default: larger tag wins; a missing side has tag 0 (deletes
        // carry no tag), so the surviving write wins over a delete.
        auto is = ms.find(k);
        auto id = md.find(k);
        const uint64_t ts = is != ms.end() ? is->second.tag : 0;
        const uint64_t td = id != md.end() ? id->second.tag : 0;
        take = ts >= td ? &ms : &md;
      }
      auto it = take->find(k);
      if (it != take->end()) expected[k] = it->second;
    }

    BranchStore::ConflictFn resolve = nullptr;
    if (custom) {
      resolve = [](const Slice&, const Version&, const Version& s,
                   const Version& d) {
        Version out;
        out.present = true;
        out.value = std::make_shared<const std::string>(
            (s.present ? *s.value : std::string()) + "|" +
            (d.present ? *d.value : std::string()));
        out.tag = (s.present ? s.tag : 0) + (d.present ? d.tag : 0);
        return out;
      };
    }
    auto stats = trie_.Merge(base, src, dest, out, resolve);
    ASSERT_TRUE(stats.ok()) << Ctx(out) << " " << stats.status().ToString();
    ASSERT_EQ(stats->conflicts, expect_conflicts)
        << Ctx(out) << " base=" << base << " src=" << src
        << " dest=" << dest;
    model_[out] = expected;
    ops_++;
  }

  // Diff(base, branch) must report exactly the keys whose (present, tag,
  // value) triple differs between the two models.
  void DiffRandom() {
    const BranchId base = PickBranch();
    const BranchId branch = PickBranch();
    const ModelBranch& mb = model_[base];
    const ModelBranch& mx = model_[branch];
    std::set<std::string> expect;
    for (const auto& [k, v] : mb) {
      if (!SameModelVersion(mb, mx, k)) expect.insert(k);
    }
    for (const auto& [k, v] : mx) {
      if (!SameModelVersion(mb, mx, k)) expect.insert(k);
    }
    std::set<std::string> got;
    ASSERT_TRUE(trie_.Diff(base, branch, [&](const Slice& k,
                                             const Version& before,
                                             const Version& after) {
                  got.insert(k.ToString());
                  const std::string key = k.ToString();
                  auto ib = mb.find(key);
                  ASSERT_EQ(before.present, ib != mb.end()) << Ctx(branch);
                  if (before.present) {
                    ASSERT_EQ(*before.value, ib->second.value) << Ctx(branch);
                    ASSERT_EQ(before.tag, ib->second.tag) << Ctx(branch);
                  }
                  auto ix = mx.find(key);
                  ASSERT_EQ(after.present, ix != mx.end()) << Ctx(branch);
                  if (after.present) {
                    ASSERT_EQ(*after.value, ix->second.value) << Ctx(branch);
                    ASSERT_EQ(after.tag, ix->second.tag) << Ctx(branch);
                  }
                }).ok())
        << Ctx(branch);
    ASSERT_EQ(got, expect) << Ctx(branch) << " base=" << base;
    ops_++;
  }

  const uint64_t seed_;
  Random rng_;
  CowTrie trie_;
  std::map<BranchId, ModelBranch> model_;
  BranchId next_branch_ = 1;
  uint64_t tag_counter_ = 0;
  uint64_t ops_ = 0;
};

class CowTrieProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CowTrieProperty, MatchesNaiveModel) {
  // TARDIS_COWTRIE_SEED overrides the suite's seed for replaying one run.
  uint64_t seed = GetParam();
  if (const char* env = getenv("TARDIS_COWTRIE_SEED")) {
    seed = strtoull(env, nullptr, 10);
  }
  Harness h(seed);
  for (int round = 0; round < 12; round++) {
    for (int i = 0; i < 25; i++) h.Step();
    h.CheckAll();
    if (::testing::Test::HasFatalFailure()) return;
  }
  h.ReleaseEverything();
}

// 56 seeds (the acceptance bar is 50+); each runs 300 randomized ops with
// a full-store model check every 25.
INSTANTIATE_TEST_SUITE_P(Seeds, CowTrieProperty,
                         ::testing::Range<uint64_t>(1, 57));

}  // namespace
}  // namespace tardis
