// Tests for the hash-partitioned record store (§6.4's data-partitioning
// sketch) standalone and wired under a TARDiS site.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>

#include "core/record_codec.h"
#include "core/tardis_store.h"
#include "storage/memstore.h"
#include "storage/sharded_record_store.h"

namespace tardis {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "tardis_shard_" + tag + "_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(ShardedStoreTest, RoutesAndRoundTrips) {
  std::vector<std::unique_ptr<RecordStore>> shards;
  for (int i = 0; i < 4; i++) shards.push_back(std::make_unique<MemRecordStore>());
  auto store = ShardedRecordStore::Wrap(std::move(shards));

  std::set<size_t> used;
  for (int i = 0; i < 200; i++) {
    const std::string key = "key" + std::to_string(i);
    used.insert(store->ShardFor(key));
    ASSERT_TRUE(store->Put(key, "v" + std::to_string(i)).ok());
  }
  // The hash spreads keys over all shards.
  EXPECT_EQ(used.size(), 4u);
  EXPECT_EQ(store->size(), 200u);
  for (int i = 0; i < 200; i += 13) {
    std::string v;
    ASSERT_TRUE(store->Get("key" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  ASSERT_TRUE(store->Delete("key0").ok());
  std::string v;
  EXPECT_TRUE(store->Get("key0", &v).IsNotFound());
  EXPECT_TRUE(store->Sync().ok());
}

TEST(ShardedStoreTest, AllVersionsOfAKeyColocate) {
  std::vector<std::unique_ptr<RecordStore>> shards;
  for (int i = 0; i < 8; i++) shards.push_back(std::make_unique<MemRecordStore>());
  auto store = ShardedRecordStore::Wrap(std::move(shards));

  // Composite record keys (user key + state id) for the same user key
  // must route to the same shard regardless of the version.
  for (const char* user_key : {"alpha", "a-much-longer-user-key", "z"}) {
    const size_t shard0 = store->ShardFor(EncodeRecordKey(user_key, 1));
    for (StateId sid = 2; sid < 50; sid++) {
      EXPECT_EQ(store->ShardFor(EncodeRecordKey(user_key, sid)), shard0)
          << user_key << " sid=" << sid;
    }
  }
}

TEST(ShardedStoreTest, ZeroShardsRejected) {
  const std::string dir = FreshDir("zero");
  auto store = ShardedRecordStore::Open(dir, 0);
  EXPECT_TRUE(store.status().IsInvalidArgument());
  std::filesystem::remove_all(dir);
}

TEST(ShardedStoreTest, DiskShardsPersist) {
  const std::string dir = FreshDir("disk");
  {
    auto store = ShardedRecordStore::Open(dir, 3, 64);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(
          (*store)->Put("pk" + std::to_string(i), std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->Sync().ok());
  }
  auto store = ShardedRecordStore::Open(dir, 3, 64);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->size(), 300u);
  std::string v;
  ASSERT_TRUE((*store)->Get("pk255", &v).ok());
  EXPECT_EQ(v, "255");
  // Three shard files exist.
  int files = 0;
  for (auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("shard-", 0) == 0) files++;
  }
  EXPECT_EQ(files, 3);
  std::filesystem::remove_all(dir);
}

TEST(ShardedStoreTest, TardisSiteOnShardedRecords) {
  const std::string dir = FreshDir("site");
  TardisOptions options;
  options.dir = dir;
  options.use_btree = true;
  options.record_shards = 4;
  options.cache_pages = 64;
  options.flush_mode = Wal::FlushMode::kSync;
  StateId old_tip = 0;
  {
    auto store = TardisStore::Open(options);
    ASSERT_TRUE(store.ok());
    auto session = (*store)->CreateSession();
    for (int i = 0; i < 150; i++) {
      auto txn = (*store)->Begin(session.get());
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE((*txn)
                      ->Put("k" + std::to_string(i % 25),
                            "v" + std::to_string(i))
                      .ok());
      ASSERT_TRUE((*txn)->Commit().ok());
    }
    old_tip = session->last_commit()->id();
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Recovery across the sharded backend: values lazily load per shard.
  auto store = TardisStore::Open(options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->dag()->state_count(), 151u);
  auto session = (*store)->CreateSession();
  auto txn = (*store)->Begin(session.get(), StateIdBegin(old_tip));
  ASSERT_TRUE(txn.ok());
  for (int k = 0; k < 25; k++) {
    std::string v;
    ASSERT_TRUE((*txn)->Get("k" + std::to_string(k), &v).ok()) << k;
    EXPECT_EQ(v, "v" + std::to_string(125 + k));
  }
  (*txn)->Abort();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tardis
