// TcpTransport tests: real sockets on 127.0.0.1. Covers basic delivery,
// a two-site fork-then-merge replication scenario (mirroring
// replication_test.cc's MergeReplicatesAndConverges, but across TCP),
// peer death + reconnect with backoff, drop accounting while a peer is
// down, and garbage bytes from a hostile client.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "net/tcp_transport.h"
#include "replication/replicator.h"

namespace tardis {
namespace {

uint16_t PickFreePort() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

bool WaitFor(const std::function<bool()>& cond, uint64_t timeout_ms = 10'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

TcpTransportOptions EndpointOptions(uint32_t site,
                                    const std::vector<uint16_t>& ports) {
  TcpTransportOptions options;
  options.site_id = site;
  options.listen_host = "127.0.0.1";
  options.listen_port = ports[site];
  options.reconnect_initial_ms = 5;
  options.reconnect_max_ms = 100;
  for (uint32_t s = 0; s < ports.size(); s++) {
    if (s != site) options.peers.push_back({s, "127.0.0.1", ports[s]});
  }
  return options;
}

ReplMessage CeilingMsg(uint64_t epoch) {
  ReplMessage m;
  m.type = ReplMessage::Type::kCeilingCommit;
  m.ceiling_epoch = epoch;
  return m;
}

TEST(TcpTransportTest, LoopbackSendReceive) {
  const std::vector<uint16_t> ports = {PickFreePort(), PickFreePort()};
  auto t0 = TcpTransport::Open(EndpointOptions(0, ports));
  auto t1 = TcpTransport::Open(EndpointOptions(1, ports));
  ASSERT_TRUE(t0.ok()) << t0.status().ToString();
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  ASSERT_TRUE(WaitFor([&] { return (*t0)->IsConnected(1); }));

  for (uint64_t i = 0; i < 10; i++) (*t0)->Send(0, 1, CeilingMsg(i));
  ReplMessage got;
  for (uint64_t i = 0; i < 10; i++) {
    ASSERT_TRUE(WaitFor([&] { return (*t1)->Receive(1, &got); }));
    EXPECT_EQ(got.ceiling_epoch, i);  // FIFO per connection
    EXPECT_EQ(got.from_site, 0u);
  }
  EXPECT_FALSE((*t1)->Receive(1, &got));
  EXPECT_GE((*t0)->messages_sent(), 10u);
  EXPECT_EQ((*t1)->messages_delivered(), 10u);
}

TEST(TcpTransportTest, BroadcastSerializesOnceAndFansOut) {
  const std::vector<uint16_t> ports = {PickFreePort(), PickFreePort(),
                                       PickFreePort()};
  StatusOr<std::unique_ptr<TcpTransport>> t[3] = {
      TcpTransport::Open(EndpointOptions(0, ports)),
      TcpTransport::Open(EndpointOptions(1, ports)),
      TcpTransport::Open(EndpointOptions(2, ports))};
  for (int i = 0; i < 3; i++) ASSERT_TRUE(t[i].ok());
  ASSERT_TRUE(WaitFor(
      [&] { return (*t[0])->IsConnected(1) && (*t[0])->IsConnected(2); }));

  (*t[0])->Broadcast(0, CeilingMsg(77));
  ReplMessage got;
  for (int i = 1; i < 3; i++) {
    ASSERT_TRUE(WaitFor([&] { return (*t[i])->Receive(i, &got); }));
    EXPECT_EQ(got.ceiling_epoch, 77u);
  }
}

TEST(TcpTransportTest, DownPeerCountsDroppedNotFatal) {
  const std::vector<uint16_t> ports = {PickFreePort(), PickFreePort()};
  auto t0 = TcpTransport::Open(EndpointOptions(0, ports));
  ASSERT_TRUE(t0.ok());
  // Site 1 never comes up; let the first connect attempt fail.
  ASSERT_TRUE(WaitFor([&] {
    (*t0)->Send(0, 1, CeilingMsg(1));
    return (*t0)->messages_dropped() > 0;
  }));
  EXPECT_FALSE((*t0)->IsConnected(1));
}

TEST(TcpTransportTest, KillAndReconnectViaBackoff) {
  const std::vector<uint16_t> ports = {PickFreePort(), PickFreePort()};
  auto t0 = TcpTransport::Open(EndpointOptions(0, ports));
  ASSERT_TRUE(t0.ok());
  auto t1 = TcpTransport::Open(EndpointOptions(1, ports));
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(WaitFor([&] { return (*t0)->IsConnected(1); }));
  (*t0)->Send(0, 1, CeilingMsg(1));
  ReplMessage got;
  ASSERT_TRUE(WaitFor([&] { return (*t1)->Receive(1, &got); }));

  // Kill site 1. Site 0 must notice, drop traffic, and keep running.
  (*t1)->Shutdown();
  t1->reset();
  ASSERT_TRUE(WaitFor([&] {
    (*t0)->Send(0, 1, CeilingMsg(2));
    return !(*t0)->IsConnected(1) && (*t0)->messages_dropped() > 0;
  }));

  // Resurrect site 1 on the same port; backoff reconnects and traffic
  // flows again.
  auto t1b = TcpTransport::Open(EndpointOptions(1, ports));
  ASSERT_TRUE(t1b.ok());
  ASSERT_TRUE(WaitFor([&] { return (*t0)->IsConnected(1); }));
  (*t0)->Send(0, 1, CeilingMsg(3));
  ASSERT_TRUE(WaitFor([&] { return (*t1b)->Receive(1, &got); }));
  EXPECT_EQ(got.ceiling_epoch, 3u);
}

TEST(TcpTransportTest, BackoffResetsOnHandshakeNotBareTcpConnect) {
  // Regression: the reconnect backoff used to reset as soon as connect(2)
  // succeeded. A listener that accepts but never speaks the protocol (a
  // load balancer health-checking, a half-up peer, a port squatter) made
  // the dialer hammer it at the initial delay forever. The backoff must
  // stay armed until the peer's kHelloAck actually arrives.
  const std::vector<uint16_t> ports = {PickFreePort(), PickFreePort()};

  // An impostor on site 1's port: accepts connections, says nothing.
  const int lfd = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ports[1]);
  ASSERT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(lfd, 8), 0);
  std::atomic<bool> stop{false};
  std::vector<int> accepted;
  std::mutex accepted_mu;
  std::thread impostor([&] {
    while (!stop.load()) {
      const int fd = accept(lfd, nullptr, nullptr);
      if (fd < 0) return;
      std::lock_guard<std::mutex> guard(accepted_mu);
      accepted.push_back(fd);
    }
  });

  auto t0 = TcpTransport::Open(EndpointOptions(0, ports));
  ASSERT_TRUE(t0.ok());
  // TCP connects succeed, but with no kHelloAck the transport must not
  // consider the peer connected (and must not count reconnects).
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE((*t0)->IsConnected(1));
  EXPECT_EQ((*t0)->reconnects(), 0u);

  // The impostor leaves; the real peer takes the port. The dialer's
  // still-armed backoff redials and completes the handshake.
  stop.store(true);
  ::shutdown(lfd, SHUT_RDWR);
  close(lfd);
  impostor.join();
  {
    std::lock_guard<std::mutex> guard(accepted_mu);
    for (int fd : accepted) close(fd);
  }
  auto t1 = TcpTransport::Open(EndpointOptions(1, ports));
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(WaitFor([&] { return (*t0)->IsConnected(1); }));
  (*t0)->Send(0, 1, CeilingMsg(4));
  ReplMessage got;
  ASSERT_TRUE(WaitFor([&] { return (*t1)->Receive(1, &got); }));
  EXPECT_EQ(got.ceiling_epoch, 4u);
}

TEST(TcpTransportTest, GarbageBytesOnWireDoNotCrash) {
  const std::vector<uint16_t> ports = {PickFreePort(), PickFreePort()};
  auto t0 = TcpTransport::Open(EndpointOptions(0, ports));
  auto t1 = TcpTransport::Open(EndpointOptions(1, ports));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(WaitFor([&] { return (*t0)->IsConnected(1); }));

  // A hostile client connects straight to site 1's replication port and
  // spews garbage, including a hostile length prefix.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons((*t1)->listen_port());
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string junk = "\xff\xff\xff\xff trash trash trash";
  junk.resize(4096, '\xee');
  ASSERT_GT(send(fd, junk.data(), junk.size(), MSG_NOSIGNAL), 0);
  close(fd);

  // Legitimate traffic still works.
  (*t0)->Send(0, 1, CeilingMsg(9));
  ReplMessage got;
  ASSERT_TRUE(WaitFor([&] { return (*t1)->Receive(1, &got); }));
  EXPECT_EQ(got.ceiling_epoch, 9u);
}

// ---- replication over real sockets ----------------------------------------

class TcpSite {
 public:
  TcpSite(uint32_t site, const std::vector<uint16_t>& ports) {
    TardisOptions store_options;
    store_options.site_id = site;
    auto store = TardisStore::Open(store_options);
    EXPECT_TRUE(store.ok());
    store_ = std::move(*store);
    auto transport = TcpTransport::Open(EndpointOptions(site, ports));
    EXPECT_TRUE(transport.ok()) << transport.status().ToString();
    transport_ = std::move(*transport);
    replicator_ = std::make_unique<Replicator>(store_.get(), transport_.get(),
                                               site);
    replicator_->Start();
    session_ = store_->CreateSession();
  }
  ~TcpSite() {
    replicator_->Stop();
    transport_->Shutdown();
  }

  void Put(const std::string& k, const std::string& v) {
    auto txn = store_->Begin(session_.get());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put(k, v).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }

  std::string Get(const std::string& k) {
    auto txn = store_->Begin(session_.get());
    EXPECT_TRUE(txn.ok());
    std::string v;
    Status s = (*txn)->Get(k, &v);
    (*txn)->Abort();
    return s.ok() ? v : "<" + s.ToString() + ">";
  }

  TardisStore* store() { return store_.get(); }
  ClientSession* session() { return session_.get(); }
  TcpTransport* transport() { return transport_.get(); }
  Replicator* replicator() { return replicator_.get(); }

 private:
  std::unique_ptr<TardisStore> store_;
  std::unique_ptr<TcpTransport> transport_;
  std::unique_ptr<Replicator> replicator_;
  std::unique_ptr<ClientSession> session_;
};

TEST(TcpReplicationTest, ForkThenMergeConvergesAcrossSockets) {
  // Mirrors ClusterTest.MergeReplicatesAndConverges over real TCP.
  const std::vector<uint16_t> ports = {PickFreePort(), PickFreePort()};
  TcpSite site0(0, ports);
  TcpSite site1(1, ports);
  // Messages broadcast before the mesh is up are dropped (by design —
  // RequestSync recovers them); wait for both dialed connections first.
  ASSERT_TRUE(WaitFor([&] {
    return site0.transport()->IsConnected(1) &&
           site1.transport()->IsConnected(0);
  }));

  site0.Put("cnt", "5");
  ASSERT_TRUE(WaitFor([&] { return site1.Get("cnt") == "5"; }));

  // Concurrent writes on both sides of the wire fork the DAG everywhere.
  // Partition first so neither commit can sneak across and linearize the
  // other's branch; heal + sync exchanges the (dropped) commits.
  site0.transport()->Partition(0, 1);
  site1.transport()->Partition(1, 0);
  site0.Put("cnt", "6");
  site1.Put("cnt", "7");
  site0.transport()->HealAll();
  site1.transport()->HealAll();
  site0.replicator()->RequestSync();
  site1.replicator()->RequestSync();
  ASSERT_TRUE(WaitFor([&] {
    return site0.store()->dag()->Leaves().size() == 2 &&
           site1.store()->dag()->Leaves().size() == 2;
  }));

  // Merge at site 0 with the fork-point delta rule (5 + 1 + 2 = 8).
  auto m = site0.store()->BeginMerge(site0.session());
  ASSERT_TRUE(m.ok());
  ASSERT_EQ((*m)->parents().size(), 2u);
  auto forks = (*m)->FindForkPoints((*m)->parents());
  ASSERT_TRUE(forks.ok());
  std::string fv;
  ASSERT_TRUE((*m)->GetForId("cnt", (*forks)[0], &fv).ok());
  int result = std::stoi(fv);
  for (StateId p : (*m)->parents()) {
    std::string bv;
    ASSERT_TRUE((*m)->GetForId("cnt", p, &bv).ok());
    result += std::stoi(bv) - std::stoi(fv);
  }
  EXPECT_EQ(result, 8);
  ASSERT_TRUE((*m)->Put("cnt", std::to_string(result)).ok());
  ASSERT_TRUE((*m)->Commit().ok());

  // The merge replicates; both sites converge to one leaf and value 8.
  ASSERT_TRUE(WaitFor([&] {
    return site1.store()->dag()->Leaves().size() == 1 &&
           site1.Get("cnt") == "8";
  }));
  EXPECT_EQ(site0.store()->dag()->Leaves().size(), 1u);
  EXPECT_EQ(site0.Get("cnt"), "8");
}

TEST(TcpReplicationTest, PeerRestartRecoversWithSync) {
  const std::vector<uint16_t> ports = {PickFreePort(), PickFreePort()};
  TcpSite site0(0, ports);
  {
    TcpSite site1(1, ports);
    ASSERT_TRUE(WaitFor([&] {
      return site0.transport()->IsConnected(1) &&
             site1.transport()->IsConnected(0);
    }));
    site0.Put("a", "1");
    ASSERT_TRUE(WaitFor([&] { return site1.Get("a") == "1"; }));
  }  // site 1 dies (transport shut down, store discarded)

  // Commits while the peer is down are dropped at the transport.
  site0.Put("a", "2");
  site0.Put("b", "1");
  ASSERT_TRUE(WaitFor([&] { return site0.transport()->messages_dropped() > 0 ||
                                   !site0.transport()->IsConnected(1); }));

  // A fresh site 1 (empty store) comes back on the same port and pulls
  // everything it missed via recovery sync once reconnected.
  TcpSite site1b(1, ports);
  // Wait for both directions to re-establish (site 0's dialed connection
  // comes back through the backoff path), then pull missed commits.
  ASSERT_TRUE(WaitFor([&] {
    return site1b.transport()->IsConnected(0) &&
           site0.transport()->IsConnected(1);
  }));
  site1b.replicator()->RequestSync();
  ASSERT_TRUE(WaitFor([&] {
    return site1b.Get("a") == "2" && site1b.Get("b") == "1";
  }));
}

}  // namespace
}  // namespace tardis
