// Tests for the garbage collector: ceilings, the three-pass DAG
// compression of Figure 8, record promotion/pruning, and correctness of
// reads across GC.

#include <gtest/gtest.h>

#include <string>

#include "core/tardis_store.h"

namespace tardis {
namespace {

class GcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TardisOptions options;  // in-memory
    auto store = TardisStore::Open(options);
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    session_ = store_->CreateSession();
  }

  void PutCommit(ClientSession* s, const std::string& k,
                 const std::string& v) {
    auto txn = store_->Begin(s);
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Put(k, v).ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }

  std::string MustGet(ClientSession* s, const std::string& k) {
    auto txn = store_->Begin(s);
    EXPECT_TRUE(txn.ok());
    std::string v;
    Status st = (*txn)->Get(k, &v);
    EXPECT_TRUE(st.ok()) << k << ": " << st.ToString();
    (*txn)->Abort();
    return v;
  }

  std::unique_ptr<TardisStore> store_;
  std::unique_ptr<ClientSession> session_;
};

TEST_F(GcTest, NoCeilingNoCompression) {
  for (int i = 0; i < 10; i++) PutCommit(session_.get(), "k", std::to_string(i));
  GcStats stats = store_->RunGarbageCollection();
  EXPECT_EQ(stats.states_deleted, 0u);
  EXPECT_EQ(store_->dag()->state_count(), 11u);
}

TEST_F(GcTest, CeilingCompressesLinearChain) {
  for (int i = 0; i < 20; i++) {
    PutCommit(session_.get(), "k" + std::to_string(i), "v");
  }
  ASSERT_EQ(store_->dag()->state_count(), 21u);
  store_->PlaceCeiling(session_.get());
  GcStats stats = store_->RunGarbageCollection();
  // Everything above the last commit is an interior chain state: all of
  // root..s19 delete except those needed (the ceiling state itself is not
  // marked).
  EXPECT_GE(stats.states_deleted, 19u);
  EXPECT_LE(store_->dag()->state_count(), 2u);
  // The surviving tip still answers every key.
  for (int i = 0; i < 20; i++) {
    EXPECT_EQ(MustGet(session_.get(), "k" + std::to_string(i)), "v");
  }
}

TEST_F(GcTest, RecordPruningDropsSupersededVersions) {
  for (int i = 0; i < 50; i++) PutCommit(session_.get(), "hot", std::to_string(i));
  EXPECT_EQ(store_->kvmap()->version_count(), 50u);
  store_->PlaceCeiling(session_.get());
  GcStats stats = store_->RunGarbageCollection();
  EXPECT_GT(stats.versions_pruned, 40u);
  // Only the latest (and possibly one promoted) version remains.
  EXPECT_LE(store_->kvmap()->version_count(), 2u);
  EXPECT_EQ(MustGet(session_.get(), "hot"), "49");
}

TEST_F(GcTest, ForkPointsSurviveCompression) {
  // Build a fork, advance both branches, put a ceiling on one side: the
  // fork point must survive so the branches stay mergeable.
  PutCommit(session_.get(), "base", "0");
  auto s2 = store_->CreateSession();
  auto t1 = store_->Begin(session_.get());
  auto t2 = store_->Begin(s2.get());
  ASSERT_TRUE(t1.ok() && t2.ok());
  std::string v;
  ASSERT_TRUE((*t1)->Get("base", &v).ok());
  ASSERT_TRUE((*t2)->Get("base", &v).ok());
  ASSERT_TRUE((*t1)->Put("base", "L").ok());
  ASSERT_TRUE((*t2)->Put("base", "R").ok());
  ASSERT_TRUE((*t1)->Commit().ok());
  ASSERT_TRUE((*t2)->Commit().ok());
  for (int i = 0; i < 5; i++) {
    PutCommit(session_.get(), "left" + std::to_string(i), "x");
    PutCommit(s2.get(), "right" + std::to_string(i), "y");
  }
  const size_t before = store_->dag()->state_count();
  store_->PlaceCeiling(session_.get());
  store_->PlaceCeiling(s2.get());
  GcStats stats = store_->RunGarbageCollection();
  EXPECT_GT(stats.states_deleted, 0u);
  EXPECT_LT(store_->dag()->state_count(), before);

  // Merge still works after compression.
  auto merger = store_->CreateSession();
  auto m = store_->BeginMerge(merger.get());
  ASSERT_TRUE(m.ok());
  ASSERT_EQ((*m)->parents().size(), 2u);
  auto forks = (*m)->FindForkPoints((*m)->parents());
  ASSERT_TRUE(forks.ok()) << forks.status().ToString();
  std::string fv;
  ASSERT_TRUE((*m)->GetForId("base", (*forks)[0], &fv).ok());
  ASSERT_TRUE((*m)->Put("base", "merged").ok());
  ASSERT_TRUE((*m)->Commit().ok());
  EXPECT_EQ(MustGet(session_.get(), "base"), "merged");
}

TEST_F(GcTest, PinnedReadStatesAreNotCollected) {
  for (int i = 0; i < 10; i++) PutCommit(session_.get(), "k", std::to_string(i));
  // Hold an open transaction pinning the current tip.
  auto pin_session = store_->CreateSession();
  auto pinned = store_->Begin(pin_session.get());
  ASSERT_TRUE(pinned.ok());
  const StateId pinned_id = (*pinned)->parents()[0];

  for (int i = 10; i < 20; i++) PutCommit(session_.get(), "k", std::to_string(i));
  store_->PlaceCeiling(session_.get());
  store_->RunGarbageCollection();

  // The pinned state must still resolve to itself and serve reads.
  StatePtr s = store_->dag()->Resolve(pinned_id);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->id(), pinned_id);
  std::string v;
  EXPECT_TRUE((*pinned)->Get("k", &v).ok());
  EXPECT_EQ(v, "9");
  (*pinned)->Abort();
}

TEST_F(GcTest, PromotedIdsStillResolveForGetForId) {
  PutCommit(session_.get(), "k", "old");
  const StateId old_id = session_->last_commit()->id();
  for (int i = 0; i < 10; i++) PutCommit(session_.get(), "k", std::to_string(i));
  store_->PlaceCeiling(session_.get());
  store_->RunGarbageCollection();

  // The old state was compressed away; its id resolves to the heir, and
  // getForID returns the heir's view.
  auto txn = store_->Begin(session_.get());
  ASSERT_TRUE(txn.ok());
  std::string v;
  Status s = (*txn)->GetForId("k", old_id, &v);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(v, "9");
  (*txn)->Abort();
}

TEST_F(GcTest, RepeatedGcIsIdempotent) {
  for (int i = 0; i < 30; i++) PutCommit(session_.get(), "k", std::to_string(i));
  store_->PlaceCeiling(session_.get());
  store_->RunGarbageCollection();
  const size_t after_first = store_->dag()->state_count();
  GcStats second = store_->RunGarbageCollection();
  EXPECT_EQ(second.states_deleted, 0u);
  EXPECT_EQ(store_->dag()->state_count(), after_first);
}

TEST_F(GcTest, BackgroundGcThreadRuns) {
  store_->StartGcThread(10);
  for (int i = 0; i < 200; i++) {
    PutCommit(session_.get(), "k", std::to_string(i));
    if (i % 50 == 49) store_->PlaceCeiling(session_.get());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  store_->StopGcThread();
  EXPECT_GT(store_->gc()->TotalStats().states_deleted, 0u);
  EXPECT_EQ(MustGet(session_.get(), "k"), "199");
}

TEST_F(GcTest, WriterConcurrentWithGc) {
  store_->StartGcThread(5);
  for (int i = 0; i < 500; i++) {
    PutCommit(session_.get(), "k" + std::to_string(i % 7), std::to_string(i));
    if (i % 20 == 19) store_->PlaceCeiling(session_.get());
  }
  store_->StopGcThread();
  // Latest values survive whatever the GC did.
  for (int k = 0; k < 7; k++) {
    int latest = -1;
    for (int i = 0; i < 500; i++) {
      if (i % 7 == k) latest = i;
    }
    EXPECT_EQ(MustGet(session_.get(), "k" + std::to_string(k)),
              std::to_string(latest));
  }
}

}  // namespace
}  // namespace tardis
