// Tests for the replication layer: the simulated network, remote apply
// with the StateID constraint, deferred (cached) transactions, cross-site
// convergence of branches, partitions, recovery sync, and GC coordination.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "replication/cluster.h"

namespace tardis {
namespace {

void PutCommit(TardisStore* store, ClientSession* s, const std::string& k,
               const std::string& v) {
  auto txn = store->Begin(s);
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Put(k, v).ok());
  ASSERT_TRUE((*txn)->Commit().ok());
}

std::string MustGet(TardisStore* store, ClientSession* s,
                    const std::string& k) {
  auto txn = store->Begin(s);
  EXPECT_TRUE(txn.ok());
  std::string v;
  Status st = (*txn)->Get(k, &v);
  EXPECT_TRUE(st.ok()) << k << ": " << st.ToString();
  (*txn)->Abort();
  return v;
}

TEST(SimNetworkTest, DeliversInFifoOrderPerLink) {
  SimNetwork net(2);
  for (int i = 0; i < 5; i++) {
    ReplMessage m;
    m.ceiling_epoch = i;
    net.Send(0, 1, m);
  }
  ReplMessage got;
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(net.Receive(1, &got));
    EXPECT_EQ(got.ceiling_epoch, static_cast<uint64_t>(i));
    EXPECT_EQ(got.from_site, 0u);
  }
  EXPECT_FALSE(net.Receive(1, &got));
}

TEST(SimNetworkTest, LatencyDelaysDelivery) {
  NetworkOptions options;
  options.latency_us = 50'000;  // 50 ms
  SimNetwork net(2, options);
  ReplMessage m;
  net.Send(0, 1, m);
  ReplMessage got;
  EXPECT_FALSE(net.Receive(1, &got));  // not due yet
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(net.Receive(1, &got));
}

TEST(SimNetworkTest, PartitionDropsAndHealRestores) {
  SimNetwork net(2);
  net.Partition(0, 1);
  ReplMessage m;
  net.Send(0, 1, m);
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.Heal(0, 1);
  net.Send(0, 1, m);
  ReplMessage got;
  EXPECT_TRUE(net.Receive(1, &got));
}

TEST(SimNetworkTest, NoSelfDelivery) {
  SimNetwork net(2);
  ReplMessage m;
  net.Send(0, 0, m);
  ReplMessage got;
  EXPECT_FALSE(net.Receive(0, &got));
  EXPECT_EQ(net.messages_sent(), 0u);
}

class ClusterTest : public ::testing::Test {
 protected:
  void Open(size_t sites = 2, GcCoordination gc = GcCoordination::kOptimistic) {
    ClusterOptions options;
    options.num_sites = sites;
    options.gc_mode = gc;
    auto cluster = Cluster::Open(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);
    cluster_->Start();
  }
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterTest, SingleCommitReplicates) {
  Open(2);
  auto session = cluster_->site(0)->CreateSession();
  PutCommit(cluster_->site(0), session.get(), "k", "v");
  ASSERT_TRUE(cluster_->WaitQuiescent());
  auto remote_session = cluster_->site(1)->CreateSession();
  EXPECT_EQ(MustGet(cluster_->site(1), remote_session.get(), "k"), "v");
  EXPECT_EQ(cluster_->site(1)->stats().remote_applied, 1u);
}

TEST_F(ClusterTest, ChainReplicatesInOrder) {
  Open(3);
  auto session = cluster_->site(0)->CreateSession();
  for (int i = 0; i < 20; i++) {
    PutCommit(cluster_->site(0), session.get(), "k", std::to_string(i));
  }
  ASSERT_TRUE(cluster_->WaitQuiescent());
  for (size_t s = 1; s < 3; s++) {
    auto remote = cluster_->site(s)->CreateSession();
    EXPECT_EQ(MustGet(cluster_->site(s), remote.get(), "k"), "19");
    EXPECT_EQ(cluster_->site(s)->dag()->state_count(), 21u);
  }
}

TEST_F(ClusterTest, ConcurrentRemoteWritesForkEverywhere) {
  Open(2);
  auto s0 = cluster_->site(0)->CreateSession();
  auto s1 = cluster_->site(1)->CreateSession();
  // Both sites write the same key concurrently. The link is severed for
  // the two commits: if the first broadcast landed before the second
  // Begin picked its read state, the histories would linearize and no
  // fork would form (a real scheduling, but not the one under test).
  cluster_->network()->Partition(0, 1);
  PutCommit(cluster_->site(0), s0.get(), "page", "from-site-0");
  PutCommit(cluster_->site(1), s1.get(), "page", "from-site-1");
  cluster_->network()->HealAll();
  cluster_->replicator(0)->RequestSync();
  cluster_->replicator(1)->RequestSync();
  ASSERT_TRUE(cluster_->WaitQuiescent());
  // Both sites now hold both branches.
  EXPECT_EQ(cluster_->site(0)->dag()->Leaves().size(), 2u);
  EXPECT_EQ(cluster_->site(1)->dag()->Leaves().size(), 2u);
  // Each site's client still reads its own write (inter-branch isolation
  // + Ancestor begin).
  EXPECT_EQ(MustGet(cluster_->site(0), s0.get(), "page"), "from-site-0");
  EXPECT_EQ(MustGet(cluster_->site(1), s1.get(), "page"), "from-site-1");
}

TEST_F(ClusterTest, MergeReplicatesAndConverges) {
  Open(2);
  auto s0 = cluster_->site(0)->CreateSession();
  auto s1 = cluster_->site(1)->CreateSession();
  PutCommit(cluster_->site(0), s0.get(), "cnt", "5");
  ASSERT_TRUE(cluster_->WaitQuiescent());
  // Fork deterministically: sever the link so neither write can reach
  // the other site before it commits, then heal and recover.
  cluster_->network()->Partition(0, 1);
  PutCommit(cluster_->site(0), s0.get(), "cnt", "6");
  PutCommit(cluster_->site(1), s1.get(), "cnt", "7");
  cluster_->network()->HealAll();
  cluster_->replicator(0)->RequestSync();
  cluster_->replicator(1)->RequestSync();
  ASSERT_TRUE(cluster_->WaitQuiescent());

  // Merge at site 0 using the fork-point delta rule.
  auto m = cluster_->site(0)->BeginMerge(s0.get());
  ASSERT_TRUE(m.ok());
  ASSERT_EQ((*m)->parents().size(), 2u);
  auto forks = (*m)->FindForkPoints((*m)->parents());
  ASSERT_TRUE(forks.ok());
  std::string fv;
  ASSERT_TRUE((*m)->GetForId("cnt", (*forks)[0], &fv).ok());
  EXPECT_EQ(fv, "5");
  int result = 5;
  for (StateId p : (*m)->parents()) {
    std::string bv;
    ASSERT_TRUE((*m)->GetForId("cnt", p, &bv).ok());
    result += std::stoi(bv) - 5;
  }
  EXPECT_EQ(result, 8);  // 5 + 1 + 2
  ASSERT_TRUE((*m)->Put("cnt", std::to_string(result)).ok());
  ASSERT_TRUE((*m)->Commit().ok());
  ASSERT_TRUE(cluster_->WaitQuiescent());

  // The merge state replicated: both sites converge to one leaf.
  EXPECT_EQ(cluster_->site(1)->dag()->Leaves().size(), 1u);
  EXPECT_EQ(MustGet(cluster_->site(1), s1.get(), "cnt"), "8");
}

TEST_F(ClusterTest, PartitionDefersThenConverges) {
  Open(2);
  cluster_->network()->Partition(0, 1);
  auto s0 = cluster_->site(0)->CreateSession();
  auto s1 = cluster_->site(1)->CreateSession();
  for (int i = 0; i < 5; i++) {
    PutCommit(cluster_->site(0), s0.get(), "a", std::to_string(i));
    PutCommit(cluster_->site(1), s1.get(), "b", std::to_string(i));
  }
  // Nothing crossed the partition.
  EXPECT_EQ(cluster_->site(0)->stats().remote_applied, 0u);
  cluster_->network()->HealAll();
  // Post-heal commits replicate; dropped ones are recovered by sync.
  cluster_->replicator(0)->RequestSync();
  cluster_->replicator(1)->RequestSync();
  ASSERT_TRUE(cluster_->WaitQuiescent());
  auto probe0 = cluster_->site(0)->CreateSession();
  auto probe1 = cluster_->site(1)->CreateSession();
  // Site 0 now has site 1's branch and vice versa.
  EXPECT_EQ(cluster_->site(0)->dag()->state_count(), 11u);
  EXPECT_EQ(cluster_->site(1)->dag()->state_count(), 11u);
  EXPECT_EQ(MustGet(cluster_->site(0), s0.get(), "a"), "4");
  EXPECT_EQ(MustGet(cluster_->site(1), s1.get(), "b"), "4");
}

TEST_F(ClusterTest, OutOfOrderDeliveryIsCached) {
  // Send child-before-parent by hand and check the replicator caches it.
  Open(2);
  cluster_->Stop();  // drive pumps manually for determinism

  auto s0 = cluster_->site(0)->CreateSession();
  PutCommit(cluster_->site(0), s0.get(), "k", "1");
  PutCommit(cluster_->site(0), s0.get(), "k", "2");
  // Manually craft the records in reverse order at site 1.
  StatePtr tip = s0->last_commit();
  StatePtr parent = tip->parents()[0];

  CommitRecord child;
  child.guid = tip->guid();
  child.parent_guids = {parent->guid()};
  child.writes.emplace_back("k", std::make_shared<const std::string>("2"));

  CommitRecord first;
  first.guid = parent->guid();
  first.parent_guids = {cluster_->site(0)->dag()->root()->guid()};
  first.writes.emplace_back("k", std::make_shared<const std::string>("1"));

  EXPECT_TRUE(cluster_->site(1)->ApplyRemote(child).IsUnavailable());
  EXPECT_TRUE(cluster_->site(1)->ApplyRemote(first).ok());
  EXPECT_TRUE(cluster_->site(1)->ApplyRemote(child).ok());
  EXPECT_EQ(cluster_->site(1)->dag()->state_count(), 3u);
  // Idempotence on duplicate delivery.
  EXPECT_TRUE(cluster_->site(1)->ApplyRemote(child).ok());
  EXPECT_EQ(cluster_->site(1)->dag()->state_count(), 3u);
}

TEST_F(ClusterTest, PessimisticCeilingWaitsForConsent) {
  Open(2, GcCoordination::kPessimistic);
  cluster_->network()->Partition(0, 1);
  auto s0 = cluster_->site(0)->CreateSession();
  for (int i = 0; i < 10; i++) {
    PutCommit(cluster_->site(0), s0.get(), "k", std::to_string(i));
  }
  // During the partition, consent cannot arrive: GC must not compress.
  cluster_->replicator(0)->PlaceCeiling(s0.get());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  GcStats during = cluster_->site(0)->RunGarbageCollection();
  EXPECT_EQ(during.states_deleted, 0u);

  cluster_->network()->HealAll();
  cluster_->replicator(0)->RequestSync();
  cluster_->replicator(1)->RequestSync();
  ASSERT_TRUE(cluster_->WaitQuiescent());
  // Consent needs the remote site to hold the state: re-request.
  cluster_->replicator(0)->PlaceCeiling(s0.get());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  GcStats after = cluster_->site(0)->RunGarbageCollection();
  EXPECT_GT(after.states_deleted, 0u);
}

// Resilience tests drive the replication clock by hand (StartManual +
// Tick) so heartbeat cadence, suspicion timeouts and consent deadlines
// are exact tick counts rather than wall-clock races.
class ResilienceTest : public ::testing::Test {
 protected:
  void OpenManual(const ClusterOptions& options) {
    auto cluster = Cluster::Open(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);
    for (size_t i = 0; i < cluster_->num_sites(); i++) {
      cluster_->replicator(i)->StartManual();
    }
  }

  /// Delivers every in-flight message, repeatedly, until the mesh is idle.
  void PumpAll() {
    size_t moved;
    do {
      moved = 0;
      for (size_t i = 0; i < cluster_->num_sites(); i++) {
        moved += cluster_->replicator(i)->PumpOnce();
      }
    } while (moved > 0);
  }

  /// One replication time-step at every site, then full delivery.
  void TickAll() {
    for (size_t i = 0; i < cluster_->num_sites(); i++) {
      cluster_->replicator(i)->Tick();
    }
    PumpAll();
  }

  Replicator::PeerHealth PeerAt(size_t site, uint32_t peer) {
    for (const Replicator::PeerHealth& p :
         cluster_->replicator(site)->PeerStates()) {
      if (p.site == peer) return p;
    }
    ADD_FAILURE() << "peer " << peer << " not tracked at site " << site;
    return {};
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ResilienceTest, HeartbeatLivenessTracksDeathAndReturn) {
  ClusterOptions options;
  options.num_sites = 2;
  options.repl.heartbeat_every_ticks = 1;
  options.repl.suspect_after_ticks = 2;
  options.repl.dead_after_ticks = 4;
  OpenManual(options);

  // Heartbeats flowing both ways: everyone stays alive.
  for (int i = 0; i < 3; i++) TickAll();
  EXPECT_EQ(PeerAt(0, 1).state, PeerLiveness::kAlive);
  EXPECT_EQ(PeerAt(1, 0).state, PeerLiveness::kAlive);

  // Site 1 goes silent; site 0's clock keeps running. The silence crosses
  // the suspect threshold first, then the dead threshold.
  bool saw_suspect = false;
  for (int i = 0; i < 6; i++) {
    cluster_->replicator(0)->Tick();
    cluster_->replicator(0)->PumpOnce();
    if (PeerAt(0, 1).state == PeerLiveness::kSuspect) saw_suspect = true;
  }
  EXPECT_TRUE(saw_suspect);
  EXPECT_EQ(PeerAt(0, 1).state, PeerLiveness::kDead);

  // The peer speaks again: back to alive, with the flap recorded and the
  // next death threshold doubled (exponential suspicion).
  cluster_->replicator(1)->Tick();
  cluster_->replicator(0)->PumpOnce();
  const Replicator::PeerHealth back = PeerAt(0, 1);
  EXPECT_EQ(back.state, PeerLiveness::kAlive);
  EXPECT_EQ(back.flaps, 1u);
  EXPECT_EQ(back.dead_after_ticks, 8u);
}

TEST_F(ResilienceTest, AntiEntropyRepairsDroppedGossipWithoutSync) {
  ClusterOptions options;
  options.num_sites = 2;
  options.repl.heartbeat_every_ticks = 1;
  OpenManual(options);

  // Every broadcast during the partition is lost.
  cluster_->network()->Partition(0, 1);
  auto s0 = cluster_->site(0)->CreateSession();
  for (int i = 0; i < 5; i++) {
    PutCommit(cluster_->site(0), s0.get(), "k", std::to_string(i));
  }
  EXPECT_EQ(cluster_->site(1)->dag()->state_count(), 1u);

  // Heal and let the heartbeat digests do the repair — no RequestSync.
  cluster_->network()->HealAll();
  for (int i = 0; i < 8 && cluster_->site(1)->dag()->state_count() < 6; i++) {
    TickAll();
  }
  EXPECT_EQ(cluster_->site(1)->dag()->state_count(), 6u);
  auto s1 = cluster_->site(1)->CreateSession();
  EXPECT_EQ(MustGet(cluster_->site(1), s1.get(), "k"), "4");
}

TEST_F(ResilienceTest, SnapshotBootstrapsSiteBehindArchiveHorizon) {
  ClusterOptions options;
  options.num_sites = 2;
  options.repl.heartbeat_every_ticks = 1;
  options.repl.archive_horizon = 8;  // force the early history out
  OpenManual(options);

  cluster_->network()->Partition(0, 1);
  auto s0 = cluster_->site(0)->CreateSession();
  for (int i = 0; i < 50; i++) {
    PutCommit(cluster_->site(0), s0.get(), "k", std::to_string(i));
  }
  cluster_->network()->HealAll();

  // Site 1's floor (0) is below site 0's trimmed archive: replaying the
  // log cannot help, a snapshot must be shipped.
  for (int i = 0; i < 20 && cluster_->site(1)->dag()->state_count() < 51;
       i++) {
    TickAll();
  }
  EXPECT_EQ(cluster_->site(1)->dag()->state_count(), 51u);
  auto s1 = cluster_->site(1)->CreateSession();
  EXPECT_EQ(MustGet(cluster_->site(1), s1.get(), "k"), "49");

  // The bootstrapped site keeps working as a first-class writer: its own
  // commits replicate back (the snapshot advanced no floors it owns, and
  // adopted floors protect against guid reuse).
  PutCommit(cluster_->site(1), s1.get(), "k2", "after-bootstrap");
  for (int i = 0; i < 4 && cluster_->site(0)->dag()->state_count() < 52; i++) {
    TickAll();
  }
  EXPECT_EQ(cluster_->site(0)->dag()->state_count(), 52u);
}

TEST_F(ResilienceTest, OrphanCacheIsBounded) {
  ClusterOptions options;
  options.num_sites = 2;
  options.repl.max_pending = 2;
  OpenManual(options);

  // Four orphan commits whose parent never arrives: the pending cache
  // must hold only the configured cap, evicting the oldest.
  for (uint64_t i = 0; i < 4; i++) {
    ReplMessage msg;
    msg.type = ReplMessage::Type::kCommit;
    msg.commit.guid = GlobalStateId{1, 100 + i};
    msg.commit.parent_guids = {GlobalStateId{1, 99}};  // unknown parent
    cluster_->network()->Send(1, 0, std::move(msg));
  }
  cluster_->replicator(0)->PumpOnce();
  EXPECT_EQ(cluster_->replicator(0)->pending_count(), 2u);
}

TEST_F(ResilienceTest, PessimisticConsentExcludesDeadPeerAndRedelivers) {
  ClusterOptions options;
  options.num_sites = 3;
  options.gc_mode = GcCoordination::kPessimistic;
  options.repl.heartbeat_every_ticks = 1;
  options.repl.suspect_after_ticks = 2;
  options.repl.dead_after_ticks = 4;
  OpenManual(options);

  auto s0 = cluster_->site(0)->CreateSession();
  for (int i = 0; i < 10; i++) {
    PutCommit(cluster_->site(0), s0.get(), "k", std::to_string(i));
  }
  PumpAll();
  ASSERT_EQ(cluster_->site(2)->dag()->state_count(), 11u);

  // Site 2 crashes (silent + unreachable).
  cluster_->network()->Partition(0, 2);
  cluster_->network()->Partition(1, 2);
  for (int i = 0; i < 6; i++) {
    cluster_->replicator(0)->Tick();
    cluster_->replicator(1)->Tick();
    cluster_->replicator(0)->PumpOnce();
    cluster_->replicator(1)->PumpOnce();
  }
  ASSERT_EQ(PeerAt(0, 2).state, PeerLiveness::kDead);

  // Consent proceeds with the dead site excluded: only site 1 must answer,
  // and GC may compress — it never wedges on the crashed peer.
  cluster_->replicator(0)->PlaceCeiling(s0.get());
  cluster_->replicator(1)->PumpOnce();  // consent request -> ack
  cluster_->replicator(0)->PumpOnce();  // ack -> ceiling placed + committed
  GcStats at0 = cluster_->site(0)->RunGarbageCollection();
  EXPECT_GT(at0.states_deleted, 0u);

  // The crashed site returns: its first heartbeat flips it alive and the
  // ceiling committed around it is re-delivered, so its own GC catches up.
  cluster_->network()->HealAll();
  cluster_->replicator(2)->Tick();
  cluster_->replicator(0)->PumpOnce();  // hears site 2 -> redelivers
  cluster_->replicator(2)->PumpOnce();  // receives the ceiling commit
  GcStats at2 = cluster_->site(2)->RunGarbageCollection();
  EXPECT_GT(at2.states_deleted, 0u);
}

TEST_F(ResilienceTest, ConsentTimeoutDefersAndRetriesCleanly) {
  ClusterOptions options;
  options.num_sites = 2;
  options.gc_mode = GcCoordination::kPessimistic;
  options.repl.heartbeat_every_ticks = 0;  // no failure detector: the peer
                                           // is unreachable but not "dead"
  options.repl.ceiling_deadline_ticks = 3;
  options.repl.ceiling_max_retries = 0;
  options.repl.deferred_retry_every_ticks = 8;
  OpenManual(options);

  auto s0 = cluster_->site(0)->CreateSession();
  for (int i = 0; i < 5; i++) {
    PutCommit(cluster_->site(0), s0.get(), "k", std::to_string(i));
  }
  PumpAll();
  cluster_->network()->Partition(0, 1);

  // The consent round cannot complete; at its deadline it parks on the
  // deferred list instead of wedging, and GC stays pessimistic.
  cluster_->replicator(0)->PlaceCeiling(s0.get());
  for (int i = 0; i < 5; i++) cluster_->replicator(0)->Tick();  // ticks 1..5
  EXPECT_EQ(cluster_->replicator(0)->deferred_consent_count(), 1u);
  GcStats during = cluster_->site(0)->RunGarbageCollection();
  EXPECT_EQ(during.states_deleted, 0u);

  // After the heal, the periodic deferred retry re-runs the round and the
  // ceiling lands.
  cluster_->network()->HealAll();
  for (int i = 0; i < 3; i++) cluster_->replicator(0)->Tick();  // ticks 6..8
  cluster_->replicator(1)->PumpOnce();
  cluster_->replicator(0)->PumpOnce();
  EXPECT_EQ(cluster_->replicator(0)->deferred_consent_count(), 0u);
  GcStats after = cluster_->site(0)->RunGarbageCollection();
  EXPECT_GT(after.states_deleted, 0u);
}

TEST_F(ClusterTest, ThreeSiteAllToAllConvergence) {
  Open(3);
  std::vector<std::unique_ptr<ClientSession>> sessions;
  for (size_t s = 0; s < 3; s++) {
    sessions.push_back(cluster_->site(s)->CreateSession());
  }
  for (int round = 0; round < 5; round++) {
    for (size_t s = 0; s < 3; s++) {
      PutCommit(cluster_->site(s), sessions[s].get(),
                "site" + std::to_string(s), std::to_string(round));
    }
  }
  ASSERT_TRUE(cluster_->WaitQuiescent());
  for (size_t s = 0; s < 3; s++) {
    EXPECT_EQ(cluster_->site(s)->dag()->state_count(), 16u);  // 1 + 15
  }
}

}  // namespace
}  // namespace tardis
