// Unit tests for the partitioning subsystem (src/cluster/): PartitionMap
// hash-range routing and serialization, and the TwoPhaseParticipant's
// prepare/decide/recovery state machine including fork-on-conflict.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/framed_client.h"
#include "cluster/partition_map.h"
#include "cluster/twopc.h"
#include "core/tardis_store.h"
#include "core/transaction.h"
#include "fault/fault_registry.h"
#include "replication/message.h"

namespace tardis {
namespace cluster {
namespace {

constexpr uint64_t kRingEnd = 1ull << 32;

// ---- PartitionMap ----------------------------------------------------------

TEST(PartitionMapTest, SinglePartitionOwnsTheWholeRing) {
  const PartitionMap map = PartitionMap::Uniform(1);
  EXPECT_EQ(map.partition_count(), 1u);
  EXPECT_EQ(map.Range(0), std::make_pair(uint64_t{0}, kRingEnd));
  EXPECT_EQ(map.PartitionForHash(0), 0u);
  EXPECT_EQ(map.PartitionForHash(0xFFFFFFFFu), 0u);
  EXPECT_EQ(map.PartitionForKey("anything"), 0u);
}

TEST(PartitionMapTest, UniformRangesCoverAndPartition) {
  const PartitionMap map = PartitionMap::Uniform(4);
  EXPECT_EQ(map.partition_count(), 4u);
  // Contiguous, covering, non-overlapping.
  uint64_t expect_start = 0;
  for (uint32_t i = 0; i < 4; i++) {
    const auto [start, end] = map.Range(i);
    EXPECT_EQ(start, expect_start);
    EXPECT_LT(start, end);
    expect_start = end;
  }
  EXPECT_EQ(expect_start, kRingEnd);
  // Boundary hashes: the first position of each range belongs to it, the
  // position just below belongs to the previous range.
  for (uint32_t i = 0; i < 4; i++) {
    const auto [start, end] = map.Range(i);
    EXPECT_EQ(map.PartitionForHash(static_cast<uint32_t>(start)), i);
    EXPECT_EQ(map.PartitionForHash(static_cast<uint32_t>(end - 1)), i);
    if (i > 0) {
      EXPECT_EQ(map.PartitionForHash(static_cast<uint32_t>(start - 1)), i - 1);
    }
  }
}

TEST(PartitionMapTest, FromSplitPointsValidation) {
  // Empty split list = single partition.
  auto single = PartitionMap::FromSplitPoints({});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->partition_count(), 1u);

  auto two = PartitionMap::FromSplitPoints({kRingEnd / 2});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->partition_count(), 2u);
  EXPECT_EQ(two->PartitionForHash(0), 0u);
  EXPECT_EQ(two->PartitionForHash(0x80000000u), 1u);

  EXPECT_FALSE(PartitionMap::FromSplitPoints({0}).ok());         // not in (0, 2^32)
  EXPECT_FALSE(PartitionMap::FromSplitPoints({kRingEnd}).ok());  // not in (0, 2^32)
  EXPECT_FALSE(PartitionMap::FromSplitPoints({10, 10}).ok());    // not ascending
  EXPECT_FALSE(PartitionMap::FromSplitPoints({20, 10}).ok());    // not ascending
}

TEST(PartitionMapTest, RoutingIsStableUnderReSerialization) {
  auto original = PartitionMap::FromSplitPoints({1000, 0x40000000u, kRingEnd - 1});
  ASSERT_TRUE(original.ok());
  const std::string bytes = original->Serialize();
  auto copy = PartitionMap::Deserialize(bytes);
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(*copy == *original);
  // Every sampled key routes identically through the copy — the property
  // the router and the daemons rely on to agree without coordination.
  for (int i = 0; i < 1000; i++) {
    const std::string key = "key" + std::to_string(i * 7919);
    EXPECT_EQ(original->PartitionForKey(key), copy->PartitionForKey(key));
  }
  // And a second round trip is bit-exact.
  EXPECT_EQ(copy->Serialize(), bytes);
}

TEST(PartitionMapTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(PartitionMap::Deserialize("").ok());
  EXPECT_FALSE(PartitionMap::Deserialize("\xff\xff\xff").ok());
  const std::string good = PartitionMap::Uniform(3).Serialize();
  // Truncations and trailing bytes are corruption, not maps.
  for (size_t n = 0; n < good.size(); n++) {
    EXPECT_FALSE(PartitionMap::Deserialize(good.substr(0, n)).ok());
  }
  EXPECT_FALSE(PartitionMap::Deserialize(good + "x").ok());
}

TEST(PartitionMapTest, HashIsDeterministic) {
  EXPECT_EQ(PartitionMap::HashKey("alpha"), PartitionMap::HashKey("alpha"));
  EXPECT_NE(PartitionMap::HashKey("alpha"), PartitionMap::HashKey("beta"));
}

TEST(ParseEndpointTest, HostPortForms) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseEndpoint("127.0.0.1:9000", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  EXPECT_FALSE(ParseEndpoint("no-port", &host, &port).ok());
  EXPECT_FALSE(ParseEndpoint("host:", &host, &port).ok());
  EXPECT_FALSE(ParseEndpoint("host:99999", &host, &port).ok());
}

// ---- TwoPhaseParticipant ---------------------------------------------------

class TwoPcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tardis_cluster_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this))))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    OpenStore();
    OpenParticipant();
  }

  void TearDown() override {
    participant_.reset();
    store_.reset();
    fault::FaultRegistry::Global().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  void OpenStore() {
    TardisOptions o;
    o.site_id = 0;
    auto store = TardisStore::Open(o);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store.value());
  }

  void OpenParticipant() {
    TwoPhaseOptions o;
    o.dir = dir_;
    o.self_endpoint = "self";
    o.resolve_grace_ms = 0;
    o.decided_retention_ms = decided_retention_ms_;
    o.query_peer = [this](const std::string&, uint64_t,
                          TwoPhaseDecision* decision) {
      *decision = peer_answer_;
      return peer_reachable_ ? Status::OK()
                             : Status::Unavailable("peer down");
    };
    participant_ =
        std::make_unique<TwoPhaseParticipant>(store_.get(), std::move(o));
    ASSERT_TRUE(participant_->Recover().ok());
  }

  ReplMessage MakePrepare(uint64_t txn_id, const std::string& key,
                          const std::string& value) {
    ReplMessage m;
    m.type = ReplMessage::Type::kPrepare;
    m.txn_id = txn_id;
    m.endpoints = {"self", "peer"};
    m.commit.writes.emplace_back(key,
                                 std::make_shared<const std::string>(value));
    return m;
  }

  ReplMessage MakeDecide(uint64_t txn_id, TwoPhaseDecision d) {
    ReplMessage m;
    m.type = ReplMessage::Type::kDecide;
    m.txn_id = txn_id;
    m.decision = static_cast<uint8_t>(d);
    return m;
  }

  std::string Read(const std::string& key) {
    auto session = store_->CreateSession();
    auto txn = store_->Begin(session.get());
    if (!txn.ok()) return "<begin-error>";
    std::string v;
    Status s = txn.value()->Get(key, &v);
    txn.value()->Abort();
    if (s.IsNotFound()) return "<notfound>";
    return s.ok() ? v : "<error>";
  }

  void CommitLocal(const std::string& key, const std::string& value) {
    auto session = store_->CreateSession();
    auto txn = store_->Begin(session.get());
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn.value()->Put(key, value).ok());
    ASSERT_TRUE(txn.value()->Commit().ok());
  }

  std::string dir_;
  std::unique_ptr<TardisStore> store_;
  std::unique_ptr<TwoPhaseParticipant> participant_;
  TwoPhaseDecision peer_answer_ = TwoPhaseDecision::kUnknown;
  bool peer_reachable_ = true;
  uint64_t decided_retention_ms_ = 600'000;
};

TEST_F(TwoPcTest, PrepareThenCommit) {
  ReplMessage ack;
  ASSERT_TRUE(participant_->HandlePrepare(MakePrepare(7, "k", "v"), &ack).ok());
  EXPECT_EQ(ack.type, ReplMessage::Type::kPrepareAck);
  EXPECT_EQ(ack.decision, static_cast<uint8_t>(TwoPhaseDecision::kCommit));
  EXPECT_EQ(participant_->in_doubt_count(), 1u);
  // Staged, not committed: the write is not visible yet.
  EXPECT_EQ(Read("k"), "<notfound>");

  ASSERT_TRUE(
      participant_->HandleDecide(MakeDecide(7, TwoPhaseDecision::kCommit), &ack)
          .ok());
  EXPECT_EQ(ack.type, ReplMessage::Type::kDecideAck);
  EXPECT_FALSE(ack.forked);
  EXPECT_EQ(participant_->in_doubt_count(), 0u);
  EXPECT_EQ(participant_->DecisionFor(7), TwoPhaseDecision::kCommit);
  EXPECT_EQ(Read("k"), "v");
}

TEST_F(TwoPcTest, PrepareThenAbortLeavesNothing) {
  ReplMessage ack;
  ASSERT_TRUE(participant_->HandlePrepare(MakePrepare(8, "k", "v"), &ack).ok());
  ASSERT_TRUE(
      participant_->HandleDecide(MakeDecide(8, TwoPhaseDecision::kAbort), &ack)
          .ok());
  EXPECT_EQ(participant_->DecisionFor(8), TwoPhaseDecision::kAbort);
  EXPECT_EQ(participant_->in_doubt_count(), 0u);
  EXPECT_EQ(Read("k"), "<notfound>");
}

TEST_F(TwoPcTest, DuplicatePrepareAndDecideAreIdempotent) {
  ReplMessage ack;
  ASSERT_TRUE(participant_->HandlePrepare(MakePrepare(9, "k", "v"), &ack).ok());
  ASSERT_TRUE(participant_->HandlePrepare(MakePrepare(9, "k", "v"), &ack).ok());
  EXPECT_EQ(ack.decision, static_cast<uint8_t>(TwoPhaseDecision::kCommit));
  EXPECT_EQ(participant_->in_doubt_count(), 1u);

  const uint64_t commits_before = store_->stats().commits;
  ASSERT_TRUE(
      participant_->HandleDecide(MakeDecide(9, TwoPhaseDecision::kCommit), &ack)
          .ok());
  ASSERT_TRUE(
      participant_->HandleDecide(MakeDecide(9, TwoPhaseDecision::kCommit), &ack)
          .ok());
  EXPECT_EQ(ack.decision, static_cast<uint8_t>(TwoPhaseDecision::kCommit));
  // The second decide re-acked without committing again.
  EXPECT_EQ(store_->stats().commits, commits_before + 1);
}

TEST_F(TwoPcTest, DecideForUnknownTxn) {
  // Abort for a transaction never prepared here is fine (presumed abort);
  // commit is a protocol violation — the router cannot have collected our
  // ack.
  ReplMessage ack;
  EXPECT_TRUE(
      participant_->HandleDecide(MakeDecide(99, TwoPhaseDecision::kAbort), &ack)
          .ok());
  EXPECT_EQ(ack.decision, static_cast<uint8_t>(TwoPhaseDecision::kAbort));
  EXPECT_FALSE(participant_
                   ->HandleDecide(MakeDecide(98, TwoPhaseDecision::kCommit),
                                  &ack)
                   .ok());
}

TEST_F(TwoPcTest, TxnStatusViews) {
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(10, "k", "v"), &ack).ok());
  ReplMessage status_req;
  status_req.type = ReplMessage::Type::kTxnStatus;
  status_req.txn_id = 10;
  ReplMessage resp;
  ASSERT_TRUE(participant_->HandleTxnStatus(status_req, &resp).ok());
  EXPECT_EQ(resp.decision, static_cast<uint8_t>(TwoPhaseDecision::kUnknown));

  ASSERT_TRUE(participant_
                  ->HandleDecide(MakeDecide(10, TwoPhaseDecision::kCommit),
                                 &ack)
                  .ok());
  ASSERT_TRUE(participant_->HandleTxnStatus(status_req, &resp).ok());
  EXPECT_EQ(resp.decision, static_cast<uint8_t>(TwoPhaseDecision::kCommit));

  status_req.txn_id = 12345;  // never seen: presumed abort
  ASSERT_TRUE(participant_->HandleTxnStatus(status_req, &resp).ok());
  EXPECT_EQ(resp.decision, static_cast<uint8_t>(TwoPhaseDecision::kAbort));
}

TEST_F(TwoPcTest, ForkOnConflictInsteadOfAbort) {
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(11, "k", "twopc"), &ack).ok());
  // A concurrent local commit takes the same key inside the window.
  CommitLocal("k", "rogue");
  const uint64_t forks_before = store_->stats().branches_created;
  ASSERT_TRUE(participant_
                  ->HandleDecide(MakeDecide(11, TwoPhaseDecision::kCommit),
                                 &ack)
                  .ok());
  EXPECT_EQ(ack.decision, static_cast<uint8_t>(TwoPhaseDecision::kCommit));
  EXPECT_TRUE(ack.forked);
  EXPECT_EQ(store_->stats().branches_created, forks_before + 1);
}

TEST_F(TwoPcTest, RecoveryBringsBackInDoubtPrepares) {
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(20, "r", "v20"), &ack).ok());
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(21, "r2", "v21"), &ack).ok());
  ASSERT_TRUE(participant_
                  ->HandleDecide(MakeDecide(21, TwoPhaseDecision::kCommit),
                                 &ack)
                  .ok());

  // Crash: the participant dies (staged txn lost), the log survives.
  participant_.reset();
  OpenParticipant();
  EXPECT_EQ(participant_->in_doubt_count(), 1u);  // txn 20 only
  EXPECT_EQ(participant_->DecisionFor(21), TwoPhaseDecision::kCommit);

  // A decide-commit after recovery re-applies the logged write set.
  ASSERT_TRUE(participant_
                  ->HandleDecide(MakeDecide(20, TwoPhaseDecision::kCommit),
                                 &ack)
                  .ok());
  EXPECT_EQ(Read("r"), "v20");
}

TEST_F(TwoPcTest, ResolvePresumesAbortWhenAllPeersUnknown) {
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(30, "k", "v"), &ack).ok());
  peer_answer_ = TwoPhaseDecision::kUnknown;
  peer_reachable_ = true;
  EXPECT_EQ(participant_->ResolveInDoubt(), 1u);
  EXPECT_EQ(participant_->DecisionFor(30), TwoPhaseDecision::kAbort);
  EXPECT_EQ(Read("k"), "<notfound>");
}

TEST_F(TwoPcTest, ResolveAdoptsPeerDecisionAndWaitsWhileUnreachable) {
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(31, "k", "v"), &ack).ok());
  // Unreachable peer: stay in doubt, never presume.
  peer_reachable_ = false;
  EXPECT_EQ(participant_->ResolveInDoubt(), 0u);
  EXPECT_EQ(participant_->in_doubt_count(), 1u);
  // Peer comes back knowing the commit: adopt it.
  peer_reachable_ = true;
  peer_answer_ = TwoPhaseDecision::kCommit;
  EXPECT_EQ(participant_->ResolveInDoubt(), 1u);
  EXPECT_EQ(participant_->DecisionFor(31), TwoPhaseDecision::kCommit);
  EXPECT_EQ(Read("k"), "v");
}

TEST_F(TwoPcTest, TornLogTailIsTruncatedNotBuried) {
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(50, "t", "v50"), &ack).ok());
  participant_.reset();
  // Crash mid-append: garbage after the last complete frame.
  {
    std::ofstream f(dir_ + "/twopc.log",
                    std::ios::binary | std::ios::app);
    f << "torn-partial-frame";
  }
  OpenParticipant();
  EXPECT_EQ(participant_->in_doubt_count(), 1u);

  // Recovery must have truncated the torn bytes, not just skipped them:
  // with O_APPEND the next records would land behind the corrupt frame
  // and the following recovery would silently stop before them.
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(51, "t2", "v51"), &ack).ok());
  ASSERT_TRUE(participant_
                  ->HandleDecide(MakeDecide(50, TwoPhaseDecision::kCommit),
                                 &ack)
                  .ok());
  participant_.reset();
  OpenParticipant();
  EXPECT_EQ(participant_->in_doubt_count(), 1u);  // txn 51
  EXPECT_EQ(participant_->DecisionFor(50), TwoPhaseDecision::kCommit);
}

TEST_F(TwoPcTest, TxnStatusPresumedAbortIsBinding) {
  ReplMessage status_req;
  status_req.type = ReplMessage::Type::kTxnStatus;
  status_req.txn_id = 60;
  ReplMessage resp;
  ASSERT_TRUE(participant_->HandleTxnStatus(status_req, &resp).ok());
  EXPECT_EQ(resp.decision, static_cast<uint8_t>(TwoPhaseDecision::kAbort));

  // The querying peer aborted on our answer, so a prepare from a
  // still-live slow router arriving afterwards must be voted abort —
  // voting commit would split the transaction's outcome.
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(60, "k", "v"), &ack).ok());
  EXPECT_EQ(ack.decision, static_cast<uint8_t>(TwoPhaseDecision::kAbort));
  EXPECT_EQ(participant_->in_doubt_count(), 0u);
  EXPECT_EQ(Read("k"), "<notfound>");

  // And the presumption survives a crash.
  participant_.reset();
  OpenParticipant();
  EXPECT_EQ(participant_->DecisionFor(60), TwoPhaseDecision::kAbort);
}

TEST_F(TwoPcTest, DecidedEntriesAgeOutAndLogCompacts) {
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(70, "g", "v70"), &ack).ok());
  ASSERT_TRUE(participant_
                  ->HandleDecide(MakeDecide(70, TwoPhaseDecision::kCommit),
                                 &ack)
                  .ok());
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(71, "g2", "v71"), &ack).ok());

  // Reopen with zero retention: the resolver pass ages the decided entry
  // out and compacts the log down to the live prepare.
  participant_.reset();
  decided_retention_ms_ = 0;
  OpenParticipant();
  const auto size_before = std::filesystem::file_size(dir_ + "/twopc.log");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  peer_reachable_ = false;  // txn 71 stays in doubt through the pass
  participant_->ResolveInDoubt();
  EXPECT_EQ(participant_->DecisionFor(70), TwoPhaseDecision::kUnknown);
  EXPECT_EQ(participant_->in_doubt_count(), 1u);
  EXPECT_LT(std::filesystem::file_size(dir_ + "/twopc.log"), size_before);

  // The compacted log is a valid image: recovery still finds the
  // in-doubt prepare, and appends keep working.
  participant_.reset();
  decided_retention_ms_ = 600'000;
  OpenParticipant();
  EXPECT_EQ(participant_->in_doubt_count(), 1u);
  ASSERT_TRUE(participant_
                  ->HandleDecide(MakeDecide(71, TwoPhaseDecision::kCommit),
                                 &ack)
                  .ok());
  participant_.reset();
  OpenParticipant();
  EXPECT_EQ(participant_->DecisionFor(71), TwoPhaseDecision::kCommit);
  EXPECT_EQ(Read("g2"), "v71");
}

TEST_F(TwoPcTest, PersistFailureTurnsVoteIntoAbort) {
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kError;
  spec.message = "injected log failure";
  spec.probability = 1.0;
  spec.max_triggers = 1;
  fault::FaultRegistry::Global().Arm("twopc.prepare.persist", spec);
  ReplMessage ack;
  ASSERT_TRUE(
      participant_->HandlePrepare(MakePrepare(40, "k", "v"), &ack).ok());
  EXPECT_EQ(ack.decision, static_cast<uint8_t>(TwoPhaseDecision::kAbort));
  EXPECT_EQ(participant_->in_doubt_count(), 0u);
  EXPECT_EQ(Read("k"), "<notfound>");
}

}  // namespace
}  // namespace cluster
}  // namespace tardis
