// TardisClient (src/client/, DESIGN.md §13): retry classification,
// exactly-once session headers, failover, floor learning and degraded
// reads — first against an in-process scripted server (deterministic
// wire-level assertions), then the ERR BUSY / ERR DEADLINE retry
// contract against a real tardisd with a tiny queue bound (set
// TARDISD_BIN; skipped when absent).

#include "client/tardis_client.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "util/clock.h"

namespace tardis {
namespace {

uint16_t BindAny(int* out_fd) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *out_fd = fd;
  return ntohs(addr.sin_port);
}

/// In-process line-protocol server driven by a handler: each request
/// line goes through the handler; an empty reply means "cut the
/// connection right here" (the mid-request failure the retry
/// classification pivots on). Requests are logged for assertions.
class ScriptServer {
 public:
  using Handler = std::function<std::string(const std::string&)>;

  explicit ScriptServer(Handler handler) : handler_(std::move(handler)) {
    port_ = BindAny(&listen_fd_);
    EXPECT_EQ(listen(listen_fd_, 8), 0);
    thread_ = std::thread([this] { Serve(); });
  }

  ~ScriptServer() {
    stop_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
  }

  uint16_t port() const { return port_; }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

  std::vector<std::string> requests() {
    std::lock_guard<std::mutex> lock(mu_);
    return requests_;
  }

 private:
  void Serve() {
    while (!stop_.load()) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::string inbuf;
      char chunk[4096];
      bool open = true;
      while (open) {
        size_t nl;
        while ((nl = inbuf.find('\n')) == std::string::npos) {
          const ssize_t n = read(fd, chunk, sizeof(chunk));
          if (n <= 0) {
            open = false;
            break;
          }
          inbuf.append(chunk, static_cast<size_t>(n));
        }
        if (!open) break;
        const std::string line = inbuf.substr(0, nl);
        inbuf.erase(0, nl + 1);
        std::string reply;
        {
          std::lock_guard<std::mutex> lock(mu_);
          requests_.push_back(line);
          reply = handler_(line);
        }
        if (reply.empty()) {
          open = false;  // scripted mid-request connection cut
          break;
        }
        reply.push_back('\n');
        if (write(fd, reply.data(), reply.size()) !=
            static_cast<ssize_t>(reply.size())) {
          open = false;
        }
      }
      ::close(fd);
    }
  }

  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::mutex mu_;
  std::vector<std::string> requests_;
};

client::TardisClientOptions BaseOptions(const std::string& endpoint) {
  client::TardisClientOptions opt;
  opt.endpoints.push_back(endpoint);
  opt.request_deadline_ms = 5000;
  opt.backoff_initial_ms = 1;
  opt.backoff_max_ms = 10;
  opt.seed = 42;
  return opt;
}

/// Parses the `*S` token off a logged request line; session_id 0 when
/// the line carried none.
SessionHeader HeaderOf(std::string line) {
  SessionHeader h;
  StripSessionHeader(&line, &h);
  return h;
}

TEST(TardisClientTest, RetriesBusyThenSucceeds) {
  int calls = 0;
  ScriptServer server([&calls](const std::string&) -> std::string {
    return ++calls < 3 ? "ERR BUSY queue full; retry" : "PONG";
  });
  client::TardisClient cli(BaseOptions(server.endpoint()));
  std::string reply;
  ASSERT_TRUE(cli.Call("ping", &reply).ok());
  EXPECT_EQ(reply, "PONG");
  EXPECT_EQ(cli.retries(), 2u);
  EXPECT_EQ(cli.requests(), 1u);  // one logical operation
}

TEST(TardisClientTest, DeadlineBoundsRetries) {
  ScriptServer server([](const std::string&) {
    return std::string("ERR BUSY queue full; retry");
  });
  auto opt = BaseOptions(server.endpoint());
  opt.request_deadline_ms = 200;
  client::TardisClient cli(std::move(opt));
  std::string reply;
  const uint64_t start = NowMillis();
  const Status s = cli.Call("ping", &reply);
  EXPECT_FALSE(s.ok());
  EXPECT_LT(NowMillis() - start, 2000u);
  EXPECT_GE(cli.retries(), 1u);
}

TEST(TardisClientTest, SessionWriteRetriesAfterCutWithSameSeq) {
  // First attempt: the connection dies after the request is read (the
  // outcome-unknown case). The retry must reuse the SAME (sid, seq) so
  // the daemon's dedup table can collapse it.
  int calls = 0;
  ScriptServer server([&calls](const std::string&) -> std::string {
    return ++calls == 1 ? "" : "*F0:1 OK STATE 0:1";
  });
  client::TardisClient cli(BaseOptions(server.endpoint()));
  std::string state;
  ASSERT_TRUE(cli.Put("k", "v", &state).ok());
  EXPECT_EQ(state, "0:1");
  const auto reqs = server.requests();
  ASSERT_EQ(reqs.size(), 2u);
  const SessionHeader first = HeaderOf(reqs[0]);
  const SessionHeader second = HeaderOf(reqs[1]);
  EXPECT_EQ(first.session_id, cli.session_id());
  EXPECT_NE(first.session_id, 0u);
  EXPECT_EQ(first.seq, second.seq);
  EXPECT_TRUE(second.write());
  // The reply's floor token was learned into the session.
  ASSERT_EQ(cli.floors().count(0), 1u);
  EXPECT_EQ(cli.floors().at(0), 1u);
}

TEST(TardisClientTest, UnsafeCommandNotRetriedAfterCut) {
  // `merge` is neither a read nor a sessioned write: once bytes are on
  // the wire and the connection dies, the outcome is unknown and a blind
  // resend could merge twice. The client must surface the failure.
  ScriptServer server([](const std::string&) { return std::string(); });
  client::TardisClient cli(BaseOptions(server.endpoint()));
  std::string reply;
  const Status s = cli.Call("merge lww", &reply);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(server.requests().size(), 1u);
}

TEST(TardisClientTest, ReadsRetryAfterCut) {
  int calls = 0;
  ScriptServer server([&calls](const std::string&) -> std::string {
    return ++calls == 1 ? "" : "VALUE v";
  });
  client::TardisClient cli(BaseOptions(server.endpoint()));
  std::string value;
  ASSERT_TRUE(cli.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_EQ(server.requests().size(), 2u);
}

TEST(TardisClientTest, FailsOverOnShuttingDown) {
  ScriptServer draining([](const std::string&) {
    return std::string("ERR SHUTTING_DOWN site draining; retry elsewhere");
  });
  ScriptServer healthy([](const std::string&) { return std::string("PONG"); });
  auto opt = BaseOptions(draining.endpoint());
  opt.endpoints.push_back(healthy.endpoint());
  client::TardisClient cli(std::move(opt));
  std::string reply;
  ASSERT_TRUE(cli.Call("ping", &reply).ok());
  EXPECT_EQ(reply, "PONG");
  EXPECT_GE(cli.failovers(), 1u);
  EXPECT_EQ(healthy.requests().size(), 1u);
}

TEST(TardisClientTest, BehindReplicaFailsOverWithFloors) {
  ScriptServer behind([](const std::string&) {
    return std::string("ERR BEHIND site missing session writes; "
                       "retry elsewhere");
  });
  ScriptServer caught_up([](const std::string& line) -> std::string {
    return line.find("get") != std::string::npos ? "*F0:5 VALUE v" : "PONG";
  });
  auto opt = BaseOptions(behind.endpoint());
  opt.endpoints.push_back(caught_up.endpoint());
  client::TardisClient cli(std::move(opt));
  std::string value;
  ASSERT_TRUE(cli.Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  EXPECT_GE(cli.failovers(), 1u);
}

TEST(TardisClientTest, StaleReadsOmitFreshFloorsAndFlag) {
  ScriptServer server([](const std::string& line) -> std::string {
    if (line.find("put") != std::string::npos) return "*F0:7 OK STATE 0:7";
    return "VALUE v";
  });
  auto opt = BaseOptions(server.endpoint());
  opt.stale_reads_ms = 60'000;
  client::TardisClient cli(std::move(opt));
  std::string state;
  ASSERT_TRUE(cli.Put("k", "v", &state).ok());
  std::string value;
  ASSERT_TRUE(cli.Get("k", &value).ok());
  const auto reqs = server.requests();
  ASSERT_EQ(reqs.size(), 2u);
  // The floor was learned moments ago — inside the staleness bound — so
  // the read omits it and flags stale-ok instead of demanding coverage.
  const SessionHeader read_hdr = HeaderOf(reqs[1]);
  EXPECT_TRUE(read_hdr.stale_ok());
  EXPECT_TRUE(read_hdr.floors.empty());
  EXPECT_EQ(cli.stale_reads(), 1u);
}

TEST(TardisClientTest, StrictReadsCarryFloors) {
  ScriptServer server([](const std::string& line) -> std::string {
    if (line.find("put") != std::string::npos) return "*F0:7 OK STATE 0:7";
    return "VALUE v";
  });
  client::TardisClient cli(BaseOptions(server.endpoint()));
  std::string state;
  ASSERT_TRUE(cli.Put("k", "v", &state).ok());
  std::string value;
  ASSERT_TRUE(cli.Get("k", &value).ok());
  const auto reqs = server.requests();
  ASSERT_EQ(reqs.size(), 2u);
  const SessionHeader read_hdr = HeaderOf(reqs[1]);
  EXPECT_FALSE(read_hdr.stale_ok());
  ASSERT_EQ(read_hdr.floors.size(), 1u);
  EXPECT_EQ(read_hdr.floors[0],
            (std::pair<uint32_t, uint64_t>{0, 7}));
  EXPECT_EQ(cli.stale_reads(), 0u);
}

TEST(TardisClientTest, TwoPcAbortBumpsAttempt) {
  int calls = 0;
  ScriptServer server([&calls](const std::string&) -> std::string {
    return ++calls == 1 ? "ERR 2PC abort txn 99: participant refused"
                        : "OK STATE 0:3";
  });
  client::TardisClient cli(BaseOptions(server.endpoint()));
  std::string reply;
  ASSERT_TRUE(cli.MultiPut({{"a", "1"}, {"b", "2"}}, &reply).ok());
  const auto reqs = server.requests();
  ASSERT_EQ(reqs.size(), 2u);
  const SessionHeader first = HeaderOf(reqs[0]);
  const SessionHeader second = HeaderOf(reqs[1]);
  EXPECT_EQ(first.seq, second.seq);
  // A definitive abort re-derives the txn id via the attempt counter so
  // the fresh 2PC round is not confused with the aborted one.
  EXPECT_EQ(second.attempt, first.attempt + 1);
}

TEST(TardisClientTest, MetricsExported) {
  obs::MetricsRegistry registry;
  int calls = 0;
  ScriptServer server([&calls](const std::string&) -> std::string {
    return ++calls < 2 ? "ERR BUSY queue full; retry" : "PONG";
  });
  auto opt = BaseOptions(server.endpoint());
  opt.registry = &registry;
  client::TardisClient cli(std::move(opt));
  std::string reply;
  ASSERT_TRUE(cli.Call("ping", &reply).ok());
  bool saw_requests = false, saw_retries = false;
  for (const obs::Sample& s : registry.Collect()) {
    if (s.name == "tardis_client_requests") saw_requests = s.counter >= 1;
    if (s.name == "tardis_client_retries") saw_retries = s.counter >= 1;
  }
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_retries);
}

// ---- real-daemon contract (TARDISD_BIN) --------------------------------

/// Spawns one tardisd with a tiny queue so ERR BUSY / ERR DEADLINE are
/// easy to provoke, mirroring the e2e driver's overload phase.
class DaemonGuard {
 public:
  bool Start() {
    const char* bin = ::getenv("TARDISD_BIN");
    if (bin == nullptr || bin[0] == '\0') return false;
    int probe = -1;
    repl_port_ = BindAny(&probe);
    ::close(probe);
    uint16_t ghost_port = BindAny(&probe);
    ::close(probe);
    client_port_ = BindAny(&probe);
    ::close(probe);
    pid_ = fork();
    if (pid_ == 0) {
      const std::string site = "--site=0";
      // The peer list must name at least two sites; the second is a
      // never-started ghost (this suite only needs the client port).
      const std::string peers = "--peers=127.0.0.1:" +
                                std::to_string(repl_port_) + ",127.0.0.1:" +
                                std::to_string(ghost_port);
      const std::string cport =
          "--client-port=" + std::to_string(client_port_);
      freopen("/dev/null", "w", stdout);
      execl(bin, "tardisd", site.c_str(), peers.c_str(), cport.c_str(),
            "--workers=1", "--max-queue=1", "--request-deadline-ms=300",
            static_cast<char*>(nullptr));
      _exit(127);
    }
    // Wait for the client port to come up.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      const int fd = Dial();
      if (fd >= 0) {
        ::close(fd);
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// Raw connection to the daemon (for pinning the single worker).
  int Dial() const {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(client_port_);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  uint16_t client_port() const { return client_port_; }

  ~DaemonGuard() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
  }

 private:
  pid_t pid_ = -1;
  uint16_t repl_port_ = 0;
  uint16_t client_port_ = 0;
};

TEST(TardisClientDaemonTest, BusyDeadlineContractEventualSuccess) {
  DaemonGuard daemon;
  if (!daemon.Start()) GTEST_SKIP() << "TARDISD_BIN not set or not runnable";
  signal(SIGPIPE, SIG_IGN);

  // Pin the only worker past the request deadline; the client's pings
  // are shed (ERR BUSY) or expire in the queue (ERR DEADLINE) — both
  // retryable, both meaning "not executed" — until the worker frees up.
  const int pin = daemon.Dial();
  ASSERT_GE(pin, 0);
  const char sleep_cmd[] = "sleep 700\n";
  ASSERT_EQ(write(pin, sleep_cmd, sizeof(sleep_cmd) - 1),
            static_cast<ssize_t>(sizeof(sleep_cmd) - 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  client::TardisClientOptions opt;
  opt.endpoints.push_back("127.0.0.1:" +
                          std::to_string(daemon.client_port()));
  opt.request_deadline_ms = 10'000;
  opt.backoff_initial_ms = 20;
  opt.backoff_max_ms = 200;
  opt.seed = 42;
  client::TardisClient cli(std::move(opt));
  std::string reply;
  ASSERT_TRUE(cli.Call("ping", &reply).ok());
  EXPECT_EQ(reply, "PONG");
  EXPECT_GE(cli.retries(), 1u);  // the contract actually fired
  ::close(pin);

  // Exactly-once session writes against the real daemon.
  std::string state;
  ASSERT_TRUE(cli.Put("ck", "cv", &state).ok());
  EXPECT_FALSE(state.empty());
  std::string value;
  ASSERT_TRUE(cli.Get("ck", &value).ok());
  EXPECT_EQ(value, "cv");
}

TEST(TardisClientDaemonTest, ClientDeadlinePropagates) {
  DaemonGuard daemon;
  if (!daemon.Start()) GTEST_SKIP() << "TARDISD_BIN not set or not runnable";
  signal(SIGPIPE, SIG_IGN);

  const int pin = daemon.Dial();
  ASSERT_GE(pin, 0);
  const char sleep_cmd[] = "sleep 3000\n";
  ASSERT_EQ(write(pin, sleep_cmd, sizeof(sleep_cmd) - 1),
            static_cast<ssize_t>(sizeof(sleep_cmd) - 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  client::TardisClientOptions opt;
  opt.endpoints.push_back("127.0.0.1:" +
                          std::to_string(daemon.client_port()));
  opt.request_deadline_ms = 500;
  opt.backoff_initial_ms = 20;
  opt.backoff_max_ms = 100;
  opt.seed = 42;
  client::TardisClient cli(std::move(opt));
  std::string reply;
  const uint64_t start = NowMillis();
  const Status s = cli.Call("ping", &reply);
  // The worker is pinned for 3 s but the client's own budget is 500 ms:
  // it must give up on time, not ride the daemon's schedule.
  EXPECT_FALSE(s.ok());
  EXPECT_LT(NowMillis() - start, 2500u);
  ::close(pin);
}

}  // namespace
}  // namespace tardis
