// Figure 10: the benefit of branching as a function of the workload.
// TARDiS runs with branch-on-conflict ENABLED (Ancestor + Serializability):
//  (a) uniform read-heavy   — branching doesn't help; TARDiS slightly
//                             below BDB;
//  (b) uniform write-heavy  — TARDiS overtakes BDB (~35% in the paper);
//  (c) Zipfian write-heavy  — BDB collapses under lock contention; TARDiS
//                             wins by ~8x, OCC limited to ~1/5 of TARDiS;
//  (d) uniform blind writes — rare conflicts, short locks: branching only
//                             adds tracking cost; TARDiS slightly behind.

#include "bench_common.h"

using namespace tardis;
using namespace tardis::bench;

namespace {

void RunPanel(const char* label, Mix mix, Distribution dist,
              bool blind_writes) {
  printf("--- %s ---\n", label);
  printf("%-10s %8s %12s %12s %10s %8s\n", "system", "clients", "thr(txn/s)",
         "lat(us)", "p99(us)", "aborts");
  const size_t client_counts[] = {8, 32, 64};
  for (int which = 0; which < 3; which++) {
    for (size_t clients : client_counts) {
      SystemUnderTest sut = which == 0   ? MakeTardisBranching()
                            : which == 1 ? MakeSeqKv()
                                         : MakeOcc();
      WorkloadOptions w;
      w.num_keys = 10'000;
      w.mix = mix;
      w.dist = dist;
      w.blind_writes = blind_writes;
      if (!Preload(sut.store.get(), w).ok()) return;
      sut.EnableRtt();
      DriverOptions d;
      d.seed = BenchSeed();
      d.num_clients = clients;
      d.duration_ms = ScaledMs(1000);
      if (sut.tardis) d.metrics = sut.tardis->metrics();
      DriverResult r = RunClosedLoop(sut.facade(), w, d);
      printf("%-10s %8zu %12.0f %12.1f %10.0f %8llu", sut.name.c_str(),
             clients, r.throughput, r.txn_latency_us.mean(),
             r.txn_latency_us.Percentile(0.99),
             static_cast<unsigned long long>(r.aborted));
      if (sut.tardis) {
        printf("  [branches=%llu states=%zu]",
               static_cast<unsigned long long>(
                   sut.tardis->stats().branches_created),
               sut.tardis->dag()->state_count());
        sut.tardis->StopGcThread();
      }
      printf("\n");
      PrintMetricsDelta(r);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  PrintHeader(
      "Figure 10: impact of branching (TARDiS = branch-on-conflict ON)",
      "(a) low contention: TARDiS slightly under BDB; (b) high contention: "
      "TARDiS ~1.35x BDB; (c) Zipfian: TARDiS ~8x BDB, ~5x OCC; (d) blind "
      "writes: branching doesn't help, TARDiS ~10% under BDB.");
  RunPanel("(a) uniform read-heavy", Mix::kReadHeavy, Distribution::kUniform,
           false);
  RunPanel("(b) uniform write-heavy", Mix::kWriteHeavy,
           Distribution::kUniform, false);
  RunPanel("(c) Zipfian write-heavy (p=0.99)", Mix::kWriteHeavy,
           Distribution::kZipfian, false);
  RunPanel("(d) uniform blind writes", Mix::kWriteHeavy,
           Distribution::kUniform, true);
  return 0;
}
