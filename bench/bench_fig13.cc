// Figure 13: impact of garbage collection. One TARDiS site, write-heavy
// uniform workload, clients placing ceilings every 1000 transactions; run
// twice — with DAG compression + record pruning, and without. Reports
// (a) throughput over time and (b) the number of DAG states and record
// versions over time.
//
// Paper result: without GC, throughput collapses after a few minutes as
// state/version tracking swamps memory; with GC it stays flat and the DAG
// stabilizes around (#clients x ceiling interval) states — ~98% fewer.

#include <atomic>
#include <thread>

#include "bench_common.h"

using namespace tardis;
using namespace tardis::bench;

namespace {

void RunTimeline(bool with_gc) {
  printf("--- %s ---\n", with_gc ? "TAR-GC (compression on)"
                                 : "TAR-NoGC (compression off)");
  SystemUnderTest sut;
  {
    TardisOptions options = BenchStoreOptions();
    auto store = TardisStore::Open(options);
    sut.tardis = std::move(*store);
    sut.store = std::make_unique<TardisTxKv>(
        sut.tardis.get(), AncestorBegin(), SerializabilityEnd(), "TARDiS",
        with_gc ? 1000 : 0);
    if (with_gc) sut.tardis->StartGcThread(100);
  }
  WorkloadOptions w;
  w.num_keys = 10'000;
  w.mix = Mix::kWriteHeavy;
  w.dist = Distribution::kUniform;
  if (!Preload(sut.store.get(), w).ok()) return;
  sut.EnableRtt();

  const uint64_t seconds = std::max<uint64_t>(5, ScaledMs(10'000) / 1000);
  std::atomic<uint64_t> committed{0};
  std::atomic<bool> sampler_stop{false};
  printf("%6s %14s %10s %12s\n", "t(s)", "thr(txn/s)", "states",
         "records");
  std::thread sampler([&] {
    uint64_t prev = 0;
    for (uint64_t t = 1; t <= seconds && !sampler_stop.load(); t++) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
      const uint64_t now = committed.load();
      printf("%6llu %14llu %10zu %12zu\n",
             static_cast<unsigned long long>(t),
             static_cast<unsigned long long>(now - prev),
             sut.tardis->dag()->state_count(),
             sut.tardis->kvmap()->version_count());
      fflush(stdout);
      prev = now;
    }
  });

  DriverOptions d;
  d.seed = BenchSeed();
  d.num_clients = 16;
  d.warmup_ms = 0;
  d.duration_ms = seconds * 1000;
  RunClosedLoop(sut.facade(), w, d, &committed);
  sampler_stop.store(true);
  sampler.join();
  if (with_gc) {
    sut.tardis->StopGcThread();
    const GcStats gc = sut.tardis->gc()->TotalStats();
    printf("gc totals: runs=%llu states_deleted=%llu versions_pruned=%llu\n",
           static_cast<unsigned long long>(gc.runs),
           static_cast<unsigned long long>(gc.states_deleted),
           static_cast<unsigned long long>(gc.versions_pruned));
  }
  printf("final: states=%zu records=%zu\n\n",
         sut.tardis->dag()->state_count(),
         sut.tardis->kvmap()->version_count());
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  PrintHeader(
      "Figure 13: garbage collection on/off (write-heavy, ceilings "
      "every 1000 txns)",
      "with GC: flat throughput, DAG bounded near clients x interval; "
      "without: states/records grow without bound and throughput sags.");
  RunTimeline(/*with_gc=*/true);
  RunTimeline(/*with_gc=*/false);
  return 0;
}
