// Figure 14: applications on TARDiS vs sequential storage.
//   (a) CRDT lines of code   — measured from this repo's sources: the
//       TARDiS implementations (plain field + fork-point merge) vs the
//       flat vector-clock implementations;
//   (b) CRDT throughput      — 90% reads / 10% writes per datatype, with
//       periodic branch merging on TARDiS;
//   (c) Retwis throughput    — read-only / read-heavy (85/5/10) /
//       post-heavy (65/5/30) mixes on all three systems;
//   (d) application goodput  — fraction of busy time spent in operations
//       that committed (waste = aborts, retries, lock waits, merges).

#include <atomic>
#include <fstream>
#include <thread>

#include "apps/crdt/flat_crdts.h"
#include "apps/crdt/tardis_crdts.h"
#include "apps/retwis/retwis.h"
#include "apps/retwis/retwis_merge.h"
#include "bench_common.h"
#include "util/clock.h"

using namespace tardis;
using namespace tardis::bench;

namespace {

// ---- (a) lines of code -------------------------------------------------------

size_t CountLines(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return 0;
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) lines++;
  return lines;
}

void LinesOfCode() {
  printf("--- (a) CRDT implementation size (lines of code) ---\n");
#ifdef TARDIS_SOURCE_DIR
  const std::string src = TARDIS_SOURCE_DIR;
  const size_t tardis_loc = CountLines(src + "/src/apps/crdt/tardis_crdts.h") +
                            CountLines(src + "/src/apps/crdt/tardis_crdts.cc");
  const size_t flat_loc = CountLines(src + "/src/apps/crdt/flat_crdts.h") +
                          CountLines(src + "/src/apps/crdt/flat_crdts.cc");
  printf("%-40s %6zu lines\n",
         "TARDiS CRDTs (5 types, branch+merge):", tardis_loc);
  printf("%-40s %6zu lines\n",
         "Flat CRDTs (5 types, vector clocks):", flat_loc);
  if (tardis_loc > 0 && flat_loc > 0) {
    printf("ratio flat/TARDiS = %.2fx  (paper: ~2x, with 3x faster "
           "development)\n\n",
           static_cast<double>(flat_loc) / static_cast<double>(tardis_loc));
  }
#else
  printf("(source dir unavailable at build time)\n\n");
#endif
}

// ---- (b) CRDT throughput -------------------------------------------------------

struct OpsResult {
  double ops_per_sec = 0;
  double useful = 0;  // committed-op time / busy time
};

/// Runs `op(thread_idx, i)` from `threads` closed loops for `ms`.
/// The op returns true if it committed (false = wasted attempt).
template <typename Op>
OpsResult RunOps(int threads, uint64_t ms, Op op) {
  std::atomic<bool> stop{false};
  std::vector<uint64_t> done(threads, 0);
  std::vector<uint64_t> useful_us(threads, 0);
  std::vector<uint64_t> busy_us(threads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t start = NowNanos();
        const bool committed = op(t, i++);
        const uint64_t took = (NowNanos() - start) / 1000;
        busy_us[t] += took;
        if (committed) {
          useful_us[t] += took;
          done[t]++;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true);
  for (auto& w : workers) w.join();
  OpsResult r;
  uint64_t total = 0, useful = 0, busy = 0;
  for (int t = 0; t < threads; t++) {
    total += done[t];
    useful += useful_us[t];
    busy += busy_us[t];
  }
  r.ops_per_sec = static_cast<double>(total) / (static_cast<double>(ms) / 1000.0);
  r.useful = busy ? static_cast<double>(useful) / static_cast<double>(busy) : 0;
  return r;
}

constexpr int kCrdtThreads = 6;

/// The TARDiS CRDTs talk to the store natively (sessions + merge API), so
/// they cannot be wrapped by LatencyKv; charge them the same per-round-trip
/// testbed RTT explicitly. `round_trips` counts the client-visible KV
/// operations the call performs (begin + get/put chain).
void RttSleep(int round_trips) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(kTestbedRttUs * round_trips));
}

/// TARDiS flavor: single-field ops + a merger thread folding branches.
template <typename MakeOp>
OpsResult RunTardisCrdt(MakeOp make_op, uint64_t ms,
                        const std::function<void(TardisStore*)>& merge_fn) {
  TardisOptions options = BenchStoreOptions();
  auto store_or = TardisStore::Open(options);
  TardisStore* store = store_or->get();
  store->StartGcThread(100);

  std::vector<std::unique_ptr<ClientSession>> sessions;
  for (int t = 0; t < kCrdtThreads; t++) {
    sessions.push_back(store->CreateSession());
  }
  std::atomic<bool> merger_stop{false};
  std::thread merger([&] {
    while (!merger_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      merge_fn(store);
    }
  });

  auto op = make_op(store, &sessions);
  OpsResult r = RunOps(kCrdtThreads, ms, op);
  merger_stop.store(true);
  merger.join();
  store->StopGcThread();
  return r;
}

void CrdtThroughput() {
  printf("--- (b) CRDT throughput, 90%% reads / 10%% writes ---\n");
  printf("%-6s %-10s %14s %8s\n", "type", "system", "ops/s", "useful");
  const uint64_t ms = ScaledMs(1200);

  struct FlatSystem {
    const char* name;
    std::function<std::unique_ptr<TxKvStore>()> make;
  };
  const FlatSystem flat_systems[] = {
      {"BDB(2PL)",
       [] {
         TwoPLOptions o;
         o.lock_timeout_us = 1'000;
         return std::move(*TwoPLStore::Open(o));
       }},
      {"OCC", [] { return std::move(*OccStore::Open(OccOptions{})); }},
  };

  // --- counters (Op-C and PN-C share the TARDiS implementation) ----------
  for (const char* type : {"Op-C", "PN-C"}) {
    {
      auto merge = [](TardisStore* s) {
        auto session = s->CreateSession();
        crdt::TardisCounter c(s, "cnt");
        c.Merge(session.get());
      };
      auto make = [](TardisStore* s, auto* sessions) {
        auto counter = std::make_shared<crdt::TardisCounter>(s, "cnt");
        return [counter, sessions](int t, uint64_t i) {
          ClientSession* session = (*sessions)[t].get();
          if (i % 10 == 0) {
            RttSleep(3);  // begin + get + put
            return counter->Increment(session).ok();
          }
          RttSleep(2);  // begin + get
          return counter->Value(session).ok();
        };
      };
      OpsResult r = RunTardisCrdt(make, ms, merge);
      printf("%-6s %-10s %14.0f %8.2f\n", type, "TARDiS", r.ops_per_sec,
             r.useful);
    }
    for (const FlatSystem& sys : flat_systems) {
      auto inner = sys.make();
      LatencyKv store(inner.get(), kTestbedRttUs);
      std::vector<std::unique_ptr<TxKvClient>> clients;
      for (int t = 0; t < kCrdtThreads; t++) {
        clients.push_back(store.NewClient());
      }
      const bool op_based = std::string(type) == "Op-C";
      auto pn = std::make_shared<crdt::FlatPnCounter>(&store, "cnt", 0, 3);
      auto opc = std::make_shared<crdt::FlatOpCounter>(&store, "cnt", 0, 3);
      OpsResult r = RunOps(kCrdtThreads, ms, [&](int t, uint64_t i) {
        TxKvClient* client = clients[t].get();
        if (op_based) {
          if (i % 10 == 0) return opc->Apply(client, 1).ok();
          return opc->Value(client).ok();
        }
        if (i % 10 == 0) return pn->Increment(client).ok();
        return pn->Value(client).ok();
      });
      printf("%-6s %-10s %14.0f %8.2f\n", type, sys.name, r.ops_per_sec,
             r.useful);
    }
  }

  // --- LWW register --------------------------------------------------------
  {
    auto merge = [](TardisStore* s) {
      auto session = s->CreateSession();
      crdt::TardisLwwRegister reg(s, "lww");
      reg.Merge(session.get());
    };
    auto make = [](TardisStore* s, auto* sessions) {
      auto reg = std::make_shared<crdt::TardisLwwRegister>(s, "lww");
      return [reg, sessions](int t, uint64_t i) {
        ClientSession* session = (*sessions)[t].get();
        if (i % 10 == 0) {
          RttSleep(2);  // begin + put
          return reg->Set(session, "v" + std::to_string(i)).ok();
        }
        RttSleep(2);  // begin + get
        auto v = reg->Get(session);
        return v.ok() || v.status().IsNotFound();
      };
    };
    OpsResult r = RunTardisCrdt(make, ms, merge);
    printf("%-6s %-10s %14.0f %8.2f\n", "LWW", "TARDiS", r.ops_per_sec,
           r.useful);
  }
  for (const FlatSystem& sys : flat_systems) {
    auto inner = sys.make();
    LatencyKv store(inner.get(), kTestbedRttUs);
    std::vector<std::unique_ptr<TxKvClient>> clients;
    for (int t = 0; t < kCrdtThreads; t++) clients.push_back(store.NewClient());
    auto reg = std::make_shared<crdt::FlatLwwRegister>(&store, "lww", 0);
    OpsResult r = RunOps(kCrdtThreads, ms, [&](int t, uint64_t i) {
      TxKvClient* client = clients[t].get();
      if (i % 10 == 0) return reg->Set(client, "v" + std::to_string(i)).ok();
      auto v = reg->Get(client);
      return v.ok() || v.status().IsNotFound();
    });
    printf("%-6s %-10s %14.0f %8.2f\n", "LWW", sys.name, r.ops_per_sec,
           r.useful);
  }

  // --- MV register ----------------------------------------------------------
  {
    auto merge = [](TardisStore* s) {
      auto session = s->CreateSession();
      crdt::TardisMvRegister reg(s, "mv");
      reg.Merge(session.get());
    };
    auto make = [](TardisStore* s, auto* sessions) {
      auto reg = std::make_shared<crdt::TardisMvRegister>(s, "mv");
      return [reg, sessions](int t, uint64_t i) {
        ClientSession* session = (*sessions)[t].get();
        if (i % 10 == 0) {
          RttSleep(2);  // begin + put
          return reg->Set(session, "v" + std::to_string(i)).ok();
        }
        RttSleep(2);  // begin + get
        return reg->Get(session).ok();
      };
    };
    OpsResult r = RunTardisCrdt(make, ms, merge);
    printf("%-6s %-10s %14.0f %8.2f\n", "MV", "TARDiS", r.ops_per_sec,
           r.useful);
  }
  for (const FlatSystem& sys : flat_systems) {
    auto inner = sys.make();
    LatencyKv store(inner.get(), kTestbedRttUs);
    std::vector<std::unique_ptr<TxKvClient>> clients;
    for (int t = 0; t < kCrdtThreads; t++) clients.push_back(store.NewClient());
    auto reg = std::make_shared<crdt::FlatMvRegister>(&store, "mv", 0, 3);
    OpsResult r = RunOps(kCrdtThreads, ms, [&](int t, uint64_t i) {
      TxKvClient* client = clients[t].get();
      if (i % 10 == 0) return reg->Set(client, "v" + std::to_string(i)).ok();
      return reg->Get(client).ok();
    });
    printf("%-6s %-10s %14.0f %8.2f\n", "MV", sys.name, r.ops_per_sec,
           r.useful);
  }

  // --- OR-set ------------------------------------------------------------------
  {
    auto merge = [](TardisStore* s) {
      auto session = s->CreateSession();
      crdt::TardisOrSet set(s, "set");
      set.Merge(session.get());
    };
    auto make = [](TardisStore* s, auto* sessions) {
      auto set = std::make_shared<crdt::TardisOrSet>(s, "set");
      return [set, sessions](int t, uint64_t i) {
        ClientSession* session = (*sessions)[t].get();
        const std::string elem = "e" + std::to_string(i % 50);
        if (i % 10 == 0) {
          RttSleep(3);  // begin + get + put
          return set->Add(session, elem).ok();
        }
        RttSleep(2);  // begin + get
        return set->Contains(session, elem).ok();
      };
    };
    OpsResult r = RunTardisCrdt(make, ms, merge);
    printf("%-6s %-10s %14.0f %8.2f\n", "Set", "TARDiS", r.ops_per_sec,
           r.useful);
  }
  for (const FlatSystem& sys : flat_systems) {
    auto inner = sys.make();
    LatencyKv store(inner.get(), kTestbedRttUs);
    std::vector<std::unique_ptr<TxKvClient>> clients;
    for (int t = 0; t < kCrdtThreads; t++) clients.push_back(store.NewClient());
    auto set = std::make_shared<crdt::FlatOrSet>(&store, "set", 0);
    OpsResult r = RunOps(kCrdtThreads, ms, [&](int t, uint64_t i) {
      TxKvClient* client = clients[t].get();
      const std::string elem = "e" + std::to_string(i % 50);
      if (i % 10 == 0) return set->Add(client, elem).ok();
      return set->Contains(client, elem).ok();
    });
    printf("%-6s %-10s %14.0f %8.2f\n", "Set", sys.name, r.ops_per_sec,
           r.useful);
  }
  printf("\n");
}

// ---- (c)+(d) Retwis --------------------------------------------------------------

struct RetwisMix {
  const char* name;
  int read_pct;
  int follow_pct;  // remainder = posts
};

OpsResult RunRetwis(TxKvStore* store, TardisStore* tardis,
                    const RetwisMix& mix, uint64_t ms) {
  retwis::Retwis app(store);
  constexpr uint32_t kUsers = 100;
  {
    auto setup = app.NewClient();
    Random rng(BenchSeed() ^ 7);
    for (uint32_t u = 0; u < kUsers; u++) {
      if (!app.CreateAccount(setup.get(), u).ok()) return {};
    }
    for (uint32_t u = 0; u < kUsers; u++) {
      for (int f = 0; f < 10; f++) {
        app.FollowUser(setup.get(), u, rng.Uniform(kUsers));
      }
    }
  }

  std::atomic<bool> merger_stop{false};
  std::thread merger;
  std::unique_ptr<retwis::RetwisMerger> resolver;
  if (tardis != nullptr) {
    resolver = std::make_unique<retwis::RetwisMerger>(tardis);
    merger = std::thread([&] {
      while (!merger_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        resolver->MergeOnce();
      }
    });
  }

  constexpr int kThreads = 12;
  std::vector<std::unique_ptr<retwis::Retwis::Client>> clients;
  for (int t = 0; t < kThreads; t++) clients.push_back(app.NewClient());
  std::vector<Random> rngs;
  for (int t = 0; t < kThreads; t++) {
    rngs.emplace_back(BenchSeed() * 977 + 100 + t);
  }

  OpsResult r = RunOps(kThreads, ms, [&](int t, uint64_t i) {
    retwis::Retwis::Client* client = clients[t].get();
    Random& rng = rngs[t];
    const uint32_t user = static_cast<uint32_t>(rng.Uniform(kUsers));
    const int dice = static_cast<int>(rng.Uniform(100));
    if (dice < mix.read_pct) {
      return app.ReadOwnTimeline(client, user).ok();
    }
    if (dice < mix.read_pct + mix.follow_pct) {
      return app
          .FollowUser(client, user, static_cast<uint32_t>(rng.Uniform(kUsers)))
          .ok();
    }
    return app.PostTweet(client, user, "p" + std::to_string(i)).ok();
  });
  if (tardis != nullptr) {
    merger_stop.store(true);
    merger.join();
  }
  return r;
}

void RetwisThroughput() {
  printf("--- (c) Retwis throughput + (d) goodput ---\n");
  printf("%-12s %-10s %14s %8s\n", "workload", "system", "ops/s", "useful");
  const RetwisMix mixes[] = {
      {"read-only", 100, 0},
      {"read-heavy", 85, 5},
      {"post-heavy", 65, 5},
  };
  const uint64_t ms = ScaledMs(1200);
  for (const RetwisMix& mix : mixes) {
    {
      TardisOptions options = BenchStoreOptions();
      auto store_or = TardisStore::Open(options);
      TardisStore* tardis = store_or->get();
      tardis->StartGcThread(100);
      TardisTxKv kv(tardis, AncestorBegin(), SerializabilityEnd(), "TARDiS",
                    1000);
      LatencyKv frontend(&kv, kTestbedRttUs);
      OpsResult r = RunRetwis(&frontend, tardis, mix, ms);
      printf("%-12s %-10s %14.0f %8.2f\n", mix.name, "TARDiS", r.ops_per_sec,
             r.useful);
      tardis->StopGcThread();
    }
    {
      TwoPLOptions o;
      o.lock_timeout_us = 1'000;
      auto store = std::move(*TwoPLStore::Open(o));
      LatencyKv frontend(store.get(), kTestbedRttUs);
      OpsResult r = RunRetwis(&frontend, nullptr, mix, ms);
      printf("%-12s %-10s %14.0f %8.2f\n", mix.name, "BDB(2PL)", r.ops_per_sec,
             r.useful);
    }
    {
      auto store = std::move(*OccStore::Open(OccOptions{}));
      LatencyKv frontend(store.get(), kTestbedRttUs);
      OpsResult r = RunRetwis(&frontend, nullptr, mix, ms);
      printf("%-12s %-10s %14.0f %8.2f\n", mix.name, "OCC", r.ops_per_sec,
             r.useful);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  PrintHeader(
      "Figure 14: applications (CRDTs + Retwis) on TARDiS vs flat storage",
      "(a) TARDiS CRDTs ~half the code; (b) 4-8x CRDT speedup; (c) branching "
      "softens contention for read-heavy/post-heavy Retwis; (d) TARDiS "
      "goodput ~0.96 vs ~0.5 for BDB/OCC under contention.");
  LinesOfCode();
  CrdtThroughput();
  RetwisThroughput();
  return 0;
}
