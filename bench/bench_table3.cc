// Table 3: per-operation latency breakdown (begin / get / put / commit,
// reported in ×10⁻² ms like the paper) for TARDiS, the BDB stand-in and
// OCC under RH-Uniform, WH-Uniform and WH-Zipfian, with branch-on-conflict
// enabled for TARDiS (the Fig. 10 companion table).

#include <algorithm>

#include "bench_common.h"

using namespace tardis;
using namespace tardis::bench;

namespace {

struct Row {
  const char* workload;
  Mix mix;
  Distribution dist;
};

void RunCell(const char* workload, SystemUnderTest sut, Mix mix,
             Distribution dist) {
  WorkloadOptions w;
  w.num_keys = 10'000;
  w.mix = mix;
  w.dist = dist;
  Status s = Preload(sut.store.get(), w);
  if (!s.ok()) {
    printf("preload failed: %s\n", s.ToString().c_str());
    return;
  }
  sut.EnableRtt();
  DriverOptions d;
  d.seed = BenchSeed();
  d.num_clients = 32;
  d.duration_ms = ScaledMs(1500);
  DriverResult r = RunClosedLoop(sut.facade(), w, d);
  // The paper's unit: 10^-2 ms = 10 us, network latency excluded — so
  // subtract the injected client-server RTT from the client-side ops.
  auto server_side = [](double avg_us) {
    return std::max(0.0, avg_us - static_cast<double>(kTestbedRttUs)) / 10.0;
  };
  printf("%-11s %-9s begin=%-6.2f get=%-6.2f put=%-6.2f commit=%-6.2f"
         "  (x10^-2 ms; thr=%.0f txn/s aborts=%llu)\n",
         workload, sut.name.c_str(), server_side(r.ops.BeginAvg()),
         server_side(r.ops.GetAvg()), server_side(r.ops.PutAvg()),
         r.ops.CommitAvg() / 10.0, r.throughput,
         static_cast<unsigned long long>(r.aborted));
  if (sut.tardis) sut.tardis->StopGcThread();
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  PrintHeader(
      "Table 3: per-operation latency breakdown (x10^-2 ms)",
      "TARDiS begin+commit dominate (state selection); BDB get/put inflate "
      "under contention (locks); OCC commit inflates (validation). "
      "WH-Zipfian: BDB get/put blow up ~10x; TARDiS reads rise only ~16%.");

  const Row rows[] = {
      {"RH-Uniform", Mix::kReadHeavy, Distribution::kUniform},
      {"WH-Uniform", Mix::kWriteHeavy, Distribution::kUniform},
      {"WH-Zipfian", Mix::kWriteHeavy, Distribution::kZipfian},
  };
  for (const Row& row : rows) {
    RunCell(row.workload, MakeTardisBranching(), row.mix, row.dist);
    RunCell(row.workload, MakeSeqKv(), row.mix, row.dist);
    RunCell(row.workload, MakeOcc(), row.mix, row.dist);
    printf("\n");
  }
  return 0;
}
