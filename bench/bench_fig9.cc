// Figure 9: baseline TARDiS performance — throughput/latency curves for
// TARDiS (local branching DISABLED: Ancestor begin, Serializability ∧
// NoBranching end) vs the BDB stand-in vs OCC, for (a) read-heavy and
// (b) write-heavy uniform workloads, sweeping the closed-loop client count.

#include "bench_common.h"

using namespace tardis;
using namespace tardis::bench;

namespace {

void RunCurve(const char* label, Mix mix) {
  printf("--- %s ---\n", label);
  printf("%-10s %8s %12s %12s %10s %8s\n", "system", "clients", "thr(txn/s)",
         "lat(us)", "p99(us)", "aborts");
  const size_t client_counts[] = {4, 8, 16, 32, 64};
  for (int which = 0; which < 3; which++) {
    for (size_t clients : client_counts) {
      SystemUnderTest sut = which == 0   ? MakeTardisSequential()
                            : which == 1 ? MakeSeqKv()
                                         : MakeOcc();
      WorkloadOptions w;
      w.num_keys = 10'000;
      w.mix = mix;
      w.dist = Distribution::kUniform;
      if (!Preload(sut.store.get(), w).ok()) return;
      sut.EnableRtt();
      DriverOptions d;
      d.seed = BenchSeed();
      d.num_clients = clients;
      d.duration_ms = ScaledMs(1000);
      if (sut.tardis) d.metrics = sut.tardis->metrics();
      DriverResult r = RunClosedLoop(sut.facade(), w, d);
      printf("%-10s %8zu %12.0f %12.1f %10.0f %8llu\n", sut.name.c_str(),
             clients, r.throughput, r.txn_latency_us.mean(),
             r.txn_latency_us.Percentile(0.99),
             static_cast<unsigned long long>(r.aborted));
      if (sut.tardis) sut.tardis->StopGcThread();
      PrintMetricsDelta(r);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  PrintHeader(
      "Figure 9: TARDiS (no local branching) vs BDB(2PL) vs OCC",
      "TARDiS tracks BDB within ~10% on both mixes (begin/commit overhead); "
      "the gap narrows as contention rises; OCC lags on both (validation).");
  RunCurve("(a) read-heavy (75/25), uniform", Mix::kReadHeavy);
  RunCurve("(b) write-heavy (0/100), uniform", Mix::kWriteHeavy);
  return 0;
}
