// Fork latency vs store size (DESIGN.md §12): the claim behind the
// fork-native backend is that forking a branch costs O(1) regardless of
// how much data the branch holds, whereas a flat backend has to
// materialize an independent snapshot — O(n) in the store size.
//
// For each store size this driver measures:
//   * trie fork      — CowTrie::Fork (one refcount bump), median over many
//                      fork/release pairs;
//   * trie 1st write — the first Put after a fork, i.e. the path-copy a
//                      real branch pays on its first divergence (O(key));
//   * mem snapshot   — copying every record of a MemRecordStore into a
//                      fresh one (what an independent branch costs without
//                      structural sharing);
//   * btree snapshot — the same copy through the disk-backed B-tree.
//
// Usage: bench_fork_latency [--max-keys=N] [--backend=...]
// --max-keys caps the largest store size (default 1,000,000; the ctest
// smoke entry uses 10,000 to stay fast). The expected shape: the trie
// columns stay flat while the snapshot columns grow linearly.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "storage/btree_record_store.h"
#include "storage/cowtrie/cow_trie.h"
#include "storage/memstore.h"
#include "util/clock.h"

using namespace tardis;
using namespace tardis::bench;

namespace {

std::string KeyOf(uint64_t i) { return "key/" + std::to_string(i); }

uint64_t MedianUs(std::vector<uint64_t>* samples) {
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() / 2];
}

/// Median latency of CowTrie::Fork on a branch holding `n` keys, plus the
/// first post-fork write (the path-copy).
void TrieNumbers(uint64_t n, uint64_t* fork_us, uint64_t* first_write_us) {
  CowTrie trie;
  (void)trie.CreateBranch(1);
  auto value = std::make_shared<const std::string>(std::string(64, 'v'));
  for (uint64_t i = 0; i < n; i++) {
    (void)trie.Put(1, KeyOf(i), value, i + 1);
  }
  constexpr int kIters = 201;
  std::vector<uint64_t> forks, writes;
  forks.reserve(kIters);
  writes.reserve(kIters);
  for (int it = 0; it < kIters; it++) {
    const BranchStore::BranchId child = 1000 + it;
    uint64_t t0 = NowMicros();
    (void)trie.Fork(1, child);
    forks.push_back(NowMicros() - t0);
    t0 = NowMicros();
    (void)trie.Put(child, KeyOf(it % n), value, n + it + 2);
    writes.push_back(NowMicros() - t0);
    (void)trie.Release(child);
  }
  *fork_us = MedianUs(&forks);
  *first_write_us = MedianUs(&writes);
}

/// Wall time of materializing an independent copy of `store` (n keys)
/// into `fresh` — the flat-backend equivalent of a divergent branch.
uint64_t SnapshotCopyUs(RecordStore* store, RecordStore* fresh) {
  const uint64_t t0 = NowMicros();
  (void)store->ForEachKey([&](const Slice& key) {
    std::string value;
    (void)store->Get(key, &value);
    return fresh->Put(key, value);
  });
  return NowMicros() - t0;
}

uint64_t MemSnapshotUs(uint64_t n) {
  MemRecordStore store;
  const std::string value(64, 'v');
  for (uint64_t i = 0; i < n; i++) (void)store.Put(KeyOf(i), value);
  MemRecordStore fresh;
  return SnapshotCopyUs(&store, &fresh);
}

uint64_t BTreeSnapshotUs(uint64_t n) {
  const std::string dir = "/tmp/tardis_fork_latency_bench";
  const std::string src_path = dir + "_src.db";
  const std::string dst_path = dir + "_dst.db";
  ::remove(src_path.c_str());
  ::remove(dst_path.c_str());
  auto src = BTreeRecordStore::Open(src_path);
  auto dst = BTreeRecordStore::Open(dst_path);
  if (!src.ok() || !dst.ok()) return 0;
  const std::string value(64, 'v');
  for (uint64_t i = 0; i < n; i++) (void)(*src)->Put(KeyOf(i), value);
  const uint64_t us = SnapshotCopyUs(src->get(), dst->get());
  src->reset();
  dst->reset();
  ::remove(src_path.c_str());
  ::remove(dst_path.c_str());
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  uint64_t max_keys = 1'000'000;
  for (int i = 1; i < argc; i++) {
    if (strncmp(argv[i], "--max-keys=", 11) == 0) {
      max_keys = strtoull(argv[i] + 11, nullptr, 10);
    }
  }
  PrintHeader("Fork latency vs store size (fork-native storage, §12)",
              "O(1) fork: trie fork latency is flat in the store size; a "
              "flat backend pays O(n) to materialize a divergent branch");

  printf("%10s %14s %16s %16s %16s\n", "keys", "trie fork(us)",
         "trie 1st put(us)", "mem snap(us)", "btree snap(us)");
  for (uint64_t n = 1'000; n <= max_keys; n *= 10) {
    uint64_t fork_us = 0, write_us = 0;
    TrieNumbers(n, &fork_us, &write_us);
    const uint64_t mem_us = MemSnapshotUs(n);
    const uint64_t btree_us = BTreeSnapshotUs(n);
    printf("%10llu %14llu %16llu %16llu %16llu\n",
           static_cast<unsigned long long>(n),
           static_cast<unsigned long long>(fork_us),
           static_cast<unsigned long long>(write_us),
           static_cast<unsigned long long>(mem_us),
           static_cast<unsigned long long>(btree_us));
  }
  return 0;
}
