// Microbenchmarks (google-benchmark) for the mechanisms the paper's
// design arguments rest on, including the DESIGN.md ablations:
//
//  * fork-path subset check (Fig. 7) vs a naive DAG ancestor walk — the
//    paper's case against dependency checking;
//  * skip-list version lists vs a sorted vector under version churn;
//  * read-state selection: leaf fast path vs full-DAG BFS (Ancestor vs
//    Parent, §7.1.4);
//  * storage substrate point ops (B+Tree, pager) and utility costs.

#include <benchmark/benchmark.h>

#include <deque>
#include <unordered_set>

#include "core/state_dag.h"
#include "core/tardis_store.h"
#include "core/key_version_map.h"
#include "storage/btree_record_store.h"
#include "storage/skiplist.h"
#include "util/random.h"
#include "util/zipf.h"

namespace tardis {
namespace {

StatePtr Extend(StateDag* dag, const StatePtr& parent,
                std::vector<std::string> writes = {}) {
  KeySet ws;
  for (auto& k : writes) ws.Add(k);
  std::lock_guard<std::mutex> guard(dag->Lock());
  return dag->CreateStateLocked({parent}, dag->NextLocalGuid(), KeySet(),
                                std::move(ws), false);
}

/// Builds a DAG with `chain` states per branch and `branches` branches
/// forking off the root's child. Returns (deep tip, sibling tip).
struct BranchyDag {
  std::unique_ptr<StateDag> dag;
  StatePtr tip;
  StatePtr sibling_tip;
};

BranchyDag BuildDag(int branches, int chain) {
  BranchyDag b;
  b.dag = std::make_unique<StateDag>();
  StatePtr base = Extend(b.dag.get(), b.dag->root());
  for (int br = 0; br < branches; br++) {
    StatePtr s = base;
    for (int i = 0; i < chain; i++) s = Extend(b.dag.get(), s);
    if (br == 0) b.tip = s;
    else b.sibling_tip = s;
  }
  if (!b.sibling_tip) b.sibling_tip = b.tip;
  return b;
}

// ---- fork-path check vs naive ancestor walk -----------------------------------

void BM_ForkPathDescendantCheck(benchmark::State& state) {
  BranchyDag b = BuildDag(static_cast<int>(state.range(0)), 64);
  StatePtr ancestor = b.tip->parents()[0]->parents()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(StateDag::DescendantCheck(*ancestor, *b.tip));
    benchmark::DoNotOptimize(
        StateDag::DescendantCheck(*b.sibling_tip, *b.tip));
  }
}
BENCHMARK(BM_ForkPathDescendantCheck)->Arg(2)->Arg(8)->Arg(32);

/// The ablation: answer the same question by walking parent edges.
bool NaiveAncestorWalk(const State& writer, const State& reader) {
  std::deque<const State*> work{&reader};
  std::unordered_set<const State*> seen;
  while (!work.empty()) {
    const State* s = work.front();
    work.pop_front();
    if (s == &writer) return true;
    if (!seen.insert(s).second) continue;
    for (const StatePtr& p : s->parents()) {
      if (p->id() >= writer.id()) work.push_back(p.get());
    }
  }
  return false;
}

void BM_NaiveAncestorWalk(benchmark::State& state) {
  BranchyDag b = BuildDag(static_cast<int>(state.range(0)), 64);
  StatePtr ancestor = b.tip->parents()[0]->parents()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveAncestorWalk(*ancestor, *b.tip));
    benchmark::DoNotOptimize(NaiveAncestorWalk(*b.sibling_tip, *b.tip));
  }
}
BENCHMARK(BM_NaiveAncestorWalk)->Arg(2)->Arg(8)->Arg(32);

// ---- version lists: skip list vs sorted vector ---------------------------------

struct U64Desc {
  int operator()(uint64_t a, uint64_t b) const {
    return a > b ? -1 : (a < b ? 1 : 0);
  }
};

void BM_SkipListVersionChurn(benchmark::State& state) {
  for (auto _ : state) {
    SkipList<uint64_t, U64Desc> list{U64Desc()};
    for (uint64_t i = 0; i < 256; i++) list.Insert(i);
    // "Pruning": drop the oldest half, like record pruning does.
    for (uint64_t i = 0; i < 128; i++) list.Remove(i);
    benchmark::DoNotOptimize(list.size());
  }
}
BENCHMARK(BM_SkipListVersionChurn);

void BM_SortedVectorVersionChurn(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<uint64_t> v;
    for (uint64_t i = 0; i < 256; i++) {
      auto it = std::lower_bound(v.begin(), v.end(), i, std::greater<>());
      v.insert(it, i);
    }
    for (uint64_t i = 0; i < 128; i++) {
      auto it = std::lower_bound(v.begin(), v.end(), i, std::greater<>());
      if (it != v.end() && *it == i) v.erase(it);
    }
    benchmark::DoNotOptimize(v.size());
  }
}
BENCHMARK(BM_SortedVectorVersionChurn);

// ---- read path through the key-version map -------------------------------------

void BM_KvMapGetVisible(benchmark::State& state) {
  StateDag dag;
  KeyVersionMap map;
  StatePtr s = dag.root();
  for (int i = 0; i < state.range(0); i++) {
    s = Extend(&dag, s);
    map.AddVersion("hot", s,
                   std::make_shared<const std::string>("v"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.GetVisible("hot", *s));
  }
}
BENCHMARK(BM_KvMapGetVisible)->Arg(4)->Arg(64)->Arg(512);

// ---- read-state selection (Ancestor fast path vs full-DAG search) --------------

void BM_BfsFromLeaves(benchmark::State& state) {
  BranchyDag b = BuildDag(8, static_cast<int>(state.range(0)));
  StateId want = b.tip->id();
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.dag->BfsFromLeaves(
        [&](const StatePtr& s) { return s->id() == want; }));
  }
}
BENCHMARK(BM_BfsFromLeaves)->Arg(8)->Arg(64);

// ---- storage substrate ----------------------------------------------------------

void BM_BTreePut(benchmark::State& state) {
  static int counter = 0;
  std::string file = "/tmp/tardis_bench_btree_" + std::to_string(counter++);
  ::remove(file.c_str());
  auto store = BTreeRecordStore::Open(file, 1024);
  Random rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    (*store)->Put("key" + std::to_string(rng.Uniform(100000)),
                  "value" + std::to_string(i++));
  }
  ::remove(file.c_str());
}
BENCHMARK(BM_BTreePut);

void BM_BTreeGet(benchmark::State& state) {
  static int counter = 0;
  std::string file = "/tmp/tardis_bench_btree_get_" + std::to_string(counter++);
  ::remove(file.c_str());
  auto store = BTreeRecordStore::Open(file, 1024);
  for (int i = 0; i < 10'000; i++) {
    (*store)->Put("key" + std::to_string(i), "value");
  }
  Random rng(2);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*store)->Get("key" + std::to_string(rng.Uniform(10'000)), &out));
  }
  ::remove(file.c_str());
}
BENCHMARK(BM_BTreeGet);

void BM_ZipfianNext(benchmark::State& state) {
  ScrambledZipfianGenerator zipf(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
}
BENCHMARK(BM_ZipfianNext);

// ---- commit-path and GC ablations ------------------------------------------------

void BM_TardisCommit(benchmark::State& state) {
  // Full begin/put×N/commit cycle on one branch; arg = writes per txn.
  auto store = std::move(*TardisStore::Open(TardisOptions{}));
  auto session = store->CreateSession();
  const int writes = static_cast<int>(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    auto txn = std::move(*store->Begin(session.get()));
    for (int w = 0; w < writes; w++) {
      txn->Put("key" + std::to_string((i * writes + w) % 1000), "value");
    }
    txn->Commit();
    i++;
  }
  state.SetLabel("states=" + std::to_string(store->dag()->state_count()));
}
BENCHMARK(BM_TardisCommit)->Arg(1)->Arg(3)->Arg(10);

void BM_TardisMergeByBranches(benchmark::State& state) {
  // Cost of one merge transaction as a function of the branch count:
  // fork N branches, merge them, repeat.
  const int branches = static_cast<int>(state.range(0));
  auto store = std::move(*TardisStore::Open(TardisOptions{}));
  std::vector<std::unique_ptr<ClientSession>> sessions;
  for (int b = 0; b < branches; b++) {
    sessions.push_back(store->CreateSession());
  }
  auto merger = store->CreateSession();
  {
    auto seed = std::move(*store->Begin(merger.get()));
    seed->Put("hot", "0");
    seed->Commit();
  }
  for (auto _ : state) {
    state.PauseTiming();
    {
      std::vector<TxnPtr> txns;
      for (int b = 0; b < branches; b++) {
        auto t = std::move(*store->Begin(sessions[b].get(), AnyBegin()));
        std::string v;
        t->Get("hot", &v);
        t->Put("hot", std::to_string(b));
        txns.push_back(std::move(t));
      }
      for (auto& t : txns) t->Commit();
    }
    state.ResumeTiming();
    auto m = std::move(*store->BeginMerge(merger.get()));
    auto forks = m->FindForkPoints(m->parents());
    std::string fv;
    if (forks.ok()) m->GetForId("hot", (*forks)[0], &fv);
    m->FindConflictWrites(m->parents());
    m->Put("hot", "merged");
    m->Commit();
    state.PauseTiming();
    // Keep the DAG bounded so the measurement isolates the merge itself
    // rather than ever-growing ancestor walks.
    store->PlaceCeiling(merger.get());
    store->RunGarbageCollection();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_TardisMergeByBranches)->Arg(2)->Arg(4)->Arg(8);

void BM_GcPass(benchmark::State& state) {
  // One full GC cycle over a chain of `range` states (compression +
  // record pruning). Measures the amortized cost per collected state.
  const int chain = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto store = std::move(*TardisStore::Open(TardisOptions{}));
    auto session = store->CreateSession();
    for (int i = 0; i < chain; i++) {
      auto txn = std::move(*store->Begin(session.get()));
      txn->Put("k" + std::to_string(i % 50), "v");
      txn->Commit();
    }
    store->PlaceCeiling(session.get());
    state.ResumeTiming();
    store->RunGarbageCollection();
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_GcPass)->Arg(256)->Arg(2048);

void BM_RetroactiveForkAnnotation(benchmark::State& state) {
  // Cost of forking below a chain of `range` single-child states: the
  // second child triggers the retroactive subtree annotation.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    StateDag dag;
    StatePtr base = Extend(&dag, dag.root());
    StatePtr tip = base;
    for (int i = 0; i < depth; i++) tip = Extend(&dag, tip);
    state.ResumeTiming();
    benchmark::DoNotOptimize(Extend(&dag, base));  // forks: annotates depth states
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_RetroactiveForkAnnotation)->Arg(8)->Arg(128)->Arg(1024);

void BM_KeySetIntersects(benchmark::State& state) {
  KeySet a, b;
  for (int i = 0; i < 6; i++) a.Add("key" + std::to_string(i * 7919 % 100));
  for (int i = 0; i < 6; i++) b.Add("key" + std::to_string(i * 104729 % 97));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_KeySetIntersects);

}  // namespace
}  // namespace tardis

BENCHMARK_MAIN();
