// Figure 11: impact of constraint choice. Write-heavy workload at a fixed
// client count (the "elbow" configuration); throughput for five begin/end
// constraint pairs:
//   Anc-Ser    Ancestor + Serializability (branching)
//   Parent-Ser Parent   + Serializability (branching, Git-like)
//   Anc-SI     Ancestor + Snapshot Isolation (branching)
//   Anc-SI-NB  Ancestor + SI ∧ NoBranching   (aborting)
//   Anc-Ser-NB Ancestor + Ser ∧ NoBranching  (aborting)

#include "bench_common.h"

using namespace tardis;
using namespace tardis::bench;

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  PrintHeader(
      "Figure 11: throughput by constraint choice (write-heavy)",
      "Anc-Ser ~1.2x Parent-Ser (leaf-only read-state search, fewer "
      "branches); Anc-SI within ~5% of Anc-Ser; the non-branching variants "
      "trail badly (repeated aborts).");

  struct Config {
    const char* label;
    BeginConstraintPtr begin;
    EndConstraintPtr end;
  };
  const Config configs[] = {
      {"Anc-Ser", AncestorBegin(), SerializabilityEnd()},
      {"Parent-Ser", ParentBegin(), SerializabilityEnd()},
      {"Anc-SI", AncestorBegin(), SnapshotIsolationEnd()},
      {"Anc-SI-NB", AncestorBegin(),
       AndEnd({SnapshotIsolationEnd(), NoBranchingEnd()})},
      {"Anc-Ser-NB", AncestorBegin(),
       AndEnd({SerializabilityEnd(), NoBranchingEnd()})},
  };

  printf("%-12s %12s %12s %8s %10s\n", "constraints", "thr(txn/s)", "lat(us)",
         "aborts", "branches");
  for (const Config& config : configs) {
    SystemUnderTest sut =
        MakeTardisWith(config.begin, config.end, config.label);
    WorkloadOptions w;
    // A smaller key space pushes contention to the elbow regime where the
    // constraint choice matters (the paper's 105-client configuration).
    w.num_keys = 2'000;
    w.mix = Mix::kWriteHeavy;
    w.dist = Distribution::kUniform;
    if (!Preload(sut.store.get(), w).ok()) return 1;
    sut.EnableRtt();
    DriverOptions d;
    d.seed = BenchSeed();
    d.num_clients = 64;
    d.duration_ms = ScaledMs(1500);
    DriverResult r = RunClosedLoop(sut.facade(), w, d);
    printf("%-12s %12.0f %12.1f %8llu %10llu\n", config.label, r.throughput,
           r.txn_latency_us.mean(),
           static_cast<unsigned long long>(r.aborted),
           static_cast<unsigned long long>(
               sut.tardis->stats().branches_created));
    sut.tardis->StopGcThread();
  }
  return 0;
}
