// Shared plumbing for the per-figure/table benchmark binaries: store
// factories for the three systems under comparison, run-length scaling,
// and table printing helpers.
//
// Every binary prints the rows/series of the paper's figure it reproduces
// plus a header describing the paper's qualitative result, so the output
// can be compared at a glance (see EXPERIMENTS.md).

#ifndef TARDIS_BENCH_BENCH_COMMON_H_
#define TARDIS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baseline/occ_store.h"
#include "baseline/tardis_txkv.h"
#include "baseline/twopl_store.h"
#include "bench/driver.h"
#include "bench/latency_kv.h"
#include "bench/workload.h"
#include "core/tardis_store.h"

namespace tardis {
namespace bench {

/// Scales all run durations: TARDIS_BENCH_SCALE=5 makes every measurement
/// five times longer (the defaults are smoke-test sized for CI).
inline double BenchScale() {
  const char* env = getenv("TARDIS_BENCH_SCALE");
  return env != nullptr ? atof(env) : 1.0;
}

inline uint64_t ScaledMs(uint64_t base_ms) {
  return static_cast<uint64_t>(static_cast<double>(base_ms) * BenchScale());
}

/// The workload seed for this run. Every driver and workload generator
/// derives its per-client streams from it, so two runs with the same seed
/// issue the same transactions. Set with --seed=N (or TARDIS_BENCH_SEED);
/// PrintHeader echoes it so any run can be reproduced from its output.
inline uint64_t& BenchSeedRef() {
  static uint64_t seed = 1234;
  return seed;
}
inline uint64_t BenchSeed() { return BenchSeedRef(); }

/// The record backend every TARDiS store in this run opens with. Set with
/// --backend=mem|btree|trie (or TARDIS_BENCH_BACKEND); defaults to mem,
/// the paper's all-requests-cached configuration.
inline RecordBackend& BenchBackendRef() {
  static RecordBackend backend = RecordBackend::kMem;
  return backend;
}
inline RecordBackend BenchBackend() { return BenchBackendRef(); }
inline const char* BenchBackendName() {
  return RecordBackendName(BenchBackend());
}

/// TardisOptions preconfigured with the run's backend; drivers that build
/// stores by hand start from this instead of a default-constructed one.
inline TardisOptions BenchStoreOptions() {
  TardisOptions options;  // in-memory: no directory even for btree
  options.backend = BenchBackend();
  return options;
}

/// Parses shared benchmark flags (--seed=N, --backend=mem|btree|trie).
/// Unrecognized arguments are left alone for binary-specific handling.
inline void ParseBenchFlags(int argc, char** argv) {
  if (const char* env = getenv("TARDIS_BENCH_SEED")) {
    BenchSeedRef() = strtoull(env, nullptr, 10);
  }
  if (const char* env = getenv("TARDIS_BENCH_BACKEND")) {
    BenchBackendRef() = ParseRecordBackend(env);
  }
  for (int i = 1; i < argc; i++) {
    if (strncmp(argv[i], "--seed=", 7) == 0) {
      BenchSeedRef() = strtoull(argv[i] + 7, nullptr, 10);
    } else if (strncmp(argv[i], "--backend=", 10) == 0) {
      const RecordBackend parsed = ParseRecordBackend(argv[i] + 10);
      if (parsed == RecordBackend::kDefault) {
        fprintf(stderr, "unknown --backend=%s (want mem|btree|trie)\n",
                argv[i] + 10);
        exit(2);
      }
      BenchBackendRef() = parsed;
    }
  }
}

/// Client-server round trip of the paper's testbed (§7.1.1: "ping
/// latencies average 0.15 ms"). Injected per operation by LatencyKv; this
/// is what gives 2PL its lock queues and OCC its validation window — see
/// latency_kv.h.
constexpr uint64_t kTestbedRttUs = 150;

/// A system under test: the TxKV store plus the TARDiS internals when the
/// system is TARDiS (for GC wiring and DAG statistics).
struct SystemUnderTest {
  std::string name;
  std::unique_ptr<TxKvStore> store;
  std::unique_ptr<TardisStore> tardis;  // null for the baselines
  std::unique_ptr<TxKvStore> latency;   // LatencyKv wrapper when enabled

  TardisStore* tardis_store() { return tardis.get(); }

  /// Wraps the store with the per-op testbed RTT.
  void EnableRtt(uint64_t rtt_us = kTestbedRttUs) {
    latency = std::make_unique<LatencyKv>(store.get(), rtt_us);
  }
  /// The store benchmarks should talk to.
  TxKvStore* facade() { return latency ? latency.get() : store.get(); }
};

/// TARDiS with branch-on-conflict enabled (Ancestor begin, Serializability
/// end — the Fig. 10 configuration), background GC, ceilings every 1000
/// commits per client.
inline SystemUnderTest MakeTardisBranching(bool with_gc = true) {
  SystemUnderTest sut;
  sut.name = "TARDiS";
  // In-memory: the paper keeps all requests cached.
  TardisOptions options = BenchStoreOptions();
  auto store = TardisStore::Open(options);
  sut.tardis = std::move(*store);
  sut.store = std::make_unique<TardisTxKv>(
      sut.tardis.get(), AncestorBegin(), SerializabilityEnd(), "TARDiS",
      /*ceiling_interval=*/1000);
  if (with_gc) sut.tardis->StartGcThread(100);
  return sut;
}

/// TARDiS mimicking sequential storage (Ancestor begin, Serializability ∧
/// NoBranching end — the Fig. 9 configuration): conflicts abort instead of
/// branching.
inline SystemUnderTest MakeTardisSequential(bool with_gc = true) {
  SystemUnderTest sut;
  sut.name = "TARDiS";
  TardisOptions options = BenchStoreOptions();
  auto store = TardisStore::Open(options);
  sut.tardis = std::move(*store);
  sut.store = std::make_unique<TardisTxKv>(
      sut.tardis.get(), AncestorBegin(),
      AndEnd({SerializabilityEnd(), NoBranchingEnd()}), "TARDiS",
      /*ceiling_interval=*/1000);
  if (with_gc) sut.tardis->StartGcThread(100);
  return sut;
}

/// TARDiS with caller-chosen constraints (Fig. 11).
inline SystemUnderTest MakeTardisWith(BeginConstraintPtr begin,
                                      EndConstraintPtr end,
                                      const std::string& label) {
  SystemUnderTest sut;
  sut.name = label;
  TardisOptions options = BenchStoreOptions();
  auto store = TardisStore::Open(options);
  sut.tardis = std::move(*store);
  sut.store = std::make_unique<TardisTxKv>(sut.tardis.get(), std::move(begin),
                                           std::move(end), label,
                                           /*ceiling_interval=*/1000);
  sut.tardis->StartGcThread(100);
  return sut;
}

/// The BerkeleyDB stand-in: strict 2PL with record locks.
inline SystemUnderTest MakeSeqKv() {
  SystemUnderTest sut;
  sut.name = "BDB(2PL)";
  TwoPLOptions options;
  options.lock_timeout_us = 1'000;
  auto store = TwoPLStore::Open(options);
  sut.store = std::move(*store);
  return sut;
}

/// The OCC baseline.
inline SystemUnderTest MakeOcc() {
  SystemUnderTest sut;
  sut.name = "OCC";
  auto store = OccStore::Open(OccOptions{});
  sut.store = std::move(*store);
  return sut;
}

/// Prints the registry movement captured over the measurement window,
/// indented under the row it belongs to. No-op for systems that don't
/// expose a registry (DriverOptions::metrics unset -> empty delta).
inline void PrintMetricsDelta(const DriverResult& r) {
  if (r.metrics_delta.empty()) return;
  std::string line;
  for (char c : r.metrics_delta) {
    if (c == '\n') {
      printf("             | %s\n", line.c_str());
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) printf("             | %s\n", line.c_str());
}

inline void PrintHeader(const char* what, const char* paper_expectation) {
  printf("==================================================================\n");
  printf("%s\n", what);
  printf("paper: %s\n", paper_expectation);
  printf("seed: %llu (rerun with --seed=%llu to reproduce)\n",
         static_cast<unsigned long long>(BenchSeed()),
         static_cast<unsigned long long>(BenchSeed()));
  printf("backend: %s (choose with --backend=mem|btree|trie)\n",
         BenchBackendName());
  printf("(set TARDIS_BENCH_SCALE>1 for longer, steadier runs)\n");
  printf("==================================================================\n");
}

}  // namespace bench
}  // namespace tardis

#endif  // TARDIS_BENCH_BENCH_COMMON_H_
