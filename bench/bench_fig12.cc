// Figure 12: TARDiS scalability across sites. A cluster of 1, 2 and 3
// multi-master sites connected by the simulated WAN (injected latency);
// clients run closed loops against their local site while the replicators
// gossip committed transactions. Aggregated committed throughput is
// reported for read-heavy and write-heavy mixes.
//
// The key property (§7.1.6): remote transactions apply without contending
// with local ones, so aggregate throughput scales ~linearly with sites.

#include <thread>

#include "bench_common.h"
#include "replication/cluster.h"

using namespace tardis;
using namespace tardis::bench;

namespace {

double RunCluster(size_t num_sites, Mix mix) {
  ClusterOptions options;
  options.num_sites = num_sites;
  options.network.latency_us = 100'000;  // 100 ms one-way WAN
  auto cluster_or = Cluster::Open(options);
  if (!cluster_or.ok()) return 0;
  Cluster* cluster = cluster_or->get();
  cluster->Start();

  WorkloadOptions w;
  w.num_keys = 10'000;
  w.mix = mix;
  w.dist = Distribution::kUniform;

  // Per-site TxKV adapters (branching config) + preload at site 0, then
  // wait for it to replicate everywhere.
  std::vector<std::unique_ptr<TardisTxKv>> adapters;
  std::vector<std::unique_ptr<LatencyKv>> frontends;
  for (size_t s = 0; s < num_sites; s++) {
    adapters.push_back(std::make_unique<TardisTxKv>(
        cluster->site(s), AncestorBegin(), SerializabilityEnd(), "TARDiS",
        1000));
    frontends.push_back(
        std::make_unique<LatencyKv>(adapters.back().get(), kTestbedRttUs));
  }
  if (!Preload(adapters[0].get(), w).ok()) return 0;
  cluster->WaitQuiescent(30'000);

  // One driver per site, run concurrently; sum committed txns.
  DriverOptions d;
  d.seed = BenchSeed();
  d.num_clients = 8;
  d.duration_ms = ScaledMs(1000);
  std::vector<DriverResult> results(num_sites);
  std::vector<std::thread> threads;
  for (size_t s = 0; s < num_sites; s++) {
    threads.emplace_back([&, s] {
      results[s] = RunClosedLoop(frontends[s].get(), w, d);
    });
  }
  for (auto& t : threads) t.join();
  cluster->Stop();

  double total = 0;
  for (const DriverResult& r : results) total += r.throughput;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(argc, argv);
  PrintHeader(
      "Figure 12: aggregate throughput vs number of sites (100 ms WAN)",
      "TARDiS scales linearly with sites: remote transactions are applied "
      "asynchronously and do not contend with local ones.");
  printf("%-12s %10s %16s\n", "workload", "sites", "agg thr(txn/s)");
  for (Mix mix : {Mix::kReadHeavy, Mix::kWriteHeavy}) {
    for (size_t sites = 1; sites <= 3; sites++) {
      const double thr = RunCluster(sites, mix);
      printf("%-12s %10zu %16.0f\n", MixName(mix), sites, thr);
    }
  }
  return 0;
}
