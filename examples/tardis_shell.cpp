// tardis_shell: an interactive REPL for poking at a TARDiS store — create
// sessions, run transactions, fork the state on purpose, inspect the DAG,
// and merge branches by hand. Handy for exploring the branch-and-merge
// model and for debugging.
//
//   $ ./examples/tardis_shell              # interactive
//   $ echo "help" | ./examples/tardis_shell
//   $ ./examples/tardis_shell --demo       # scripted self-demo
//
// Commands:
//   session <name>          switch to (or create) a client session
//   begin [parent|ancestor] start a transaction on the current session
//   get <key>               read inside the open transaction
//   put <key> <value>       write inside the open transaction
//   commit [ser|si|ser-nb]  commit (default ser)
//   abort                   abort the open transaction
//   merge                   start a merge transaction over all branch tips
//   forks                   fork points of the open merge's parents
//   conflicts               conflicting keys of the open merge's parents
//   getat <key> <state-id>  value of key at a given state (getForID)
//   dag                     print the state DAG
//   dot                     print the DAG as graphviz
//   gc                      place a ceiling here and run garbage collection
//   stats                   store statistics
//   quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/tardis_store.h"

using namespace tardis;

namespace {

struct Shell {
  std::unique_ptr<TardisStore> store;
  std::map<std::string, std::unique_ptr<ClientSession>> sessions;
  // One open transaction per session, so the REPL can interleave
  // transactions from different sessions and provoke real forks.
  std::map<std::string, TxnPtr> txns;
  std::string current = "default";

  ClientSession* session() {
    auto& slot = sessions[current];
    if (!slot) slot = store->CreateSession();
    return slot.get();
  }

  TxnPtr& txn_slot() { return txns[current]; }

  void Help() {
    printf(
        "commands: session <name> | begin [parent|ancestor] | get <k> |\n"
        "  put <k> <v> | commit [ser|si|ser-nb] | abort | merge | forks |\n"
        "  conflicts | getat <k> <state-id> | dag | dot | gc | stats | "
        "quit\n");
  }

  bool NeedTxn() {
    if (txn_slot() == nullptr) {
      printf("no open transaction on session %s (use `begin` or `merge`)\n",
             current.c_str());
      return false;
    }
    return true;
  }

  void Execute(const std::string& line) {
    std::stringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) return;

    if (cmd == "help") {
      Help();
    } else if (cmd == "session") {
      std::string name;
      if (ss >> name) current = name;
      printf("session: %s\n", current.c_str());
    } else if (cmd == "begin") {
      std::string which = "ancestor";
      ss >> which;
      auto t = store->Begin(session(),
                            which == "parent" ? ParentBegin() : AncestorBegin());
      if (!t.ok()) {
        printf("begin failed: %s\n", t.status().ToString().c_str());
        return;
      }
      txn_slot() = std::move(*t);
      printf("[%s] reading from state %llu\n", current.c_str(),
             static_cast<unsigned long long>(txn_slot()->parents()[0]));
    } else if (cmd == "merge") {
      auto t = store->BeginMerge(session());
      if (!t.ok()) {
        printf("merge begin failed: %s\n", t.status().ToString().c_str());
        return;
      }
      txn_slot() = std::move(*t);
      printf("merging %zu branch tips:", txn_slot()->parents().size());
      for (StateId p : txn_slot()->parents()) {
        printf(" %llu", static_cast<unsigned long long>(p));
      }
      printf("\n");
    } else if (cmd == "get") {
      if (!NeedTxn()) return;
      std::string key;
      ss >> key;
      std::string value;
      Status s = txn_slot()->Get(key, &value);
      if (s.ok()) printf("%s = %s\n", key.c_str(), value.c_str());
      else printf("%s: %s\n", key.c_str(), s.ToString().c_str());
    } else if (cmd == "put") {
      if (!NeedTxn()) return;
      std::string key, value;
      ss >> key;
      std::getline(ss, value);
      if (!value.empty() && value[0] == ' ') value.erase(0, 1);
      Status s = txn_slot()->Put(key, value);
      printf("%s\n", s.ToString().c_str());
    } else if (cmd == "commit") {
      if (!NeedTxn()) return;
      std::string which = "ser";
      ss >> which;
      EndConstraintPtr end =
          which == "si" ? SnapshotIsolationEnd()
          : which == "ser-nb"
              ? AndEnd({SerializabilityEnd(), NoBranchingEnd()})
              : SerializabilityEnd();
      Status s = txn_slot()->Commit(end);
      txn_slot().reset();
      if (s.ok()) {
        printf("committed as state %llu (%zu branch tip%s now)\n",
               static_cast<unsigned long long>(
                   session()->last_commit()->id()),
               store->dag()->Leaves().size(),
               store->dag()->Leaves().size() == 1 ? "" : "s");
      } else {
        printf("commit failed: %s\n", s.ToString().c_str());
      }
    } else if (cmd == "abort") {
      if (!NeedTxn()) return;
      txn_slot()->Abort();
      txn_slot().reset();
      printf("aborted\n");
    } else if (cmd == "forks") {
      if (!NeedTxn()) return;
      auto forks = txn_slot()->FindForkPoints(txn_slot()->parents());
      if (!forks.ok()) {
        printf("%s\n", forks.status().ToString().c_str());
        return;
      }
      printf("fork points:");
      for (StateId f : *forks) {
        printf(" %llu", static_cast<unsigned long long>(f));
      }
      printf("\n");
    } else if (cmd == "conflicts") {
      if (!NeedTxn()) return;
      auto conflicts = txn_slot()->FindConflictWrites(txn_slot()->parents());
      if (!conflicts.ok()) {
        printf("%s\n", conflicts.status().ToString().c_str());
        return;
      }
      printf("conflicting keys:");
      for (const std::string& k : *conflicts) printf(" %s", k.c_str());
      printf("\n");
    } else if (cmd == "getat") {
      if (!NeedTxn()) return;
      std::string key;
      unsigned long long sid = 0;
      ss >> key >> sid;
      std::string value;
      Status s = txn_slot()->GetForId(key, sid, &value);
      if (s.ok()) printf("%s @%llu = %s\n", key.c_str(), sid, value.c_str());
      else printf("%s\n", s.ToString().c_str());
    } else if (cmd == "dag") {
      printf("%s", store->dag()->DebugString().c_str());
    } else if (cmd == "dot") {
      printf("%s", store->dag()->ToDot().c_str());
    } else if (cmd == "gc") {
      store->PlaceCeiling(session());
      GcStats stats = store->RunGarbageCollection();
      printf("gc: deleted %llu states, pruned %llu versions (%zu states "
             "remain)\n",
             static_cast<unsigned long long>(stats.states_deleted),
             static_cast<unsigned long long>(stats.versions_pruned),
             store->dag()->state_count());
    } else if (cmd == "stats") {
      const StoreStats s = store->stats();
      printf("commits=%llu aborts=%llu read-only=%llu branches=%llu "
             "merges=%llu remote=%llu\n",
             static_cast<unsigned long long>(s.commits),
             static_cast<unsigned long long>(s.aborts),
             static_cast<unsigned long long>(s.read_only_commits),
             static_cast<unsigned long long>(s.branches_created),
             static_cast<unsigned long long>(s.merges_committed),
             static_cast<unsigned long long>(s.remote_applied));
      printf("states=%zu leaves=%zu keys=%zu versions=%zu\n",
             store->dag()->state_count(), store->dag()->Leaves().size(),
             store->kvmap()->key_count(), store->kvmap()->version_count());
    } else if (cmd == "quit" || cmd == "exit") {
      exit(0);
    } else {
      printf("unknown command: %s (try `help`)\n", cmd.c_str());
    }
  }
};

const char* kDemoScript[] = {
    // A shared prefix...
    "session alice", "begin", "put page neutral", "commit",
    // ...then two transactions interleave: both read `page` from the same
    // state, both write it, both commit. The second commit forks.
    "session alice", "begin", "get page",
    "session bruno", "begin", "get page",
    "session alice", "put page FOR", "commit",
    "session bruno", "put page AGAINST", "commit",
    "dag",
    // Each session still reads its own value (inter-branch isolation).
    "session alice", "begin", "get page", "abort",
    "session bruno", "begin", "get page", "abort",
    // A moderator merges the branches with full context.
    "session moderator", "merge", "forks", "conflicts",
    "getat page 1", "put page disputed", "commit",
    "dag", "gc", "stats",
};

}  // namespace

int main(int argc, char** argv) {
  auto store_or = TardisStore::Open(TardisOptions{});
  if (!store_or.ok()) {
    fprintf(stderr, "open failed: %s\n",
            store_or.status().ToString().c_str());
    return 1;
  }
  Shell shell;
  shell.store = std::move(*store_or);

  if (argc > 1 && strcmp(argv[1], "--demo") == 0) {
    for (const char* line : kDemoScript) {
      printf("tardis> %s\n", line);
      shell.Execute(line);
    }
    return 0;
  }

  printf("TARDiS shell — `help` for commands, `--demo` for a scripted "
         "tour.\n");
  std::string line;
  while (true) {
    printf("tardis> ");
    fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    shell.Execute(line);
  }
  return 0;
}
