// tardis_shell: an interactive REPL for poking at a TARDiS store — create
// sessions, run transactions, fork the state on purpose, inspect the DAG,
// and merge branches by hand. Handy for exploring the branch-and-merge
// model and for debugging.
//
//   $ ./examples/tardis_shell              # interactive, in-process store
//   $ echo "help" | ./examples/tardis_shell
//   $ ./examples/tardis_shell --demo       # scripted self-demo
//   $ ./examples/tardis_shell --connect host:port   # remote mode
//
// With --connect the shell attaches to a running tardisd (client port) or
// tardis-router instead of an in-process store, through TardisClient
// (src/client/): commands carry the `*S` session header, writes are
// exactly-once across retries, retryable errors (ERR BUSY / DEADLINE /
// SHUTTING_DOWN / BEHIND) back off with jitter, and a comma-separated
// endpoint list fails over automatically. END-terminated multi-line
// replies (health, metrics, stats, merge, sync) are read to completion.
// Against a router, `health` therefore shows the aggregated per-partition
// state (one P<i>-prefixed block per partition). --stale-reads-ms=N
// relaxes session read floors learned in the last N ms (bounded-staleness
// degraded reads instead of failover when replicas lag).
//
// Commands:
//   session <name>          switch to (or create) a client session
//   begin [parent|ancestor] start a transaction on the current session
//   get <key>               read inside the open transaction
//   put <key> <value>       write inside the open transaction
//   commit [ser|si|ser-nb]  commit (default ser)
//   abort                   abort the open transaction
//   merge                   start a merge transaction over all branch tips
//   forks                   fork points of the open merge's parents
//   conflicts               conflicting keys of the open merge's parents
//   getat <key> <state-id>  value of key at a given state (getForID)
//   dag                     print the state DAG
//   dot                     print the DAG as graphviz
//   gc                      place a ceiling here and run garbage collection
//   stats                   store statistics
//   quit

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "client/tardis_client.h"
#include "core/tardis_store.h"

using namespace tardis;

namespace {

struct Shell {
  std::unique_ptr<TardisStore> store;
  std::map<std::string, std::unique_ptr<ClientSession>> sessions;
  // One open transaction per session, so the REPL can interleave
  // transactions from different sessions and provoke real forks.
  std::map<std::string, TxnPtr> txns;
  std::string current = "default";

  ClientSession* session() {
    auto& slot = sessions[current];
    if (!slot) slot = store->CreateSession();
    return slot.get();
  }

  TxnPtr& txn_slot() { return txns[current]; }

  void Help() {
    printf(
        "commands: session <name> | begin [parent|ancestor] | get <k> |\n"
        "  put <k> <v> | commit [ser|si|ser-nb] | abort | merge | forks |\n"
        "  conflicts | getat <k> <state-id> | dag | dot | gc | stats | "
        "quit\n");
  }

  bool NeedTxn() {
    if (txn_slot() == nullptr) {
      printf("no open transaction on session %s (use `begin` or `merge`)\n",
             current.c_str());
      return false;
    }
    return true;
  }

  void Execute(const std::string& line) {
    std::stringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) return;

    if (cmd == "help") {
      Help();
    } else if (cmd == "session") {
      std::string name;
      if (ss >> name) current = name;
      printf("session: %s\n", current.c_str());
    } else if (cmd == "begin") {
      std::string which = "ancestor";
      ss >> which;
      auto t = store->Begin(session(),
                            which == "parent" ? ParentBegin() : AncestorBegin());
      if (!t.ok()) {
        printf("begin failed: %s\n", t.status().ToString().c_str());
        return;
      }
      txn_slot() = std::move(*t);
      printf("[%s] reading from state %llu\n", current.c_str(),
             static_cast<unsigned long long>(txn_slot()->parents()[0]));
    } else if (cmd == "merge") {
      auto t = store->BeginMerge(session());
      if (!t.ok()) {
        printf("merge begin failed: %s\n", t.status().ToString().c_str());
        return;
      }
      txn_slot() = std::move(*t);
      printf("merging %zu branch tips:", txn_slot()->parents().size());
      for (StateId p : txn_slot()->parents()) {
        printf(" %llu", static_cast<unsigned long long>(p));
      }
      printf("\n");
    } else if (cmd == "get") {
      if (!NeedTxn()) return;
      std::string key;
      ss >> key;
      std::string value;
      Status s = txn_slot()->Get(key, &value);
      if (s.ok()) printf("%s = %s\n", key.c_str(), value.c_str());
      else printf("%s: %s\n", key.c_str(), s.ToString().c_str());
    } else if (cmd == "put") {
      if (!NeedTxn()) return;
      std::string key, value;
      ss >> key;
      std::getline(ss, value);
      if (!value.empty() && value[0] == ' ') value.erase(0, 1);
      Status s = txn_slot()->Put(key, value);
      printf("%s\n", s.ToString().c_str());
    } else if (cmd == "commit") {
      if (!NeedTxn()) return;
      std::string which = "ser";
      ss >> which;
      EndConstraintPtr end =
          which == "si" ? SnapshotIsolationEnd()
          : which == "ser-nb"
              ? AndEnd({SerializabilityEnd(), NoBranchingEnd()})
              : SerializabilityEnd();
      Status s = txn_slot()->Commit(end);
      txn_slot().reset();
      if (s.ok()) {
        printf("committed as state %llu (%zu branch tip%s now)\n",
               static_cast<unsigned long long>(
                   session()->last_commit()->id()),
               store->dag()->Leaves().size(),
               store->dag()->Leaves().size() == 1 ? "" : "s");
      } else {
        printf("commit failed: %s\n", s.ToString().c_str());
      }
    } else if (cmd == "abort") {
      if (!NeedTxn()) return;
      txn_slot()->Abort();
      txn_slot().reset();
      printf("aborted\n");
    } else if (cmd == "forks") {
      if (!NeedTxn()) return;
      auto forks = txn_slot()->FindForkPoints(txn_slot()->parents());
      if (!forks.ok()) {
        printf("%s\n", forks.status().ToString().c_str());
        return;
      }
      printf("fork points:");
      for (StateId f : *forks) {
        printf(" %llu", static_cast<unsigned long long>(f));
      }
      printf("\n");
    } else if (cmd == "conflicts") {
      if (!NeedTxn()) return;
      auto conflicts = txn_slot()->FindConflictWrites(txn_slot()->parents());
      if (!conflicts.ok()) {
        printf("%s\n", conflicts.status().ToString().c_str());
        return;
      }
      printf("conflicting keys:");
      for (const std::string& k : *conflicts) printf(" %s", k.c_str());
      printf("\n");
    } else if (cmd == "getat") {
      if (!NeedTxn()) return;
      std::string key;
      unsigned long long sid = 0;
      ss >> key >> sid;
      std::string value;
      Status s = txn_slot()->GetForId(key, sid, &value);
      if (s.ok()) printf("%s @%llu = %s\n", key.c_str(), sid, value.c_str());
      else printf("%s\n", s.ToString().c_str());
    } else if (cmd == "dag") {
      printf("%s", store->dag()->DebugString().c_str());
    } else if (cmd == "dot") {
      printf("%s", store->dag()->ToDot().c_str());
    } else if (cmd == "gc") {
      store->PlaceCeiling(session());
      GcStats stats = store->RunGarbageCollection();
      printf("gc: deleted %llu states, pruned %llu versions (%zu states "
             "remain)\n",
             static_cast<unsigned long long>(stats.states_deleted),
             static_cast<unsigned long long>(stats.versions_pruned),
             store->dag()->state_count());
    } else if (cmd == "stats") {
      const StoreStats s = store->stats();
      printf("commits=%llu aborts=%llu read-only=%llu branches=%llu "
             "merges=%llu remote=%llu\n",
             static_cast<unsigned long long>(s.commits),
             static_cast<unsigned long long>(s.aborts),
             static_cast<unsigned long long>(s.read_only_commits),
             static_cast<unsigned long long>(s.branches_created),
             static_cast<unsigned long long>(s.merges_committed),
             static_cast<unsigned long long>(s.remote_applied));
      printf("states=%zu leaves=%zu keys=%zu versions=%zu\n",
             store->dag()->state_count(), store->dag()->Leaves().size(),
             store->kvmap()->key_count(), store->kvmap()->version_count());
    } else if (cmd == "quit" || cmd == "exit") {
      exit(0);
    } else {
      printf("unknown command: %s (try `help`)\n", cmd.c_str());
    }
  }
};

/// Remote mode: the REPL front-end over TardisClient, which owns the one
/// retry/backoff/failover implementation for the line protocol. Knows
/// which commands produce END-terminated multi-line replies so the REPL
/// prints them whole instead of one line per prompt.
struct RemoteShell {
  std::unique_ptr<client::TardisClient> cli;

  bool Connect(const std::string& endpoints_csv, uint64_t stale_reads_ms) {
    client::TardisClientOptions opt;
    std::stringstream ss(endpoints_csv);
    std::string ep;
    while (std::getline(ss, ep, ',')) {
      if (!ep.empty()) opt.endpoints.push_back(ep);
    }
    opt.stale_reads_ms = stale_reads_ms;
    cli = std::make_unique<client::TardisClient>(std::move(opt));
    std::string reply;
    Status s = cli->Call("ping", &reply);
    if (!s.ok()) {
      fprintf(stderr, "connect %s: %s\n", endpoints_csv.c_str(),
              s.ToString().c_str());
      return false;
    }
    return true;
  }

  /// Sends one command, prints the full reply. Returns false when the
  /// REPL should exit.
  bool Execute(const std::string& line) {
    std::stringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) return true;
    const bool multi_line = cmd == "health" || cmd == "metrics" ||
                            cmd == "stats" || cmd == "merge" || cmd == "sync";
    std::string reply;
    const Status s =
        multi_line ? cli->CallMulti(line, &reply) : cli->Call(line, &reply);
    if (!s.ok()) {
      // The client already retried to its deadline; the session survives,
      // so a later command simply reconnects.
      printf("ERR %s\n", s.ToString().c_str());
      return !(cmd == "quit" || cmd == "shutdown");
    }
    if (!reply.empty()) printf("%s\n", reply.c_str());
    if (multi_line && reply.compare(0, 4, "ERR ") != 0) printf("END\n");
    return !(cmd == "quit" || cmd == "shutdown");
  }
};

const char* kDemoScript[] = {
    // A shared prefix...
    "session alice", "begin", "put page neutral", "commit",
    // ...then two transactions interleave: both read `page` from the same
    // state, both write it, both commit. The second commit forks.
    "session alice", "begin", "get page",
    "session bruno", "begin", "get page",
    "session alice", "put page FOR", "commit",
    "session bruno", "put page AGAINST", "commit",
    "dag",
    // Each session still reads its own value (inter-branch isolation).
    "session alice", "begin", "get page", "abort",
    "session bruno", "begin", "get page", "abort",
    // A moderator merges the branches with full context.
    "session moderator", "merge", "forks", "conflicts",
    "getat page 1", "put page disputed", "commit",
    "dag", "gc", "stats",
};

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && strncmp(argv[1], "--connect", 9) == 0) {
    std::string endpoint;
    if (strncmp(argv[1], "--connect=", 10) == 0) {
      endpoint = argv[1] + 10;
    } else if (argc > 2) {
      endpoint = argv[2];
    }
    uint64_t stale_reads_ms = 0;
    for (int i = 2; i < argc; i++) {
      if (strncmp(argv[i], "--stale-reads-ms=", 17) == 0) {
        stale_reads_ms = strtoull(argv[i] + 17, nullptr, 10);
      }
    }
    if (endpoint.empty()) {
      fprintf(stderr,
              "usage: tardis_shell --connect host:port[,host:port...] "
              "[--stale-reads-ms=N]\n");
      return 2;
    }
    RemoteShell remote;
    if (!remote.Connect(endpoint, stale_reads_ms)) return 1;
    printf("TARDiS shell — connected to %s (remote line protocol with "
           "session retries/failover; try `health`).\n",
           endpoint.c_str());
    std::string line;
    while (true) {
      printf("tardis> ");
      fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      if (line.empty()) continue;
      if (!remote.Execute(line)) break;
    }
    return 0;
  }

  auto store_or = TardisStore::Open(TardisOptions{});
  if (!store_or.ok()) {
    fprintf(stderr, "open failed: %s\n",
            store_or.status().ToString().c_str());
    return 1;
  }
  Shell shell;
  shell.store = std::move(*store_or);

  if (argc > 1 && strcmp(argv[1], "--demo") == 0) {
    for (const char* line : kDemoScript) {
      printf("tardis> %s\n", line);
      shell.Execute(line);
    }
    return 0;
  }

  printf("TARDiS shell — `help` for commands, `--demo` for a scripted "
         "tour.\n");
  std::string line;
  while (true) {
    printf("tardis> ");
    fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    shell.Execute(line);
  }
  return 0;
}
