// tardisd: a TARDiS site daemon — one TardisStore + Replicator behind a
// TcpTransport, i.e. one of the paper's replicated sites (§6.4) as a real
// OS process. Sites gossip commits over TCP using the length-prefixed
// CRC-framed wire codec; clients speak a minimal line protocol on a
// separate port.
//
// Usage:
//   tardisd --site=0 --peers=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//           --client-port=8000 [--gc-mode=optimistic|pessimistic]
//           [--dir=PATH] [--metrics-port=P]
//
// --peers lists every site's replication endpoint, indexed by site id;
// entry --site names this daemon's own listen address. With
// --metrics-port the daemon additionally serves the full metrics registry
// as Prometheus text over plain HTTP (GET anything on that port).
//
// Client commands (one per line; single-line replies unless noted):
//
//   ping                  liveness probe -> PONG
//   put <key> <value>     commit a single-key transaction -> OK
//   get <key>             read on this site's branch -> VALUE <v> | NOTFOUND
//   merge [counter|lww]   merge all branch tips -> MERGED <n> | NOMERGE
//   leaves                number of branch tips -> LEAVES <n>
//   states                State DAG size -> STATES <n>
//   sync                  broadcast a recovery sync request -> OK
//   peers                 connected outbound peers -> PEERS <n>
//   isolate <site>        cut traffic to/from <site> at this endpoint -> OK
//   heal                  undo all isolates -> OK
//   metrics [prom|table]  full registry dump, multi-line, terminated "END"
//   stats                 alias of `metrics table`
//   trace start|stop      toggle the branch-lifecycle tracer -> OK
//   trace dump <path>     write captured events as Chrome trace JSON -> OK
//   quit                  close this client connection
//   shutdown              exit the daemon

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_transport.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "replication/replicator.h"
#include "util/logging.h"

namespace tardis {
namespace {

struct DaemonConfig {
  uint32_t site = 0;
  std::vector<TcpPeer> endpoints;  // every site, indexed by site id
  uint16_t client_port = 0;
  uint16_t metrics_port = 0;  ///< 0 disables the HTTP metrics endpoint
  GcCoordination gc_mode = GcCoordination::kOptimistic;
  std::string dir;
};

bool ParseEndpoints(const std::string& list, std::vector<TcpPeer>* out) {
  std::stringstream ss(list);
  std::string entry;
  uint32_t site = 0;
  while (std::getline(ss, entry, ',')) {
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos) return false;
    TcpPeer p;
    p.site = site++;
    p.host = entry.substr(0, colon);
    const int port = atoi(entry.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return false;
    p.port = static_cast<uint16_t>(port);
    out->push_back(std::move(p));
  }
  return out->size() >= 2;
}

bool ParseFlags(int argc, char** argv, DaemonConfig* config) {
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--site=")) {
      config->site = static_cast<uint32_t>(atoi(v));
    } else if (const char* v = value("--peers=")) {
      if (!ParseEndpoints(v, &config->endpoints)) return false;
    } else if (const char* v = value("--client-port=")) {
      config->client_port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--metrics-port=")) {
      config->metrics_port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--gc-mode=")) {
      if (strcmp(v, "pessimistic") == 0) {
        config->gc_mode = GcCoordination::kPessimistic;
      } else if (strcmp(v, "optimistic") != 0) {
        return false;
      }
    } else if (const char* v = value("--dir=")) {
      config->dir = v;
    } else {
      fprintf(stderr, "tardisd: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return !config->endpoints.empty() && config->site < config->endpoints.size() &&
         config->client_port != 0;
}

/// Merges all current branch tips into one state. `counter` resolves each
/// conflicting key as fork value + sum of per-branch deltas (the paper's
/// running counter example); `lww` keeps the largest value. Deterministic,
/// so any site may run it and all sites converge on the same record.
std::string DoMerge(TardisStore* store, ClientSession* session,
                    const std::string& strategy) {
  auto m = store->BeginMerge(session);
  if (!m.ok()) return "ERR " + m.status().ToString();
  const std::vector<StateId> parents = (*m)->parents();
  if (parents.size() < 2) {
    (*m)->Abort();
    return "NOMERGE";
  }
  auto conflicts = (*m)->FindConflictWrites(parents);
  if (!conflicts.ok()) {
    (*m)->Abort();
    return "ERR " + conflicts.status().ToString();
  }
  auto forks = (*m)->FindForkPoints(parents);
  if (!forks.ok()) {
    (*m)->Abort();
    return "ERR " + forks.status().ToString();
  }
  for (const std::string& key : *conflicts) {
    std::string merged;
    if (strategy == "counter") {
      std::string fv;
      const long long base =
          (*m)->GetForId(key, (*forks)[0], &fv).ok() ? atoll(fv.c_str()) : 0;
      long long result = base;
      for (StateId p : parents) {
        std::string bv;
        const long long branch =
            (*m)->GetForId(key, p, &bv).ok() ? atoll(bv.c_str()) : base;
        result += branch - base;
      }
      merged = std::to_string(result);
    } else {  // lww: largest value wins (deterministic at every site)
      for (StateId p : parents) {
        std::string bv;
        if ((*m)->GetForId(key, p, &bv).ok() && bv > merged) merged = bv;
      }
    }
    Status s = (*m)->Put(key, merged);
    if (!s.ok()) {
      (*m)->Abort();
      return "ERR " + s.ToString();
    }
  }
  Status s = (*m)->Commit();
  if (!s.ok()) return "ERR " + s.ToString();
  return "MERGED " + std::to_string(parents.size());
}

std::string HandleCommand(const std::string& line, TardisStore* store,
                          ClientSession* session, Replicator* replicator,
                          TcpTransport* transport, uint32_t site,
                          obs::MetricsRegistry* registry, bool* close_conn,
                          bool* shutdown) {
  std::stringstream ss(line);
  std::string cmd;
  ss >> cmd;
  if (cmd == "ping") return "PONG";
  if (cmd == "put") {
    std::string key;
    ss >> key;
    std::string value;
    std::getline(ss, value);
    if (!value.empty() && value[0] == ' ') value.erase(0, 1);
    if (key.empty()) return "ERR usage: put <key> <value>";
    auto txn = store->Begin(session);
    if (!txn.ok()) return "ERR " + txn.status().ToString();
    Status s = (*txn)->Put(key, value);
    if (s.ok()) s = (*txn)->Commit();
    return s.ok() ? "OK" : "ERR " + s.ToString();
  }
  if (cmd == "get") {
    std::string key;
    ss >> key;
    auto txn = store->Begin(session);
    if (!txn.ok()) return "ERR " + txn.status().ToString();
    std::string value;
    Status s = (*txn)->Get(key, &value);
    (*txn)->Abort();
    if (s.IsNotFound()) return "NOTFOUND";
    return s.ok() ? "VALUE " + value : "ERR " + s.ToString();
  }
  if (cmd == "merge") {
    std::string strategy = "lww";
    ss >> strategy;
    return DoMerge(store, session, strategy);
  }
  if (cmd == "leaves") {
    return "LEAVES " + std::to_string(store->dag()->Leaves().size());
  }
  if (cmd == "states") {
    return "STATES " + std::to_string(store->dag()->state_count());
  }
  if (cmd == "sync") {
    replicator->RequestSync();
    return "OK";
  }
  if (cmd == "peers") {
    uint32_t connected = 0;
    for (uint32_t s = 0; s < transport->num_sites(); s++) {
      if (s != site && transport->IsConnected(s)) connected++;
    }
    return "PEERS " + std::to_string(connected);
  }
  if (cmd == "isolate") {
    uint32_t peer = 0;
    // Failed extraction zeroes the value; test the stream, not a sentinel.
    if (!(ss >> peer) || peer >= transport->num_sites()) {
      return "ERR usage: isolate <site>";
    }
    transport->Partition(site, peer);
    return "OK";
  }
  if (cmd == "heal") {
    transport->HealAll();
    return "OK";
  }
  if (cmd == "metrics" || cmd == "stats") {
    // Multi-line reply; "END" terminates it so line-oriented clients know
    // where the dump stops.
    std::string format = cmd == "stats" ? "table" : "prom";
    ss >> format;
    const std::vector<obs::Sample> samples = registry->Collect();
    std::string body = format == "table" ? obs::RenderTable(samples)
                                         : obs::RenderPrometheus(samples);
    if (!body.empty() && body.back() != '\n') body.push_back('\n');
    return body + "END";
  }
  if (cmd == "trace") {
    std::string sub;
    ss >> sub;
    if (sub == "start") {
      obs::Tracer::Get().Enable();
      return "OK";
    }
    if (sub == "stop") {
      obs::Tracer::Get().Disable();
      return "OK";
    }
    if (sub == "dump") {
      std::string path;
      ss >> path;
      if (path.empty()) return "ERR usage: trace dump <path>";
      std::ofstream out(path, std::ios::trunc);
      if (!out) return "ERR cannot open " + path;
      out << obs::Tracer::Get().DumpChromeTrace();
      return "OK " + std::to_string(obs::Tracer::Get().EventCount());
    }
    return "ERR usage: trace start|stop|dump <path>";
  }
  if (cmd == "quit") {
    *close_conn = true;
    return "BYE";
  }
  if (cmd == "shutdown") {
    *close_conn = true;
    *shutdown = true;
    return "BYE";
  }
  return "ERR unknown command '" + cmd + "'";
}

/// Minimal plaintext-metrics HTTP server: accept, read (and ignore) the
/// request, answer one 200 with the current Prometheus rendering, close.
/// Enough for `curl` and a Prometheus scrape config.
class MetricsHttpServer {
 public:
  MetricsHttpServer(uint16_t port, std::shared_ptr<obs::MetricsRegistry> reg)
      : registry_(std::move(reg)) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = INADDR_ANY;
    addr.sin_port = htons(port);
    if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(fd_, 8) != 0) {
      fprintf(stderr, "tardisd: metrics port %u: %s\n", port, strerror(errno));
      close(fd_);
      fd_ = -1;
      return;
    }
    serving_ = true;
    thread_ = std::thread([this] { Serve(); });
  }

  ~MetricsHttpServer() {
    stop_.store(true);
    if (fd_ >= 0) {
      // shutdown() unblocks the accept; some platforms need the close too.
      ::shutdown(fd_, SHUT_RDWR);
      close(fd_);
    }
    if (thread_.joinable()) thread_.join();
  }

  bool serving() const { return serving_; }

 private:
  void Serve() {
    while (!stop_.load()) {
      const int conn = accept(fd_, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR) continue;
        return;  // listen socket closed: shutting down
      }
      char buf[4096];
      (void)read(conn, buf, sizeof(buf));  // request line + headers, ignored
      const std::string body = obs::RenderPrometheus(registry_->Collect());
      std::string resp =
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body;
      (void)write(conn, resp.data(), resp.size());
      close(conn);
    }
  }

  std::shared_ptr<obs::MetricsRegistry> registry_;
  int fd_ = -1;
  bool serving_ = false;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

int RunDaemon(const DaemonConfig& config) {
  SetLogSite(static_cast<int>(config.site));

  // One registry for the whole process: store, GC, replicator and
  // transport all register here, so `metrics` and --metrics-port expose
  // every subsystem in one dump. Created first so it outlives them all.
  auto registry = std::make_shared<obs::MetricsRegistry>();

  TcpTransportOptions net_options;
  net_options.site_id = config.site;
  net_options.listen_host = config.endpoints[config.site].host;
  net_options.listen_port = config.endpoints[config.site].port;
  for (const TcpPeer& p : config.endpoints) {
    if (p.site != config.site) net_options.peers.push_back(p);
  }
  auto transport = TcpTransport::Open(net_options);
  if (!transport.ok()) {
    fprintf(stderr, "tardisd: transport: %s\n",
            transport.status().ToString().c_str());
    return 1;
  }
  (*transport)->BindMetrics(registry.get(), config.site);

  TardisOptions store_options;
  store_options.site_id = config.site;
  store_options.dir = config.dir;
  store_options.metrics_registry = registry;
  auto store = TardisStore::Open(store_options);
  if (!store.ok()) {
    fprintf(stderr, "tardisd: store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  Replicator replicator(store->get(), transport->get(), config.site,
                        config.gc_mode);
  replicator.Start();
  auto session = (*store)->CreateSession();

  const int server_fd = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(server_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = INADDR_ANY;
  addr.sin_port = htons(config.client_port);
  if (bind(server_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(server_fd, 16) != 0) {
    fprintf(stderr, "tardisd: client port %u: %s\n", config.client_port,
            strerror(errno));
    return 1;
  }
  std::unique_ptr<MetricsHttpServer> metrics_http;
  if (config.metrics_port != 0) {
    metrics_http =
        std::make_unique<MetricsHttpServer>(config.metrics_port, registry);
    if (!metrics_http->serving()) return 1;
  }

  printf("tardisd: site %u serving clients on port %u, replication on %u%s\n",
         config.site, config.client_port, (*transport)->listen_port(),
         config.metrics_port != 0 ? ", metrics via http" : "");
  fflush(stdout);

  bool shutdown = false;
  while (!shutdown) {
    const int conn = accept(server_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::string buffer;
    bool close_conn = false;
    char chunk[4096];
    while (!close_conn) {
      const ssize_t n = read(conn, chunk, sizeof(chunk));
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      size_t nl;
      while (!close_conn && (nl = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        std::string reply =
            HandleCommand(line, store->get(), session.get(), &replicator,
                          transport->get(), config.site, registry.get(),
                          &close_conn, &shutdown);
        reply.push_back('\n');
        if (write(conn, reply.data(), reply.size()) < 0) close_conn = true;
      }
    }
    close(conn);
  }
  close(server_fd);
  metrics_http.reset();
  replicator.Stop();
  (*transport)->Shutdown();
  return 0;
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) {
  tardis::DaemonConfig config;
  if (!tardis::ParseFlags(argc, argv, &config)) {
    fprintf(stderr,
            "usage: tardisd --site=N --peers=host:port,... --client-port=P\n"
            "               [--gc-mode=optimistic|pessimistic] [--dir=PATH]\n"
            "               [--metrics-port=P]\n"
            "--peers is indexed by site id and must name every site,\n"
            "including this one's own replication endpoint.\n");
    return 2;
  }
  return tardis::RunDaemon(config);
}
