// tardisd: a TARDiS site daemon — one TardisStore + Replicator behind a
// TcpTransport, i.e. one of the paper's replicated sites (§6.4) as a real
// OS process. Sites gossip commits over TCP using the length-prefixed
// CRC-framed wire codec; clients speak a minimal line protocol on a
// separate port.
//
// Usage:
//   tardisd --site=0 --peers=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//           --client-port=8000 [--gc-mode=optimistic|pessimistic]
//           [--dir=PATH] [--metrics-port=P] [--workers=N] [--max-queue=N]
//           [--request-deadline-ms=MS] [--tick-ms=MS] [--heartbeats=0|1]
//           [--archive-horizon=N] [--partition=N] [--coord-port=P]
//           [--twopc-resolve-ms=MS] [--slow-ms=MS]
//
// With --coord-port the daemon additionally serves the cluster
// coordination protocol (router fast path + cross-partition 2PC; see
// src/cluster/ and DESIGN.md §10) on that port; --partition labels which
// hash range of the cluster's PartitionMap this replica set owns.
//
// --peers lists every site's replication endpoint, indexed by site id;
// entry --site names this daemon's own listen address. With
// --metrics-port the daemon additionally serves the full metrics registry
// as Prometheus text over plain HTTP (GET anything on that port).
//
// Overload safety: client requests flow through a bounded queue drained
// by a small worker pool. When the queue is full new requests are shed
// with "ERR BUSY …" (retryable); a request that waits in the queue past
// --request-deadline-ms is answered "ERR DEADLINE …" (retryable) without
// being executed. SIGTERM drains gracefully: stop accepting, finish the
// queued work, flush the WAL, wait for the transport to push out the last
// gossip, then exit 0 — locally committed transactions survive restart.
//
// Client commands (one per line; single-line replies unless noted):
//
//   ping                  liveness probe -> PONG
//   put <key> <value>     commit a single-key transaction -> OK
//   get <key>             read on this site's branch -> VALUE <v> | NOTFOUND
//   merge [counter|lww]   merge all branch tips -> MERGED <n> | NOMERGE
//   leaves                number of branch tips -> LEAVES <n>
//   states                State DAG size -> STATES <n>
//   sync                  broadcast a recovery sync request -> OK
//   peers                 handshaked outbound peers -> PEERS <n>
//   health                liveness + floors + queue depth, multi-line, "END"
//   isolate <site>        cut traffic to/from <site> at this endpoint -> OK
//   heal                  undo all isolates -> OK
//   metrics [prom|table]  full registry dump, multi-line, terminated "END"
//   stats                 alias of `metrics table`
//   trace start|stop      toggle the branch-lifecycle tracer -> OK
//   trace dump <path>     write captured events as Chrome trace JSON -> OK
//   trace json            stream the Chrome trace JSON inline, ends "END"
//   sleep <ms>            hold a worker for <ms> (overload testing) -> OK
//   quit                  close this client connection
//   shutdown              drain and exit the daemon
//
// Retryable errors ("ERR BUSY", "ERR DEADLINE", "ERR SHUTTING_DOWN") mean
// the request was NOT executed; clients back off and resend (see
// util/backoff.h and the driver's retry helper).
//
// Any command line may carry a leading "*T<trace>/<span>/<flags>" header
// (obs::StripTraceHeader): the worker binds that distributed-trace
// context for the request, so the daemon's spans join the caller's
// trace. --slow-ms=MS logs a structured warning for any request slower
// than MS, with the trace id and the per-stage latency breakdown.
//
// After the trace header a line may carry an exactly-once session header
// "*S<sid>/<seq>/<attempt>/<flags>[/floors]" (DESIGN.md §13): sessioned
// writes are deduped against the per-site table and answered
// "OK STATE <site>:<seq>"; sessioned requests whose read floors this
// site has not caught up to are refused "ERR BEHIND" (retryable at
// another site) unless the header sets the stale-ok flag; and sessioned
// replies are prefixed with a "*F<site>:<seq>,..." floor token the
// client folds back into its session. A corrupt or oversized session
// header is rejected with retryable "ERR HEADER" — never silently
// stripped, which would turn a dedupable write into a blind one.

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coord_server.h"
#include "cluster/framed_client.h"
#include "cluster/twopc.h"
#include "core/session.h"
#include "net/tcp_transport.h"
#include "obs/exposition.h"
#include "obs/http_exporter.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "replication/replicator.h"
#include "util/clock.h"
#include "util/logging.h"

namespace tardis {
namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct DaemonConfig {
  uint32_t site = 0;
  std::vector<TcpPeer> endpoints;  // every site, indexed by site id
  uint16_t client_port = 0;
  uint16_t metrics_port = 0;  ///< 0 disables the HTTP metrics endpoint
  GcCoordination gc_mode = GcCoordination::kOptimistic;
  std::string dir;
  /// Record backend (--backend=mem|btree|trie); kDefault keeps the
  /// historical choice: btree when --dir is set, mem otherwise.
  RecordBackend backend = RecordBackend::kDefault;
  uint32_t workers = 4;
  size_t max_queue = 128;
  uint64_t request_deadline_ms = 1000;
  uint64_t tick_ms = 50;
  bool heartbeats = true;
  size_t archive_horizon = 4096;
  /// Partition-grid membership (see src/cluster/): which partition of the
  /// cluster's PartitionMap this replica set serves (-1 = unpartitioned),
  /// and the coordination port the router dials (0 disables it).
  int64_t partition = -1;
  uint16_t coord_port = 0;
  /// Grace before an in-doubt 2PC transaction is resolved cooperatively.
  /// Must exceed the router's 2PC deadline.
  uint64_t twopc_resolve_ms = 5000;
  /// Requests slower than this log a structured slow-request warning with
  /// the trace id and per-stage breakdown (0 = off).
  uint64_t slow_ms = 0;
  bool help = false;  ///< --help: print usage, exit 0
};

bool ParseEndpoints(const std::string& list, std::vector<TcpPeer>* out) {
  std::stringstream ss(list);
  std::string entry;
  uint32_t site = 0;
  while (std::getline(ss, entry, ',')) {
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos) return false;
    TcpPeer p;
    p.site = site++;
    p.host = entry.substr(0, colon);
    const int port = atoi(entry.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return false;
    p.port = static_cast<uint16_t>(port);
    out->push_back(std::move(p));
  }
  return out->size() >= 2;
}

bool ParseFlags(int argc, char** argv, DaemonConfig* config) {
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--site=")) {
      config->site = static_cast<uint32_t>(atoi(v));
    } else if (const char* v = value("--peers=")) {
      if (!ParseEndpoints(v, &config->endpoints)) return false;
    } else if (const char* v = value("--client-port=")) {
      config->client_port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--metrics-port=")) {
      config->metrics_port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--gc-mode=")) {
      if (strcmp(v, "pessimistic") == 0) {
        config->gc_mode = GcCoordination::kPessimistic;
      } else if (strcmp(v, "optimistic") != 0) {
        return false;
      }
    } else if (const char* v = value("--dir=")) {
      config->dir = v;
    } else if (const char* v = value("--backend=")) {
      config->backend = ParseRecordBackend(v);
      if (config->backend == RecordBackend::kDefault) {
        fprintf(stderr, "tardisd: unknown --backend=%s (want mem|btree|trie)\n",
                v);
        return false;
      }
    } else if (const char* v = value("--workers=")) {
      config->workers = std::max(1, atoi(v));
    } else if (const char* v = value("--max-queue=")) {
      config->max_queue = static_cast<size_t>(std::max(1, atoi(v)));
    } else if (const char* v = value("--request-deadline-ms=")) {
      config->request_deadline_ms = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = value("--tick-ms=")) {
      config->tick_ms = static_cast<uint64_t>(std::max(1, atoi(v)));
    } else if (const char* v = value("--heartbeats=")) {
      config->heartbeats = atoi(v) != 0;
    } else if (const char* v = value("--archive-horizon=")) {
      config->archive_horizon = static_cast<size_t>(std::max(1, atoi(v)));
    } else if (const char* v = value("--partition=")) {
      config->partition = atoll(v);
    } else if (const char* v = value("--coord-port=")) {
      config->coord_port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--twopc-resolve-ms=")) {
      config->twopc_resolve_ms = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = value("--slow-ms=")) {
      config->slow_ms = static_cast<uint64_t>(atoll(v));
    } else if (arg == "--help" || arg == "-h") {
      config->help = true;
      return false;  // caller prints the full usage text
    } else {
      fprintf(stderr, "tardisd: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return !config->endpoints.empty() && config->site < config->endpoints.size() &&
         config->client_port != 0;
}

/// Merges all current branch tips into one state. `counter` resolves each
/// conflicting key as fork value + sum of per-branch deltas (the paper's
/// running counter example); `lww` keeps the largest value. Deterministic,
/// so any site may run it and all sites converge on the same record.
std::string DoMerge(TardisStore* store, ClientSession* session,
                    const std::string& strategy) {
  auto m = store->BeginMerge(session);
  if (!m.ok()) return "ERR " + m.status().ToString();
  const std::vector<StateId> parents = (*m)->parents();
  if (parents.size() < 2) {
    (*m)->Abort();
    return "NOMERGE";
  }
  auto conflicts = (*m)->FindConflictWrites(parents);
  if (!conflicts.ok()) {
    (*m)->Abort();
    return "ERR " + conflicts.status().ToString();
  }
  auto forks = (*m)->FindForkPoints(parents);
  if (!forks.ok()) {
    (*m)->Abort();
    return "ERR " + forks.status().ToString();
  }
  for (const std::string& key : *conflicts) {
    std::string merged;
    if (strategy == "counter") {
      std::string fv;
      const long long base =
          (*m)->GetForId(key, (*forks)[0], &fv).ok() ? atoll(fv.c_str()) : 0;
      long long result = base;
      for (StateId p : parents) {
        std::string bv;
        const long long branch =
            (*m)->GetForId(key, p, &bv).ok() ? atoll(bv.c_str()) : base;
        result += branch - base;
      }
      merged = std::to_string(result);
    } else {  // lww: largest value wins (deterministic at every site)
      for (StateId p : parents) {
        std::string bv;
        if ((*m)->GetForId(key, p, &bv).ok() && bv > merged) merged = bv;
      }
    }
    Status s = (*m)->Put(key, merged);
    if (!s.ok()) {
      (*m)->Abort();
      return "ERR " + s.ToString();
    }
  }
  Status s = (*m)->Commit();
  if (!s.ok()) return "ERR " + s.ToString();
  return "MERGED " + std::to_string(parents.size());
}

/// Daemon-wide request-path state shared between the accept loop, the
/// worker pool and the `health` command.
struct DaemonShared {
  std::atomic<uint64_t> queue_depth{0};
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> shed_total{0};
  std::atomic<uint64_t> deadline_expired_total{0};
  std::atomic<bool> draining{false};
  uint32_t workers = 0;
  // Static configuration surfaced by `health` (grid debugging should not
  // require reading flags off /proc/cmdline).
  uint16_t metrics_port = 0;
  size_t queue_bound = 0;
  int64_t partition = -1;
  uint16_t coord_port = 0;  ///< actual bound port, 0 when disabled
  const cluster::TwoPhaseParticipant* participant = nullptr;
};

const char* LivenessName(PeerLiveness s) {
  switch (s) {
    case PeerLiveness::kAlive:
      return "alive";
    case PeerLiveness::kSuspect:
      return "suspect";
    case PeerLiveness::kDead:
      return "dead";
  }
  return "unknown";
}

std::string HandleCommand(const std::string& line, TardisStore* store,
                          ClientSession* session, Replicator* replicator,
                          TcpTransport* transport, uint32_t site,
                          obs::MetricsRegistry* registry, DaemonShared* shared,
                          bool* close_conn, bool* shutdown,
                          const SessionHeader* sess = nullptr) {
  std::stringstream ss(line);
  std::string cmd;
  ss >> cmd;
  if (cmd == "ping") return "PONG";
  if (cmd == "put") {
    std::string key;
    ss >> key;
    std::string value;
    std::getline(ss, value);
    if (!value.empty() && value[0] == ' ') value.erase(0, 1);
    if (key.empty()) return "ERR usage: put <key> <value>";
    auto txn = store->Begin(session);
    if (!txn.ok()) return "ERR " + txn.status().ToString();
    const bool tagged = sess != nullptr && sess->write();
    if (tagged) (*txn)->SetSessionTag(sess->session_id, sess->seq);
    Status s = (*txn)->Put(key, value);
    if (s.ok()) s = (*txn)->Commit();
    if (!s.ok()) return "ERR " + s.ToString();
    // Sessioned writes name the commit they produced, so a retry served
    // from dedup can return the identical reply.
    if (tagged && session->last_commit() != nullptr) {
      return "OK STATE " + session->last_commit()->guid().ToString();
    }
    return "OK";
  }
  if (cmd == "get") {
    std::string key;
    ss >> key;
    auto txn = store->Begin(session);
    if (!txn.ok()) return "ERR " + txn.status().ToString();
    std::string value;
    Status s = (*txn)->Get(key, &value);
    (*txn)->Abort();
    if (s.IsNotFound()) return "NOTFOUND";
    return s.ok() ? "VALUE " + value : "ERR " + s.ToString();
  }
  if (cmd == "merge") {
    std::string strategy = "lww";
    ss >> strategy;
    return DoMerge(store, session, strategy);
  }
  if (cmd == "leaves") {
    return "LEAVES " + std::to_string(store->dag()->Leaves().size());
  }
  if (cmd == "states") {
    return "STATES " + std::to_string(store->dag()->state_count());
  }
  if (cmd == "sync") {
    replicator->RequestSync();
    return "OK";
  }
  if (cmd == "peers") {
    uint32_t connected = 0;
    for (uint32_t s = 0; s < transport->num_sites(); s++) {
      if (s != site && transport->IsConnected(s)) connected++;
    }
    return "PEERS " + std::to_string(connected);
  }
  if (cmd == "health") {
    // Machine-readable, one item per line, END-terminated:
    //   SITE <id> tick=<n> queue=<n> workers=<n> shed=<n> expired=<n>
    //        draining=<0|1> pending=<n> deferred_gc=<n> metrics_port=<n>
    //        queue_bound=<n> partition=<n|-1> coord_port=<n>
    //        twopc_in_doubt=<n>
    //   PEER <id> state=<alive|suspect|dead> connected=<0|1>
    //        last_heard_tick=<n> flaps=<n>
    //   FLOOR <origin> <seq>
    std::string out = "SITE " + std::to_string(site);
    out += " tick=" + std::to_string(replicator->tick_count());
    out += " queue=" + std::to_string(shared->queue_depth.load());
    out += " workers=" + std::to_string(shared->workers);
    out += " shed=" + std::to_string(shared->shed_total.load());
    out += " expired=" + std::to_string(shared->deadline_expired_total.load());
    out += " draining=" + std::to_string(shared->draining.load() ? 1 : 0);
    out += " pending=" + std::to_string(replicator->pending_count());
    out += " deferred_gc=" + std::to_string(replicator->deferred_consent_count());
    // Appended fields only (drivers match on the prefix fields above).
    out += " metrics_port=" + std::to_string(shared->metrics_port);
    out += " queue_bound=" + std::to_string(shared->queue_bound);
    out += " partition=" + std::to_string(shared->partition);
    out += " coord_port=" + std::to_string(shared->coord_port);
    out += " twopc_in_doubt=" +
           std::to_string(shared->participant != nullptr
                              ? shared->participant->in_doubt_count()
                              : 0);
    out += std::string(" backend=") + store->backend_name();
    out += "\n";
    for (const Replicator::PeerHealth& p : replicator->PeerStates()) {
      out += "PEER " + std::to_string(p.site);
      out += std::string(" state=") + LivenessName(p.state);
      out += " connected=" +
             std::to_string(transport->IsConnected(p.site) ? 1 : 0);
      out += " last_heard_tick=" + std::to_string(p.last_heard_tick);
      out += " flaps=" + std::to_string(p.flaps);
      out += "\n";
    }
    for (const auto& [origin, seq] : replicator->AppliedFloors()) {
      out += "FLOOR " + std::to_string(origin) + " " + std::to_string(seq) +
             "\n";
    }
    return out + "END";
  }
  if (cmd == "isolate") {
    uint32_t peer = 0;
    // Failed extraction zeroes the value; test the stream, not a sentinel.
    if (!(ss >> peer) || peer >= transport->num_sites()) {
      return "ERR usage: isolate <site>";
    }
    transport->Partition(site, peer);
    return "OK";
  }
  if (cmd == "heal") {
    transport->HealAll();
    return "OK";
  }
  if (cmd == "metrics" || cmd == "stats") {
    // Multi-line reply; "END" terminates it so line-oriented clients know
    // where the dump stops.
    std::string format = cmd == "stats" ? "table" : "prom";
    ss >> format;
    const std::vector<obs::Sample> samples = registry->Collect();
    std::string body = format == "table" ? obs::RenderTable(samples)
                                         : obs::RenderPrometheus(samples);
    if (!body.empty() && body.back() != '\n') body.push_back('\n');
    return body + "END";
  }
  if (cmd == "trace") {
    std::string sub;
    ss >> sub;
    if (sub == "start") {
      obs::Tracer::Get().Enable();
      return "OK";
    }
    if (sub == "stop") {
      obs::Tracer::Get().Disable();
      return "OK";
    }
    if (sub == "dump") {
      std::string path;
      ss >> path;
      if (path.empty()) return "ERR usage: trace dump <path>";
      std::ofstream out(path, std::ios::trunc);
      if (!out) return "ERR cannot open " + path;
      out << obs::Tracer::Get().DumpChromeTrace();
      return "OK " + std::to_string(obs::Tracer::Get().EventCount());
    }
    if (sub == "json") {
      // Inline dump for remote collectors (tardis-tracectl, the router's
      // `trace collect`): no shared filesystem required.
      std::string body = obs::Tracer::Get().DumpChromeTrace();
      if (!body.empty() && body.back() != '\n') body.push_back('\n');
      return body + "END";
    }
    return "ERR usage: trace start|stop|json|dump <path>";
  }
  if (cmd == "sleep") {
    // Test hook: pin a worker for a while so drivers can provoke queue
    // growth and shedding deterministically.
    int ms = 0;
    if (!(ss >> ms) || ms < 0 || ms > 60'000) return "ERR usage: sleep <ms>";
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return "OK";
  }
  if (cmd == "quit") {
    *close_conn = true;
    return "BYE";
  }
  if (cmd == "shutdown") {
    *close_conn = true;
    *shutdown = true;
    return "BYE";
  }
  return "ERR unknown command '" + cmd + "'";
}

/// Session-aware execution front door (DESIGN.md §13), shared by the
/// client-port workers and the coordination server's kRoute executor:
/// validates/strips the `*S` header (corrupt -> retryable ERR HEADER +
/// counter, never silently stripped), enforces the session's read floors
/// (ERR BEHIND unless stale-ok), answers retried sessioned writes from
/// the dedup table, and prefixes sessioned replies with this site's
/// floor token.
std::string ExecuteSessionLine(std::string line, TardisStore* store,
                               ClientSession* session,
                               Replicator* replicator,
                               TcpTransport* transport, uint32_t site,
                               obs::MetricsRegistry* registry,
                               DaemonShared* shared, bool* close_conn,
                               bool* shutdown) {
  SessionHeader sess;
  const SessionHeaderStatus hs = StripSessionHeader(&line, &sess);
  if (hs == SessionHeaderStatus::kMalformed) {
    store->session_dedup()->IncrementRejected();
    return "ERR HEADER malformed or oversized session header; retry with "
           "a valid *S token";
  }
  if (hs == SessionHeaderStatus::kAbsent) {
    return HandleCommand(line, store, session, replicator, transport, site,
                         registry, shared, close_conn, shutdown);
  }

  // Read-your-writes / monotonic reads: this site must have applied
  // everything the session has already seen, unless the client opted
  // into bounded staleness for this request.
  if (!sess.stale_ok() &&
      !SessionFloorsCovered(sess, site, store->dag()->local_seq(),
                            replicator->AppliedFloors())) {
    return "ERR BEHIND site missing session writes; retry elsewhere";
  }

  std::string reply;
  GlobalStateId prior;
  if (sess.write() && sess.seq != 0 &&
      store->session_dedup()->Lookup(sess.session_id, sess.seq, &prior)) {
    // Retried write already applied (here or at its origin): answer the
    // original outcome instead of minting a sibling branch.
    reply = "OK STATE " + prior.ToString();
  } else {
    reply = HandleCommand(line, store, session, replicator, transport, site,
                          registry, shared, close_conn, shutdown, &sess);
  }

  // Tell the client how far this site has caught up, so its next request
  // carries floors that hold its reads monotonic across failover.
  std::map<uint32_t, uint64_t> floors = replicator->AppliedFloors();
  uint64_t& mine = floors[site];
  const uint64_t local = store->dag()->local_seq();
  if (local > mine) mine = local;
  return FormatFloorToken(floors) + " " + reply;
}

// ---- request pipeline -----------------------------------------------------

struct Request {
  uint64_t conn_id = 0;
  std::string line;
  std::shared_ptr<ClientSession> session;
  uint64_t enqueued_ms = 0;
  uint64_t enqueued_us = 0;  ///< NowMicros() twin for the queue_wait stage
};

struct Completion {
  uint64_t conn_id = 0;
  std::string reply;
  bool close_conn = false;
  bool shutdown = false;
};

struct ClientConn {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  size_t out_off = 0;
  std::shared_ptr<ClientSession> session;
  bool busy = false;         ///< one request in the pipeline (strict order)
  bool close_after_flush = false;
};

/// SIGTERM/SIGINT land here; the handler only writes one byte (async-
/// signal-safe) to wake the poll loop into its drain path.
int g_signal_pipe_w = -1;
void OnTermSignal(int) {
  const char b = 1;
  if (g_signal_pipe_w >= 0) {
    ssize_t ignored = write(g_signal_pipe_w, &b, 1);
    (void)ignored;
  }
}

int RunDaemon(const DaemonConfig& config) {
  SetLogSite(static_cast<int>(config.site));
  // Label this process's rows in a stitched cross-process Chrome trace.
  obs::Tracer::Get().SetProcessLabel(
      config.partition >= 0
          ? "tardisd-p" + std::to_string(config.partition) + "-site" +
                std::to_string(config.site)
          : "tardisd-site" + std::to_string(config.site));

  // One registry for the whole process: store, GC, replicator and
  // transport all register here, so `metrics` and --metrics-port expose
  // every subsystem in one dump. Created first so it outlives them all.
  auto registry = std::make_shared<obs::MetricsRegistry>();

  TcpTransportOptions net_options;
  net_options.site_id = config.site;
  net_options.listen_host = config.endpoints[config.site].host;
  net_options.listen_port = config.endpoints[config.site].port;
  for (const TcpPeer& p : config.endpoints) {
    if (p.site != config.site) net_options.peers.push_back(p);
  }
  auto transport = TcpTransport::Open(net_options);
  if (!transport.ok()) {
    fprintf(stderr, "tardisd: transport: %s\n",
            transport.status().ToString().c_str());
    return 1;
  }
  (*transport)->BindMetrics(registry.get(), config.site);

  TardisOptions store_options;
  store_options.site_id = config.site;
  store_options.dir = config.dir;
  store_options.backend = config.backend;
  store_options.metrics_registry = registry;
  auto store = TardisStore::Open(store_options);
  if (!store.ok()) {
    fprintf(stderr, "tardisd: store: %s\n", store.status().ToString().c_str());
    return 1;
  }

  ReplicatorOptions repl_options(config.gc_mode);
  repl_options.tick_interval_ms = config.tick_ms;
  repl_options.heartbeat_every_ticks = config.heartbeats ? 1 : 0;
  repl_options.archive_horizon = config.archive_horizon;
  Replicator replicator(store->get(), transport->get(), config.site,
                        repl_options);
  if (!config.dir.empty()) {
    // The store may have just crash-recovered; rebuild the gossip archive
    // so this site can serve anti-entropy for its pre-crash history.
    replicator.ReArchiveFromStore();
  }
  replicator.Start();

  DaemonShared shared;
  shared.workers = config.workers;
  registry->RegisterCallbackGauge(
      "tardisd_queue_depth", "Client requests waiting for a worker",
      [&shared] { return static_cast<int64_t>(shared.queue_depth.load()); },
      {{"site", std::to_string(config.site)}}, &shared);
  obs::Counter* shed_counter = registry->RegisterCounter(
      "tardisd_shed_total", "Client requests rejected because the queue was full",
      {{"site", std::to_string(config.site)}});
  obs::Counter* expired_counter = registry->RegisterCounter(
      "tardisd_deadline_expired_total",
      "Client requests expired in the queue past the request deadline",
      {{"site", std::to_string(config.site)}});
  obs::HistogramMetric* queue_wait_stage =
      obs::RegisterStageHistogram(registry.get(), "queue_wait");
  shared.metrics_port = config.metrics_port;
  shared.queue_bound = config.max_queue;
  shared.partition = config.partition;

  // Partition-grid membership: a coordination endpoint (router traffic +
  // cross-partition 2PC) next to the client port. The participant's
  // twopc.log lives beside the store's WAL so prepare/decide records
  // share the store's crash-recovery story.
  std::unique_ptr<cluster::TwoPhaseParticipant> participant;
  std::unique_ptr<cluster::CoordServer> coord_server;
  std::shared_ptr<ClientSession> coord_session;
  if (config.coord_port != 0) {
    cluster::TwoPhaseOptions twopc_options;
    twopc_options.dir = config.dir;
    twopc_options.self_endpoint =
        "127.0.0.1:" + std::to_string(config.coord_port);
    twopc_options.resolve_grace_ms = config.twopc_resolve_ms;
    twopc_options.query_peer = [](const std::string& endpoint,
                                  uint64_t txn_id,
                                  cluster::TwoPhaseDecision* decision) {
      ReplMessage req;
      req.type = ReplMessage::Type::kTxnStatus;
      req.txn_id = txn_id;
      ReplMessage resp;
      Status s = cluster::FramedClient::CallOnce(endpoint, req, &resp, 1000);
      if (!s.ok()) return s;
      if (resp.type != ReplMessage::Type::kDecideAck) {
        return Status::Corruption("bad txn-status reply");
      }
      *decision = static_cast<cluster::TwoPhaseDecision>(resp.decision);
      return Status::OK();
    };
    participant = std::make_unique<cluster::TwoPhaseParticipant>(
        store->get(), std::move(twopc_options));
    Status recover_status = participant->Recover();
    if (!recover_status.ok()) {
      fprintf(stderr, "tardisd: twopc recovery: %s\n",
              recover_status.ToString().c_str());
      return 1;
    }
    shared.participant = participant.get();

    coord_session = (*store)->CreateSession();
    cluster::CoordServerOptions coord_options;
    coord_options.port = config.coord_port;
    coord_options.resolve_interval_ms = 500;
    coord_options.execute = [&, coord_session](const std::string& line) {
      bool ignored_close = false;
      bool ignored_shutdown = false;
      return ExecuteSessionLine(line, store->get(), coord_session.get(),
                                &replicator, transport->get(), config.site,
                                registry.get(), &shared, &ignored_close,
                                &ignored_shutdown);
    };
    auto server = cluster::CoordServer::Start(
        store->get(), participant.get(), std::move(coord_options));
    if (!server.ok()) {
      fprintf(stderr, "tardisd: coord server: %s\n",
              server.status().ToString().c_str());
      return 1;
    }
    coord_server = std::move(*server);
    shared.coord_port = coord_server->listen_port();
  }

  const int server_fd = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(server_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = INADDR_ANY;
  addr.sin_port = htons(config.client_port);
  if (bind(server_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(server_fd, 64) != 0) {
    fprintf(stderr, "tardisd: client port %u: %s\n", config.client_port,
            strerror(errno));
    return 1;
  }
  SetNonBlocking(server_fd);
  std::unique_ptr<obs::MetricsHttpExporter> metrics_http;
  if (config.metrics_port != 0) {
    // registry outlives the exporter (reset before the final flush below).
    metrics_http = std::make_unique<obs::MetricsHttpExporter>(
        config.metrics_port, registry.get(), "tardisd");
    if (!metrics_http->serving()) return 1;
  }

  // Request queue + completion queue.
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Request> queue;
  bool workers_stop = false;

  std::mutex done_mu;
  std::deque<Completion> done;
  int done_pipe[2];
  if (pipe(done_pipe) != 0) {
    fprintf(stderr, "tardisd: pipe: %s\n", strerror(errno));
    return 1;
  }
  SetNonBlocking(done_pipe[0]);

  int sig_pipe[2];
  if (pipe(sig_pipe) != 0) {
    fprintf(stderr, "tardisd: pipe: %s\n", strerror(errno));
    return 1;
  }
  SetNonBlocking(sig_pipe[0]);
  g_signal_pipe_w = sig_pipe[1];
  struct sigaction sa{};
  sa.sa_handler = OnTermSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  auto post_completion = [&](Completion c) {
    {
      std::lock_guard<std::mutex> guard(done_mu);
      done.push_back(std::move(c));
    }
    const char b = 1;
    ssize_t ignored = write(done_pipe[1], &b, 1);
    (void)ignored;
  };

  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < config.workers; w++) {
    workers.emplace_back([&] {
      while (true) {
        Request req;
        {
          std::unique_lock<std::mutex> lock(queue_mu);
          queue_cv.wait(lock, [&] { return workers_stop || !queue.empty(); });
          if (workers_stop && queue.empty()) return;
          req = std::move(queue.front());
          queue.pop_front();
        }
        shared.queue_depth.fetch_sub(1);
        Completion c;
        c.conn_id = req.conn_id;
        if (config.request_deadline_ms > 0 &&
            NowMs() - req.enqueued_ms > config.request_deadline_ms) {
          // The request aged out while queued; answering it now would just
          // add latency on top of overload. Tell the client to retry.
          shared.deadline_expired_total.fetch_add(1);
          expired_counter->Increment();
          c.reply = "ERR DEADLINE request expired in queue; retry";
        } else {
          // A leading "*T..." token is the caller's distributed-trace
          // context: bind it so every span and stage below joins that
          // trace. A corrupt header is stripped and the request runs
          // untraced.
          obs::TraceContext ctx;
          obs::StripTraceHeader(&req.line, &ctx);
          obs::TraceContextScope bind_trace(ctx);
          obs::StageBreakdown breakdown;
          obs::StageCollectorScope collect(&breakdown);
          const uint64_t start_us = NowMicros();
          const uint64_t wait_us =
              start_us >= req.enqueued_us ? start_us - req.enqueued_us : 0;
          queue_wait_stage->Observe(wait_us);
          breakdown.Note("queue_wait", wait_us);
          obs::TraceSpan::Emit("stage", "queue_wait", req.enqueued_us,
                               wait_us);
          {
            TARDIS_TRACE_SPAN("daemon", "request");
            c.reply = ExecuteSessionLine(
                req.line, store->get(), req.session.get(), &replicator,
                transport->get(), config.site, registry.get(), &shared,
                &c.close_conn, &c.shutdown);
          }
          const uint64_t total_us = NowMicros() - start_us;
          if (config.slow_ms > 0 && total_us >= config.slow_ms * 1000) {
            const std::string cmd = req.line.substr(0, req.line.find(' '));
            TARDIS_WARN(
                "site %u: slow request cmd=%s trace=%016llx total=%lluus "
                "queue_wait=%lluus stages: %s",
                config.site, cmd.c_str(),
                static_cast<unsigned long long>(ctx.trace_id),
                static_cast<unsigned long long>(total_us),
                static_cast<unsigned long long>(wait_us),
                breakdown.Format().c_str());
          }
        }
        post_completion(std::move(c));
      }
    });
  }

  printf("tardisd: site %u serving clients on port %u, replication on %u, "
         "queue bound %zu",
         config.site, config.client_port, (*transport)->listen_port(),
         config.max_queue);
  if (config.metrics_port != 0) {
    printf(", metrics on http port %u", config.metrics_port);
  }
  if (coord_server) {
    printf(", partition %lld coord port %u",
           static_cast<long long>(config.partition),
           coord_server->listen_port());
  }
  printf("\n");
  fflush(stdout);

  std::map<uint64_t, ClientConn> conns;
  uint64_t next_conn_id = 1;
  bool listening = true;
  uint64_t drain_deadline_ms = 0;
  constexpr size_t kMaxInbuf = 1u << 20;  // a hostile client cannot OOM us

  auto begin_drain = [&] {
    if (shared.draining.exchange(true)) return;
    TARDIS_INFO("site %u: draining (listen closed, %zu queued)", config.site,
                queue.size());
    if (listening) {
      close(server_fd);
      listening = false;
    }
    drain_deadline_ms = NowMs() + 10'000;
  };

  // Parses complete lines off a connection's inbuf; dispatches at most one
  // request at a time per connection so replies stay in order.
  auto pump_conn = [&](uint64_t id, ClientConn& conn) {
    while (!conn.busy && !conn.close_after_flush) {
      const size_t nl = conn.inbuf.find('\n');
      if (nl == std::string::npos) break;
      std::string line = conn.inbuf.substr(0, nl);
      conn.inbuf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (shared.draining.load()) {
        conn.outbuf += "ERR SHUTTING_DOWN site draining; retry elsewhere\n";
        continue;
      }
      bool shed = false;
      {
        std::lock_guard<std::mutex> guard(queue_mu);
        if (queue.size() >= config.max_queue) {
          shed = true;
        } else {
          Request req;
          req.conn_id = id;
          req.line = std::move(line);
          req.session = conn.session;
          req.enqueued_ms = NowMs();
          req.enqueued_us = NowMicros();
          queue.push_back(std::move(req));
        }
      }
      if (shed) {
        // Load shedding: bounded queue, retryable refusal. The client
        // backs off and resends instead of the daemon buffering without
        // limit.
        shared.shed_total.fetch_add(1);
        shed_counter->Increment();
        conn.outbuf += "ERR BUSY queue full; retry\n";
        continue;
      }
      shared.queue_depth.fetch_add(1);
      shared.requests_total.fetch_add(1);
      conn.busy = true;
      queue_cv.notify_one();
    }
  };

  bool exiting = false;
  while (!exiting) {
    std::vector<pollfd> pfds;
    std::vector<uint64_t> conn_ids;
    pfds.push_back({sig_pipe[0], POLLIN, 0});
    pfds.push_back({done_pipe[0], POLLIN, 0});
    pfds.push_back({listening ? server_fd : -1, POLLIN, 0});
    for (auto& [id, conn] : conns) {
      short events = POLLIN;
      if (conn.out_off < conn.outbuf.size()) events |= POLLOUT;
      pfds.push_back({conn.fd, events, 0});
      conn_ids.push_back(id);
    }

    const int rc = poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) {
      TARDIS_WARN("site %u: poll: %s", config.site, strerror(errno));
    }

    if (pfds[0].revents & POLLIN) {  // SIGTERM/SIGINT
      char buf[16];
      while (read(sig_pipe[0], buf, sizeof(buf)) > 0) {
      }
      begin_drain();
    }

    if (pfds[1].revents & POLLIN) {  // worker completions
      char buf[64];
      while (read(done_pipe[0], buf, sizeof(buf)) > 0) {
      }
      std::deque<Completion> finished;
      {
        std::lock_guard<std::mutex> guard(done_mu);
        finished.swap(done);
      }
      for (Completion& c : finished) {
        if (c.shutdown) begin_drain();
        auto it = conns.find(c.conn_id);
        if (it == conns.end()) continue;  // client went away mid-request
        ClientConn& conn = it->second;
        conn.busy = false;
        conn.outbuf += c.reply;
        conn.outbuf.push_back('\n');
        if (c.close_conn) conn.close_after_flush = true;
        pump_conn(c.conn_id, conn);
      }
    }

    if (listening && (pfds[2].revents & POLLIN)) {
      while (true) {
        const int fd = accept(server_fd, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        ClientConn conn;
        conn.fd = fd;
        conn.session = (*store)->CreateSession();
        conns.emplace(next_conn_id++, std::move(conn));
      }
    }

    std::vector<uint64_t> to_close;
    for (size_t p = 3; p < pfds.size(); p++) {
      const uint64_t id = conn_ids[p - 3];
      auto it = conns.find(id);
      if (it == conns.end()) continue;
      ClientConn& conn = it->second;
      const short revents = pfds[p].revents;
      if (revents & (POLLERR | POLLHUP)) {
        // POLLHUP with pending output: try to flush once below anyway.
        if (conn.out_off >= conn.outbuf.size()) {
          to_close.push_back(id);
          continue;
        }
      }
      if (revents & POLLIN) {
        char chunk[65536];
        bool eof = false;
        while (true) {
          const ssize_t n = read(conn.fd, chunk, sizeof(chunk));
          if (n > 0) {
            conn.inbuf.append(chunk, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          eof = true;
          break;
        }
        if (conn.inbuf.size() > kMaxInbuf) {
          conn.outbuf += "ERR line too long\n";
          conn.close_after_flush = true;
        } else {
          pump_conn(id, conn);
        }
        if (eof && !conn.busy && conn.out_off >= conn.outbuf.size()) {
          to_close.push_back(id);
          continue;
        }
        if (eof) conn.close_after_flush = true;
      }
      if (conn.out_off < conn.outbuf.size()) {
        while (conn.out_off < conn.outbuf.size()) {
          const ssize_t n = write(conn.fd, conn.outbuf.data() + conn.out_off,
                                  conn.outbuf.size() - conn.out_off);
          if (n > 0) {
            conn.out_off += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          to_close.push_back(id);
          break;
        }
        if (conn.out_off >= conn.outbuf.size()) {
          conn.outbuf.clear();
          conn.out_off = 0;
          if (conn.close_after_flush && !conn.busy) to_close.push_back(id);
        }
      } else if (conn.close_after_flush && !conn.busy) {
        to_close.push_back(id);
      }
    }
    for (uint64_t id : to_close) {
      auto it = conns.find(id);
      if (it == conns.end()) continue;
      close(it->second.fd);
      conns.erase(it);
    }

    if (shared.draining.load()) {
      bool queue_empty;
      {
        std::lock_guard<std::mutex> guard(queue_mu);
        queue_empty = queue.empty();
      }
      bool anyone_busy = false;
      bool output_pending = false;
      for (auto& [id, conn] : conns) {
        (void)id;
        if (conn.busy) anyone_busy = true;
        if (conn.out_off < conn.outbuf.size()) output_pending = true;
      }
      if ((queue_empty && !anyone_busy && !output_pending) ||
          NowMs() >= drain_deadline_ms) {
        exiting = true;
      }
    }
  }

  // Drain epilogue: stop the workers, persist everything local, and give
  // the transport a moment to push out the final gossip so peers do not
  // need anti-entropy for what we already acknowledged.
  {
    std::lock_guard<std::mutex> guard(queue_mu);
    workers_stop = true;
  }
  queue_cv.notify_all();
  for (std::thread& w : workers) w.join();
  for (auto& [id, conn] : conns) {
    (void)id;
    close(conn.fd);
  }
  conns.clear();
  if (listening) close(server_fd);
  metrics_http.reset();
  // Coord traffic stops before the final flush; staged-but-undecided 2PC
  // transactions die with the process and are re-resolved from twopc.log
  // on restart.
  coord_server.reset();

  Status flush_status = (*store)->Flush();
  if (!flush_status.ok()) {
    TARDIS_WARN("site %u: final flush: %s", config.site,
                flush_status.ToString().c_str());
  }
  const uint64_t gossip_deadline = NowMs() + 2'000;
  while ((*transport)->HasInflight() && NowMs() < gossip_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  replicator.Stop();
  (*transport)->Shutdown();
  close(done_pipe[0]);
  close(done_pipe[1]);
  g_signal_pipe_w = -1;
  close(sig_pipe[0]);
  close(sig_pipe[1]);
  TARDIS_INFO("site %u: drained, exiting", config.site);
  return 0;
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) {
  tardis::DaemonConfig config;
  if (!tardis::ParseFlags(argc, argv, &config)) {
    FILE* out = config.help ? stdout : stderr;
    fprintf(out,
            "usage: tardisd --site=N --peers=host:port,... --client-port=P\n"
            "               [--gc-mode=optimistic|pessimistic] [--dir=PATH]\n"
            "               [--backend=mem|btree|trie]\n"
            "               [--metrics-port=P] [--workers=N] [--max-queue=N]\n"
            "               [--request-deadline-ms=MS] [--tick-ms=MS]\n"
            "               [--heartbeats=0|1] [--archive-horizon=N]\n"
            "               [--partition=N] [--coord-port=P]\n"
            "               [--twopc-resolve-ms=MS] [--slow-ms=MS] [--help]\n"
            "--peers is indexed by site id and must name every site,\n"
            "including this one's own replication endpoint.\n"
            "--backend picks the record storage: mem (default without\n"
            "--dir), btree (default with --dir), or trie — the fork-native\n"
            "copy-on-write backend (DESIGN.md section 12).\n"
            "--metrics-port serves the metrics registry as Prometheus text\n"
            "over HTTP (0 = disabled); --max-queue bounds the client request\n"
            "queue (requests past the bound are shed with ERR BUSY).\n"
            "--partition/--coord-port enroll this site in a partitioned\n"
            "grid behind tardis-router (see DESIGN.md section 10);\n"
            "--twopc-resolve-ms is the in-doubt cooperative-resolution\n"
            "grace and must exceed the router's 2PC deadline.\n"
            "--slow-ms logs requests slower than MS with their trace id\n"
            "and per-stage latency breakdown (0 = disabled).\n");
    return config.help ? 0 : 2;
  }
  return tardis::RunDaemon(config);
}
