// tardisd: a TARDiS site daemon — one TardisStore + Replicator behind a
// TcpTransport, i.e. one of the paper's replicated sites (§6.4) as a real
// OS process. Sites gossip commits over TCP using the length-prefixed
// CRC-framed wire codec; clients speak a minimal line protocol on a
// separate port.
//
//   tardisd --site=0 --peers=127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//           --client-port=8000 [--gc-mode=optimistic|pessimistic] [--dir=PATH]
//
// --peers lists every site's replication endpoint, indexed by site id;
// entry --site names this daemon's own listen address. Client commands
// (one per line, one-line replies):
//
//   ping                  liveness probe -> PONG
//   put <key> <value>     commit a single-key transaction -> OK
//   get <key>             read on this site's branch -> VALUE <v> | NOTFOUND
//   merge [counter|lww]   merge all branch tips -> MERGED <n> | NOMERGE
//   leaves                number of branch tips -> LEAVES <n>
//   states                State DAG size -> STATES <n>
//   sync                  broadcast a recovery sync request -> OK
//   peers                 connected outbound peers -> PEERS <n>
//   isolate <site>        cut traffic to/from <site> at this endpoint -> OK
//   heal                  undo all isolates -> OK
//   stats                 transport + replication counters
//   quit                  close this client connection
//   shutdown              exit the daemon

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "net/tcp_transport.h"
#include "replication/replicator.h"

namespace tardis {
namespace {

struct DaemonConfig {
  uint32_t site = 0;
  std::vector<TcpPeer> endpoints;  // every site, indexed by site id
  uint16_t client_port = 0;
  GcCoordination gc_mode = GcCoordination::kOptimistic;
  std::string dir;
};

bool ParseEndpoints(const std::string& list, std::vector<TcpPeer>* out) {
  std::stringstream ss(list);
  std::string entry;
  uint32_t site = 0;
  while (std::getline(ss, entry, ',')) {
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos) return false;
    TcpPeer p;
    p.site = site++;
    p.host = entry.substr(0, colon);
    const int port = atoi(entry.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return false;
    p.port = static_cast<uint16_t>(port);
    out->push_back(std::move(p));
  }
  return out->size() >= 2;
}

bool ParseFlags(int argc, char** argv, DaemonConfig* config) {
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--site=")) {
      config->site = static_cast<uint32_t>(atoi(v));
    } else if (const char* v = value("--peers=")) {
      if (!ParseEndpoints(v, &config->endpoints)) return false;
    } else if (const char* v = value("--client-port=")) {
      config->client_port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--gc-mode=")) {
      if (strcmp(v, "pessimistic") == 0) {
        config->gc_mode = GcCoordination::kPessimistic;
      } else if (strcmp(v, "optimistic") != 0) {
        return false;
      }
    } else if (const char* v = value("--dir=")) {
      config->dir = v;
    } else {
      fprintf(stderr, "tardisd: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return !config->endpoints.empty() && config->site < config->endpoints.size() &&
         config->client_port != 0;
}

/// Merges all current branch tips into one state. `counter` resolves each
/// conflicting key as fork value + sum of per-branch deltas (the paper's
/// running counter example); `lww` keeps the largest value. Deterministic,
/// so any site may run it and all sites converge on the same record.
std::string DoMerge(TardisStore* store, ClientSession* session,
                    const std::string& strategy) {
  auto m = store->BeginMerge(session);
  if (!m.ok()) return "ERR " + m.status().ToString();
  const std::vector<StateId> parents = (*m)->parents();
  if (parents.size() < 2) {
    (*m)->Abort();
    return "NOMERGE";
  }
  auto conflicts = (*m)->FindConflictWrites(parents);
  if (!conflicts.ok()) {
    (*m)->Abort();
    return "ERR " + conflicts.status().ToString();
  }
  auto forks = (*m)->FindForkPoints(parents);
  if (!forks.ok()) {
    (*m)->Abort();
    return "ERR " + forks.status().ToString();
  }
  for (const std::string& key : *conflicts) {
    std::string merged;
    if (strategy == "counter") {
      std::string fv;
      const long long base =
          (*m)->GetForId(key, (*forks)[0], &fv).ok() ? atoll(fv.c_str()) : 0;
      long long result = base;
      for (StateId p : parents) {
        std::string bv;
        const long long branch =
            (*m)->GetForId(key, p, &bv).ok() ? atoll(bv.c_str()) : base;
        result += branch - base;
      }
      merged = std::to_string(result);
    } else {  // lww: largest value wins (deterministic at every site)
      for (StateId p : parents) {
        std::string bv;
        if ((*m)->GetForId(key, p, &bv).ok() && bv > merged) merged = bv;
      }
    }
    Status s = (*m)->Put(key, merged);
    if (!s.ok()) {
      (*m)->Abort();
      return "ERR " + s.ToString();
    }
  }
  Status s = (*m)->Commit();
  if (!s.ok()) return "ERR " + s.ToString();
  return "MERGED " + std::to_string(parents.size());
}

std::string HandleCommand(const std::string& line, TardisStore* store,
                          ClientSession* session, Replicator* replicator,
                          TcpTransport* transport, uint32_t site,
                          bool* close_conn, bool* shutdown) {
  std::stringstream ss(line);
  std::string cmd;
  ss >> cmd;
  if (cmd == "ping") return "PONG";
  if (cmd == "put") {
    std::string key;
    ss >> key;
    std::string value;
    std::getline(ss, value);
    if (!value.empty() && value[0] == ' ') value.erase(0, 1);
    if (key.empty()) return "ERR usage: put <key> <value>";
    auto txn = store->Begin(session);
    if (!txn.ok()) return "ERR " + txn.status().ToString();
    Status s = (*txn)->Put(key, value);
    if (s.ok()) s = (*txn)->Commit();
    return s.ok() ? "OK" : "ERR " + s.ToString();
  }
  if (cmd == "get") {
    std::string key;
    ss >> key;
    auto txn = store->Begin(session);
    if (!txn.ok()) return "ERR " + txn.status().ToString();
    std::string value;
    Status s = (*txn)->Get(key, &value);
    (*txn)->Abort();
    if (s.IsNotFound()) return "NOTFOUND";
    return s.ok() ? "VALUE " + value : "ERR " + s.ToString();
  }
  if (cmd == "merge") {
    std::string strategy = "lww";
    ss >> strategy;
    return DoMerge(store, session, strategy);
  }
  if (cmd == "leaves") {
    return "LEAVES " + std::to_string(store->dag()->Leaves().size());
  }
  if (cmd == "states") {
    return "STATES " + std::to_string(store->dag()->state_count());
  }
  if (cmd == "sync") {
    replicator->RequestSync();
    return "OK";
  }
  if (cmd == "peers") {
    uint32_t connected = 0;
    for (uint32_t s = 0; s < transport->num_sites(); s++) {
      if (s != site && transport->IsConnected(s)) connected++;
    }
    return "PEERS " + std::to_string(connected);
  }
  if (cmd == "isolate") {
    uint32_t peer = 0;
    // Failed extraction zeroes the value; test the stream, not a sentinel.
    if (!(ss >> peer) || peer >= transport->num_sites()) {
      return "ERR usage: isolate <site>";
    }
    transport->Partition(site, peer);
    return "OK";
  }
  if (cmd == "heal") {
    transport->HealAll();
    return "OK";
  }
  if (cmd == "stats") {
    return "STATS sent=" + std::to_string(transport->messages_sent()) +
           " delivered=" + std::to_string(transport->messages_delivered()) +
           " dropped=" + std::to_string(transport->messages_dropped()) +
           " applied=" + std::to_string(replicator->applied_count()) +
           " pending=" + std::to_string(replicator->pending_count());
  }
  if (cmd == "quit") {
    *close_conn = true;
    return "BYE";
  }
  if (cmd == "shutdown") {
    *close_conn = true;
    *shutdown = true;
    return "BYE";
  }
  return "ERR unknown command '" + cmd + "'";
}

int RunDaemon(const DaemonConfig& config) {
  TcpTransportOptions net_options;
  net_options.site_id = config.site;
  net_options.listen_host = config.endpoints[config.site].host;
  net_options.listen_port = config.endpoints[config.site].port;
  for (const TcpPeer& p : config.endpoints) {
    if (p.site != config.site) net_options.peers.push_back(p);
  }
  auto transport = TcpTransport::Open(net_options);
  if (!transport.ok()) {
    fprintf(stderr, "tardisd: transport: %s\n",
            transport.status().ToString().c_str());
    return 1;
  }

  TardisOptions store_options;
  store_options.site_id = config.site;
  store_options.dir = config.dir;
  auto store = TardisStore::Open(store_options);
  if (!store.ok()) {
    fprintf(stderr, "tardisd: store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  Replicator replicator(store->get(), transport->get(), config.site,
                        config.gc_mode);
  replicator.Start();
  auto session = (*store)->CreateSession();

  const int server_fd = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(server_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = INADDR_ANY;
  addr.sin_port = htons(config.client_port);
  if (bind(server_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(server_fd, 16) != 0) {
    fprintf(stderr, "tardisd: client port %u: %s\n", config.client_port,
            strerror(errno));
    return 1;
  }
  printf("tardisd: site %u serving clients on port %u, replication on %u\n",
         config.site, config.client_port,
         (*transport)->listen_port());
  fflush(stdout);

  bool shutdown = false;
  while (!shutdown) {
    const int conn = accept(server_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::string buffer;
    bool close_conn = false;
    char chunk[4096];
    while (!close_conn) {
      const ssize_t n = read(conn, chunk, sizeof(chunk));
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      size_t nl;
      while (!close_conn && (nl = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        std::string reply =
            HandleCommand(line, store->get(), session.get(), &replicator,
                          transport->get(), config.site, &close_conn,
                          &shutdown);
        reply.push_back('\n');
        if (write(conn, reply.data(), reply.size()) < 0) close_conn = true;
      }
    }
    close(conn);
  }
  close(server_fd);
  replicator.Stop();
  (*transport)->Shutdown();
  return 0;
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) {
  tardis::DaemonConfig config;
  if (!tardis::ParseFlags(argc, argv, &config)) {
    fprintf(stderr,
            "usage: tardisd --site=N --peers=host:port,... --client-port=P\n"
            "               [--gc-mode=optimistic|pessimistic] [--dir=PATH]\n"
            "--peers is indexed by site id and must name every site,\n"
            "including this one's own replication endpoint.\n");
    return 2;
  }
  return tardis::RunDaemon(config);
}
