// tardis-tracectl: collects and validates cluster-wide distributed
// traces (DESIGN.md §7).
//
//   tardis-tracectl collect --sites=host:port,... [--out=PATH]
//   tardis-tracectl validate --in=PATH [--expect-trace=HEX]
//                            [--min-processes=N]
//
// `collect` speaks the line protocol ("trace json") to every listed
// endpoint — tardisd client ports and/or a tardis-router port — and
// stitches the per-process Chrome trace rings into one document (each
// process contributes its own pid and process_name metadata, so
// Perfetto/chrome://tracing shows one row group per process). `validate`
// parses a stitched document and checks it is well-formed: every event
// carries name/ph/pid, per-(pid,tid) tracks are time-ordered, and — with
// --expect-trace — spans tagged with that trace id came from at least
// --min-processes distinct processes. Exit 0 on success, 1 on failure,
// so CI can gate on it directly.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_stitch.h"
#include "util/status.h"

namespace tardis {
namespace {

int ConnectTo(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return -1;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// One "trace json" round trip: returns the body up to (excluding) the
/// "END" terminator line, or an error.
StatusOr<std::string> FetchTraceJson(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("bad endpoint " + endpoint);
  }
  const int port = atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in " + endpoint);
  }
  const int fd =
      ConnectTo(endpoint.substr(0, colon), static_cast<uint16_t>(port));
  if (fd < 0) {
    return Status::Unavailable("connect " + endpoint + ": " +
                               strerror(errno));
  }
  const char req[] = "trace json\n";
  if (write(fd, req, sizeof(req) - 1) !=
      static_cast<ssize_t>(sizeof(req) - 1)) {
    close(fd);
    return Status::IOError("short write to " + endpoint);
  }
  std::string body, cur;
  char buf[65536];
  bool done = false;
  while (!done) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) {
      close(fd);
      return Status::IOError(endpoint + " closed before END");
    }
    for (ssize_t i = 0; i < n; i++) {
      const char c = buf[i];
      if (c != '\n') {
        cur.push_back(c);
        continue;
      }
      if (cur == "END") {
        done = true;
        break;
      }
      if (cur.rfind("ERR ", 0) == 0) {
        close(fd);
        return Status::InvalidArgument(endpoint + ": " + cur);
      }
      body += cur;
      body.push_back('\n');
      cur.clear();
    }
  }
  close(fd);
  return body;
}

int RunCollect(const std::string& sites, const std::string& out_path) {
  std::vector<std::string> docs;
  std::stringstream ss(sites);
  std::string endpoint;
  size_t fetched = 0;
  while (std::getline(ss, endpoint, ',')) {
    auto doc = FetchTraceJson(endpoint);
    if (!doc.ok()) {
      fprintf(stderr, "tardis-tracectl: %s: %s\n", endpoint.c_str(),
              doc.status().ToString().c_str());
      return 1;
    }
    docs.push_back(std::move(*doc));
    fetched++;
  }
  if (fetched == 0) {
    fprintf(stderr, "tardis-tracectl: --sites named no endpoints\n");
    return 1;
  }
  const std::string merged = obs::StitchChromeTraces(docs);
  if (out_path.empty()) {
    fwrite(merged.data(), 1, merged.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      fprintf(stderr, "tardis-tracectl: cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << merged;
  }
  fprintf(stderr, "tardis-tracectl: stitched %zu process dump(s)\n", fetched);
  return 0;
}

int RunValidate(const std::string& in_path, const std::string& expect_trace,
                size_t min_processes) {
  std::ifstream in(in_path);
  if (!in) {
    fprintf(stderr, "tardis-tracectl: cannot open %s\n", in_path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  obs::TraceValidation v;
  Status s = obs::ValidateChromeTrace(buf.str(), &v);
  if (!s.ok()) {
    fprintf(stderr, "tardis-tracectl: %s: %s\n", in_path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  fprintf(stderr, "tardis-tracectl: %zu event(s) across %zu process(es)\n",
          v.event_count, v.process_count);
  if (v.event_count == 0) {
    fprintf(stderr, "tardis-tracectl: trace is empty\n");
    return 1;
  }
  if (!expect_trace.empty()) {
    auto it = v.processes_by_trace.find(expect_trace);
    const size_t procs = it == v.processes_by_trace.end() ? 0
                                                          : it->second.size();
    if (procs < min_processes) {
      fprintf(stderr,
              "tardis-tracectl: trace %s spans %zu process(es), "
              "expected >= %zu\n",
              expect_trace.c_str(), procs, min_processes);
      return 1;
    }
    fprintf(stderr, "tardis-tracectl: trace %s spans %zu process(es)\n",
            expect_trace.c_str(), procs);
  }
  return 0;
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) {
  std::string mode;
  std::string sites, out_path, in_path, expect_trace;
  size_t min_processes = 1;
  bool help = false;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (i == 1 && (arg == "collect" || arg == "validate")) {
      mode = arg;
    } else if (const char* v = value("--sites=")) {
      sites = v;
    } else if (const char* v = value("--out=")) {
      out_path = v;
    } else if (const char* v = value("--in=")) {
      in_path = v;
    } else if (const char* v = value("--expect-trace=")) {
      expect_trace = v;
    } else if (const char* v = value("--min-processes=")) {
      min_processes = static_cast<size_t>(std::max(1, atoi(v)));
    } else if (arg == "--help" || arg == "-h") {
      help = true;
      break;
    } else {
      fprintf(stderr, "tardis-tracectl: unknown argument %s\n", arg.c_str());
      mode.clear();
      break;
    }
  }
  if (help || mode.empty() || (mode == "collect" && sites.empty()) ||
      (mode == "validate" && in_path.empty())) {
    FILE* out = help ? stdout : stderr;
    fprintf(out,
            "usage: tardis-tracectl collect --sites=host:port,... "
            "[--out=PATH]\n"
            "       tardis-tracectl validate --in=PATH "
            "[--expect-trace=HEX] [--min-processes=N]\n"
            "collect fans `trace json` out to every endpoint (tardisd\n"
            "client ports, tardis-router port) and stitches the rings\n"
            "into one Chrome/Perfetto trace; validate checks a stitched\n"
            "document is well-formed and (with --expect-trace) that the\n"
            "trace id spans at least --min-processes processes.\n");
    return help ? 0 : 2;
  }
  return mode == "collect"
             ? tardis::RunCollect(sites, out_path)
             : tardis::RunValidate(in_path, expect_trace, min_processes);
}
