// Retwis on TARDiS (§7.2.2): a small social graph posts concurrently from
// multiple threads with branch-on-conflict enabled; a background resolver
// merges branches periodically, resolving duplicate ids and merging
// timelines while posts keep flowing.
//
//   $ ./examples/retwis_demo

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/retwis/retwis.h"
#include "apps/retwis/retwis_merge.h"
#include "baseline/tardis_txkv.h"

using namespace tardis;
using namespace tardis::retwis;

int main() {
  auto store_or = TardisStore::Open(TardisOptions{});
  if (!store_or.ok()) return 1;
  TardisStore* tardis_store = store_or->get();
  TardisTxKv kv(tardis_store);
  Retwis app(&kv);

  // A small social graph: users 1..8, everyone follows user 1.
  auto setup = app.NewClient();
  for (uint32_t u = 1; u <= 8; u++) {
    if (!app.CreateAccount(setup.get(), u).ok()) return 1;
    if (u > 1 && !app.FollowUser(setup.get(), u, 1).ok()) return 1;
  }

  // Posters hammer the store from several threads; the celebrity's posts
  // fan out to 7 follower timelines per post, a contention hotspot that
  // would serialize a locking store.
  constexpr int kPostsPerThread = 100;
  std::atomic<uint64_t> posts{0};
  std::atomic<int> running{3};
  std::vector<std::thread> posters;
  for (int t = 0; t < 3; t++) {
    posters.emplace_back([&app, &posts, &running, t] {
      auto client = app.NewClient();
      for (int i = 0; i < kPostsPerThread; i++) {
        const uint32_t author = (t == 0) ? 1 : 2 + (i % 7);
        if (app.PostTweet(client.get(), author,
                          "post " + std::to_string(i) + " from thread " +
                              std::to_string(t))
                .ok()) {
          posts.fetch_add(1);
        }
      }
      running.fetch_sub(1);
    });
  }

  // The conflict resolver merges branches every few milliseconds while
  // posts keep flowing.
  RetwisMerger merger(tardis_store);
  uint64_t merges = 0;
  while (running.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (merger.MergeOnce().ok()) merges = merger.merges();
  }
  for (auto& p : posters) p.join();
  // Final merges to converge completely.
  while (tardis_store->dag()->Leaves().size() > 1) {
    if (!merger.MergeOnce().ok()) break;
    merges = merger.merges();
  }

  auto reader = app.NewClient();
  auto timeline = app.ReadOwnTimeline(reader.get(), 2);
  if (!timeline.ok()) return 1;

  const StoreStats stats = tardis_store->stats();
  printf("posted %llu tweets across 3 threads\n",
         static_cast<unsigned long long>(posts.load()));
  printf("commits=%llu, branches created=%llu, merges=%llu\n",
         static_cast<unsigned long long>(stats.commits),
         static_cast<unsigned long long>(stats.branches_created),
         static_cast<unsigned long long>(merges));
  printf("user 2's timeline after convergence (%zu entries, newest first):\n",
         timeline->size());
  for (size_t i = 0; i < timeline->size() && i < 5; i++) {
    printf("  post %llu by user %u\n",
           static_cast<unsigned long long>((*timeline)[i].post_id),
           (*timeline)[i].author);
  }
  return 0;
}
