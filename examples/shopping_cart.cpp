// Figure 4, executable: the online game store. Alice and Bruno both buy
// the last copy of a board game on different branches (standing in for
// different sites); Bruno also buys the expansion pack, which is only
// playable with the game. The merge detects the oversold counter, decides
// who keeps the game — maximizing profit, like the paper's pseudocode —
// removes related items, and "sends an apology" to the other customer,
// all in one atomic merge transaction.
//
//   $ ./examples/shopping_cart

#include <cstdio>
#include <string>
#include <vector>

#include "core/tardis_store.h"

using namespace tardis;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    ::tardis::Status _s = (expr);                               \
    if (!_s.ok()) {                                             \
      fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,  \
              _s.ToString().c_str());                           \
      return 1;                                                 \
    }                                                           \
  } while (0)

namespace {

// Figure 4's buy(): append to the cart, decrement stock, remember the
// cart on the item (all in one serializable transaction on this branch).
Status Buy(TardisStore* store, ClientSession* customer,
           const std::string& cart, const std::string& item) {
  auto txn = store->Begin(customer, AncestorBegin());
  if (!txn.ok()) return txn.status();
  Transaction* t = txn->get();

  std::string items;
  Status s = t->Get(cart + "/items", &items);
  if (!s.ok() && !s.IsNotFound()) return s;
  items += item + ";";
  TARDIS_RETURN_IF_ERROR(t->Put(cart + "/items", items));

  std::string stock_raw;
  TARDIS_RETURN_IF_ERROR(t->Get(item + "/stock", &stock_raw));
  const int stock = std::stoi(stock_raw);
  TARDIS_RETURN_IF_ERROR(t->Put(item + "/stock", std::to_string(stock - 1)));

  std::string carts;
  s = t->Get(item + "/carts", &carts);
  if (!s.ok() && !s.IsNotFound()) return s;
  carts += cart + ";";
  TARDIS_RETURN_IF_ERROR(t->Put(item + "/carts", carts));
  return t->Commit(SerializabilityEnd());
}

std::string GetOr(Transaction* t, const std::string& key, StateId sid,
                  const std::string& fallback) {
  std::string v;
  return t->GetForId(key, sid, &v).ok() ? v : fallback;
}

}  // namespace

int main() {
  auto store_or = TardisStore::Open(TardisOptions{});
  if (!store_or.ok()) return 1;
  TardisStore* store = store_or->get();

  // Inventory: one copy of the board game, plenty of expansion packs.
  auto admin = store->CreateSession();
  {
    auto txn = store->Begin(admin.get());
    CHECK_OK(txn.status());
    CHECK_OK((*txn)->Put("boardgame/stock", "1"));
    CHECK_OK((*txn)->Put("expansion/stock", "10"));
    CHECK_OK((*txn)->Commit());
  }

  // Alice and Bruno buy concurrently: both transactions read stock=1 from
  // the same state, so the commits fork (branch-on-conflict) rather than
  // letting one block or abort.
  auto alice = store->CreateSession();
  auto bruno = store->CreateSession();
  {
    auto ta = store->Begin(alice.get());
    auto tb = store->Begin(bruno.get());
    CHECK_OK(ta.status());
    CHECK_OK(tb.status());
    // interleave manually to force both to read pre-sale stock
    std::string stock;
    CHECK_OK((*ta)->Get("boardgame/stock", &stock));
    CHECK_OK((*tb)->Get("boardgame/stock", &stock));
    CHECK_OK((*ta)->Put("cart-alice/items", "boardgame;"));
    CHECK_OK((*ta)->Put("boardgame/stock", "0"));
    CHECK_OK((*ta)->Put("boardgame/carts", "cart-alice;"));
    CHECK_OK((*tb)->Put("cart-bruno/items", "boardgame;"));
    CHECK_OK((*tb)->Put("boardgame/stock", "0"));
    CHECK_OK((*tb)->Put("boardgame/carts", "cart-bruno;"));
    CHECK_OK((*ta)->Commit());
    CHECK_OK((*tb)->Commit());
  }
  // Bruno additionally buys the expansion on his branch.
  CHECK_OK(Buy(store, bruno.get(), "cart-bruno", "expansion"));

  printf("branches after the concurrent sale: %zu\n",
         store->dag()->Leaves().size());

  // The merge (Figure 4 lines 13-45).
  auto merge_session = store->CreateSession();
  auto merge = store->BeginMerge(merge_session.get());
  CHECK_OK(merge.status());
  Transaction* m = merge->get();
  auto parents = m->parents();
  auto conflicts = m->FindConflictWrites(parents);
  CHECK_OK(conflicts.status());
  auto forks = m->FindForkPoints(parents);
  CHECK_OK(forks.status());
  const StateId fork = (*forks)[0];

  printf("conflicting keys:");
  for (const auto& k : *conflicts) printf(" %s", k.c_str());
  printf("\n");

  // Counter merge for the stock: fork + sum of branch deltas.
  const int fork_stock = std::stoi(GetOr(m, "boardgame/stock", fork, "0"));
  int merged_stock = fork_stock;
  for (StateId p : parents) {
    merged_stock += std::stoi(GetOr(m, "boardgame/stock", p, "0")) - fork_stock;
  }
  printf("boardgame stock at fork=%d, merged=%d\n", fork_stock, merged_stock);

  if (merged_stock >= 0) {
    CHECK_OK(m->Put("boardgame/stock", std::to_string(merged_stock)));
  } else {
    // Oversold. Orders since the fork point:
    std::string fork_carts = GetOr(m, "boardgame/carts", fork, "");
    std::vector<std::string> new_carts;
    for (StateId p : parents) {
      std::string carts = GetOr(m, "boardgame/carts", p, "");
      std::string fresh = carts.substr(fork_carts.size());
      size_t pos = 0;
      while ((pos = fresh.find(';')) != std::string::npos) {
        new_carts.push_back(fresh.substr(0, pos));
        fresh.erase(0, pos + 1);
      }
    }
    // Maximize profit: keep the customer whose cart is worth more —
    // Bruno, who also bought the expansion (the paper's choice).
    std::string winner, loser;
    for (StateId p : parents) {
      for (const std::string& cart : new_carts) {
        std::string items = GetOr(m, cart + "/items", p, "");
        if (items.find("expansion") != std::string::npos) winner = cart;
      }
    }
    for (const std::string& cart : new_carts) {
      if (cart != winner) loser = cart;
    }
    printf("oversold! confirming %s, apologizing to %s\n", winner.c_str(),
           loser.c_str());

    // Remove the game (and nothing else) from the loser's cart; keep the
    // invariant "no expansion without the game" intact for everyone.
    CHECK_OK(m->Put(loser + "/items", ""));
    CHECK_OK(m->Put(loser + "/apology",
                    "sorry - the last copy sold concurrently"));
    std::string witems;
    for (StateId p : parents) {
      std::string v = GetOr(m, winner + "/items", p, "");
      if (v.size() > witems.size()) witems = v;
    }
    CHECK_OK(m->Put(winner + "/items", witems));
    CHECK_OK(m->Put("boardgame/stock", "0"));
    CHECK_OK(m->Put("boardgame/carts", winner + ";"));
  }
  CHECK_OK(m->Commit());

  // Verify the final, convergent state.
  auto txn = store->Begin(admin.get());
  CHECK_OK(txn.status());
  std::string a_items, b_items, apology;
  (*txn)->Get("cart-alice/items", &a_items);
  (*txn)->Get("cart-bruno/items", &b_items);
  (*txn)->Get("cart-alice/apology", &apology);
  (*txn)->Abort();
  printf("final: alice's cart=[%s] bruno's cart=[%s]\n", a_items.c_str(),
         b_items.c_str());
  printf("alice's inbox: %s\n", apology.c_str());
  return 0;
}
