// Quickstart: open a TARDiS store, run transactions, watch a conflict
// fork the State DAG, inspect the branches, and merge them.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <string>

#include "core/tardis_store.h"

using namespace tardis;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::tardis::Status _s = (expr);                                 \
    if (!_s.ok()) {                                               \
      fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,    \
              _s.ToString().c_str());                             \
      return 1;                                                   \
    }                                                             \
  } while (0)

int main() {
  // 1. Open an in-memory TARDiS site (pass options.dir for durability).
  TardisOptions options;
  auto store_or = TardisStore::Open(options);
  if (!store_or.ok()) {
    fprintf(stderr, "open failed: %s\n", store_or.status().ToString().c_str());
    return 1;
  }
  TardisStore* store = store_or->get();

  // 2. Ordinary transactions: begin / get / put / commit. The default
  //    constraints (Ancestor begin, Serializability end) make storage look
  //    sequential within a branch.
  auto alice = store->CreateSession();
  auto bruno = store->CreateSession();
  {
    auto txn = store->Begin(alice.get());
    CHECK_OK(txn.status());
    CHECK_OK((*txn)->Put("greeting", "hello"));
    CHECK_OK((*txn)->Commit());
  }

  // 3. A write-write conflict: both sessions update `greeting` from the
  //    same state. Neither blocks, neither aborts — the store forks.
  auto ta = store->Begin(alice.get());
  auto tb = store->Begin(bruno.get());
  CHECK_OK(ta.status());
  CHECK_OK(tb.status());
  std::string v;
  CHECK_OK((*ta)->Get("greeting", &v));
  CHECK_OK((*tb)->Get("greeting", &v));
  CHECK_OK((*ta)->Put("greeting", "hello from alice"));
  CHECK_OK((*tb)->Put("greeting", "hello from bruno"));
  CHECK_OK((*ta)->Commit());
  CHECK_OK((*tb)->Commit());

  printf("after conflicting commits: %zu branches\n",
         store->dag()->Leaves().size());

  // 4. Inter-branch isolation: each session still reads its own value.
  for (auto* session : {alice.get(), bruno.get()}) {
    auto txn = store->Begin(session);
    CHECK_OK(txn.status());
    CHECK_OK((*txn)->Get("greeting", &v));
    printf("  session %p reads: %s\n", static_cast<void*>(session), v.c_str());
    (*txn)->Abort();
  }

  // 5. Merge: read both branch tips, inspect the conflict, write one
  //    reconciled state back atomically.
  auto merger = store->CreateSession();
  auto merge = store->BeginMerge(merger.get());
  CHECK_OK(merge.status());
  auto conflicts = (*merge)->FindConflictWrites((*merge)->parents());
  CHECK_OK(conflicts.status());
  printf("conflicting keys:");
  for (const std::string& key : *conflicts) printf(" %s", key.c_str());
  printf("\n");

  auto forks = (*merge)->FindForkPoints((*merge)->parents());
  CHECK_OK(forks.status());
  std::string merged = "hello from";
  for (StateId parent : (*merge)->parents()) {
    std::string branch_value;
    CHECK_OK((*merge)->GetForId("greeting", parent, &branch_value));
    merged += branch_value.substr(10);  // strip "hello from"
    merged += " &";
  }
  merged.resize(merged.size() - 2);
  CHECK_OK((*merge)->Put("greeting", merged));
  CHECK_OK((*merge)->Commit());

  // 6. Everyone converges on the merged state.
  auto txn = store->Begin(alice.get());
  CHECK_OK(txn.status());
  CHECK_OK((*txn)->Get("greeting", &v));
  (*txn)->Abort();
  printf("after merge (%zu branch): %s\n", store->dag()->Leaves().size(),
         v.c_str());
  return 0;
}
