// The weakly-consistent Wikipedia scenario of §2 / Figure 1, played out on
// a replicated two-site TARDiS cluster.
//
// A page about the controversial Mr. Banditoni has three objects: content,
// references, image. Alice (site A) and Bruno (site B) concurrently edit
// the content; Carlo and Davide then make *causally dependent* edits to
// references and image on their own sites. After replication both sites
// hold two branches — one "for", one "against" — and, unlike a per-object
// store, TARDiS exposes the full cross-object context: findConflictWrites
// lists only `content`, but each branch carries its matching references
// and image, so a moderator can reconcile the page as a whole.
//
//   $ ./examples/wikipedia

#include <cstdio>
#include <string>

#include "replication/cluster.h"

using namespace tardis;

#define CHECK_OK(expr)                                          \
  do {                                                          \
    ::tardis::Status _s = (expr);                               \
    if (!_s.ok()) {                                             \
      fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,  \
              _s.ToString().c_str());                           \
      return 1;                                                 \
    }                                                           \
  } while (0)

namespace {

Status Edit(TardisStore* site, ClientSession* user,
            std::initializer_list<std::pair<const char*, const char*>> kvs) {
  auto txn = site->Begin(user);
  if (!txn.ok()) return txn.status();
  for (const auto& [key, value] : kvs) {
    TARDIS_RETURN_IF_ERROR((*txn)->Put(key, value));
  }
  return (*txn)->Commit();
}

std::string ReadAt(Transaction* txn, const char* key, StateId sid) {
  std::string v;
  Status s = txn->GetForId(key, sid, &v);
  return s.ok() ? v : "<" + s.ToString() + ">";
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_sites = 2;
  auto cluster_or = Cluster::Open(options);
  if (!cluster_or.ok()) {
    fprintf(stderr, "cluster open failed\n");
    return 1;
  }
  Cluster* cluster = cluster_or->get();
  cluster->Start();

  TardisStore* site_a = cluster->site(0);
  TardisStore* site_b = cluster->site(1);
  auto alice = site_a->CreateSession();
  auto carlo = site_a->CreateSession();
  auto bruno = site_b->CreateSession();
  auto davide = site_b->CreateSession();

  // Initial page, created at site A and replicated everywhere.
  CHECK_OK(Edit(site_a, alice.get(), {{"content", "neutral article"},
                                      {"references", "neutral sources"},
                                      {"image", "portrait"}}));
  cluster->WaitQuiescent();

  // Figure 1(b): concurrent conflicting edits to the content.
  CHECK_OK(Edit(site_a, alice.get(), {{"content", "FOR Banditoni"}}));
  CHECK_OK(Edit(site_b, bruno.get(), {{"content", "AGAINST Banditoni"}}));

  // Figure 1(c): causally dependent follow-ups on each site.
  CHECK_OK(Edit(site_a, carlo.get(), {{"references", "pro-Banditoni links"}}));
  CHECK_OK(Edit(site_b, davide.get(), {{"image", "derogatory picture"}}));

  // Figure 1(d): operations reach the other site.
  cluster->WaitQuiescent();

  printf("site A now has %zu branches; site B has %zu\n",
         site_a->dag()->Leaves().size(), site_b->dag()->Leaves().size());

  // A moderator at site A reconciles the page *atomically across all
  // three objects*, with full branch context.
  auto moderator = site_a->CreateSession();
  auto merge = site_a->BeginMerge(moderator.get());
  CHECK_OK(merge.status());

  auto conflicts = (*merge)->FindConflictWrites((*merge)->parents());
  CHECK_OK(conflicts.status());
  printf("explicit write-write conflicts:");
  for (const auto& key : *conflicts) printf(" %s", key.c_str());
  printf("\n");

  auto forks = (*merge)->FindForkPoints((*merge)->parents());
  CHECK_OK(forks.status());
  printf("branches forked at state %llu\n",
         static_cast<unsigned long long>((*forks)[0]));

  printf("%-12s | %-20s | %-22s | %s\n", "branch", "content", "references",
         "image");
  for (StateId parent : (*merge)->parents()) {
    printf("state %-6llu | %-20s | %-22s | %s\n",
           static_cast<unsigned long long>(parent),
           ReadAt(merge->get(), "content", parent).c_str(),
           ReadAt(merge->get(), "references", parent).c_str(),
           ReadAt(merge->get(), "image", parent).c_str());
  }

  // Wikipedia policy: present both viewpoints; the moderator fixes the
  // *semantic* inconsistency (references/image) that no per-object
  // resolver could even see.
  CHECK_OK((*merge)->Put("content", "disputed: both viewpoints presented"));
  CHECK_OK((*merge)->Put("references", "sources from both sides"));
  CHECK_OK((*merge)->Put("image", "neutral portrait"));
  CHECK_OK((*merge)->Commit());
  cluster->WaitQuiescent();

  auto reader = site_b->CreateSession();
  auto txn = site_b->Begin(reader.get());
  CHECK_OK(txn.status());
  std::string content, references, image;
  CHECK_OK((*txn)->Get("content", &content));
  CHECK_OK((*txn)->Get("references", &references));
  CHECK_OK((*txn)->Get("image", &image));
  (*txn)->Abort();
  printf("merged page visible at site B:\n  content:    %s\n"
         "  references: %s\n  image:      %s\n",
         content.c_str(), references.c_str(), image.c_str());
  cluster->Stop();
  return 0;
}
