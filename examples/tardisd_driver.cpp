// tardisd_driver: end-to-end harness for the tardisd site daemon. Spawns
// three tardisd processes on 127.0.0.1, then drives the paper's canonical
// branch-and-merge scenario across real OS processes and real sockets:
//
//   1. a commit at site 0 gossips to every site;
//   2. sites 0 and 1 are partitioned from each other (but not from site
//      2) and both update the same counter -> the State DAG forks;
//   3. the partition heals, recovery sync exchanges the missed commits,
//      every site holds both branches;
//   4. site 0 runs a counter-delta merge transaction; the merge commit
//      replicates and every site converges to the same single leaf;
//   5. the metrics registry must reflect the lifecycle: site 0 reports
//      nonzero fork and merge counters, over the line protocol and over
//      the --metrics-port HTTP endpoint;
//   6. a hostile client spews garbage at a replication port — the daemon
//      must shrug it off (frame CRC + bounds-checked decode).
//
// Exit code 0 iff the full scenario converges. Used by ctest as the
// cross-process acceptance test and runnable by hand:
//
//   tardisd_driver --tardisd=./examples/tardisd [--verbose]

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace {

bool g_verbose = false;
std::vector<pid_t>* g_fleet_pids = nullptr;

[[noreturn]] void Die(const std::string& msg) {
  fprintf(stderr, "tardisd_driver: FAIL: %s\n", msg.c_str());
  // exit() skips destructors; reap the daemons so they don't hold the
  // harness's output pipe open past our exit.
  if (g_fleet_pids != nullptr) {
    for (pid_t pid : *g_fleet_pids) {
      if (pid > 0) {
        kill(pid, SIGKILL);
        waitpid(pid, nullptr, 0);
      }
    }
  }
  exit(1);
}

uint16_t PickFreePort() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Die("bind for port probe failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

int ConnectTo(uint16_t port, uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

/// One line out, one line back.
std::string Cmd(int fd, const std::string& line) {
  const std::string out = line + "\n";
  if (write(fd, out.data(), out.size()) != static_cast<ssize_t>(out.size())) {
    Die("short write on client connection");
  }
  std::string reply;
  char c;
  while (true) {
    const ssize_t n = read(fd, &c, 1);
    if (n <= 0) Die("daemon closed connection during '" + line + "'");
    if (c == '\n') break;
    reply.push_back(c);
  }
  if (g_verbose) printf("  [%s] -> %s\n", line.c_str(), reply.c_str());
  return reply;
}

/// One line out, lines back until the "END" terminator (the `metrics` and
/// `stats` commands). Returns the body without the terminator.
std::string CmdMulti(int fd, const std::string& line) {
  const std::string out = line + "\n";
  if (write(fd, out.data(), out.size()) != static_cast<ssize_t>(out.size())) {
    Die("short write on client connection");
  }
  std::string body, cur;
  char c;
  while (true) {
    const ssize_t n = read(fd, &c, 1);
    if (n <= 0) Die("daemon closed connection during '" + line + "'");
    if (c != '\n') {
      cur.push_back(c);
      continue;
    }
    if (cur == "END") break;
    body += cur;
    body.push_back('\n');
    cur.clear();
  }
  if (g_verbose) printf("  [%s] -> %zu bytes\n", line.c_str(), body.size());
  return body;
}

/// Value of `name{...}` in a Prometheus text dump; -1 when the series is
/// absent. Matches any label set — the driver only checks one site's dump.
long long MetricValue(const std::string& dump, const std::string& name) {
  size_t pos = 0;
  while ((pos = dump.find(name, pos)) != std::string::npos) {
    // Reject prefix matches (tardis_txn_forks_total vs ..._total_foo) and
    // mid-line hits (HELP/TYPE lines start with '#').
    const bool line_start = pos == 0 || dump[pos - 1] == '\n';
    const size_t end = pos + name.size();
    const char next = end < dump.size() ? dump[end] : '\n';
    if (!line_start || (next != '{' && next != ' ')) {
      pos = end;
      continue;
    }
    const size_t sp = dump.find(' ', end);
    if (sp == std::string::npos) return -1;
    return atoll(dump.c_str() + sp + 1);
  }
  return -1;
}

bool WaitFor(const std::function<bool()>& cond, uint64_t timeout_ms = 15'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

struct Fleet {
  std::vector<pid_t> pids;
  std::vector<int> conns;          // client connections, by site
  std::vector<uint16_t> repl_ports;
  std::vector<uint16_t> metrics_ports;

  ~Fleet() {
    for (int fd : conns) {
      if (fd >= 0) close(fd);
    }
    for (pid_t pid : pids) {
      if (pid > 0) {
        kill(pid, SIGKILL);
        waitpid(pid, nullptr, 0);
      }
    }
  }
};

void SpawnFleet(const std::string& tardisd, size_t n, Fleet* fleet) {
  std::vector<uint16_t> client_ports;
  std::string peers;
  for (size_t i = 0; i < n; i++) {
    fleet->repl_ports.push_back(PickFreePort());
    client_ports.push_back(PickFreePort());
    fleet->metrics_ports.push_back(PickFreePort());
    if (i) peers += ",";
    peers += "127.0.0.1:" + std::to_string(fleet->repl_ports.back());
  }
  for (size_t i = 0; i < n; i++) {
    const pid_t pid = fork();
    if (pid < 0) Die("fork failed");
    if (pid == 0) {
      const std::string site_flag = "--site=" + std::to_string(i);
      const std::string peers_flag = "--peers=" + peers;
      const std::string client_flag =
          "--client-port=" + std::to_string(client_ports[i]);
      const std::string metrics_flag =
          "--metrics-port=" + std::to_string(fleet->metrics_ports[i]);
      if (!g_verbose) {
        freopen("/dev/null", "w", stdout);
      }
      execl(tardisd.c_str(), "tardisd", site_flag.c_str(), peers_flag.c_str(),
            client_flag.c_str(), metrics_flag.c_str(),
            static_cast<char*>(nullptr));
      fprintf(stderr, "exec %s failed: %s\n", tardisd.c_str(),
              strerror(errno));
      _exit(127);
    }
    fleet->pids.push_back(pid);
  }
  for (size_t i = 0; i < n; i++) {
    const int fd = ConnectTo(client_ports[i], 10'000);
    if (fd < 0) Die("site " + std::to_string(i) + " never came up");
    fleet->conns.push_back(fd);
  }
}

/// Plain HTTP/1.0 GET against a daemon's --metrics-port; returns the body.
std::string HttpGetMetrics(uint16_t port) {
  const int fd = ConnectTo(port, 5'000);
  if (fd < 0) Die("could not connect to metrics port");
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  if (write(fd, req, sizeof(req) - 1) != static_cast<ssize_t>(sizeof(req) - 1)) {
    Die("short write on metrics connection");
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t body = resp.find("\r\n\r\n");
  if (resp.rfind("HTTP/1.0 200", 0) != 0 || body == std::string::npos) {
    Die("metrics endpoint returned a malformed response");
  }
  return resp.substr(body + 4);
}

void FuzzReplicationPort(uint16_t port) {
  // Garbage bytes, then a hostile length prefix claiming a 4 GiB frame.
  const int fd = ConnectTo(port, 5'000);
  if (fd < 0) Die("could not connect to replication port for fuzzing");
  std::string junk(8192, '\xd6');
  for (size_t i = 0; i < junk.size(); i++) {
    junk[i] = static_cast<char>((i * 2654435761u) >> 13);
  }
  memset(junk.data(), 0xFF, 4);  // length prefix = 0xFFFFFFFF
  (void)!write(fd, junk.data(), junk.size());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  close(fd);
}

int Run(const std::string& tardisd) {
  Fleet fleet;
  SpawnFleet(tardisd, 3, &fleet);
  g_fleet_pids = &fleet.pids;
  auto at = [&](size_t site, const std::string& line) {
    return Cmd(fleet.conns[site], line);
  };

  // Everyone alive, and every dialed replication connection established?
  // Gossip tolerates drops by design, so a commit broadcast before the
  // mesh is up would silently miss its peers.
  for (size_t i = 0; i < 3; i++) {
    if (at(i, "ping") != "PONG") Die("site did not answer ping");
  }
  if (!WaitFor([&] {
        for (size_t i = 0; i < 3; i++) {
          if (at(i, "peers") != "PEERS 2") return false;
        }
        return true;
      })) {
    Die("replication mesh never fully connected");
  }
  printf("== 3 tardisd processes up, replication mesh connected\n");

  // 1. One commit gossips everywhere.
  if (at(0, "put cnt 5") != "OK") Die("put at site 0 failed");
  if (!WaitFor([&] {
        return at(1, "get cnt") == "VALUE 5" && at(2, "get cnt") == "VALUE 5";
      })) {
    Die("initial commit did not replicate to all sites");
  }
  printf("== initial commit replicated to all sites\n");

  // 2. Cut 0<->1 (both endpoints) and write concurrently: the DAG forks.
  at(0, "isolate 1");
  at(1, "isolate 0");
  if (at(0, "put cnt 6") != "OK") Die("put at site 0 failed");
  if (at(1, "put cnt 7") != "OK") Die("put at site 1 failed");
  // Site 2 talks to both writers, so it sees the fork first.
  if (!WaitFor([&] { return at(2, "leaves") == "LEAVES 2"; })) {
    Die("site 2 never saw both branches");
  }
  printf("== concurrent writes during partition: site 2 forked\n");

  // 3. Heal and sync: every site holds both branches.
  at(0, "heal");
  at(1, "heal");
  at(0, "sync");
  at(1, "sync");
  if (!WaitFor([&] {
        return at(0, "leaves") == "LEAVES 2" && at(1, "leaves") == "LEAVES 2";
      })) {
    Die("branches did not propagate after heal+sync");
  }
  printf("== partition healed, all sites hold both branches\n");

  // 4. Counter-delta merge at site 0: 5 + (6-5) + (7-5) = 8 everywhere.
  const std::string merged = at(0, "merge counter");
  if (merged != "MERGED 2") Die("merge failed: " + merged);
  for (size_t i = 0; i < 3; i++) {
    const size_t site = i;
    if (!WaitFor([&] {
          return at(site, "leaves") == "LEAVES 1" &&
                 at(site, "get cnt") == "VALUE 8";
        })) {
      Die("site " + std::to_string(site) + " did not converge to merged 8");
    }
  }
  printf("== merge replicated: all 3 sites converged on cnt=8, one leaf\n");

  // 5. The registry must have watched all of it happen. Site 0 committed
  // the merge itself; its branch forked when site 1's concurrent write
  // arrived, so both lifecycle counters are nonzero. Check the line
  // protocol first, then the same series over HTTP.
  const std::string dump = CmdMulti(fleet.conns[0], "metrics");
  if (MetricValue(dump, "tardis_txn_forks_total") < 1) {
    Die("site 0 metrics: tardis_txn_forks_total not >= 1\n" + dump);
  }
  if (MetricValue(dump, "tardis_txn_merges_total") < 1) {
    Die("site 0 metrics: tardis_txn_merges_total not >= 1\n" + dump);
  }
  if (MetricValue(dump, "tardis_repl_applied_total") < 1) {
    Die("site 0 metrics: tardis_repl_applied_total not >= 1\n" + dump);
  }
  if (MetricValue(dump, "tardis_dag_leaves") != 1) {
    Die("site 0 metrics: tardis_dag_leaves != 1\n" + dump);
  }
  const std::string table = CmdMulti(fleet.conns[0], "stats");
  if (table.find("tardis_txn_commits_total") == std::string::npos) {
    Die("stats table missing tardis_txn_commits_total\n" + table);
  }
  const std::string http = HttpGetMetrics(fleet.metrics_ports[0]);
  if (MetricValue(http, "tardis_txn_commits_total") < 1 ||
      MetricValue(http, "tardis_txn_forks_total") < 1) {
    Die("HTTP metrics endpoint missing txn counters\n" + http);
  }
  printf("== metrics reflect the lifecycle: forks>=1, merges>=1, "
         "served over line protocol and HTTP\n");

  // 6. Fuzz a replication port; the daemon must survive and keep serving.
  FuzzReplicationPort(fleet.repl_ports[0]);
  if (at(0, "ping") != "PONG" || at(0, "get cnt") != "VALUE 8") {
    Die("site 0 unhealthy after garbage frames");
  }
  printf("== site 0 survived garbage frames on its replication port\n");

  for (size_t i = 0; i < 3; i++) at(i, "shutdown");
  printf("PASS: cross-process branch-and-merge converged over TCP\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tardisd;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--tardisd=", 0) == 0) {
      tardisd = arg.substr(strlen("--tardisd="));
    } else if (arg == "--verbose") {
      g_verbose = true;
    } else {
      fprintf(stderr, "usage: tardisd_driver --tardisd=PATH [--verbose]\n");
      return 2;
    }
  }
  if (tardisd.empty()) {
    fprintf(stderr, "usage: tardisd_driver --tardisd=PATH [--verbose]\n");
    return 2;
  }
  signal(SIGPIPE, SIG_IGN);
  return Run(tardisd);
}
