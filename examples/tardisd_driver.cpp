// tardisd_driver: end-to-end harness for the tardisd site daemon. Spawns
// three tardisd processes on 127.0.0.1, then drives the paper's canonical
// branch-and-merge scenario across real OS processes and real sockets:
//
//   1. a commit at site 0 gossips to every site;
//   2. sites 0 and 1 are partitioned from each other (but not from site
//      2) and both update the same counter -> the State DAG forks;
//   3. the partition heals, recovery sync exchanges the missed commits,
//      every site holds both branches;
//   4. site 0 runs a counter-delta merge transaction; the merge commit
//      replicates and every site converges to the same single leaf;
//   5. the metrics registry must reflect the lifecycle: site 0 reports
//      nonzero fork and merge counters, over the line protocol and over
//      the --metrics-port HTTP endpoint;
//   6. a hostile client spews garbage at a replication port — the daemon
//      must shrug it off (frame CRC + bounds-checked decode);
//   7. `health` reports per-peer liveness; killing site 2 flips it to
//      dead at the survivors, and a BLANK restart of site 2 reconverges
//      via heartbeat-driven anti-entropy / snapshot bootstrap with NO
//      manual sync (the fleet runs --archive-horizon=2, so the survivors
//      have trimmed their gossip archives and must ship a snapshot);
//   8. an overloaded daemon (1 worker, queue of 1) sheds with a
//      retryable "ERR BUSY", expires queued work past the request
//      deadline with "ERR DEADLINE", and a backoff-retry client still
//      gets through;
//   9. SIGTERM drains gracefully: exit code 0, and a committed-right-
//      before-the-signal key survives a restart from the same --dir;
//  10. exactly-once client sessions (DESIGN.md §13): a duplicate
//      sessioned put answers from the dedup table with the identical
//      state id, a SIGKILLed site fails over with session floors intact,
//      an uncoverable floor yields ERR BEHIND while stale-ok serves the
//      degraded read, and a crash-restarted site still dedups the
//      original request after commit-log replay.
//
// Exit code 0 iff the full scenario converges. Used by ctest as the
// cross-process acceptance test and runnable by hand:
//
//   tardisd_driver --tardisd=./examples/tardisd [--verbose]
//
// With --grid (and --router=PATH) it instead runs the partitioned-
// cluster acceptance (DESIGN.md §10): a 2-partition × 3-site grid
// behind a stateless tardis-router — fast-path routing with zero 2PC
// frames, a cross-partition 2PC commit, a chaos-injected conflict that
// FORKS the affected partition's DAG and is merged back, and a router
// SIGKILLed between prepare and decide whose in-doubt transaction the
// participants resolve cooperatively, with no acknowledged write lost:
//
//   tardisd_driver --tardisd=./examples/tardisd
//                  --router=./examples/tardis_router --grid
//
// With --trace (plus --router and --tracectl=PATH) it runs the
// distributed-tracing acceptance (DESIGN.md §7): trace start/sample
// through the router, a cross-partition mput under a driver-chosen
// trace id, a stitched Chrome trace — via the router's `trace collect`
// AND tardis-tracectl — in which that id spans at least 3 processes,
// and a `metrics cluster` merge carrying every process's stage
// histograms:
//
//   tardisd_driver --tardisd=./examples/tardisd
//                  --router=./examples/tardis_router
//                  --tracectl=./examples/tardis_tracectl --trace

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "client/tardis_client.h"
#include "core/session.h"

namespace {

bool g_verbose = false;
std::vector<pid_t>* g_fleet_pids = nullptr;

[[noreturn]] void Die(const std::string& msg) {
  fprintf(stderr, "tardisd_driver: FAIL: %s\n", msg.c_str());
  // exit() skips destructors; reap the daemons so they don't hold the
  // harness's output pipe open past our exit.
  if (g_fleet_pids != nullptr) {
    for (pid_t pid : *g_fleet_pids) {
      if (pid > 0) {
        kill(pid, SIGKILL);
        waitpid(pid, nullptr, 0);
      }
    }
  }
  exit(1);
}

uint16_t PickFreePort() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Die("bind for port probe failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

int ConnectTo(uint16_t port, uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

/// One line out, one line back.
std::string Cmd(int fd, const std::string& line) {
  const std::string out = line + "\n";
  if (write(fd, out.data(), out.size()) != static_cast<ssize_t>(out.size())) {
    Die("short write on client connection");
  }
  std::string reply;
  char c;
  while (true) {
    const ssize_t n = read(fd, &c, 1);
    if (n <= 0) Die("daemon closed connection during '" + line + "'");
    if (c == '\n') break;
    reply.push_back(c);
  }
  if (g_verbose) printf("  [%s] -> %s\n", line.c_str(), reply.c_str());
  return reply;
}

/// One line out, lines back until the "END" terminator (the `metrics`,
/// `stats` and `health` commands). Returns the body without the
/// terminator.
std::string CmdMulti(int fd, const std::string& line) {
  const std::string out = line + "\n";
  if (write(fd, out.data(), out.size()) != static_cast<ssize_t>(out.size())) {
    Die("short write on client connection");
  }
  std::string body, cur;
  char c;
  while (true) {
    const ssize_t n = read(fd, &c, 1);
    if (n <= 0) Die("daemon closed connection during '" + line + "'");
    if (c != '\n') {
      cur.push_back(c);
      continue;
    }
    if (cur == "END") break;
    body += cur;
    body.push_back('\n');
    cur.clear();
  }
  if (g_verbose) printf("  [%s] -> %zu bytes\n", line.c_str(), body.size());
  return body;
}

/// Retryable-aware request through the real client library (src/client/,
/// DESIGN.md §13): TardisClient resends on the daemon's retryable errors
/// ("ERR BUSY"/"ERR DEADLINE"/"ERR SHUTTING_DOWN"/"ERR BEHIND") with
/// jittered backoff, so the driver exercises the same retry
/// implementation users get instead of a parallel ad-hoc loop. Returns
/// the first non-retryable reply, or the client's error once the
/// deadline is exhausted.
std::string CmdRetry(uint16_t port, const std::string& line,
                     uint64_t timeout_ms = 15'000) {
  tardis::client::TardisClientOptions opt;
  opt.endpoints.push_back("127.0.0.1:" + std::to_string(port));
  opt.request_deadline_ms = timeout_ms;
  tardis::client::TardisClient cli(std::move(opt));
  std::string reply;
  const tardis::Status s = cli.Call(line, &reply);
  if (!s.ok()) reply = "ERR " + s.ToString();
  if (g_verbose) printf("  [retry %s] -> %s\n", line.c_str(), reply.c_str());
  return reply;
}

/// Value of one specific series in a Prometheus text dump, label set and
/// all: `series` is the full left-hand side, e.g.
/// `tardis_router_requests{path="fast"}`. -1 when absent.
long long MetricSeries(const std::string& dump, const std::string& series) {
  size_t pos = 0;
  while ((pos = dump.find(series, pos)) != std::string::npos) {
    const bool line_start = pos == 0 || dump[pos - 1] == '\n';
    const size_t end = pos + series.size();
    if (!line_start || end >= dump.size() || dump[end] != ' ') {
      pos = end;
      continue;
    }
    return atoll(dump.c_str() + end + 1);
  }
  return -1;
}

/// Value of a `field=<n>` token in a health dump (e.g. twopc_in_doubt);
/// -1 when absent.
long long HealthField(const std::string& health, const std::string& field) {
  const std::string needle = " " + field + "=";
  const size_t pos = health.find(needle);
  if (pos == std::string::npos) return -1;
  return atoll(health.c_str() + pos + needle.size());
}

/// Value of `name{...}` in a Prometheus text dump; -1 when the series is
/// absent. Matches any label set — the driver only checks one site's dump.
long long MetricValue(const std::string& dump, const std::string& name) {
  size_t pos = 0;
  while ((pos = dump.find(name, pos)) != std::string::npos) {
    // Reject prefix matches (tardis_txn_forks_total vs ..._total_foo) and
    // mid-line hits (HELP/TYPE lines start with '#').
    const bool line_start = pos == 0 || dump[pos - 1] == '\n';
    const size_t end = pos + name.size();
    const char next = end < dump.size() ? dump[end] : '\n';
    if (!line_start || (next != '{' && next != ' ')) {
      pos = end;
      continue;
    }
    const size_t sp = dump.find(' ', end);
    if (sp == std::string::npos) return -1;
    return atoll(dump.c_str() + sp + 1);
  }
  return -1;
}

bool WaitFor(const std::function<bool()>& cond, uint64_t timeout_ms = 15'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

/// Does the `health` dump report `PEER <site> state=<state>`?
bool HealthPeerState(const std::string& health, uint32_t site,
                     const std::string& state) {
  const std::string needle =
      "PEER " + std::to_string(site) + " state=" + state;
  return health.find(needle) != std::string::npos;
}

struct Fleet {
  std::vector<pid_t> pids;
  std::vector<int> conns;          // client connections, by site
  std::vector<uint16_t> repl_ports;
  std::vector<uint16_t> client_ports;
  std::vector<uint16_t> metrics_ports;
  std::string peers_flag;          // shared --peers list
  std::vector<std::string> extra_args;
  // Flags only some sites get (index = site), e.g. the one site per
  // partition group that serves the coordination port.
  std::vector<std::vector<std::string>> per_site_extra;

  ~Fleet() {
    for (int fd : conns) {
      if (fd >= 0) close(fd);
    }
    for (pid_t pid : pids) {
      if (pid > 0) {
        kill(pid, SIGKILL);
        waitpid(pid, nullptr, 0);
      }
    }
  }
};

pid_t SpawnOne(const std::string& tardisd, const Fleet& fleet, size_t site) {
  // The child inherits our buffered stdout; flush so its exit-time flush
  // does not replay our progress lines.
  fflush(stdout);
  const pid_t pid = fork();
  if (pid < 0) Die("fork failed");
  if (pid == 0) {
    std::vector<std::string> args;
    args.push_back("tardisd");
    args.push_back("--site=" + std::to_string(site));
    args.push_back("--peers=" + fleet.peers_flag);
    args.push_back("--client-port=" + std::to_string(fleet.client_ports[site]));
    args.push_back("--metrics-port=" +
                   std::to_string(fleet.metrics_ports[site]));
    for (const std::string& extra : fleet.extra_args) {
      // A per-site data directory: "--dir=BASE" becomes "--dir=BASE/siteN".
      if (extra.rfind("--dir=", 0) == 0) {
        args.push_back(extra + "/site" + std::to_string(site));
      } else {
        args.push_back(extra);
      }
    }
    if (site < fleet.per_site_extra.size()) {
      for (const std::string& extra : fleet.per_site_extra[site]) {
        args.push_back(extra);
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    if (!g_verbose) {
      freopen("/dev/null", "w", stdout);
    }
    execv(tardisd.c_str(), argv.data());
    fprintf(stderr, "exec %s failed: %s\n", tardisd.c_str(), strerror(errno));
    _exit(127);
  }
  return pid;
}

void SpawnFleet(const std::string& tardisd, size_t n,
                std::vector<std::string> extra_args, Fleet* fleet) {
  fleet->extra_args = std::move(extra_args);
  for (size_t i = 0; i < n; i++) {
    fleet->repl_ports.push_back(PickFreePort());
    fleet->client_ports.push_back(PickFreePort());
    fleet->metrics_ports.push_back(PickFreePort());
    if (i) fleet->peers_flag += ",";
    fleet->peers_flag += "127.0.0.1:" + std::to_string(fleet->repl_ports[i]);
  }
  for (size_t i = 0; i < n; i++) {
    fleet->pids.push_back(SpawnOne(tardisd, *fleet, i));
  }
  for (size_t i = 0; i < n; i++) {
    const int fd = ConnectTo(fleet->client_ports[i], 10'000);
    if (fd < 0) Die("site " + std::to_string(i) + " never came up");
    fleet->conns.push_back(fd);
  }
}

/// Plain HTTP/1.0 GET against a daemon's --metrics-port; returns the body.
std::string HttpGetMetrics(uint16_t port) {
  const int fd = ConnectTo(port, 5'000);
  if (fd < 0) Die("could not connect to metrics port");
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  if (write(fd, req, sizeof(req) - 1) != static_cast<ssize_t>(sizeof(req) - 1)) {
    Die("short write on metrics connection");
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t body = resp.find("\r\n\r\n");
  if (resp.rfind("HTTP/1.0 200", 0) != 0 || body == std::string::npos) {
    Die("metrics endpoint returned a malformed response");
  }
  return resp.substr(body + 4);
}

void FuzzReplicationPort(uint16_t port) {
  // Garbage bytes, then a hostile length prefix claiming a 4 GiB frame.
  const int fd = ConnectTo(port, 5'000);
  if (fd < 0) Die("could not connect to replication port for fuzzing");
  std::string junk(8192, '\xd6');
  for (size_t i = 0; i < junk.size(); i++) {
    junk[i] = static_cast<char>((i * 2654435761u) >> 13);
  }
  memset(junk.data(), 0xFF, 4);  // length prefix = 0xFFFFFFFF
  (void)!write(fd, junk.data(), junk.size());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  close(fd);
}

/// Phases 1–7: branch-and-merge over TCP, then the resilience layer —
/// liveness in `health`, crash of site 2, blank-restart convergence with
/// no manual sync.
int RunConvergence(const std::string& tardisd) {
  Fleet fleet;
  // Tiny archive horizon: by the time site 2 is crashed and restarted
  // blank, the survivors have trimmed their gossip archives past the
  // early commits, so reconvergence MUST go through the snapshot
  // bootstrap path, not just commit replay.
  SpawnFleet(tardisd, 3, {"--archive-horizon=2"}, &fleet);
  g_fleet_pids = &fleet.pids;
  auto at = [&](size_t site, const std::string& line) {
    return Cmd(fleet.conns[site], line);
  };

  // Everyone alive, and every dialed replication connection established?
  // Gossip tolerates drops by design, so a commit broadcast before the
  // mesh is up would silently miss its peers.
  for (size_t i = 0; i < 3; i++) {
    if (at(i, "ping") != "PONG") Die("site did not answer ping");
  }
  if (!WaitFor([&] {
        for (size_t i = 0; i < 3; i++) {
          if (at(i, "peers") != "PEERS 2") return false;
        }
        return true;
      })) {
    Die("replication mesh never fully connected");
  }
  printf("== 3 tardisd processes up, replication mesh connected\n");

  // 1. One commit gossips everywhere.
  if (at(0, "put cnt 5") != "OK") Die("put at site 0 failed");
  if (!WaitFor([&] {
        return at(1, "get cnt") == "VALUE 5" && at(2, "get cnt") == "VALUE 5";
      })) {
    Die("initial commit did not replicate to all sites");
  }
  printf("== initial commit replicated to all sites\n");

  // 2. Cut 0<->1 (both endpoints) and write concurrently: the DAG forks.
  at(0, "isolate 1");
  at(1, "isolate 0");
  if (at(0, "put cnt 6") != "OK") Die("put at site 0 failed");
  if (at(1, "put cnt 7") != "OK") Die("put at site 1 failed");
  // Site 2 talks to both writers, so it sees the fork first.
  if (!WaitFor([&] { return at(2, "leaves") == "LEAVES 2"; })) {
    Die("site 2 never saw both branches");
  }
  printf("== concurrent writes during partition: site 2 forked\n");

  // 3. Heal: automatic anti-entropy (heartbeat digests) exchanges the
  // missed commits with no manual sync. Every site holds both branches.
  at(0, "heal");
  at(1, "heal");
  if (!WaitFor([&] {
        return at(0, "leaves") == "LEAVES 2" && at(1, "leaves") == "LEAVES 2";
      })) {
    Die("branches did not propagate after heal");
  }
  printf("== partition healed, anti-entropy spread both branches\n");

  // 4. Counter-delta merge at site 0: 5 + (6-5) + (7-5) = 8 everywhere.
  const std::string merged = at(0, "merge counter");
  if (merged != "MERGED 2") Die("merge failed: " + merged);
  for (size_t i = 0; i < 3; i++) {
    const size_t site = i;
    if (!WaitFor([&] {
          return at(site, "leaves") == "LEAVES 1" &&
                 at(site, "get cnt") == "VALUE 8";
        })) {
      Die("site " + std::to_string(site) + " did not converge to merged 8");
    }
  }
  printf("== merge replicated: all 3 sites converged on cnt=8, one leaf\n");

  // 5. The registry must have watched all of it happen. Site 0 committed
  // the merge itself; its branch forked when site 1's concurrent write
  // arrived, so both lifecycle counters are nonzero. Check the line
  // protocol first, then the same series over HTTP.
  const std::string dump = CmdMulti(fleet.conns[0], "metrics");
  if (MetricValue(dump, "tardis_txn_forks_total") < 1) {
    Die("site 0 metrics: tardis_txn_forks_total not >= 1\n" + dump);
  }
  if (MetricValue(dump, "tardis_txn_merges_total") < 1) {
    Die("site 0 metrics: tardis_txn_merges_total not >= 1\n" + dump);
  }
  if (MetricValue(dump, "tardis_repl_applied_total") < 1) {
    Die("site 0 metrics: tardis_repl_applied_total not >= 1\n" + dump);
  }
  if (MetricValue(dump, "tardis_dag_leaves") != 1) {
    Die("site 0 metrics: tardis_dag_leaves != 1\n" + dump);
  }
  if (MetricValue(dump, "tardis_repl_heartbeats_sent_total") < 1) {
    Die("site 0 metrics: tardis_repl_heartbeats_sent_total not >= 1\n" + dump);
  }
  const std::string table = CmdMulti(fleet.conns[0], "stats");
  if (table.find("tardis_txn_commits_total") == std::string::npos) {
    Die("stats table missing tardis_txn_commits_total\n" + table);
  }
  const std::string http = HttpGetMetrics(fleet.metrics_ports[0]);
  if (MetricValue(http, "tardis_txn_commits_total") < 1 ||
      MetricValue(http, "tardis_txn_forks_total") < 1) {
    Die("HTTP metrics endpoint missing txn counters\n" + http);
  }
  printf("== metrics reflect the lifecycle: forks>=1, merges>=1, "
         "served over line protocol and HTTP\n");

  // 6. Fuzz a replication port; the daemon must survive and keep serving.
  FuzzReplicationPort(fleet.repl_ports[0]);
  if (at(0, "ping") != "PONG" || at(0, "get cnt") != "VALUE 8") {
    Die("site 0 unhealthy after garbage frames");
  }
  printf("== site 0 survived garbage frames on its replication port\n");

  // 7. Resilience: health shows live peers; a SIGKILLed site flips to
  // dead at the survivors; a blank restart reconverges automatically.
  if (!WaitFor([&] {
        const std::string h = CmdMulti(fleet.conns[0], "health");
        return h.find("SITE 0") != std::string::npos &&
               HealthPeerState(h, 1, "alive") &&
               HealthPeerState(h, 2, "alive") &&
               h.find("FLOOR ") != std::string::npos;
      })) {
    Die("health at site 0 never showed both peers alive:\n" +
        CmdMulti(fleet.conns[0], "health"));
  }
  kill(fleet.pids[2], SIGKILL);
  waitpid(fleet.pids[2], nullptr, 0);
  fleet.pids[2] = -1;
  close(fleet.conns[2]);
  fleet.conns[2] = -1;
  if (!WaitFor([&] {
        return HealthPeerState(CmdMulti(fleet.conns[0], "health"), 2, "dead") &&
               HealthPeerState(CmdMulti(fleet.conns[1], "health"), 2, "dead");
      })) {
    Die("survivors never marked crashed site 2 dead");
  }
  printf("== site 2 SIGKILLed, survivors report it dead via health\n");

  // More commits while site 2 is down; with --archive-horizon=2 these
  // push the early history out of the survivors' archives.
  for (int i = 0; i < 8; i++) {
    if (at(0, "put k" + std::to_string(i) + " v" + std::to_string(i)) != "OK") {
      Die("put during site-2 downtime failed");
    }
  }
  if (!WaitFor([&] { return at(1, "get k7") == "VALUE v7"; })) {
    Die("survivor gossip stalled while site 2 was down");
  }

  // Blank restart (no --dir: the daemon starts with an empty store). It
  // must catch up purely from heartbeat-driven anti-entropy — the driver
  // never sends `sync`. The early commits are past the survivors'
  // archive horizon, so a snapshot must be shipped.
  fleet.pids[2] = SpawnOne(tardisd, fleet, 2);
  fleet.conns[2] = ConnectTo(fleet.client_ports[2], 10'000);
  if (fleet.conns[2] < 0) Die("site 2 did not come back up");
  if (!WaitFor(
          [&] {
            return at(2, "get cnt") == "VALUE 8" &&
                   at(2, "get k7") == "VALUE v7" &&
                   at(2, "leaves") == "LEAVES 1";
          },
          30'000)) {
    Die("blank-restarted site 2 did not reconverge via anti-entropy:\n" +
        CmdMulti(fleet.conns[2], "health"));
  }
  if (!WaitFor([&] {
        return HealthPeerState(CmdMulti(fleet.conns[0], "health"), 2, "alive");
      })) {
    Die("survivors never marked restarted site 2 alive again");
  }
  const std::string m0 = CmdMulti(fleet.conns[0], "metrics");
  const std::string m1 = CmdMulti(fleet.conns[1], "metrics");
  if (MetricValue(m0, "tardis_repl_snapshots_sent_total") < 1 &&
      MetricValue(m1, "tardis_repl_snapshots_sent_total") < 1) {
    Die("no survivor shipped a snapshot to the blank site:\n" + m0 + m1);
  }
  printf("== blank restart of site 2 reconverged with no manual sync "
         "(snapshot bootstrap + anti-entropy)\n");

  for (size_t i = 0; i < 3; i++) at(i, "shutdown");
  g_fleet_pids = nullptr;
  return 0;
}

/// Phases 8–9 on a dedicated 2-site fleet tuned to be trivially
/// overloadable (1 worker, queue of 1) and durable (--dir).
int RunOverloadAndDrain(const std::string& tardisd, const std::string& dir) {
  Fleet fleet;
  SpawnFleet(tardisd, 2,
             {"--workers=1", "--max-queue=1", "--request-deadline-ms=1000",
              "--dir=" + dir},
             &fleet);
  g_fleet_pids = &fleet.pids;
  if (Cmd(fleet.conns[0], "ping") != "PONG") Die("overload fleet: no ping");

  // 8a. Shedding. Connection A pins the only worker; B's request fills
  // the queue; C must be shed with a retryable BUSY, and a retrying
  // client eventually gets through.
  const int conn_a = ConnectTo(fleet.client_ports[0], 5'000);
  const int conn_b = ConnectTo(fleet.client_ports[0], 5'000);
  const int conn_c = ConnectTo(fleet.client_ports[0], 5'000);
  if (conn_a < 0 || conn_b < 0 || conn_c < 0) Die("overload conns failed");
  const char sleep_cmd[] = "sleep 700\n";
  if (write(conn_a, sleep_cmd, sizeof(sleep_cmd) - 1) !=
      static_cast<ssize_t>(sizeof(sleep_cmd) - 1)) {
    Die("short write of sleep command");
  }
  // Give the worker a moment to pick the sleep off the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const char ping_cmd[] = "ping\n";
  if (write(conn_b, ping_cmd, sizeof(ping_cmd) - 1) !=
      static_cast<ssize_t>(sizeof(ping_cmd) - 1)) {
    Die("short write of queued ping");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::string busy = Cmd(conn_c, "ping");
  if (busy.rfind("ERR BUSY", 0) != 0) {
    Die("expected ERR BUSY from saturated daemon, got: " + busy);
  }
  const std::string retried = CmdRetry(fleet.client_ports[0], "ping");
  if (retried != "PONG") Die("retry after BUSY failed: " + retried);
  // B's queued ping waited < deadline, so it must have been served.
  std::string reply_b;
  {
    char c;
    while (read(conn_b, &c, 1) == 1 && c != '\n') reply_b.push_back(c);
  }
  if (reply_b != "PONG") Die("queued request not served: " + reply_b);
  // Drain A's OK.
  {
    char c;
    std::string reply_a;
    while (read(conn_a, &c, 1) == 1 && c != '\n') reply_a.push_back(c);
    if (reply_a != "OK") Die("sleep command reply: " + reply_a);
  }
  printf("== overload: daemon shed with ERR BUSY, retry got through\n");

  // 8b. Deadline expiry: pin the worker for longer than the request
  // deadline; the queued request must be answered ERR DEADLINE without
  // executing, and a retry succeeds.
  const char long_sleep[] = "sleep 1500\n";
  if (write(conn_a, long_sleep, sizeof(long_sleep) - 1) !=
      static_cast<ssize_t>(sizeof(long_sleep) - 1)) {
    Die("short write of long sleep");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::string expired = Cmd(conn_b, "ping");
  if (expired.rfind("ERR DEADLINE", 0) != 0) {
    Die("expected ERR DEADLINE for over-age queued request, got: " + expired);
  }
  if (CmdRetry(fleet.client_ports[0], "ping") != "PONG") {
    Die("retry after DEADLINE failed");
  }
  {
    char c;
    std::string reply_a;
    while (read(conn_a, &c, 1) == 1 && c != '\n') reply_a.push_back(c);
    if (reply_a != "OK") Die("long sleep reply: " + reply_a);
  }
  const std::string health = CmdMulti(fleet.conns[0], "health");
  if (health.find("shed=0 ") != std::string::npos ||
      health.find("expired=0 ") != std::string::npos) {
    Die("health did not count shed/expired requests:\n" + health);
  }
  close(conn_a);
  close(conn_b);
  close(conn_c);
  printf("== overload: queued request past deadline got ERR DEADLINE\n");

  // 9. Graceful drain. Commit a key, SIGTERM the daemon, require exit
  // code 0, then restart from the same --dir and read the key back —
  // committed transactions survive the drain.
  if (Cmd(fleet.conns[0], "put durable 42") != "OK") Die("durable put failed");
  kill(fleet.pids[0], SIGTERM);
  int status = 0;
  const pid_t reaped = waitpid(fleet.pids[0], &status, 0);
  if (reaped != fleet.pids[0] || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    Die("SIGTERM drain did not exit 0 (status=" + std::to_string(status) +
        ")");
  }
  fleet.pids[0] = -1;
  close(fleet.conns[0]);
  printf("== SIGTERM: daemon drained and exited 0\n");

  fleet.pids[0] = SpawnOne(tardisd, fleet, 0);
  fleet.conns[0] = ConnectTo(fleet.client_ports[0], 10'000);
  if (fleet.conns[0] < 0) Die("site 0 did not restart after drain");
  const std::string value = CmdRetry(fleet.client_ports[0], "get durable");
  if (value != "VALUE 42") {
    Die("committed key lost across SIGTERM drain: " + value);
  }
  printf("== restart from --dir: committed key survived the drain\n");

  Cmd(fleet.conns[0], "shutdown");
  Cmd(fleet.conns[1], "shutdown");
  g_fleet_pids = nullptr;
  return 0;
}

/// Drops a leading `*F` floor token so sessioned replies can be compared
/// across requests (the floors advance, the verdict must not).
std::string StripFloor(std::string reply) {
  if (reply.rfind("*F", 0) == 0) {
    const size_t sp = reply.find(' ');
    reply.erase(0, sp == std::string::npos ? reply.size() : sp + 1);
  }
  return reply;
}

long long StatesCount(int fd) {
  const std::string reply = Cmd(fd, "states");
  if (reply.rfind("STATES ", 0) != 0) Die("states reply: " + reply);
  return atoll(reply.c_str() + 7);
}

/// 10. Exactly-once client sessions (DESIGN.md §13): SIGKILL-driven
/// failover and crash-restart dedup, with the real client library.
///
///   a. a 3-site fleet with per-site --dir comes up; a TardisClient that
///      knows all three endpoints writes through site 0;
///   b. a hand-built sessioned put is replayed verbatim on the same
///      daemon: the duplicate is answered from the dedup table with the
///      IDENTICAL state id, no second commit (states count unchanged,
///      dedup-hit metric increments). A corrupt `*S` token is rejected
///      with a retryable ERR HEADER — never silently stripped;
///   c. site 0 is SIGKILLed mid-session; the client's next write fails
///      over — its session floors make a lagging target answer ERR
///      BEHIND, which the client retries internally — and a
///      read-your-writes get returns the pre-crash value;
///   d. a deliberately uncoverable floor returns ERR BEHIND, and the
///      same read with the stale-ok flag is served anyway: the bounded-
///      staleness degraded-read mode;
///   e. site 0 restarts from its --dir and the ORIGINAL sessioned line
///      still answers from dedup with the original state id — the table
///      was rebuilt from the commit log;
///   f. the fleet converges to one leaf, the session keys hold exactly
///      the acknowledged values, and no site counted a dedup duplicate.
int RunSessionRetry(const std::string& tardisd, const std::string& dir) {
  // The store only creates the last path component, so make the phase's
  // own base directory (it must not share site dirs with earlier phases).
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    Die("mkdir " + dir + ": " + strerror(errno));
  }
  Fleet fleet;
  SpawnFleet(tardisd, 3, {"--dir=" + dir}, &fleet);
  g_fleet_pids = &fleet.pids;

  // a. Session writes through the library.
  tardis::client::TardisClientOptions opt;
  for (uint16_t p : fleet.client_ports) {
    opt.endpoints.push_back("127.0.0.1:" + std::to_string(p));
  }
  opt.request_deadline_ms = 20'000;
  opt.seed = 7;
  tardis::client::TardisClient cli(std::move(opt));
  std::string s1;
  if (!cli.Put("sess_a", "v1", &s1).ok() || s1.empty()) {
    Die("session put did not commit");
  }
  printf("== session: exactly-once put acknowledged at state %s\n",
         s1.c_str());

  // b. Duplicate replay and header rejection on a raw connection.
  tardis::SessionHeader h;
  h.session_id = 0xabcdef12;
  h.seq = 1;
  h.flags = tardis::kSessionFlagWrite;
  const std::string dup_line =
      tardis::FormatSessionHeader(h) + " put sess_dup A";
  const std::string r1 = StripFloor(Cmd(fleet.conns[0], dup_line));
  if (r1.rfind("OK STATE ", 0) != 0) Die("sessioned put reply: " + r1);
  const long long states_before = StatesCount(fleet.conns[0]);
  const std::string r2 = StripFloor(Cmd(fleet.conns[0], dup_line));
  if (r2 != r1) Die("duplicate not deduped: " + r2 + " vs " + r1);
  if (StatesCount(fleet.conns[0]) != states_before) {
    Die("duplicate sessioned put created a second commit");
  }
  const std::string m0 = CmdMulti(fleet.conns[0], "metrics");
  if (MetricValue(m0, "tardis_session_dedup_hits") < 1) {
    Die("dedup hit not counted:\n" + m0);
  }
  const std::string bad = Cmd(fleet.conns[0], "*Szzz put sess_bad B");
  if (bad.rfind("ERR HEADER", 0) != 0) {
    Die("corrupt session header not rejected: " + bad);
  }
  if (MetricValue(CmdMulti(fleet.conns[0], "metrics"),
                  "tardis_session_header_rejected") < 1) {
    Die("header rejection not counted");
  }
  printf("== session: duplicate answered from dedup, corrupt *S rejected\n");

  // c. SIGKILL the serving site mid-session; the client fails over.
  kill(fleet.pids[0], SIGKILL);
  waitpid(fleet.pids[0], nullptr, 0);
  fleet.pids[0] = -1;
  close(fleet.conns[0]);
  fleet.conns[0] = -1;
  std::string s2;
  if (!cli.Put("sess_b", "v2", &s2).ok()) Die("failover put failed");
  if (cli.failovers() == 0) Die("client reported no failover");
  std::string rv;
  if (!cli.Get("sess_a", &rv).ok() || rv != "v1") {
    Die("read-your-writes across failover broken: " + rv);
  }
  printf("== session: SIGKILL failover kept exactly-once + session reads\n");

  // d. Degraded reads: an uncoverable floor is refused, stale-ok serves.
  tardis::SessionHeader probe;
  probe.session_id = 0x51;
  probe.floors.emplace_back(0, 999'999);
  const std::string behind = StripFloor(
      Cmd(fleet.conns[1], tardis::FormatSessionHeader(probe) + " get sess_a"));
  if (behind.rfind("ERR BEHIND", 0) != 0) {
    Die("uncovered floor not refused: " + behind);
  }
  probe.flags = tardis::kSessionFlagStaleOk;
  const std::string stale = StripFloor(
      Cmd(fleet.conns[1], tardis::FormatSessionHeader(probe) + " get sess_a"));
  if (stale != "VALUE v1") Die("stale-ok read not served: " + stale);
  printf("== session: ERR BEHIND on floors, stale-ok degraded read ok\n");

  // e. Crash-restart: dedup must survive the crash. When the SIGKILL
  // outran the record-store flush, recovery discards the torn log suffix
  // and the site re-learns the commits from its peers — replicated
  // CommitRecords carry the session tags, so ApplyRemote refills the
  // dedup table either way. Wait for the restarted site to have
  // re-applied the session writes before replaying the duplicate.
  fleet.pids[0] = SpawnOne(tardisd, fleet, 0);
  fleet.conns[0] = ConnectTo(fleet.client_ports[0], 10'000);
  if (fleet.conns[0] < 0) Die("site 0 did not restart");
  const int fd0 = fleet.conns[0];
  if (!WaitFor([fd0] { return Cmd(fd0, "get sess_dup") == "VALUE A"; })) {
    Die("restarted site 0 did not recover the session commits");
  }
  const std::string r3 = StripFloor(Cmd(fleet.conns[0], dup_line));
  if (r3 != r1) {
    Die("dedup did not survive crash-restart: " + r3 + " vs " + r1);
  }
  printf("== session: dedup survived SIGKILL + restart\n");

  // f. Convergence, exactly-once values, no duplicate commits anywhere.
  for (size_t i = 0; i < fleet.conns.size(); i++) {
    const int fd = fleet.conns[i];
    if (!WaitFor([fd] {
          return Cmd(fd, "leaves") == "LEAVES 1" &&
                 Cmd(fd, "get sess_a") == "VALUE v1" &&
                 Cmd(fd, "get sess_b") == "VALUE v2" &&
                 Cmd(fd, "get sess_dup") == "VALUE A";
        })) {
      Die("site " + std::to_string(i) + " did not converge on session keys");
    }
    const std::string m = CmdMulti(fd, "metrics");
    if (MetricValue(m, "tardis_session_dedup_duplicates") > 0) {
      Die("site " + std::to_string(i) + " committed a session duplicate");
    }
  }
  printf("== session: fleet converged, one leaf, exactly-once values\n");

  for (int fd : fleet.conns) Cmd(fd, "shutdown");
  g_fleet_pids = nullptr;
  return 0;
}

pid_t SpawnRouter(const std::string& router_bin, uint16_t port,
                  uint16_t metrics_port, const std::string& partitions,
                  uint64_t txn_deadline_ms) {
  fflush(stdout);
  const pid_t pid = fork();
  if (pid < 0) Die("fork failed");
  if (pid == 0) {
    std::vector<std::string> args;
    args.push_back("tardis-router");
    args.push_back("--port=" + std::to_string(port));
    args.push_back("--metrics-port=" + std::to_string(metrics_port));
    args.push_back("--partitions=" + partitions);
    args.push_back("--txn-deadline-ms=" + std::to_string(txn_deadline_ms));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    if (!g_verbose) {
      freopen("/dev/null", "w", stdout);
    }
    execv(router_bin.c_str(), argv.data());
    fprintf(stderr, "exec %s failed: %s\n", router_bin.c_str(),
            strerror(errno));
    _exit(127);
  }
  return pid;
}

/// Send a command to the router without insisting on a reply: used to
/// launch the 2PC whose decision window the driver SIGKILLs the router
/// in — the reply may never come.
void FireAndForget(uint16_t port, const std::string& line) {
  const int fd = ConnectTo(port, 5'000);
  if (fd < 0) Die("fire-and-forget connect failed");
  const std::string out = line + "\n";
  if (write(fd, out.data(), out.size()) != static_cast<ssize_t>(out.size())) {
    Die("fire-and-forget write failed");
  }
  std::thread([fd] {
    char buf[4096];
    while (read(fd, buf, sizeof(buf)) > 0) {
    }
    close(fd);
  }).detach();
}

/// Grid phase (`--grid`): a 2-partition × 3-site cluster behind a
/// stateless tardis-router (src/cluster/, DESIGN.md §10).
///
///   1. two independent 3-site tardisd groups come up; site 0 of each
///      serves a coordination port; the router fronts both;
///   2. single-key and single-partition multi-key commands ride the fast
///      path — the router's own metrics prove no 2PC frame was sent;
///   3. a cross-partition mput commits via fork-on-conflict 2PC, the
///      writes gossip through both partition groups;
///   4. a conflicting local commit lands inside the held-open decision
///      window: the affected partition FORKS its DAG instead of
///      aborting, and a merge through the router converges it;
///   5. the router is SIGKILLed between prepare and decide: the
///      participants' cooperative termination presumes abort (nothing
///      was acknowledged), no previously acknowledged write is lost, and
///      a replacement router on the same flags commits the retry.
int RunGrid(const std::string& tardisd, const std::string& router_bin,
            const std::string& dir) {
  std::vector<pid_t> all_pids;
  g_fleet_pids = &all_pids;

  // 1. Each partition group is an independent 3-site replica set with
  // its own gossip mesh; site 0 of each additionally serves the
  // coordination port the router dials. --twopc-resolve-ms is the
  // cooperative-termination grace and must exceed the router's
  // --txn-deadline-ms (1500 below).
  Fleet groups[2];
  const uint16_t coord_ports[2] = {PickFreePort(), PickFreePort()};
  for (int p = 0; p < 2; p++) {
    const std::string group_dir = dir + "/p" + std::to_string(p);
    if (mkdir(group_dir.c_str(), 0755) != 0) {
      Die("mkdir " + group_dir + " failed");
    }
    groups[p].per_site_extra = {{
        "--partition=" + std::to_string(p),
        "--coord-port=" + std::to_string(coord_ports[p]),
        "--twopc-resolve-ms=3000",
    }};
    SpawnFleet(tardisd, 3, {"--dir=" + group_dir}, &groups[p]);
    for (pid_t pid : groups[p].pids) all_pids.push_back(pid);
    for (size_t i = 0; i < 3; i++) {
      if (Cmd(groups[p].conns[i], "ping") != "PONG") {
        Die("grid site did not answer ping");
      }
    }
    const int group = p;
    if (!WaitFor([&] {
          for (size_t i = 0; i < 3; i++) {
            if (Cmd(groups[group].conns[i], "peers") != "PEERS 2") return false;
          }
          return true;
        })) {
      Die("partition group mesh never connected");
    }
  }
  printf("== grid: 2 partition groups x 3 sites up, meshes connected\n");

  const uint16_t router_port = PickFreePort();
  const uint16_t router_metrics_port = PickFreePort();
  const std::string partitions_flag =
      "127.0.0.1:" + std::to_string(coord_ports[0]) + ",127.0.0.1:" +
      std::to_string(coord_ports[1]);
  pid_t router_pid = SpawnRouter(router_bin, router_port, router_metrics_port,
                                 partitions_flag, 1500);
  all_pids.push_back(router_pid);
  int router_fd = ConnectTo(router_port, 10'000);
  if (router_fd < 0) Die("router never came up");
  if (Cmd(router_fd, "ping") != "PONG") Die("router did not answer ping");
  printf("== grid: router up in front of both partitions\n");

  // Keys with a known owner, discovered through the router's own map so
  // the test cannot drift from the hash function.
  std::vector<std::string> keys[2];
  for (int i = 0; keys[0].size() < 6 || keys[1].size() < 6; i++) {
    if (i >= 512) Die("could not find keys for both partitions");
    const std::string k = "gk" + std::to_string(i);
    const std::string r = Cmd(router_fd, "partition " + k);
    if (r == "PARTITION 0") {
      keys[0].push_back(k);
    } else if (r == "PARTITION 1") {
      keys[1].push_back(k);
    } else {
      Die("unexpected partition reply: " + r);
    }
  }

  // 2. Fast path: single-key commands and a single-partition multi-key
  // write each reach exactly one partition as an ordinary local
  // transaction. The router's metrics must show zero 2PC traffic.
  if (Cmd(router_fd, "put " + keys[0][0] + " a0") != "OK" ||
      Cmd(router_fd, "put " + keys[1][0] + " b0") != "OK") {
    Die("fast-path put through the router failed");
  }
  if (Cmd(router_fd, "get " + keys[0][0]) != "VALUE a0" ||
      Cmd(router_fd, "get " + keys[1][0]) != "VALUE b0") {
    Die("fast-path get through the router failed");
  }
  const std::string sp =
      Cmd(router_fd, "mput " + keys[0][1] + " a1 " + keys[0][2] + " a2");
  if (sp != "OK") Die("single-partition mput not on the fast path: " + sp);
  if (!WaitFor([&] {
        return Cmd(groups[0].conns[1], "get " + keys[0][1]) == "VALUE a1";
      })) {
    Die("fast-path write did not gossip through partition group 0");
  }
  std::string rm = CmdMulti(router_fd, "metrics");
  if (MetricSeries(rm, "tardis_2pc_prepares{role=\"router\"}") > 0 ||
      MetricSeries(rm, "tardis_router_requests{path=\"2pc\"}") > 0) {
    Die("fast-path traffic produced 2PC frames:\n" + rm);
  }
  if (MetricSeries(rm, "tardis_router_requests{path=\"fast\"}") < 5) {
    Die("router did not count fast-path requests:\n" + rm);
  }
  const std::string rhttp = HttpGetMetrics(router_metrics_port);
  if (MetricSeries(rhttp, "tardis_router_requests{path=\"fast\"}") < 5) {
    Die("router HTTP metrics endpoint missing request counter:\n" + rhttp);
  }
  printf("== grid: fast path served with zero 2PC frames "
         "(router metrics, line protocol + HTTP)\n");

  // 3. Cross-partition 2PC commit; both fragments land and gossip
  // through their groups.
  const std::string xr = Cmd(
      router_fd, "mput " + keys[0][3] + " x0 " + keys[1][1] + " x1");
  if (xr.rfind("OK TXN ", 0) != 0) Die("cross-partition mput failed: " + xr);
  if (Cmd(router_fd, "get " + keys[0][3]) != "VALUE x0" ||
      Cmd(router_fd, "get " + keys[1][1]) != "VALUE x1") {
    Die("cross-partition writes not readable through the router");
  }
  if (!WaitFor([&] {
        return Cmd(groups[0].conns[2], "get " + keys[0][3]) == "VALUE x0" &&
               Cmd(groups[1].conns[2], "get " + keys[1][1]) == "VALUE x1";
      })) {
    Die("2PC writes did not gossip through the partition groups");
  }
  rm = CmdMulti(router_fd, "metrics");
  if (MetricSeries(rm, "tardis_2pc_prepares{role=\"router\"}") != 2 ||
      MetricSeries(rm, "tardis_router_requests{path=\"2pc\"}") != 1) {
    Die("router 2PC metrics wrong after cross-partition commit:\n" + rm);
  }
  const std::string gh = CmdMulti(router_fd, "health");
  if (gh.find("ROUTER partitions=2") == std::string::npos ||
      gh.find("P0 SITE 0") == std::string::npos ||
      gh.find("P1 SITE 0") == std::string::npos ||
      gh.find("metrics_port=") == std::string::npos ||
      gh.find("queue_bound=") == std::string::npos ||
      gh.find("coord_port=") == std::string::npos) {
    Die("aggregated health missing per-partition blocks or fields:\n" + gh);
  }
  printf("== grid: cross-partition transaction committed via 2PC\n");

  // 4. Conflict inside the decision window: hold the window open via the
  // router's 2pc_delay test hook, land a conflicting local commit at
  // partition 0's coordinating site. The staged 2PC transaction then
  // decide-commits against a moved branch head — TARDiS forks the DAG
  // instead of aborting, and the router reports FORKED.
  if (Cmd(router_fd, "2pc_delay 1200") != "OK") Die("2pc_delay failed");
  const std::string conflict_key = keys[0][0];
  std::string forked_reply;
  const int router_fd2 = ConnectTo(router_port, 5'000);
  if (router_fd2 < 0) Die("second router connection failed");
  std::thread forker([&] {
    forked_reply = Cmd(router_fd2, "mput " + conflict_key + " f0 " +
                                       keys[1][2] + " f1");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  if (Cmd(groups[0].conns[0], "put " + conflict_key + " rogue") != "OK") {
    Die("conflicting local put failed");
  }
  forker.join();
  close(router_fd2);
  if (forked_reply.rfind("OK TXN ", 0) != 0 ||
      forked_reply.find(" FORKED") == std::string::npos) {
    Die("conflicting 2PC did not fork: " + forked_reply);
  }
  if (Cmd(router_fd, "2pc_delay 0") != "OK") Die("2pc_delay reset failed");
  if (!WaitFor([&] {
        return Cmd(groups[0].conns[0], "leaves") == "LEAVES 2";
      })) {
    Die("conflict did not fork partition 0's DAG");
  }
  rm = CmdMulti(router_fd, "metrics");
  if (MetricSeries(rm, "tardis_2pc_forked_commits{role=\"router\"}") < 1) {
    Die("router did not count the forked 2PC commit:\n" + rm);
  }
  const std::string mm = CmdMulti(router_fd, "merge lww");
  if (mm.find("P0 MERGED") == std::string::npos) {
    Die("merge through the router did not merge partition 0:\n" + mm);
  }
  if (!WaitFor([&] {
        for (size_t i = 0; i < 3; i++) {
          if (Cmd(groups[0].conns[i], "leaves") != "LEAVES 1") return false;
        }
        return true;
      })) {
    Die("partition 0 did not converge to one leaf after merge");
  }
  const std::string cv = Cmd(router_fd, "get " + conflict_key);
  if (cv.rfind("VALUE ", 0) != 0) {
    Die("conflict key unreadable after merge: " + cv);
  }
  printf("== grid: conflicting 2PC forked partition 0's DAG, "
         "merge converged it\n");

  // 5. Kill the router between prepare and decide. Both participants
  // hold a prepared-but-undecided transaction; no decide was ever sent,
  // so cooperative termination (peer query after --twopc-resolve-ms)
  // must presume abort — the client never got an OK, so nothing is lost.
  if (Cmd(router_fd, "2pc_delay 30000") != "OK") Die("2pc_delay failed");
  const std::string doomed =
      "mput " + keys[0][4] + " lost0 " + keys[1][3] + " lost1";
  FireAndForget(router_port, doomed);
  auto in_doubt_at = [&](int p) {
    return HealthField(CmdMulti(groups[p].conns[0], "health"),
                       "twopc_in_doubt");
  };
  if (!WaitFor([&] { return in_doubt_at(0) >= 1 && in_doubt_at(1) >= 1; })) {
    Die("participants never reported the prepared transaction in doubt");
  }
  kill(router_pid, SIGKILL);
  waitpid(router_pid, nullptr, 0);
  close(router_fd);
  printf("== grid: router SIGKILLed between prepare and decide\n");

  if (!WaitFor([&] { return in_doubt_at(0) == 0 && in_doubt_at(1) == 0; },
               20'000)) {
    Die("in-doubt transactions did not resolve after the router died");
  }
  // Atomicity: the unacknowledged write set landed in NEITHER partition.
  if (Cmd(groups[0].conns[0], "get " + keys[0][4]) != "NOTFOUND" ||
      Cmd(groups[1].conns[0], "get " + keys[1][3]) != "NOTFOUND") {
    Die("aborted cross-partition transaction leaked a write");
  }
  // ...and every write the dead router DID acknowledge is still there.
  if (Cmd(groups[0].conns[0], "get " + keys[0][3]) != "VALUE x0" ||
      Cmd(groups[1].conns[0], "get " + keys[1][1]) != "VALUE x1") {
    Die("committed write lost across the router crash");
  }
  printf("== grid: cooperative termination aborted the in-doubt txn, "
         "no acknowledged write lost\n");

  // A replacement router on the same flags takes over immediately —
  // there is no durable router state to recover.
  router_pid = SpawnRouter(router_bin, router_port, router_metrics_port,
                           partitions_flag, 1500);
  all_pids.push_back(router_pid);
  router_fd = ConnectTo(router_port, 10'000);
  if (router_fd < 0) Die("replacement router never came up");
  const std::string retry = Cmd(router_fd, doomed);
  if (retry.rfind("OK TXN ", 0) != 0) {
    Die("retried mput after router restart failed: " + retry);
  }
  if (Cmd(router_fd, "get " + keys[0][4]) != "VALUE lost0" ||
      Cmd(router_fd, "get " + keys[1][3]) != "VALUE lost1") {
    Die("retried transaction not readable after router restart");
  }
  printf("== grid: replacement router committed the retried transaction\n");

  kill(router_pid, SIGKILL);
  waitpid(router_pid, nullptr, 0);
  close(router_fd);
  for (int p = 0; p < 2; p++) {
    for (size_t i = 0; i < 3; i++) Cmd(groups[p].conns[i], "shutdown");
  }
  g_fleet_pids = nullptr;
  return 0;
}

/// Trace phase (`--trace`): distributed tracing across the grid
/// (DESIGN.md §7). A 2-partition × 2-site cluster behind the router:
///
///   1. `trace start` through the router enables the tracer on every
///      process; `trace sample 1` turns on head sampling for requests
///      without their own header;
///   2. a cross-partition mput carries a driver-chosen trace header; the
///      router and both participants log their spans under that id;
///   3. `trace collect` (router-side stitch) and tardis-tracectl
///      (client-side collect + validate) both produce one well-formed
///      Chrome trace in which the chosen trace id spans >= 3 processes;
///   4. `metrics cluster` returns the merged exposition: summed
///      counters and the tardis_stage_micros bucket series from every
///      partition plus the router's own prepare_rtt stage.
int RunTraceGrid(const std::string& tardisd, const std::string& router_bin,
                 const std::string& tracectl, const std::string& dir) {
  std::vector<pid_t> all_pids;
  g_fleet_pids = &all_pids;

  Fleet groups[2];
  const uint16_t coord_ports[2] = {PickFreePort(), PickFreePort()};
  for (int p = 0; p < 2; p++) {
    const std::string group_dir = dir + "/tp" + std::to_string(p);
    if (mkdir(group_dir.c_str(), 0755) != 0) {
      Die("mkdir " + group_dir + " failed");
    }
    groups[p].per_site_extra = {{
        "--partition=" + std::to_string(p),
        "--coord-port=" + std::to_string(coord_ports[p]),
        "--twopc-resolve-ms=3000",
        "--slow-ms=1",  // every traced request also exercises the slow log
    }};
    SpawnFleet(tardisd, 2, {"--dir=" + group_dir}, &groups[p]);
    for (pid_t pid : groups[p].pids) all_pids.push_back(pid);
  }
  const uint16_t router_port = PickFreePort();
  const uint16_t router_metrics_port = PickFreePort();
  const std::string partitions_flag =
      "127.0.0.1:" + std::to_string(coord_ports[0]) + ",127.0.0.1:" +
      std::to_string(coord_ports[1]);
  pid_t router_pid = SpawnRouter(router_bin, router_port, router_metrics_port,
                                 partitions_flag, 1500);
  all_pids.push_back(router_pid);
  int router_fd = ConnectTo(router_port, 10'000);
  if (router_fd < 0) Die("router never came up");
  if (Cmd(router_fd, "ping") != "PONG") Die("router did not answer ping");
  printf("== trace: 2 partitions x 2 sites + router up\n");

  // 1. One command arms the tracer cluster-wide.
  const std::string ts = CmdMulti(router_fd, "trace start");
  if (ts.find("ROUTER OK") == std::string::npos ||
      ts.find("P0 OK") == std::string::npos ||
      ts.find("P1 OK") == std::string::npos) {
    Die("trace start did not reach every process:\n" + ts);
  }
  if (Cmd(router_fd, "trace sample 1") != "OK") Die("trace sample failed");

  std::string key0, key1;
  for (int i = 0; key0.empty() || key1.empty(); i++) {
    if (i >= 512) Die("could not find keys for both partitions");
    const std::string k = "tk" + std::to_string(i);
    const std::string r = Cmd(router_fd, "partition " + k);
    if (r == "PARTITION 0" && key0.empty()) key0 = k;
    if (r == "PARTITION 1" && key1.empty()) key1 = k;
  }

  // 2. The traced request: a cross-partition 2PC mput under a trace id
  // the driver chose, plus a self-sampled fast-path pair.
  const uint64_t trace_id = 0x7a9d15000000c0deULL;  // "tardis...code"
  char hdr[40];
  snprintf(hdr, sizeof(hdr), "*T%016llx/0/1",
           static_cast<unsigned long long>(trace_id));
  const std::string xr = Cmd(
      router_fd, std::string(hdr) + " mput " + key0 + " t0 " + key1 + " t1");
  if (xr.rfind("OK TXN ", 0) != 0) {
    Die("traced cross-partition mput failed: " + xr);
  }
  if (Cmd(router_fd, "put " + key0 + " t2") != "OK" ||
      Cmd(router_fd, "get " + key1) != "VALUE t1") {
    Die("fast-path requests through the router failed");
  }

  char expect[24];
  snprintf(expect, sizeof(expect), "%016llx",
           static_cast<unsigned long long>(trace_id));

  // 3a. Router-side stitch: `trace collect` fans out `trace json` to
  // every partition and merges the rings with its own.
  const std::string collected = CmdMulti(router_fd, "trace collect");
  if (collected.find("traceEvents") == std::string::npos ||
      collected.find(expect) == std::string::npos) {
    Die("trace collect did not return a stitched trace containing " +
        std::string(expect));
  }
  printf("== trace: router-side `trace collect` stitched the rings\n");

  // 3b. Client-side: tardis-tracectl collects from the router and both
  // coordinating sites, then validates the merged document.
  auto run_tracectl = [&](std::vector<std::string> args) {
    fflush(stdout);
    const pid_t pid = fork();
    if (pid < 0) Die("fork failed");
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(tracectl.c_str(), argv.data());
      fprintf(stderr, "exec %s failed: %s\n", tracectl.c_str(),
              strerror(errno));
      _exit(127);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  };
  const std::string trace_path = dir + "/cluster_trace.json";
  const std::string sites_flag =
      "127.0.0.1:" + std::to_string(router_port) + ",127.0.0.1:" +
      std::to_string(groups[0].client_ports[0]) + ",127.0.0.1:" +
      std::to_string(groups[1].client_ports[0]);
  if (run_tracectl({"tardis-tracectl", "collect", "--sites=" + sites_flag,
                    "--out=" + trace_path}) != 0) {
    Die("tardis-tracectl collect failed");
  }
  if (run_tracectl({"tardis-tracectl", "validate", "--in=" + trace_path,
                    "--expect-trace=" + std::string(expect),
                    "--min-processes=3"}) != 0) {
    Die("tardis-tracectl validate failed: trace " + std::string(expect) +
        " should span router + both participants");
  }
  printf("== trace: one trace id spans >= 3 processes in the stitched "
         "Chrome trace\n");

  // 4. Cluster-wide telemetry: the merged exposition carries both the
  // participants' stage histograms (wal_fsync, decide_apply, ...) and
  // the router's own (prepare_rtt), as native _bucket series.
  const std::string cm = CmdMulti(router_fd, "metrics cluster");
  if (cm.find("tardis_stage_micros_bucket") == std::string::npos) {
    Die("metrics cluster missing stage histogram buckets:\n" + cm);
  }
  if (cm.find("stage=\"prepare_rtt\"") == std::string::npos ||
      cm.find("stage=\"wal_fsync\"") == std::string::npos) {
    Die("metrics cluster missing router/participant stages:\n" + cm);
  }
  if (MetricValue(cm, "tardis_txn_commits_total") < 1) {
    Die("metrics cluster lost the partitions' commit counters:\n" + cm);
  }
  if (MetricSeries(cm, "tardis_router_requests{path=\"2pc\"}") < 1) {
    Die("metrics cluster lost the router's own series:\n" + cm);
  }
  printf("== trace: metrics cluster merged router + partition "
         "expositions\n");

  kill(router_pid, SIGKILL);
  waitpid(router_pid, nullptr, 0);
  close(router_fd);
  for (int p = 0; p < 2; p++) {
    for (size_t i = 0; i < 2; i++) Cmd(groups[p].conns[i], "shutdown");
  }
  g_fleet_pids = nullptr;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tardisd;
  std::string router;
  std::string tracectl;
  bool grid = false;
  bool trace = false;
  const char usage[] =
      "usage: tardisd_driver --tardisd=PATH [--router=PATH --grid] "
      "[--router=PATH --tracectl=PATH --trace] [--verbose]\n";
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--tardisd=", 0) == 0) {
      tardisd = arg.substr(strlen("--tardisd="));
    } else if (arg.rfind("--router=", 0) == 0) {
      router = arg.substr(strlen("--router="));
    } else if (arg.rfind("--tracectl=", 0) == 0) {
      tracectl = arg.substr(strlen("--tracectl="));
    } else if (arg == "--grid") {
      grid = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--verbose") {
      g_verbose = true;
    } else {
      fprintf(stderr, usage);
      return 2;
    }
  }
  if (tardisd.empty() || (grid && router.empty()) ||
      (trace && (router.empty() || tracectl.empty()))) {
    fprintf(stderr, usage);
    return 2;
  }
  signal(SIGPIPE, SIG_IGN);
  char dir_template[] = "/tmp/tardisd_driver_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    fprintf(stderr, "tardisd_driver: mkdtemp failed\n");
    return 1;
  }
  if (trace) {
    // Distributed-tracing acceptance: one trace id across the whole
    // grid, stitched and validated end to end.
    if (RunTraceGrid(tardisd, router, tracectl, dir) != 0) return 1;
    printf("PASS: distributed tracing — wire-propagated context, stitched "
           "cluster trace, merged cluster metrics\n");
    return 0;
  }
  if (grid) {
    // Partitioned-cluster acceptance: 2 partition groups x 3 sites
    // behind a stateless tardis-router.
    if (RunGrid(tardisd, router, dir) != 0) return 1;
    printf("PASS: partitioned cluster — fast path, cross-partition 2PC, "
           "fork-on-conflict, router crash recovery\n");
    return 0;
  }
  if (RunConvergence(tardisd) != 0) return 1;
  if (RunOverloadAndDrain(tardisd, dir) != 0) return 1;
  if (RunSessionRetry(tardisd, std::string(dir) + "/session") != 0) return 1;
  printf("PASS: cross-process branch-and-merge + resilience over TCP\n");
  return 0;
}
