// tardis-router: the stateless front-end of a partitioned TARDiS cluster
// (src/cluster/, DESIGN.md §10). Clients connect with the same line
// protocol tardisd speaks; the router hashes each key through the
// cluster's PartitionMap and forwards commands to the owning partition's
// coordination port — single-partition work on the fast path, multi-
// partition writes through fork-on-conflict 2PC.
//
// Usage:
//   tardis-router --port=P --partitions=host:port,host:port,...
//                 [--splits=S1,S2,...] [--metrics-port=P]
//                 [--call-timeout-ms=MS] [--txn-deadline-ms=MS]
//                 [--trace-sample=N] [--help]
//
// --partitions lists one coordination endpoint per partition, indexed by
// partition id (each endpoint is a tardisd started with --coord-port).
// Without --splits the hash ring is divided uniformly; with it, the
// N-1 comma-separated split points define the N ranges explicitly.
//
// The router keeps no durable state: kill it at any moment and restart
// it (or a replacement) on the same flags — in-flight 2PC transactions
// are finished by the participants' cooperative termination, and no
// acknowledged write is lost (asserted by the grid e2e).

#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tardis {
namespace {

struct RouterConfig {
  uint16_t port = 0;
  uint16_t metrics_port = 0;
  std::vector<std::string> partitions;  // coord endpoints by partition id
  std::vector<uint64_t> splits;
  uint64_t call_timeout_ms = 2000;
  uint64_t txn_deadline_ms = 4000;
  /// Head-based sampling: every Nth client request without its own trace
  /// header starts a new sampled trace (0 = off).
  uint64_t trace_sample = 0;
  bool help = false;
};

bool ParseFlags(int argc, char** argv, RouterConfig* config) {
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--port=")) {
      config->port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--metrics-port=")) {
      config->metrics_port = static_cast<uint16_t>(atoi(v));
    } else if (const char* v = value("--partitions=")) {
      std::stringstream ss(v);
      std::string entry;
      while (std::getline(ss, entry, ',')) config->partitions.push_back(entry);
    } else if (const char* v = value("--splits=")) {
      std::stringstream ss(v);
      std::string entry;
      while (std::getline(ss, entry, ',')) {
        config->splits.push_back(strtoull(entry.c_str(), nullptr, 10));
      }
    } else if (const char* v = value("--call-timeout-ms=")) {
      config->call_timeout_ms = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = value("--txn-deadline-ms=")) {
      config->txn_deadline_ms = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = value("--trace-sample=")) {
      config->trace_sample = static_cast<uint64_t>(atoll(v));
    } else if (arg == "--help" || arg == "-h") {
      config->help = true;
      return false;
    } else {
      fprintf(stderr, "tardis-router: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return config->port != 0 && !config->partitions.empty();
}

int RunRouter(const RouterConfig& config) {
  // Label this process's rows in a stitched cross-process Chrome trace.
  obs::Tracer::Get().SetProcessLabel("tardis-router");
  obs::MetricsRegistry registry;

  cluster::PartitionMap map = cluster::PartitionMap::Uniform(
      static_cast<uint32_t>(config.partitions.size()));
  if (!config.splits.empty()) {
    auto custom = cluster::PartitionMap::FromSplitPoints(config.splits);
    if (!custom.ok()) {
      fprintf(stderr, "tardis-router: --splits: %s\n",
              custom.status().ToString().c_str());
      return 1;
    }
    if (custom->partition_count() != config.partitions.size()) {
      fprintf(stderr,
              "tardis-router: %zu split points define %u partitions but "
              "--partitions names %zu endpoints\n",
              config.splits.size(), custom->partition_count(),
              config.partitions.size());
      return 1;
    }
    map = std::move(*custom);
  }

  cluster::RouterOptions router_options;
  router_options.coord_endpoints = config.partitions;
  router_options.call_timeout_ms = config.call_timeout_ms;
  router_options.txn_deadline_ms = config.txn_deadline_ms;
  router_options.trace_sample = config.trace_sample;
  cluster::Router router(std::move(map), std::move(router_options),
                         &registry);

  std::unique_ptr<obs::MetricsHttpExporter> metrics_http;
  if (config.metrics_port != 0) {
    metrics_http = std::make_unique<obs::MetricsHttpExporter>(
        config.metrics_port, &registry, "tardis-router");
    if (!metrics_http->serving()) return 1;
  }

  const int server_fd = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(server_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = INADDR_ANY;
  addr.sin_port = htons(config.port);
  if (bind(server_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(server_fd, 64) != 0) {
    fprintf(stderr, "tardis-router: port %u: %s\n", config.port,
            strerror(errno));
    return 1;
  }
  signal(SIGPIPE, SIG_IGN);

  printf("tardis-router: serving %zu partition(s) on port %u%s\n",
         config.partitions.size(), config.port,
         config.metrics_port != 0 ? ", metrics via http" : "");
  fflush(stdout);

  // One thread per client connection; Router::Handle is not thread-safe
  // (it owns the per-partition connections), so a mutex serializes the
  // command handling. Coordination traffic is control-plane volume — the
  // data path is the partitions' own gossip.
  std::mutex handle_mu;
  std::vector<std::thread> conns;
  while (true) {
    const int fd = accept(server_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    conns.emplace_back([fd, &router, &handle_mu] {
      std::string inbuf;
      char chunk[65536];
      while (true) {
        size_t nl;
        while ((nl = inbuf.find('\n')) == std::string::npos) {
          const ssize_t n = read(fd, chunk, sizeof(chunk));
          if (n <= 0) {
            close(fd);
            return;
          }
          inbuf.append(chunk, static_cast<size_t>(n));
        }
        std::string line = inbuf.substr(0, nl);
        inbuf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        bool close_conn = false;
        std::string reply;
        {
          std::lock_guard<std::mutex> lock(handle_mu);
          reply = router.Handle(line, &close_conn);
        }
        reply.push_back('\n');
        size_t off = 0;
        while (off < reply.size()) {
          const ssize_t n = write(fd, reply.data() + off, reply.size() - off);
          if (n <= 0) {
            close(fd);
            return;
          }
          off += static_cast<size_t>(n);
        }
        if (close_conn) {
          close(fd);
          return;
        }
      }
    });
    conns.back().detach();
  }
  close(server_fd);
  return 0;
}

}  // namespace
}  // namespace tardis

int main(int argc, char** argv) {
  tardis::RouterConfig config;
  if (!tardis::ParseFlags(argc, argv, &config)) {
    FILE* out = config.help ? stdout : stderr;
    fprintf(out,
            "usage: tardis-router --port=P --partitions=host:port,...\n"
            "                     [--splits=S1,S2,...] [--metrics-port=P]\n"
            "                     [--call-timeout-ms=MS]\n"
            "                     [--txn-deadline-ms=MS] [--trace-sample=N]\n"
            "                     [--help]\n"
            "--partitions names each partition's tardisd coordination\n"
            "endpoint (--coord-port), indexed by partition id; --splits\n"
            "optionally sets explicit hash-ring split points (N-1 values\n"
            "for N partitions; default uniform). --txn-deadline-ms must\n"
            "stay below every participant's --twopc-resolve-ms.\n"
            "--trace-sample samples every Nth request into the tracer once\n"
            "`trace start` has enabled it (0 = off).\n");
    return config.help ? 0 : 2;
  }
  return tardis::RunRouter(config);
}
