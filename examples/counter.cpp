// Figure 3, executable: the TARDiS counter. Single-mode increment and
// decrement look exactly like code against sequential storage; the merge
// computes fork + Σ per-branch deltas. Here two "users" race, fork the
// store, and a periodic merge reconciles them.
//
//   $ ./examples/counter

#include <cstdio>
#include <thread>
#include <vector>

#include "apps/crdt/tardis_crdts.h"
#include "core/tardis_store.h"

using namespace tardis;

int main() {
  auto store_or = TardisStore::Open(TardisOptions{});
  if (!store_or.ok()) return 1;
  TardisStore* store = store_or->get();
  crdt::TardisCounter counter(store, "page-views");

  // Two worker threads increment concurrently. Conflicting commits fork
  // instead of blocking — watch the branch count.
  constexpr int kThreads = 4;
  constexpr int kIncrementsEach = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([store, &counter] {
      auto session = store->CreateSession();
      for (int i = 0; i < kIncrementsEach; i++) {
        Status s = counter.Increment(session.get());
        if (!s.ok()) {
          fprintf(stderr, "increment failed: %s\n", s.ToString().c_str());
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  printf("after %d increments: %zu concurrent branches in the DAG\n",
         kThreads * kIncrementsEach, store->dag()->Leaves().size());

  // Merge until one branch remains (each merge folds all current tips).
  auto merger = store->CreateSession();
  int rounds = 0;
  while (store->dag()->Leaves().size() > 1) {
    Status s = counter.Merge(merger.get());
    if (!s.ok()) {
      fprintf(stderr, "merge failed: %s\n", s.ToString().c_str());
      return 1;
    }
    rounds++;
  }
  auto value = counter.Value(merger.get());
  if (!value.ok()) return 1;
  printf("merged in %d round(s); counter = %lld (expected %d)\n", rounds,
         static_cast<long long>(*value), kThreads * kIncrementsEach);
  return *value == kThreads * kIncrementsEach ? 0 : 1;
}
