#include "replication/network.h"

namespace tardis {

SimNetwork::SimNetwork(size_t num_sites, NetworkOptions options)
    : num_sites_(num_sites),
      options_(options),
      links_(num_sites * num_sites),
      partitioned_(num_sites * num_sites, false),
      rng_(options.seed) {}

void SimNetwork::Send(uint32_t from, uint32_t to, ReplMessage msg) {
  if (from == to || from >= num_sites_ || to >= num_sites_) return;
  std::lock_guard<std::mutex> guard(mu_);
  if (partitioned_[LinkIndex(from, to)]) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t delay = options_.latency_us;
  if (options_.jitter_us > 0) delay += rng_.Uniform(options_.jitter_us + 1);
  msg.from_site = from;
  links_[LinkIndex(from, to)].queue.push_back(
      {NowMicros() + delay, std::move(msg)});
  sent_.fetch_add(1, std::memory_order_relaxed);
}

void SimNetwork::Broadcast(uint32_t from, ReplMessage msg) {
  // Each link queue owns its message, so fan-out needs num_sites-2 copies;
  // the last link takes the caller's message by move.
  uint32_t last = UINT32_MAX;
  for (uint32_t to = 0; to < num_sites_; to++) {
    if (to != from) last = to;
  }
  for (uint32_t to = 0; to < num_sites_; to++) {
    if (to == from) continue;
    if (to == last) {
      Send(from, to, std::move(msg));
    } else {
      Send(from, to, msg);
    }
  }
}

bool SimNetwork::Receive(uint32_t site, ReplMessage* msg) {
  const uint64_t now = NowMicros();
  std::lock_guard<std::mutex> guard(mu_);
  // Scan inbound links round-robin-ish (lowest due timestamp wins so
  // cross-link ordering roughly follows wall clock).
  size_t best_link = SIZE_MAX;
  uint64_t best_ts = ~0ull;
  for (uint32_t from = 0; from < num_sites_; from++) {
    if (from == site) continue;
    const size_t idx = LinkIndex(from, site);
    const Link& link = links_[idx];
    if (link.queue.empty()) continue;
    const InFlight& head = link.queue.front();
    if (head.deliver_at_us <= now && head.deliver_at_us < best_ts) {
      best_ts = head.deliver_at_us;
      best_link = idx;
    }
  }
  if (best_link == SIZE_MAX) return false;
  *msg = std::move(links_[best_link].queue.front().msg);
  links_[best_link].queue.pop_front();
  delivered_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SimNetwork::HasInflight() const {
  std::lock_guard<std::mutex> guard(mu_);
  for (const Link& link : links_) {
    if (!link.queue.empty()) return true;
  }
  return false;
}

void SimNetwork::Partition(uint32_t a, uint32_t b) {
  std::lock_guard<std::mutex> guard(mu_);
  partitioned_[LinkIndex(a, b)] = true;
  partitioned_[LinkIndex(b, a)] = true;
}

void SimNetwork::Heal(uint32_t a, uint32_t b) {
  std::lock_guard<std::mutex> guard(mu_);
  partitioned_[LinkIndex(a, b)] = false;
  partitioned_[LinkIndex(b, a)] = false;
}

void SimNetwork::HealAll() {
  std::lock_guard<std::mutex> guard(mu_);
  std::fill(partitioned_.begin(), partitioned_.end(), false);
}

}  // namespace tardis
