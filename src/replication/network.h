// SimNetwork: the in-process Transport implementation — a message fabric
// between sites with per-link FIFO channels, configurable one-way
// latency/jitter, and fault injection (partitions, drops). Substitutes
// for the paper's WAN (Google Cloud, three zones) in tests and
// benchmarks: replication semantics — asynchronous, ordered per link —
// are preserved; latencies are injected rather than measured. The same
// Replicator runs unchanged over TcpTransport (net/tcp_transport.h) for
// real multi-process deployments.

#ifndef TARDIS_REPLICATION_NETWORK_H_
#define TARDIS_REPLICATION_NETWORK_H_

#include <deque>
#include <mutex>
#include <vector>

#include "net/transport.h"
#include "replication/message.h"
#include "util/clock.h"
#include "util/random.h"

namespace tardis {

struct NetworkOptions {
  uint64_t latency_us = 0;  ///< one-way link latency
  uint64_t jitter_us = 0;   ///< uniform extra delay in [0, jitter_us]
  uint64_t seed = 7;
};

class SimNetwork : public Transport {
 public:
  SimNetwork(size_t num_sites, NetworkOptions options = {});

  size_t num_sites() const override { return num_sites_; }

  /// Enqueues `msg` on the from->to link; delivery is delayed by the link
  /// latency. Messages to partitioned or identical sites are dropped.
  void Send(uint32_t from, uint32_t to, ReplMessage msg) override;

  /// Broadcast to every other site; the final link receives the message
  /// by move, the rest get copies (each link queue owns its message).
  void Broadcast(uint32_t from, ReplMessage msg) override;

  /// Pops the next due message addressed to `site` (FIFO per link).
  /// Returns false if nothing is due yet.
  bool Receive(uint32_t site, ReplMessage* msg) override;

  /// True if any message (due or in flight) is queued anywhere.
  bool HasInflight() const override;

  // ---- fault injection ----------------------------------------------------
  void Partition(uint32_t a, uint32_t b) override;
  void Heal(uint32_t a, uint32_t b) override;
  void HealAll() override;

 private:
  struct InFlight {
    uint64_t deliver_at_us;
    ReplMessage msg;
  };
  struct Link {
    std::deque<InFlight> queue;
  };

  size_t LinkIndex(uint32_t from, uint32_t to) const {
    return from * num_sites_ + to;
  }

  const size_t num_sites_;
  NetworkOptions options_;
  mutable std::mutex mu_;
  std::vector<Link> links_;
  std::vector<bool> partitioned_;  // per link
  Random rng_;
};

}  // namespace tardis

#endif  // TARDIS_REPLICATION_NETWORK_H_
