// SimNetwork: an in-process message fabric between sites with per-link
// FIFO channels, configurable one-way latency/jitter, and fault injection
// (partitions, drops). Substitutes for the paper's WAN (Google Cloud,
// three zones): replication semantics — asynchronous, ordered per link —
// are preserved; latencies are injected rather than measured.

#ifndef TARDIS_REPLICATION_NETWORK_H_
#define TARDIS_REPLICATION_NETWORK_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "replication/message.h"
#include "util/clock.h"
#include "util/random.h"

namespace tardis {

struct NetworkOptions {
  uint64_t latency_us = 0;  ///< one-way link latency
  uint64_t jitter_us = 0;   ///< uniform extra delay in [0, jitter_us]
  uint64_t seed = 7;
};

class SimNetwork {
 public:
  SimNetwork(size_t num_sites, NetworkOptions options = {});

  size_t num_sites() const { return num_sites_; }

  /// Enqueues `msg` on the from->to link; delivery is delayed by the link
  /// latency. Messages to partitioned or identical sites are dropped.
  void Send(uint32_t from, uint32_t to, ReplMessage msg);

  /// Broadcast to every other site.
  void Broadcast(uint32_t from, const ReplMessage& msg);

  /// Pops the next due message addressed to `site` (FIFO per link).
  /// Returns false if nothing is due yet.
  bool Receive(uint32_t site, ReplMessage* msg);

  /// True if any message (due or in flight) is queued anywhere.
  bool HasInflight() const;

  // ---- fault injection ----------------------------------------------------
  void Partition(uint32_t a, uint32_t b);
  void Heal(uint32_t a, uint32_t b);
  void HealAll();

  uint64_t messages_sent() const { return sent_.load(); }
  uint64_t messages_delivered() const { return delivered_.load(); }
  uint64_t messages_dropped() const { return dropped_.load(); }

 private:
  struct InFlight {
    uint64_t deliver_at_us;
    ReplMessage msg;
  };
  struct Link {
    std::deque<InFlight> queue;
  };

  size_t LinkIndex(uint32_t from, uint32_t to) const {
    return from * num_sites_ + to;
  }

  const size_t num_sites_;
  NetworkOptions options_;
  mutable std::mutex mu_;
  std::vector<Link> links_;
  std::vector<bool> partitioned_;  // per link
  Random rng_;
  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace tardis

#endif  // TARDIS_REPLICATION_NETWORK_H_
