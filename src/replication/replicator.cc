#include "replication/replicator.h"

#include <algorithm>
#include <chrono>

#include "core/record_codec.h"
#include "core/state.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tardis {

Replicator::Replicator(TardisStore* store, Transport* net, uint32_t site_id,
                       GcCoordination gc_mode)
    : store_(store), net_(net), site_id_(site_id), gc_mode_(gc_mode) {
  obs::MetricsRegistry* registry = store_->metrics();
  const obs::LabelSet site{{"site", std::to_string(site_id_)}};
  applied_total_ = registry->RegisterCounter(
      "tardis_repl_applied_total",
      "Remote commits applied into the local DAG", site);
  sent_total_ = registry->RegisterCounter(
      "tardis_repl_sent_total",
      "Commit records shipped to peers (broadcasts and sync replies)", site);
  deferred_total_ = registry->RegisterCounter(
      "tardis_repl_deferred_total",
      "Remote commits parked while a parent state was missing", site);
  registry->RegisterCallbackGauge(
      "tardis_repl_pending", "Commits currently waiting for a parent",
      [this] { return static_cast<int64_t>(pending_count()); }, site, this);
}

Replicator::~Replicator() {
  Stop();
  store_->metrics()->DropCallbacks(this);
}

void Replicator::Start() {
  if (!stop_.exchange(false)) return;  // already running
  store_->SetCommitCallback(
      [this](const CommitRecord& record) { OnLocalCommit(record); });
  pump_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      if (PumpOnce() == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });
}

void Replicator::StartManual() {
  if (!stop_.exchange(false)) return;  // already running
  store_->SetCommitCallback(
      [this](const CommitRecord& record) { OnLocalCommit(record); });
}

void Replicator::Stop() {
  if (stop_.exchange(true)) return;
  if (pump_.joinable()) pump_.join();
  store_->SetCommitCallback(nullptr);
}

void Replicator::NoteSeen(uint32_t origin, uint64_t seq) {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t& floor = seen_floor_[origin];
  if (seq <= floor) return;
  std::set<uint64_t>& ahead = seen_ahead_[origin];
  ahead.insert(seq);
  while (!ahead.empty() && *ahead.begin() == floor + 1) {
    ahead.erase(ahead.begin());
    floor++;
  }
}

void Replicator::OnLocalCommit(const CommitRecord& record) {
  TARDIS_TRACE_SCOPE("repl", "broadcast");
  Archive(record);
  NoteSeen(record.guid.site, record.guid.seq);
  ReplMessage msg;
  msg.type = ReplMessage::Type::kCommit;
  msg.commit = record;
  net_->Broadcast(site_id_, std::move(msg));
  sent_total_->Increment();
}

void Replicator::Archive(const CommitRecord& record) {
  std::lock_guard<std::mutex> guard(mu_);
  archive_[record.guid.site].try_emplace(record.guid.seq, record);
}

void Replicator::ReArchiveFromStore() {
  std::vector<StatePtr> states;
  {
    std::lock_guard<std::mutex> dag_guard(store_->dag()->Lock());
    states = store_->dag()->AllStatesLocked();
  }
  RecordStore* records = store_->record_store();
  for (const StatePtr& s : states) {
    if (s->parents().empty()) continue;  // the shared root has no commit
    CommitRecord r;
    r.guid = s->guid();
    r.is_merge = s->is_merge();
    for (const StatePtr& p : s->parents()) r.parent_guids.push_back(p->guid());
    bool complete = true;
    for (const std::string& key : s->write_set().keys()) {
      std::string value;
      Status st = records->Get(EncodeRecordKey(key, s->id()), &value);
      if (!st.ok()) {
        TARDIS_WARN("re-archive: state (%u,%llu) value for '%s' unreadable: %s",
                    r.guid.site, static_cast<unsigned long long>(r.guid.seq),
                    key.c_str(), st.ToString().c_str());
        complete = false;
        break;
      }
      r.writes.emplace_back(key,
                            std::make_shared<const std::string>(std::move(value)));
    }
    if (!complete) continue;
    Archive(r);
    NoteSeen(r.guid.site, r.guid.seq);
  }
}

size_t Replicator::PumpOnce() {
  size_t handled = 0;
  ReplMessage msg;
  while (net_->Receive(site_id_, &msg)) {
    HandleMessage(msg);
    handled++;
  }
  return handled;
}

void Replicator::HandleMessage(const ReplMessage& msg) {
  switch (msg.type) {
    case ReplMessage::Type::kCommit:
      TryApply(msg.commit);
      break;

    case ReplMessage::Type::kSyncRequest: {
      // Reply with every archived commit the requester has not seen.
      std::vector<CommitRecord> replay;
      {
        std::lock_guard<std::mutex> guard(mu_);
        for (const auto& [origin, log] : archive_) {
          const uint64_t their_seen =
              origin < msg.seen_seq.size() ? msg.seen_seq[origin] : 0;
          for (auto it = log.upper_bound(their_seen); it != log.end(); ++it) {
            replay.push_back(it->second);
          }
        }
      }
      for (CommitRecord& r : replay) {
        ReplMessage reply;
        reply.type = ReplMessage::Type::kCommit;
        reply.commit = std::move(r);
        net_->Send(site_id_, msg.from_site, std::move(reply));
        sent_total_->Increment();
      }
      break;
    }

    case ReplMessage::Type::kCeilingRequest: {
      // Consent iff we already hold the state the ceiling names.
      if (store_->dag()->ResolveGuid(msg.ceiling) != nullptr) {
        ReplMessage ack;
        ack.type = ReplMessage::Type::kCeilingAck;
        ack.ceiling = msg.ceiling;
        ack.ceiling_epoch = msg.ceiling_epoch;
        net_->Send(site_id_, msg.from_site, std::move(ack));
      }
      // Otherwise stay silent; the requester's ceiling never commits,
      // which is the conservative (pessimistic) outcome during partitions.
      break;
    }

    case ReplMessage::Type::kCeilingAck: {
      bool complete = false;
      GlobalStateId guid;
      {
        std::lock_guard<std::mutex> guard(mu_);
        auto it = ceilings_.find(msg.ceiling_epoch);
        if (it == ceilings_.end()) break;
        if (--it->second.acks_needed == 0) {
          complete = true;
          guid = it->second.guid;
          ceilings_.erase(it);
        }
      }
      if (complete) {
        StatePtr s = store_->dag()->ResolveGuid(guid);
        if (s != nullptr) store_->gc()->PlaceCeiling(s);
        ReplMessage commit;
        commit.type = ReplMessage::Type::kCeilingCommit;
        commit.ceiling = guid;
        net_->Broadcast(site_id_, std::move(commit));
      }
      break;
    }

    case ReplMessage::Type::kCeilingCommit: {
      StatePtr s = store_->dag()->ResolveGuid(msg.ceiling);
      if (s != nullptr) store_->gc()->PlaceCeiling(s);
      break;
    }
  }
}

void Replicator::TryApply(const CommitRecord& record) {
  Status s = store_->ApplyRemote(record);
  if (s.ok()) {
    Archive(record);
    NoteSeen(record.guid.site, record.guid.seq);
    applied_total_->Increment();
    RetryPending();
    return;
  }
  if (s.IsUnavailable()) {
    deferred_total_->Increment();
    std::lock_guard<std::mutex> guard(mu_);
    pending_.push_back(record);
    return;
  }
  TARDIS_WARN("remote apply failed: %s", s.ToString().c_str());
}

void Replicator::RetryPending() {
  // Every successful apply may unblock cached transactions; sweep until a
  // full pass makes no progress.
  while (true) {
    std::deque<CommitRecord> work;
    {
      std::lock_guard<std::mutex> guard(mu_);
      work.swap(pending_);
    }
    if (work.empty()) return;
    size_t applied_now = 0;
    std::deque<CommitRecord> still_pending;
    for (CommitRecord& record : work) {
      Status s = store_->ApplyRemote(record);
      if (s.ok()) {
        Archive(record);
        NoteSeen(record.guid.site, record.guid.seq);
        applied_total_->Increment();
        applied_now++;
      } else if (s.IsUnavailable()) {
        still_pending.push_back(std::move(record));
      } else {
        TARDIS_WARN("remote apply failed: %s", s.ToString().c_str());
      }
    }
    {
      std::lock_guard<std::mutex> guard(mu_);
      for (CommitRecord& r : still_pending) pending_.push_back(std::move(r));
    }
    if (applied_now == 0) return;
  }
}

void Replicator::PlaceCeiling(ClientSession* session) {
  if (session == nullptr || session->last_commit() == nullptr) return;
  if (gc_mode_ == GcCoordination::kOptimistic) {
    store_->gc()->PlaceCeiling(session->last_commit());
    return;
  }
  // Pessimistic: collect unanimous consent first.
  const GlobalStateId guid = session->last_commit()->guid();
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> guard(mu_);
    epoch = ++ceiling_epoch_;
    ceilings_[epoch] = {guid, net_->num_sites() - 1};
  }
  if (net_->num_sites() == 1) {
    std::lock_guard<std::mutex> guard(mu_);
    ceilings_.erase(epoch);
    store_->gc()->PlaceCeiling(session->last_commit());
    return;
  }
  ReplMessage req;
  req.type = ReplMessage::Type::kCeilingRequest;
  req.ceiling = guid;
  req.ceiling_epoch = epoch;
  net_->Broadcast(site_id_, std::move(req));
}

void Replicator::RequestSync() {
  ReplMessage req;
  req.type = ReplMessage::Type::kSyncRequest;
  {
    std::lock_guard<std::mutex> guard(mu_);
    uint32_t max_site = 0;
    for (const auto& [site, seq] : seen_floor_) {
      max_site = std::max(max_site, site);
    }
    req.seen_seq.assign(max_site + 1, 0);
    for (const auto& [site, seq] : seen_floor_) req.seen_seq[site] = seq;
  }
  net_->Broadcast(site_id_, std::move(req));
}

size_t Replicator::pending_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return pending_.size();
}

}  // namespace tardis
