#include "replication/replicator.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/record_codec.h"
#include "core/state.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tardis {

namespace {
/// Bound on stashed ceiling-commit guids (states not yet replicated) and
/// on the re-delivery list for ceilings committed around a dead peer.
constexpr size_t kMaxStashedCeilings = 256;
}  // namespace

Replicator::Replicator(TardisStore* store, Transport* net, uint32_t site_id,
                       ReplicatorOptions options)
    : store_(store), net_(net), site_id_(site_id), options_(options) {
  for (uint32_t s = 0; s < net_->num_sites(); s++) {
    if (s == site_id_) continue;
    PeerInfo info;
    info.site = s;
    info.dead_after_ticks = options_.dead_after_ticks;
    peers_.emplace(s, info);
  }

  obs::MetricsRegistry* registry = store_->metrics();
  const obs::LabelSet site{{"site", std::to_string(site_id_)}};
  applied_total_ = registry->RegisterCounter(
      "tardis_repl_applied_total",
      "Remote commits applied into the local DAG", site);
  sent_total_ = registry->RegisterCounter(
      "tardis_repl_sent_total",
      "Commit records shipped to peers (broadcasts and sync replies)", site);
  deferred_total_ = registry->RegisterCounter(
      "tardis_repl_deferred_total",
      "Remote commits parked while a parent state was missing", site);
  heartbeats_sent_total_ = registry->RegisterCounter(
      "tardis_repl_heartbeats_sent_total",
      "Liveness/anti-entropy heartbeats broadcast to peers", site);
  repairs_sent_total_ = registry->RegisterCounter(
      "tardis_repl_repairs_sent_total",
      "Archived commits replayed to peers by digest anti-entropy", site);
  snapshots_sent_total_ = registry->RegisterCounter(
      "tardis_repl_snapshots_sent_total",
      "Full-state snapshots shipped to peers behind the archive horizon",
      site);
  snapshots_applied_total_ = registry->RegisterCounter(
      "tardis_repl_snapshots_applied_total",
      "Bootstrap snapshots applied from peers", site);
  orphans_evicted_total_ = registry->RegisterCounter(
      "tardis_repl_orphans_evicted_total",
      "Pending-parent commits evicted when the orphan cache hit its cap",
      site);
  ceiling_timeouts_total_ = registry->RegisterCounter(
      "tardis_repl_ceiling_timeouts_total",
      "Pessimistic consent rounds that exhausted their retries", site);
  peer_deaths_total_ = registry->RegisterCounter(
      "tardis_repl_peer_deaths_total",
      "Peers declared dead by the failure detector", site);
  stage_repl_send_us_ = obs::RegisterStageHistogram(registry, "repl_send");
  registry->RegisterCallbackGauge(
      "tardis_repl_pending", "Commits currently waiting for a parent",
      [this] { return static_cast<int64_t>(pending_count()); }, site, this);
  for (const auto& [peer_site, unused] : peers_) {
    (void)unused;
    const obs::LabelSet labels{{"peer", std::to_string(peer_site)},
                               {"site", std::to_string(site_id_)}};
    registry->RegisterCallbackGauge(
        "tardis_repl_peer_state",
        "Failure-detector view of a peer (0=alive 1=suspect 2=dead)",
        [this, peer_site] {
          std::lock_guard<std::mutex> guard(mu_);
          auto it = peers_.find(peer_site);
          return it == peers_.end()
                     ? int64_t{0}
                     : static_cast<int64_t>(it->second.state);
        },
        labels, this);
  }
}

Replicator::~Replicator() {
  Stop();
  store_->metrics()->DropCallbacks(this);
}

void Replicator::Start() {
  if (!stop_.exchange(false)) return;  // already running
  store_->SetCommitCallback(
      [this](const CommitRecord& record) { OnLocalCommit(record); });
  pump_ = std::thread([this] {
    auto last_tick = std::chrono::steady_clock::now();
    const auto tick_every =
        std::chrono::milliseconds(std::max<uint64_t>(1, options_.tick_interval_ms));
    while (!stop_.load(std::memory_order_acquire)) {
      const size_t handled = PumpOnce();
      const auto now = std::chrono::steady_clock::now();
      if (now - last_tick >= tick_every) {
        Tick();
        last_tick = now;
      }
      if (handled == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });
}

void Replicator::StartManual() {
  if (!stop_.exchange(false)) return;  // already running
  store_->SetCommitCallback(
      [this](const CommitRecord& record) { OnLocalCommit(record); });
}

void Replicator::Stop() {
  if (stop_.exchange(true)) return;
  if (pump_.joinable()) pump_.join();
  store_->SetCommitCallback(nullptr);
}

void Replicator::NoteSeen(uint32_t origin, uint64_t seq) {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t& floor = seen_floor_[origin];
  if (seq <= floor) return;
  std::set<uint64_t>& ahead = seen_ahead_[origin];
  ahead.insert(seq);
  while (!ahead.empty() && *ahead.begin() == floor + 1) {
    ahead.erase(ahead.begin());
    floor++;
  }
}

void Replicator::NoteHeard(uint32_t site) {
  bool returned = false;
  std::vector<GlobalStateId> redeliver;
  std::vector<GlobalStateId> rerun;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = peers_.find(site);
    if (it == peers_.end()) return;
    PeerInfo& p = it->second;
    p.last_heard_tick = tick_;
    if (p.state == PeerLiveness::kDead) {
      returned = true;
      p.flaps++;
      // Exponential suspicion: a flapping peer must stay quiet longer
      // before it is declared dead again.
      p.dead_after_ticks = std::min(p.dead_after_ticks * 2,
                                    options_.dead_after_ticks_max);
      redeliver.assign(committed_with_exclusions_.begin(),
                       committed_with_exclusions_.end());
      while (!deferred_consent_.empty()) {
        rerun.push_back(deferred_consent_.front());
        deferred_consent_.pop_front();
      }
    }
    p.state = PeerLiveness::kAlive;
  }
  if (!returned) return;
  // The peer missed ceiling commits while dead; hand them over again (it
  // ignores ones it already has — PlaceCeiling is idempotent — and stashes
  // ones whose state has not replicated yet).
  for (const GlobalStateId& guid : redeliver) {
    ReplMessage commit;
    commit.type = ReplMessage::Type::kCeilingCommit;
    commit.ceiling = guid;
    net_->Send(site_id_, site, std::move(commit));
  }
  for (const GlobalStateId& guid : rerun) StartConsentRound(guid);
}

void Replicator::OnLocalCommit(const CommitRecord& record) {
  // repl_send covers archive + broadcast: the full cost a local commit
  // pays on the replication path before returning to the client.
  obs::StageTimer stage(stage_repl_send_us_, "repl_send");
  Archive(record);
  NoteSeen(record.guid.site, record.guid.seq);
  ReplMessage msg;
  msg.type = ReplMessage::Type::kCommit;
  msg.commit = record;
  net_->Broadcast(site_id_, std::move(msg));
  sent_total_->Increment();
}

void Replicator::Archive(const CommitRecord& record) {
  std::lock_guard<std::mutex> guard(mu_);
  auto& log = archive_[record.guid.site];
  log.try_emplace(record.guid.seq, record);
  // Bounded archive: trim the oldest entries past the horizon and
  // remember how far we trimmed — a peer below that floor cannot be
  // repaired by replay and gets a snapshot instead.
  if (options_.archive_horizon > 0) {
    uint64_t& floor = archive_floor_[record.guid.site];
    while (log.size() > options_.archive_horizon) {
      floor = std::max(floor, log.begin()->first);
      log.erase(log.begin());
    }
  }
}

std::vector<CommitRecord> Replicator::BuildRecordsFromStore() {
  std::vector<StatePtr> states;
  {
    std::lock_guard<std::mutex> dag_guard(store_->dag()->Lock());
    states = store_->dag()->AllStatesLocked();
  }
  RecordStore* records = store_->record_store();
  std::vector<CommitRecord> out;
  out.reserve(states.size());
  for (const StatePtr& s : states) {
    if (s->parents().empty()) continue;  // the shared root has no commit
    CommitRecord r;
    r.guid = s->guid();
    r.is_merge = s->is_merge();
    for (const StatePtr& p : s->parents()) r.parent_guids.push_back(p->guid());
    bool complete = true;
    for (const std::string& key : s->write_set().keys()) {
      std::string value;
      Status st = records->Get(EncodeRecordKey(key, s->id()), &value);
      if (!st.ok()) {
        TARDIS_WARN("record rebuild: state (%u,%llu) value for '%s' unreadable: %s",
                    r.guid.site, static_cast<unsigned long long>(r.guid.seq),
                    key.c_str(), st.ToString().c_str());
        complete = false;
        break;
      }
      r.writes.emplace_back(key,
                            std::make_shared<const std::string>(std::move(value)));
    }
    if (complete) out.push_back(std::move(r));
  }
  return out;
}

void Replicator::ReArchiveFromStore() {
  for (CommitRecord& r : BuildRecordsFromStore()) {
    NoteSeen(r.guid.site, r.guid.seq);
    Archive(r);
  }
}

size_t Replicator::PumpOnce() {
  size_t handled = 0;
  ReplMessage msg;
  while (net_->Receive(site_id_, &msg)) {
    HandleMessage(msg);
    handled++;
  }
  return handled;
}

std::vector<uint64_t> Replicator::FloorDigest() {
  // Caller holds mu_.
  uint32_t max_site = static_cast<uint32_t>(net_->num_sites());
  for (const auto& [site, seq] : seen_floor_) {
    (void)seq;
    max_site = std::max(max_site, site + 1);
  }
  std::vector<uint64_t> digest(max_site, 0);
  for (const auto& [site, seq] : seen_floor_) digest[site] = seq;
  return digest;
}

void Replicator::Tick() {
  bool send_hb = false;
  std::vector<uint64_t> hb_digest;
  std::vector<std::pair<GlobalStateId, bool>> completions;
  std::vector<std::pair<uint32_t, std::pair<GlobalStateId, uint64_t>>> resend;
  bool retry_deferred = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    const uint64_t now = ++tick_;
    if (options_.heartbeat_every_ticks > 0) {
      if (now % options_.heartbeat_every_ticks == 0) {
        send_hb = true;
        hb_digest = FloorDigest();
      }
      // Failure detector: silence thresholds.
      for (auto& [site, p] : peers_) {
        (void)site;
        if (p.state == PeerLiveness::kDead) continue;
        const uint64_t silent = now - p.last_heard_tick;
        if (silent >= p.dead_after_ticks) {
          p.state = PeerLiveness::kDead;
          peer_deaths_total_->Increment();
        } else if (silent >= options_.suspect_after_ticks) {
          p.state = PeerLiveness::kSuspect;
        }
      }
    }
    // Consent rounds: drop dead peers, enforce deadlines.
    for (auto it = ceilings_.begin(); it != ceilings_.end();) {
      PendingCeiling& c = it->second;
      for (auto a = c.awaiting.begin(); a != c.awaiting.end();) {
        auto p = peers_.find(*a);
        if (p != peers_.end() && p->second.state == PeerLiveness::kDead) {
          c.excluded_dead = true;
          a = c.awaiting.erase(a);
        } else {
          ++a;
        }
      }
      if (c.awaiting.empty()) {
        completions.emplace_back(c.guid, c.excluded_dead);
        it = ceilings_.erase(it);
        continue;
      }
      if (now >= c.deadline_tick) {
        if (c.retries_left == 0) {
          ceiling_timeouts_total_->Increment();
          deferred_consent_.push_back(c.guid);
          it = ceilings_.erase(it);
          continue;
        }
        c.retries_left--;
        c.deadline_tick = now + options_.ceiling_deadline_ticks;
        for (uint32_t peer : c.awaiting) {
          resend.emplace_back(peer, std::make_pair(c.guid, it->first));
        }
      }
      ++it;
    }
    if (!deferred_consent_.empty() &&
        options_.deferred_retry_every_ticks > 0 &&
        now % options_.deferred_retry_every_ticks == 0) {
      retry_deferred = true;
    }
  }

  if (send_hb) {
    ReplMessage hb;
    hb.type = ReplMessage::Type::kHeartbeat;
    hb.seen_seq = std::move(hb_digest);
    net_->Broadcast(site_id_, std::move(hb));
    heartbeats_sent_total_->Increment();
  }
  for (auto& [peer, round] : resend) {
    ReplMessage req;
    req.type = ReplMessage::Type::kCeilingRequest;
    req.ceiling = round.first;
    req.ceiling_epoch = round.second;
    net_->Send(site_id_, peer, std::move(req));
  }
  for (auto& [guid, excluded] : completions) CompleteCeiling(guid, excluded);
  if (retry_deferred) RetryDeferredConsent();
  RetryPending();  // also re-tries stashed ceiling commits
}

void Replicator::HandleMessage(const ReplMessage& msg) {
  NoteHeard(msg.from_site);
  switch (msg.type) {
    case ReplMessage::Type::kCommit:
      TryApply(msg.commit);
      break;

    case ReplMessage::Type::kSyncRequest:
      RepairPeer(msg.from_site, msg.seen_seq, /*explicit_sync=*/true);
      break;

    case ReplMessage::Type::kHeartbeat:
      RepairPeer(msg.from_site, msg.seen_seq, /*explicit_sync=*/false);
      break;

    case ReplMessage::Type::kSnapshot:
      ApplySnapshot(msg);
      break;

    case ReplMessage::Type::kCeilingRequest: {
      // Consent iff we already hold the state the ceiling names.
      if (store_->dag()->ResolveGuid(msg.ceiling) != nullptr) {
        ReplMessage ack;
        ack.type = ReplMessage::Type::kCeilingAck;
        ack.ceiling = msg.ceiling;
        ack.ceiling_epoch = msg.ceiling_epoch;
        net_->Send(site_id_, msg.from_site, std::move(ack));
      }
      // Otherwise stay silent; the requester retries until its deadline,
      // which is the conservative (pessimistic) outcome during partitions.
      break;
    }

    case ReplMessage::Type::kCeilingAck: {
      bool complete = false;
      bool excluded = false;
      GlobalStateId guid;
      {
        std::lock_guard<std::mutex> guard(mu_);
        auto it = ceilings_.find(msg.ceiling_epoch);
        if (it == ceilings_.end()) break;
        it->second.awaiting.erase(msg.from_site);
        if (it->second.awaiting.empty()) {
          complete = true;
          guid = it->second.guid;
          excluded = it->second.excluded_dead;
          ceilings_.erase(it);
        }
      }
      if (complete) CompleteCeiling(guid, excluded);
      break;
    }

    case ReplMessage::Type::kCeilingCommit: {
      StatePtr s = store_->dag()->ResolveGuid(msg.ceiling);
      if (s != nullptr) {
        store_->gc()->PlaceCeiling(s);
      } else {
        // The named state has not replicated here yet (e.g. we are a
        // freshly rejoined site mid-bootstrap). Stash and retry as the
        // DAG catches up.
        std::lock_guard<std::mutex> guard(mu_);
        if (pending_ceiling_commits_.size() >= kMaxStashedCeilings) {
          pending_ceiling_commits_.pop_front();
        }
        pending_ceiling_commits_.push_back(msg.ceiling);
      }
      break;
    }

    case ReplMessage::Type::kHello:
    case ReplMessage::Type::kHelloAck:
      break;  // transport-level; consumed by TcpTransport, ignored here
  }
}

void Replicator::RepairPeer(uint32_t peer,
                            const std::vector<uint64_t>& their_floors,
                            bool explicit_sync) {
  std::vector<CommitRecord> replay;
  bool want_snapshot = false;
  {
    std::lock_guard<std::mutex> guard(mu_);
    const size_t batch = explicit_sync ? std::numeric_limits<size_t>::max()
                                       : options_.repair_batch;
    for (const auto& [origin, log] : archive_) {
      const uint64_t their_floor =
          origin < their_floors.size() ? their_floors[origin] : 0;
      auto af = archive_floor_.find(origin);
      const uint64_t trimmed = af == archive_floor_.end() ? 0 : af->second;
      if (their_floor < trimmed) {
        // The replay the peer needs was trimmed from the archive; only a
        // snapshot can catch it up.
        want_snapshot = true;
        continue;
      }
      for (auto it = log.upper_bound(their_floor);
           it != log.end() && replay.size() < batch; ++it) {
        replay.push_back(it->second);
      }
    }
    if (want_snapshot) {
      auto it = peers_.find(peer);
      if (it != peers_.end() && !explicit_sync && it->second.snapshot_ever_sent &&
          tick_ - it->second.last_snapshot_tick <
              options_.snapshot_min_interval_ticks) {
        want_snapshot = false;  // rate-limited; next heartbeat retries
        replay.clear();
      } else if (it != peers_.end()) {
        it->second.last_snapshot_tick = tick_;
        it->second.snapshot_ever_sent = true;
      }
    }
  }
  if (want_snapshot) {
    // The snapshot carries everything the archive could have replayed.
    SendSnapshot(peer);
    return;
  }
  for (CommitRecord& r : replay) {
    ReplMessage reply;
    reply.type = ReplMessage::Type::kCommit;
    reply.commit = std::move(r);
    net_->Send(site_id_, peer, std::move(reply));
    sent_total_->Increment();
    repairs_sent_total_->Increment();
  }
}

void Replicator::SendSnapshot(uint32_t peer) {
  ReplMessage snap;
  snap.type = ReplMessage::Type::kSnapshot;
  snap.snapshot = BuildRecordsFromStore();
  {
    std::lock_guard<std::mutex> guard(mu_);
    snap.seen_seq = FloorDigest();
  }
  TARDIS_INFO("site %u: shipping snapshot (%zu commits) to site %u", site_id_,
             snap.snapshot.size(), peer);
  net_->Send(site_id_, peer, std::move(snap));
  snapshots_sent_total_->Increment();
}

void Replicator::ApplySnapshot(const ReplMessage& msg) {
  TARDIS_INFO("site %u: applying snapshot (%zu commits) from site %u", site_id_,
             msg.snapshot.size(), msg.from_site);
  for (const CommitRecord& r : msg.snapshot) TryApply(r);
  // Adopt the sender's floors. Anything at or below a floor that the
  // snapshot did not carry was GC-promoted into a surviving state the
  // snapshot does carry, so the floor jump cannot mask a real hole.
  uint64_t own_floor = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (uint32_t origin = 0; origin < msg.seen_seq.size(); origin++) {
      uint64_t& floor = seen_floor_[origin];
      floor = std::max(floor, msg.seen_seq[origin]);
      std::set<uint64_t>& ahead = seen_ahead_[origin];
      while (!ahead.empty() && *ahead.begin() <= floor) {
        ahead.erase(ahead.begin());
      }
    }
    auto it = seen_floor_.find(site_id_);
    if (it != seen_floor_.end()) own_floor = it->second;
  }
  // The snapshot may contain this site's own pre-crash commits; move the
  // local sequence allocator past them so new commits cannot reuse a guid.
  if (own_floor > 0) store_->dag()->AdvanceSeqFloor(own_floor);
  snapshots_applied_total_->Increment();
  RetryPending();
}

void Replicator::TryApply(const CommitRecord& record) {
  Status s = store_->ApplyRemote(record);
  if (s.ok()) {
    Archive(record);
    NoteSeen(record.guid.site, record.guid.seq);
    applied_total_->Increment();
    RetryPending();
    return;
  }
  if (s.IsUnavailable()) {
    deferred_total_->Increment();
    std::lock_guard<std::mutex> guard(mu_);
    if (options_.max_pending > 0 && pending_.size() >= options_.max_pending) {
      // Cap the orphan cache: evict the oldest entry. Anti-entropy will
      // re-fetch it once its parent finally lands.
      pending_.pop_front();
      orphans_evicted_total_->Increment();
    }
    pending_.push_back(record);
    return;
  }
  TARDIS_WARN("remote apply failed: %s", s.ToString().c_str());
}

void Replicator::RetryPending() {
  // Every successful apply may unblock cached transactions; sweep until a
  // full pass makes no progress.
  while (true) {
    std::deque<CommitRecord> work;
    {
      std::lock_guard<std::mutex> guard(mu_);
      work.swap(pending_);
    }
    if (work.empty()) break;
    size_t applied_now = 0;
    std::deque<CommitRecord> still_pending;
    for (CommitRecord& record : work) {
      Status s = store_->ApplyRemote(record);
      if (s.ok()) {
        Archive(record);
        NoteSeen(record.guid.site, record.guid.seq);
        applied_total_->Increment();
        applied_now++;
      } else if (s.IsUnavailable()) {
        still_pending.push_back(std::move(record));
      } else {
        TARDIS_WARN("remote apply failed: %s", s.ToString().c_str());
      }
    }
    {
      std::lock_guard<std::mutex> guard(mu_);
      for (CommitRecord& r : still_pending) pending_.push_back(std::move(r));
    }
    if (applied_now == 0) break;
  }
  // Ceiling commits stashed while their state was missing may now apply.
  std::deque<GlobalStateId> stashed;
  {
    std::lock_guard<std::mutex> guard(mu_);
    stashed.swap(pending_ceiling_commits_);
  }
  if (stashed.empty()) return;
  std::deque<GlobalStateId> still_unresolved;
  for (const GlobalStateId& guid : stashed) {
    StatePtr s = store_->dag()->ResolveGuid(guid);
    if (s != nullptr) {
      store_->gc()->PlaceCeiling(s);
    } else {
      still_unresolved.push_back(guid);
    }
  }
  if (!still_unresolved.empty()) {
    std::lock_guard<std::mutex> guard(mu_);
    for (const GlobalStateId& guid : still_unresolved) {
      if (pending_ceiling_commits_.size() >= kMaxStashedCeilings) break;
      pending_ceiling_commits_.push_back(guid);
    }
  }
}

void Replicator::StartConsentRound(const GlobalStateId& guid) {
  bool complete_now = false;
  bool excluded = false;
  uint64_t epoch = 0;
  std::vector<uint32_t> targets;
  {
    std::lock_guard<std::mutex> guard(mu_);
    epoch = ++ceiling_epoch_;
    PendingCeiling round;
    round.guid = guid;
    round.deadline_tick = tick_ + options_.ceiling_deadline_ticks;
    round.retries_left = options_.ceiling_max_retries;
    for (const auto& [site, p] : peers_) {
      if (p.state == PeerLiveness::kDead) {
        round.excluded_dead = true;
      } else {
        round.awaiting.insert(site);
      }
    }
    excluded = round.excluded_dead;
    if (round.awaiting.empty()) {
      complete_now = true;
    } else {
      targets.assign(round.awaiting.begin(), round.awaiting.end());
      ceilings_[epoch] = std::move(round);
    }
  }
  if (complete_now) {
    CompleteCeiling(guid, excluded);
    return;
  }
  for (uint32_t peer : targets) {
    ReplMessage req;
    req.type = ReplMessage::Type::kCeilingRequest;
    req.ceiling = guid;
    req.ceiling_epoch = epoch;
    net_->Send(site_id_, peer, std::move(req));
  }
}

void Replicator::CompleteCeiling(const GlobalStateId& guid,
                                 bool excluded_dead) {
  StatePtr s = store_->dag()->ResolveGuid(guid);
  if (s != nullptr) store_->gc()->PlaceCeiling(s);
  ReplMessage commit;
  commit.type = ReplMessage::Type::kCeilingCommit;
  commit.ceiling = guid;
  net_->Broadcast(site_id_, std::move(commit));
  if (excluded_dead) {
    // A dead peer never consented; re-deliver the commit when it returns.
    std::lock_guard<std::mutex> guard(mu_);
    if (committed_with_exclusions_.size() >= kMaxStashedCeilings) {
      committed_with_exclusions_.pop_front();
    }
    committed_with_exclusions_.push_back(guid);
  }
}

void Replicator::RetryDeferredConsent() {
  std::vector<GlobalStateId> rerun;
  {
    std::lock_guard<std::mutex> guard(mu_);
    while (!deferred_consent_.empty()) {
      rerun.push_back(deferred_consent_.front());
      deferred_consent_.pop_front();
    }
  }
  for (const GlobalStateId& guid : rerun) StartConsentRound(guid);
}

void Replicator::PlaceCeiling(ClientSession* session) {
  if (session == nullptr || session->last_commit() == nullptr) return;
  if (options_.gc_mode == GcCoordination::kOptimistic) {
    store_->gc()->PlaceCeiling(session->last_commit());
    return;
  }
  StartConsentRound(session->last_commit()->guid());
}

void Replicator::RequestSync() {
  ReplMessage req;
  req.type = ReplMessage::Type::kSyncRequest;
  {
    std::lock_guard<std::mutex> guard(mu_);
    req.seen_seq = FloorDigest();
  }
  net_->Broadcast(site_id_, std::move(req));
}

std::vector<Replicator::PeerHealth> Replicator::PeerStates() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<PeerHealth> out;
  out.reserve(peers_.size());
  for (const auto& [site, p] : peers_) {
    PeerHealth h;
    h.site = site;
    h.state = p.state;
    h.last_heard_tick = p.last_heard_tick;
    h.dead_after_ticks = p.dead_after_ticks;
    h.flaps = p.flaps;
    out.push_back(h);
  }
  return out;
}

std::map<uint32_t, uint64_t> Replicator::AppliedFloors() const {
  std::lock_guard<std::mutex> guard(mu_);
  return seen_floor_;
}

uint64_t Replicator::tick_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return tick_;
}

size_t Replicator::deferred_consent_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return deferred_consent_.size();
}

size_t Replicator::pending_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return pending_.size();
}

}  // namespace tardis
