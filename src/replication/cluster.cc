#include "replication/cluster.h"

#include <chrono>
#include <thread>

namespace tardis {

StatusOr<std::unique_ptr<Cluster>> Cluster::Open(
    const ClusterOptions& options) {
  std::unique_ptr<Cluster> cluster(new Cluster());
  cluster->net_ =
      std::make_unique<SimNetwork>(options.num_sites, options.network);
  for (size_t i = 0; i < options.num_sites; i++) {
    TardisOptions site_options = options.store;
    site_options.site_id = static_cast<uint32_t>(i);
    if (!site_options.dir.empty()) {
      site_options.dir += "/site" + std::to_string(i);
    }
    auto store = TardisStore::Open(site_options);
    if (!store.ok()) return store.status();
    cluster->sites_.push_back(std::move(*store));
  }
  ReplicatorOptions repl = options.repl;
  repl.gc_mode = options.gc_mode;
  for (size_t i = 0; i < options.num_sites; i++) {
    cluster->replicators_.push_back(std::make_unique<Replicator>(
        cluster->sites_[i].get(), cluster->net_.get(),
        static_cast<uint32_t>(i), repl));
  }
  return cluster;
}

Cluster::~Cluster() { Stop(); }

void Cluster::Start() {
  for (auto& r : replicators_) r->Start();
}

void Cluster::Stop() {
  for (auto& r : replicators_) r->Stop();
}

bool Cluster::WaitQuiescent(uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    bool quiet = !net_->HasInflight();
    for (const auto& r : replicators_) {
      if (r->pending_count() > 0) quiet = false;
    }
    if (quiet) {
      // Double-check after a grace period: a message may have been
      // received but not yet fully applied.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      quiet = !net_->HasInflight();
      for (const auto& r : replicators_) {
        if (r->pending_count() > 0) quiet = false;
      }
      if (quiet) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

}  // namespace tardis
