// Wire messages exchanged by Replicators. The paper's prototype used
// protobuf-over-Netty; here sites live in one process and exchange
// structured messages through a simulated network with injected latency,
// which preserves the asynchronous, gossip-style semantics (§6.4).

#ifndef TARDIS_REPLICATION_MESSAGE_H_
#define TARDIS_REPLICATION_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "core/tardis_store.h"

namespace tardis {

struct ReplMessage {
  enum class Type {
    kCommit,          ///< a committed transaction (CommitRecord)
    kSyncRequest,     ///< recovery: vector of last-seen seq per site
    kCeilingRequest,  ///< pessimistic GC: ask consent for a ceiling
    kCeilingAck,      ///< consent granted (the state is present here)
    kCeilingCommit,   ///< all consented: place the ceiling
    kHeartbeat,       ///< liveness beacon + anti-entropy digest (seen_seq)
    kSnapshot,        ///< bootstrap: topologically ordered commit replay
    kHello,           ///< transport handshake: first frame on a dialed conn
    kHelloAck,        ///< transport handshake: acceptor's reply
    // Coordination frames (router <-> partition daemon; see src/cluster/).
    kRoute,           ///< router: execute a command / write set, fast path
    kRouteReply,      ///< daemon: reply to kRoute (text body)
    kPrepare,         ///< 2PC phase 1: stage a partition's write set
    kPrepareAck,      ///< participant vote (decision: commit/abort)
    kDecide,          ///< 2PC phase 2: decision; also the kTxnStatus answer
    kDecideAck,       ///< decision applied (forked = DAG forked on apply)
    kTxnStatus,       ///< recovery: ask a participant for its decision
  };

  ReplMessage() = default;
  // Movable (and noexcept-movable, so containers relocate cheaply):
  // messages are moved through the transport fabric; the commit write set
  // is only deep-copied where a fan-out genuinely needs its own copy.
  ReplMessage(ReplMessage&&) noexcept = default;
  ReplMessage& operator=(ReplMessage&&) noexcept = default;
  ReplMessage(const ReplMessage&) = default;
  ReplMessage& operator=(const ReplMessage&) = default;

  Type type = Type::kCommit;
  uint32_t from_site = 0;

  CommitRecord commit;  // kCommit

  /// kSyncRequest / kHeartbeat / kSnapshot: last *contiguous* sequence
  /// number applied per origin site, indexed by site id. Heartbeats carry
  /// the sender's digest so every beacon doubles as an anti-entropy probe;
  /// a snapshot carries the sender's floors so the receiver can adopt them
  /// after applying the contained records.
  std::vector<uint64_t> seen_seq;

  /// Ceiling protocol: the state the ceiling is placed on.
  GlobalStateId ceiling;
  uint64_t ceiling_epoch = 0;

  /// kSnapshot: every commit the sender can replay, in an order where
  /// parents precede children (local id order satisfies this). Shipped as
  /// one message so floor adoption is all-or-nothing.
  std::vector<CommitRecord> snapshot;

  // ---- coordination (kRoute*/kPrepare*/kDecide*/kTxnStatus) ---------------

  /// Distributed transaction id, unique per router-coordinated commit.
  uint64_t txn_id = 0;

  /// kPrepareAck: the participant's vote; kDecide/kDecideAck: the
  /// coordinator's decision (or kUnknown when answering kTxnStatus for a
  /// still-in-doubt transaction). Values match cluster::TwoPhaseDecision:
  /// 0 = unknown, 1 = commit, 2 = abort.
  uint8_t decision = 0;

  /// kDecideAck: applying the decision forked the participant's State DAG
  /// (branch-on-conflict instead of abort).
  bool forked = false;

  /// kRoute: the line-protocol command to execute (empty when the route
  /// carries a write set in commit.writes); kRouteReply: the reply body.
  std::string text;

  /// kPrepare: coordination endpoints ("host:port") of every participant
  /// daemon of this transaction, self included — persisted with the
  /// prepare record so an in-doubt participant can run cooperative
  /// termination after a coordinator crash.
  std::vector<std::string> endpoints;

  /// kRoute/kPrepare/kDecide: distributed trace context (DESIGN.md §7).
  /// trace_id 0 = untraced; otherwise the receiver binds the context so
  /// its spans land under the same trace as the sender's. trace_span is
  /// the sender's span (the receiver's parent).
  uint64_t trace_id = 0;
  uint64_t trace_span = 0;
  bool trace_sampled = false;

  /// kRoute/kPrepare: exactly-once client session tag (DESIGN.md §13).
  /// session_id 0 = unsessioned. The executing daemon dedups the request
  /// against its per-session table and tags the resulting commit, and on
  /// kPrepare persists the tag with the prepare record so a crash-
  /// recovered decision still commits tagged.
  uint64_t session_id = 0;
  uint64_t session_seq = 0;
};

}  // namespace tardis

#endif  // TARDIS_REPLICATION_MESSAGE_H_
