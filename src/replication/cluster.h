// Cluster: convenience harness that wires N TardisStore sites to a
// SimNetwork through Replicators — the multi-master deployment of the
// paper's evaluation (§7.1.6). Used by tests, examples and bench_fig12.

#ifndef TARDIS_REPLICATION_CLUSTER_H_
#define TARDIS_REPLICATION_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/tardis_store.h"
#include "replication/network.h"
#include "replication/replicator.h"

namespace tardis {

struct ClusterOptions {
  size_t num_sites = 3;
  NetworkOptions network;
  /// Base store options; dir (when set) gets a per-site suffix, site_id is
  /// assigned automatically.
  TardisOptions store;
  GcCoordination gc_mode = GcCoordination::kOptimistic;
  /// Per-site replicator tuning (heartbeat cadence, liveness thresholds,
  /// archive horizon, …). Heartbeats default off, so WaitQuiescent — which
  /// means "no in-flight messages" — keeps its meaning; resilience tests
  /// turn them on explicitly. `repl.gc_mode` is overridden by `gc_mode`
  /// above.
  ReplicatorOptions repl;
};

class Cluster {
 public:
  static StatusOr<std::unique_ptr<Cluster>> Open(
      const ClusterOptions& options);
  ~Cluster();

  size_t num_sites() const { return sites_.size(); }
  TardisStore* site(size_t i) { return sites_[i].get(); }
  Replicator* replicator(size_t i) { return replicators_[i].get(); }
  SimNetwork* network() { return net_.get(); }

  /// Starts all replicator pump threads.
  void Start();
  void Stop();

  /// Blocks until replication is quiescent (no in-flight messages, no
  /// pending remote transactions) or the timeout elapses. Returns true on
  /// quiescence.
  bool WaitQuiescent(uint64_t timeout_ms = 10'000);

 private:
  Cluster() = default;

  std::unique_ptr<SimNetwork> net_;
  std::vector<std::unique_ptr<TardisStore>> sites_;
  std::vector<std::unique_ptr<Replicator>> replicators_;
};

}  // namespace tardis

#endif  // TARDIS_REPLICATION_CLUSTER_H_
