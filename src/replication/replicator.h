// Replicator: the per-site replication service (§4, §6.4).
//
// Local commits are broadcast to every other site (gossip over the full
// mesh). Incoming transactions apply when their parent states are present
// — the StateID constraint reduces dependency checking to a constant-time
// lookup; otherwise they are cached (bounded, oldest evicted) and retried
// once a parent arrives.
//
// Cluster resilience (§6.4–§6.5 made self-healing):
//  * Failure detection — when heartbeats are enabled, every site beacons
//    its applied-seq digest each heartbeat interval and tracks per-peer
//    liveness (alive / suspect / dead). The dead threshold doubles each
//    time a peer flaps (returns after being declared dead), up to a cap —
//    an exponential suspicion timeout that stops flappy links from
//    oscillating the failure detector.
//  * Automatic anti-entropy — a heartbeat carries the sender's per-origin
//    contiguous floors; the receiver replays archived commits the sender
//    is missing (bounded per round). A sender that has fallen behind the
//    bounded gossip archive's horizon gets a full snapshot instead: every
//    commit reconstructable from the DAG, parents before children, plus
//    the floors to adopt once applied. A blank site joining the mesh
//    converges with no manual RequestSync.
//  * Liveness-aware GC — pessimistic ceiling consent rounds carry a
//    per-round deadline (in ticks) and bounded retries, exclude peers the
//    failure detector declared dead, and re-deliver the ceiling commit
//    when an excluded peer returns. Consent that cannot complete is
//    parked on a deferred list and re-run later — GC never wedges on a
//    crashed site.
//
// Time is modeled as ticks: Start() drives Tick() from the pump thread on
// a wall-clock cadence (tick_interval_ms); StartManual() leaves Tick() to
// the caller, so seeded fault schedules replay deterministically.

#ifndef TARDIS_REPLICATION_REPLICATOR_H_
#define TARDIS_REPLICATION_REPLICATOR_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/tardis_store.h"
#include "net/transport.h"

namespace tardis {

enum class GcCoordination {
  kOptimistic,   ///< ceilings apply locally immediately
  kPessimistic,  ///< ceilings apply after unanimous replicator consent
};

/// Per-peer liveness as seen by the local failure detector.
enum class PeerLiveness {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
};

struct ReplicatorOptions {
  GcCoordination gc_mode = GcCoordination::kOptimistic;

  /// Wall-clock milliseconds between automatic Tick() calls when Start()
  /// runs the pump thread. Ignored under StartManual().
  uint64_t tick_interval_ms = 50;

  /// Send a heartbeat every N ticks; 0 disables heartbeats AND the
  /// failure detector (peers stay kAlive forever — the pre-resilience
  /// behavior, which quiescence-based tests rely on).
  uint32_t heartbeat_every_ticks = 0;

  /// Silence thresholds, in ticks since the last message from a peer.
  uint32_t suspect_after_ticks = 4;
  uint32_t dead_after_ticks = 10;       ///< initial dead threshold
  uint32_t dead_after_ticks_max = 80;   ///< cap for the exponential timeout

  /// Per-origin bound on the in-memory gossip archive. Older entries are
  /// trimmed; peers that fall behind the trimmed horizon bootstrap from a
  /// snapshot instead of a replay.
  size_t archive_horizon = 4096;

  /// Bound on the pending-parent (orphan) cache; the oldest entry is
  /// evicted when a new orphan arrives at the cap.
  size_t max_pending = 4096;

  /// Max archived commits replayed per anti-entropy round (per peer).
  size_t repair_batch = 128;

  /// Minimum ticks between snapshots shipped to the same peer.
  uint32_t snapshot_min_interval_ticks = 8;

  /// Pessimistic ceiling consent: per-round deadline and retry budget.
  uint32_t ceiling_deadline_ticks = 8;
  uint32_t ceiling_max_retries = 4;

  /// Cadence for re-running consent rounds that timed out entirely.
  uint32_t deferred_retry_every_ticks = 8;

  ReplicatorOptions() = default;
  // Implicit: existing call sites pass a bare GcCoordination.
  ReplicatorOptions(GcCoordination mode) : gc_mode(mode) {}  // NOLINT
};

class Replicator {
 public:
  /// `net` may be any Transport: the in-process SimNetwork fabric or a
  /// per-site TcpTransport endpoint — the replication logic is identical.
  Replicator(TardisStore* store, Transport* net, uint32_t site_id,
             ReplicatorOptions options = {});
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Subscribes to the store's commit feed and starts the pump thread,
  /// which also drives Tick() every tick_interval_ms.
  void Start();
  /// Subscribes to the commit feed WITHOUT spawning the pump thread; the
  /// caller drives delivery with PumpOnce() and time with Tick(). This
  /// keeps message handling fully deterministic for seeded fault-schedule
  /// exploration.
  void StartManual();
  void Stop();

  /// Drains due messages on the calling thread (useful in deterministic
  /// tests without the pump thread). Returns the number applied.
  size_t PumpOnce();

  /// Advances replication time one tick: sends a heartbeat when due,
  /// updates peer liveness, enforces ceiling-consent deadlines, and
  /// retries deferred consent rounds.
  void Tick();

  /// Places a ceiling at the session's last commit, under the configured
  /// coordination mode.
  void PlaceCeiling(ClientSession* session);

  /// Broadcasts a recovery sync request for everything this site missed.
  /// Retained for operator use; heartbeat-driven anti-entropy makes it
  /// unnecessary in steady state.
  void RequestSync();

  /// Rebuilds the gossip archive from the store's recovered DAG (§6.5).
  /// A replicator constructed over a store that was just crash-recovered
  /// starts with an empty in-memory archive, but the recovered DAG may
  /// hold commits that exist nowhere else (they were durable locally yet
  /// never reached a peer). Re-archiving them makes the site able to serve
  /// peers' sync requests for its pre-crash history. Values are reloaded
  /// from the record store; a state whose values cannot be read back is
  /// skipped with a warning.
  void ReArchiveFromStore();

  // ---- health / introspection --------------------------------------------

  struct PeerHealth {
    uint32_t site = 0;
    PeerLiveness state = PeerLiveness::kAlive;
    uint64_t last_heard_tick = 0;
    uint32_t dead_after_ticks = 0;  ///< current (possibly doubled) threshold
    uint32_t flaps = 0;             ///< dead->alive transitions observed
  };

  /// Snapshot of the failure detector, one entry per peer, site order.
  std::vector<PeerHealth> PeerStates() const;
  /// Per-origin highest contiguous applied sequence.
  std::map<uint32_t, uint64_t> AppliedFloors() const;
  uint64_t tick_count() const;
  size_t deferred_consent_count() const;

  size_t pending_count() const;
  uint64_t applied_count() const { return applied_total_->Value(); }

 private:
  struct PeerInfo {
    uint32_t site = 0;
    PeerLiveness state = PeerLiveness::kAlive;
    uint64_t last_heard_tick = 0;
    uint32_t dead_after_ticks = 0;
    uint32_t flaps = 0;
    uint64_t last_snapshot_tick = 0;
    bool snapshot_ever_sent = false;
  };
  /// Outstanding pessimistic ceiling consent round.
  struct PendingCeiling {
    GlobalStateId guid;
    std::set<uint32_t> awaiting;  ///< live peers that have not acked
    uint64_t deadline_tick = 0;
    uint32_t retries_left = 0;
    bool excluded_dead = false;  ///< completed without a dead peer's consent
  };

  void OnLocalCommit(const CommitRecord& record);
  void HandleMessage(const ReplMessage& msg);
  void TryApply(const CommitRecord& record);
  void RetryPending();
  void Archive(const CommitRecord& record);
  /// Records `seq` as applied for `origin` and advances the contiguous
  /// floor. Takes mu_.
  void NoteSeen(uint32_t origin, uint64_t seq);
  /// Failure-detector input: a message arrived from `site`. Takes mu_.
  void NoteHeard(uint32_t site);

  /// Builds the per-origin floor digest (index = site id). Takes mu_.
  std::vector<uint64_t> FloorDigest();
  /// Anti-entropy: replays what `peer` is missing according to its floor
  /// digest, or ships a snapshot when the peer is behind the archive
  /// horizon. `force_snapshot_ok` bypasses the per-peer snapshot rate
  /// limit (explicit sync requests).
  void RepairPeer(uint32_t peer, const std::vector<uint64_t>& their_floors,
                  bool explicit_sync);
  /// Reconstructs every commit in the DAG, parents before children
  /// (local id order). Shared by ReArchiveFromStore and snapshots.
  std::vector<CommitRecord> BuildRecordsFromStore();
  void SendSnapshot(uint32_t peer);
  void ApplySnapshot(const ReplMessage& msg);

  /// Starts (or restarts) a pessimistic consent round for `guid`.
  void StartConsentRound(const GlobalStateId& guid);
  /// Completes a consent round: places the ceiling and broadcasts commit.
  void CompleteCeiling(const GlobalStateId& guid, bool excluded_dead);
  void RetryDeferredConsent();

  TardisStore* const store_;
  Transport* const net_;
  const uint32_t site_id_;
  const ReplicatorOptions options_;

  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  /// Commits waiting for a missing parent state (bounded by max_pending).
  std::deque<CommitRecord> pending_;
  /// Everything seen (local or remote), per origin site, for sync replies.
  /// Keyed by sequence so out-of-order arrival (the network may reorder)
  /// still produces a complete, sorted replay log. Bounded per origin by
  /// archive_horizon; archive_floor_ records what was trimmed.
  std::map<uint32_t, std::map<uint64_t, CommitRecord>> archive_;
  /// Highest sequence trimmed from archive_ per origin (0 = nothing
  /// trimmed). A peer whose floor is below this cannot be repaired from
  /// the archive and gets a snapshot.
  std::map<uint32_t, uint64_t> archive_floor_;
  /// Highest *contiguous* sequence applied per origin site. Origins
  /// allocate seqs 1,2,3,…, so the floor is exact; seqs applied ahead of a
  /// gap wait in seen_ahead_ until the gap fills. Digests advertise the
  /// floor, which guarantees a commit dropped by the network below an
  /// applied one is still re-sent by peers (a plain high-water mark would
  /// mask the hole forever).
  std::map<uint32_t, uint64_t> seen_floor_;
  std::map<uint32_t, std::set<uint64_t>> seen_ahead_;
  /// Failure detector, one entry per peer.
  std::map<uint32_t, PeerInfo> peers_;
  /// Outstanding pessimistic ceilings: epoch -> round.
  std::map<uint64_t, PendingCeiling> ceilings_;
  uint64_t ceiling_epoch_ = 0;
  /// Consent rounds that exhausted their retries; re-run periodically and
  /// when a dead peer returns.
  std::deque<GlobalStateId> deferred_consent_;
  /// Ceilings committed while a dead peer was excluded; re-delivered to
  /// the peer when it returns (bounded, oldest dropped).
  std::deque<GlobalStateId> committed_with_exclusions_;
  /// Ceiling commits received before the named state arrived; retried as
  /// the DAG catches up.
  std::deque<GlobalStateId> pending_ceiling_commits_;

  /// Registry counters (live in store_->metrics(); labeled with the site).
  obs::Counter* applied_total_ = nullptr;
  obs::Counter* sent_total_ = nullptr;
  obs::Counter* deferred_total_ = nullptr;
  obs::Counter* heartbeats_sent_total_ = nullptr;
  obs::Counter* repairs_sent_total_ = nullptr;
  obs::Counter* snapshots_sent_total_ = nullptr;
  obs::Counter* snapshots_applied_total_ = nullptr;
  obs::Counter* orphans_evicted_total_ = nullptr;
  obs::Counter* ceiling_timeouts_total_ = nullptr;
  obs::Counter* peer_deaths_total_ = nullptr;
  obs::HistogramMetric* stage_repl_send_us_ = nullptr;

  std::thread pump_;
  std::atomic<bool> stop_{true};
};

}  // namespace tardis

#endif  // TARDIS_REPLICATION_REPLICATOR_H_
