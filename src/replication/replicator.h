// Replicator: the per-site replication service (§4, §6.4).
//
// Local commits are broadcast to every other site (gossip over the full
// mesh). Incoming transactions apply when their parent states are present
// — the StateID constraint reduces dependency checking to a constant-time
// lookup; otherwise they are cached and retried once a parent arrives.
//
// Garbage collection coordination supports both modes of §6.4:
// *optimistic* ceilings apply locally at once; *pessimistic* ceilings run
// a consent round (request -> unanimous acks -> commit) so a state is only
// collected after every replica has it.
//
// Recovery sync (§6.5): RequestSync broadcasts the vector of last-applied
// sequence numbers; peers respond with every archived commit the caller is
// missing.

#ifndef TARDIS_REPLICATION_REPLICATOR_H_
#define TARDIS_REPLICATION_REPLICATOR_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/tardis_store.h"
#include "net/transport.h"

namespace tardis {

enum class GcCoordination {
  kOptimistic,   ///< ceilings apply locally immediately
  kPessimistic,  ///< ceilings apply after unanimous replicator consent
};

class Replicator {
 public:
  /// `net` may be any Transport: the in-process SimNetwork fabric or a
  /// per-site TcpTransport endpoint — the replication logic is identical.
  Replicator(TardisStore* store, Transport* net, uint32_t site_id,
             GcCoordination gc_mode = GcCoordination::kOptimistic);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Subscribes to the store's commit feed and starts the pump thread.
  void Start();
  /// Subscribes to the commit feed WITHOUT spawning the pump thread; the
  /// caller drives delivery with PumpOnce(). This keeps message handling
  /// fully deterministic for seeded fault-schedule exploration.
  void StartManual();
  void Stop();

  /// Drains due messages on the calling thread (useful in deterministic
  /// tests without the pump thread). Returns the number applied.
  size_t PumpOnce();

  /// Places a ceiling at the session's last commit, under the configured
  /// coordination mode.
  void PlaceCeiling(ClientSession* session);

  /// Broadcasts a recovery sync request for everything this site missed.
  void RequestSync();

  /// Rebuilds the gossip archive from the store's recovered DAG (§6.5).
  /// A replicator constructed over a store that was just crash-recovered
  /// starts with an empty in-memory archive, but the recovered DAG may
  /// hold commits that exist nowhere else (they were durable locally yet
  /// never reached a peer). Re-archiving them makes the site able to serve
  /// peers' sync requests for its pre-crash history. Values are reloaded
  /// from the record store; a state whose values cannot be read back is
  /// skipped with a warning.
  void ReArchiveFromStore();

  size_t pending_count() const;
  uint64_t applied_count() const { return applied_total_->Value(); }

 private:
  void OnLocalCommit(const CommitRecord& record);
  void HandleMessage(const ReplMessage& msg);
  void TryApply(const CommitRecord& record);
  void RetryPending();
  void Archive(const CommitRecord& record);
  /// Records `seq` as applied for `origin` and advances the contiguous
  /// floor. Takes mu_.
  void NoteSeen(uint32_t origin, uint64_t seq);

  TardisStore* const store_;
  Transport* const net_;
  const uint32_t site_id_;
  const GcCoordination gc_mode_;

  mutable std::mutex mu_;
  /// Commits waiting for a missing parent state.
  std::deque<CommitRecord> pending_;
  /// Everything seen (local or remote), per origin site, for sync replies.
  /// Keyed by sequence so out-of-order arrival (the network may reorder)
  /// still produces a complete, sorted replay log.
  std::map<uint32_t, std::map<uint64_t, CommitRecord>> archive_;
  /// Highest *contiguous* sequence applied per origin site. Origins
  /// allocate seqs 1,2,3,…, so the floor is exact; seqs applied ahead of a
  /// gap wait in seen_ahead_ until the gap fills. Sync requests advertise
  /// the floor, which guarantees a commit dropped by the network below an
  /// applied one is still re-sent by peers (a plain high-water mark would
  /// mask the hole forever).
  std::map<uint32_t, uint64_t> seen_floor_;
  std::map<uint32_t, std::set<uint64_t>> seen_ahead_;
  /// Outstanding pessimistic ceilings: epoch -> (guid, acks needed).
  struct PendingCeiling {
    GlobalStateId guid;
    size_t acks_needed;
  };
  std::map<uint64_t, PendingCeiling> ceilings_;
  uint64_t ceiling_epoch_ = 0;

  /// Registry counters (live in store_->metrics(); labeled with the site).
  obs::Counter* applied_total_ = nullptr;
  obs::Counter* sent_total_ = nullptr;
  obs::Counter* deferred_total_ = nullptr;

  std::thread pump_;
  std::atomic<bool> stop_{true};
};

}  // namespace tardis

#endif  // TARDIS_REPLICATION_REPLICATOR_H_
