// TardisTxKv: adapts a TardisStore to the backend-neutral TxKV interface
// so the benchmark driver and the applications can run the same code on
// TARDiS and on the baselines. The begin/end constraints are fixed at
// adapter construction (e.g. Ancestor + Serializability for the branching
// configurations of Fig. 10, Ancestor + Serializability∧NoBranching for
// the sequential configuration of Fig. 9).

#ifndef TARDIS_BASELINE_TARDIS_TXKV_H_
#define TARDIS_BASELINE_TARDIS_TXKV_H_

#include <memory>
#include <string>
#include <utility>

#include "baseline/txkv.h"
#include "core/tardis_store.h"

namespace tardis {

class TardisTxKv : public TxKvStore {
 public:
  /// `store` must outlive the adapter. Null constraints select the store
  /// defaults (Ancestor / Serializability). When `ceiling_interval` is
  /// non-zero, each client places a GC ceiling at its last commit every
  /// that-many commits (the §7.1.5 configuration).
  TardisTxKv(TardisStore* store, BeginConstraintPtr begin = nullptr,
             EndConstraintPtr end = nullptr, std::string label = "TARDiS",
             uint64_t ceiling_interval = 0)
      : store_(store),
        begin_(std::move(begin)),
        end_(std::move(end)),
        label_(std::move(label)),
        ceiling_interval_(ceiling_interval) {}

  std::unique_ptr<TxKvClient> NewClient() override;
  std::string name() const override { return label_; }

  TardisStore* store() { return store_; }

 private:
  class Client;
  class Txn;

  TardisStore* const store_;
  const BeginConstraintPtr begin_;
  const EndConstraintPtr end_;
  const std::string label_;
  const uint64_t ceiling_interval_;
};

}  // namespace tardis

#endif  // TARDIS_BASELINE_TARDIS_TXKV_H_
