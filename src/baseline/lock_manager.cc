#include "baseline/lock_manager.h"

#include <chrono>

namespace tardis {

namespace {
bool Holds(const std::vector<std::string>& keys, const std::string& key) {
  for (const std::string& k : keys) {
    if (k == key) return true;
  }
  return false;
}
}  // namespace

Status LockManager::AcquireShared(LockTxnId txn, const std::string& key) {
  std::unique_lock<std::mutex> guard(mu_);
  auto& slot = table_[key];
  if (!slot) slot = std::make_unique<LockState>();
  LockState* ls = slot.get();

  if (ls->exclusive == txn || ls->sharers.count(txn)) {
    return Status::OK();  // re-entrant
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(wait_timeout_us_);
  ls->waiters++;
  while (ls->exclusive != 0) {
    if (ls->cv.wait_until(guard, deadline) == std::cv_status::timeout &&
        ls->exclusive != 0) {
      ls->waiters--;
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return Status::Busy("shared lock wait timeout");
    }
  }
  ls->waiters--;
  ls->sharers.insert(txn);
  held_[txn].push_back(key);
  return Status::OK();
}

Status LockManager::AcquireExclusive(LockTxnId txn, const std::string& key) {
  std::unique_lock<std::mutex> guard(mu_);
  auto& slot = table_[key];
  if (!slot) slot = std::make_unique<LockState>();
  LockState* ls = slot.get();

  if (ls->exclusive == txn) return Status::OK();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(wait_timeout_us_);
  const bool upgrading = ls->sharers.count(txn) > 0;

  auto blocked = [&] {
    if (ls->exclusive != 0) return true;
    if (upgrading) return ls->sharers.size() > 1;  // others still share
    return !ls->sharers.empty();
  };

  ls->waiters++;
  while (blocked()) {
    if (ls->cv.wait_until(guard, deadline) == std::cv_status::timeout &&
        blocked()) {
      ls->waiters--;
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return Status::Busy("exclusive lock wait timeout");
    }
  }
  ls->waiters--;
  if (upgrading) {
    ls->sharers.erase(txn);
  }
  ls->exclusive = txn;
  if (!upgrading || !Holds(held_[txn], key)) {
    held_[txn].push_back(key);
  }
  return Status::OK();
}

void LockManager::ReleaseAll(LockTxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (const std::string& key : it->second) {
    auto slot = table_.find(key);
    if (slot == table_.end()) continue;
    LockState* ls = slot->second.get();
    if (ls->exclusive == txn) ls->exclusive = 0;
    ls->sharers.erase(txn);
    if (ls->waiters > 0) {
      ls->cv.notify_all();
    } else if (ls->exclusive == 0 && ls->sharers.empty()) {
      table_.erase(slot);  // keep the table compact
    }
  }
  held_.erase(it);
}

}  // namespace tardis
