// TwoPLStore ("SeqKV"): a strictly sequential transactional KV using
// strict two-phase locking over the shared storage substrate. This is the
// repo's stand-in for the paper's BerkeleyDB baseline: a widely-used ACID
// store whose record locks make conflicting writers (and readers of
// written records) block.
//
// Protocol: reads take shared record locks, writes take exclusive record
// locks (upgrading if needed); writes are buffered and applied at commit;
// all locks release at commit/abort (strict 2PL). Lock-wait timeouts
// resolve deadlocks; the caller sees Status::Busy and retries.

#ifndef TARDIS_BASELINE_TWOPL_STORE_H_
#define TARDIS_BASELINE_TWOPL_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "baseline/lock_manager.h"
#include "baseline/txkv.h"
#include "storage/record_store.h"

namespace tardis {

struct TwoPLOptions {
  /// Empty = in-memory records; otherwise a disk-backed B+Tree at
  /// dir/records.db.
  std::string dir;
  size_t cache_pages = 8192;
  uint64_t lock_timeout_us = 50'000;
};

class TwoPLStore : public TxKvStore {
 public:
  static StatusOr<std::unique_ptr<TwoPLStore>> Open(
      const TwoPLOptions& options);

  std::unique_ptr<TxKvClient> NewClient() override;
  std::string name() const override { return "SeqKV-2PL"; }

  RecordStore* record_store() { return records_.get(); }
  LockManager* lock_manager() { return &locks_; }
  uint64_t aborts() const { return aborts_.load(); }

 private:
  friend class TwoPLTransaction;
  friend class TwoPLClient;
  explicit TwoPLStore(uint64_t lock_timeout_us) : locks_(lock_timeout_us) {}

  std::unique_ptr<RecordStore> records_;
  LockManager locks_;
  std::atomic<LockTxnId> next_txn_{1};
  std::atomic<uint64_t> aborts_{0};
};

class TwoPLTransaction : public TxKvTransaction {
 public:
  ~TwoPLTransaction() override;

  Status Get(const Slice& key, std::string* value) override;
  Status Put(const Slice& key, const Slice& value) override;
  Status Commit() override;
  void Abort() override;

 private:
  friend class TwoPLClient;
  TwoPLTransaction(TwoPLStore* store, LockTxnId id)
      : store_(store), id_(id) {}

  TwoPLStore* const store_;
  const LockTxnId id_;
  std::map<std::string, std::string> write_cache_;
  bool active_ = true;
};

}  // namespace tardis

#endif  // TARDIS_BASELINE_TWOPL_STORE_H_
