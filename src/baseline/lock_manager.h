// LockManager: per-key shared/exclusive record locks with FIFO waiting and
// timeout-based deadlock resolution — the concurrency-control behavior of
// BerkeleyDB that the paper's "BDB" baseline exhibits (readers and writers
// block on conflicting record locks; deadlocks resolve by victimizing a
// waiter).

#ifndef TARDIS_BASELINE_LOCK_MANAGER_H_
#define TARDIS_BASELINE_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace tardis {

using LockTxnId = uint64_t;

class LockManager {
 public:
  explicit LockManager(uint64_t wait_timeout_us = 50'000)
      : wait_timeout_us_(wait_timeout_us) {}

  /// Acquires a shared lock on `key` (re-entrant; upgrades are requested
  /// via AcquireExclusive). Status::Busy on timeout.
  Status AcquireShared(LockTxnId txn, const std::string& key);

  /// Acquires an exclusive lock on `key`; upgrades an existing shared
  /// lock held by `txn`. Status::Busy on timeout.
  Status AcquireExclusive(LockTxnId txn, const std::string& key);

  /// Releases every lock held by `txn` (strict 2PL: all at commit/abort).
  void ReleaseAll(LockTxnId txn);

  /// Total lock-wait timeouts (a proxy for deadlock victims).
  uint64_t timeout_count() const { return timeouts_.load(); }

 private:
  struct LockState {
    std::unordered_set<LockTxnId> sharers;
    LockTxnId exclusive = 0;  // 0 = none
    std::condition_variable cv;
    int waiters = 0;
  };

  std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<LockState>> table_;
  std::unordered_map<LockTxnId, std::vector<std::string>> held_;
  const uint64_t wait_timeout_us_;
  std::atomic<uint64_t> timeouts_{0};
};

}  // namespace tardis

#endif  // TARDIS_BASELINE_LOCK_MANAGER_H_
