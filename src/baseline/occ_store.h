// OccStore: optimistic concurrency control baseline — a modified
// Kung–Robinson backward-validation scheme. The paper's modification
// (§7.1.1) is that read-write transactions are not verified against
// read-only ones; that falls out naturally here because read-only
// transactions never register a write set. Read-only transactions *are*
// validated (their reads against concurrent committers' writes), which is
// why OCC trails in the read-heavy workload (§7.1.2).
//
// Reads go straight to the committed store and are recorded in the read
// set; writes are buffered. At commit, the transaction enters the
// (serial) validation section and checks its read set against the write
// sets of every transaction that committed after it began; any overlap is
// a conflict and the transaction aborts (Status::Conflict). Validation
// cost grows with the number of concurrently committing transactions —
// the bottleneck the paper measures.

#ifndef TARDIS_BASELINE_OCC_STORE_H_
#define TARDIS_BASELINE_OCC_STORE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/txkv.h"
#include "core/types.h"
#include "storage/record_store.h"

namespace tardis {

struct OccOptions {
  /// Empty = in-memory records; otherwise a disk-backed B+Tree.
  std::string dir;
  size_t cache_pages = 8192;
  /// Committed write sets older than this many transactions are pruned
  /// (any validator that old would be aborted conservatively).
  size_t history_limit = 4096;
};

class OccStore : public TxKvStore {
 public:
  static StatusOr<std::unique_ptr<OccStore>> Open(const OccOptions& options);

  std::unique_ptr<TxKvClient> NewClient() override;
  std::string name() const override { return "OCC"; }

  uint64_t aborts() const { return aborts_.load(); }
  uint64_t validations() const { return validations_.load(); }

 private:
  friend class OccTransaction;
  friend class OccClient;
  explicit OccStore(size_t history_limit) : history_limit_(history_limit) {}

  struct CommittedTxn {
    uint64_t tn;
    KeySet write_set;
  };

  std::unique_ptr<RecordStore> records_;
  const size_t history_limit_;

  std::mutex validate_mu_;                // the serial validation section
  uint64_t committed_tn_ = 0;             // guarded by validate_mu_
  uint64_t oldest_tn_ = 0;                // guarded by validate_mu_
  std::deque<CommittedTxn> history_;      // guarded by validate_mu_

  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> validations_{0};
};

class OccTransaction : public TxKvTransaction {
 public:
  Status Get(const Slice& key, std::string* value) override;
  Status Put(const Slice& key, const Slice& value) override;
  Status Commit() override;
  void Abort() override { active_ = false; }

 private:
  friend class OccClient;
  OccTransaction(OccStore* store, uint64_t start_tn)
      : store_(store), start_tn_(start_tn) {}

  OccStore* const store_;
  const uint64_t start_tn_;
  KeySet read_set_;
  std::map<std::string, std::string> write_cache_;
  bool active_ = true;
};

}  // namespace tardis

#endif  // TARDIS_BASELINE_OCC_STORE_H_
