#include "baseline/twopl_store.h"

#include "storage/btree_record_store.h"
#include "storage/memstore.h"

namespace tardis {

class TwoPLClient : public TxKvClient {
 public:
  explicit TwoPLClient(TwoPLStore* store) : store_(store) {}

  StatusOr<TxKvTxnPtr> Begin() override {
    const LockTxnId id = store_->next_txn_.fetch_add(1);
    return TxKvTxnPtr(new TwoPLTransaction(store_, id));
  }

 private:
  TwoPLStore* const store_;
};

StatusOr<std::unique_ptr<TwoPLStore>> TwoPLStore::Open(
    const TwoPLOptions& options) {
  std::unique_ptr<TwoPLStore> store(new TwoPLStore(options.lock_timeout_us));
  if (options.dir.empty()) {
    store->records_ = std::make_unique<MemRecordStore>();
  } else {
    auto rs = BTreeRecordStore::Open(options.dir + "/records.db",
                                     options.cache_pages);
    if (!rs.ok()) return rs.status();
    store->records_ = std::move(*rs);
  }
  return store;
}

std::unique_ptr<TxKvClient> TwoPLStore::NewClient() {
  return std::make_unique<TwoPLClient>(this);
}

TwoPLTransaction::~TwoPLTransaction() {
  if (active_) Abort();
}

Status TwoPLTransaction::Get(const Slice& key, std::string* value) {
  if (!active_) return Status::InvalidArgument("transaction finished");
  auto cached = write_cache_.find(key.ToString());
  if (cached != write_cache_.end()) {
    *value = cached->second;
    return Status::OK();
  }
  Status s = store_->locks_.AcquireShared(id_, key.ToString());
  if (!s.ok()) {
    Abort();
    return s;
  }
  return store_->records_->Get(key, value);
}

Status TwoPLTransaction::Put(const Slice& key, const Slice& value) {
  if (!active_) return Status::InvalidArgument("transaction finished");
  Status s = store_->locks_.AcquireExclusive(id_, key.ToString());
  if (!s.ok()) {
    Abort();
    return s;
  }
  write_cache_[key.ToString()] = value.ToString();
  return Status::OK();
}

Status TwoPLTransaction::Commit() {
  if (!active_) return Status::InvalidArgument("transaction finished");
  for (const auto& [key, value] : write_cache_) {
    Status s = store_->records_->Put(key, value);
    if (s.ok()) continue;
    Abort();
    return s;
  }
  store_->locks_.ReleaseAll(id_);
  active_ = false;
  return Status::OK();
}

void TwoPLTransaction::Abort() {
  if (!active_) return;
  store_->locks_.ReleaseAll(id_);
  store_->aborts_.fetch_add(1, std::memory_order_relaxed);
  active_ = false;
}

}  // namespace tardis
