#include "baseline/occ_store.h"

#include "storage/btree_record_store.h"
#include "storage/memstore.h"

namespace tardis {

class OccClient : public TxKvClient {
 public:
  explicit OccClient(OccStore* store) : store_(store) {}

  StatusOr<TxKvTxnPtr> Begin() override;

 private:
  OccStore* const store_;
};

StatusOr<std::unique_ptr<OccStore>> OccStore::Open(const OccOptions& options) {
  std::unique_ptr<OccStore> store(new OccStore(options.history_limit));
  if (options.dir.empty()) {
    store->records_ = std::make_unique<MemRecordStore>();
  } else {
    auto rs = BTreeRecordStore::Open(options.dir + "/records.db",
                                     options.cache_pages);
    if (!rs.ok()) return rs.status();
    store->records_ = std::move(*rs);
  }
  return store;
}

std::unique_ptr<TxKvClient> OccStore::NewClient() {
  return std::make_unique<OccClient>(this);
}

StatusOr<TxKvTxnPtr> OccClient::Begin() {
  uint64_t start_tn;
  {
    std::lock_guard<std::mutex> guard(store_->validate_mu_);
    start_tn = store_->committed_tn_;
  }
  return TxKvTxnPtr(new OccTransaction(store_, start_tn));
}

Status OccTransaction::Get(const Slice& key, std::string* value) {
  if (!active_) return Status::InvalidArgument("transaction finished");
  auto cached = write_cache_.find(key.ToString());
  if (cached != write_cache_.end()) {
    *value = cached->second;
    return Status::OK();
  }
  read_set_.Add(key.ToString());
  return store_->records_->Get(key, value);
}

Status OccTransaction::Put(const Slice& key, const Slice& value) {
  if (!active_) return Status::InvalidArgument("transaction finished");
  write_cache_[key.ToString()] = value.ToString();
  return Status::OK();
}

Status OccTransaction::Commit() {
  if (!active_) return Status::InvalidArgument("transaction finished");
  active_ = false;

  std::lock_guard<std::mutex> guard(store_->validate_mu_);
  store_->validations_.fetch_add(1, std::memory_order_relaxed);

  if (start_tn_ < store_->oldest_tn_) {
    // History needed for validation was pruned: conservatively abort.
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return Status::Conflict("validation history pruned");
  }

  // Backward validation: our reads against the write sets of everyone who
  // committed while we ran.
  for (const OccStore::CommittedTxn& committed : store_->history_) {
    if (committed.tn <= start_tn_) continue;
    if (committed.write_set.Intersects(read_set_)) {
      store_->aborts_.fetch_add(1, std::memory_order_relaxed);
      return Status::Conflict("read-write conflict in validation");
    }
  }

  // Read-only transactions register nothing: read-write transactions are
  // never verified against them (the paper's modification).
  if (write_cache_.empty()) return Status::OK();

  // Write phase (inside the critical section, as in serial-validation
  // Kung-Robinson).
  KeySet write_set;
  for (const auto& [key, value] : write_cache_) {
    Status s = store_->records_->Put(key, value);
    if (!s.ok()) return s;
    write_set.Add(key);
  }
  const uint64_t tn = ++store_->committed_tn_;
  store_->history_.push_back({tn, std::move(write_set)});
  while (store_->history_.size() > store_->history_limit_) {
    store_->oldest_tn_ = store_->history_.front().tn;
    store_->history_.pop_front();
  }
  return Status::OK();
}

}  // namespace tardis
