// TxKV: a minimal backend-neutral transactional KV interface.
//
// The evaluation (§7) compares three systems on identical workloads:
// TARDiS, BerkeleyDB ("BDB", here a strict-2PL store) and a custom OCC
// implementation. Applications (Retwis, CRDTs) and the benchmark driver
// program against this interface so the comparison is apples-to-apples.
//
// Concurrency model: a TxKvClient belongs to one thread; transactions are
// created from a client and driven by that thread only. The stores behind
// the interface are fully thread-safe across clients.

#ifndef TARDIS_BASELINE_TXKV_H_
#define TARDIS_BASELINE_TXKV_H_

#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace tardis {

class TxKvTransaction {
 public:
  virtual ~TxKvTransaction() = default;

  virtual Status Get(const Slice& key, std::string* value) = 0;
  virtual Status Put(const Slice& key, const Slice& value) = 0;

  /// Commit may return Aborted/Busy/Conflict; the transaction is finished
  /// either way and the caller retries with a fresh Begin.
  virtual Status Commit() = 0;
  virtual void Abort() = 0;
};

using TxKvTxnPtr = std::unique_ptr<TxKvTransaction>;

class TxKvClient {
 public:
  virtual ~TxKvClient() = default;
  virtual StatusOr<TxKvTxnPtr> Begin() = 0;
};

class TxKvStore {
 public:
  virtual ~TxKvStore() = default;
  virtual std::unique_ptr<TxKvClient> NewClient() = 0;
  virtual std::string name() const = 0;
};

}  // namespace tardis

#endif  // TARDIS_BASELINE_TXKV_H_
