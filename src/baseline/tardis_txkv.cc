#include "baseline/tardis_txkv.h"

#include <functional>

namespace tardis {

class TardisTxKv::Txn : public TxKvTransaction {
 public:
  Txn(TxnPtr inner, EndConstraintPtr end, std::function<void()> on_commit)
      : inner_(std::move(inner)),
        end_(std::move(end)),
        on_commit_(std::move(on_commit)) {}

  Status Get(const Slice& key, std::string* value) override {
    return inner_->Get(key, value);
  }
  Status Put(const Slice& key, const Slice& value) override {
    return inner_->Put(key, value);
  }
  Status Commit() override {
    Status s = inner_->Commit(end_);
    if (s.ok() && on_commit_) on_commit_();
    return s;
  }
  void Abort() override { inner_->Abort(); }

 private:
  TxnPtr inner_;
  EndConstraintPtr end_;
  std::function<void()> on_commit_;
};

class TardisTxKv::Client : public TxKvClient {
 public:
  Client(TardisTxKv* owner)
      : owner_(owner), session_(owner->store_->CreateSession()) {}

  StatusOr<TxKvTxnPtr> Begin() override {
    auto txn = owner_->store_->Begin(session_.get(), owner_->begin_);
    if (!txn.ok()) return txn.status();
    std::function<void()> on_commit;
    if (owner_->ceiling_interval_ > 0) {
      on_commit = [this] {
        if (++commits_ % owner_->ceiling_interval_ == 0) {
          owner_->store_->PlaceCeiling(session_.get());
        }
      };
    }
    return TxKvTxnPtr(
        new Txn(std::move(*txn), owner_->end_, std::move(on_commit)));
  }

  ClientSession* session() { return session_.get(); }

 private:
  TardisTxKv* const owner_;
  std::unique_ptr<ClientSession> session_;
  uint64_t commits_ = 0;
};

std::unique_ptr<TxKvClient> TardisTxKv::NewClient() {
  return std::make_unique<Client>(this);
}

}  // namespace tardis
