// TwoPhaseParticipant: one partition's side of the cross-partition commit
// protocol (DESIGN.md §10).
//
// Classic 2PC aborts a prepared transaction whenever anything conflicts.
// TARDiS does not need to: a participant votes yes by *staging* the write
// set as an open local transaction, and on decide-commit simply commits
// it — if a concurrent local commit landed in between, branch-on-conflict
// forks the State DAG instead of aborting, and the fork is merged later
// like any other branch. The only abort votes are resource/persistence
// failures, so a prepared cross-partition transaction is never lost to a
// read-write race.
//
// Durability: every prepare and decide is appended (as a CRC32-framed
// ReplMessage, the same codec as the wire) to <dir>/twopc.log and fsynced
// before it is acknowledged — except the decide *apply* happens before
// the decide record is logged. Re-applying a decide after a crash is
// benign (idempotent by txn id); a logged decide whose apply never
// happened would lose a committed write, which is not.
//
// Recovery and the stateless router: the router keeps no durable state,
// so a participant left in doubt (prepared, no decide) resolves
// cooperatively. The prepare record carries every participant's
// coordination endpoint; after `resolve_grace_ms`, ResolveInDoubt()
// queries the peers — any peer that saw decide-commit → commit, any that
// saw abort → abort, and if every peer is reachable and also in doubt,
// presume abort (safe: the router only decides commit after collecting
// *all* prepare acks, so "nobody saw a decide" implies no one committed).
// A queried peer with *no trace* of the transaction durably records the
// abort it answers with, so a prepare arriving from a slow router
// afterwards is voted abort rather than resurrecting a buried
// transaction; the router in turn bounds its whole prepare phase by
// txn_deadline_ms, kept strictly below resolve_grace_ms, so a live
// router cannot race the presumption.

#ifndef TARDIS_CLUSTER_TWOPC_H_
#define TARDIS_CLUSTER_TWOPC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/tardis_store.h"
#include "obs/metrics.h"
#include "replication/message.h"
#include "util/status.h"

namespace tardis {
namespace cluster {

enum class TwoPhaseDecision : uint8_t {
  kUnknown = 0,  ///< prepared, outcome not yet known
  kCommit = 1,
  kAbort = 2,
};

const char* TwoPhaseDecisionName(TwoPhaseDecision d);

struct TwoPhaseOptions {
  /// Directory for twopc.log. Empty = no durability (in-memory stores /
  /// unit tests); recovery then starts empty.
  std::string dir;
  /// This participant's own coordination endpoint ("host:port"), as it
  /// appears in the prepare record's endpoint list; skipped when
  /// querying peers.
  std::string self_endpoint;
  /// How long a prepared transaction may sit undecided before
  /// ResolveInDoubt starts querying peers. Must exceed the router's 2PC
  /// deadline (see file comment).
  uint64_t resolve_grace_ms = 5000;
  /// How long a decided transaction's outcome is remembered (and kept in
  /// twopc.log). Entries older than this are garbage-collected by
  /// ResolveInDoubt and the log is compacted, so a long-lived daemon
  /// does not accumulate every transaction it ever coordinated. After
  /// collection the transaction falls back to presumed abort, so this
  /// must comfortably exceed both the router's retry window and the
  /// longest coordination-plane partition worth tolerating (a peer in
  /// doubt longer than this would adopt the presumption instead of a
  /// collected commit).
  uint64_t decided_retention_ms = 600'000;
  /// Queries one peer for its decision on txn_id. Injected so tests and
  /// the in-process chaos harness can answer without sockets; tardisd
  /// wires this to a FramedClient kTxnStatus call. An error return means
  /// "unreachable" (the txn stays in doubt).
  std::function<Status(const std::string& endpoint, uint64_t txn_id,
                       TwoPhaseDecision* decision)>
      query_peer;
};

class TwoPhaseParticipant {
 public:
  /// Registers the 2PC metrics on the store's registry. Call Recover()
  /// before serving traffic.
  TwoPhaseParticipant(TardisStore* store, TwoPhaseOptions options);
  ~TwoPhaseParticipant();

  TwoPhaseParticipant(const TwoPhaseParticipant&) = delete;
  TwoPhaseParticipant& operator=(const TwoPhaseParticipant&) = delete;

  /// Replays twopc.log: prepares without a matching decide become
  /// in-doubt transactions (their write sets come from the log; the
  /// staged local transaction did not survive the crash, so a later
  /// decide-commit re-applies them through a fresh transaction). A torn
  /// final record — the crash hit mid-append — is truncated away, so
  /// later appends extend a valid prefix instead of hiding behind the
  /// corrupt frame.
  Status Recover();

  /// kPrepare -> kPrepareAck. Stages the write set, persists the prepare
  /// record, votes commit; votes abort when persistence fails (fault
  /// point "twopc.prepare.persist"). Duplicate prepares re-ack the
  /// original vote.
  Status HandlePrepare(const ReplMessage& msg, ReplMessage* reply);

  /// kDecide -> kDecideAck. Applies the decision (commit may fork — see
  /// file comment; fault point "twopc.decide.apply"), then logs it.
  /// Idempotent: a repeated decide re-acks without re-applying.
  Status HandleDecide(const ReplMessage& msg, ReplMessage* reply);

  /// kTxnStatus -> kDecideAck carrying this participant's view: the
  /// logged decision, kUnknown while prepared-undecided, and kAbort for
  /// transactions never seen (presumed abort). The presumption is made
  /// durable before it is answered — the querying peer acts on it, so a
  /// later prepare or decide for the same txn must see the same fate; if
  /// it cannot be persisted the answer degrades to kUnknown.
  Status HandleTxnStatus(const ReplMessage& msg, ReplMessage* reply);

  /// One cooperative-termination pass over transactions in doubt longer
  /// than resolve_grace_ms, plus garbage collection of decided entries
  /// older than decided_retention_ms (compacting twopc.log when any are
  /// dropped). Returns the number of in-doubt transactions resolved.
  /// Driven by the daemon's resolver thread (or directly by tests).
  size_t ResolveInDoubt();

  size_t in_doubt_count() const;

  /// Test/introspection: this participant's decision for txn_id
  /// (kUnknown when prepared-undecided OR never seen; pair with
  /// in_doubt_count to distinguish).
  TwoPhaseDecision DecisionFor(uint64_t txn_id) const;

 private:
  struct Pending {
    ReplMessage prepare;      ///< the full prepare record (writes, peers)
    TxnPtr staged;            ///< open local txn; null after crash recovery
    std::unique_ptr<ClientSession> session;  ///< owns staged's session
    uint64_t prepared_at_ms = 0;
  };
  struct Decided {
    TwoPhaseDecision decision = TwoPhaseDecision::kUnknown;
    uint64_t decided_at_ms = 0;  ///< retention clock for GC
  };

  /// Appends one framed record to twopc.log and fsyncs. No-op without a
  /// log directory.
  Status AppendLog(const ReplMessage& msg);
  /// Durably records `decision` for txn_id and remembers it in decided_.
  /// Caller holds mu_.
  Status RecordDecisionLocked(uint64_t txn_id, TwoPhaseDecision decision);
  /// Drops decided entries older than decided_retention_ms and, when any
  /// were dropped, rewrites twopc.log to just the live pending/decided
  /// records. Caller holds mu_.
  void GcDecidedLocked(uint64_t now_ms);
  /// Rewrites twopc.log from pending_ + decided_ (write temp, fsync,
  /// rename, reopen). Caller holds mu_.
  Status CompactLogLocked();
  /// Commits or aborts a pending transaction, logs the decide, moves it
  /// to decided_. Caller holds mu_. Sets *forked when the commit created
  /// a new branch.
  Status ApplyDecisionLocked(uint64_t txn_id, Pending* p,
                             TwoPhaseDecision decision, bool* forked);

  TardisStore* const store_;
  const TwoPhaseOptions options_;
  const std::string log_path_;

  mutable std::mutex mu_;
  std::map<uint64_t, Pending> pending_;
  std::map<uint64_t, Decided> decided_;
  int log_fd_ = -1;

  obs::Counter* prepares_ = nullptr;
  obs::Counter* forked_commits_ = nullptr;
  obs::HistogramMetric* stage_wal_fsync_us_ = nullptr;
  obs::HistogramMetric* stage_decide_apply_us_ = nullptr;
};

}  // namespace cluster
}  // namespace tardis

#endif  // TARDIS_CLUSTER_TWOPC_H_
