#include "cluster/framed_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>

#include "net/wire.h"
#include "util/clock.h"

namespace tardis {
namespace cluster {

namespace {

int64_t RemainingMs(uint64_t deadline_ms) {
  const uint64_t now = NowMillis();
  return now >= deadline_ms ? 0 : static_cast<int64_t>(deadline_ms - now);
}

/// Polls fd for `events` until the deadline. OK when ready; Unavailable
/// on deadline; IOError on poll failure or socket error/hangup.
Status WaitReady(int fd, short events, uint64_t deadline_ms) {
  for (;;) {
    const int64_t remain = RemainingMs(deadline_ms);
    if (remain <= 0) return Status::Unavailable("deadline");
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int n = poll(&pfd, 1, static_cast<int>(remain));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll: " + std::string(strerror(errno)));
    }
    if (n == 0) continue;  // loop re-checks the deadline
    if (pfd.revents & (POLLERR | POLLNVAL)) {
      return Status::IOError("socket error");
    }
    // POLLHUP with POLLIN still allows draining buffered bytes.
    if ((pfd.revents & POLLHUP) && !(pfd.revents & POLLIN)) {
      return Status::IOError("connection closed");
    }
    return Status::OK();
  }
}

}  // namespace

Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("endpoint must be host:port, got \"" +
                                   endpoint + "\"");
  }
  const std::string port_str = endpoint.substr(colon + 1);
  char* end = nullptr;
  const unsigned long p = strtoul(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p == 0 || p > 65535) {
    return Status::InvalidArgument("bad port in endpoint \"" + endpoint +
                                   "\"");
  }
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return Status::OK();
}

FramedClient::~FramedClient() { Close(); }

void FramedClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  recvbuf_.clear();
}

Status FramedClient::Connect(const std::string& endpoint,
                             uint64_t timeout_ms) {
  Close();
  std::string host;
  uint16_t port = 0;
  Status s = ParseEndpoint(endpoint, &host, &port);
  if (!s.ok()) return s;

  struct addrinfo hints;
  memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::IOError("cannot resolve " + host);
  }

  const uint64_t deadline_ms = NowMillis() + timeout_ms;
  int fd = socket(res->ai_family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                  0);
  if (fd < 0) {
    freeaddrinfo(res);
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  int rc = connect(fd, res->ai_addr, res->ai_addrlen);
  freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Status::IOError("connect: " + std::string(strerror(errno)));
  }
  if (rc != 0) {
    s = WaitReady(fd, POLLOUT, deadline_ms);
    if (s.ok()) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
        s = Status::IOError("connect: " +
                            std::string(strerror(err != 0 ? err : errno)));
      }
    }
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  endpoint_ = endpoint;
  return Status::OK();
}

Status FramedClient::Call(const ReplMessage& req, ReplMessage* resp,
                          uint64_t timeout_ms) {
  if (fd_ < 0) return Status::IOError("not connected");
  const uint64_t deadline_ms = NowMillis() + timeout_ms;

  std::string frame;
  EncodeFrame(req, &frame);
  size_t off = 0;
  while (off < frame.size()) {
    Status s = WaitReady(fd_, POLLOUT, deadline_ms);
    if (!s.ok()) {
      Close();
      return s;
    }
    const ssize_t n =
        send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      Close();
      return Status::IOError("send: " + std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }

  for (;;) {
    size_t consumed = 0;
    Status s = DecodeFrame(Slice(recvbuf_), resp, &consumed);
    if (!s.ok()) {
      Close();
      return s;
    }
    if (consumed > 0) {
      recvbuf_.erase(0, consumed);
      return Status::OK();
    }
    s = WaitReady(fd_, POLLIN, deadline_ms);
    if (!s.ok()) {
      Close();
      return s;
    }
    char buf[4096];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      Close();
      return Status::IOError("recv: " + std::string(strerror(errno)));
    }
    if (n == 0) {
      Close();
      return Status::IOError("connection closed by peer");
    }
    recvbuf_.append(buf, static_cast<size_t>(n));
  }
}

Status FramedClient::CallOnce(const std::string& endpoint,
                              const ReplMessage& req, ReplMessage* resp,
                              uint64_t timeout_ms) {
  FramedClient client;
  const uint64_t start = NowMillis();
  Status s = client.Connect(endpoint, timeout_ms);
  if (!s.ok()) return s;
  const uint64_t elapsed = NowMillis() - start;
  const uint64_t remain = elapsed >= timeout_ms ? 1 : timeout_ms - elapsed;
  return client.Call(req, resp, remain);
}

}  // namespace cluster
}  // namespace tardis
