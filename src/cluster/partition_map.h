// PartitionMap: the static hash-range keyspace partitioning of a TARDiS
// cluster (§6.4's data-partitioning sketch made real — see DESIGN.md §10).
//
// Keys hash with CRC-32C into a 32-bit ring [0, 2^32); the map splits the
// ring into contiguous, covering, non-overlapping ranges, one per
// partition group. Each group is a full tardisd replica set with its own
// State DAG, WAL, commit log and gossip; routing a key is a binary search
// over the range bounds — no coordination, no per-key state.
//
// The map is immutable once built (static partitioning); the stateless
// router and every daemon hold identical copies, distributed as the
// serialized form, so routing decisions are stable across processes and
// restarts. Serialize/Deserialize round-trips bit-exactly: the same map
// bytes always route the same key to the same partition.

#ifndef TARDIS_CLUSTER_PARTITION_MAP_H_
#define TARDIS_CLUSTER_PARTITION_MAP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace tardis {
namespace cluster {

class PartitionMap {
 public:
  /// A map with `partitions` >= 1 equal-width hash ranges.
  static PartitionMap Uniform(uint32_t partitions);

  /// A map from explicit ascending split points: partition i covers
  /// [splits[i-1], splits[i]) with an implicit first bound of 0 and a
  /// final bound of 2^32. `splits` therefore has partition_count - 1
  /// entries, each in (0, 2^32), strictly ascending. An empty vector is
  /// the single-partition map.
  static StatusOr<PartitionMap> FromSplitPoints(std::vector<uint64_t> splits);

  uint32_t partition_count() const {
    return static_cast<uint32_t>(bounds_.size()) - 1;
  }

  /// The ring position of `key` (CRC-32C).
  static uint32_t HashKey(const Slice& key);

  /// The partition owning ring position `hash`.
  uint32_t PartitionForHash(uint32_t hash) const;

  uint32_t PartitionForKey(const Slice& key) const {
    return PartitionForHash(HashKey(key));
  }

  /// [start, end) of partition `i` on the ring; end is exclusive and may
  /// be 2^32 (hence uint64_t).
  std::pair<uint64_t, uint64_t> Range(uint32_t i) const {
    return {bounds_[i], bounds_[i + 1]};
  }

  /// Compact binary form (varint-coded bounds). Deserialize(Serialize())
  /// routes every key identically to the original.
  std::string Serialize() const;
  static StatusOr<PartitionMap> Deserialize(Slice in);

  bool operator==(const PartitionMap& o) const { return bounds_ == o.bounds_; }

 private:
  explicit PartitionMap(std::vector<uint64_t> bounds)
      : bounds_(std::move(bounds)) {}

  /// Ascending ring bounds; bounds_[0] == 0, bounds_.back() == 2^32,
  /// partition i owns [bounds_[i], bounds_[i+1]). Size >= 2 always.
  std::vector<uint64_t> bounds_;
};

}  // namespace cluster
}  // namespace tardis

#endif  // TARDIS_CLUSTER_PARTITION_MAP_H_
