#include "cluster/twopc.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "core/constraints.h"
#include "fault/fault_points.h"
#include "net/wire.h"
#include "obs/stage.h"
#include "util/clock.h"
#include "util/logging.h"

namespace tardis {
namespace cluster {

namespace {

ReplMessage MakeAck(ReplMessage::Type type, uint64_t txn_id,
                    TwoPhaseDecision decision, bool forked) {
  ReplMessage ack;
  ack.type = type;
  ack.txn_id = txn_id;
  ack.decision = static_cast<uint8_t>(decision);
  ack.forked = forked;
  return ack;
}

}  // namespace

const char* TwoPhaseDecisionName(TwoPhaseDecision d) {
  switch (d) {
    case TwoPhaseDecision::kUnknown:
      return "unknown";
    case TwoPhaseDecision::kCommit:
      return "commit";
    case TwoPhaseDecision::kAbort:
      return "abort";
  }
  return "?";
}

TwoPhaseParticipant::TwoPhaseParticipant(TardisStore* store,
                                         TwoPhaseOptions options)
    : store_(store),
      options_(std::move(options)),
      log_path_(options_.dir.empty() ? "" : options_.dir + "/twopc.log") {
  obs::MetricsRegistry* registry = store_->metrics();
  prepares_ = registry->RegisterCounter(
      "tardis_2pc_prepares", "Cross-partition prepares handled",
      {{"role", "participant"}});
  forked_commits_ = registry->RegisterCounter(
      "tardis_2pc_forked_commits",
      "2PC decide-commits that forked the DAG instead of aborting",
      {{"role", "participant"}});
  registry->RegisterCallbackGauge(
      "tardis_2pc_in_doubt", "Prepared transactions awaiting a decision",
      [this] {
        return static_cast<double>(in_doubt_count());
      },
      {}, this);
  stage_wal_fsync_us_ = obs::RegisterStageHistogram(registry, "wal_fsync");
  stage_decide_apply_us_ =
      obs::RegisterStageHistogram(registry, "decide_apply");
}

TwoPhaseParticipant::~TwoPhaseParticipant() {
  store_->metrics()->DropCallbacks(this);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, p] : pending_) {
    if (p.staged) p.staged->Abort();
  }
  if (log_fd_ >= 0) ::close(log_fd_);
}

Status TwoPhaseParticipant::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_path_.empty()) return Status::OK();

  // Replay whatever log survived the last run.
  std::string contents;
  {
    FILE* f = fopen(log_path_.c_str(), "rb");
    if (f != nullptr) {
      char buf[8192];
      size_t n;
      while ((n = fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
      fclose(f);
    }
  }
  Slice rest(contents);
  const uint64_t now = NowMillis();
  size_t torn = 0;
  while (!rest.empty()) {
    ReplMessage msg;
    size_t consumed = 0;
    Status s = DecodeFrame(rest, &msg, &consumed);
    if (!s.ok() || consumed == 0) {
      // Corrupt or incomplete tail: the crash interrupted an append.
      // Everything acked is in the complete prefix; drop the tail.
      torn = rest.size();
      break;
    }
    rest.remove_prefix(consumed);
    switch (msg.type) {
      case ReplMessage::Type::kPrepare: {
        Pending p;
        p.prepare = std::move(msg);
        p.prepared_at_ms = now;  // restart the grace clock
        pending_[p.prepare.txn_id] = std::move(p);
        break;
      }
      case ReplMessage::Type::kDecide:
        pending_.erase(msg.txn_id);
        decided_[msg.txn_id] = {static_cast<TwoPhaseDecision>(msg.decision),
                                now};
        break;
      default:
        return Status::Corruption("unexpected frame in twopc.log");
    }
  }
  if (torn > 0) {
    // Truncate the torn bytes away, not just skip them in memory: with
    // O_APPEND the next record would land *after* the corrupt frame, and
    // the following recovery would stop there — silently dropping every
    // acked record written since.
    TARDIS_WARN("twopc: truncating %zu torn trailing bytes of %s", torn,
                log_path_.c_str());
    if (::truncate(log_path_.c_str(),
                   static_cast<off_t>(contents.size() - torn)) != 0) {
      return Status::IOError("truncate " + log_path_ + ": " +
                             strerror(errno));
    }
  }
  if (!pending_.empty()) {
    TARDIS_INFO("twopc: recovered %zu in-doubt transaction(s)",
                pending_.size());
  }

  log_fd_ = open(log_path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
  if (log_fd_ < 0) {
    return Status::IOError("open " + log_path_ + ": " + strerror(errno));
  }
  return Status::OK();
}

Status TwoPhaseParticipant::AppendLog(const ReplMessage& msg) {
  if (log_fd_ < 0) return Status::OK();  // in-memory participant
  obs::StageTimer timer(stage_wal_fsync_us_, "wal_fsync");
  std::string frame;
  EncodeFrame(msg, &frame);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::write(log_fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("twopc.log write: " +
                             std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  if (fsync(log_fd_) != 0) {
    return Status::IOError("twopc.log fsync: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status TwoPhaseParticipant::HandlePrepare(const ReplMessage& msg,
                                          ReplMessage* reply) {
  std::lock_guard<std::mutex> lock(mu_);
  prepares_->Increment();

  // Duplicate prepare (router retry): re-ack the standing vote.
  if (pending_.count(msg.txn_id) != 0) {
    *reply = MakeAck(ReplMessage::Type::kPrepareAck, msg.txn_id,
                     TwoPhaseDecision::kCommit, false);
    return Status::OK();
  }
  auto decided = decided_.find(msg.txn_id);
  if (decided != decided_.end()) {
    // Already decided (late retry after the decide): vote matches fate.
    *reply = MakeAck(ReplMessage::Type::kPrepareAck, msg.txn_id,
                     decided->second.decision, false);
    return Status::OK();
  }

  // Persist before staging: an acked prepare must survive a crash.
  Status s = [&] {
    TARDIS_FAULT_POINT("twopc.prepare.persist");
    return AppendLog(msg);
  }();
  if (!s.ok()) {
    TARDIS_WARN("twopc: prepare %llu persist failed, voting abort: %s",
                static_cast<unsigned long long>(msg.txn_id),
                s.ToString().c_str());
    decided_[msg.txn_id] = {TwoPhaseDecision::kAbort, NowMillis()};
    *reply = MakeAck(ReplMessage::Type::kPrepareAck, msg.txn_id,
                     TwoPhaseDecision::kAbort, false);
    return Status::OK();
  }

  // Stage the write set as an open local transaction. Staging failures
  // after a persisted prepare are fine: the decide path falls back to a
  // fresh transaction, exactly like post-crash recovery.
  Pending p;
  p.prepare = msg;
  p.prepared_at_ms = NowMillis();
  p.session = store_->CreateSession();
  auto txn = store_->Begin(p.session.get());
  if (txn.ok()) {
    // A sessioned prepare commits tagged, so the resulting state feeds
    // every site's exactly-once dedup table (DESIGN.md §13).
    (*txn)->SetSessionTag(msg.session_id, msg.session_seq);
    bool staged = true;
    for (const auto& [key, value] : msg.commit.writes) {
      const Slice v = value ? Slice(*value) : Slice();
      if (!(*txn)->Put(key, v).ok()) {
        staged = false;
        break;
      }
    }
    if (staged) {
      p.staged = std::move(*txn);
    } else {
      (*txn)->Abort();
    }
  }
  pending_[msg.txn_id] = std::move(p);

  *reply = MakeAck(ReplMessage::Type::kPrepareAck, msg.txn_id,
                   TwoPhaseDecision::kCommit, false);
  return Status::OK();
}

Status TwoPhaseParticipant::ApplyDecisionLocked(uint64_t txn_id, Pending* p,
                                                TwoPhaseDecision decision,
                                                bool* forked) {
  obs::StageTimer stage(stage_decide_apply_us_, "decide_apply");
  *forked = false;
  if (decision == TwoPhaseDecision::kCommit) {
    TARDIS_FAULT_POINT("twopc.decide.apply");
    const uint64_t forks_before = store_->stats().branches_created;
    // First-committer-wins on the write sets: a commit that landed on our
    // keys since prepare is a real conflict, and branch-on-conflict means
    // the decide-commit FORKS the DAG at the pre-conflict state instead
    // of aborting (SI's StepOk fails, its FinalOk never does). The
    // default Serializability constraint would silently ripple a
    // write-only transaction past the conflicting commit.
    Status s;
    if (p->staged) {
      s = p->staged->Commit(SnapshotIsolationEnd());
      p->staged.reset();
    } else {
      // Crash recovery (or staging failed at prepare time): re-apply the
      // logged write set through a fresh transaction.
      auto session = store_->CreateSession();
      auto txn = store_->Begin(session.get());
      if (!txn.ok()) {
        s = txn.status();
      } else {
        // The logged prepare carries the session tag, so even a crash-
        // recovered decide-commit lands tagged and dedupable.
        (*txn)->SetSessionTag(p->prepare.session_id,
                              p->prepare.session_seq);
        s = Status::OK();
        for (const auto& [key, value] : p->prepare.commit.writes) {
          const Slice v = value ? Slice(*value) : Slice();
          s = (*txn)->Put(key, v);
          if (!s.ok()) break;
        }
        if (s.ok()) {
          s = (*txn)->Commit(SnapshotIsolationEnd());
        } else {
          (*txn)->Abort();
        }
      }
    }
    if (!s.ok()) {
      // Leave the transaction in doubt; the router (or the resolver) will
      // retry the decide. Acking a commit we failed to apply would lose
      // the write.
      return s;
    }
    *forked = store_->stats().branches_created > forks_before;
    if (*forked) forked_commits_->Increment();
  } else {
    if (p->staged) {
      p->staged->Abort();
      p->staged.reset();
    }
  }

  // Apply-THEN-log: a crash between the two re-applies the decide on
  // recovery (idempotent); the reverse order could ack a commit whose
  // writes never landed.
  Status s = RecordDecisionLocked(txn_id, decision);
  if (!s.ok()) {
    TARDIS_WARN("twopc: decide %llu logged only in memory: %s",
                static_cast<unsigned long long>(txn_id),
                s.ToString().c_str());
    // The apply landed; keep serving the decision from memory. A crash
    // now re-enters in-doubt and cooperative termination re-resolves it.
    decided_[txn_id] = {decision, NowMillis()};
  }
  pending_.erase(txn_id);
  return Status::OK();
}

Status TwoPhaseParticipant::RecordDecisionLocked(uint64_t txn_id,
                                                 TwoPhaseDecision decision) {
  ReplMessage record;
  record.type = ReplMessage::Type::kDecide;
  record.txn_id = txn_id;
  record.decision = static_cast<uint8_t>(decision);
  Status s = AppendLog(record);
  if (!s.ok()) return s;
  decided_[txn_id] = {decision, NowMillis()};
  return Status::OK();
}

Status TwoPhaseParticipant::HandleDecide(const ReplMessage& msg,
                                         ReplMessage* reply) {
  const auto decision = static_cast<TwoPhaseDecision>(msg.decision);
  if (decision != TwoPhaseDecision::kCommit &&
      decision != TwoPhaseDecision::kAbort) {
    return Status::InvalidArgument("decide carries no decision");
  }
  std::lock_guard<std::mutex> lock(mu_);

  auto decided = decided_.find(msg.txn_id);
  if (decided != decided_.end()) {
    // Duplicate decide: idempotent re-ack.
    *reply = MakeAck(ReplMessage::Type::kDecideAck, msg.txn_id,
                     decided->second.decision, false);
    return Status::OK();
  }
  auto it = pending_.find(msg.txn_id);
  if (it == pending_.end()) {
    // Never prepared here (or already presumed aborted and forgotten).
    // Answer abort for aborts; a commit for an unknown txn is a protocol
    // violation worth surfacing.
    if (decision == TwoPhaseDecision::kAbort) {
      *reply = MakeAck(ReplMessage::Type::kDecideAck, msg.txn_id,
                       TwoPhaseDecision::kAbort, false);
      return Status::OK();
    }
    return Status::InvalidArgument("decide-commit for unprepared txn");
  }

  bool forked = false;
  Status s = ApplyDecisionLocked(msg.txn_id, &it->second, decision, &forked);
  if (!s.ok()) return s;
  *reply = MakeAck(ReplMessage::Type::kDecideAck, msg.txn_id, decision,
                   forked);
  return Status::OK();
}

Status TwoPhaseParticipant::HandleTxnStatus(const ReplMessage& msg,
                                            ReplMessage* reply) {
  std::lock_guard<std::mutex> lock(mu_);
  TwoPhaseDecision d;
  auto decided = decided_.find(msg.txn_id);
  if (decided != decided_.end()) {
    d = decided->second.decision;
  } else if (pending_.count(msg.txn_id) != 0) {
    d = TwoPhaseDecision::kUnknown;  // in doubt here too
  } else {
    // Presumed abort: no trace of it. The querying peer will act on this
    // answer (abort its prepared transaction), so the presumption must
    // be binding BEFORE it leaves this process — a router whose prepare
    // arrives here afterwards must be voted abort, not commit, or the
    // peer's abort and our commit split the transaction. If we cannot
    // persist the presumption, answer kUnknown instead: the peer simply
    // stays in doubt and retries.
    d = TwoPhaseDecision::kAbort;
    Status s = RecordDecisionLocked(msg.txn_id, TwoPhaseDecision::kAbort);
    if (!s.ok()) {
      TARDIS_WARN("twopc: cannot persist presumed abort for txn %llu: %s",
                  static_cast<unsigned long long>(msg.txn_id),
                  s.ToString().c_str());
      d = TwoPhaseDecision::kUnknown;
    }
  }
  *reply = MakeAck(ReplMessage::Type::kDecideAck, msg.txn_id, d, false);
  return Status::OK();
}

size_t TwoPhaseParticipant::ResolveInDoubt() {
  // Snapshot the overdue transactions, then query peers without holding
  // mu_ (query_peer does network IO; handlers must stay responsive).
  struct Overdue {
    uint64_t txn_id;
    std::vector<std::string> peers;
  };
  std::vector<Overdue> overdue;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = NowMillis();
    GcDecidedLocked(now);
    for (const auto& [id, p] : pending_) {
      if (now - p.prepared_at_ms < options_.resolve_grace_ms) continue;
      Overdue o;
      o.txn_id = id;
      for (const std::string& ep : p.prepare.endpoints) {
        if (ep != options_.self_endpoint) o.peers.push_back(ep);
      }
      overdue.push_back(std::move(o));
    }
  }
  if (overdue.empty() || !options_.query_peer) return 0;

  size_t resolved = 0;
  for (const Overdue& o : overdue) {
    TwoPhaseDecision outcome = TwoPhaseDecision::kUnknown;
    bool all_reachable = true;
    for (const std::string& peer : o.peers) {
      TwoPhaseDecision d = TwoPhaseDecision::kUnknown;
      Status s = options_.query_peer(peer, o.txn_id, &d);
      if (!s.ok()) {
        all_reachable = false;
        continue;
      }
      if (d == TwoPhaseDecision::kCommit || d == TwoPhaseDecision::kAbort) {
        outcome = d;
        break;  // any decided peer is authoritative
      }
    }
    if (outcome == TwoPhaseDecision::kUnknown) {
      if (!all_reachable) continue;  // stay in doubt, retry later
      // Every peer reachable and none saw a decide: the router cannot
      // have decided commit (it needs all our acks first, and a commit
      // decision reaches at least one participant before the router can
      // consider the txn done). Presume abort.
      outcome = TwoPhaseDecision::kAbort;
    }

    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(o.txn_id);
    if (it == pending_.end()) continue;  // raced with a live decide
    bool forked = false;
    if (ApplyDecisionLocked(o.txn_id, &it->second, outcome, &forked).ok()) {
      TARDIS_INFO("twopc: resolved in-doubt txn %llu -> %s%s",
                  static_cast<unsigned long long>(o.txn_id),
                  TwoPhaseDecisionName(outcome), forked ? " (forked)" : "");
      resolved++;
    }
  }
  return resolved;
}

void TwoPhaseParticipant::GcDecidedLocked(uint64_t now_ms) {
  size_t dropped = 0;
  for (auto it = decided_.begin(); it != decided_.end();) {
    if (now_ms - it->second.decided_at_ms > options_.decided_retention_ms) {
      it = decided_.erase(it);
      dropped++;
    } else {
      ++it;
    }
  }
  if (dropped == 0 || log_fd_ < 0) return;
  Status s = CompactLogLocked();
  if (!s.ok()) {
    TARDIS_WARN("twopc: log compaction failed: %s", s.ToString().c_str());
    return;
  }
  TARDIS_INFO("twopc: dropped %zu decided record(s), compacted %s", dropped,
              log_path_.c_str());
}

Status TwoPhaseParticipant::CompactLogLocked() {
  const std::string tmp_path = log_path_ + ".tmp";
  std::string image;
  for (const auto& [id, p] : pending_) EncodeFrame(p.prepare, &image);
  for (const auto& [id, d] : decided_) {
    ReplMessage record;
    record.type = ReplMessage::Type::kDecide;
    record.txn_id = id;
    record.decision = static_cast<uint8_t>(d.decision);
    EncodeFrame(record, &image);
  }

  const int tmp_fd =
      open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    return Status::IOError("open " + tmp_path + ": " + strerror(errno));
  }
  size_t off = 0;
  while (off < image.size()) {
    const ssize_t n = ::write(tmp_fd, image.data() + off, image.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IOError("write " + tmp_path + ": " +
                                 std::string(strerror(errno)));
      ::close(tmp_fd);
      ::unlink(tmp_path.c_str());
      return s;
    }
    off += static_cast<size_t>(n);
  }
  if (fsync(tmp_fd) != 0 ||
      rename(tmp_path.c_str(), log_path_.c_str()) != 0) {
    Status s = Status::IOError("compact " + log_path_ + ": " +
                               std::string(strerror(errno)));
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    return s;
  }
  // The old fd now points at the unlinked file; switch appends over to
  // the compacted one.
  ::close(log_fd_);
  log_fd_ = tmp_fd;
  return Status::OK();
}

size_t TwoPhaseParticipant::in_doubt_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

TwoPhaseDecision TwoPhaseParticipant::DecisionFor(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = decided_.find(txn_id);
  return it == decided_.end() ? TwoPhaseDecision::kUnknown
                              : it->second.decision;
}

}  // namespace cluster
}  // namespace tardis
