// Router: the stateless front-end of a partitioned TARDiS cluster
// (DESIGN.md §10). Clients speak the same line protocol as tardisd; the
// router hashes keys through the PartitionMap and forwards each command
// to the owning partition's daemon over its coordination port, using the
// CRC32-framed wire codec.
//
// Two paths:
//
//  * Fast path — every key of the command lives in one partition. The
//    command is forwarded as a single kRoute frame and executed there as
//    an ordinary local transaction: zero extra coordination, no 2PC
//    frames on the wire (asserted by the grid e2e via the router
//    metrics).
//  * 2PC path — a multi-key write spanning partitions. The router runs
//    two-phase commit (kPrepare/kDecide) against every participant; the
//    participants stage and fork TARDiS-style (see twopc.h), so the only
//    abort source is a failed/unreachable prepare.
//
// Statelessness: the router persists nothing. Transaction ids carry a
// per-instance random high half over a counter low half so they stay
// unique across router restarts and concurrent router instances, and a
// router crash mid-2PC is recovered by the participants' cooperative
// termination, not by the router. Killing the router at any point loses
// no acknowledged write.
//
// Not thread-safe: the tardis-router binary serializes commands through
// one handler thread (coordination traffic is not the data hot path —
// that is the per-partition gossip mesh).

#ifndef TARDIS_CLUSTER_ROUTER_H_
#define TARDIS_CLUSTER_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/framed_client.h"
#include "cluster/partition_map.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace tardis {
namespace cluster {

struct RouterOptions {
  /// Coordination endpoint ("host:port") of each partition's daemon,
  /// indexed by partition id; size must equal map.partition_count().
  std::vector<std::string> coord_endpoints;
  /// Per-frame call deadline.
  uint64_t call_timeout_ms = 2000;
  /// End-to-end budget for one 2PC commit. Keep well below the
  /// participants' resolve_grace_ms: a participant must never presume
  /// abort while a live router is still inside its decision window.
  uint64_t txn_deadline_ms = 4000;
  /// Head-based trace sampling: every Nth client request without its own
  /// trace header starts a new sampled trace (0 = off). Only effective
  /// while the tracer is enabled; also settable at runtime via
  /// `trace sample <n>`.
  uint64_t trace_sample = 0;
};

class Router {
 public:
  /// Registers the router metrics on `registry` (not owned, must outlive
  /// the router).
  Router(PartitionMap map, RouterOptions options,
         obs::MetricsRegistry* registry);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Executes one line-protocol command and returns the reply (no
  /// trailing newline; multi-line replies are END-terminated like
  /// tardisd's). Sets *close_conn for quit.
  ///
  /// Commands:
  ///   ping                      -> PONG (answered locally)
  ///   get <key> / put <key> <v> -> forwarded to the owning partition
  ///   mput <k> <v> [<k> <v>]... -> atomic multi-put; fast path when all
  ///                                keys share a partition, 2PC otherwise
  ///                                -> OK TXN <id> [FORKED]
  ///   partition <key>           -> PARTITION <id> (routing introspection)
  ///   merge [counter|lww]       -> forwarded to every partition
  ///   health                    -> aggregated per-partition health, END
  ///   metrics [prom|table]      -> the router's own registry, END
  ///   metrics cluster           -> every partition's exposition + the
  ///                                router's, merged (counters summed,
  ///                                histogram buckets merged), END
  ///   trace start|stop          -> enable/disable tracing here and on
  ///                                every partition, END
  ///   trace sample <n>          -> sample every Nth request (0 = off)
  ///   trace json                -> the router's own ring dump, END
  ///   trace collect             -> fan out `trace json` and stitch all
  ///                                rings into one Chrome trace, END
  ///   2pc_delay <ms>            -> test hook: sleep between prepare and
  ///                                decide of subsequent 2PC commits
  ///   quit                      -> BYE
  ///
  /// A request may carry a leading trace-context header token
  /// ("*T<trace>/<span>/<flags>", obs::StripTraceHeader); the router then
  /// logs its spans under that trace and propagates the context on every
  /// coordination frame it sends.
  ///
  /// After the trace header, a request may carry an exactly-once session
  /// header ("*S...", DESIGN.md §13). Forwarded get/put lines keep the
  /// header (the owning daemon dedups and checks floors); mput carries
  /// the tag on its kRoute/kPrepare frames, and a sessioned
  /// cross-partition mput derives its 2PC txn id from the request id so
  /// a retry resolves the in-doubt transaction instead of starting a
  /// second one. A corrupt or oversized header is rejected with a
  /// retryable "ERR HEADER ..." (never silently stripped).
  std::string Handle(const std::string& line, bool* close_conn);

  const PartitionMap& map() const { return map_; }

 private:
  struct WriteOp {
    std::string key;
    std::string value;
  };

  /// Sends `msg` to partition `p`, reconnecting once on a dead cached
  /// connection. When deadline_ms is non-zero every wire operation's
  /// timeout is clipped to the remaining budget and the call fails fast
  /// once it is spent (the 2PC prepare phase must end strictly before
  /// the participants' presumed-abort grace period).
  Status CallPartition(uint32_t p, const ReplMessage& msg, ReplMessage* resp,
                       uint64_t deadline_ms = 0);

  std::string ForwardLine(uint32_t partition, const std::string& line);
  std::string HandleMultiPut(const std::vector<WriteOp>& writes,
                             const SessionHeader& session);
  /// The 2PC path; `by_partition[i]` is partition_ids[i]'s write subset.
  std::string CommitAcrossPartitions(
      const std::vector<uint32_t>& partition_ids,
      const std::vector<std::vector<WriteOp>>& by_partition,
      const SessionHeader& session);
  std::string AggregateHealth();
  /// The dispatch body behind Handle, running inside the request's trace
  /// context/span with the parsed (possibly empty) session header.
  std::string Dispatch(const std::string& line, bool* close_conn,
                       const SessionHeader& session);
  std::string HandleTraceCommand(const std::string& sub);
  std::string CollectClusterTraces();
  std::string ClusterMetrics();

  const PartitionMap map_;
  const RouterOptions options_;
  obs::MetricsRegistry* const registry_;
  std::vector<std::unique_ptr<FramedClient>> clients_;  // one per partition

  uint64_t next_txn_id_;  ///< random high half, counter low half (TxnIdSeed)
  uint64_t decide_delay_ms_ = 0;  ///< 2pc_delay test hook
  uint64_t sample_every_ = 0;     ///< trace 1-in-N sampling (0 = off)
  uint64_t sample_counter_ = 0;

  obs::Counter* requests_fast_ = nullptr;
  obs::Counter* requests_2pc_ = nullptr;
  obs::Counter* prepares_ = nullptr;
  obs::Counter* forked_commits_ = nullptr;
  obs::Counter* header_rejected_ = nullptr;
  obs::HistogramMetric* prepare_rtt_us_ = nullptr;
};

}  // namespace cluster
}  // namespace tardis

#endif  // TARDIS_CLUSTER_ROUTER_H_
