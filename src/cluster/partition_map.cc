#include "cluster/partition_map.h"

#include <algorithm>

#include "util/coding.h"
#include "util/crc32.h"

namespace tardis {
namespace cluster {

namespace {
constexpr uint64_t kRingEnd = uint64_t{1} << 32;
constexpr uint8_t kMapVersion = 1;
}  // namespace

PartitionMap PartitionMap::Uniform(uint32_t partitions) {
  if (partitions == 0) partitions = 1;
  std::vector<uint64_t> bounds;
  bounds.reserve(partitions + 1);
  for (uint32_t i = 0; i < partitions; i++) {
    bounds.push_back(kRingEnd * i / partitions);
  }
  bounds.push_back(kRingEnd);
  return PartitionMap(std::move(bounds));
}

StatusOr<PartitionMap> PartitionMap::FromSplitPoints(
    std::vector<uint64_t> splits) {
  std::vector<uint64_t> bounds;
  bounds.reserve(splits.size() + 2);
  bounds.push_back(0);
  for (uint64_t s : splits) {
    if (s == 0 || s >= kRingEnd) {
      return Status::InvalidArgument("split point outside (0, 2^32)");
    }
    if (s <= bounds.back()) {
      return Status::InvalidArgument("split points not strictly ascending");
    }
    bounds.push_back(s);
  }
  bounds.push_back(kRingEnd);
  return PartitionMap(std::move(bounds));
}

uint32_t PartitionMap::HashKey(const Slice& key) {
  return Crc32c(key.data(), key.size());
}

uint32_t PartitionMap::PartitionForHash(uint32_t hash) const {
  // First bound strictly greater than hash; its predecessor's index is
  // the owning partition. bounds_[0] == 0 <= hash < 2^32 == bounds_.back()
  // guarantees the iterator lands strictly inside the vector.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(),
                                   static_cast<uint64_t>(hash));
  return static_cast<uint32_t>(it - bounds_.begin()) - 1;
}

std::string PartitionMap::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(kMapVersion));
  // The interior split points fully determine the map (the outer bounds
  // are implicit), matching FromSplitPoints.
  PutVarint64(&out, bounds_.size() - 2);
  for (size_t i = 1; i + 1 < bounds_.size(); i++) {
    PutVarint64(&out, bounds_[i]);
  }
  return out;
}

StatusOr<PartitionMap> PartitionMap::Deserialize(Slice in) {
  if (in.empty()) return Status::Corruption("empty partition map");
  const uint8_t version = static_cast<uint8_t>(in[0]);
  if (version != kMapVersion) {
    return Status::Corruption("unsupported partition map version " +
                              std::to_string(version));
  }
  in.remove_prefix(1);
  uint64_t nsplits = 0;
  if (!GetVarint64(&in, &nsplits) || nsplits > in.size()) {
    return Status::Corruption("bad split count");
  }
  std::vector<uint64_t> splits;
  splits.reserve(static_cast<size_t>(nsplits));
  for (uint64_t i = 0; i < nsplits; i++) {
    uint64_t s = 0;
    if (!GetVarint64(&in, &s)) return Status::Corruption("bad split point");
    splits.push_back(s);
  }
  if (!in.empty()) return Status::Corruption("trailing bytes in map");
  auto map = FromSplitPoints(std::move(splits));
  if (!map.ok()) return Status::Corruption(map.status().ToString());
  return map;
}

}  // namespace cluster
}  // namespace tardis
