#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <sstream>
#include <thread>

#include "fault/fault_points.h"
#include "cluster/twopc.h"
#include "obs/exposition.h"
#include "obs/stage.h"
#include "obs/trace_stitch.h"
#include "util/clock.h"
#include "util/logging.h"

namespace tardis {
namespace cluster {

namespace {

/// Stamps the thread's current trace context onto an outgoing
/// coordination frame, so the receiving daemon's spans join this trace.
void AttachTrace(ReplMessage* msg) {
  const obs::TraceContext& ctx = obs::CurrentTraceContext();
  msg->trace_id = ctx.trace_id;
  msg->trace_span = ctx.span_id;
  msg->trace_sampled = ctx.sampled;
}

/// Multi-line daemon replies arrive END-terminated; the fan-out
/// aggregators re-terminate themselves.
std::string StripEndMarker(std::string body) {
  if (body == "END") return "";
  const size_t n = body.size();
  if (n >= 4 && body.compare(n - 4, 4, "\nEND") == 0) body.erase(n - 4);
  if (!body.empty() && body.back() != '\n') body.push_back('\n');
  return body;
}

/// Txn ids must not repeat across router instances or restarts (a
/// participant may still hold an old id in pending_/decided_ and would
/// answer a new transaction with the stale decision). Wall-clock seeds
/// alone collide — two routers started in the same microsecond, or a
/// restart landing inside a predecessor's id range — so the high 32
/// bits are random per instance and the low 32 bits count transactions.
uint64_t TxnIdSeed() {
  std::random_device rd;
  const uint64_t now_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  // Fold the clock in as well in case random_device is weak on this
  // platform; only the high half seeds, the low half stays a counter.
  const uint64_t hi =
      (static_cast<uint64_t>(rd()) ^ (now_us * 0x9e3779b97f4a7c15ULL)) &
      0xffffffffULL;
  return hi << 32;
}

}  // namespace

Router::Router(PartitionMap map, RouterOptions options,
               obs::MetricsRegistry* registry)
    : map_(std::move(map)),
      options_(std::move(options)),
      registry_(registry),
      next_txn_id_(TxnIdSeed()),
      sample_every_(options_.trace_sample) {
  clients_.resize(map_.partition_count());
  for (auto& c : clients_) c = std::make_unique<FramedClient>();
  requests_fast_ = registry->RegisterCounter(
      "tardis_router_requests", "Client commands handled by the router",
      {{"path", "fast"}});
  requests_2pc_ = registry->RegisterCounter(
      "tardis_router_requests", "Client commands handled by the router",
      {{"path", "2pc"}});
  prepares_ = registry->RegisterCounter(
      "tardis_2pc_prepares", "Cross-partition prepares sent",
      {{"role", "router"}});
  forked_commits_ = registry->RegisterCounter(
      "tardis_2pc_forked_commits",
      "2PC decide-commits that forked a participant DAG",
      {{"role", "router"}});
  header_rejected_ = registry->RegisterCounter(
      "tardis_session_header_rejected",
      "Requests rejected for a corrupt or oversized *S session header");
  prepare_rtt_us_ = obs::RegisterStageHistogram(registry, "prepare_rtt");
}

Router::~Router() = default;

Status Router::CallPartition(uint32_t p, const ReplMessage& msg,
                             ReplMessage* resp, uint64_t deadline_ms) {
  // Each wire operation (dial or call) gets at most the per-call timeout,
  // clipped to whatever remains of the caller's deadline: a CallPartition
  // that could block for several full timeouts (connect + call + re-dial
  // + call) would otherwise let the prepare phase outlive the
  // participants' presumed-abort grace period.
  const auto op_timeout = [&]() -> uint64_t {
    if (deadline_ms == 0) return options_.call_timeout_ms;
    const uint64_t now = NowMillis();
    if (now >= deadline_ms) return 0;
    return std::min<uint64_t>(options_.call_timeout_ms, deadline_ms - now);
  };
  const Status overdue = Status::Aborted("2pc deadline exceeded");

  FramedClient* client = clients_[p].get();
  uint64_t t;
  if (!client->connected()) {
    if ((t = op_timeout()) == 0) return overdue;
    Status s = client->Connect(options_.coord_endpoints[p], t);
    if (!s.ok()) return s;
    if ((t = op_timeout()) == 0) return overdue;
    return client->Call(msg, resp, t);
  }
  if ((t = op_timeout()) == 0) return overdue;
  Status s = client->Call(msg, resp, t);
  if (s.ok()) return s;
  // The cached connection may have died while idle (daemon restart):
  // one re-dial before giving up.
  if ((t = op_timeout()) == 0) return overdue;
  s = client->Connect(options_.coord_endpoints[p], t);
  if (!s.ok()) return s;
  if ((t = op_timeout()) == 0) return overdue;
  return client->Call(msg, resp, t);
}

std::string Router::ForwardLine(uint32_t partition, const std::string& line) {
  ReplMessage req;
  req.type = ReplMessage::Type::kRoute;
  req.text = line;
  AttachTrace(&req);
  ReplMessage resp;
  Status s = CallPartition(partition, req, &resp);
  if (!s.ok()) return "ERR partition " + std::to_string(partition) + " " +
                       s.ToString();
  if (resp.type != ReplMessage::Type::kRouteReply) return "ERR bad reply type";
  return resp.text;
}

std::string Router::HandleMultiPut(const std::vector<WriteOp>& writes,
                                   const SessionHeader& session) {
  // Group the write set by owning partition, preserving first-seen order.
  std::vector<uint32_t> partition_ids;
  std::vector<std::vector<WriteOp>> by_partition;
  for (const WriteOp& w : writes) {
    const uint32_t p = map_.PartitionForKey(w.key);
    size_t slot = partition_ids.size();
    for (size_t i = 0; i < partition_ids.size(); i++) {
      if (partition_ids[i] == p) {
        slot = i;
        break;
      }
    }
    if (slot == partition_ids.size()) {
      partition_ids.push_back(p);
      by_partition.emplace_back();
    }
    by_partition[slot].push_back(w);
  }

  if (partition_ids.size() == 1) {
    // Fast path: one partition, one ordinary local transaction there.
    requests_fast_->Increment();
    ReplMessage req;
    req.type = ReplMessage::Type::kRoute;
    AttachTrace(&req);
    req.session_id = session.session_id;
    req.session_seq = session.seq;
    for (const WriteOp& w : by_partition[0]) {
      req.commit.writes.emplace_back(
          w.key, std::make_shared<const std::string>(w.value));
    }
    ReplMessage resp;
    Status s = CallPartition(partition_ids[0], req, &resp);
    if (!s.ok()) return "ERR " + s.ToString();
    return resp.text;
  }
  requests_2pc_->Increment();
  return CommitAcrossPartitions(partition_ids, by_partition, session);
}

std::string Router::CommitAcrossPartitions(
    const std::vector<uint32_t>& partition_ids,
    const std::vector<std::vector<WriteOp>>& by_partition,
    const SessionHeader& session) {
  // A sessioned mput derives its txn id from the client request identity:
  // a retry re-runs 2PC under the SAME id, so participants that already
  // prepared or decided re-ack idempotently and the retry converges on
  // the original outcome instead of committing a second transaction.
  const uint64_t txn_id =
      session.session_id != 0
          ? DeriveSessionTxnId(session.session_id, session.seq,
                               session.attempt)
          : next_txn_id_++;
  const uint64_t deadline_ms = NowMillis() + options_.txn_deadline_ms;

  std::vector<std::string> endpoints;
  for (uint32_t p : partition_ids) {
    endpoints.push_back(options_.coord_endpoints[p]);
  }

  // Phase 1: prepare every participant, under the end-to-end deadline.
  // Any failure, abort vote, or blown deadline aborts the transaction
  // everywhere. The deadline must hold strictly below the participants'
  // resolve_grace_ms: a participant that prepared early in a slow phase 1
  // starts presuming abort after its grace period, and collecting its
  // vote after that point would commit a transaction it already buried.
  std::vector<uint32_t> prepared;
  Status failure;
  for (size_t i = 0; i < partition_ids.size() && failure.ok(); i++) {
    if (NowMillis() >= deadline_ms) {
      failure = Status::Aborted("prepare phase exceeded txn deadline");
      break;
    }
    ReplMessage prep;
    prep.type = ReplMessage::Type::kPrepare;
    prep.txn_id = txn_id;
    prep.endpoints = endpoints;
    AttachTrace(&prep);
    prep.session_id = session.session_id;
    prep.session_seq = session.seq;
    for (const WriteOp& w : by_partition[i]) {
      prep.commit.writes.emplace_back(
          w.key, std::make_shared<const std::string>(w.value));
    }
    prepares_->Increment();
    ReplMessage ack;
    Status s;
    {
      obs::StageTimer timer(prepare_rtt_us_, "prepare_rtt");
      s = CallPartition(partition_ids[i], prep, &ack, deadline_ms);
    }
    if (!s.ok()) {
      failure = s;
    } else if (ack.type != ReplMessage::Type::kPrepareAck ||
               ack.decision !=
                   static_cast<uint8_t>(TwoPhaseDecision::kCommit)) {
      failure = Status::Aborted("partition " +
                                std::to_string(partition_ids[i]) +
                                " voted abort");
    } else {
      prepared.push_back(partition_ids[i]);
    }
  }

  if (!failure.ok()) {
    // Abort everything we prepared; participants we cannot reach will
    // presume abort on their own after the grace period.
    for (uint32_t p : prepared) {
      ReplMessage decide;
      decide.type = ReplMessage::Type::kDecide;
      decide.txn_id = txn_id;
      decide.decision = static_cast<uint8_t>(TwoPhaseDecision::kAbort);
      AttachTrace(&decide);
      ReplMessage ack;
      (void)CallPartition(p, decide, &ack);
    }
    return "ERR 2PC abort txn " + std::to_string(txn_id) + ": " +
           failure.ToString();
  }

  // All votes in: the transaction is committed the moment we start
  // delivering decides (any participant that receives one will propagate
  // the outcome to the others through cooperative termination).
  TARDIS_FAULT_HIT("twopc.router.before_decide");
  if (decide_delay_ms_ > 0) {
    // Test hook: hold the decision window open so the grid e2e can kill
    // the router here or land a conflicting local commit.
    std::this_thread::sleep_for(std::chrono::milliseconds(decide_delay_ms_));
  }

  bool any_forked = false;
  size_t delivered = 0;
  for (uint32_t p : partition_ids) {
    ReplMessage decide;
    decide.type = ReplMessage::Type::kDecide;
    decide.txn_id = txn_id;
    decide.decision = static_cast<uint8_t>(TwoPhaseDecision::kCommit);
    AttachTrace(&decide);
    ReplMessage ack;
    Status s;
    do {
      s = CallPartition(p, decide, &ack);
      if (!s.ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    } while (!s.ok() && NowMillis() < deadline_ms);
    // A decide-commit only counts as delivered when the participant
    // acked *commit*. An ack carrying abort means it already presumed
    // abort and buried the transaction — re-acking its recorded decision
    // — and treating that as success would report a commit the
    // participant will never apply.
    if (s.ok() && ack.type == ReplMessage::Type::kDecideAck &&
        ack.decision == static_cast<uint8_t>(TwoPhaseDecision::kCommit)) {
      delivered++;
      if (ack.forked) {
        any_forked = true;
        forked_commits_->Increment();
      }
    } else if (s.ok() && ack.type == ReplMessage::Type::kDecideAck) {
      TARDIS_WARN(
          "router: partition %u answered decide-commit txn %llu with %s; "
          "treating as undelivered",
          p, static_cast<unsigned long long>(txn_id),
          TwoPhaseDecisionName(static_cast<TwoPhaseDecision>(ack.decision)));
    } else {
      TARDIS_WARN(
          "router: decide commit txn %llu undelivered to partition %u "
          "(%s); peers will resolve it",
          static_cast<unsigned long long>(txn_id), p, s.ToString().c_str());
    }
  }
  if (delivered == 0) {
    // No participant holds the commit decision, so cooperative
    // termination may legitimately resolve this transaction to abort
    // (presumed abort needs every peer in doubt — true here). Claiming
    // success would ack a write that can vanish.
    return "ERR 2PC txn " + std::to_string(txn_id) +
           " in doubt: decision delivered to no participant";
  }
  std::string reply = "OK TXN " + std::to_string(txn_id);
  if (any_forked) reply += " FORKED";
  if (delivered < partition_ids.size()) {
    reply += " INDOUBT " + std::to_string(partition_ids.size() - delivered);
  }
  return reply;
}

std::string Router::AggregateHealth() {
  // One block per partition, every line prefixed "P<i> ", inner ENDs
  // dropped; unreachable partitions report down=1 instead of failing the
  // whole command.
  std::string out = "ROUTER partitions=" +
                    std::to_string(map_.partition_count()) + "\n";
  for (uint32_t p = 0; p < map_.partition_count(); p++) {
    const std::string reply = ForwardLine(p, "health");
    if (reply.compare(0, 4, "ERR ") == 0) {
      out += "P" + std::to_string(p) + " down=1 " + reply + "\n";
      continue;
    }
    std::stringstream ss(reply);
    std::string line;
    while (std::getline(ss, line)) {
      if (line == "END" || line.empty()) continue;
      out += "P" + std::to_string(p) + " " + line + "\n";
    }
  }
  return out + "END";
}

std::string Router::HandleTraceCommand(const std::string& sub) {
  // Cluster-wide tracing switch: flip the router's own tracer and fan the
  // same command out to every partition daemon, one status line each.
  if (sub == "start") {
    obs::Tracer::Get().Enable();
  } else {
    obs::Tracer::Get().Disable();
  }
  std::string out = "ROUTER OK\n";
  for (uint32_t p = 0; p < map_.partition_count(); p++) {
    out += "P" + std::to_string(p) + " " + ForwardLine(p, "trace " + sub) +
           "\n";
  }
  return out + "END";
}

std::string Router::CollectClusterTraces() {
  // One Chrome trace for the whole grid: every partition's ring dump plus
  // the router's own, stitched textually (each document carries its real
  // OS pid and a process_name metadata record, and all share the
  // machine's monotonic-clock origin, so events pass through verbatim).
  std::vector<std::string> docs;
  for (uint32_t p = 0; p < map_.partition_count(); p++) {
    const std::string reply = ForwardLine(p, "trace json");
    if (reply.compare(0, 4, "ERR ") == 0) {
      TARDIS_WARN("router: trace collect: partition %u: %s", p,
                  reply.c_str());
      continue;  // stitch what is reachable rather than failing the dump
    }
    docs.push_back(StripEndMarker(reply));
  }
  docs.push_back(obs::Tracer::Get().DumpChromeTrace());
  return obs::StitchChromeTraces(docs) + "END";
}

std::string Router::ClusterMetrics() {
  // Cluster-wide telemetry: every partition's Prometheus exposition plus
  // the router's own, merged into one (identical series summed, quantile
  // summaries dropped in favour of the mergeable _bucket series).
  std::vector<std::string> expositions;
  for (uint32_t p = 0; p < map_.partition_count(); p++) {
    const std::string reply = ForwardLine(p, "metrics prom");
    if (reply.compare(0, 4, "ERR ") == 0) {
      TARDIS_WARN("router: metrics cluster: partition %u: %s", p,
                  reply.c_str());
      continue;
    }
    expositions.push_back(StripEndMarker(reply));
  }
  expositions.push_back(obs::RenderPrometheus(registry_->Collect()));
  std::string body = obs::MergePrometheus(expositions);
  if (!body.empty() && body.back() != '\n') body.push_back('\n');
  return body + "END";
}

std::string Router::Handle(const std::string& line, bool* close_conn) {
  *close_conn = false;
  // An explicit client trace header wins; otherwise 1-in-N self-sampling
  // starts a fresh trace at the cluster's front door. Either way the
  // context is bound for the whole dispatch, so every span this thread
  // records — and every coordination frame AttachTrace stamps — carries
  // the same trace id across the grid.
  std::string cmd_line = line;
  obs::TraceContext ctx;
  obs::StripTraceHeader(&cmd_line, &ctx);
  if (!ctx.active() && sample_every_ > 0 && obs::Tracer::Get().enabled() &&
      ++sample_counter_ % sample_every_ == 0) {
    ctx.trace_id = obs::NewTraceId();
    ctx.sampled = true;
  }
  obs::TraceContextScope bind(ctx);
  TARDIS_TRACE_SPAN("router", "request");
  // The session header rides behind the trace header. Unlike the trace
  // header, a corrupt one is rejected: silently stripping it would turn
  // a dedupable write into a blind one (DESIGN.md §13).
  SessionHeader session;
  if (StripSessionHeader(&cmd_line, &session) ==
      SessionHeaderStatus::kMalformed) {
    header_rejected_->Increment();
    return "ERR HEADER malformed or oversized session header; retry with "
           "a valid *S token";
  }
  return Dispatch(cmd_line, close_conn, session);
}

std::string Router::Dispatch(const std::string& line, bool* close_conn,
                             const SessionHeader& session) {
  std::stringstream ss(line);
  std::string cmd;
  ss >> cmd;

  if (cmd == "ping") return "PONG";
  if (cmd == "quit") {
    *close_conn = true;
    return "BYE";
  }
  if (cmd == "partition") {
    std::string key;
    ss >> key;
    if (key.empty()) return "ERR usage: partition <key>";
    return "PARTITION " + std::to_string(map_.PartitionForKey(key));
  }
  if (cmd == "get" || cmd == "put") {
    std::string key;
    ss >> key;
    if (key.empty()) return "ERR usage: " + cmd + " <key> ...";
    requests_fast_->Increment();
    // Keep the session header on the forwarded line: the owning daemon
    // runs the dedup/floor checks and prefixes its floor token.
    const std::string forwarded =
        session.session_id == 0 ? line
                                : FormatSessionHeader(session) + " " + line;
    return ForwardLine(map_.PartitionForKey(key), forwarded);
  }
  if (cmd == "mput") {
    std::vector<WriteOp> writes;
    WriteOp w;
    while (ss >> w.key >> w.value) writes.push_back(w);
    if (writes.empty()) return "ERR usage: mput <key> <value> [...]";
    return HandleMultiPut(writes, session);
  }
  if (cmd == "merge" || cmd == "sync") {
    // Partition-local maintenance, fanned out everywhere.
    requests_fast_->Increment();
    std::string out;
    for (uint32_t p = 0; p < map_.partition_count(); p++) {
      out += "P" + std::to_string(p) + " " + ForwardLine(p, line) + "\n";
    }
    return out + "END";
  }
  if (cmd == "health") return AggregateHealth();
  if (cmd == "metrics" || cmd == "stats") {
    std::string format = cmd == "stats" ? "table" : "prom";
    ss >> format;
    if (format == "cluster") return ClusterMetrics();
    const std::vector<obs::Sample> samples = registry_->Collect();
    std::string body = format == "table" ? obs::RenderTable(samples)
                                         : obs::RenderPrometheus(samples);
    if (!body.empty() && body.back() != '\n') body.push_back('\n');
    return body + "END";
  }
  if (cmd == "trace") {
    std::string sub;
    ss >> sub;
    if (sub == "sample") {
      uint64_t n = 0;
      if (!(ss >> n)) return "ERR usage: trace sample <n>";
      sample_every_ = n;
      sample_counter_ = 0;
      return "OK";
    }
    if (sub == "json") {
      return obs::Tracer::Get().DumpChromeTrace() + "END";
    }
    if (sub == "collect") return CollectClusterTraces();
    if (sub == "start" || sub == "stop") return HandleTraceCommand(sub);
    return "ERR usage: trace start|stop|sample <n>|json|collect";
  }
  if (cmd == "2pc_delay") {
    int ms = 0;
    if (!(ss >> ms) || ms < 0 || ms > 60'000) return "ERR usage: 2pc_delay <ms>";
    decide_delay_ms_ = static_cast<uint64_t>(ms);
    return "OK";
  }
  return "ERR unknown command '" + cmd + "'";
}

}  // namespace cluster
}  // namespace tardis
