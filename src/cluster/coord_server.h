// CoordServer: a partition daemon's coordination endpoint — the server
// side of the router's FramedClient connections (DESIGN.md §10).
//
// Listens on its own port (tardisd --coord-port), speaks the CRC32-framed
// ReplMessage codec, and serves four request types:
//
//   kRoute      fast-path execution: a line-protocol command (text) run
//               through the daemon's command handler, or a write set
//               (commit.writes) applied as one local transaction
//   kPrepare,
//   kDecide,      forwarded to the TwoPhaseParticipant
//   kTxnStatus
//
// One background thread multiplexes the listen socket and every accepted
// connection with poll(2); requests are executed inline on that thread
// (coordination traffic is low-rate control plane, not the gossip data
// path). A malformed frame closes the offending connection, never the
// daemon. The same thread doubles as the participant's resolver: every
// resolve_interval_ms it runs one cooperative-termination pass so
// in-doubt transactions converge even if no router ever returns.

#ifndef TARDIS_CLUSTER_COORD_SERVER_H_
#define TARDIS_CLUSTER_COORD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/twopc.h"
#include "core/tardis_store.h"
#include "util/status.h"

namespace tardis {
namespace cluster {

struct CoordServerOptions {
  uint16_t port = 0;  ///< 0 picks an ephemeral port (see listen_port())
  /// Executes a kRoute line-protocol command, returning the reply text.
  /// Runs on the server thread; must be thread-safe against the daemon's
  /// own workers.
  std::function<std::string(const std::string& line)> execute;
  /// How often the server thread runs TwoPhaseParticipant::ResolveInDoubt.
  /// 0 disables the resolver (tests drive it by hand).
  uint64_t resolve_interval_ms = 1000;
};

class CoordServer {
 public:
  /// Binds the port and starts the serving thread. `store` and
  /// `participant` must outlive the server.
  static StatusOr<std::unique_ptr<CoordServer>> Start(
      TardisStore* store, TwoPhaseParticipant* participant,
      CoordServerOptions options);
  ~CoordServer();

  CoordServer(const CoordServer&) = delete;
  CoordServer& operator=(const CoordServer&) = delete;

  void Shutdown();  ///< stops the thread, closes every socket; idempotent

  uint16_t listen_port() const { return listen_port_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  CoordServer(TardisStore* store, TwoPhaseParticipant* participant,
              CoordServerOptions options);

  Status Listen();
  void Serve();
  /// Dispatches one decoded request, filling *reply. Errors become a
  /// kRouteReply with an "ERR ..." body so the router always gets a
  /// frame back.
  void Dispatch(const ReplMessage& req, ReplMessage* reply);
  /// kRoute with commit.writes: apply atomically via one local txn.
  std::string ApplyWriteSet(const ReplMessage& req);

  TardisStore* const store_;
  TwoPhaseParticipant* const participant_;
  const CoordServerOptions options_;

  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
  std::atomic<bool> stop_{true};
};

}  // namespace cluster
}  // namespace tardis

#endif  // TARDIS_CLUSTER_COORD_SERVER_H_
