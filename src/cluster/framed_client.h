// FramedClient: a blocking request/response connection speaking the
// CRC32-framed ReplMessage codec (net/wire.h) — the client side of a
// daemon's coordination port.
//
// The replication mesh (TcpTransport) is fire-and-forget gossip; the
// router's traffic is strictly request/response: it sends one frame and
// waits for exactly one reply. A tiny blocking client with per-call
// deadlines fits that shape better than threading router connections
// through the transport's poll loop, and keeps the router stateless — a
// FramedClient carries no state besides the socket itself, so dropping
// and re-dialing it is always safe.
//
// Not thread-safe: one FramedClient per caller thread.

#ifndef TARDIS_CLUSTER_FRAMED_CLIENT_H_
#define TARDIS_CLUSTER_FRAMED_CLIENT_H_

#include <cstdint>
#include <string>

#include "replication/message.h"
#include "util/status.h"

namespace tardis {
namespace cluster {

/// Splits "host:port" (the last ':' wins, so bare IPv6 is not supported —
/// matches the daemon's flag syntax). Returns InvalidArgument on
/// missing/unparsable port.
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port);

class FramedClient {
 public:
  FramedClient() = default;
  ~FramedClient();

  FramedClient(const FramedClient&) = delete;
  FramedClient& operator=(const FramedClient&) = delete;

  /// Dials `endpoint` ("host:port") with a connect deadline. Any existing
  /// connection is closed first.
  Status Connect(const std::string& endpoint, uint64_t timeout_ms);

  bool connected() const { return fd_ >= 0; }
  const std::string& endpoint() const { return endpoint_; }

  /// Closes the socket (idempotent).
  void Close();

  /// Sends `req` as one frame and blocks for one reply frame, all within
  /// `timeout_ms`. On any error (IO, deadline, corrupt frame) the
  /// connection is closed — the caller re-Connects to retry.
  Status Call(const ReplMessage& req, ReplMessage* resp, uint64_t timeout_ms);

  /// One-shot convenience: dial, call, close.
  static Status CallOnce(const std::string& endpoint, const ReplMessage& req,
                         ReplMessage* resp, uint64_t timeout_ms);

 private:
  int fd_ = -1;
  std::string endpoint_;
  std::string recvbuf_;  ///< partial-frame reassembly across reads
};

}  // namespace cluster
}  // namespace tardis

#endif  // TARDIS_CLUSTER_FRAMED_CLIENT_H_
