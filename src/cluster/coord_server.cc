#include "cluster/coord_server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "net/wire.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/logging.h"

namespace tardis {
namespace cluster {

namespace {

struct Conn {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  size_t out_off = 0;
};

/// A hostile peer cannot buffer unbounded bytes: wire frames are already
/// capped at kMaxWirePayload, so anything past one max frame plus header
/// is a protocol violation.
constexpr size_t kMaxInbuf = kMaxWirePayload + kWireHeaderBytes;

}  // namespace

StatusOr<std::unique_ptr<CoordServer>> CoordServer::Start(
    TardisStore* store, TwoPhaseParticipant* participant,
    CoordServerOptions options) {
  std::unique_ptr<CoordServer> server(
      new CoordServer(store, participant, std::move(options)));
  Status s = server->Listen();
  if (!s.ok()) return s;
  server->stop_.store(false);
  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  return server;
}

CoordServer::CoordServer(TardisStore* store, TwoPhaseParticipant* participant,
                         CoordServerOptions options)
    : store_(store), participant_(participant), options_(std::move(options)) {}

CoordServer::~CoordServer() { Shutdown(); }

void CoordServer::Shutdown() {
  if (stop_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

Status CoordServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = INADDR_ANY;
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 16) != 0) {
    Status s = Status::IOError("coord port " + std::to_string(options_.port) +
                               ": " + strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    listen_port_ = ntohs(addr.sin_port);
  }
  const int flags = fcntl(listen_fd_, F_GETFL, 0);
  if (flags >= 0) fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  return Status::OK();
}

std::string CoordServer::ApplyWriteSet(const ReplMessage& req) {
  // Exactly-once: a retried sessioned write answers from the dedup table
  // with the original commit's state instead of re-executing.
  if (req.session_id != 0) {
    GlobalStateId prior;
    if (store_->session_dedup()->Lookup(req.session_id, req.session_seq,
                                        &prior)) {
      return "OK STATE " + prior.ToString();
    }
  }
  auto session = store_->CreateSession();
  auto txn = store_->Begin(session.get());
  if (!txn.ok()) return "ERR " + txn.status().ToString();
  (*txn)->SetSessionTag(req.session_id, req.session_seq);
  for (const auto& [key, value] : req.commit.writes) {
    const Slice v = value ? Slice(*value) : Slice();
    Status s = (*txn)->Put(key, v);
    if (!s.ok()) {
      (*txn)->Abort();
      return "ERR " + s.ToString();
    }
  }
  Status s = (*txn)->Commit();
  if (!s.ok()) return "ERR " + s.ToString();
  if (req.session_id != 0 && session->last_commit() != nullptr) {
    return "OK STATE " + session->last_commit()->guid().ToString();
  }
  return "OK";
}

void CoordServer::Dispatch(const ReplMessage& req, ReplMessage* reply) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  // Adopt the frame's trace context for the whole dispatch: the store /
  // 2PC / replication work below runs on this thread, so its spans (and
  // any frames it sends onward) join the router's trace.
  obs::TraceContext ctx{req.trace_id, req.trace_span, req.trace_sampled};
  obs::TraceContextScope bind(ctx);
  Status s;
  switch (req.type) {
    case ReplMessage::Type::kRoute: {
      TARDIS_TRACE_SPAN("coord", "route");
      reply->type = ReplMessage::Type::kRouteReply;
      reply->txn_id = req.txn_id;
      if (!req.commit.writes.empty()) {
        reply->text = ApplyWriteSet(req);
      } else if (options_.execute) {
        reply->text = options_.execute(req.text);
      } else {
        reply->text = "ERR no command executor";
      }
      return;
    }
    case ReplMessage::Type::kPrepare: {
      TARDIS_TRACE_SPAN("coord", "prepare");
      s = participant_->HandlePrepare(req, reply);
      break;
    }
    case ReplMessage::Type::kDecide: {
      TARDIS_TRACE_SPAN("coord", "decide");
      s = participant_->HandleDecide(req, reply);
      break;
    }
    case ReplMessage::Type::kTxnStatus:
      s = participant_->HandleTxnStatus(req, reply);
      break;
    default:
      s = Status::InvalidArgument("unexpected coordination frame");
      break;
  }
  if (!s.ok()) {
    // Always answer: the router's deadline handling is simpler when
    // errors come back as frames instead of silence.
    reply->type = ReplMessage::Type::kRouteReply;
    reply->txn_id = req.txn_id;
    reply->text = "ERR " + s.ToString();
  }
}

void CoordServer::Serve() {
  std::vector<Conn> conns;
  uint64_t next_resolve_ms =
      options_.resolve_interval_ms == 0
          ? 0
          : NowMillis() + options_.resolve_interval_ms;
  while (!stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> pfds;
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns) {
      short events = POLLIN;
      if (c.out_off < c.outbuf.size()) events |= POLLOUT;
      pfds.push_back({c.fd, events, 0});
    }
    const int rc = poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) {
      TARDIS_WARN("coord: poll: %s", strerror(errno));
    }

    if (pfds[0].revents & POLLIN) {
      while (true) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        const int flags = fcntl(fd, F_GETFL, 0);
        if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Conn c;
        c.fd = fd;
        conns.push_back(std::move(c));
      }
    }

    std::vector<size_t> dead;
    // pfds was built before this round's accepts, so only the first
    // pfds.size()-1 connections have poll results; connections accepted
    // above are picked up by the next poll.
    for (size_t i = 0; i + 1 < pfds.size(); i++) {
      Conn& c = conns[i];
      const short revents = pfds[i + 1].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        dead.push_back(i);
        continue;
      }
      if (revents & POLLIN) {
        char buf[65536];
        bool eof = false;
        while (true) {
          const ssize_t n = read(c.fd, buf, sizeof(buf));
          if (n > 0) {
            c.inbuf.append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          eof = true;
          break;
        }
        bool corrupt = c.inbuf.size() > kMaxInbuf;
        while (!corrupt) {
          ReplMessage req;
          size_t consumed = 0;
          Status s = DecodeFrame(Slice(c.inbuf), &req, &consumed);
          if (!s.ok()) {
            corrupt = true;
            break;
          }
          if (consumed == 0) break;  // incomplete frame, wait for bytes
          c.inbuf.erase(0, consumed);
          ReplMessage reply;
          Dispatch(req, &reply);
          EncodeFrame(reply, &c.outbuf);
        }
        if (corrupt || (eof && c.out_off >= c.outbuf.size())) {
          dead.push_back(i);
          continue;
        }
      } else if (revents & POLLHUP) {
        if (c.out_off >= c.outbuf.size()) {
          dead.push_back(i);
          continue;
        }
      }
      while (c.out_off < c.outbuf.size()) {
        const ssize_t n = write(c.fd, c.outbuf.data() + c.out_off,
                                c.outbuf.size() - c.out_off);
        if (n > 0) {
          c.out_off += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        dead.push_back(i);
        break;
      }
      if (c.out_off >= c.outbuf.size()) {
        c.outbuf.clear();
        c.out_off = 0;
      }
    }
    // Close back-to-front so indices stay valid; dead is ascending and
    // may hold duplicates for a connection that failed twice above.
    for (size_t j = dead.size(); j-- > 0;) {
      const size_t i = dead[j];
      if (j + 1 < dead.size() && dead[j + 1] == i) continue;
      ::close(conns[i].fd);
      conns.erase(conns.begin() + static_cast<long>(i));
    }

    if (next_resolve_ms != 0 && NowMillis() >= next_resolve_ms) {
      participant_->ResolveInDoubt();
      next_resolve_ms = NowMillis() + options_.resolve_interval_ms;
    }
  }
  for (Conn& c : conns) ::close(c.fd);
}

}  // namespace cluster
}  // namespace tardis
