#include "storage/cowtrie/cow_trie.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/clock.h"

namespace tardis {

// Nodes are immutable once a branch root above them has been published;
// the builder mutates only nodes it just allocated. `refs` counts owners:
// parent nodes, branch-table roots, and transient reader pins.
struct CowTrie::Node {
  std::atomic<uint32_t> refs{1};
  /// Full edge label including the byte that selects this node from its
  /// parent. Empty only for branch roots.
  std::string label;
  bool has_value = false;
  std::shared_ptr<const std::string> value;
  uint64_t tag = 0;
  /// Keys in this subtree (incl. own value) — makes BranchSize O(1) and
  /// lets Delete detect emptied roots without a walk.
  uint64_t count = 0;
  /// Sorted by label[0]; child labels are never empty.
  std::vector<Node*> children;
};

namespace {

/// Longest common prefix length of two byte strings.
size_t CommonPrefix(const Slice& a, const Slice& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a.data()[i] == b.data()[i]) i++;
  return i;
}

bool SameVersion(const BranchStore::Version& a,
                 const BranchStore::Version& b) {
  if (a.present != b.present) return false;
  if (!a.present) return true;
  if (a.tag != b.tag) return false;
  if (a.value == b.value) return true;
  if (a.value == nullptr || b.value == nullptr) return false;
  return *a.value == *b.value;
}

}  // namespace

// ---- lifetime ----------------------------------------------------------------

CowTrie::CowTrie(obs::MetricsRegistry* registry, obs::LabelSet labels) {
  if (registry != nullptr) RegisterMetrics(registry, labels);
}

CowTrie::~CowTrie() {
  if (registry_ != nullptr) registry_->DropCallbacks(this);
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (auto& [id, entry] : branches_) {
      if (entry.root != nullptr) Unref(entry.root);
    }
    branches_.clear();
  }
  assert(live_nodes_.load() == 0);
}

void CowTrie::RegisterMetrics(obs::MetricsRegistry* registry,
                              const obs::LabelSet& labels) {
  registry_ = registry;
  merge_diff_keys_ = registry->RegisterCounter(
      "tardis_trie_merge_diff_keys",
      "Keys a 3-way trie merge reconciled individually (diverged from base "
      "on both sides; one-sided and shared subtrees are adopted unseen)",
      labels);
  merge_conflicts_ = registry->RegisterCounter(
      "tardis_trie_merge_conflicts",
      "Keys changed on both sides of a 3-way trie merge since base",
      labels);
  fork_us_ = registry->RegisterHistogram(
      "tardis_trie_fork_us", "Branch fork latency, microseconds", labels);
  merge_us_ = registry->RegisterHistogram(
      "tardis_trie_merge_us", "3-way trie merge latency, microseconds",
      labels);
  registry->RegisterCallbackGauge(
      "tardis_trie_nodes", "Live copy-on-write trie nodes (shared = once)",
      [this] { return static_cast<double>(node_count()); }, labels, this);
  registry->RegisterCallbackGauge(
      "tardis_trie_shared_nodes",
      "Extra structural references to live trie nodes (sum of refcount-1)",
      [this] { return static_cast<double>(shared_node_refs()); }, labels,
      this);
}

CowTrie::Node* CowTrie::NewNode() {
  std::lock_guard<std::mutex> guard(arena_mu_);
  if (free_list_.empty()) {
    chunks_.push_back(std::make_unique<char[]>(kChunkNodes * sizeof(Node)));
    char* base = chunks_.back().get();
    free_list_.reserve(free_list_.size() + kChunkNodes);
    for (size_t i = 0; i < kChunkNodes; i++) {
      free_list_.push_back(reinterpret_cast<Node*>(base + i * sizeof(Node)));
    }
  }
  Node* slot = free_list_.back();
  free_list_.pop_back();
  live_nodes_.fetch_add(1, std::memory_order_relaxed);
  return new (slot) Node();
}

void CowTrie::Ref(Node* n) const {
  n->refs.fetch_add(1, std::memory_order_relaxed);
  extra_refs_.fetch_add(1, std::memory_order_relaxed);
}

void CowTrie::Unref(Node* n) const {
  // Iterative cascade: dropping the last reference to a node drops one
  // reference from each child. Depth equals key length, but merge output
  // may chain single-byte nodes, so no recursion here.
  std::vector<Node*> work{n};
  while (!work.empty()) {
    Node* cur = work.back();
    work.pop_back();
    const uint32_t old = cur->refs.fetch_sub(1, std::memory_order_acq_rel);
    assert(old > 0);
    if (old > 1) {
      extra_refs_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    work.insert(work.end(), cur->children.begin(), cur->children.end());
    cur->~Node();
    std::lock_guard<std::mutex> guard(arena_mu_);
    free_list_.push_back(cur);
    live_nodes_.fetch_sub(1, std::memory_order_relaxed);
  }
}

CowTrie::Node* CowTrie::FindChild(const Node* n, uint8_t byte) {
  auto it = std::lower_bound(
      n->children.begin(), n->children.end(), byte,
      [](const Node* c, uint8_t b) {
        return static_cast<uint8_t>(c->label[0]) < b;
      });
  if (it == n->children.end() ||
      static_cast<uint8_t>((*it)->label[0]) != byte) {
    return nullptr;
  }
  return *it;
}

CowTrie::Node* CowTrie::CloneNode(const Node* n) const {
  Node* copy = const_cast<CowTrie*>(this)->NewNode();
  copy->label = n->label;
  copy->has_value = n->has_value;
  copy->value = n->value;
  copy->tag = n->tag;
  copy->count = n->count;
  copy->children = n->children;
  for (Node* child : copy->children) Ref(child);
  return copy;
}

void CowTrie::Recount(Node* n) {
  uint64_t c = n->has_value ? 1 : 0;
  for (const Node* child : n->children) c += child->count;
  n->count = c;
}

void CowTrie::AttachChild(Node* parent, Node* child) {
  auto it = std::lower_bound(
      parent->children.begin(), parent->children.end(),
      static_cast<uint8_t>(child->label[0]), [](const Node* c, uint8_t b) {
        return static_cast<uint8_t>(c->label[0]) < b;
      });
  parent->children.insert(it, child);
}

/// Replaces (or removes, when replacement == nullptr) the child of the
/// *fresh* node `parent` whose label starts with `byte`. The displaced
/// child loses the reference `parent` held on it.
void CowTrie::ReplaceChild(Node* parent, uint8_t byte, Node* replacement) {
  for (size_t i = 0; i < parent->children.size(); i++) {
    if (static_cast<uint8_t>(parent->children[i]->label[0]) != byte) continue;
    Unref(parent->children[i]);
    if (replacement == nullptr) {
      parent->children.erase(parent->children.begin() + i);
    } else {
      parent->children[i] = replacement;
    }
    return;
  }
  assert(replacement != nullptr);
  AttachChild(parent, replacement);
}

// ---- branch table -------------------------------------------------------------

Status CowTrie::CreateBranch(BranchId id) {
  std::lock_guard<std::mutex> write_guard(write_mu_);
  std::lock_guard<std::mutex> guard(mu_);
  if (!branches_.emplace(id, BranchEntry{}).second) {
    return Status::InvalidArgument("branch " + std::to_string(id) +
                                   " already exists");
  }
  return Status::OK();
}

Status CowTrie::Fork(BranchId parent, BranchId child) {
  const uint64_t start_us = NowMicros();
  std::lock_guard<std::mutex> write_guard(write_mu_);
  std::lock_guard<std::mutex> guard(mu_);
  auto it = branches_.find(parent);
  if (it == branches_.end()) {
    return Status::NotFound("unknown parent branch " +
                            std::to_string(parent));
  }
  Node* root = it->second.root;
  auto inserted = branches_.emplace(child, BranchEntry{root});
  if (!inserted.second) {
    return Status::InvalidArgument("branch " + std::to_string(child) +
                                   " already exists");
  }
  // The fork: one refcount bump, no matter how large the parent is.
  if (root != nullptr) Ref(root);
  if (fork_us_ != nullptr) fork_us_->Observe(NowMicros() - start_us);
  return Status::OK();
}

Status CowTrie::Release(BranchId id) {
  std::lock_guard<std::mutex> write_guard(write_mu_);
  Node* root = nullptr;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = branches_.find(id);
    if (it == branches_.end()) {
      return Status::NotFound("unknown branch " + std::to_string(id));
    }
    root = it->second.root;
    branches_.erase(it);
  }
  if (root != nullptr) Unref(root);
  return Status::OK();
}

bool CowTrie::HasBranch(BranchId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  return branches_.count(id) > 0;
}

size_t CowTrie::branch_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return branches_.size();
}

uint64_t CowTrie::BranchSize(BranchId branch) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = branches_.find(branch);
  if (it == branches_.end() || it->second.root == nullptr) return 0;
  return it->second.root->count;
}

CowTrie::Node* CowTrie::PinRoot(BranchId branch, bool* missing) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = branches_.find(branch);
  if (it == branches_.end()) {
    *missing = true;
    return nullptr;
  }
  *missing = false;
  if (it->second.root != nullptr) Ref(it->second.root);
  return it->second.root;
}

// ---- point operations ---------------------------------------------------------

Status CowTrie::Get(BranchId branch, const Slice& key,
                    std::string* value) const {
  bool missing = false;
  Node* root = PinRoot(branch, &missing);
  if (missing) {
    return Status::NotFound("unknown branch " + std::to_string(branch));
  }
  if (root == nullptr) return Status::NotFound();
  // Lock-free walk over immutable nodes; the pin keeps the subtree alive.
  const Node* n = root;
  size_t pos = 0;
  Status result = Status::NotFound();
  while (true) {
    if (pos == key.size()) {
      if (n->has_value) {
        if (value != nullptr) *value = *n->value;  // null = existence probe
        result = Status::OK();
      }
      break;
    }
    const Node* child = FindChild(n, static_cast<uint8_t>(key.data()[pos]));
    if (child == nullptr) break;
    const Slice rest(key.data() + pos, key.size() - pos);
    if (rest.size() < child->label.size() ||
        memcmp(rest.data(), child->label.data(), child->label.size()) != 0) {
      break;
    }
    pos += child->label.size();
    n = child;
  }
  Unref(root);
  return result;
}

CowTrie::Node* CowTrie::InsertBelow(
    const Node* n, const Slice& rest,
    const std::shared_ptr<const std::string>& value, uint64_t tag,
    bool* inserted) {
  if (rest.empty()) {
    Node* copy = CloneNode(n);
    *inserted = !copy->has_value;
    copy->has_value = true;
    copy->value = value;
    copy->tag = tag;
    Recount(copy);
    return copy;
  }
  const uint8_t byte = static_cast<uint8_t>(rest.data()[0]);
  const Node* child = FindChild(n, byte);
  Node* copy = CloneNode(n);
  if (child == nullptr) {
    Node* leaf = NewNode();
    leaf->label = rest.ToString();
    leaf->has_value = true;
    leaf->value = value;
    leaf->tag = tag;
    leaf->count = 1;
    AttachChild(copy, leaf);
    *inserted = true;
    Recount(copy);
    return copy;
  }
  const size_t common = CommonPrefix(child->label, rest);
  Node* replacement = nullptr;
  if (common == child->label.size()) {
    // The child's edge is fully on the key path: descend.
    replacement = InsertBelow(
        child, Slice(rest.data() + common, rest.size() - common), value, tag,
        inserted);
  } else {
    // Edge split: a fresh interior node takes the shared prefix; the old
    // child survives (shared, relabeled by a shallow clone) under it.
    Node* split = NewNode();
    split->label = std::string(rest.data(), common);
    Node* tail = CloneNode(child);
    tail->label = child->label.substr(common);
    AttachChild(split, tail);
    if (common == rest.size()) {
      split->has_value = true;
      split->value = value;
      split->tag = tag;
    } else {
      Node* leaf = NewNode();
      leaf->label = std::string(rest.data() + common, rest.size() - common);
      leaf->has_value = true;
      leaf->value = value;
      leaf->tag = tag;
      leaf->count = 1;
      AttachChild(split, leaf);
    }
    *inserted = true;
    Recount(split);
    replacement = split;
  }
  ReplaceChild(copy, byte, replacement);
  Recount(copy);
  return copy;
}

Status CowTrie::Put(BranchId branch, const Slice& key,
                    std::shared_ptr<const std::string> value, uint64_t tag) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  std::lock_guard<std::mutex> write_guard(write_mu_);
  bool missing = false;
  Node* root = PinRoot(branch, &missing);
  if (missing) {
    return Status::NotFound("unknown branch " + std::to_string(branch));
  }
  Node* new_root = nullptr;
  bool inserted = false;
  if (root == nullptr) {
    new_root = NewNode();  // empty branch: fresh root, then insert below it
    if (key.empty()) {
      new_root->has_value = true;
      new_root->value = std::move(value);
      new_root->tag = tag;
      new_root->count = 1;
    } else {
      Node* leaf = NewNode();
      leaf->label = key.ToString();
      leaf->has_value = true;
      leaf->value = std::move(value);
      leaf->tag = tag;
      leaf->count = 1;
      AttachChild(new_root, leaf);
      new_root->count = 1;
    }
  } else {
    new_root = InsertBelow(root, key, value, tag, &inserted);
  }
  {
    std::lock_guard<std::mutex> guard(mu_);
    branches_[branch].root = new_root;
  }
  if (root != nullptr) {
    Unref(root);  // the pin
    Unref(root);  // the branch-table reference the new root displaced
  }
  return Status::OK();
}

bool CowTrie::DeleteBelow(const Node* n, const Slice& rest, bool is_root,
                          Node** out) {
  if (rest.empty()) {
    if (!n->has_value) return false;
    if (n->children.empty() && !is_root) {
      *out = nullptr;
      return true;
    }
    Node* copy = CloneNode(n);
    copy->has_value = false;
    copy->value = nullptr;
    copy->tag = 0;
    Recount(copy);
    *out = Compact(copy, is_root);
    return true;
  }
  const uint8_t byte = static_cast<uint8_t>(rest.data()[0]);
  const Node* child = FindChild(n, byte);
  if (child == nullptr) return false;
  if (rest.size() < child->label.size() ||
      memcmp(rest.data(), child->label.data(), child->label.size()) != 0) {
    return false;
  }
  Node* child_out = nullptr;
  if (!DeleteBelow(child,
                   Slice(rest.data() + child->label.size(),
                         rest.size() - child->label.size()),
                   /*is_root=*/false, &child_out)) {
    return false;
  }
  Node* copy = CloneNode(n);
  ReplaceChild(copy, byte, child_out);
  Recount(copy);
  if (!is_root && !copy->has_value && copy->children.empty()) {
    Unref(copy);
    *out = nullptr;
    return true;
  }
  *out = Compact(copy, is_root);
  return true;
}

/// Re-establishes path compression on a *fresh* node: a valueless node
/// with a single child folds into it (the child may be shared — it is
/// shallow-cloned to take the longer label). Roots keep their empty label.
CowTrie::Node* CowTrie::Compact(Node* fresh, bool is_root) {
  if (is_root || fresh->has_value || fresh->children.size() != 1) {
    return fresh;
  }
  Node* child = fresh->children[0];
  Node* merged = CloneNode(child);
  merged->label = fresh->label + child->label;
  Unref(fresh);  // drops its reference on `child` too
  return merged;
}

Status CowTrie::Delete(BranchId branch, const Slice& key) {
  std::lock_guard<std::mutex> write_guard(write_mu_);
  bool missing = false;
  Node* root = PinRoot(branch, &missing);
  if (missing) {
    return Status::NotFound("unknown branch " + std::to_string(branch));
  }
  if (root == nullptr) return Status::NotFound();
  Node* new_root = nullptr;
  const bool found = DeleteBelow(root, key, /*is_root=*/true, &new_root);
  if (!found) {
    Unref(root);
    return Status::NotFound();
  }
  if (new_root != nullptr && new_root->count == 0) {
    Unref(new_root);
    new_root = nullptr;  // emptied out: drop the bare root node
  }
  {
    std::lock_guard<std::mutex> guard(mu_);
    branches_[branch].root = new_root;
  }
  Unref(root);  // the pin
  Unref(root);  // the displaced branch-table reference
  return Status::OK();
}

// ---- views --------------------------------------------------------------------

CowTrie::View CowTrie::Advance(const View& v, uint8_t byte) {
  if (v.node == nullptr) return View{};
  if (v.off < v.node->label.size()) {
    if (static_cast<uint8_t>(v.node->label[v.off]) != byte) return View{};
    return View{v.node, v.off + 1};
  }
  Node* child = FindChild(v.node, byte);
  if (child == nullptr) return View{};
  return View{child, 1};
}

bool CowTrie::ViewValue(const View& v, Version* out) {
  *out = Version{};
  if (v.node == nullptr || v.off != v.node->label.size() ||
      !v.node->has_value) {
    return false;
  }
  out->present = true;
  out->value = v.node->value;
  out->tag = v.node->tag;
  return true;
}

/// The transition bytes leaving a view, ascending.
void CowTrie::ViewTransitions(const View& v, std::vector<uint8_t>* out) {
  if (v.node == nullptr) return;
  if (v.off < v.node->label.size()) {
    out->push_back(static_cast<uint8_t>(v.node->label[v.off]));
    return;
  }
  for (const Node* child : v.node->children) {
    out->push_back(static_cast<uint8_t>(child->label[0]));
  }
}

CowTrie::Node* CowTrie::DetachView(const View& v) {
  if (v.node == nullptr) return nullptr;
  if (v.off <= 1) {
    // Whole node: off==0 is a root position, off==1 a child whose label
    // already begins with the consumed byte. Share it outright.
    Ref(v.node);
    return v.node;
  }
  Node* copy = CloneNode(v.node);
  copy->label = v.node->label.substr(v.off - 1);
  return copy;
}

// ---- diff ---------------------------------------------------------------------

void CowTrie::DiffRec(const View& base, const View& branch,
                      std::string* prefix, const DiffFn& fn) const {
  if (base == branch) return;  // structurally shared: identical, skip
  Version before, after;
  ViewValue(base, &before);
  ViewValue(branch, &after);
  if (!SameVersion(before, after)) {
    fn(Slice(*prefix), before, after);
  }
  std::vector<uint8_t> bytes;
  ViewTransitions(base, &bytes);
  ViewTransitions(branch, &bytes);
  std::sort(bytes.begin(), bytes.end());
  bytes.erase(std::unique(bytes.begin(), bytes.end()), bytes.end());
  for (uint8_t b : bytes) {
    prefix->push_back(static_cast<char>(b));
    DiffRec(Advance(base, b), Advance(branch, b), prefix, fn);
    prefix->pop_back();
  }
}

Status CowTrie::Diff(BranchId base, BranchId branch, const DiffFn& fn) const {
  bool base_missing = false, branch_missing = false;
  Node* base_root = PinRoot(base, &base_missing);
  Node* branch_root = PinRoot(branch, &branch_missing);
  if (base_missing || branch_missing) {
    if (base_root != nullptr) Unref(base_root);
    if (branch_root != nullptr) Unref(branch_root);
    return Status::NotFound("unknown branch " +
                            std::to_string(base_missing ? base : branch));
  }
  std::string prefix;
  DiffRec(View{base_root, 0}, View{branch_root, 0}, &prefix, fn);
  if (base_root != nullptr) Unref(base_root);
  if (branch_root != nullptr) Unref(branch_root);
  return Status::OK();
}

// ---- 3-way merge --------------------------------------------------------------

CowTrie::Node* CowTrie::MergeRec(const View& base, const View& src,
                                 const View& dest, std::string* prefix,
                                 const ConflictFn& resolve,
                                 MergeStats* stats) {
  // Pointer short-circuits — the reason merge is O(diff). Equal views are
  // byte-identical subtries; a side equal to base contributed nothing.
  if (src == dest) return DetachView(src);
  if (src == base) return DetachView(dest);
  if (dest == base) return DetachView(src);

  Version bv, sv, dv;
  ViewValue(base, &bv);
  ViewValue(src, &sv);
  ViewValue(dest, &dv);
  Version merged;
  const bool src_changed = !SameVersion(sv, bv);
  const bool dest_changed = !SameVersion(dv, bv);
  if (!src_changed) {
    merged = dv;
  } else if (!dest_changed) {
    merged = sv;
  } else if (SameVersion(sv, dv)) {
    merged = sv;  // both sides arrived at the same version independently
  } else {
    stats->conflicts++;
    merged = resolve != nullptr ? resolve(Slice(*prefix), bv, sv, dv)
                                : (sv.tag >= dv.tag ? sv : dv);
  }
  if ((src_changed || dest_changed) &&
      (bv.present || sv.present || dv.present)) {
    stats->diff_keys++;
  }

  Node* out = NewNode();
  out->label = prefix->empty()
                   ? std::string()
                   : std::string(1, prefix->back());
  if (merged.present) {
    out->has_value = true;
    out->value = merged.value;
    out->tag = merged.tag;
  }
  std::vector<uint8_t> bytes;
  ViewTransitions(base, &bytes);
  ViewTransitions(src, &bytes);
  ViewTransitions(dest, &bytes);
  std::sort(bytes.begin(), bytes.end());
  bytes.erase(std::unique(bytes.begin(), bytes.end()), bytes.end());
  for (uint8_t b : bytes) {
    prefix->push_back(static_cast<char>(b));
    Node* child = MergeRec(Advance(base, b), Advance(src, b),
                           Advance(dest, b), prefix, resolve, stats);
    prefix->pop_back();
    if (child != nullptr) {
      if (child->count == 0) {
        Unref(child);  // the recursion emptied this subtree
      } else {
        AttachChild(out, child);
      }
    }
  }
  Recount(out);
  if (out->count == 0 && !prefix->empty()) {
    Unref(out);
    return nullptr;
  }
  // Merge output along diverged paths may be a valueless single-child
  // chain; fold it back into compressed form (the node is fresh, so the
  // fold is safe).
  return Compact(out, /*is_root=*/prefix->empty());
}

StatusOr<BranchStore::MergeStats> CowTrie::Merge(BranchId base, BranchId src,
                                                 BranchId dest, BranchId out,
                                                 const ConflictFn& resolve) {
  const uint64_t start_us = NowMicros();
  std::lock_guard<std::mutex> write_guard(write_mu_);
  bool base_missing = false, src_missing = false, dest_missing = false;
  Node* base_root = PinRoot(base, &base_missing);
  Node* src_root = PinRoot(src, &src_missing);
  Node* dest_root = PinRoot(dest, &dest_missing);
  if (base_missing || src_missing || dest_missing) {
    if (base_root != nullptr) Unref(base_root);
    if (src_root != nullptr) Unref(src_root);
    if (dest_root != nullptr) Unref(dest_root);
    const BranchId which =
        base_missing ? base : (src_missing ? src : dest);
    return Status::NotFound("unknown branch " + std::to_string(which));
  }

  MergeStats stats;
  std::string prefix;
  Node* merged_root = MergeRec(View{base_root, 0}, View{src_root, 0},
                               View{dest_root, 0}, &prefix, resolve, &stats);
  if (merged_root != nullptr && merged_root->count == 0) {
    Unref(merged_root);
    merged_root = nullptr;
  }

  Node* displaced = nullptr;
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto [it, created] = branches_.emplace(out, BranchEntry{});
    displaced = it->second.root;
    it->second.root = merged_root;
  }
  if (displaced != nullptr) Unref(displaced);
  if (base_root != nullptr) Unref(base_root);
  if (src_root != nullptr) Unref(src_root);
  if (dest_root != nullptr) Unref(dest_root);

  if (merge_diff_keys_ != nullptr) merge_diff_keys_->Increment(stats.diff_keys);
  if (merge_conflicts_ != nullptr) merge_conflicts_->Increment(stats.conflicts);
  if (merge_us_ != nullptr) merge_us_->Observe(NowMicros() - start_us);
  return stats;
}

// ---- iteration ----------------------------------------------------------------

Status CowTrie::ForEachRec(
    const Node* n, std::string* prefix,
    const std::function<Status(const Slice& key, const std::string& value)>&
        fn) const {
  const size_t mark = prefix->size();
  prefix->append(n->label);
  if (n->has_value) {
    TARDIS_RETURN_IF_ERROR(fn(Slice(*prefix), *n->value));
  }
  for (const Node* child : n->children) {
    TARDIS_RETURN_IF_ERROR(ForEachRec(child, prefix, fn));
  }
  prefix->resize(mark);
  return Status::OK();
}

Status CowTrie::ForEach(
    BranchId branch,
    const std::function<Status(const Slice& key, const std::string& value)>&
        fn) const {
  bool missing = false;
  Node* root = PinRoot(branch, &missing);
  if (missing) {
    return Status::NotFound("unknown branch " + std::to_string(branch));
  }
  if (root == nullptr) return Status::OK();
  std::string prefix;
  Status s = ForEachRec(root, &prefix, fn);
  Unref(root);
  return s;
}

}  // namespace tardis
