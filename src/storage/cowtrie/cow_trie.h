// CowTrie: a path-copying copy-on-write radix trie implementing
// BranchStore (DESIGN.md §12).
//
// Structure. Nodes are immutable once published: a write path-copies the
// O(key)-long spine from the root to the touched leaf position and
// republishes the branch root; every untouched subtree is shared with the
// previous version by bumping its reference count. A branch is just a
// root pointer, so Fork is one refcount increment, and two branches that
// have not diverged share every node.
//
// Node layout: each node carries a compressed edge label (its full label
// including the byte that selects it from the parent), an optional tagged
// value at the end of the label, a child vector sorted by the children's
// first label byte, and a subtree key count (making BranchSize O(1)).
//
// Allocation. Nodes are placement-constructed in a chunked arena with a
// free list (NodeArena): node turnover during path copying recycles slots
// instead of hammering the general-purpose allocator, and the arena's
// counters feed the tardis_trie_nodes / tardis_trie_shared_nodes gauges.
//
// Concurrency. Structural mutation is serialized by a writer mutex;
// readers pin a root (refcount bump) under the branch-table mutex and
// then traverse entirely lock-free over immutable nodes — concurrent
// readers of forked branches never block a writer path-copying a sibling
// branch, which is exactly the access pattern of TARDiS
// branch-on-conflict commits. A writer builds its new spine outside the
// branch-table lock and republishes the root under it.
//
// Merge. Merge(base, src, dest) recurses over byte-aligned "views" of the
// three tries and short-circuits on pointer equality: subtrees src or
// dest still share with base (or with each other) are taken wholesale
// without being walked, so the cost is O(diff), not O(store). Key-level
// conflicts (changed on both sides since base) go through the caller's
// ConflictFn; the default keeps the value with the larger tag, which for
// the TARDiS core (tag = writing state id) reproduces the key-version
// map's descending-id visibility rule.

#ifndef TARDIS_STORAGE_COWTRIE_COW_TRIE_H_
#define TARDIS_STORAGE_COWTRIE_COW_TRIE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/cowtrie/branch_store.h"

namespace tardis {

class CowTrie : public BranchStore {
 public:
  /// `registry` (optional) receives the trie metric family under `labels`
  /// (e.g. the owning site); counters keep working after the trie is
  /// destroyed, callback gauges are dropped.
  explicit CowTrie(obs::MetricsRegistry* registry = nullptr,
                   obs::LabelSet labels = {});
  ~CowTrie() override;

  CowTrie(const CowTrie&) = delete;
  CowTrie& operator=(const CowTrie&) = delete;

  Status CreateBranch(BranchId id) override;
  Status Fork(BranchId parent, BranchId child) override;
  Status Release(BranchId id) override;
  bool HasBranch(BranchId id) const override;

  Status Put(BranchId branch, const Slice& key,
             std::shared_ptr<const std::string> value, uint64_t tag) override;
  Status Get(BranchId branch, const Slice& key,
             std::string* value) const override;
  Status Delete(BranchId branch, const Slice& key) override;
  uint64_t BranchSize(BranchId branch) const override;

  StatusOr<MergeStats> Merge(BranchId base, BranchId src, BranchId dest,
                             BranchId out, const ConflictFn& resolve) override;
  Status Diff(BranchId base, BranchId branch, const DiffFn& fn) const override;
  Status ForEach(BranchId branch,
                 const std::function<Status(const Slice& key,
                                            const std::string& value)>& fn)
      const override;

  const char* name() const override { return "trie"; }

  /// Live node count across all branches (structural sharing counts a
  /// shared node once).
  uint64_t node_count() const {
    return live_nodes_.load(std::memory_order_relaxed);
  }
  /// Extra structural references to live nodes (sum of refcount-1): how
  /// much sharing copy-on-write is buying. 0 means every node is owned by
  /// exactly one parent.
  uint64_t shared_node_refs() const {
    return extra_refs_.load(std::memory_order_relaxed);
  }
  size_t branch_count() const;

 private:
  struct Node;

  /// A byte-aligned position inside a trie: `off` label bytes of `node`
  /// already consumed. Two views over different tries denote the same key
  /// prefix, which is what lets the merge/diff recursions compare
  /// subtrees across tries. node == nullptr is the empty subtrie.
  struct View {
    Node* node = nullptr;
    uint32_t off = 0;
    bool operator==(const View& other) const {
      return node == other.node && off == other.off;
    }
  };

  // Node lifetime.
  Node* NewNode();
  void Ref(Node* n) const;
  void Unref(Node* n) const;
  static Node* FindChild(const Node* n, uint8_t byte);
  Node* CloneNode(const Node* n) const;
  static void Recount(Node* n);
  static void AttachChild(Node* parent, Node* child);
  void ReplaceChild(Node* parent, uint8_t byte, Node* replacement);

  // Path-copying primitives. `rest` is the key portion below n's label.
  // Returned nodes own one reference for the caller.
  Node* InsertBelow(const Node* n, const Slice& rest,
                    const std::shared_ptr<const std::string>& value,
                    uint64_t tag, bool* inserted);
  bool DeleteBelow(const Node* n, const Slice& rest, bool is_root,
                   Node** out);
  Node* Compact(Node* fresh, bool is_root);

  // View helpers.
  static View Advance(const View& v, uint8_t byte);
  static bool ViewValue(const View& v, Version* out);
  static void ViewTransitions(const View& v, std::vector<uint8_t>* out);
  /// Materializes the subtree a view denotes as a standalone node whose
  /// label starts with the last consumed byte (shares all children).
  Node* DetachView(const View& v);

  Node* MergeRec(const View& base, const View& src, const View& dest,
                 std::string* prefix, const ConflictFn& resolve,
                 MergeStats* stats);
  void DiffRec(const View& base, const View& branch, std::string* prefix,
               const DiffFn& fn) const;
  Status ForEachRec(const Node* n, std::string* prefix,
                    const std::function<Status(const Slice& key,
                                               const std::string& value)>& fn)
      const;

  /// Pins (Ref) and returns the root of `branch`, or sets *missing.
  Node* PinRoot(BranchId branch, bool* missing) const;

  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const obs::LabelSet& labels);

  struct BranchEntry {
    Node* root = nullptr;  // null = empty branch
  };

  // Lock order: write_mu_ -> mu_ -> arena_mu_.
  mutable std::mutex write_mu_;  // serializes structural mutation
  mutable std::mutex mu_;        // branch table; readers pin roots under it
  std::unordered_map<BranchId, BranchEntry> branches_;

  // Arena: chunked slabs of node slots with a free list. A reader's final
  // Unref can free nodes, so the arena has its own (innermost) mutex.
  static constexpr size_t kChunkNodes = 1024;
  mutable std::mutex arena_mu_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  mutable std::vector<Node*> free_list_;

  mutable std::atomic<uint64_t> live_nodes_{0};
  mutable std::atomic<uint64_t> extra_refs_{0};

  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* merge_diff_keys_ = nullptr;
  obs::Counter* merge_conflicts_ = nullptr;
  obs::HistogramMetric* fork_us_ = nullptr;
  obs::HistogramMetric* merge_us_ = nullptr;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_COWTRIE_COW_TRIE_H_
