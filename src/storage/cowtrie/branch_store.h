// BranchStore: the fork-native storage interface (DESIGN.md §12).
//
// Where RecordStore models a single flat keyspace, a BranchStore models a
// *family* of keyspaces — branches — with three structural operations the
// TARDiS core otherwise has to emulate on top of flat storage:
//
//   * Fork(parent, child)       O(1): the child branch shares the parent's
//                               snapshot until either writes.
//   * Put/Get/Delete(branch)    O(key): a branch read needs no DAG
//                               descendant checks — the branch *is* the
//                               visibility set.
//   * Merge(base, src, dest)    O(diff): three-way reconciliation that
//                               recurses only where src and dest diverge
//                               from base; identical subtrees are skipped
//                               by pointer comparison.
//
// Every value carries a caller-chosen `tag` (the TARDiS core passes the
// writing state's id). Tags serve two purposes: Diff treats a key as
// "changed since base" iff its tag differs (so rewriting the same bytes
// still counts as a write, matching the DAG's write-set semantics), and
// an untagged merge resolves a conflict by keeping the value with the
// larger tag — exactly the version the key-version map's descending-id
// scan would have surfaced. Key-level conflicts that need application
// semantics are surfaced through the ConflictFn instead.

#ifndef TARDIS_STORAGE_COWTRIE_BRANCH_STORE_H_
#define TARDIS_STORAGE_COWTRIE_BRANCH_STORE_H_

#include <functional>
#include <memory>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace tardis {

class BranchStore {
 public:
  using BranchId = uint64_t;

  /// One side of a key during diff/merge. `present` distinguishes "absent
  /// on this side" from an empty value.
  struct Version {
    bool present = false;
    std::shared_ptr<const std::string> value;
    uint64_t tag = 0;
  };

  struct MergeStats {
    /// Keys reconciled individually: positions where src and dest both
    /// diverged from base along the key's path. Subtrees changed on only
    /// one side are adopted wholesale by pointer (O(1)) without being
    /// walked, so this measures the per-key work the merge actually did —
    /// it stays small even when one branch rewrote half the store.
    uint64_t diff_keys = 0;
    uint64_t conflicts = 0;   ///< keys changed on both sides since base
  };

  /// Resolves a key changed on both sides since base. Returning a Version
  /// with present=false deletes the key from the merged branch.
  using ConflictFn = std::function<Version(
      const Slice& key, const Version& base, const Version& src,
      const Version& dest)>;

  /// Diff visitor: `after` is the branch-side version, `before` the
  /// base-side one (at least one of the two tags differs).
  using DiffFn = std::function<void(const Slice& key, const Version& before,
                                    const Version& after)>;

  virtual ~BranchStore() = default;

  /// Creates an empty branch. InvalidArgument if the id is taken.
  virtual Status CreateBranch(BranchId id) = 0;
  /// O(1) fork: `child` starts as a structurally shared snapshot of
  /// `parent`. NotFound if parent is unknown, InvalidArgument if child
  /// exists.
  virtual Status Fork(BranchId parent, BranchId child) = 0;
  /// Drops a branch; shared nodes survive as long as any branch uses them.
  virtual Status Release(BranchId id) = 0;
  virtual bool HasBranch(BranchId id) const = 0;

  virtual Status Put(BranchId branch, const Slice& key,
                     std::shared_ptr<const std::string> value,
                     uint64_t tag) = 0;
  virtual Status Get(BranchId branch, const Slice& key,
                     std::string* value) const = 0;
  virtual Status Delete(BranchId branch, const Slice& key) = 0;
  /// Number of keys on the branch (0 for unknown branches).
  virtual uint64_t BranchSize(BranchId branch) const = 0;

  /// Three-way merge: writes into branch `out` (created or replaced) the
  /// reconciliation of `src` and `dest` against their common ancestor
  /// snapshot `base`. Keys changed on one side take that side; keys
  /// changed on both go through `resolve` (null = larger tag wins).
  /// `out` may equal `dest` (in-place merge).
  virtual StatusOr<MergeStats> Merge(BranchId base, BranchId src,
                                     BranchId dest, BranchId out,
                                     const ConflictFn& resolve) = 0;

  /// Invokes `fn` for every key whose tag differs between `base` and
  /// `branch` — the keys written (or deleted) on the branch since base.
  /// Skips structurally shared subtrees, so the cost is O(diff).
  virtual Status Diff(BranchId base, BranchId branch,
                      const DiffFn& fn) const = 0;

  /// Iterates the branch in key order; stops at the first non-OK status
  /// and returns it.
  virtual Status ForEach(
      BranchId branch,
      const std::function<Status(const Slice& key, const std::string& value)>&
          fn) const = 0;

  virtual const char* name() const = 0;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_COWTRIE_BRANCH_STORE_H_
