// TrieRecordStore: RecordStore adapter over a CowTrie (DESIGN.md §12).
//
// The flat RecordStore keyspace lives on one reserved branch of the trie
// (kFlatBranch, outside the state-id space the core uses for per-branch
// data). This is what lets the trie slot in as a third backend next to
// memstore/btree: the core's encoded record versions and the recovery
// id-floor scan (ForEachKey) work unchanged, while the same trie instance
// can serve BranchStore fast paths for fork/merge.

#ifndef TARDIS_STORAGE_COWTRIE_TRIE_RECORD_STORE_H_
#define TARDIS_STORAGE_COWTRIE_TRIE_RECORD_STORE_H_

#include <atomic>
#include <memory>
#include <string>

#include "storage/cowtrie/cow_trie.h"
#include "storage/record_store.h"

namespace tardis {

class TrieRecordStore : public RecordStore {
 public:
  /// Branch id reserved for the flat RecordStore keyspace. State ids are
  /// small monotone integers, so the top of the id space is safe.
  static constexpr BranchStore::BranchId kFlatBranch = ~0ull;

  /// Standalone store owning its trie (conformance tests, benches).
  TrieRecordStore() : TrieRecordStore(std::make_shared<CowTrie>()) {}

  /// Adapter over a shared trie (the core's configuration: one CowTrie
  /// serving both the flat keyspace and the per-state branches).
  explicit TrieRecordStore(std::shared_ptr<CowTrie> trie)
      : trie_(std::move(trie)) {
    if (!trie_->HasBranch(kFlatBranch)) {
      trie_->CreateBranch(kFlatBranch);
    }
  }

  Status Put(const Slice& key, const Slice& value) override {
    return trie_->Put(kFlatBranch, key,
                      std::make_shared<const std::string>(value.ToString()),
                      tag_.fetch_add(1, std::memory_order_relaxed));
  }

  Status Get(const Slice& key, std::string* value) override {
    return trie_->Get(kFlatBranch, key, value);
  }

  Status Delete(const Slice& key) override {
    return trie_->Delete(kFlatBranch, key);
  }

  Status Sync() override { return Status::OK(); }

  uint64_t size() const override { return trie_->BranchSize(kFlatBranch); }

  Status ForEachKey(
      const std::function<Status(const Slice& key)>& fn) override {
    return trie_->ForEach(
        kFlatBranch,
        [&fn](const Slice& key, const std::string&) { return fn(key); });
  }

  CowTrie* trie() { return trie_.get(); }

 private:
  std::shared_ptr<CowTrie> trie_;
  std::atomic<uint64_t> tag_{1};
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_COWTRIE_TRIE_RECORD_STORE_H_
