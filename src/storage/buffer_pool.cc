#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace tardis {

void PageHandle::MarkDirty() {
  if (!valid()) return;
  std::lock_guard<std::mutex> guard(pool_->mu_);
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (!valid()) return;
  std::lock_guard<std::mutex> guard(pool_->mu_);
  pool_->UnpinLocked(frame_, /*dirty=*/false);
  pool_ = nullptr;
  frame_ = -1;
  data_ = nullptr;
  id_ = kInvalidPageId;
}

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager),
      capacity_(capacity_pages),
      frames_(capacity_pages),
      arena_(new char[capacity_pages * kPageSize]) {
  for (size_t i = 0; i < capacity_; i++) {
    lru_.push_back(static_cast<int>(i));
    lru_pos_[static_cast<int>(i)] = std::prev(lru_.end());
  }
}

BufferPool::~BufferPool() { FlushAll(); }

void BufferPool::TouchLocked(int frame) {
  auto it = lru_pos_.find(frame);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(frame);
  lru_pos_[frame] = lru_.begin();
}

void BufferPool::UnpinLocked(int frame, bool dirty) {
  Frame& f = frames_[frame];
  assert(f.pin_count > 0);
  f.pin_count--;
  if (dirty) f.dirty = true;
}

Status BufferPool::FlushFrameLocked(int frame) {
  Frame& f = frames_[frame];
  if (!f.valid || !f.dirty) return Status::OK();
  Status s = pager_->WritePage(f.id, arena_.get() + frame * kPageSize);
  if (!s.ok()) return s;
  f.dirty = false;
  return Status::OK();
}

Status BufferPool::EvictOneLocked(int* frame_out) {
  // Scan from least-recently-used; skip pinned frames.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const int frame = *it;
    Frame& f = frames_[frame];
    if (f.pin_count > 0) continue;
    TARDIS_RETURN_IF_ERROR(FlushFrameLocked(frame));
    if (f.valid) page_to_frame_.erase(f.id);
    f.valid = false;
    f.id = kInvalidPageId;
    *frame_out = frame;
    return Status::OK();
  }
  return Status::Busy("all buffer pool frames pinned");
}

StatusOr<PageHandle> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    const int frame = it->second;
    frames_[frame].pin_count++;
    TouchLocked(frame);
    hits_++;
    return PageHandle(this, frame, arena_.get() + frame * kPageSize, id);
  }
  misses_++;
  int frame = -1;
  TARDIS_RETURN_IF_ERROR(EvictOneLocked(&frame));
  char* data = arena_.get() + frame * kPageSize;
  TARDIS_RETURN_IF_ERROR(pager_->ReadPage(id, data));
  Frame& f = frames_[frame];
  f.id = id;
  f.valid = true;
  f.dirty = false;
  f.pin_count = 1;
  page_to_frame_[id] = frame;
  TouchLocked(frame);
  return PageHandle(this, frame, data, id);
}

StatusOr<PageHandle> BufferPool::NewPage() {
  auto alloc = pager_->AllocatePage();
  if (!alloc.ok()) return alloc.status();
  const PageId id = *alloc;

  std::lock_guard<std::mutex> guard(mu_);
  int frame = -1;
  TARDIS_RETURN_IF_ERROR(EvictOneLocked(&frame));
  char* data = arena_.get() + frame * kPageSize;
  memset(data, 0, kPageSize);
  Frame& f = frames_[frame];
  f.id = id;
  f.valid = true;
  f.dirty = true;
  f.pin_count = 1;
  page_to_frame_[id] = frame;
  TouchLocked(frame);
  return PageHandle(this, frame, data, id);
}

Status BufferPool::FreePage(PageId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::Busy("cannot free a pinned page");
    }
    f.valid = false;
    f.dirty = false;
    f.id = kInvalidPageId;
    page_to_frame_.erase(it);
  }
  return pager_->FreePage(id);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < capacity_; i++) {
    TARDIS_RETURN_IF_ERROR(FlushFrameLocked(static_cast<int>(i)));
  }
  return Status::OK();
}

}  // namespace tardis
