#include "storage/sharded_record_store.h"

#include "storage/btree_record_store.h"
#include "util/coding.h"

namespace tardis {

namespace {

/// FNV-1a over the user-key prefix of a composite record key: record keys
/// are [varint len][user key][fixed64 state id] (record_codec.h), and all
/// versions of a user key must land on one shard. Falls back to hashing
/// the whole key when it is not a composite (baseline stores pass raw
/// keys through here too).
uint64_t RouteHash(const Slice& key) {
  Slice in = key;
  Slice user_key;
  if (GetLengthPrefixed(&in, &user_key) && in.size() == 8) {
    in = user_key;
  } else {
    in = key;
  }
  uint64_t hash = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < in.size(); i++) {
    hash ^= static_cast<unsigned char>(in[i]);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

StatusOr<std::unique_ptr<ShardedRecordStore>> ShardedRecordStore::Open(
    const std::string& dir, size_t num_shards, size_t cache_pages,
    fault::Env* env) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  std::unique_ptr<ShardedRecordStore> store(new ShardedRecordStore());
  for (size_t i = 0; i < num_shards; i++) {
    auto shard = BTreeRecordStore::Open(
        dir + "/shard-" + std::to_string(i) + ".db", cache_pages, env);
    if (!shard.ok()) return shard.status();
    store->shards_.push_back(std::move(*shard));
  }
  return store;
}

std::unique_ptr<ShardedRecordStore> ShardedRecordStore::Wrap(
    std::vector<std::unique_ptr<RecordStore>> shards) {
  std::unique_ptr<ShardedRecordStore> store(new ShardedRecordStore());
  store->shards_ = std::move(shards);
  return store;
}

size_t ShardedRecordStore::ShardFor(const Slice& key) const {
  return static_cast<size_t>(RouteHash(key) % shards_.size());
}

Status ShardedRecordStore::Put(const Slice& key, const Slice& value) {
  return shards_[ShardFor(key)]->Put(key, value);
}

Status ShardedRecordStore::Get(const Slice& key, std::string* value) {
  return shards_[ShardFor(key)]->Get(key, value);
}

Status ShardedRecordStore::Delete(const Slice& key) {
  return shards_[ShardFor(key)]->Delete(key);
}

Status ShardedRecordStore::Sync() {
  for (auto& shard : shards_) {
    TARDIS_RETURN_IF_ERROR(shard->Sync());
  }
  return Status::OK();
}

uint64_t ShardedRecordStore::size() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

Status ShardedRecordStore::ForEachKey(
    const std::function<Status(const Slice& key)>& fn) {
  for (auto& shard : shards_) {
    TARDIS_RETURN_IF_ERROR(shard->ForEachKey(fn));
  }
  return Status::OK();
}

}  // namespace tardis
