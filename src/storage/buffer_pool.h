// BufferPool: fixed number of kPageSize frames with LRU eviction, pin
// counts and dirty tracking, fronting a Pager. The B+Tree never touches
// the Pager directly for data pages.

#ifndef TARDIS_STORAGE_BUFFER_POOL_H_
#define TARDIS_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/pager.h"
#include "util/status.h"

namespace tardis {

class BufferPool;

/// RAII pin on a cached page frame. While alive, the frame cannot be
/// evicted and `data()` stays valid. Mark dirty before release if written.
class PageHandle {
 public:
  PageHandle() : pool_(nullptr), frame_(-1), data_(nullptr), id_(kInvalidPageId) {}
  ~PageHandle() { Release(); }

  PageHandle(PageHandle&& o) noexcept
      : pool_(o.pool_), frame_(o.frame_), data_(o.data_), id_(o.id_) {
    o.pool_ = nullptr;
    o.frame_ = -1;
    o.data_ = nullptr;
    o.id_ = kInvalidPageId;
  }
  PageHandle& operator=(PageHandle&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      data_ = o.data_;
      id_ = o.id_;
      o.pool_ = nullptr;
      o.frame_ = -1;
      o.data_ = nullptr;
      o.id_ = kInvalidPageId;
    }
    return *this;
  }

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  /// Marks the frame dirty so it is written back before eviction.
  void MarkDirty();
  /// Unpins explicitly (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, int frame, char* data, PageId id)
      : pool_(pool), frame_(frame), data_(data), id_(id) {}

  BufferPool* pool_;
  int frame_;
  char* data_;
  PageId id_;
};

class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  StatusOr<PageHandle> Fetch(PageId id);
  /// Allocates a fresh zeroed page and pins it (already marked dirty).
  StatusOr<PageHandle> NewPage();
  /// Drops the page from cache (discarding its contents) and frees it in
  /// the pager. The page must be unpinned.
  Status FreePage(PageId id);

  /// Writes back all dirty frames (no fsync; call pager->Sync() after).
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
  };

  // All private helpers require mu_ held.
  Status EvictOneLocked(int* frame_out);
  Status FlushFrameLocked(int frame);
  void TouchLocked(int frame);
  void UnpinLocked(int frame, bool dirty);

  Pager* pager_;
  const size_t capacity_;
  std::mutex mu_;
  std::vector<Frame> frames_;
  std::unique_ptr<char[]> arena_;                 // capacity_ * kPageSize
  std::unordered_map<PageId, int> page_to_frame_;
  std::list<int> lru_;                            // front = most recent
  std::unordered_map<int, std::list<int>::iterator> lru_pos_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_BUFFER_POOL_H_
