#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/coding.h"

namespace tardis {

namespace {
constexpr uint32_t kMagic = 0x7A4D15D8;  // "TARDiS" page file

// Meta page layout (all fixed64 unless noted):
//   [0..4)   magic (fixed32)
//   [8..16)  page_count
//   [16..24) free list head
//   [24..32) root
constexpr size_t kMagicOff = 0;
constexpr size_t kPageCountOff = 8;
constexpr size_t kFreeHeadOff = 16;
constexpr size_t kRootOff = 24;
}  // namespace

StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  std::unique_ptr<Pager> pager(new Pager(fd));
  Status s = pager->LoadMeta();
  if (!s.ok()) return s;
  return pager;
}

Pager::Pager(int fd)
    : fd_(fd),
      page_count_(1),
      free_head_(kInvalidPageId),
      root_(kInvalidPageId) {}

Pager::~Pager() {
  if (fd_ >= 0) {
    FlushMeta();
    ::close(fd_);
  }
}

Status Pager::LoadMeta() {
  std::lock_guard<std::mutex> guard(mu_);
  off_t len = ::lseek(fd_, 0, SEEK_END);
  if (len < 0) return Status::IOError("lseek failed");
  if (len == 0) {
    // Fresh file: write an initial meta page.
    return FlushMeta();
  }
  char buf[kPageSize];
  ssize_t n = ::pread(fd_, buf, kPageSize, 0);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::Corruption("short meta page read");
  }
  if (DecodeFixed32(buf + kMagicOff) != kMagic) {
    return Status::Corruption("bad page file magic");
  }
  page_count_ = DecodeFixed64(buf + kPageCountOff);
  free_head_ = DecodeFixed64(buf + kFreeHeadOff);
  root_ = DecodeFixed64(buf + kRootOff);
  return Status::OK();
}

Status Pager::FlushMeta() {
  char buf[kPageSize];
  memset(buf, 0, sizeof(buf));
  EncodeFixed32(buf + kMagicOff, kMagic);
  EncodeFixed64(buf + kPageCountOff, page_count_);
  EncodeFixed64(buf + kFreeHeadOff, free_head_);
  EncodeFixed64(buf + kRootOff, root_);
  ssize_t n = ::pwrite(fd_, buf, kPageSize, 0);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("meta page write failed");
  }
  return Status::OK();
}

StatusOr<PageId> Pager::AllocatePage() {
  std::lock_guard<std::mutex> guard(mu_);
  if (free_head_ != kInvalidPageId) {
    const PageId id = free_head_;
    char buf[kPageSize];
    ssize_t n = ::pread(fd_, buf, kPageSize,
                        static_cast<off_t>(id) * kPageSize);
    if (n != static_cast<ssize_t>(kPageSize)) {
      return Status::IOError("free list page read failed");
    }
    free_head_ = DecodeFixed64(buf);
    return id;
  }
  const PageId id = page_count_++;
  // Extend the file so subsequent reads of this page succeed.
  char zero[kPageSize];
  memset(zero, 0, sizeof(zero));
  ssize_t n = ::pwrite(fd_, zero, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("page file extend failed");
  }
  return id;
}

Status Pager::FreePage(PageId id) {
  if (id == kMetaPageId || id >= page_count()) {
    return Status::InvalidArgument("bad page id in FreePage");
  }
  std::lock_guard<std::mutex> guard(mu_);
  char buf[kPageSize];
  memset(buf, 0, sizeof(buf));
  EncodeFixed64(buf, free_head_);
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("free page write failed");
  }
  free_head_ = id;
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (id >= page_count_) {
      return Status::InvalidArgument("page id out of range");
    }
  }
  ssize_t n = ::pread(fd_, buf, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("page read failed");
  }
  return Status::OK();
}

Status Pager::WritePage(PageId id, const char* buf) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (id >= page_count_) {
      return Status::InvalidArgument("page id out of range");
    }
  }
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("page write failed");
  }
  return Status::OK();
}

Status Pager::Sync() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    Status s = FlushMeta();
    if (!s.ok()) return s;
  }
  if (::fsync(fd_) != 0) return Status::IOError("fsync failed");
  return Status::OK();
}

PageId Pager::root() const {
  std::lock_guard<std::mutex> guard(mu_);
  return root_;
}

Status Pager::SetRoot(PageId root) {
  std::lock_guard<std::mutex> guard(mu_);
  root_ = root;
  return Status::OK();
}

uint64_t Pager::page_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return page_count_;
}

}  // namespace tardis
