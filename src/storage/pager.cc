#include "storage/pager.h"

#include <cstring>

#include "fault/fault_points.h"
#include "util/coding.h"

namespace tardis {

namespace {
constexpr uint32_t kMagic = 0x7A4D15D8;  // "TARDiS" page file

// Meta page layout (all fixed64 unless noted):
//   [0..4)   magic (fixed32)
//   [8..16)  page_count
//   [16..24) free list head
//   [24..32) root
constexpr size_t kMagicOff = 0;
constexpr size_t kPageCountOff = 8;
constexpr size_t kFreeHeadOff = 16;
constexpr size_t kRootOff = 24;
}  // namespace

StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                             fault::Env* env) {
  auto file = fault::ResolveEnv(env)->OpenFile(path);
  if (!file.ok()) return file.status();
  std::unique_ptr<Pager> pager(new Pager(std::move(file.value())));
  Status s = pager->LoadMeta();
  if (!s.ok()) return s;
  return pager;
}

Pager::Pager(std::unique_ptr<fault::File> file)
    : file_(std::move(file)),
      page_count_(1),
      free_head_(kInvalidPageId),
      root_(kInvalidPageId) {}

Pager::~Pager() {
  if (file_ != nullptr) {
    FlushMeta();
    (void)file_->Sync();
  }
}

Status Pager::LoadMeta() {
  std::lock_guard<std::mutex> guard(mu_);
  auto len = file_->Size();
  if (!len.ok()) return len.status();
  if (len.value() == 0) {
    // Fresh file: write an initial meta page.
    return FlushMeta();
  }
  char buf[kPageSize];
  auto n = file_->PRead(0, kPageSize, buf);
  if (!n.ok()) return n.status();
  if (n.value() != kPageSize || DecodeFixed32(buf + kMagicOff) != kMagic) {
    // A sync always covers a complete, valid meta page, so a short or
    // unrecognizable one means no state of this file was ever made
    // durable: the only consistent image is the empty one. Salvage by
    // reinitializing; the commit log (whose replay cross-checks record
    // persistence) remains the source of truth for what survived.
    TARDIS_RETURN_IF_ERROR(file_->Truncate(0));
    page_count_ = 1;
    free_head_ = kInvalidPageId;
    root_ = kInvalidPageId;
    return FlushMeta();
  }
  page_count_ = DecodeFixed64(buf + kPageCountOff);
  free_head_ = DecodeFixed64(buf + kFreeHeadOff);
  root_ = DecodeFixed64(buf + kRootOff);
  return Status::OK();
}

Status Pager::FlushMeta() {
  char buf[kPageSize];
  memset(buf, 0, sizeof(buf));
  EncodeFixed32(buf + kMagicOff, kMagic);
  EncodeFixed64(buf + kPageCountOff, page_count_);
  EncodeFixed64(buf + kFreeHeadOff, free_head_);
  EncodeFixed64(buf + kRootOff, root_);
  return file_->PWrite(0, Slice(buf, kPageSize));
}

StatusOr<PageId> Pager::AllocatePage() {
  std::lock_guard<std::mutex> guard(mu_);
  if (free_head_ != kInvalidPageId) {
    const PageId id = free_head_;
    char buf[kPageSize];
    auto n = file_->PRead(static_cast<uint64_t>(id) * kPageSize, kPageSize,
                          buf);
    if (!n.ok()) return n.status();
    if (n.value() != kPageSize) {
      return Status::IOError("free list page read failed");
    }
    free_head_ = DecodeFixed64(buf);
    return id;
  }
  TARDIS_FAULT_POINT("pager.extend");
  const PageId id = page_count_++;
  // Extend the file so subsequent reads of this page succeed.
  char zero[kPageSize];
  memset(zero, 0, sizeof(zero));
  Status s = file_->PWrite(static_cast<uint64_t>(id) * kPageSize,
                           Slice(zero, kPageSize));
  if (!s.ok()) {
    page_count_--;  // the page never materialized
    return s;
  }
  return id;
}

Status Pager::FreePage(PageId id) {
  if (id == kMetaPageId || id >= page_count()) {
    return Status::InvalidArgument("bad page id in FreePage");
  }
  std::lock_guard<std::mutex> guard(mu_);
  char buf[kPageSize];
  memset(buf, 0, sizeof(buf));
  EncodeFixed64(buf, free_head_);
  TARDIS_RETURN_IF_ERROR(
      file_->PWrite(static_cast<uint64_t>(id) * kPageSize,
                    Slice(buf, kPageSize)));
  free_head_ = id;
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) {
  std::lock_guard<std::mutex> guard(mu_);
  if (id >= page_count_) {
    return Status::InvalidArgument("page id out of range");
  }
  TARDIS_FAULT_POINT("pager.read_page");
  auto n = file_->PRead(static_cast<uint64_t>(id) * kPageSize, kPageSize, buf);
  if (!n.ok()) return n.status();
  if (n.value() != kPageSize) return Status::IOError("page read failed");
  return Status::OK();
}

Status Pager::WritePage(PageId id, const char* buf) {
  std::lock_guard<std::mutex> guard(mu_);
  if (id >= page_count_) {
    return Status::InvalidArgument("page id out of range");
  }
  TARDIS_FAULT_POINT("pager.write_page");
  return file_->PWrite(static_cast<uint64_t>(id) * kPageSize,
                       Slice(buf, kPageSize));
}

Status Pager::Sync() {
  std::lock_guard<std::mutex> guard(mu_);
  TARDIS_FAULT_POINT("pager.sync");
  TARDIS_RETURN_IF_ERROR(FlushMeta());
  return file_->Sync();
}

PageId Pager::root() const {
  std::lock_guard<std::mutex> guard(mu_);
  return root_;
}

Status Pager::SetRoot(PageId root) {
  std::lock_guard<std::mutex> guard(mu_);
  root_ = root;
  return Status::OK();
}

uint64_t Pager::page_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return page_count_;
}

}  // namespace tardis
