// Pager: fixed-size page file with a free list and a meta page.
//
// Layout: page 0 is the meta page (magic, page count, free-list head, and
// a user root pointer that the B+Tree stores its root page in). Freed
// pages are chained through their first 8 bytes.

#ifndef TARDIS_STORAGE_PAGER_H_
#define TARDIS_STORAGE_PAGER_H_

#include <memory>
#include <mutex>
#include <string>

#include "fault/env.h"
#include "storage/page.h"
#include "util/status.h"

namespace tardis {

class Pager {
 public:
  /// Opens (creating if absent) the page file at `path`. File IO runs
  /// through `env` (null = the passthrough POSIX environment), making
  /// disk faults injectable.
  static StatusOr<std::unique_ptr<Pager>> Open(const std::string& path,
                                               fault::Env* env = nullptr);

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Allocates a page (reusing the free list when possible).
  StatusOr<PageId> AllocatePage();
  /// Returns a page to the free list.
  Status FreePage(PageId id);

  /// Reads page `id` into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf);
  /// Writes `buf` (kPageSize bytes) as page `id`.
  Status WritePage(PageId id, const char* buf);

  /// fsyncs the page file.
  Status Sync();

  /// User root pointer persisted in the meta page (kInvalidPageId if unset).
  PageId root() const;
  Status SetRoot(PageId root);

  uint64_t page_count() const;

 private:
  explicit Pager(std::unique_ptr<fault::File> file);

  Status LoadMeta();
  Status FlushMeta();

  mutable std::mutex mu_;
  std::unique_ptr<fault::File> file_;
  uint64_t page_count_;   // includes the meta page
  PageId free_head_;      // head of the free list, or kInvalidPageId
  PageId root_;           // user root pointer
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_PAGER_H_
