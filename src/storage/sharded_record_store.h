// ShardedRecordStore: hash-partitioned record persistence — the storage
// half of the data-partitioning extension the paper sketches in §6.4
// ("executing distributed transactions within a datacenter, with the
// State DAG collocated with the transaction manager").
//
// The consistency layer (State DAG, key-version map, commit logic) stays
// central; only record payloads shard across N independent backends, each
// with its own file, buffer pool and lock domain — so concurrent record
// persistence from different committers stops funneling through a single
// B+Tree writer lock.
//
// Shard routing hashes the *user* key portion of the composite record key
// (see core/record_codec.h) so all versions of one key colocate, which
// keeps per-key operations on one shard.

#ifndef TARDIS_STORAGE_SHARDED_RECORD_STORE_H_
#define TARDIS_STORAGE_SHARDED_RECORD_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "fault/env.h"
#include "storage/record_store.h"
#include "util/status.h"

namespace tardis {

class ShardedRecordStore : public RecordStore {
 public:
  /// Opens `num_shards` disk-backed shards under `dir` (shard-<i>.db).
  /// `cache_pages` is the buffer-pool budget *per shard*. File IO runs
  /// through `env` (null = passthrough POSIX).
  static StatusOr<std::unique_ptr<ShardedRecordStore>> Open(
      const std::string& dir, size_t num_shards, size_t cache_pages = 1024,
      fault::Env* env = nullptr);

  /// Builds a sharded store over caller-supplied backends (used by tests
  /// to mix in-memory shards).
  static std::unique_ptr<ShardedRecordStore> Wrap(
      std::vector<std::unique_ptr<RecordStore>> shards);

  Status Put(const Slice& key, const Slice& value) override;
  Status Get(const Slice& key, std::string* value) override;
  Status Delete(const Slice& key) override;
  Status Sync() override;
  uint64_t size() const override;
  Status ForEachKey(
      const std::function<Status(const Slice& key)>& fn) override;

  size_t num_shards() const { return shards_.size(); }
  /// The shard a key routes to (exposed for tests and diagnostics).
  size_t ShardFor(const Slice& key) const;

 private:
  ShardedRecordStore() = default;

  std::vector<std::unique_ptr<RecordStore>> shards_;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_SHARDED_RECORD_STORE_H_
