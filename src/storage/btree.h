// Disk-backed B+Tree over the buffer pool.
//
// This is the "record B-Tree" of the TARDiS storage layer (§4): record
// versions live here, keyed by an application-chosen byte string (the
// TARDiS core encodes (user key, state id) composites). It also backs the
// SeqKV/OCC baselines directly.
//
// Properties:
//  * slotted 4 KiB pages, variable-length keys and values;
//  * leaf pages chained left-to-right for ordered scans;
//  * deletes tolerate under-full pages (no rebalancing) — acceptable for
//    the version-pruning workload, where whole key ranges age out;
//  * a tree-level shared_mutex: concurrent readers, single writer. Record
//    locking/versioning above this layer provides transactional isolation.

#ifndef TARDIS_STORAGE_BTREE_H_
#define TARDIS_STORAGE_BTREE_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/slice.h"
#include "util/status.h"

namespace tardis {

class BTree {
 public:
  /// Maximum key+value payload accepted by Put (fits ≥3 cells per page).
  static constexpr size_t kMaxPayload = 1000;

  /// Opens a tree rooted at pager->root(), creating an empty root leaf on
  /// first use. `pool` and its pager must outlive the tree.
  static StatusOr<std::unique_ptr<BTree>> Open(BufferPool* pool, Pager* pager);

  /// Inserts or overwrites `key`.
  Status Put(const Slice& key, const Slice& value);
  /// Looks up `key`; Status::NotFound if absent.
  Status Get(const Slice& key, std::string* value);
  /// Removes `key`; Status::NotFound if absent.
  Status Delete(const Slice& key);

  /// Number of live key/value pairs.
  uint64_t size() const { return size_; }

  /// Forward iterator over the whole tree (snapshot-free: concurrent
  /// writers require external coordination, which the TARDiS core and the
  /// baselines both provide).
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    Slice key() const { return Slice(key_); }
    Slice value() const { return Slice(value_); }
    void Next();
    /// Positions at the first entry with key >= target.
    void Seek(const Slice& target);
    void SeekToFirst();

   private:
    friend class BTree;
    explicit Iterator(BTree* tree) : tree_(tree) {}
    void LoadCurrent();
    void AdvanceLeaf();

    BTree* tree_ = nullptr;
    PageId leaf_ = kInvalidPageId;
    int slot_ = 0;
    bool valid_ = false;
    std::string key_;
    std::string value_;
  };

  Iterator NewIterator() { return Iterator(this); }

 private:
  BTree(BufferPool* pool, Pager* pager) : pool_(pool), pager_(pager) {}

  struct SplitResult {
    std::string separator;  // max key remaining in the (old) left child
    PageId left_stays;      // the old page id (now the lower half)
    PageId new_right;       // the freshly allocated upper half
  };

  Status EnsureRoot();
  Status PutRec(PageId page, const Slice& key, const Slice& value,
                std::optional<SplitResult>* split, bool* inserted_new);
  Status FindLeaf(const Slice& key, PageId* leaf) const;

  BufferPool* pool_;
  Pager* pager_;
  PageId root_ = kInvalidPageId;
  uint64_t size_ = 0;
  mutable std::shared_mutex rw_;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_BTREE_H_
