#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "util/coding.h"

namespace tardis {

namespace {

// Page header layout (see btree.h):
//   [0]      u8  type (1 = leaf, 2 = internal)
//   [2..4)   u16 ncells
//   [4..6)   u16 cell_start (cells grow down from kPageSize)
//   [6..8)   u16 frag bytes (reclaimed by compaction)
//   [8..16)  u64 right (leaf: right sibling; internal: rightmost child)
//   [16..)   u16 slot array
constexpr uint8_t kLeaf = 1;
constexpr uint8_t kInternal = 2;
constexpr size_t kHeader = 16;

uint8_t PageType(const char* p) { return static_cast<uint8_t>(p[0]); }
void SetPageType(char* p, uint8_t t) { p[0] = static_cast<char>(t); }

uint16_t NCells(const char* p) { return static_cast<uint16_t>(DecodeFixed32(p + 2) & 0xFFFF); }
void SetNCells(char* p, uint16_t n) { memcpy(p + 2, &n, 2); }

uint16_t CellStart(const char* p) {
  uint16_t v;
  memcpy(&v, p + 4, 2);
  return v;
}
void SetCellStart(char* p, uint16_t v) { memcpy(p + 4, &v, 2); }

uint16_t Frag(const char* p) {
  uint16_t v;
  memcpy(&v, p + 6, 2);
  return v;
}
void SetFrag(char* p, uint16_t v) { memcpy(p + 6, &v, 2); }

PageId Right(const char* p) { return DecodeFixed64(p + 8); }
void SetRight(char* p, PageId r) { EncodeFixed64(p + 8, r); }

uint16_t Slot(const char* p, int i) {
  uint16_t v;
  memcpy(&v, p + kHeader + 2 * i, 2);
  return v;
}
void SetSlot(char* p, int i, uint16_t off) {
  memcpy(p + kHeader + 2 * i, &off, 2);
}

void InitPage(char* p, uint8_t type) {
  memset(p, 0, kPageSize);
  SetPageType(p, type);
  SetNCells(p, 0);
  SetCellStart(p, static_cast<uint16_t>(kPageSize));
  SetFrag(p, 0);
  SetRight(p, kInvalidPageId);
}

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    n++;
  }
  return n;
}

// ---- cell encoding -------------------------------------------------------

void BuildLeafCell(std::string* out, const Slice& k, const Slice& v) {
  out->clear();
  PutVarint64(out, k.size());
  PutVarint64(out, v.size());
  out->append(k.data(), k.size());
  out->append(v.data(), v.size());
}

bool ParseLeafCell(const char* cell, size_t max_len, Slice* k, Slice* v) {
  Slice in(cell, max_len);
  uint64_t klen = 0, vlen = 0;
  if (!GetVarint64(&in, &klen) || !GetVarint64(&in, &vlen)) return false;
  if (in.size() < klen + vlen) return false;
  *k = Slice(in.data(), static_cast<size_t>(klen));
  *v = Slice(in.data() + klen, static_cast<size_t>(vlen));
  return true;
}

size_t LeafCellSize(const char* cell, size_t max_len) {
  Slice k, v;
  if (!ParseLeafCell(cell, max_len, &k, &v)) return 0;
  return VarintLen(k.size()) + VarintLen(v.size()) + k.size() + v.size();
}

void BuildInternalCell(std::string* out, const Slice& k, PageId child) {
  out->clear();
  PutVarint64(out, k.size());
  out->append(k.data(), k.size());
  PutFixed64(out, child);
}

bool ParseInternalCell(const char* cell, size_t max_len, Slice* k,
                       PageId* child) {
  Slice in(cell, max_len);
  uint64_t klen = 0;
  if (!GetVarint64(&in, &klen)) return false;
  if (in.size() < klen + 8) return false;
  *k = Slice(in.data(), static_cast<size_t>(klen));
  *child = DecodeFixed64(in.data() + klen);
  return true;
}

size_t InternalCellSize(const char* cell, size_t max_len) {
  Slice k;
  PageId child;
  if (!ParseInternalCell(cell, max_len, &k, &child)) return 0;
  return VarintLen(k.size()) + k.size() + 8;
}

// ---- generic page operations ---------------------------------------------

const char* CellAt(const char* p, int i) { return p + Slot(p, i); }

size_t CellSizeAt(const char* p, int i) {
  const char* cell = CellAt(p, i);
  const size_t remaining = kPageSize - Slot(p, i);
  return PageType(p) == kLeaf ? LeafCellSize(cell, remaining)
                              : InternalCellSize(cell, remaining);
}

Slice CellKey(const char* p, int i) {
  Slice k, v;
  PageId c;
  const char* cell = CellAt(p, i);
  const size_t remaining = kPageSize - Slot(p, i);
  if (PageType(p) == kLeaf) {
    ParseLeafCell(cell, remaining, &k, &v);
  } else {
    ParseInternalCell(cell, remaining, &k, &c);
  }
  return k;
}

size_t FreeSpace(const char* p) {
  return CellStart(p) - (kHeader + 2 * static_cast<size_t>(NCells(p)));
}

/// Rewrites the page, squeezing out fragmentation.
void CompactPage(char* p) {
  const int n = NCells(p);
  std::vector<std::string> cells(n);
  for (int i = 0; i < n; i++) {
    cells[i].assign(CellAt(p, i), CellSizeAt(p, i));
  }
  uint16_t start = static_cast<uint16_t>(kPageSize);
  for (int i = 0; i < n; i++) {
    start = static_cast<uint16_t>(start - cells[i].size());
    memcpy(p + start, cells[i].data(), cells[i].size());
    SetSlot(p, i, start);
  }
  SetCellStart(p, start);
  SetFrag(p, 0);
}

/// True if `cell_size` more bytes (plus a slot) fit, possibly after
/// compaction.
bool CanFit(const char* p, size_t cell_size) {
  return FreeSpace(p) + Frag(p) >= cell_size + 2;
}

/// Inserts `cell` at slot index `idx`. Caller must have checked CanFit.
void InsertCell(char* p, int idx, const std::string& cell) {
  if (FreeSpace(p) < cell.size() + 2) CompactPage(p);
  assert(FreeSpace(p) >= cell.size() + 2);
  const int n = NCells(p);
  const uint16_t start = static_cast<uint16_t>(CellStart(p) - cell.size());
  memcpy(p + start, cell.data(), cell.size());
  SetCellStart(p, start);
  // Shift the slot array right of idx.
  for (int i = n; i > idx; i--) SetSlot(p, i, Slot(p, i - 1));
  SetSlot(p, idx, start);
  SetNCells(p, static_cast<uint16_t>(n + 1));
}

void RemoveCell(char* p, int idx) {
  const int n = NCells(p);
  assert(idx >= 0 && idx < n);
  SetFrag(p, static_cast<uint16_t>(Frag(p) + CellSizeAt(p, idx)));
  for (int i = idx; i < n - 1; i++) SetSlot(p, i, Slot(p, i + 1));
  SetNCells(p, static_cast<uint16_t>(n - 1));
}

/// First slot whose key >= `key`; NCells if none.
int LowerBound(const char* p, const Slice& key) {
  int lo = 0, hi = NCells(p);
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (CellKey(p, mid).compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Overwrites the child pointer of internal cell `idx` in place (the child
/// is the trailing fixed64 of the cell, so the cell size is unchanged).
void SetInternalChild(char* p, int idx, PageId child) {
  const char* cell = CellAt(p, idx);
  Slice in(cell, kPageSize - Slot(p, idx));
  uint64_t klen = 0;
  GetVarint64(&in, &klen);
  char* child_pos = const_cast<char*>(in.data()) + klen;
  EncodeFixed64(child_pos, child);
}

#ifdef TARDIS_BTREE_PARANOID
/// Debug-only invariant check: slot keys strictly sorted, cells inside the
/// page, no overlap with the slot array.
void VerifyPage(const char* p, const char* where) {
  const int n = NCells(p);
  const size_t slots_end = kHeader + 2 * static_cast<size_t>(n);
  for (int i = 0; i < n; i++) {
    const uint16_t off = Slot(p, i);
    if (off < slots_end || off >= kPageSize) {
      fprintf(stderr, "PANIC %s: slot %d offset %u out of range (n=%d)\n",
              where, i, off, n);
      abort();
    }
    const size_t size = CellSizeAt(p, i);
    if (size == 0 || off + size > kPageSize) {
      fprintf(stderr, "PANIC %s: cell %d size %zu bad (off=%u)\n", where, i,
              size, off);
      abort();
    }
    if (i > 0 && !(CellKey(p, i - 1).compare(CellKey(p, i)) < 0)) {
      fprintf(stderr, "PANIC %s: cells %d/%d out of order: %s >= %s (n=%d)\n",
              where, i - 1, i, CellKey(p, i - 1).ToString().c_str(),
              CellKey(p, i).ToString().c_str(), n);
      abort();
    }
  }
}
#define TARDIS_VERIFY_PAGE(p, where) VerifyPage(p, where)
#else
#define TARDIS_VERIFY_PAGE(p, where)
#endif

}  // namespace

// ---- tree operations -------------------------------------------------------

StatusOr<std::unique_ptr<BTree>> BTree::Open(BufferPool* pool, Pager* pager) {
  std::unique_ptr<BTree> tree(new BTree(pool, pager));
  TARDIS_RETURN_IF_ERROR(tree->EnsureRoot());
  return tree;
}

Status BTree::EnsureRoot() {
  root_ = pager_->root();
  if (root_ != kInvalidPageId) {
    // Recompute size with a full scan (Open happens once; recovery-time
    // cost is acceptable and keeps the meta page simple).
    size_ = 0;
    Iterator it = NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) size_++;
    return Status::OK();
  }
  auto page = pool_->NewPage();
  if (!page.ok()) return page.status();
  InitPage(page->data(), kLeaf);
  page->MarkDirty();
  root_ = page->id();
  return pager_->SetRoot(root_);
}

Status BTree::FindLeaf(const Slice& key, PageId* leaf) const {
  PageId cur = root_;
  while (true) {
    auto h = pool_->Fetch(cur);
    if (!h.ok()) return h.status();
    const char* p = h->data();
    if (PageType(p) == kLeaf) {
      *leaf = cur;
      return Status::OK();
    }
    const int idx = LowerBound(p, key);
    if (idx < NCells(p)) {
      Slice k;
      PageId child;
      ParseInternalCell(CellAt(p, idx), kPageSize - Slot(p, idx), &k, &child);
      cur = child;
    } else {
      cur = Right(p);
    }
  }
}

Status BTree::Get(const Slice& key, std::string* value) {
  std::shared_lock<std::shared_mutex> guard(rw_);
  PageId leaf;
  TARDIS_RETURN_IF_ERROR(FindLeaf(key, &leaf));
  auto h = pool_->Fetch(leaf);
  if (!h.ok()) return h.status();
  const char* p = h->data();
  const int idx = LowerBound(p, key);
  if (idx >= NCells(p) || CellKey(p, idx) != key) {
    return Status::NotFound();
  }
  Slice k, v;
  ParseLeafCell(CellAt(p, idx), kPageSize - Slot(p, idx), &k, &v);
  value->assign(v.data(), v.size());
  return Status::OK();
}

Status BTree::Put(const Slice& key, const Slice& value) {
  if (key.size() + value.size() > kMaxPayload) {
    return Status::InvalidArgument("key+value exceeds kMaxPayload");
  }
  if (key.empty()) return Status::InvalidArgument("empty key");
  std::unique_lock<std::shared_mutex> guard(rw_);

  std::optional<SplitResult> split;
  bool inserted_new = false;
  TARDIS_RETURN_IF_ERROR(PutRec(root_, key, value, &split, &inserted_new));
  if (inserted_new) size_++;

  if (split.has_value()) {
    // Grow the tree: new internal root with one separator.
    auto page = pool_->NewPage();
    if (!page.ok()) return page.status();
    char* p = page->data();
    InitPage(p, kInternal);
    std::string cell;
    BuildInternalCell(&cell, Slice(split->separator), split->left_stays);
    InsertCell(p, 0, cell);
    SetRight(p, split->new_right);
    page->MarkDirty();
    root_ = page->id();
    TARDIS_RETURN_IF_ERROR(pager_->SetRoot(root_));
  }
  return Status::OK();
}

Status BTree::PutRec(PageId page_id, const Slice& key, const Slice& value,
                     std::optional<SplitResult>* split, bool* inserted_new) {
  auto h = pool_->Fetch(page_id);
  if (!h.ok()) return h.status();
  char* p = h->data();

  if (PageType(p) == kLeaf) {
    int idx = LowerBound(p, key);
    const bool overwrite = idx < NCells(p) && CellKey(p, idx) == key;
    if (overwrite) {
      RemoveCell(p, idx);
    } else {
      *inserted_new = true;
    }
    std::string cell;
    BuildLeafCell(&cell, key, value);
    if (CanFit(p, cell.size())) {
      InsertCell(p, idx, cell);
      TARDIS_VERIFY_PAGE(p, "leaf-insert");
      h->MarkDirty();
      return Status::OK();
    }

    // Split: gather all cells plus the new one, redistribute by bytes.
    const int n = NCells(p);
    std::vector<std::string> cells;
    cells.reserve(n + 1);
    size_t total = 0;
    for (int i = 0; i < n; i++) {
      cells.emplace_back(CellAt(p, i), CellSizeAt(p, i));
      total += cells.back().size() + 2;
    }
    cells.insert(cells.begin() + idx, cell);
    total += cell.size() + 2;

    auto right_page = pool_->NewPage();
    if (!right_page.ok()) return right_page.status();
    char* rp = right_page->data();
    InitPage(rp, kLeaf);
    SetRight(rp, Right(p));

    const PageId old_right_sibling [[maybe_unused]] = Right(p);
    InitPage(p, kLeaf);
    SetRight(p, right_page->id());

    // Fill the left page to roughly half the payload bytes. Once one cell
    // spills right, everything after it must too: cells are in key order,
    // and only a prefix/suffix cut keeps the two ranges disjoint (a
    // smaller later cell sneaking back left would scramble the order).
    size_t acc = 0;
    int left_n = 0;
    int out_idx = 0;
    bool spill_right = false;
    for (const std::string& c : cells) {
      if (!spill_right && (acc + c.size() + 2 <= total / 2 ||
                           left_n == 0)) {  // left gets at least one cell
        InsertCell(p, left_n++, c);
        acc += c.size() + 2;
      } else {
        spill_right = true;
        InsertCell(rp, out_idx++, c);
      }
    }
    assert(NCells(rp) > 0);

    SplitResult result;
    result.separator = CellKey(p, NCells(p) - 1).ToString();
    result.left_stays = page_id;
    result.new_right = right_page->id();
    *split = std::move(result);

    TARDIS_VERIFY_PAGE(p, "leaf-split-left");
    TARDIS_VERIFY_PAGE(rp, "leaf-split-right");
    h->MarkDirty();
    right_page->MarkDirty();
    return Status::OK();
  }

  // Internal node: descend.
  const int n = NCells(p);
  const int idx = LowerBound(p, key);
  PageId child;
  if (idx < n) {
    Slice k;
    ParseInternalCell(CellAt(p, idx), kPageSize - Slot(p, idx), &k, &child);
  } else {
    child = Right(p);
  }

  std::optional<SplitResult> child_split;
  TARDIS_RETURN_IF_ERROR(PutRec(child, key, value, &child_split, inserted_new));
  if (!child_split.has_value()) return Status::OK();

  // The child split into (left_stays | new_right) around `separator`.
  // Re-point the existing reference at new_right, then insert a cell
  // (separator -> left_stays) at idx.
  if (idx < n) {
    SetInternalChild(p, idx, child_split->new_right);
  } else {
    SetRight(p, child_split->new_right);
  }
  std::string cell;
  BuildInternalCell(&cell, Slice(child_split->separator),
                    child_split->left_stays);
#ifdef TARDIS_BTREE_PARANOID
  for (int i = 0; i < NCells(p); i++) {
    if (CellKey(p, i) == Slice(child_split->separator)) {
      fprintf(stderr,
              "DUP-SEP sep=%s idx=%d n=%d child=%llu new_right=%llu page=%llu\n",
              child_split->separator.c_str(), idx, n,
              (unsigned long long)child, (unsigned long long)child_split->new_right,
              (unsigned long long)page_id);
      for (int j = 0; j < NCells(p); j++) {
        PageId cc; Slice kk;
        ParseInternalCell(CellAt(p, j), kPageSize - Slot(p, j), &kk, &cc);
        fprintf(stderr, "  cell %d key=%s child=%llu\n", j,
                kk.ToString().c_str(), (unsigned long long)cc);
      }
      fprintf(stderr, "  rightmost=%llu\n", (unsigned long long)Right(p));
      abort();
    }
  }
#endif
  if (CanFit(p, cell.size())) {
    InsertCell(p, idx, cell);
    TARDIS_VERIFY_PAGE(p, "internal-insert");
    h->MarkDirty();
    return Status::OK();
  }

  // Split this internal node. Gather (key, child) pairs plus rightmost.
  struct Pair {
    std::string key;
    PageId child;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n + 1);
  for (int i = 0; i < n; i++) {
    Slice k;
    PageId c;
    ParseInternalCell(CellAt(p, i), kPageSize - Slot(p, i), &k, &c);
    pairs.push_back({k.ToString(), c});
  }
  pairs.insert(pairs.begin() + idx,
               {child_split->separator, child_split->left_stays});
  const PageId rightmost = Right(p);

  const int m = static_cast<int>(pairs.size()) / 2;  // pushed-up separator
  auto right_page = pool_->NewPage();
  if (!right_page.ok()) return right_page.status();
  char* rp = right_page->data();
  InitPage(rp, kInternal);

  // Left keeps pairs [0, m); its rightmost child is pairs[m].child.
  InitPage(p, kInternal);
  for (int i = 0; i < m; i++) {
    std::string c;
    BuildInternalCell(&c, Slice(pairs[i].key), pairs[i].child);
    InsertCell(p, i, c);
  }
  SetRight(p, pairs[m].child);

  // Right gets pairs (m, end); rightmost child carried over.
  int out = 0;
  for (size_t i = m + 1; i < pairs.size(); i++) {
    std::string c;
    BuildInternalCell(&c, Slice(pairs[i].key), pairs[i].child);
    InsertCell(rp, out++, c);
  }
  SetRight(rp, rightmost);

  SplitResult result;
  result.separator = pairs[m].key;
  result.left_stays = page_id;
  result.new_right = right_page->id();
  *split = std::move(result);

  TARDIS_VERIFY_PAGE(p, "internal-split-left");
  TARDIS_VERIFY_PAGE(rp, "internal-split-right");
  h->MarkDirty();
  right_page->MarkDirty();
  return Status::OK();
}

Status BTree::Delete(const Slice& key) {
  std::unique_lock<std::shared_mutex> guard(rw_);
  PageId leaf;
  TARDIS_RETURN_IF_ERROR(FindLeaf(key, &leaf));
  auto h = pool_->Fetch(leaf);
  if (!h.ok()) return h.status();
  char* p = h->data();
  const int idx = LowerBound(p, key);
  if (idx >= NCells(p) || CellKey(p, idx) != key) {
    return Status::NotFound();
  }
  RemoveCell(p, idx);
  h->MarkDirty();
  size_--;
  return Status::OK();
}

// ---- iterator --------------------------------------------------------------

void BTree::Iterator::SeekToFirst() {
  std::shared_lock<std::shared_mutex> guard(tree_->rw_);
  // Descend leftmost.
  PageId cur = tree_->root_;
  while (true) {
    auto h = tree_->pool_->Fetch(cur);
    if (!h.ok()) {
      valid_ = false;
      return;
    }
    const char* p = h->data();
    if (PageType(p) == kLeaf) break;
    if (NCells(p) > 0) {
      Slice k;
      PageId child;
      ParseInternalCell(CellAt(p, 0), kPageSize - Slot(p, 0), &k, &child);
      cur = child;
    } else {
      cur = Right(p);
    }
  }
  leaf_ = cur;
  slot_ = 0;
  LoadCurrent();
}

void BTree::Iterator::Seek(const Slice& target) {
  std::shared_lock<std::shared_mutex> guard(tree_->rw_);
  if (tree_->FindLeaf(target, &leaf_).ok()) {
    auto h = tree_->pool_->Fetch(leaf_);
    if (h.ok()) {
      slot_ = LowerBound(h->data(), target);
      LoadCurrent();
      return;
    }
  }
  valid_ = false;
}

void BTree::Iterator::Next() {
  std::shared_lock<std::shared_mutex> guard(tree_->rw_);
  slot_++;
  LoadCurrent();
}

void BTree::Iterator::LoadCurrent() {
  // Requires tree_->rw_ held (shared) by the caller.
  while (leaf_ != kInvalidPageId) {
    auto h = tree_->pool_->Fetch(leaf_);
    if (!h.ok()) {
      valid_ = false;
      return;
    }
    const char* p = h->data();
    if (slot_ < NCells(p)) {
      Slice k, v;
      ParseLeafCell(CellAt(p, slot_), kPageSize - Slot(p, slot_), &k, &v);
      key_.assign(k.data(), k.size());
      value_.assign(v.data(), v.size());
      valid_ = true;
      return;
    }
    leaf_ = Right(p);
    slot_ = 0;
  }
  valid_ = false;
}

void BTree::Iterator::AdvanceLeaf() {}  // folded into LoadCurrent

}  // namespace tardis
