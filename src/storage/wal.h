// Write-ahead log with CRC-framed records.
//
// Used as TARDiS' commit log (§6.5): each committed transaction appends
// one record (commit state id, parent ids, write-set keys). Supports
// synchronous or asynchronous flushing (the paper's "Asynchronous Flush"
// trades durability for throughput) and truncation after a checkpoint.
//
// Record framing: [u32 masked crc over len+payload][u32 len][payload].
// Recovery stops at the first torn/corrupt record.

#ifndef TARDIS_STORAGE_WAL_H_
#define TARDIS_STORAGE_WAL_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace tardis {

class Wal {
 public:
  enum class FlushMode {
    kSync,   ///< fsync on every append (durable)
    kAsync,  ///< write to the OS only; fsync on Checkpoint/close
  };

  static StatusOr<std::unique_ptr<Wal>> Open(const std::string& path,
                                             FlushMode mode = FlushMode::kAsync);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record; with kSync also fsyncs.
  Status Append(const Slice& payload);

  /// Forces everything written so far to stable storage.
  Status Sync();

  /// Replays all intact records in append order. Stops (returning OK) at
  /// the first torn record, mirroring crash-recovery semantics.
  Status ReadAll(const std::function<Status(const Slice&)>& fn);

  /// Discards the log contents (after a checkpoint has made them
  /// redundant).
  Status Truncate();

  uint64_t appended_bytes() const { return appended_; }

 private:
  Wal(int fd, FlushMode mode, std::string path)
      : fd_(fd), mode_(mode), path_(std::move(path)) {}

  std::mutex mu_;
  int fd_;
  FlushMode mode_;
  std::string path_;
  uint64_t appended_ = 0;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_WAL_H_
