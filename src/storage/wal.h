// Write-ahead log with CRC-framed records.
//
// Used as TARDiS' commit log (§6.5): each committed transaction appends
// one record (commit state id, parent ids, write-set keys). Supports
// synchronous or asynchronous flushing (the paper's "Asynchronous Flush"
// trades durability for throughput) and truncation after a checkpoint.
//
// Record framing: [u32 masked crc over len+payload][u32 len][payload].
// Recovery stops at the first torn/corrupt record.
//
// All file IO goes through the fault::Env seam, so tests inject short
// writes, ENOSPC, fsync failures and crash-truncated tails. A failed
// append is repaired by truncating back to the last good frame boundary;
// if even that fails the log is poisoned (every later append refuses)
// until a successful Truncate().

#ifndef TARDIS_STORAGE_WAL_H_
#define TARDIS_STORAGE_WAL_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "fault/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace tardis {

class Wal {
 public:
  enum class FlushMode {
    kSync,   ///< fsync on every append (durable)
    kAsync,  ///< write to the OS only; fsync on Checkpoint/close
  };

  static StatusOr<std::unique_ptr<Wal>> Open(const std::string& path,
                                             FlushMode mode = FlushMode::kAsync,
                                             fault::Env* env = nullptr);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record; with kSync also fsyncs. On a failed write the
  /// partial frame is truncated away so the log stays parseable.
  Status Append(const Slice& payload);

  /// Forces everything written so far to stable storage.
  Status Sync();

  /// Replays all intact records in append order. Stops (returning OK) at
  /// the first torn or corrupt record, mirroring crash-recovery semantics,
  /// and truncates the file to the valid prefix so subsequent appends
  /// extend a clean log instead of landing unreachable behind the tear.
  Status ReadAll(const std::function<Status(const Slice&)>& fn);

  /// Discards the log contents (after a checkpoint has made them
  /// redundant). Clears the poisoned flag.
  Status Truncate();

  uint64_t appended_bytes() const { return appended_; }

 private:
  Wal(std::unique_ptr<fault::File> file, FlushMode mode, std::string path)
      : file_(std::move(file)), mode_(mode), path_(std::move(path)) {}

  std::mutex mu_;
  std::unique_ptr<fault::File> file_;
  FlushMode mode_;
  std::string path_;
  uint64_t appended_ = 0;
  /// Set when a failed append could not be repaired: the tail may hold a
  /// partial frame, so further appends would be unrecoverable.
  bool poisoned_ = false;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_WAL_H_
