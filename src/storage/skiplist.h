// Concurrent skip list.
//
// TARDiS keeps, per key, a topologically ordered list of record versions
// (§6.1.4: "TARDiS can cheaply maintain a topological order as a sorted
// list (more precisely, as a lock-free skip list)"). This is that skip
// list: insertions use per-level CAS and never block readers; readers are
// wait-free. Removal (needed by the garbage collector's record-pruning
// pass, §6.3) is mark-then-unlink: logically deleted nodes are skipped by
// readers and physically unlinked by later traversals.
//
// Memory reclamation: nodes are retired to a per-list free queue and only
// reclaimed when the owner knows no readers are active (the key-version
// map drains retired nodes from its GC thread during quiescent pruning
// passes). Node keys are immutable after insert.

#ifndef TARDIS_STORAGE_SKIPLIST_H_
#define TARDIS_STORAGE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "util/random.h"

namespace tardis {

/// Comparator contract: Compare(a, b) < 0 iff a orders before b.
template <typename Key, class Comparator>
class SkipList {
 public:
  explicit SkipList(Comparator cmp)
      : compare_(cmp),
        head_(NewNode(Key(), kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef),
        size_(0) {
    for (int i = 0; i < kMaxHeight; i++) {
      head_->SetNext(i, nullptr);
    }
  }

  ~SkipList() {
    Node* x = head_;
    while (x != nullptr) {
      Node* next = x->Next(0);
      FreeNode(x);
      x = next;
    }
    for (Node* n : retired_) FreeNode(n);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key. Duplicates are allowed to coexist only if the comparator
  /// distinguishes them; inserting an exact duplicate returns false.
  bool Insert(const Key& key) {
    while (true) {
      Node* preds[kMaxHeight];
      Node* succs[kMaxHeight];
      Node* found = FindPosition(key, preds, succs);
      if (found != nullptr && !found->deleted.load(std::memory_order_acquire)) {
        return false;  // already present
      }
      if (found != nullptr) {
        // A logically deleted duplicate is in the way; help unlink at level
        // 0 and retry.
        Node* after = found->Next(0);
        preds[0]->CasNext(0, found, after);
        continue;
      }

      const int height = RandomHeight();
      Node* x = NewNode(key, height);
      // Raise max_height_ if needed (monotone; racy max is fine).
      int cur_max = max_height_.load(std::memory_order_relaxed);
      while (height > cur_max &&
             !max_height_.compare_exchange_weak(cur_max, height)) {
      }
      for (int i = cur_max; i < height; i++) {
        // Levels above the old max have head as predecessor.
        if (preds[i] == nullptr) preds[i] = head_;
        if (succs[i] == nullptr) succs[i] = head_->Next(i);
      }

      // Link bottom level first; this is the linearization point.
      x->SetNext(0, succs[0]);
      if (!preds[0]->CasNext(0, succs[0], x)) {
        FreeNode(x);  // not yet visible; safe to free directly
        continue;     // raced with another insert; retry from scratch
      }
      size_.fetch_add(1, std::memory_order_relaxed);

      // Link upper levels best-effort; a failed CAS just means the index
      // is missing a shortcut, which affects speed, not correctness.
      for (int i = 1; i < height; i++) {
        while (true) {
          x->SetNext(i, succs[i]);
          if (preds[i]->CasNext(i, succs[i], x)) break;
          if (x->deleted.load(std::memory_order_acquire)) return true;
          FindPosition(key, preds, succs);  // recompute neighbors
          if (succs[i] == x) break;         // someone linked us already
        }
      }
      return true;
    }
  }

  /// Removes key. Returns false if absent (or already removed). The node
  /// is unlinked from every level it occupies and retired for deferred
  /// reclamation once unreachable; if a racing traversal keeps relinking
  /// it, the node is leaked (rare, safe). Concurrent Remove and Insert of
  /// an *equal* key are not supported — distinct keys are fine.
  bool Remove(const Key& key) {
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    Node* found = FindPosition(key, preds, succs);
    if (found == nullptr) return false;
    bool expected = false;
    if (!found->deleted.compare_exchange_strong(expected, true)) {
      return false;  // concurrent remover won
    }
    size_.fetch_sub(1, std::memory_order_relaxed);

    // Physically unlink from every level (fresh predecessors each pass).
    for (int attempt = 0; attempt < 16; attempt++) {
      FindPosition(key, preds, succs);
      bool linked = false;
      for (int i = kMaxHeight - 1; i >= 0; i--) {
        if (succs[i] == found) {
          linked = true;
          Node* pred = preds[i] ? preds[i] : head_;
          pred->CasNext(i, found, found->Next(i));
        }
      }
      if (!linked) break;
    }
    // Retire only if truly unreachable now.
    FindPosition(key, preds, succs);
    bool still_linked = false;
    for (int i = 0; i < kMaxHeight; i++) {
      if (succs[i] == found) still_linked = true;
    }
    if (!still_linked) Retire(found);
    return true;
  }

  /// True iff key is present and not logically deleted.
  bool Contains(const Key& key) const {
    const Node* x = FindGreaterOrEqual(key);
    return x != nullptr && Equal(x->key, key) &&
           !x->deleted.load(std::memory_order_acquire);
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Reclaims retired nodes. Caller must guarantee no reader holds a
  /// reference into the list (quiescent point).
  void DrainRetired() {
    std::vector<Node*> victims;
    {
      std::lock_guard<SpinLockAdapter> g(retire_lock_);
      victims.swap(retired_);
    }
    for (Node* n : victims) FreeNode(n);
  }

  /// Forward iterator over live (non-deleted) nodes in comparator order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list)
        : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
      SkipDeleted();
    }

    void SeekToFirst() {
      node_ = list_->head_->Next(0);
      SkipDeleted();
    }

    /// Positions at the first live node with key >= target.
    void Seek(const Key& target) {
      node_ = const_cast<Node*>(list_->FindGreaterOrEqual(target));
      SkipDeleted();
    }

   private:
    void SkipDeleted() {
      while (node_ != nullptr &&
             node_->deleted.load(std::memory_order_acquire)) {
        node_ = node_->Next(0);
      }
    }

    const SkipList* list_;
    typename SkipList::Node* node_;

    friend class SkipList;
  };

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    const Key key;
    std::atomic<bool> deleted{false};
    int height;
    // next_[0..height-1], allocated inline after the node.
    std::atomic<Node*> next_[1];

    Node* Next(int n) const {
      assert(n >= 0 && n < height);
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_release);
    }
    bool CasNext(int n, Node* expected, Node* x) {
      return next_[n].compare_exchange_strong(expected, x);
    }
  };

  // Tiny adapter so std::lock_guard works with SpinLock semantics without
  // pulling in the util header for a one-liner.
  struct SpinLockAdapter {
    std::atomic_flag f = ATOMIC_FLAG_INIT;
    void lock() {
      while (f.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { f.clear(std::memory_order_release); }
  };

  Node* NewNode(const Key& key, int height) {
    void* mem = ::operator new(sizeof(Node) +
                               sizeof(std::atomic<Node*>) * (height - 1));
    Node* n = new (mem) Node(key);
    n->height = height;
    for (int i = 0; i < height; i++) n->SetNext(i, nullptr);
    return n;
  }

  static void FreeNode(Node* n) {
    n->~Node();
    ::operator delete(n);
  }

  void Retire(Node* n) {
    std::lock_guard<SpinLockAdapter> g(retire_lock_);
    retired_.push_back(n);
  }

  int RandomHeight() {
    // p = 1/4 branching like LevelDB.
    int h = 1;
    std::lock_guard<SpinLockAdapter> g(rnd_lock_);
    while (h < kMaxHeight && (rnd_.Next() & 3) == 0) h++;
    return h;
  }

  bool Equal(const Key& a, const Key& b) const {
    return compare_(a, b) == 0;
  }

  /// Fills preds/succs at every level; returns the node equal to key (live
  /// or logically deleted) if one exists at level 0, else nullptr.
  Node* FindPosition(const Key& key, Node** preds, Node** succs) const {
    for (int i = 0; i < kMaxHeight; i++) {
      preds[i] = nullptr;
      succs[i] = nullptr;
    }
    Node* x = head_;
    int level = max_height_.load(std::memory_order_relaxed) - 1;
    for (int i = level; i >= 0; i--) {
      Node* next = x->Next(i);
      while (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
        next = x->Next(i);
      }
      preds[i] = x;
      succs[i] = next;
    }
    if (succs[0] != nullptr && Equal(succs[0]->key, key)) return succs[0];
    return nullptr;
  }

  const Node* FindGreaterOrEqual(const Key& key) const {
    const Node* x = head_;
    int level = max_height_.load(std::memory_order_relaxed) - 1;
    for (int i = level; i >= 0; i--) {
      const Node* next = x->Next(i);
      while (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
        next = x->Next(i);
      }
      if (i == 0) return next;
    }
    return nullptr;
  }

  Comparator const compare_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
  mutable SpinLockAdapter rnd_lock_;
  SpinLockAdapter retire_lock_;
  std::vector<Node*> retired_;
  std::atomic<size_t> size_;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_SKIPLIST_H_
