// RecordStore: the persistence interface the TARDiS core writes record
// versions through. Two implementations mirror the paper's two
// configurations: BTreeRecordStore (disk-backed, the TARDiS-BDB analogue)
// and MemRecordStore (the TARDiS-MDB analogue).

#ifndef TARDIS_STORAGE_RECORD_STORE_H_
#define TARDIS_STORAGE_RECORD_STORE_H_

#include <functional>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace tardis {

class RecordStore {
 public:
  virtual ~RecordStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Get(const Slice& key, std::string* value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  /// Flushes buffered state to stable storage (no-op for memory stores).
  virtual Status Sync() = 0;
  virtual uint64_t size() const = 0;
  /// Invokes `fn` for every stored key (order unspecified); stops at the
  /// first non-OK status and returns it. Recovery scans the surviving keys
  /// to re-derive the state-id floor (see StateDag::AdvanceIdFloor).
  virtual Status ForEachKey(
      const std::function<Status(const Slice& key)>& fn) = 0;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_RECORD_STORE_H_
