// Page-level constants shared by the pager, buffer pool and B+Tree.

#ifndef TARDIS_STORAGE_PAGE_H_
#define TARDIS_STORAGE_PAGE_H_

#include <cstdint>

namespace tardis {

using PageId = uint64_t;

constexpr uint32_t kPageSize = 4096;
/// Page id 0 is the file's meta page and never stores tree data.
constexpr PageId kMetaPageId = 0;
constexpr PageId kInvalidPageId = ~0ull;

}  // namespace tardis

#endif  // TARDIS_STORAGE_PAGE_H_
