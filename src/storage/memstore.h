// MemRecordStore: in-memory RecordStore (the TARDiS-MDB configuration's
// analogue of MapDB). Ordered map + shared mutex; the TARDiS core supplies
// all transactional semantics above this layer.

#ifndef TARDIS_STORAGE_MEMSTORE_H_
#define TARDIS_STORAGE_MEMSTORE_H_

#include <map>
#include <shared_mutex>
#include <string>

#include "storage/record_store.h"

namespace tardis {

class MemRecordStore : public RecordStore {
 public:
  Status Put(const Slice& key, const Slice& value) override {
    std::unique_lock<std::shared_mutex> guard(rw_);
    map_[key.ToString()] = value.ToString();
    return Status::OK();
  }

  Status Get(const Slice& key, std::string* value) override {
    std::shared_lock<std::shared_mutex> guard(rw_);
    auto it = map_.find(key.ToString());
    if (it == map_.end()) return Status::NotFound();
    *value = it->second;
    return Status::OK();
  }

  Status Delete(const Slice& key) override {
    std::unique_lock<std::shared_mutex> guard(rw_);
    if (map_.erase(key.ToString()) == 0) return Status::NotFound();
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

  uint64_t size() const override {
    std::shared_lock<std::shared_mutex> guard(rw_);
    return map_.size();
  }

  Status ForEachKey(
      const std::function<Status(const Slice& key)>& fn) override {
    std::shared_lock<std::shared_mutex> guard(rw_);
    for (const auto& [key, value] : map_) {
      TARDIS_RETURN_IF_ERROR(fn(Slice(key)));
    }
    return Status::OK();
  }

 private:
  mutable std::shared_mutex rw_;
  std::map<std::string, std::string, std::less<>> map_;
};

}  // namespace tardis

#endif  // TARDIS_STORAGE_MEMSTORE_H_
