#include "storage/wal.h"

#include <vector>

#include "fault/fault_points.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace tardis {

namespace {
constexpr size_t kFrameHeader = 8;  // u32 masked crc + u32 len
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                         FlushMode mode, fault::Env* env) {
  auto file = fault::ResolveEnv(env)->OpenFile(path);
  if (!file.ok()) return file.status();
  auto size = file.value()->Size();
  if (!size.ok()) return size.status();
  std::unique_ptr<Wal> wal(new Wal(std::move(file.value()), mode, path));
  // appended_ is the repair boundary for failed appends; an existing log
  // must never be truncated below its opening length.
  wal->appended_ = size.value();
  return wal;
}

Wal::~Wal() {
  if (file_ != nullptr) (void)file_->Sync();
}

Status Wal::Append(const Slice& payload) {
  std::string frame;
  frame.resize(kFrameHeader);
  EncodeFixed32(&frame[4], static_cast<uint32_t>(payload.size()));
  frame.append(payload.data(), payload.size());
  // CRC covers len + payload so a truncated length field is detected too.
  const uint32_t crc =
      Crc32c(frame.data() + 4, frame.size() - 4);
  EncodeFixed32(&frame[0], MaskCrc(crc));

  std::lock_guard<std::mutex> guard(mu_);
  if (poisoned_) {
    return Status::IOError("wal poisoned by an unrepaired append failure");
  }
  TARDIS_FAULT_POINT("wal.append.before_write");
  Status s = file_->Append(frame);
  if (!s.ok()) {
    // A prefix of the frame may have landed. Truncate back to the last
    // good frame boundary so recovery and later appends see a clean log;
    // if that also fails, poison the log.
    if (!file_->Truncate(appended_).ok()) poisoned_ = true;
    return s;
  }
  TARDIS_FAULT_POINT("wal.append.after_write");
  appended_ += frame.size();
  if (mode_ == FlushMode::kSync) {
    TARDIS_FAULT_POINT("wal.sync");
    TARDIS_RETURN_IF_ERROR(file_->Sync());
  }
  return Status::OK();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> guard(mu_);
  TARDIS_FAULT_POINT("wal.sync");
  return file_->Sync();
}

Status Wal::ReadAll(const std::function<Status(const Slice&)>& fn) {
  std::lock_guard<std::mutex> guard(mu_);
  TARDIS_FAULT_POINT("wal.read");
  auto size = file_->Size();
  if (!size.ok()) return size.status();
  std::vector<char> buf(static_cast<size_t>(size.value()));
  if (!buf.empty()) {
    auto n = file_->PRead(0, buf.size(), buf.data());
    if (!n.ok()) return n.status();
    if (n.value() != buf.size()) return Status::IOError("wal short read");
  }

  size_t off = 0;
  while (off + kFrameHeader <= buf.size()) {
    const uint32_t stored_crc = UnmaskCrc(DecodeFixed32(buf.data() + off));
    const uint32_t len = DecodeFixed32(buf.data() + off + 4);
    if (off + kFrameHeader + len > buf.size()) break;  // torn tail
    const uint32_t actual_crc = Crc32c(buf.data() + off + 4, 4 + len);
    if (actual_crc != stored_crc) break;  // corrupt: stop replay here
    Status s = fn(Slice(buf.data() + off + kFrameHeader, len));
    if (!s.ok()) return s;
    off += kFrameHeader + len;
  }
  // Salvage: a torn or corrupt tail is discarded *from the file*, not just
  // skipped. Appends continue at appended_, so garbage left in place would
  // sit between the valid prefix and every future record, making them
  // unreachable to the next replay. The truncation is synced: an unsynced
  // repair could be undone by the next crash, resurrecting a tail the
  // replay already disowned.
  if (off < buf.size()) {
    TARDIS_RETURN_IF_ERROR(file_->Truncate(off));
    TARDIS_RETURN_IF_ERROR(file_->Sync());
    appended_ = off;
    poisoned_ = false;
  }
  return Status::OK();
}

Status Wal::Truncate() {
  std::lock_guard<std::mutex> guard(mu_);
  TARDIS_FAULT_POINT("wal.truncate");
  TARDIS_RETURN_IF_ERROR(file_->Truncate(0));
  appended_ = 0;
  poisoned_ = false;
  return Status::OK();
}

}  // namespace tardis
