#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/coding.h"
#include "util/crc32.h"

namespace tardis {

namespace {
constexpr size_t kFrameHeader = 8;  // u32 masked crc + u32 len
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                         FlushMode mode) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  return std::unique_ptr<Wal>(new Wal(fd, mode, path));
}

Wal::~Wal() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Status Wal::Append(const Slice& payload) {
  std::string frame;
  frame.resize(kFrameHeader);
  EncodeFixed32(&frame[4], static_cast<uint32_t>(payload.size()));
  frame.append(payload.data(), payload.size());
  // CRC covers len + payload so a truncated length field is detected too.
  const uint32_t crc =
      Crc32c(frame.data() + 4, frame.size() - 4);
  EncodeFixed32(&frame[0], MaskCrc(crc));

  std::lock_guard<std::mutex> guard(mu_);
  ssize_t n = ::write(fd_, frame.data(), frame.size());
  if (n != static_cast<ssize_t>(frame.size())) {
    return Status::IOError("wal append failed");
  }
  appended_ += frame.size();
  if (mode_ == FlushMode::kSync) {
    if (::fsync(fd_) != 0) return Status::IOError("wal fsync failed");
  }
  return Status::OK();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> guard(mu_);
  if (::fsync(fd_) != 0) return Status::IOError("wal fsync failed");
  return Status::OK();
}

Status Wal::ReadAll(const std::function<Status(const Slice&)>& fn) {
  std::lock_guard<std::mutex> guard(mu_);
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IOError("wal lseek failed");
  std::vector<char> buf(static_cast<size_t>(size));
  if (size > 0) {
    ssize_t n = ::pread(fd_, buf.data(), buf.size(), 0);
    if (n != size) return Status::IOError("wal read failed");
  }

  size_t off = 0;
  while (off + kFrameHeader <= buf.size()) {
    const uint32_t stored_crc = UnmaskCrc(DecodeFixed32(buf.data() + off));
    const uint32_t len = DecodeFixed32(buf.data() + off + 4);
    if (off + kFrameHeader + len > buf.size()) break;  // torn tail
    const uint32_t actual_crc = Crc32c(buf.data() + off + 4, 4 + len);
    if (actual_crc != stored_crc) break;  // corrupt: stop replay here
    Status s = fn(Slice(buf.data() + off + kFrameHeader, len));
    if (!s.ok()) return s;
    off += kFrameHeader + len;
  }
  return Status::OK();
}

Status Wal::Truncate() {
  std::lock_guard<std::mutex> guard(mu_);
  if (::ftruncate(fd_, 0) != 0) return Status::IOError("wal truncate failed");
  if (::lseek(fd_, 0, SEEK_SET) < 0) return Status::IOError("wal lseek failed");
  appended_ = 0;
  return Status::OK();
}

}  // namespace tardis
