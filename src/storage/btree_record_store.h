// BTreeRecordStore: disk-backed RecordStore over the pager / buffer pool /
// B+Tree stack (the TARDiS-BDB configuration's analogue of BerkeleyDB with
// concurrency control turned off, §6.6).

#ifndef TARDIS_STORAGE_BTREE_RECORD_STORE_H_
#define TARDIS_STORAGE_BTREE_RECORD_STORE_H_

#include <memory>
#include <string>

#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/record_store.h"

namespace tardis {

class BTreeRecordStore : public RecordStore {
 public:
  /// Opens (creating if needed) a store at `path`. `cache_pages` sizes the
  /// buffer pool; the paper's evaluation keeps all requests cache-resident.
  /// File IO runs through `env` (null = passthrough POSIX).
  static StatusOr<std::unique_ptr<BTreeRecordStore>> Open(
      const std::string& path, size_t cache_pages = 4096,
      fault::Env* env = nullptr);

  Status Put(const Slice& key, const Slice& value) override {
    return tree_->Put(key, value);
  }
  Status Get(const Slice& key, std::string* value) override {
    return tree_->Get(key, value);
  }
  Status Delete(const Slice& key) override { return tree_->Delete(key); }
  Status Sync() override {
    TARDIS_RETURN_IF_ERROR(pool_->FlushAll());
    return pager_->Sync();
  }
  uint64_t size() const override { return tree_->size(); }

  Status ForEachKey(
      const std::function<Status(const Slice& key)>& fn) override {
    BTree::Iterator it = tree_->NewIterator();
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      TARDIS_RETURN_IF_ERROR(fn(it.key()));
    }
    return Status::OK();
  }

  BTree* tree() { return tree_.get(); }

 private:
  BTreeRecordStore() = default;

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

inline StatusOr<std::unique_ptr<BTreeRecordStore>> BTreeRecordStore::Open(
    const std::string& path, size_t cache_pages, fault::Env* env) {
  auto pager = Pager::Open(path, env);
  if (!pager.ok()) return pager.status();
  std::unique_ptr<BTreeRecordStore> store(new BTreeRecordStore());
  store->pager_ = std::move(*pager);
  store->pool_ =
      std::make_unique<BufferPool>(store->pager_.get(), cache_pages);
  auto tree = BTree::Open(store->pool_.get(), store->pager_.get());
  if (!tree.ok()) return tree.status();
  store->tree_ = std::move(*tree);
  return store;
}

}  // namespace tardis

#endif  // TARDIS_STORAGE_BTREE_RECORD_STORE_H_
