// LatencyKv: a TxKvStore decorator that injects a fixed delay before every
// operation, simulating the client-server round trip of the paper's
// testbed ("inter-machine ping latencies average 0.15 ms", §7.1.1).
//
// This is load-bearing for reproducing the evaluation's *shape*: with
// microsecond in-process transactions, 2PL lock-hold times and OCC
// validation windows are vanishingly small and neither baseline degrades.
// Stretch every operation by a network RTT — as in the real deployment —
// and lock queues (BDB) and stale-read aborts (OCC) reappear, while
// TARDiS, which never blocks a transaction on another, keeps its
// throughput. The delay applies to begin/get/put (the round trips a
// remote client would pay); commit's cost is measured at the server.

#ifndef TARDIS_BENCH_LATENCY_KV_H_
#define TARDIS_BENCH_LATENCY_KV_H_

#include <chrono>
#include <memory>
#include <thread>

#include "baseline/txkv.h"

namespace tardis {
namespace bench {

class LatencyKv : public TxKvStore {
 public:
  /// `inner` must outlive the decorator. `rtt_us` of 0 forwards directly.
  LatencyKv(TxKvStore* inner, uint64_t rtt_us)
      : inner_(inner), rtt_us_(rtt_us) {}

  std::unique_ptr<TxKvClient> NewClient() override {
    return std::make_unique<Client>(inner_->NewClient(), rtt_us_);
  }
  std::string name() const override { return inner_->name(); }

 private:
  static void Rtt(uint64_t rtt_us) {
    if (rtt_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(rtt_us));
    }
  }

  class Txn : public TxKvTransaction {
   public:
    Txn(TxKvTxnPtr inner, uint64_t rtt_us)
        : inner_(std::move(inner)), rtt_us_(rtt_us) {}
    Status Get(const Slice& key, std::string* value) override {
      Rtt(rtt_us_);
      return inner_->Get(key, value);
    }
    Status Put(const Slice& key, const Slice& value) override {
      Rtt(rtt_us_);
      return inner_->Put(key, value);
    }
    Status Commit() override { return inner_->Commit(); }
    void Abort() override { inner_->Abort(); }

   private:
    TxKvTxnPtr inner_;
    const uint64_t rtt_us_;
  };

  class Client : public TxKvClient {
   public:
    Client(std::unique_ptr<TxKvClient> inner, uint64_t rtt_us)
        : inner_(std::move(inner)), rtt_us_(rtt_us) {}
    StatusOr<TxKvTxnPtr> Begin() override {
      Rtt(rtt_us_);
      auto txn = inner_->Begin();
      if (!txn.ok()) return txn.status();
      return TxKvTxnPtr(new Txn(std::move(*txn), rtt_us_));
    }

   private:
    std::unique_ptr<TxKvClient> inner_;
    const uint64_t rtt_us_;
  };

  TxKvStore* const inner_;
  const uint64_t rtt_us_;
};

}  // namespace bench
}  // namespace tardis

#endif  // TARDIS_BENCH_LATENCY_KV_H_
