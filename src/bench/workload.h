// Workload specification for the §7.1 microbenchmarks.
//
// Transactions contain six operations (three reads + three writes in the
// read-write case); mixes vary the ratio of read-only to read-write
// transactions: Read-Only 100/0, Read-Heavy 75/25, Mixed 25/75,
// Write-Heavy 0/100. Keys are chosen uniformly or with YCSB's scrambled
// Zipfian (theta = 0.99). Fig. 10(d)'s "blind writes" mode issues
// single-write transactions with no reads.

#ifndef TARDIS_BENCH_WORKLOAD_H_
#define TARDIS_BENCH_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/zipf.h"

namespace tardis {
namespace bench {

enum class Distribution { kUniform, kZipfian };

enum class Mix { kReadOnly, kReadHeavy, kMixed, kWriteHeavy };

inline double ReadOnlyFraction(Mix mix) {
  switch (mix) {
    case Mix::kReadOnly:
      return 1.00;
    case Mix::kReadHeavy:
      return 0.75;
    case Mix::kMixed:
      return 0.25;
    case Mix::kWriteHeavy:
      return 0.00;
  }
  return 0;
}

inline const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kReadOnly:
      return "read-only";
    case Mix::kReadHeavy:
      return "read-heavy";
    case Mix::kMixed:
      return "mixed";
    case Mix::kWriteHeavy:
      return "write-heavy";
  }
  return "?";
}

struct WorkloadOptions {
  uint64_t num_keys = 10'000;
  Distribution dist = Distribution::kUniform;
  double zipf_theta = 0.99;
  Mix mix = Mix::kReadHeavy;
  int reads_per_txn = 3;
  int writes_per_txn = 3;
  int reads_per_ro_txn = 6;
  size_t value_size = 64;
  /// Fig. 10(d): every transaction is a single blind write.
  bool blind_writes = false;
};

/// One operation of a generated transaction.
struct Op {
  bool is_write = false;
  std::string key;
};

/// Per-client-thread key/transaction generator (deterministic per seed).
class TxnGenerator {
 public:
  TxnGenerator(const WorkloadOptions& options, uint64_t seed)
      : options_(options),
        rng_(seed),
        zipf_(options.num_keys, options.zipf_theta, seed ^ 0x5bd1e995) {}

  static std::string KeyName(uint64_t k) {
    char buf[24];
    snprintf(buf, sizeof(buf), "user%010llu",
             static_cast<unsigned long long>(k));
    return buf;
  }

  std::string NextKey() {
    const uint64_t k = options_.dist == Distribution::kUniform
                           ? rng_.Uniform(options_.num_keys)
                           : zipf_.Next();
    return KeyName(k);
  }

  /// Generates the next transaction's operations.
  std::vector<Op> NextTxn(bool* read_only) {
    std::vector<Op> ops;
    if (options_.blind_writes) {
      *read_only = false;
      ops.push_back({true, NextKey()});
      return ops;
    }
    *read_only = rng_.Bernoulli(ReadOnlyFraction(options_.mix));
    if (*read_only) {
      for (int i = 0; i < options_.reads_per_ro_txn; i++) {
        ops.push_back({false, NextKey()});
      }
    } else {
      for (int i = 0; i < options_.reads_per_txn; i++) {
        ops.push_back({false, NextKey()});
      }
      for (int i = 0; i < options_.writes_per_txn; i++) {
        ops.push_back({true, NextKey()});
      }
    }
    return ops;
  }

  std::string RandomValue() {
    std::string v(options_.value_size, 'x');
    for (size_t i = 0; i < v.size(); i += 8) {
      v[i] = static_cast<char>('a' + rng_.Uniform(26));
    }
    return v;
  }

  const WorkloadOptions& options() const { return options_; }

 private:
  WorkloadOptions options_;
  Random rng_;
  ScrambledZipfianGenerator zipf_;
};

}  // namespace bench
}  // namespace tardis

#endif  // TARDIS_BENCH_WORKLOAD_H_
