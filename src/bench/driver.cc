#include "bench/driver.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace tardis {
namespace bench {

std::string DriverResult::Summary() const {
  char buf[512];
  snprintf(buf, sizeof(buf),
           "committed=%llu aborted=%llu thr=%.0f txn/s "
           "lat(mean=%.1fus p50=%.0fus p99=%.0fus) "
           "ops(begin=%.4fms get=%.4fms put=%.4fms commit=%.4fms) useful=%.2f",
           static_cast<unsigned long long>(committed),
           static_cast<unsigned long long>(aborted), throughput,
           txn_latency_us.mean(), txn_latency_us.Percentile(0.5),
           txn_latency_us.Percentile(0.99), ops.BeginAvg() / 1000.0,
           ops.GetAvg() / 1000.0, ops.PutAvg() / 1000.0,
           ops.CommitAvg() / 1000.0, useful_fraction);
  std::string out = buf;
  if (!metrics_delta.empty()) {
    out += "\n  metrics over the run:\n";
    // Indent the delta under the headline numbers.
    std::string line;
    for (char c : metrics_delta) {
      if (c == '\n') {
        out += "    " + line + "\n";
        line.clear();
      } else {
        line.push_back(c);
      }
    }
    if (!line.empty()) out += "    " + line + "\n";
  }
  return out;
}

Status Preload(TxKvStore* store, const WorkloadOptions& workload) {
  auto client = store->NewClient();
  TxnGenerator gen(workload, 0);
  constexpr uint64_t kBatch = 128;
  for (uint64_t k = 0; k < workload.num_keys; k += kBatch) {
    auto txn = client->Begin();
    if (!txn.ok()) return txn.status();
    for (uint64_t i = k; i < std::min(k + kBatch, workload.num_keys); i++) {
      TARDIS_RETURN_IF_ERROR(
          (*txn)->Put(TxnGenerator::KeyName(i), gen.RandomValue()));
    }
    TARDIS_RETURN_IF_ERROR((*txn)->Commit());
  }
  return Status::OK();
}

namespace {

struct ClientStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  Histogram latency;
  OpBreakdown ops;
  uint64_t useful_us = 0;
  uint64_t busy_us = 0;
};

void ClientLoop(TxKvStore* store, const WorkloadOptions& workload,
                const DriverOptions& options, size_t client_idx,
                std::atomic<bool>* stop, std::atomic<bool>* recording,
                std::atomic<uint64_t>* live_committed, ClientStats* out) {
  auto client = store->NewClient();
  TxnGenerator gen(workload, options.seed * 977 + client_idx);

  while (!stop->load(std::memory_order_acquire)) {
    bool read_only = false;
    std::vector<Op> txn_ops = gen.NextTxn(&read_only);
    const bool record = recording->load(std::memory_order_acquire);
    const uint64_t txn_start = NowNanos();
    uint64_t attempt_start = txn_start;
    bool committed = false;

    for (int attempt = 0; attempt <= options.max_retries; attempt++) {
      attempt_start = NowNanos();
      uint64_t t0 = NowNanos();
      auto txn = client->Begin();
      uint64_t t1 = NowNanos();
      if (record) {
        out->ops.begin_us += (t1 - t0) / 1000;
        out->ops.begins++;
      }
      if (!txn.ok()) {
        if (record) out->aborted++;
        continue;
      }
      Status s = Status::OK();
      std::string scratch;
      for (const Op& op : txn_ops) {
        t0 = NowNanos();
        if (op.is_write) {
          s = (*txn)->Put(op.key, gen.RandomValue());
          t1 = NowNanos();
          if (record) {
            out->ops.put_us += (t1 - t0) / 1000;
            out->ops.puts++;
          }
        } else {
          s = (*txn)->Get(op.key, &scratch);
          if (s.IsNotFound()) s = Status::OK();
          t1 = NowNanos();
          if (record) {
            out->ops.get_us += (t1 - t0) / 1000;
            out->ops.gets++;
          }
        }
        if (!s.ok()) break;
      }
      if (s.ok()) {
        t0 = NowNanos();
        s = (*txn)->Commit();
        t1 = NowNanos();
        if (record) {
          out->ops.commit_us += (t1 - t0) / 1000;
          out->ops.commits++;
        }
      } else {
        (*txn)->Abort();
      }
      const uint64_t now = NowNanos();
      if (record) out->busy_us += (now - attempt_start) / 1000;
      if (s.ok()) {
        committed = true;
        if (record) {
          out->committed++;
          out->latency.Add((now - txn_start) / 1000);
          out->useful_us += (now - attempt_start) / 1000;
          if (live_committed) {
            live_committed->fetch_add(1, std::memory_order_relaxed);
          }
        }
        break;
      }
      if (record) out->aborted++;
      if (stop->load(std::memory_order_acquire)) break;
    }
    (void)committed;
  }
}

}  // namespace

DriverResult RunClosedLoop(TxKvStore* store, const WorkloadOptions& workload,
                           const DriverOptions& options,
                           std::atomic<uint64_t>* live_committed,
                           const std::function<void(size_t)>& per_client_hook) {
  std::string trace_file = options.trace_file;
  if (trace_file.empty()) {
    if (const char* env = getenv("TARDIS_TRACE_FILE")) trace_file = env;
  }
  if (!trace_file.empty()) obs::Tracer::Get().Enable();

  std::atomic<bool> stop{false};
  std::atomic<bool> recording{false};
  std::vector<ClientStats> stats(options.num_clients);
  std::vector<std::thread> threads;
  threads.reserve(options.num_clients);
  for (size_t c = 0; c < options.num_clients; c++) {
    threads.emplace_back([&, c] {
      if (per_client_hook) per_client_hook(c);
      ClientLoop(store, workload, options, c, &stop, &recording,
                 live_committed, &stats[c]);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(options.warmup_ms));
  std::vector<obs::Sample> metrics_before;
  if (options.metrics) metrics_before = options.metrics->Collect();
  const uint64_t measure_start = NowNanos();
  recording.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
  recording.store(false, std::memory_order_release);
  const uint64_t measure_end = NowNanos();
  std::vector<obs::Sample> metrics_after;
  if (options.metrics) metrics_after = options.metrics->Collect();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  if (!trace_file.empty()) {
    std::ofstream out(trace_file, std::ios::trunc);
    if (out) {
      out << obs::Tracer::Get().DumpChromeTrace();
      fprintf(stderr, "[driver] wrote %zu trace events to %s\n",
              obs::Tracer::Get().EventCount(), trace_file.c_str());
    } else {
      fprintf(stderr, "[driver] cannot write trace file %s\n",
              trace_file.c_str());
    }
    obs::Tracer::Get().Disable();
  }

  DriverResult result;
  uint64_t useful_us = 0, busy_us = 0;
  for (const ClientStats& s : stats) {
    result.committed += s.committed;
    result.aborted += s.aborted;
    result.txn_latency_us.Merge(s.latency);
    result.ops.begin_us += s.ops.begin_us;
    result.ops.begins += s.ops.begins;
    result.ops.get_us += s.ops.get_us;
    result.ops.gets += s.ops.gets;
    result.ops.put_us += s.ops.put_us;
    result.ops.puts += s.ops.puts;
    result.ops.commit_us += s.ops.commit_us;
    result.ops.commits += s.ops.commits;
    useful_us += s.useful_us;
    busy_us += s.busy_us;
  }
  result.seconds =
      static_cast<double>(measure_end - measure_start) / 1e9;
  result.throughput =
      result.seconds > 0 ? static_cast<double>(result.committed) / result.seconds : 0;
  result.useful_fraction =
      busy_us > 0 ? static_cast<double>(useful_us) / static_cast<double>(busy_us) : 0;
  if (options.metrics) {
    result.metrics_delta = obs::RenderDelta(metrics_before, metrics_after);
  }
  return result;
}

}  // namespace bench
}  // namespace tardis
