// Closed-loop benchmark driver (§7.1.1): N client threads, each issuing
// transactions back-to-back against a TxKvStore for a fixed duration.
// Collects throughput, transaction latency, a per-operation latency
// breakdown (begin/get/put/commit — Table 3), abort counts and the
// useful-work fraction (Fig. 14d).

#ifndef TARDIS_BENCH_DRIVER_H_
#define TARDIS_BENCH_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "baseline/txkv.h"
#include "bench/workload.h"
#include "obs/metrics.h"
#include "util/histogram.h"

namespace tardis {
namespace bench {

struct DriverOptions {
  size_t num_clients = 8;
  uint64_t duration_ms = 2'000;
  uint64_t warmup_ms = 200;
  /// Retries of an aborted transaction before moving on.
  int max_retries = 64;
  uint64_t seed = 1234;
  /// When set, the driver snapshots this registry at the measurement
  /// window's edges and reports the delta (DriverResult::metrics_delta) —
  /// what the system under test actually did during the run, straight
  /// from its own counters.
  const obs::MetricsRegistry* metrics = nullptr;
  /// When non-empty (or when $TARDIS_TRACE_FILE is set), the tracer is
  /// enabled for the run and a Chrome trace JSON is written here.
  std::string trace_file;
};

struct OpBreakdown {
  uint64_t begin_us = 0, get_us = 0, put_us = 0, commit_us = 0;
  uint64_t begins = 0, gets = 0, puts = 0, commits = 0;

  double BeginAvg() const { return begins ? double(begin_us) / begins : 0; }
  double GetAvg() const { return gets ? double(get_us) / gets : 0; }
  double PutAvg() const { return puts ? double(put_us) / puts : 0; }
  double CommitAvg() const { return commits ? double(commit_us) / commits : 0; }
};

struct DriverResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double seconds = 0;
  double throughput = 0;  ///< committed txns / second
  Histogram txn_latency_us;
  OpBreakdown ops;
  /// Fraction of client busy-time spent inside transactions that went on
  /// to commit (Fig. 14d's "useful work").
  double useful_fraction = 0;
  /// Registry movement over the measurement window (empty when
  /// DriverOptions::metrics was null or nothing changed).
  std::string metrics_delta;

  std::string Summary() const;
};

/// Preloads every key in the workload with an initial value.
Status Preload(TxKvStore* store, const WorkloadOptions& workload);

/// Runs the closed loop and aggregates results across clients.
/// `live_committed`, when non-null, is incremented on every commit so a
/// sampler thread can build time series (Fig. 13).
DriverResult RunClosedLoop(TxKvStore* store, const WorkloadOptions& workload,
                           const DriverOptions& options,
                           std::atomic<uint64_t>* live_committed = nullptr,
                           const std::function<void(size_t)>& per_client_hook =
                               nullptr);

}  // namespace bench
}  // namespace tardis

#endif  // TARDIS_BENCH_DRIVER_H_
