#include "obs/stage.h"

#include <cstdio>

namespace tardis {
namespace obs {

namespace {
thread_local StageBreakdown* tls_breakdown = nullptr;
}  // namespace

std::string StageBreakdown::Format() const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < count_; i++) {
    snprintf(buf, sizeof(buf), "%s%s=%lluus", i == 0 ? "" : " ",
             stages_[i].stage,
             static_cast<unsigned long long>(stages_[i].micros));
    out += buf;
  }
  return out;
}

StageBreakdown* CurrentStageBreakdown() { return tls_breakdown; }

StageCollectorScope::StageCollectorScope(StageBreakdown* b)
    : saved_(tls_breakdown) {
  if (b != nullptr) b->Reset();
  tls_breakdown = b;
}

StageCollectorScope::~StageCollectorScope() { tls_breakdown = saved_; }

HistogramMetric* RegisterStageHistogram(MetricsRegistry* registry,
                                        const char* stage) {
  return registry->RegisterHistogram(
      "tardis_stage_micros",
      "Per-stage request latency breakdown in microseconds",
      {{"stage", stage}});
}

}  // namespace obs
}  // namespace tardis
