// Stitching and validation of Chrome trace_event JSON documents — the
// offline half of distributed tracing (DESIGN.md §7).
//
// Every tardisd/router process dumps its own rings as one Chrome trace
// document ({"traceEvents":[...]}). Because each process embeds its real
// OS pid plus a process_name metadata record, and NowMicros shares one
// monotonic origin per machine, stitching is purely textual: concatenate
// every document's traceEvents arrays into one. tardis-tracectl uses
// StitchChromeTraces after fanning `trace json` out to a grid, and
// ValidateChromeTrace in --validate mode (also the trace e2e's check
// that the merged output is a well-formed trace: parses, per-track
// monotonic timestamps, complete events carry durations).

#ifndef TARDIS_OBS_TRACE_STITCH_H_
#define TARDIS_OBS_TRACE_STITCH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace tardis {
namespace obs {

/// Concatenates the traceEvents arrays of several Chrome trace documents
/// into one document. Documents that do not contain a traceEvents array
/// are skipped (a site with tracing off dumps an empty array, which is
/// fine). String-level: events pass through byte-identical.
std::string StitchChromeTraces(const std::vector<std::string>& docs);

/// What ValidateChromeTrace learned about a (stitched) document.
struct TraceValidation {
  size_t event_count = 0;    ///< non-metadata events
  size_t process_count = 0;  ///< distinct pids seen
  /// trace id (16-digit hex, the event's args.trace) -> pids that logged
  /// at least one span of that trace. The e2e asserts one trace id maps
  /// to >= 3 pids.
  std::map<std::string, std::set<int>> processes_by_trace;
};

/// Structural validation of one Chrome trace document:
///  * the whole document parses as JSON with a traceEvents array;
///  * every event has name/ph/ts/pid/tid, and 'X' events a dur;
///  * per (pid, tid) track, timestamps are monotone non-decreasing
///    (each process dumps its ring time-sorted, so a violation means
///    stitching corrupted an event stream).
Status ValidateChromeTrace(const std::string& doc, TraceValidation* out);

}  // namespace obs
}  // namespace tardis

#endif  // TARDIS_OBS_TRACE_STITCH_H_
